examples/concert_tickets.ml: Array Format List Query Sgselect Socgraph Stgq_core String Timetable Topk Workload

examples/concert_tickets.mli:

examples/live_replanning.ml: Array Float Format Planner Printf Query Random Report Stgq_core Stgselect Timetable Workload

examples/live_replanning.mli:

examples/party_planner.ml: Format List Parallel Pcarrange Query Search_core Socgraph Stgarrange Stgq_core Stgselect String Timetable Workload

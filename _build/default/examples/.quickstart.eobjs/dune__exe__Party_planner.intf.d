examples/party_planner.mli:

examples/quickstart.ml: Array Format List Query Sgselect Socgraph Stgq_core Stgselect String Timetable

examples/quickstart.mli:

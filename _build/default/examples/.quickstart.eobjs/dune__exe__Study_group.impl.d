examples/study_group.ml: Auto Explain Format List Option Printf Query Stgq_core String Timetable Topk Workload

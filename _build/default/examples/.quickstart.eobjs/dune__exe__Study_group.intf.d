examples/study_group.mli:

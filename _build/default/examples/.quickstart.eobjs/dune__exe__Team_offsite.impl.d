examples/team_offsite.ml: Format List Printf Query Report Search_core Sgselect Stgq_core Stgselect String Timetable Workload

examples/team_offsite.mli:

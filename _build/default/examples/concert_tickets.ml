(* Concert tickets: the paper's motivating SGQ scenario (§1).

   The initiator holds a fixed number of complimentary tickets for a
   concert on a specific evening — the time is pre-determined, so the
   query is a pure SGQ.  We compare the exact answer against the top-k
   alternatives and against the community-search related work, and sanity
   check that ticket-holders can actually attend that evening.

   Run with: dune exec examples/concert_tickets.exe *)

open Stgq_core

let () =
  let ti = Workload.Scenario.people194 ~seed:404 ~days:7 () in
  let instance = ti.Query.social in
  let q = instance.Query.initiator in
  let tickets = 6 in
  Format.printf "#%d has %d tickets (self included) for Saturday 15:00-17:00.@.@." q
    tickets;

  (* The festival slot is fixed: Saturday afternoon, 4 half-hour slots. *)
  let concert_start = Timetable.Slot.of_day_time ~day:5 ~hour:15 ~minute:0 in
  let free_for_concert v =
    Timetable.Availability.window_free ti.Query.schedules.(v) ~start:concert_start
      ~len:4
  in

  let query = { Query.p = tickets; s = 2; k = 2 } in
  (match Sgselect.solve instance query with
  | Some { attendees; total_distance } ->
      Format.printf "SGQ picks %s (distance %.1f)@."
        (String.concat ", " (List.map string_of_int attendees))
        total_distance;
      let conflicted = List.filter (fun v -> not (free_for_concert v)) attendees in
      if conflicted = [] then Format.printf "...and everyone is free on Saturday afternoon.@."
      else
        Format.printf "...but %s cannot make Saturday afternoon."
          (String.concat ", " (List.map string_of_int conflicted));
      Format.printf "@."
  | None -> Format.printf "No qualifying group of %d.@.@." tickets);

  (* If someone is busy, the top-k list provides ready substitutions. *)
  let candidates = Topk.sgq ~n:4 instance query in
  Format.printf "Alternatives:@.";
  List.iteri
    (fun i e ->
      let all_free = List.for_all free_for_concert e.Topk.attendees in
      Format.printf "  #%d distance %.1f {%s}%s@." (i + 1) e.Topk.total_distance
        (String.concat ", " (List.map string_of_int e.Topk.attendees))
        (if all_free then "  <- everyone free Saturday" else ""))
    candidates;
  Format.printf "@.";

  (* The related-work contrast (§2): community search has no seat count. *)
  let community = Socgraph.Community_search.search instance.Query.graph ~anchor:q in
  Format.printf
    "Community search [20] would suggest %d people for %d seats — SGQ's size control@."
    (List.length community) tickets;
  Format.printf "is exactly what the paper argues for.@."

(* Live replanning: calendars churn, the plan keeps up.

   A planner caches per-pivot optima; each calendar edit recomputes only
   the pivots whose interval the edit touches (Lemma 4 locality).  We
   simulate a week of edits and compare the incremental cost against
   re-solving from scratch, checking both give identical answers.

   Run with: dune exec examples/live_replanning.exe *)

open Stgq_core

let () =
  let ti = Workload.Scenario.people194 ~seed:31 ~days:7 () in
  let query = { Query.p = 4; s = 1; k = 2; m = 4 } in
  let rng = Random.State.make [| 99 |] in

  let planner, create_ns = Report.time (fun () -> Planner.create ti query) in
  Format.printf "Planner built in %s; initial plan: %s@.@." (Report.ns create_ns)
    (match Planner.solution planner with
    | Some s ->
        Format.asprintf "%a" (Query.pp_stg_solution ~m:query.Query.m) s
    | None -> "infeasible");

  let horizon = Timetable.Availability.horizon ti.Query.schedules.(0) in
  let n = Array.length ti.Query.schedules in
  let edits = 10 in
  let incr_total = ref 0. and full_total = ref 0. and recomputed = ref 0 in
  for i = 1 to edits do
    (* Someone blocks out a random 2-hour chunk of their calendar — half
       the time it is a member of the current plan (the painful case). *)
    let vertex =
      match Planner.solution planner with
      | Some s when Random.State.bool rng ->
          let members = Array.of_list s.Query.st_attendees in
          members.(Random.State.int rng (Array.length members))
      | _ -> Random.State.int rng n
    in
    let current = (Planner.schedules planner).(vertex) in
    let lo = Random.State.int rng (horizon - 4) in
    Timetable.Availability.set_busy current lo (lo + 3);
    let stats, dt =
      Report.time (fun () -> Planner.update_schedule planner ~vertex current)
    in
    incr_total := !incr_total +. dt;
    recomputed := !recomputed + stats.Planner.pivots_recomputed;
    (* The naive alternative: full re-solve on the planner's state. *)
    let fresh_ti = { ti with Query.schedules = Planner.schedules planner } in
    let fresh, dt_full = Report.time (fun () -> Stgselect.solve fresh_ti query) in
    full_total := !full_total +. dt_full;
    let incr = Planner.solution planner in
    let same =
      match (incr, fresh) with
      | None, None -> true
      | Some a, Some b ->
          Float.abs (a.Query.st_total_distance -. b.Query.st_total_distance) < 1e-9
      | _ -> false
    in
    Format.printf "edit %2d: person %3d busy %s..%s -> %s (%d/%d pivots redone)%s@." i
      vertex
      (Timetable.Slot.to_string lo)
      (Timetable.Slot.to_string (lo + 3))
      (match incr with
      | Some s -> Printf.sprintf "distance %.2f" s.Query.st_total_distance
      | None -> "infeasible")
      stats.Planner.pivots_recomputed stats.Planner.pivots_total
      (if same then "" else "  MISMATCH!")
  done;
  Format.printf "@.incremental: %s total (%d pivot recomputes); naive re-solve: %s total@."
    (Report.ns !incr_total) !recomputed (Report.ns !full_total)

(* Party planner: STGQ on the 194-person synthetic community dataset.

   An initiator plans a two-hour party within a week; we contrast the
   automatic STGSelect answer with the PCArrange phone-call imitation the
   paper compares against, and show the multicore variant agreeing.

   Run with: dune exec examples/party_planner.exe *)

open Stgq_core

let () =
  let ti = Workload.Scenario.people194 ~seed:2026 ~days:7 () in
  let q = ti.Query.social.Query.initiator in
  let g = ti.Query.social.Query.graph in
  Format.printf "Dataset: %d people, %d friendships; initiator #%d (degree %d).@.@."
    (Socgraph.Graph.n_vertices g) (Socgraph.Graph.n_edges g) q
    (Socgraph.Graph.degree g q);

  let p = 6 and s = 2 and k = 2 and m = 4 in
  Format.printf "Query: STGQ(p=%d, s=%d, k=%d, m=%d slots of 30 min).@.@." p s k m;

  let report = Stgselect.solve_report ti { Query.p; s; k; m } in
  (match report.Stgselect.solution with
  | Some { st_attendees; st_total_distance; start_slot } ->
      Format.printf "STGSelect: attendees %s@."
        (String.concat ", " (List.map string_of_int st_attendees));
      Format.printf "  total social distance %.1f@." st_total_distance;
      Format.printf "  party %s - %s@." (Timetable.Slot.to_string start_slot)
        (Timetable.Slot.to_string (start_slot + m - 1));
      Format.printf "  (search explored %d nodes over %d pivot slots, |V_F| = %d)@.@."
        report.Stgselect.stats.Search_core.nodes report.Stgselect.pivots_scanned
        report.Stgselect.feasible_size
  | None -> Format.printf "STGSelect: no feasible group.@.@.");

  (match Pcarrange.run ti ~p ~s ~m with
  | Some pc ->
      Format.printf "PCArrange (manual phone coordination):@.";
      Format.printf "  attendees %s@."
        (String.concat ", " (List.map string_of_int pc.Pcarrange.attendees));
      Format.printf "  total social distance %.1f after %d calls@."
        pc.Pcarrange.total_distance pc.Pcarrange.calls_made;
      Format.printf "  observed acquaintance bound k_h = %d@.@." pc.Pcarrange.observed_k;
      (match Stgarrange.run ti ~p ~s ~m ~target_distance:pc.Pcarrange.total_distance with
      | Some { Stgarrange.k_used; solution } ->
          Format.printf
            "STGArrange matches that distance (%.1f <= %.1f) already at k = %d.@.@."
            solution.Query.st_total_distance pc.Pcarrange.total_distance k_used
      | None -> Format.printf "STGArrange could not match PCArrange.@.@.")
  | None -> Format.printf "PCArrange found no group.@.@.");

  let par = Parallel.solve_report ti { Query.p; s; k; m } in
  match (par.Parallel.solution, report.Stgselect.solution) with
  | Some a, Some b ->
      Format.printf "Multicore check: %d domains agree on distance %.1f (= %.1f).@."
        par.Parallel.domains_used a.Query.st_total_distance b.Query.st_total_distance
  | None, None -> Format.printf "Multicore check: both infeasible.@."
  | _ -> Format.printf "Multicore check: MISMATCH (bug).@."

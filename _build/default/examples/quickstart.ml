(* Quickstart: the movie-night story of the paper's Appendix A, Example 1.

   Casey Affleck wants to invite friends from his cooperation network.
   We ask three questions:
     1. SGQ without an acquaintance bound  -> closest friends, who may be
        strangers to each other;
     2. SGQ with k = 0                     -> a mutually acquainted group;
     3. STGQ with m = 3                    -> the same, plus a time that
        works for everyone.

   Run with: dune exec examples/quickstart.exe *)

open Stgq_core

let names =
  [|
    "Angelina Jolie";    (* 0 *)
    "George Clooney";    (* 1 *)
    "Robert De Niro";    (* 2 *)
    "Brad Pitt";         (* 3 *)
    "Matt Damon";        (* 4 *)
    "Julia Roberts";     (* 5 *)
    "Casey Affleck";     (* 6 = the initiator *)
    "Michelle Monaghan"; (* 7 *)
  |]

let casey = 6

(* Cooperation network; weights are social distances (smaller = closer).
   Casey's direct co-stars: Clooney, De Niro, Pitt, Roberts, Monaghan. *)
let graph =
  Socgraph.Graph.of_edges 8
    [
      (casey, 1, 17.);  (* Clooney *)
      (casey, 2, 18.);  (* De Niro *)
      (casey, 3, 24.);  (* Pitt *)
      (casey, 5, 23.);  (* Roberts *)
      (casey, 7, 28.);  (* Monaghan *)
      (1, 3, 12.);      (* the Ocean's trio know each other well *)
      (1, 5, 10.);
      (3, 5, 14.);
      (0, 3, 8.);       (* Jolie - Pitt *)
      (0, 1, 19.);
      (0, 5, 21.);      (* Jolie - Roberts *)
      (4, 1, 20.);      (* Damon - Clooney *)
      (4, 3, 26.);
      (4, 5, 25.);      (* Damon - Roberts *)
      (2, 4, 30.);
    ]

let show_group attendees =
  String.concat ", " (List.map (fun v -> names.(v)) attendees)

(* Schedules over one evening: six half-hour slots from 18:00. *)
let horizon = 6

let schedule free_slots =
  let a = Timetable.Availability.create ~horizon in
  List.iter (fun slot -> Timetable.Availability.set_free a slot slot) free_slots;
  a

let schedules =
  [|
    schedule [ 1; 2; 3; 4 ];          (* Jolie *)
    schedule [ 0; 1; 2; 3; 4 ];       (* Clooney *)
    schedule [ 1; 2; 3; 4; 5 ];       (* De Niro *)
    schedule [ 0; 1; 2; 3; 4; 5 ];    (* Pitt *)
    schedule [ 0; 2; 3; 4 ];          (* Damon *)
    schedule [ 1; 2; 3; 5 ];          (* Roberts: late start, one gap *)
    schedule [ 1; 2; 3; 4 ];          (* Casey *)
    schedule [ 0; 1; 2; 3; 5 ];       (* Monaghan *)
  |]

let () =
  let instance = { Query.graph; initiator = casey } in
  Format.printf "Casey Affleck plans a movie night (p = 4 seats, radius s = 1).@.@.";

  (* 1. Closest friends, acquaintance unconstrained (k = 3 is vacuous at p=4). *)
  (match Sgselect.solve instance { Query.p = 4; s = 1; k = 3 } with
  | Some { attendees; total_distance } ->
      Format.printf "Without an acquaintance bound:@.  %s  (total distance %g)@."
        (show_group attendees) total_distance;
      Format.printf "  ...but do they all know each other?@.@."
  | None -> assert false);

  (* 2. Everyone must know everyone: k = 0. *)
  (match Sgselect.solve instance { Query.p = 4; s = 1; k = 0 } with
  | Some { attendees; total_distance } ->
      Format.printf "With k = 0 (mutual acquaintances only):@.  %s  (total distance %g)@.@."
        (show_group attendees) total_distance
  | None -> assert false);

  (* 3. Add the calendar: a 3-slot (90-minute) screening. *)
  let ti = { Query.social = instance; schedules } in
  (match Stgselect.solve ti { Query.p = 4; s = 1; k = 0; m = 3 } with
  | Some { st_attendees; st_total_distance; start_slot } ->
      Format.printf
        "STGQ with m = 3 half-hour slots:@.  %s@.  total distance %g, screening slots %d-%d@.@."
        (show_group st_attendees) st_total_distance start_slot (start_slot + 2)
  | None -> Format.printf "No common 90-minute window exists.@.@.");

  (* Widening the circle: s = 2 brings friends of friends in. *)
  match Sgselect.solve instance { Query.p = 6; s = 2; k = 2 } with
  | Some { attendees; total_distance } ->
      Format.printf "A bigger outing (p = 6, s = 2, k = 2):@.  %s  (total distance %g)@."
        (show_group attendees) total_distance
  | None -> Format.printf "No qualifying group of six.@."

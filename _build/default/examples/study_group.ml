(* Study group: choosing among near-optimal answers.

   The single optimum is rarely the end of the story — an initiator wants
   alternatives ("same closeness, but Tuesday instead of Monday?").  This
   example lists the top-5 STGQ groups, explains the winner, and shows the
   adaptive solver agreeing with the exact one on a mid-size instance.

   Run with: dune exec examples/study_group.exe *)

open Stgq_core

let () =
  let ti = Workload.Scenario.people194 ~seed:7 ~days:7 () in
  let p = 4 and s = 1 and k = 1 and m = 4 in
  Format.printf "Top study groups of %d (s=%d, k=%d, %d slots):@.@." p s k m;

  let entries = Topk.stgq ~n:5 ti { Query.p; s; k; m } in
  List.iteri
    (fun i e ->
      Format.printf "  #%d  distance %.2f  members %s%s@." (i + 1)
        e.Topk.total_distance
        (String.concat ", " (List.map string_of_int e.Topk.attendees))
        (match e.Topk.start_slot with
        | Some start -> "  starts " ^ Timetable.Slot.to_string start
        | None -> ""))
    entries;
  Format.printf "@.";

  (match entries with
  | best :: _ ->
      let solution =
        {
          Query.st_attendees = best.Topk.attendees;
          st_total_distance = best.Topk.total_distance;
          start_slot = Option.get best.Topk.start_slot;
        }
      in
      Format.printf "Why the winner works:@.%a@."
        (Explain.pp ?name:None)
        (Explain.stg ti { Query.p; s; k; m } solution)
  | [] -> Format.printf "No feasible study group this week.@.");

  (* The adaptive front door picks the exact solver here and must agree. *)
  let auto_solution, plan = Auto.stgq ti { Query.p; s; k; m } in
  Format.printf "Auto solver chose %s and found %s@."
    (match plan.Auto.choice with Auto.Exact -> "the exact search" | Auto.Beam -> "the beam")
    (match auto_solution with
    | Some sol -> Printf.sprintf "distance %.2f" sol.Query.st_total_distance
    | None -> "nothing")

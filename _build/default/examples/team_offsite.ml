(* Team offsite: how the social knobs change the answer.

   Sweeps the acquaintance bound k and the radius s for a fixed initiator
   on the 194-person dataset, showing the distance/cohesion trade-off the
   paper motivates in §3.1, then books the offsite with a full STGQ.

   Run with: dune exec examples/team_offsite.exe *)

open Stgq_core

let () =
  let ti = Workload.Scenario.people194 ~seed:99 ~days:7 () in
  let instance = ti.Query.social in
  let p = 5 in

  Format.printf "Offsite for %d people around initiator #%d.@.@." p
    instance.Query.initiator;

  (* Sweep k at s = 1: tighter acquaintance -> higher distance. *)
  let rows_k =
    List.filter_map
      (fun k ->
        match Sgselect.solve_report instance { Query.p; s = 1; k } with
        | { Stgq_core.Sgselect.solution = Some { total_distance; attendees }; stats; _ } ->
            Some
              [
                string_of_int k;
                Printf.sprintf "%.1f" total_distance;
                String.concat " " (List.map string_of_int attendees);
                string_of_int stats.Search_core.nodes;
              ]
        | { Stgq_core.Sgselect.solution = None; _ } ->
            Some [ string_of_int k; "infeasible"; "-"; "-" ])
      [ 0; 1; 2; 3; 4 ]
  in
  print_endline
    (Report.table ~title:"Acquaintance sweep (s=1): cohesion costs distance"
       ~header:[ "k"; "total distance"; "group"; "search nodes" ]
       rows_k);
  print_newline ();

  (* Sweep s at k = 2: a wider circle can only help. *)
  let rows_s =
    List.map
      (fun s ->
        let report = Sgselect.solve_report instance { Query.p; s; k = 2 } in
        match report.Stgq_core.Sgselect.solution with
        | Some { total_distance; _ } ->
            [
              string_of_int s;
              string_of_int report.Stgq_core.Sgselect.feasible_size;
              Printf.sprintf "%.1f" total_distance;
            ]
        | None -> [ string_of_int s; string_of_int report.Stgq_core.Sgselect.feasible_size; "infeasible" ])
      [ 1; 2; 3 ]
  in
  print_endline
    (Report.table ~title:"Radius sweep (k=2): wider circles never hurt"
       ~header:[ "s"; "|V_F|"; "total distance" ]
       rows_s);
  print_newline ();

  (* Book it: a half-day (8 slots = 4 hours) within the week. *)
  match Stgselect.solve ti { Query.p; s = 2; k = 2; m = 8 } with
  | Some { st_attendees; st_total_distance; start_slot } ->
      Format.printf "Booked: %s - %s with %s (distance %.1f).@."
        (Timetable.Slot.to_string start_slot)
        (Timetable.Slot.to_string (start_slot + 7))
        (String.concat ", " (List.map string_of_int st_attendees))
        st_total_distance
  | None -> Format.printf "No half-day window fits this team; try m=4.@."

(* Bits are packed into an int array, 63 usable bits per word (OCaml ints).
   Unused bits of the last word are kept at zero so that word-level
   operations (count, equal, is_empty) need no masking. *)

let bits_per_word = Sys.int_size - 1

type t = {
  len : int;
  words : int array;
}

let word_count len = (len + bits_per_word - 1) / bits_per_word

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Array.make (max 1 (word_count len)) 0 }

let length t = t.len

let copy t = { len = t.len; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.len)

let set t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let set_range t lo hi =
  if lo <= hi then begin
    check t lo;
    check t hi;
    for i = lo to hi do
      let w = i / bits_per_word and b = i mod bits_per_word in
      t.words.(w) <- t.words.(w) lor (1 lsl b)
    done
  end

let clear_range t lo hi =
  if lo <= hi then begin
    check t lo;
    check t hi;
    for i = lo to hi do
      let w = i / bits_per_word and b = i mod bits_per_word in
      t.words.(w) <- t.words.(w) land lnot (1 lsl b)
    done
  end

let fill t b =
  if not b then Array.fill t.words 0 (Array.length t.words) 0
  else begin
    Array.fill t.words 0 (Array.length t.words) 0;
    if t.len > 0 then set_range t 0 (t.len - 1)
  end

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.len = b.len && a.words = b.words

let check_same a b =
  if a.len <> b.len then invalid_arg "Bitset: length mismatch"

let map2 op a b =
  check_same a b;
  { len = a.len; words = Array.map2 op a.words b.words }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let inter_into ~dst a =
  check_same dst a;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) a.words

let subset a b =
  check_same a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

let inter_count a b =
  check_same a b;
  let acc = ref 0 in
  Array.iteri (fun i w -> acc := !acc + popcount (w land b.words.(i))) a.words;
  !acc

let iter f t =
  Array.iteri
    (fun wi w ->
      if w <> 0 then
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f ((wi * bits_per_word) + b)
        done)
    t.words

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (fun i -> set t i) l;
  t

let next_clear t i =
  let rec go j = if j >= t.len then t.len else if mem t j then go (j + 1) else j in
  go (max i 0)

let prev_clear t i =
  let rec go j = if j < 0 then -1 else if mem t j then go (j - 1) else j in
  go (min i (t.len - 1))

let run_containing t i =
  if i < 0 || i >= t.len || not (mem t i) then None
  else
    let lo = prev_clear t i + 1 in
    let hi = next_clear t i - 1 in
    Some (lo, hi)

let longest_run_in t lo hi =
  let lo = max lo 0 and hi = min hi (t.len - 1) in
  let best = ref 0 and cur = ref 0 in
  for i = lo to hi do
    if mem t i then begin
      incr cur;
      if !cur > !best then best := !cur
    end
    else cur := 0
  done;
  !best

let has_run_of t ~len ~lo ~hi = len <= 0 || longest_run_in t lo hi >= len

let pp ppf t =
  for i = 0 to t.len - 1 do
    Format.pp_print_char ppf (if mem t i then '1' else '0')
  done

(** Dense, fixed-capacity bitsets.

    The temporal substrate stores one availability bit per time slot per
    person; SGQ/STGQ pruning needs fast intersection, population counts and
    run (consecutive-ones) queries over those vectors.  Bits are indexed
    from [0] to [length t - 1]. *)

type t

(** [create n] is a bitset of capacity [n] with all bits clear.
    @raise Invalid_argument if [n < 0]. *)
val create : int -> t

(** [length t] is the capacity given at creation. *)
val length : t -> int

(** [copy t] is an independent copy of [t]. *)
val copy : t -> t

(** [set t i] sets bit [i].  @raise Invalid_argument if out of range. *)
val set : t -> int -> unit

(** [clear t i] clears bit [i].  @raise Invalid_argument if out of range. *)
val clear : t -> int -> unit

(** [mem t i] is the value of bit [i].
    @raise Invalid_argument if out of range. *)
val mem : t -> int -> bool

(** [set_range t lo hi] sets every bit in the inclusive range [lo..hi].
    Does nothing if [lo > hi].  @raise Invalid_argument if out of range. *)
val set_range : t -> int -> int -> unit

(** [clear_range t lo hi] clears every bit in the inclusive range [lo..hi]. *)
val clear_range : t -> int -> int -> unit

(** [fill t b] sets every bit to [b]. *)
val fill : t -> bool -> unit

(** [count t] is the number of set bits. *)
val count : t -> int

(** [is_empty t] is [count t = 0], computed without a full count. *)
val is_empty : t -> bool

(** [equal a b] is structural equality (capacities must match for [true]). *)
val equal : t -> t -> bool

(** [inter a b] is a fresh bitset holding the intersection.
    @raise Invalid_argument if capacities differ. *)
val inter : t -> t -> t

(** [union a b] is a fresh bitset holding the union.
    @raise Invalid_argument if capacities differ. *)
val union : t -> t -> t

(** [diff a b] is a fresh bitset holding [a \ b].
    @raise Invalid_argument if capacities differ. *)
val diff : t -> t -> t

(** [inter_into ~dst a] replaces [dst] with [dst ∩ a] in place. *)
val inter_into : dst:t -> t -> unit

(** [subset a b] is [true] iff every bit of [a] is set in [b]. *)
val subset : t -> t -> bool

(** [inter_count a b] is [count (inter a b)] without allocating. *)
val inter_count : t -> t -> int

(** [iter f t] applies [f] to each set index in increasing order. *)
val iter : (int -> unit) -> t -> unit

(** [fold f t init] folds over set indices in increasing order. *)
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list t] is the sorted list of set indices. *)
val to_list : t -> int list

(** [of_list n l] is a bitset of capacity [n] with exactly the indices of
    [l] set.  @raise Invalid_argument if an index is out of range. *)
val of_list : int -> int list -> t

(** [run_containing t i] is the maximal inclusive range [(lo, hi)] of
    consecutive set bits containing [i], or [None] when bit [i] is clear. *)
val run_containing : t -> int -> (int * int) option

(** [longest_run_in t lo hi] is the length of the longest run of set bits
    within the inclusive window [lo..hi] (clamped to capacity); [0] when the
    window contains no set bit. *)
val longest_run_in : t -> int -> int -> int

(** [has_run_of t ~len ~lo ~hi] is [true] iff some run of [len] consecutive
    set bits fits inside the inclusive window [lo..hi]. *)
val has_run_of : t -> len:int -> lo:int -> hi:int -> bool

(** [next_clear t i] is the smallest index [j >= i] with bit [j] clear, or
    [length t] if all bits from [i] on are set. *)
val next_clear : t -> int -> int

(** [prev_clear t i] is the largest index [j <= i] with bit [j] clear, or
    [-1] if all bits up to [i] are set. *)
val prev_clear : t -> int -> int

(** [pp] formats the bitset as a 0/1 string, bit 0 leftmost. *)
val pp : Format.formatter -> t -> unit

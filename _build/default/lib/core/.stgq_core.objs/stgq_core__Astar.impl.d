lib/core/astar.ml: Array Feasible Float Fun List Option Pqueue Query

lib/core/astar.mli: Query

lib/core/auto.ml: Feasible Heuristics Query Sgselect Stgselect

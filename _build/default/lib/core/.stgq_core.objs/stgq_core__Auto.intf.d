lib/core/auto.mli: Query

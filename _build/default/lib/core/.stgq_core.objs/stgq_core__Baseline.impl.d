lib/core/baseline.ml: Array Feasible Fun List Option Query Search_core Timetable

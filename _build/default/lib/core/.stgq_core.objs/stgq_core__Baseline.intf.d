lib/core/baseline.mli: Query Search_core

lib/core/explain.ml: Float Format List Query Socgraph String Timetable

lib/core/explain.mli: Format Query

lib/core/feasible.ml: Array Bitset Float List Query Socgraph

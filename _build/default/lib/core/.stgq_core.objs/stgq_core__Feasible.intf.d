lib/core/feasible.mli: Bitset Query Socgraph

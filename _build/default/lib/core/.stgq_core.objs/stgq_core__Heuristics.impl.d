lib/core/heuristics.ml: Array Feasible Fun List Option Pqueue Query Timetable

lib/core/heuristics.mli: Query

lib/core/ip_model.ml: Array Bitset Feasible Fun Hashtbl Ilp List Lp Query Socgraph Timetable

lib/core/ip_model.mli: Ilp Query

lib/core/parallel.ml: Array Domain Feasible List Option Query Search_core Timetable

lib/core/parallel.mli: Query Search_core

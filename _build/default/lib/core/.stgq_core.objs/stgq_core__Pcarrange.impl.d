lib/core/pcarrange.ml: Array Feasible Fun List Query Timetable

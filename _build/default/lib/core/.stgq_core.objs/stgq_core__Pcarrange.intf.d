lib/core/pcarrange.mli: Query

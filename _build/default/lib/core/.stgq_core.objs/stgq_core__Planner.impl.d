lib/core/planner.ml: Array Bitset Feasible Option Query Search_core Timetable

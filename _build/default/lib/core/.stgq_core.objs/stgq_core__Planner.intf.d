lib/core/planner.mli: Query Search_core Timetable

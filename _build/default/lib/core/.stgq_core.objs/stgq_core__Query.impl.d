lib/core/query.ml: Array Format Socgraph Timetable

lib/core/query.mli: Format Socgraph Timetable

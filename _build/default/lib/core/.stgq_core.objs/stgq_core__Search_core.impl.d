lib/core/search_core.ml: Array Bitset Feasible Float Fun List Timetable

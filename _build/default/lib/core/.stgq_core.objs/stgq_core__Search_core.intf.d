lib/core/search_core.mli: Feasible Timetable

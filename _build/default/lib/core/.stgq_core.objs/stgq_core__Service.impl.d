lib/core/service.ml: Array Feasible Hashtbl List Logs Query Search_core Sgselect Socgraph Stgselect Timetable

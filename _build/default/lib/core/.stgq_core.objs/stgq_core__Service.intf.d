lib/core/service.mli: Query Search_core Socgraph Timetable

lib/core/sgselect.ml: Array Feasible Heuristics Logs Option Printf Query Search_core

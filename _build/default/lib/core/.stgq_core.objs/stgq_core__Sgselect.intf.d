lib/core/sgselect.mli: Feasible Query Search_core

lib/core/stgarrange.ml: Option Pcarrange Query Stgselect

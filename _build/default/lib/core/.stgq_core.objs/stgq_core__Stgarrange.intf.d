lib/core/stgarrange.mli: Pcarrange Query Search_core

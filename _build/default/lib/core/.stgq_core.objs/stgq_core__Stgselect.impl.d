lib/core/stgselect.ml: Array Feasible Heuristics List Logs Option Printf Query Search_core Timetable

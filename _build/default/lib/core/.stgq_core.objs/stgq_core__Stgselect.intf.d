lib/core/stgselect.mli: Feasible Query Search_core

lib/core/topk.ml: Array Feasible Hashtbl List Pqueue Query Search_core Timetable

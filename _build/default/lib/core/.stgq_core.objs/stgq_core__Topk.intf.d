lib/core/topk.mli: Query Search_core

lib/core/validate.ml: Array Float Format List Query Socgraph Timetable

lib/core/validate.mli: Format Query

type report = {
  solution : Query.sg_solution option;
  nodes_expanded : int;
  max_frontier : int;
}

type node = {
  f : float;          (* g + h, the priority *)
  g : float;          (* committed distance *)
  group : int list;   (* sub-ids, q included *)
  size : int;
  next : int;         (* extensions use candidate indices >= next *)
}

let solve_report ?(node_limit = max_int) (instance : Query.instance)
    (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  let fg = Feasible.extract instance ~s:query.s in
  let q = fg.Feasible.q in
  let cands =
    List.init (Feasible.size fg) Fun.id
    |> List.filter (fun v -> v <> q)
    |> List.sort (fun a b -> compare (fg.Feasible.dist.(a), a) (fg.Feasible.dist.(b), b))
    |> Array.of_list
  in
  let n = Array.length cands in
  (* prefix.(i) = sum of the first i candidate distances, so the cheapest
     possible completion from index [next] with [r] members costs
     prefix.(next + r) - prefix.(next) — admissible because candidates
     are distance-sorted. *)
  let prefix = Array.make (n + 1) 0. in
  for i = 0 to n - 1 do
    prefix.(i + 1) <- prefix.(i) +. fg.Feasible.dist.(cands.(i))
  done;
  let h ~next ~size =
    let r = query.p - size in
    if next + r > n then infinity else prefix.(next + r) -. prefix.(next)
  in
  let acquaintance_ok group v =
    let extended = v :: group in
    List.for_all
      (fun x ->
        List.fold_left
          (fun nn w -> if w <> x && not (Feasible.adjacent fg x w) then nn + 1 else nn)
          0 extended
        <= query.k)
      extended
  in
  let frontier =
    Pqueue.Heap.create ~cmp:(fun a b -> compare (a.f, a.size) (b.f, b.size))
  in
  let push node = if Float.is_finite node.f then Pqueue.Heap.add frontier node in
  push { f = h ~next:0 ~size:1; g = 0.; group = [ q ]; size = 1; next = 0 };
  let expanded = ref 0 and peak = ref 1 in
  let solution = ref None in
  while !solution = None && not (Pqueue.Heap.is_empty frontier) do
    let node = Pqueue.Heap.pop frontier in
    incr expanded;
    if !expanded > node_limit then failwith "Astar.solve: node limit exceeded";
    if node.size = query.p then solution := Some node
    else
      for i = node.next to n - 1 do
        let v = cands.(i) in
        if acquaintance_ok node.group v then begin
          let g = node.g +. fg.Feasible.dist.(v) in
          push
            {
              f = g +. h ~next:(i + 1) ~size:(node.size + 1);
              g;
              group = v :: node.group;
              size = node.size + 1;
              next = i + 1;
            }
        end
      done;
    peak := max !peak (Pqueue.Heap.size frontier)
  done;
  {
    solution =
      Option.map
        (fun node ->
          {
            Query.attendees = Feasible.originals fg node.group;
            total_distance = node.g;
          })
        !solution;
    nodes_expanded = !expanded;
    max_frontier = !peak;
  }

let solve ?node_limit instance query = (solve_report ?node_limit instance query).solution

(** Best-first exact SGQ search — an alternative to SGSelect's
    depth-first branch and bound.

    Partial groups are explored in order of [g + h], where [g] is the
    distance already committed and [h] the sum of the [p - |VS|] smallest
    distances still selectable — an admissible bound, so the first
    complete group dequeued is optimal.  Best-first search never explores
    a node with [f] above the optimum (DFS may), at the price of holding
    the frontier in memory; the E6 experiment measures the trade against
    SGSelect.

    Candidate extension follows increasing distance-order index, so each
    group is enqueued exactly once; partial groups violating the
    acquaintance bound are discarded on generation (the constraint is
    monotone). *)

type report = {
  solution : Query.sg_solution option;
  nodes_expanded : int;   (** states dequeued *)
  max_frontier : int;     (** peak priority-queue size *)
}

(** [solve_report ?node_limit instance query] — best-first exact SGQ.
    @raise Failure when more than [node_limit] states are dequeued
    (default unlimited); memory is proportional to the frontier. *)
val solve_report : ?node_limit:int -> Query.instance -> Query.sgq -> report

val solve : ?node_limit:int -> Query.instance -> Query.sgq -> Query.sg_solution option

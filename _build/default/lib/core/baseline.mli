(** The paper's comparison baselines (§5.2).

    - SGQ baseline: enumerate all [C(f-1, p-1)] candidate groups and keep
      the qualified one with minimum total social distance.
    - STGQ baseline: scan every activity period of [m] slots and solve the
      corresponding SGQ independently (the "intuitive approach" of §4).

    [stgq_per_slot] solves each period with SGSelect — isolating the value
    of the temporal strategies; [stgq_brute] uses the brute-force SGQ per
    period and is the fully naive test oracle. *)

exception Limit_exceeded
(** Raised when [max_groups] enumerations are exceeded; benchmark
    harnesses use it to cap exponential baseline runs. *)

type sg_report = {
  solution : Query.sg_solution option;
  groups_examined : int;
  feasible_size : int;
}

(** [sgq_brute ?max_groups instance query] enumerates candidate groups.
    @raise Limit_exceeded when more than [max_groups] groups are visited. *)
val sgq_brute : ?max_groups:int -> Query.instance -> Query.sgq -> sg_report

type stg_report = {
  st_solution : Query.stg_solution option;
  windows_scanned : int;
  groups_examined : int;  (** total across windows; [stgq_brute] only *)
}

(** [stgq_per_slot ?config ti query] — one SGSelect run per activity
    period, as the paper's STGQ baseline. *)
val stgq_per_slot :
  ?config:Search_core.config -> Query.temporal_instance -> Query.stgq -> stg_report

(** [stgq_brute ?max_groups ti query] — brute-force SGQ per period; the
    ground-truth oracle for STGSelect property tests.
    @raise Limit_exceeded as for [sgq_brute] (cumulative). *)
val stgq_brute :
  ?max_groups:int -> Query.temporal_instance -> Query.stgq -> stg_report

type attendee = {
  vertex : int;
  distance : float;
  path : int list;
  unacquainted : int list;
}

type t = {
  initiator : int;
  members : attendee list;
  total_distance : float;
  acquaintance_slack : int;
  window : (int * int) option;
}

let build (instance : Query.instance) (query : Query.sgq) attendees total window =
  let g = instance.graph and q = instance.initiator in
  let members =
    List.map
      (fun v ->
        let path, distance =
          if v = q then ([ q ], 0.)
          else
            match Socgraph.Bounded_dist.shortest_path g ~src:q ~max_edges:query.s ~dst:v with
            | Some witness -> witness
            | None -> invalid_arg "Explain: attendee outside the social radius"
        in
        let unacquainted =
          List.filter (fun w -> w <> v && not (Socgraph.Graph.adjacent g v w)) attendees
        in
        { vertex = v; distance; path; unacquainted })
      attendees
    |> List.sort (fun a b ->
           compare (a.vertex <> q, a.distance, a.vertex) (b.vertex <> q, b.distance, b.vertex))
  in
  let worst =
    List.fold_left (fun acc m -> max acc (List.length m.unacquainted)) 0 members
  in
  if worst > query.k then invalid_arg "Explain: acquaintance constraint violated";
  let recomputed = List.fold_left (fun acc m -> acc +. m.distance) 0. members in
  if Float.abs (recomputed -. total) > 1e-6 then
    invalid_arg "Explain: reported distance does not match the graph";
  {
    initiator = q;
    members;
    total_distance = total;
    acquaintance_slack = query.k - worst;
    window;
  }

let sg instance query (solution : Query.sg_solution) =
  Query.check_sgq query;
  Query.check_instance instance;
  build instance query solution.attendees solution.total_distance None

let stg (ti : Query.temporal_instance) (query : Query.stgq)
    (solution : Query.stg_solution) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  build ti.social (Query.sgq_of_stgq query) solution.st_attendees
    solution.st_total_distance
    (Some (solution.start_slot, solution.start_slot + query.m - 1))

let pp ?(name = string_of_int) ppf t =
  Format.fprintf ppf "group of %d around %s, total distance %g@."
    (List.length t.members) (name t.initiator) t.total_distance;
  (match t.window with
  | Some (lo, hi) ->
      Format.fprintf ppf "meets %a .. %a@." Timetable.Slot.pp lo Timetable.Slot.pp hi
  | None -> ());
  Format.fprintf ppf "acquaintance slack: %d@." t.acquaintance_slack;
  List.iter
    (fun m ->
      if m.vertex = t.initiator then
        Format.fprintf ppf "  %s (initiator)@." (name m.vertex)
      else begin
        Format.fprintf ppf "  %s: distance %g via %s@." (name m.vertex) m.distance
          (String.concat " -> " (List.map name m.path));
        if m.unacquainted <> [] then
          Format.fprintf ppf "    does not know: %s@."
            (String.concat ", " (List.map name m.unacquainted))
      end)
    t.members

(** Human-readable solution explanations.

    Answers the questions an initiator asks of a returned group: why is
    each attendee within reach (the bounded shortest path realising
    [d_{v,q}]), who does each attendee not know (the acquaintance slack),
    and how cohesive is the group overall.  Powers the CLI's [explain]
    output. *)

type attendee = {
  vertex : int;
  distance : float;            (** s-edge minimum distance to q *)
  path : int list;             (** a witness path, initiator first *)
  unacquainted : int list;     (** fellow attendees without a direct edge *)
}

type t = {
  initiator : int;
  members : attendee list;       (** sorted by distance, initiator first *)
  total_distance : float;
  acquaintance_slack : int;
      (** query [k] minus the worst unacquaintance in the group — how much
          looser the group is than the constraint demanded *)
  window : (int * int) option;   (** inclusive activity slots, STGQ only *)
}

(** [sg instance query solution] explains an SGQ solution.
    @raise Invalid_argument if the solution is not valid for the query
    (run {!Validate.check_sg} first for diagnostics). *)
val sg : Query.instance -> Query.sgq -> Query.sg_solution -> t

(** [stg ti query solution] explains an STGQ solution. *)
val stg : Query.temporal_instance -> Query.stgq -> Query.stg_solution -> t

(** [pp ?name ppf t] pretty-prints; [name] maps vertex ids to labels. *)
val pp : ?name:(int -> string) -> Format.formatter -> t -> unit

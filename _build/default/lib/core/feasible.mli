(** Radius-graph extraction (§3.2.1).

    Runs the Definition-1 dynamic program from the initiator and keeps the
    vertices with finite [s]-edge minimum distance, yielding the feasible
    graph [G_F] every query algorithm works on.  Vertices are re-indexed
    to the compact range [0 .. size-1]; all search code operates on
    sub-ids and translates back at the boundary. *)

type t = {
  sub : Socgraph.Graph.t;   (** induced feasible graph over sub-ids *)
  of_sub : int array;       (** sub-id -> original vertex *)
  to_sub : int array;       (** original vertex -> sub-id or [-1] *)
  q : int;                  (** the initiator's sub-id *)
  dist : float array;       (** sub-id -> s-edge minimum distance to q *)
  nbr : Bitset.t array;     (** sub-id -> neighbour bitset in [sub] *)
}

(** [extract instance ~s] builds the feasible graph. *)
val extract : Query.instance -> s:int -> t

val size : t -> int

(** [adjacent fg u v] is adjacency between sub-ids, O(1) via bitsets. *)
val adjacent : t -> int -> int -> bool

(** [total_distance fg subs] sums [dist] over a sub-id list. *)
val total_distance : t -> int list -> float

(** [originals fg subs] maps sub-ids back to sorted original ids. *)
val originals : t -> int list -> int list

(** The Integer Programming formulation of Appendix D, solved with the
    from-scratch {!Ilp} branch-and-bound (the CPLEX substitution).

    Two formulations are provided:

    - [Full_form] — the literal Appendix-D model: binary selection
      variables [φ_u], continuous distances [δ_u], and per-target binary
      flow variables [π_{u,i,j}] with constraints (1)-(10).  Its
      [O(|V|·|E|)] binaries are tractable for our solver only on small
      graphs; it exists to validate the formulation itself.
    - [Group_form] — the same NP-hard core with [d_{v,q}] precomputed by
      the Definition-1 dynamic program (as SGSelect does), leaving the
      [φ_u]/[τ_t] variables and constraints (1)-(3), (9)-(10).  This is
      the variant benchmarked as "IP" (see DESIGN.md, substitution 1).

    Both produce provably optimal solutions and are checked against
    SGSelect/STGSelect in the test suite. *)

type form = Group_form | Full_form

type 'a outcome = {
  result : 'a option;         (** [None] = model infeasible *)
  ilp_stats : Ilp.stats;
}

(** [solve_sgq ?form ?node_limit instance query] — optimal SGQ answer via
    integer programming.
    @raise Failure when [node_limit] branch-and-bound nodes are exceeded. *)
val solve_sgq :
  ?form:form -> ?node_limit:int -> Query.instance -> Query.sgq ->
  Query.sg_solution outcome

(** [solve_stgq ?form ?node_limit ti query] — optimal STGQ answer,
    including the start-slot variables [τ_t] (constraints (9)-(10)). *)
val solve_stgq :
  ?form:form -> ?node_limit:int -> Query.temporal_instance -> Query.stgq ->
  Query.stg_solution outcome

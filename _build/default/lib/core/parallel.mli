(** Multicore STGSelect: pivot time slots fanned out across domains.

    The paper observes (§5.2) that CPLEX exploits its 8 cores while
    SGSelect/STGSelect are single-threaded; pivot slots are embarrassingly
    parallel, so this extension closes that gap.  Each domain owns a full
    search state over a disjoint pivot subset (round-robin, so busy
    regions spread out); the feasible graph and schedules are shared
    read-only.  The incumbent bound is not shared across domains — each
    explores slightly more than the sequential run, the classic
    work-vs-parallelism trade measured by ablation A6. *)

type report = {
  solution : Query.stg_solution option;
  domains_used : int;
  total_nodes : int;  (** summed across domains *)
}

(** [solve ?config ?domains ti query] — [domains] defaults to
    [Domain.recommended_domain_count ()], capped by the pivot count.
    Result ties are broken by (distance, start slot, attendees), making
    the outcome deterministic and equal in distance to {!Stgselect}. *)
val solve :
  ?config:Search_core.config -> ?domains:int ->
  Query.temporal_instance -> Query.stgq -> Query.stg_solution option

val solve_report :
  ?config:Search_core.config -> ?domains:int ->
  Query.temporal_instance -> Query.stgq -> report

type result = {
  attendees : int list;
  total_distance : float;
  start_slot : int;
  observed_k : int;
  calls_made : int;
}

(* Manual coordination, as §5.1 describes it: the initiator first invites
   her p-1 closest friends (social closeness is what a person dials by),
   then looks for the activity period suiting the most invitees, commits
   to it, and backfills empty seats with the next-closest friends who can
   make the committed time.  The two lossy steps — inviting before
   checking calendars, and committing to one period — are exactly what a
   phone coordinator does and what STGSelect avoids. *)
let run (ti : Query.temporal_instance) ~p ~s ~m =
  Query.check_stgq { p; s; k = 0; m };
  Query.check_temporal_instance ti;
  let fg = Feasible.extract ti.social ~s in
  let avail = Array.map (fun orig -> ti.schedules.(orig)) fg.Feasible.of_sub in
  let q = fg.Feasible.q in
  let horizon = Timetable.Availability.horizon avail.(q) in
  let by_distance =
    List.init (Feasible.size fg) Fun.id
    |> List.filter (fun v -> v <> q)
    |> List.sort (fun a b ->
           compare (fg.Feasible.dist.(a), a) (fg.Feasible.dist.(b), b))
  in
  let rec split n = function
    | [] -> ([], [])
    | l when n = 0 -> ([], l)
    | x :: rest ->
        let taken, left = split (n - 1) rest in
        (x :: taken, left)
  in
  let invited, reserve = split (p - 1) by_distance in
  if List.length invited < p - 1 then None
  else begin
    let free v start = Timetable.Availability.window_free avail.(v) ~start ~len:m in
    (* The time is settled early, with the inner circle: the period that
       suits the most of the first few (closest) invitees; earliest on
       ties.  Later invitees must take it or leave it. *)
    let inner_circle, _ = split (max 1 ((p - 1) / 3)) invited in
    let best_start = ref (-1) and best_count = ref (-1) in
    for start = 0 to horizon - m do
      if free q start then begin
        let count = List.length (List.filter (fun v -> free v start) inner_circle) in
        if count > !best_count then begin
          best_count := count;
          best_start := start
        end
      end
    done;
    if !best_start < 0 then None
    else begin
      let start = !best_start in
      let confirmed = List.filter (fun v -> free v start) invited in
      (* Backfill the declined seats from the reserve, closest first. *)
      let rec backfill group missing calls = function
        | _ when missing = 0 -> Some (group, calls)
        | [] -> None
        | v :: rest ->
            if free v start then backfill (v :: group) (missing - 1) (calls + 1) rest
            else backfill group missing (calls + 1) rest
      in
      let missing = p - 1 - List.length confirmed in
      match backfill (q :: confirmed) missing (List.length invited) reserve with
      | None -> None
      | Some (group, calls) ->
          let observed_k =
            List.fold_left
              (fun acc v ->
                let nn =
                  List.fold_left
                    (fun c w ->
                      if w <> v && not (Feasible.adjacent fg v w) then c + 1 else c)
                    0 group
                in
                max acc nn)
              0 group
          in
          Some
            {
              attendees = Feasible.originals fg group;
              total_distance = Feasible.total_distance fg group;
              start_slot = start;
              observed_k;
              calls_made = calls;
            }
    end
  end

(** PCArrange — the manual phone-coordination baseline of §5.1.

    Models how an initiator plans by phone, following the paper's
    description ("sequentially invites close friends first and then finds
    out the common available time slots"):

    + invite the [p - 1] socially closest candidates;
    + commit to the activity period that suits the most invitees
      (earliest on ties);
    + backfill declined seats with the next-closest candidates free at
      the committed time.

    Inviting before consulting calendars and committing to a single
    period are the two lossy steps of manual coordination; STGSelect
    optimises across both.  No acquaintance constraint is enforced — the
    {e observed} bound [k_h] (the largest number of unacquainted others
    any attendee ends up with) is reported instead, exactly as the paper
    measures it in Fig. 1(g). *)

type result = {
  attendees : int list;      (** sorted, includes the initiator *)
  total_distance : float;
  start_slot : int;          (** earliest common window *)
  observed_k : int;          (** [k_h] *)
  calls_made : int;          (** phone calls placed, for narrative *)
}

(** [run ti ~p ~s ~m] — [None] when even calling every radius-[s]
    candidate cannot assemble [p] attendees with a common window. *)
val run : Query.temporal_instance -> p:int -> s:int -> m:int -> result option

(** Incremental STGQ maintenance under calendar churn.

    Real schedules change constantly; re-running STGSelect from scratch
    on every calendar edit wastes the pivot decomposition (Lemma 4): a
    changed slot can only affect the pivots whose interval contains it.
    A planner caches the per-pivot optimum and, on a schedule update,
    recomputes exactly the dirtied pivots.

    Social-graph changes are out of scope — rebuild the planner (the
    feasible graph and every pivot would be dirty anyway). *)

type t

type update_stats = {
  pivots_total : int;
  pivots_recomputed : int;  (** by the last [update_schedule] *)
}

(** [create ?config ti query] solves every pivot and caches the results.
    The planner takes its own copy of the schedule array; later edits go
    through {!update_schedule}. *)
val create :
  ?config:Search_core.config -> Query.temporal_instance -> Query.stgq -> t

(** [solution t] is the current global optimum — always equal to a fresh
    [Stgselect.solve] on the planner's current schedules. *)
val solution : t -> Query.stg_solution option

(** [update_schedule t ~vertex schedule] replaces one person's calendar
    (same horizon required) and refreshes the dirtied pivots. *)
val update_schedule : t -> vertex:int -> Timetable.Availability.t -> update_stats

(** [schedules t] — the planner's current view (copies). *)
val schedules : t -> Timetable.Availability.t array

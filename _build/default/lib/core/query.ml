type sgq = {
  p : int;
  s : int;
  k : int;
}

type stgq = {
  p : int;
  s : int;
  k : int;
  m : int;
}

type instance = {
  graph : Socgraph.Graph.t;
  initiator : int;
}

type temporal_instance = {
  social : instance;
  schedules : Timetable.Availability.t array;
}

type sg_solution = {
  attendees : int list;
  total_distance : float;
}

type stg_solution = {
  st_attendees : int list;
  st_total_distance : float;
  start_slot : int;
}

let check_sgq ({ p; s; k } : sgq) =
  if p < 1 then invalid_arg "Query: p must be >= 1";
  if s < 1 then invalid_arg "Query: s must be >= 1";
  if k < 0 then invalid_arg "Query: k must be >= 0"

let check_stgq ({ p; s; k; m } : stgq) =
  check_sgq { p; s; k };
  if m < 1 then invalid_arg "Query: m must be >= 1"

let check_instance { graph; initiator } =
  if initiator < 0 || initiator >= Socgraph.Graph.n_vertices graph then
    invalid_arg "Query: initiator out of range"

let check_temporal_instance { social; schedules } =
  check_instance social;
  let n = Socgraph.Graph.n_vertices social.graph in
  if Array.length schedules <> n then
    invalid_arg "Query: need exactly one schedule per vertex";
  if n > 0 then begin
    let h = Timetable.Availability.horizon schedules.(0) in
    Array.iter
      (fun a ->
        if Timetable.Availability.horizon a <> h then
          invalid_arg "Query: schedules have mismatched horizons")
      schedules
  end

let sgq_of_stgq { p; s; k; m = _ } = { p; s; k }

let pp_sg_solution ppf { attendees; total_distance } =
  Format.fprintf ppf "group {%a}, total distance %g"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    attendees total_distance

let pp_stg_solution ~m ppf { st_attendees; st_total_distance; start_slot } =
  Format.fprintf ppf "group {%a}, total distance %g, period %a .. %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    st_attendees st_total_distance Timetable.Slot.pp start_slot Timetable.Slot.pp
    (start_slot + m - 1)

(** Query and solution records for SGQ and STGQ (§3.1 and §4.1).

    A group always contains the initiator; [p] counts her in.  Distances
    are the [s]-edge minimum distances of Definition 1. *)

(** SGQ(p, s, k): activity size, social radius, acquaintance bound. *)
type sgq = {
  p : int;  (** number of attendees, initiator included; [>= 1] *)
  s : int;  (** max edges on the distance-defining path; [>= 1] *)
  k : int;  (** max unacquainted other attendees per attendee; [>= 0] *)
}

(** STGQ(p, s, k, m) adds the activity length in slots. *)
type stgq = {
  p : int;
  s : int;
  k : int;
  m : int;  (** consecutive slots the whole group must share; [>= 1] *)
}

(** A social instance: who asks, over which network. *)
type instance = {
  graph : Socgraph.Graph.t;
  initiator : int;
}

(** A social-temporal instance adds one availability per vertex
    (all over the same horizon). *)
type temporal_instance = {
  social : instance;
  schedules : Timetable.Availability.t array;
}

type sg_solution = {
  attendees : int list;    (** sorted, includes the initiator *)
  total_distance : float;
}

type stg_solution = {
  st_attendees : int list;
  st_total_distance : float;
  start_slot : int;  (** activity occupies [start_slot .. start_slot+m-1] *)
}

(** [check_sgq q] and [check_stgq q] raise [Invalid_argument] on
    out-of-range parameters. *)
val check_sgq : sgq -> unit

val check_stgq : stgq -> unit

(** [check_instance i] validates the initiator id. *)
val check_instance : instance -> unit

(** [check_temporal_instance ti] additionally requires one schedule per
    vertex, all with equal horizons. *)
val check_temporal_instance : temporal_instance -> unit

(** [sgq_of_stgq q] drops the temporal dimension. *)
val sgq_of_stgq : stgq -> sgq

val pp_sg_solution : Format.formatter -> sg_solution -> unit
val pp_stg_solution : m:int -> Format.formatter -> stg_solution -> unit

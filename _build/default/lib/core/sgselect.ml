type report = {
  solution : Query.sg_solution option;
  stats : Search_core.stats;
  feasible_size : int;
}

let log = Logs.Src.create "stgq.sgselect" ~doc:"SGSelect query processing"

module Log = (val Logs.src_log log)

let solve_report ?(config = Search_core.default_config) ?feasible ?initial_bound
    (instance : Query.instance) (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  let fg =
    match feasible with
    | Some fg ->
        if fg.Feasible.of_sub.(fg.Feasible.q) <> instance.Query.initiator then
          invalid_arg "Sgselect: cached feasible graph is for another initiator";
        fg
    | None -> Feasible.extract instance ~s:query.s
  in
  let stats = Search_core.fresh_stats () in
  let found =
    Search_core.solve_social ?bound_init:initial_bound fg ~p:query.p ~k:query.k
      ~config ~stats
  in
  Log.debug (fun m ->
      m "SGQ(p=%d,s=%d,k=%d): |V_F|=%d, %d nodes, %s" query.p query.s query.k
        (Feasible.size fg) stats.Search_core.nodes
        (match found with
        | Some f -> Printf.sprintf "optimum %g" f.Search_core.distance
        | None -> "infeasible"));
  let solution =
    Option.map
      (fun { Search_core.group; distance; _ } ->
        { Query.attendees = Feasible.originals fg group; total_distance = distance })
      found
  in
  { solution; stats; feasible_size = Feasible.size fg }

let solve ?config ?feasible ?initial_bound instance query =
  (solve_report ?config ?feasible ?initial_bound instance query).solution

(* A cheap beam pass seeds the incumbent bound: Lemma-2 pruning is active
   from the first node instead of waiting for the first feasible leaf.
   The +eps keeps solutions equal to the seed reachable, so the result is
   still the exact optimum (and never worse than the seed). *)
let solve_warm ?config ?(beam_width = 16) instance query =
  let seed = Heuristics.beam_sgq ~width:beam_width instance query in
  let initial_bound =
    Option.map (fun (s : Query.sg_solution) -> s.total_distance +. 1e-6) seed
  in
  solve ?config ?initial_bound instance query

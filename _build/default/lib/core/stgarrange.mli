(** STGArrange (§5.1): the smallest acquaintance bound beating a target.

    Starting from [k = 0], runs STGSelect with increasing [k] until a
    solution exists whose total social distance is no worse than the
    target (PCArrange's, in the paper's comparison).  The returned [k] is
    the quality measure plotted in Fig. 1(g). *)

type result = {
  k_used : int;
  solution : Query.stg_solution;
}

(** [run ?config ?k_max ti ~p ~s ~m ~target_distance] — [k_max] defaults
    to [p - 1] (beyond which the constraint is vacuous).  [None] when no
    [k <= k_max] admits a solution at most [target_distance]. *)
val run :
  ?config:Search_core.config -> ?k_max:int ->
  Query.temporal_instance -> p:int -> s:int -> m:int -> target_distance:float ->
  result option

(** [versus_pcarrange ?config ti ~p ~s ~m] runs PCArrange, then STGArrange
    against its distance — one point of Fig. 1(g)/(h).  [None] when
    PCArrange itself finds no group. *)
val versus_pcarrange :
  ?config:Search_core.config ->
  Query.temporal_instance -> p:int -> s:int -> m:int ->
  (result * Pcarrange.result) option

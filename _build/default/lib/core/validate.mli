(** Independent solution checking.

    Validators recompute every constraint from the raw instance — they
    share no code with the solvers, so a solver bug cannot hide behind a
    checker bug.  Tests run every solver output through these. *)

type violation =
  | Wrong_size of { expected : int; got : int }
  | Missing_initiator
  | Duplicate_attendee of int
  | Unknown_vertex of int
  | Radius_violation of int       (** attendee beyond s edges of q *)
  | Acquaintance_violation of { vertex : int; non_neighbors : int }
  | Distance_mismatch of { reported : float; actual : float }
  | Window_out_of_range
  | Availability_violation of { vertex : int; slot : int }

val pp_violation : Format.formatter -> violation -> unit

(** [check_sg instance query solution] is the (possibly empty) list of
    violated SGQ constraints. *)
val check_sg : Query.instance -> Query.sgq -> Query.sg_solution -> violation list

(** [check_stg ti query solution] additionally checks the availability
    constraint over the reported window. *)
val check_stg :
  Query.temporal_instance -> Query.stgq -> Query.stg_solution -> violation list

(** [is_valid_sg] / [is_valid_stg] — empty-violation shorthands. *)
val is_valid_sg : Query.instance -> Query.sgq -> Query.sg_solution -> bool

val is_valid_stg :
  Query.temporal_instance -> Query.stgq -> Query.stg_solution -> bool

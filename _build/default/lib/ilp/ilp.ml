type var_kind = Binary | Continuous

type model = {
  kinds : var_kind array;
  sense : Lp.sense;
  objective : (int * float) list;
  constraints : Lp.constr list;
}

type stats = {
  nodes_explored : int;
  lp_solves : int;
}

type outcome =
  | Optimal of { objective : float; solution : float array; stats : stats }
  | Infeasible of stats
  | Unbounded

let binary_model ~n ~sense ~objective ~constraints =
  { kinds = Array.make n Binary; sense; objective; constraints }

let int_tol = 1e-6

(* A branch fixes some binaries; encoded as equality rows appended to the
   base constraints.  The 0 <= x <= 1 relaxation rows for binaries are part
   of the base problem. *)
let solve ?(eps = 1e-9) ?(node_limit = max_int) model =
  let n = Array.length model.kinds in
  let bound_rows =
    Array.to_list model.kinds
    |> List.mapi (fun i kind -> (i, kind))
    |> List.filter_map (fun (i, kind) ->
           match kind with
           | Binary -> Some (Lp.constr [ (i, 1.) ] Lp.Le 1.)
           | Continuous -> None)
  in
  let base_constraints = model.constraints @ bound_rows in
  let relax fixed =
    let fix_rows =
      List.map (fun (i, v) -> Lp.constr [ (i, 1.) ] Lp.Eq (float_of_int v)) fixed
    in
    Lp.solve ~eps
      {
        Lp.n_vars = n;
        sense = model.sense;
        objective = model.objective;
        constraints = base_constraints @ fix_rows;
      }
  in
  let better a b =
    match model.sense with Lp.Minimize -> a < b -. 1e-9 | Lp.Maximize -> a > b +. 1e-9
  in
  let can_beat bound incumbent =
    match incumbent with
    | None -> true
    | Some (obj, _) -> (
        match model.sense with
        | Lp.Minimize -> bound < obj -. 1e-9
        | Lp.Maximize -> bound > obj +. 1e-9)
  in
  let most_fractional solution =
    let best = ref (-1) and best_frac = ref 0. in
    Array.iteri
      (fun i kind ->
        if kind = Binary then begin
          let x = solution.(i) in
          let frac = Float.abs (x -. Float.round x) in
          if frac > int_tol && frac > !best_frac then begin
            best := i;
            best_frac := frac
          end
        end)
      model.kinds;
    !best
  in
  let nodes = ref 0 and lps = ref 0 in
  let incumbent = ref None in
  let unbounded = ref false in
  let rec branch fixed =
    if !unbounded then ()
    else begin
      incr nodes;
      if !nodes > node_limit then failwith "Ilp.solve: node limit exceeded";
      incr lps;
      match relax fixed with
      | Lp.Infeasible -> ()
      | Lp.Unbounded -> unbounded := true
      | Lp.Optimal { objective; solution } ->
          if can_beat objective !incumbent then begin
            let v = most_fractional solution in
            if v < 0 then begin
              (* Integral: round binaries exactly and accept. *)
              let rounded =
                Array.mapi
                  (fun i x ->
                    match model.kinds.(i) with
                    | Binary -> if x >= 0.5 then 1. else 0.
                    | Continuous -> x)
                  solution
              in
              match !incumbent with
              | Some (obj, _) when not (better objective obj) -> ()
              | _ -> incumbent := Some (objective, rounded)
            end
            else begin
              (* Explore the branch the relaxation leans toward first. *)
              let first = if solution.(v) >= 0.5 then 1 else 0 in
              branch ((v, first) :: fixed);
              branch ((v, 1 - first) :: fixed)
            end
          end
    end
  in
  branch [];
  let stats = { nodes_explored = !nodes; lp_solves = !lps } in
  if !unbounded then Unbounded
  else
    match !incumbent with
    | Some (objective, solution) -> Optimal { objective; solution; stats }
    | None -> Infeasible stats

let pp_outcome ppf = function
  | Optimal { objective; stats; _ } ->
      Format.fprintf ppf "optimal(%g, %d nodes)" objective stats.nodes_explored
  | Infeasible stats -> Format.fprintf ppf "infeasible(%d nodes)" stats.nodes_explored
  | Unbounded -> Format.pp_print_string ppf "unbounded"

(** 0/1 integer programming by branch and bound over {!Lp}.

    Together with {!Lp} this replaces CPLEX in the paper's experiments:
    the Appendix-D STGQ model is built with {!Stgq_core.Ip_model} and
    handed to [solve].  Binary variables are relaxed to [0 <= x <= 1];
    branching fixes the most fractional variable, exploring the branch
    suggested by the relaxation first; LP objectives bound the search. *)

type var_kind = Binary | Continuous

type model = {
  kinds : var_kind array;
  sense : Lp.sense;
  objective : (int * float) list;
  constraints : Lp.constr list;
}

type stats = {
  nodes_explored : int;
  lp_solves : int;
}

type outcome =
  | Optimal of { objective : float; solution : float array; stats : stats }
  | Infeasible of stats
  | Unbounded

(** [solve ?eps ?node_limit model] optimises.  [node_limit] (default
    [max_int]) aborts with [Failure] when exceeded — benchmark harnesses
    catch it to cap IP runtimes.  Binary variables in the result are exact
    [0.] or [1.]. *)
val solve : ?eps:float -> ?node_limit:int -> model -> outcome

(** [binary_model ~n ~sense ~objective ~constraints] is a model with all
    [n] variables binary. *)
val binary_model :
  n:int -> sense:Lp.sense -> objective:(int * float) list ->
  constraints:Lp.constr list -> model

val pp_outcome : Format.formatter -> outcome -> unit

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;
  rel : relation;
  rhs : float;
}

type sense = Minimize | Maximize

type problem = {
  n_vars : int;
  sense : sense;
  objective : (int * float) list;
  constraints : constr list;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

let constr coeffs rel rhs = { coeffs; rel; rhs }

let validate problem =
  let check_term what (i, c) =
    if i < 0 || i >= problem.n_vars then
      invalid_arg (Printf.sprintf "Lp: %s references variable %d (n=%d)" what i problem.n_vars);
    if not (Float.is_finite c) then
      invalid_arg (Printf.sprintf "Lp: %s has non-finite coefficient" what)
  in
  List.iter (check_term "objective") problem.objective;
  List.iter
    (fun row ->
      if not (Float.is_finite row.rhs) then invalid_arg "Lp: non-finite rhs";
      List.iter (check_term "constraint") row.coeffs)
    problem.constraints

(* Tableau layout: columns [0 .. n-1] structural, [n .. n+slacks-1] slack /
   surplus, then artificials, last column the rhs.  [basis.(r)] is the
   column basic in row [r].  Row operations keep rhs >= 0 (phase 1 start). *)
type tableau = {
  rows : float array array;  (* m x (cols + 1) *)
  mutable obj : float array; (* reduced-cost row, length cols + 1 *)
  basis : int array;
  cols : int;
  eps : float;
}

let pivot t ~row ~col =
  let pr = t.rows.(row) in
  let d = pr.(col) in
  for j = 0 to t.cols do
    pr.(j) <- pr.(j) /. d
  done;
  let eliminate target =
    let f = target.(col) in
    if Float.abs f > 0. then
      for j = 0 to t.cols do
        target.(j) <- target.(j) -. (f *. pr.(j))
      done
  in
  Array.iteri (fun r tr -> if r <> row then eliminate tr) t.rows;
  eliminate t.obj;
  t.basis.(row) <- col

(* Minimize the objective encoded in [t.obj] (reduced costs; entering on
   negative cost).  Bland's rule: smallest eligible column, then smallest
   basis index among ratio ties.  Returns [`Optimal] or [`Unbounded]. *)
let optimize t ~allowed_cols =
  let m = Array.length t.rows in
  let rec loop () =
    let entering = ref (-1) in
    (try
       for j = 0 to allowed_cols - 1 do
         if t.obj.(j) < -.t.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to m - 1 do
        let a = t.rows.(r).(col) in
        if a > t.eps then begin
          let ratio = t.rows.(r).(t.cols) /. a in
          if
            ratio < !best_ratio -. t.eps
            || (Float.abs (ratio -. !best_ratio) <= t.eps
               && (!best_row < 0 || t.basis.(r) < t.basis.(!best_row)))
          then begin
            best_ratio := ratio;
            best_row := r
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        pivot t ~row:!best_row ~col;
        loop ()
      end
    end
  in
  loop ()

let solve ?(eps = 1e-9) problem =
  validate problem;
  let rows = Array.of_list problem.constraints in
  let m = Array.length rows in
  let n = problem.n_vars in
  (* Normalise to rhs >= 0. *)
  let rows =
    Array.map
      (fun row ->
        if row.rhs < 0. then
          {
            coeffs = List.map (fun (i, c) -> (i, -.c)) row.coeffs;
            rel = (match row.rel with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = -.row.rhs;
          }
        else row)
      rows
  in
  let n_slack =
    Array.fold_left (fun acc r -> match r.rel with Eq -> acc | Le | Ge -> acc + 1) 0 rows
  in
  let n_art =
    Array.fold_left (fun acc r -> match r.rel with Le -> acc | Ge | Eq -> acc + 1) 0 rows
  in
  let cols = n + n_slack + n_art in
  let t =
    {
      rows = Array.init m (fun _ -> Array.make (cols + 1) 0.);
      obj = Array.make (cols + 1) 0.;
      basis = Array.make m (-1);
      cols;
      eps;
    }
  in
  let next_slack = ref n in
  let next_art = ref (n + n_slack) in
  Array.iteri
    (fun r row ->
      let tr = t.rows.(r) in
      List.iter (fun (i, c) -> tr.(i) <- tr.(i) +. c) row.coeffs;
      tr.(cols) <- row.rhs;
      (match row.rel with
      | Le ->
          tr.(!next_slack) <- 1.;
          t.basis.(r) <- !next_slack;
          incr next_slack
      | Ge ->
          tr.(!next_slack) <- -1.;
          incr next_slack;
          tr.(!next_art) <- 1.;
          t.basis.(r) <- !next_art;
          incr next_art
      | Eq ->
          tr.(!next_art) <- 1.;
          t.basis.(r) <- !next_art;
          incr next_art);
      ())
    rows;
  (* Phase 1: minimise the sum of artificials. *)
  let art_lo = n + n_slack in
  if n_art > 0 then begin
    for j = art_lo to cols - 1 do
      t.obj.(j) <- 1.
    done;
    (* Make reduced costs consistent with the artificial basis. *)
    Array.iteri
      (fun r b ->
        if b >= art_lo then
          for j = 0 to cols do
            t.obj.(j) <- t.obj.(j) -. t.rows.(r).(j)
          done)
      t.basis;
    match optimize t ~allowed_cols:cols with
    | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal ->
        ();
        if -.t.obj.(cols) > 1e-7 then raise Exit
  end;
  (* Drive remaining artificials out of the basis where possible. *)
  Array.iteri
    (fun r b ->
      if b >= art_lo then begin
        let found = ref false in
        for j = 0 to art_lo - 1 do
          if (not !found) && Float.abs t.rows.(r).(j) > eps then begin
            pivot t ~row:r ~col:j;
            found := true
          end
        done
      end)
    t.basis;
  (* Phase 2: real objective (as minimisation). *)
  let sign = match problem.sense with Minimize -> 1. | Maximize -> -1. in
  Array.fill t.obj 0 (cols + 1) 0.;
  List.iter (fun (i, c) -> t.obj.(i) <- t.obj.(i) +. (sign *. c)) problem.objective;
  Array.iteri
    (fun r b ->
      let cost = t.obj.(b) in
      if Float.abs cost > 0. then
        for j = 0 to cols do
          t.obj.(j) <- t.obj.(j) -. (cost *. t.rows.(r).(j))
        done)
    t.basis;
  match optimize t ~allowed_cols:art_lo with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let solution = Array.make n 0. in
      Array.iteri
        (fun r b -> if b < n then solution.(b) <- t.rows.(r).(t.cols))
        t.basis;
      let objective =
        List.fold_left (fun acc (i, c) -> acc +. (c *. solution.(i))) 0. problem.objective
      in
      Optimal { objective; solution }

let solve ?eps problem = try solve ?eps problem with Exit -> Infeasible

let eval_objective problem solution =
  List.fold_left (fun acc (i, c) -> acc +. (c *. solution.(i))) 0. problem.objective

let check_feasible ?(eps = 1e-6) problem solution =
  let lhs row =
    List.fold_left (fun acc (i, c) -> acc +. (c *. solution.(i))) 0. row.coeffs
  in
  let violated row =
    let v = lhs row in
    match row.rel with
    | Le -> v > row.rhs +. eps
    | Ge -> v < row.rhs -. eps
    | Eq -> Float.abs (v -. row.rhs) > eps
  in
  let neg =
    Array.to_list solution
    |> List.mapi (fun i x -> (i, x))
    |> List.filter_map (fun (i, x) ->
           if x < -.eps then Some (constr [ (i, 1.) ] Ge 0.) else None)
  in
  neg @ List.filter violated problem.constraints

let pp_outcome ppf = function
  | Optimal { objective; _ } -> Format.fprintf ppf "optimal(%g)" objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"

(** Linear programming by dense two-phase primal simplex.

    Substrate standing in for CPLEX [4] in the paper's Integer-Programming
    comparison.  Problems are stated over variables [x_0 .. x_{n-1}] with
    implicit non-negativity; upper bounds are ordinary constraints.
    Bland's anti-cycling rule guarantees termination. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse row: (variable, coefficient) *)
  rel : relation;
  rhs : float;
}

type sense = Minimize | Maximize

type problem = {
  n_vars : int;
  sense : sense;
  objective : (int * float) list;  (** sparse objective *)
  constraints : constr list;
}

type outcome =
  | Optimal of { objective : float; solution : float array }
  | Infeasible
  | Unbounded

(** [constr coeffs rel rhs] builds a constraint row. *)
val constr : (int * float) list -> relation -> float -> constr

(** [solve ?eps problem] runs two-phase simplex.  [eps] (default [1e-9])
    is the numerical tolerance for pivoting and feasibility tests.
    @raise Invalid_argument on out-of-range variable indices or
    non-finite coefficients. *)
val solve : ?eps:float -> problem -> outcome

(** [eval_objective problem solution] recomputes the objective value. *)
val eval_objective : problem -> float array -> float

(** [check_feasible ?eps problem solution] verifies every constraint and
    non-negativity; returns the violated constraints (empty = feasible). *)
val check_feasible : ?eps:float -> problem -> float array -> constr list

val pp_outcome : Format.formatter -> outcome -> unit

(** Binary heaps: a general priority queue plus the bounded "keep the N
    best" variant used by top-k group queries and the beam-search
    heuristics. *)

module Heap : sig
  type 'a t

  (** [create ~cmp] is an empty heap; [cmp a b < 0] means [a] has higher
      priority (pops first). *)
  val create : cmp:('a -> 'a -> int) -> 'a t

  val size : 'a t -> int
  val is_empty : 'a t -> bool
  val add : 'a t -> 'a -> unit

  (** [peek t] is the highest-priority element.  @raise Not_found when
      empty. *)
  val peek : 'a t -> 'a

  (** [pop t] removes and returns the highest-priority element.
      @raise Not_found when empty. *)
  val pop : 'a t -> 'a

  (** [to_sorted_list t] is all elements in priority order (heap intact). *)
  val to_sorted_list : 'a t -> 'a list
end

module Bounded : sig
  (** Keeps the [capacity] best elements under [cmp] ([cmp a b < 0] means
      [a] is better). *)
  type 'a t

  val create : capacity:int -> cmp:('a -> 'a -> int) -> 'a t
  val size : 'a t -> int

  (** [add t x] inserts [x], evicting the worst kept element when over
      capacity; returns [true] iff [x] was kept. *)
  val add : 'a t -> 'a -> bool

  (** [worst t] is the currently-kept worst element, if any — the
      admission threshold once the structure is full. *)
  val worst : 'a t -> 'a option

  (** [is_full t] — at capacity; further admissions require beating
      [worst]. *)
  val is_full : 'a t -> bool

  (** [to_sorted_list t] is the kept elements, best first. *)
  val to_sorted_list : 'a t -> 'a list
end

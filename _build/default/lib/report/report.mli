(** Fixed-width tables and duration formatting for the experiment
    harness (EXPERIMENTS.md is generated from this output). *)

(** [table ~title ~header rows] renders an aligned text table. *)
val table : title:string -> header:string list -> string list list -> string

(** [csv ~header rows] renders comma-separated values (fields containing
    commas or quotes are quoted). *)
val csv : header:string list -> string list list -> string

(** [ns f] pretty-prints a duration in nanoseconds with a unit suited to
    its magnitude (ns / µs / ms / s). *)
val ns : float -> string

(** [time f] runs [f ()] and returns [(result, elapsed_ns)] using a
    monotonic clock. *)
val time : (unit -> 'a) -> 'a * float

(** [time_median ?runs f] repeats [f] and reports the median wall time in
    nanoseconds (default 3 runs), with the first run's result. *)
val time_median : ?runs:int -> (unit -> 'a) -> 'a * float

lib/socgraph/bounded_dist.ml: Array Float Graph

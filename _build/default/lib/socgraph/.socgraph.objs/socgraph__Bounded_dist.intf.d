lib/socgraph/bounded_dist.mli: Graph

lib/socgraph/builder.ml: Float Graph Hashtbl List Printf

lib/socgraph/builder.mli: Graph

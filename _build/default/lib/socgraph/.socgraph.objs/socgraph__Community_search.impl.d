lib/socgraph/community_search.ml: Array Graph Hashtbl List Queue

lib/socgraph/community_search.mli: Graph

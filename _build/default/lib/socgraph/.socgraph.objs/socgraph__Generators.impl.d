lib/socgraph/generators.ml: Array Graph Hashtbl List Random

lib/socgraph/generators.mli: Graph Random

lib/socgraph/gio.ml: Buffer Fun Graph In_channel List Printf String

lib/socgraph/gio.mli: Graph

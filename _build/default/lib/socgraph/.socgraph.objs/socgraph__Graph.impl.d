lib/socgraph/graph.ml: Array Bitset Float Format Hashtbl List Printf

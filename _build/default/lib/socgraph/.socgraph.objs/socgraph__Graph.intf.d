lib/socgraph/graph.mli: Bitset Format

lib/socgraph/kplex.ml: Graph List

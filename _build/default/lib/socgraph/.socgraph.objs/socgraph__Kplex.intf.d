lib/socgraph/kplex.mli: Graph

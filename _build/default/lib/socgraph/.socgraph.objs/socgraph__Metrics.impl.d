lib/socgraph/metrics.ml: Array Graph Hashtbl List Option

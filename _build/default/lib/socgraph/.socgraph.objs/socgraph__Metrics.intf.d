lib/socgraph/metrics.mli: Graph

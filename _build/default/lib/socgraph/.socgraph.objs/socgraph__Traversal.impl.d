lib/socgraph/traversal.ml: Array Graph Queue

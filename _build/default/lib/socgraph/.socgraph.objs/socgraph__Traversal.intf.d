lib/socgraph/traversal.mli: Graph

type t = {
  n : int;
  edges : (int * int, float) Hashtbl.t;  (* key normalised to (min, max) *)
}

let create n =
  if n < 0 then invalid_arg "Builder.create: negative vertex count";
  { n; edges = Hashtbl.create 64 }

let of_graph g =
  let t = create (Graph.n_vertices g) in
  List.iter (fun (u, v, w) -> Hashtbl.replace t.edges (u, v) w) (Graph.edges g);
  t

let n_vertices t = t.n
let n_edges t = Hashtbl.length t.edges

let key t u v =
  if u = v then invalid_arg "Builder: self-loop";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg (Printf.sprintf "Builder: edge (%d,%d) out of [0,%d)" u v t.n);
  if u < v then (u, v) else (v, u)

let add_edge t u v w =
  if not (Float.is_finite w) || w <= 0. then
    invalid_arg "Builder.add_edge: weight must be positive and finite";
  Hashtbl.replace t.edges (key t u v) w

let remove_edge t u v =
  let k = key t u v in
  if Hashtbl.mem t.edges k then begin
    Hashtbl.remove t.edges k;
    true
  end
  else false

let mem_edge t u v = Hashtbl.mem t.edges (key t u v)

let snapshot t =
  Graph.of_edges t.n (Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) t.edges [])

(** Mutable graph assembly and editing.

    {!Graph.t} is immutable (the query algorithms depend on that); a
    builder accumulates edge edits — initial construction, or deltas to
    an existing graph — and [snapshot]s into a fresh {!Graph.t}.  A
    service applying friendship updates keeps one builder and snapshots
    after each batch. *)

type t

(** [create n] starts an empty builder over [n] vertices. *)
val create : int -> t

(** [of_graph g] starts from an existing graph's edges. *)
val of_graph : Graph.t -> t

val n_vertices : t -> int

(** [n_edges t] is the current number of distinct undirected edges. *)
val n_edges : t -> int

(** [add_edge t u v w] inserts or re-weights the undirected edge.
    @raise Invalid_argument as {!Graph.of_edges} (self-loop, range,
    non-positive weight). *)
val add_edge : t -> int -> int -> float -> unit

(** [remove_edge t u v] deletes the edge; [false] if absent. *)
val remove_edge : t -> int -> int -> bool

(** [mem_edge t u v] tests current presence. *)
val mem_edge : t -> int -> int -> bool

(** [snapshot t] freezes the current edge set into a {!Graph.t}; the
    builder remains usable. *)
val snapshot : t -> Graph.t

let min_internal_degree g vs =
  match vs with
  | [] | [ _ ] -> 0
  | _ ->
      List.fold_left
        (fun acc v ->
          let d =
            List.fold_left
              (fun c w -> if w <> v && Graph.adjacent g v w then c + 1 else c)
              0 vs
          in
          min acc d)
        max_int vs

(* One peeling step works on the anchor's current component: alive
   vertices, degrees counted among alive ones only. *)
let component_of g ~alive anchor =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen anchor ();
  Queue.add anchor queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v (fun u _ ->
        if alive.(u) && not (Hashtbl.mem seen u) then begin
          Hashtbl.replace seen u ();
          Queue.add u queue
        end)
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) seen []

let search g ~anchor =
  let n = Graph.n_vertices g in
  if anchor < 0 || anchor >= n then
    invalid_arg "Community_search.search: anchor out of range";
  let alive = Array.make n true in
  let best = ref [ anchor ] in
  let best_score = ref 0 in
  let continue_peeling = ref true in
  while !continue_peeling do
    let comp = component_of g ~alive anchor in
    let degree_in v =
      Graph.fold_neighbors g v (fun u _ acc -> if alive.(u) then acc + 1 else acc) 0
    in
    (* Degrees within the component equal alive-degrees because the
       component is closed under alive adjacency. *)
    let score =
      List.fold_left (fun acc v -> min acc (degree_in v)) max_int comp
    in
    let score = if List.length comp < 2 then 0 else score in
    if score > !best_score || (score = !best_score && List.length comp < List.length !best)
    then begin
      best := comp;
      best_score := score
    end;
    (* Peel a minimum-degree vertex of the component; stop if it is the
       anchor itself. *)
    let victim =
      List.fold_left
        (fun acc v ->
          match acc with
          | None -> Some v
          | Some w -> if (degree_in v, v) < (degree_in w, w) then Some v else Some w)
        None
        (List.filter (fun v -> v <> anchor) comp)
    in
    match victim with
    | Some v when List.length comp > 1 -> alive.(v) <- false
    | _ -> continue_peeling := false
  done;
  List.sort compare !best

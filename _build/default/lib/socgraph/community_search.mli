(** The community-search baseline of Sozio & Gionis (KDD 2010) — the
    paper's reference [20].

    Given an anchor member, find the connected subgraph containing the
    anchor that maximises the minimum internal degree (a "cocktail
    party" community).  The paper's §2 contrasts SGQ against it: the
    community has no size control and ignores edge weights — our
    experiment harness reproduces that critique quantitatively
    (extension E4).

    Implemented as the classic global peeling algorithm: repeatedly
    delete a minimum-degree vertex, tracking the anchor's component; the
    best component seen is optimal for the monotone min-degree
    objective. *)

(** [search g ~anchor] is the vertex set (sorted) of an optimal
    community containing [anchor]; [[anchor]] when the anchor is
    isolated.
    @raise Invalid_argument if [anchor] is out of range. *)
val search : Graph.t -> anchor:int -> int list

(** [min_internal_degree g vs] is the smallest degree within the induced
    subgraph; [0] for sets smaller than 2. *)
val min_internal_degree : Graph.t -> int list -> int

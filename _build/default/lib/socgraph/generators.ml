type weight_fn = Random.State.t -> float

let default_weight rng = 5. +. Random.State.float rng 30.

let erdos_renyi rng ~n ~p ?(weight = default_weight) () =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v, weight rng) :: !edges
    done
  done;
  Graph.of_edges n !edges

let barabasi_albert rng ~n ~links ?(weight = default_weight) () =
  if links < 1 || n <= links then
    invalid_arg "Generators.barabasi_albert: need n > links >= 1";
  (* [targets] holds one entry per edge endpoint, so uniform sampling from
     it is degree-proportional sampling. *)
  let n_targets = ref 0 in
  let target_arr = Array.make (2 * n * (links + 1)) 0 in
  let push v =
    target_arr.(!n_targets) <- v;
    incr n_targets
  in
  let edges = ref [] in
  (* Seed: a clique on the first [links + 1] vertices. *)
  for u = 0 to links do
    for v = u + 1 to links do
      edges := (u, v, weight rng) :: !edges;
      push u;
      push v
    done
  done;
  for v = links + 1 to n - 1 do
    let chosen = Hashtbl.create links in
    while Hashtbl.length chosen < links do
      let t = target_arr.(Random.State.int rng !n_targets) in
      if t <> v then Hashtbl.replace chosen t ()
    done;
    Hashtbl.iter
      (fun t () ->
        edges := (v, t, weight rng) :: !edges;
        push v;
        push t)
      chosen
  done;
  Graph.of_edges n !edges

let watts_strogatz rng ~n ~neighbors ~beta ?(weight = default_weight) () =
  if neighbors mod 2 <> 0 || neighbors >= n || neighbors < 2 then
    invalid_arg "Generators.watts_strogatz: neighbors must be even, in [2, n)";
  let tbl = Hashtbl.create (n * neighbors) in
  let has u v =
    let key = if u < v then (u, v) else (v, u) in
    Hashtbl.mem tbl key
  in
  let add u v =
    let key = if u < v then (u, v) else (v, u) in
    Hashtbl.replace tbl key ()
  in
  for u = 0 to n - 1 do
    for off = 1 to neighbors / 2 do
      add u ((u + off) mod n)
    done
  done;
  (* Rewire: move the far endpoint to a uniform non-duplicate target. *)
  let pairs = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
  List.iter
    (fun (u, v) ->
      if Random.State.float rng 1.0 < beta then begin
        Hashtbl.remove tbl (if u < v then (u, v) else (v, u));
        let rec pick tries =
          let t = Random.State.int rng n in
          if tries > 100 || (t <> u && not (has u t)) then t else pick (tries + 1)
        in
        let t = pick 0 in
        if t <> u && not (has u t) then add u t else add u v
      end)
    pairs;
  let edges = Hashtbl.fold (fun (u, v) () acc -> (u, v, weight rng) :: acc) tbl [] in
  Graph.of_edges n edges

let close_weight rng = 5. +. Random.State.float rng 15.
let far_weight rng = 20. +. Random.State.float rng 15.

let community rng ~sizes ~p_in ~p_out ?(weight_in = close_weight)
    ?(weight_out = far_weight) () =
  let n = List.fold_left ( + ) 0 sizes in
  let block = Array.make n 0 in
  let fill_blocks () =
    let v = ref 0 in
    List.iteri
      (fun b size ->
        for _ = 1 to size do
          block.(!v) <- b;
          incr v
        done)
      sizes
  in
  fill_blocks ();
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let same = block.(u) = block.(v) in
      let p = if same then p_in else p_out in
      if Random.State.float rng 1.0 < p then
        edges := (u, v, (if same then weight_in else weight_out) rng) :: !edges
    done
  done;
  Graph.of_edges n !edges

(** Random graph generators.

    All generators are deterministic functions of the supplied
    [Random.State.t].  [weight] draws an edge's social distance; defaults
    sample uniformly from [5.0 .. 35.0] (the scale of the paper's worked
    examples).  Generated graphs never contain self-loops or duplicate
    edges. *)

type weight_fn = Random.State.t -> float

(** Uniform social distance in [5, 35). *)
val default_weight : weight_fn

(** [erdos_renyi rng ~n ~p] includes each of the [n(n-1)/2] pairs
    independently with probability [p]. *)
val erdos_renyi : Random.State.t -> n:int -> p:float -> ?weight:weight_fn -> unit -> Graph.t

(** [barabasi_albert rng ~n ~links] grows a preferential-attachment graph:
    each new vertex attaches to [links] distinct existing vertices chosen
    proportionally to degree.  Produces the heavy-tailed degree structure
    of coauthorship networks.  Requires [n > links >= 1]. *)
val barabasi_albert :
  Random.State.t -> n:int -> links:int -> ?weight:weight_fn -> unit -> Graph.t

(** [watts_strogatz rng ~n ~neighbors ~beta] builds a ring lattice where
    each vertex connects to its [neighbors] nearest ring neighbours (must
    be even, [< n]), then rewires each edge with probability [beta]. *)
val watts_strogatz :
  Random.State.t -> n:int -> neighbors:int -> beta:float -> ?weight:weight_fn ->
  unit -> Graph.t

(** [community rng ~sizes ~p_in ~p_out] builds a planted-partition graph
    with blocks of the given [sizes]; intra-block pairs get an edge with
    probability [p_in] and a weight drawn from [weight_in] (default:
    close, uniform [5,20)), inter-block pairs with [p_out] from
    [weight_out] (default: distant, uniform [20,35)).  Models the
    194-person multi-community population of the paper's user study. *)
val community :
  Random.State.t -> sizes:int list -> p_in:float -> p_out:float ->
  ?weight_in:weight_fn -> ?weight_out:weight_fn -> unit -> Graph.t

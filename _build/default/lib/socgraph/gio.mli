(** Plain-text edge-list persistence.

    Format: a header line ["# vertices <n>"] followed by one
    ["<u> <v> <w>"] line per undirected edge; blank lines and lines
    beginning with ['#'] are ignored on input (except the required
    header). *)

(** [to_string g] serialises [g]. *)
val to_string : Graph.t -> string

(** [of_string s] parses a graph.  @raise Failure on malformed input. *)
val of_string : string -> Graph.t

(** [save g path] writes [to_string g] to [path]. *)
val save : Graph.t -> string -> unit

(** [load path] reads and parses [path]. *)
val load : string -> Graph.t

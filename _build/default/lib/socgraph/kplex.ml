let non_neighbors_within g group v =
  List.fold_left
    (fun acc u -> if u <> v && not (Graph.adjacent g u v) then acc + 1 else acc)
    0 group

let satisfies g ~k group =
  List.for_all (fun v -> non_neighbors_within g group v <= k) group

let violators g ~k group =
  List.filter_map
    (fun v ->
      let nn = non_neighbors_within g group v in
      if nn > k then Some (v, nn) else None)
    group

let enumerate_maximal g ~k ?(min_size = 1) () =
  let n = Graph.n_vertices g in
  let results = ref [] in
  (* Include/exclude over vertices in id order; the acquaintance property
     is monotone, so an infeasible partial set cuts the branch.  At the
     leaf, maximality = no vertex (kept or excluded) extends the set. *)
  let rec go v chosen excluded =
    if v = n then begin
      let can_add u = satisfies g ~k (u :: chosen) in
      let maximal = chosen <> [] && not (List.exists can_add excluded) in
      if maximal && List.length chosen >= min_size then
        results := List.rev chosen :: !results
    end
    else begin
      if satisfies g ~k (v :: chosen) then go (v + 1) (v :: chosen) excluded;
      go (v + 1) chosen (v :: excluded)
    end
  in
  go 0 [] [];
  List.sort compare !results

let max_group_size g ~k ~must_include candidates =
  let fixed = List.sort_uniq compare must_include in
  let pool =
    List.filter (fun v -> not (List.mem v fixed)) (List.sort_uniq compare candidates)
  in
  (* Depth-first over include/exclude decisions; the remaining pool size
     bounds the best completion, which prunes most of the tree. *)
  let best = ref (if satisfies g ~k fixed then List.length fixed else 0) in
  let rec go chosen size = function
    | [] -> if size > !best then best := size
    | v :: rest ->
        if size + 1 + List.length rest > !best then begin
          let with_v = v :: chosen in
          if satisfies g ~k with_v then go with_v (size + 1) rest;
          if size + List.length rest > !best then go chosen size rest
        end
  in
  if satisfies g ~k fixed then go fixed (List.length fixed) pool;
  !best

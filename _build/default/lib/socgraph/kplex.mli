(** k-plex predicates.

    A set [S] is a {e k-plex} when every member is adjacent to at least
    [|S| - k] members (itself included), i.e. has at most [k - 1]
    non-neighbours among the others.  The paper's acquaintance constraint
    "each attendee has at most [k] unacquainted other attendees" makes the
    group a [(k+1)]-plex; this module speaks the paper's dialect: all
    functions below take the acquaintance bound [k] = allowed unacquainted
    {e others}. *)

(** [non_neighbors_within g group v] counts members of [group] other than
    [v] that are not adjacent to [v].  [v] need not belong to [group]. *)
val non_neighbors_within : Graph.t -> int list -> int -> int

(** [satisfies g ~k group] is [true] iff every member of [group] has at
    most [k] non-neighbours among the other members. *)
val satisfies : Graph.t -> k:int -> int list -> bool

(** [violators g ~k group] lists members exceeding the bound, with their
    non-neighbour counts. *)
val violators : Graph.t -> k:int -> int list -> (int * int) list

(** [max_group_size g ~k ~must_include candidates] is the size of the
    largest subset of [candidates ∪ must_include] containing all of
    [must_include] that satisfies the acquaintance bound [k].  Exhaustive
    branch and bound intended for test oracles on small inputs
    (≤ ~20 candidates). *)
val max_group_size : Graph.t -> k:int -> must_include:int list -> int list -> int

(** [enumerate_maximal g ~k ?min_size ()] lists every maximal vertex set
    satisfying the acquaintance bound [k] with at least [min_size]
    members (default 1) — the problem of the paper's related work
    [11,16,18,21] in the acquaintance dialect.  Sets are sorted, listed
    in lexicographic order.  Exponential; intended for small graphs
    (≤ ~25 vertices). *)
val enumerate_maximal : Graph.t -> k:int -> ?min_size:int -> unit -> int list list

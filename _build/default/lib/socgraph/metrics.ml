type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
}

let degree_stats g =
  let n = Graph.n_vertices g in
  if n = 0 then { min_degree = 0; max_degree = 0; mean_degree = 0. }
  else begin
    let mn = ref max_int and mx = ref 0 and sum = ref 0 in
    for v = 0 to n - 1 do
      let d = Graph.degree g v in
      if d < !mn then mn := d;
      if d > !mx then mx := d;
      sum := !sum + d
    done;
    { min_degree = !mn; max_degree = !mx; mean_degree = float_of_int !sum /. float_of_int n }
  end

let clustering g v =
  let ns = Array.of_list (Graph.neighbor_ids g v) in
  let d = Array.length ns in
  if d < 2 then 0.
  else begin
    let linked = ref 0 in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if Graph.adjacent g ns.(i) ns.(j) then incr linked
      done
    done;
    2. *. float_of_int !linked /. float_of_int (d * (d - 1))
  end

let mean_clustering g =
  let n = Graph.n_vertices g in
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    for v = 0 to n - 1 do
      sum := !sum +. clustering g v
    done;
    !sum /. float_of_int n
  end

type weight_stats = {
  min_weight : float;
  max_weight : float;
  mean_weight : float;
}

let weight_stats g =
  match Graph.edges g with
  | [] -> invalid_arg "Metrics.weight_stats: graph has no edges"
  | edges ->
      let mn = ref infinity and mx = ref neg_infinity and sum = ref 0. in
      List.iter
        (fun (_, _, w) ->
          if w < !mn then mn := w;
          if w > !mx then mx := w;
          sum := !sum +. w)
        edges;
      {
        min_weight = !mn;
        max_weight = !mx;
        mean_weight = !sum /. float_of_int (List.length edges);
      }

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.n_vertices g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

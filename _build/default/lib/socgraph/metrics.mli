(** Structural statistics used to sanity-check generated workloads. *)

type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
}

val degree_stats : Graph.t -> degree_stats

(** [clustering g v] is the local clustering coefficient of [v]: the
    fraction of neighbour pairs that are themselves adjacent; [0.] when
    [degree g v < 2]. *)
val clustering : Graph.t -> int -> float

(** [mean_clustering g] averages [clustering] over all vertices. *)
val mean_clustering : Graph.t -> float

type weight_stats = {
  min_weight : float;
  max_weight : float;
  mean_weight : float;
}

(** @raise Invalid_argument on a graph with no edges. *)
val weight_stats : Graph.t -> weight_stats

(** [degree_histogram g] maps degree -> number of vertices, sorted by
    degree. *)
val degree_histogram : Graph.t -> (int * int) list

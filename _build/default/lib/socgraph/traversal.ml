let bfs_hops g src =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Traversal.bfs_hops: src out of range";
  let hops = Array.make n max_int in
  hops.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Graph.iter_neighbors g v (fun u _ ->
        if hops.(u) = max_int then begin
          hops.(u) <- hops.(v) + 1;
          Queue.add u queue
        end)
  done;
  hops

let within_hops g src h =
  let hops = bfs_hops g src in
  let acc = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if hops.(v) <= h then acc := v :: !acc
  done;
  !acc

let components g =
  let n = Graph.n_vertices g in
  let ids = Array.make n (-1) in
  let next_id = ref 0 in
  for v = 0 to n - 1 do
    if ids.(v) < 0 then begin
      let id = !next_id in
      incr next_id;
      let queue = Queue.create () in
      ids.(v) <- id;
      Queue.add v queue;
      while not (Queue.is_empty queue) do
        let x = Queue.pop queue in
        Graph.iter_neighbors g x (fun u _ ->
            if ids.(u) < 0 then begin
              ids.(u) <- id;
              Queue.add u queue
            end)
      done
    end
  done;
  (ids, !next_id)

let is_connected g =
  let _, c = components g in
  c <= 1

(** Unweighted traversals: hop counts and connected components. *)

(** [bfs_hops g src] is the array of minimum edge counts from [src];
    [max_int] where unreachable. *)
val bfs_hops : Graph.t -> int -> int array

(** [within_hops g src h] lists vertices reachable from [src] in at most
    [h] edges, increasing id order (includes [src]). *)
val within_hops : Graph.t -> int -> int -> int list

(** [components g] assigns a component id in [0 .. c-1] to every vertex and
    returns [(ids, c)]. *)
val components : Graph.t -> int array * int

(** [is_connected g] is [true] iff the graph has at most one component
    (the empty graph is connected). *)
val is_connected : Graph.t -> bool

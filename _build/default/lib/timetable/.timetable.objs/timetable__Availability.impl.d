lib/timetable/availability.ml: Bitset List

lib/timetable/availability.mli: Bitset Format

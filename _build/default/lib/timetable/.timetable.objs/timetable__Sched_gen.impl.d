lib/timetable/sched_gen.ml: Array Availability Random Slot

lib/timetable/sched_gen.mli: Availability Random

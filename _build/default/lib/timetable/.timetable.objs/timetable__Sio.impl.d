lib/timetable/sio.ml: Array Availability Buffer Fun In_channel List Printf String

lib/timetable/sio.mli: Availability

lib/timetable/slot.ml: Format

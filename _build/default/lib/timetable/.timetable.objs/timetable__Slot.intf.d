lib/timetable/slot.mli: Format

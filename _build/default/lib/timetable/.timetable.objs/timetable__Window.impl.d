lib/timetable/window.ml: Availability List

lib/timetable/window.mli: Availability

type t = Bitset.t

let create ~horizon = Bitset.create horizon
let of_bitset b = b
let bits t = t
let horizon = Bitset.length
let copy = Bitset.copy
let available = Bitset.mem
let set_free = Bitset.set_range
let set_busy = Bitset.clear_range
let free_count = Bitset.count

let window_free t ~start ~len =
  start >= 0
  && start + len <= horizon t
  && (len <= 0 || Bitset.next_clear t start >= start + len)

let common = function
  | [] -> invalid_arg "Availability.common: empty list"
  | first :: rest ->
      let acc = Bitset.copy first in
      List.iter (fun t -> Bitset.inter_into ~dst:acc t) rest;
      acc

let windows t ~len =
  let n = horizon t in
  let acc = ref [] in
  for start = n - len downto 0 do
    if window_free t ~start ~len then acc := start :: !acc
  done;
  !acc

let run_around = Bitset.run_containing
let has_run_in t ~len ~lo ~hi = Bitset.has_run_of t ~len ~lo ~hi
let pp = Bitset.pp

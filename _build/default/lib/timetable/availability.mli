(** One person's availability over a slot horizon.

    A thin veneer over {!Bitset.t} (bit set = available) adding the
    window-algebra the query algorithms need. *)

type t

(** [create ~horizon] is an all-busy availability over [horizon] slots. *)
val create : horizon:int -> t

(** [of_bitset b] adopts [b] (no copy). *)
val of_bitset : Bitset.t -> t

(** [bits t] exposes the underlying bitset (shared, not a copy). *)
val bits : t -> Bitset.t

val horizon : t -> int
val copy : t -> t

(** [available t slot] tests one slot. *)
val available : t -> int -> bool

(** [set_free t lo hi] marks the inclusive slot range available. *)
val set_free : t -> int -> int -> unit

(** [set_busy t lo hi] marks the inclusive slot range unavailable. *)
val set_busy : t -> int -> int -> unit

(** [free_count t] is the number of available slots. *)
val free_count : t -> int

(** [window_free t ~start ~len] is [true] iff all of
    [start .. start+len-1] are available (and inside the horizon). *)
val window_free : t -> start:int -> len:int -> bool

(** [common ts] intersects the availabilities (same horizon required).
    @raise Invalid_argument on an empty list or mismatched horizons. *)
val common : t list -> t

(** [windows t ~len] lists every start slot of a fully-available window of
    [len] slots, in increasing order. *)
val windows : t -> len:int -> int list

(** [run_around t slot] is the maximal inclusive range of consecutive
    available slots containing [slot], if [slot] is available. *)
val run_around : t -> int -> (int * int) option

(** [has_run_in t ~len ~lo ~hi] tests for [len] consecutive available slots
    within the inclusive window [lo..hi]. *)
val has_run_in : t -> len:int -> lo:int -> hi:int -> bool

val pp : Format.formatter -> t -> unit

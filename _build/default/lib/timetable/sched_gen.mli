(** Calendar-like schedule synthesis.

    Substitute for the paper's 194-person Google-Calendar dataset.  Shared
    calendars follow event semantics — a slot is available unless an event
    covers it — so schedules start fully free and each archetype's routine
    punches busy blocks in (office hours, lectures, shifts, errands).
    This yields the long free runs (evenings, nights, weekends) that make
    the paper's large-m experiments satisfiable. *)

type archetype =
  | Office_worker  (** busy 9-18 weekdays plus occasional evening events *)
  | Student        (** scattered weekday lecture blocks *)
  | Shift_worker   (** alternating day/night work weeks *)
  | Freelancer     (** a few random events per day *)

val all_archetypes : archetype list
val archetype_to_string : archetype -> string

(** [person rng ~days ~archetype] draws one person's availability over a
    [days]-day horizon. *)
val person : Random.State.t -> days:int -> archetype:archetype -> Availability.t

(** [population rng ~days ~n] draws [n] schedules with archetypes in the
    rough proportions of the paper's mixed communities
    (50% office, 20% student, 15% shift, 15% freelancer). *)
val population : Random.State.t -> days:int -> n:int -> Availability.t array

(** [always_free ~days] — available in every slot (reduces STGQ to SGQ,
    used by tests mirroring the paper's NP-hardness argument in §4.1). *)
val always_free : days:int -> Availability.t

(** Plain-text persistence for schedule sets.

    Format: a header ["# horizon <slots>"], then one ["<id>: <bits>"] line
    per person where [<bits>] is a 0/1 string, slot 0 leftmost.  Blank
    lines and other ['#'] comments are ignored. *)

(** [to_string schedules] serialises the array. *)
val to_string : Availability.t array -> string

(** [of_string s] parses a schedule set.
    @raise Failure on malformed input or mismatched horizons. *)
val of_string : string -> Availability.t array

val save : Availability.t array -> string -> unit
val load : string -> Availability.t array

let slots_per_hour = 2
let slots_per_day = 24 * slots_per_hour

let horizon ~days = days * slots_per_day

let of_day_time ~day ~hour ~minute =
  if hour < 0 || hour > 23 then invalid_arg "Slot.of_day_time: hour out of range";
  if minute < 0 || minute > 59 then invalid_arg "Slot.of_day_time: minute out of range";
  (day * slots_per_day) + (hour * slots_per_hour) + (minute * slots_per_hour / 60)

let day_of slot = slot / slots_per_day

let time_of slot =
  let within = slot mod slots_per_day in
  (within / slots_per_hour, within mod slots_per_hour * (60 / slots_per_hour))

let pp ppf slot =
  let h, m = time_of slot in
  Format.fprintf ppf "d%d %02d:%02d" (day_of slot) h m

let to_string slot = Format.asprintf "%a" pp slot

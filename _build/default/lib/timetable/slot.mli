(** Time-slot arithmetic.

    Following the paper's evaluation (§5, Fig. 1(e)) a slot is half an
    hour; a day holds 48 slots.  Slots are 0-indexed here; the paper's
    1-indexed slot [i] corresponds to index [i - 1] (relevant for the
    pivot-slot rule of Lemma 4, see {!Window}). *)

val slots_per_hour : int
val slots_per_day : int

(** [horizon ~days] is the number of slots in a [days]-day schedule. *)
val horizon : days:int -> int

(** [of_day_time ~day ~hour ~minute] is the slot index for a wall-clock
    instant; [minute] is truncated to the slot grid.
    @raise Invalid_argument outside [0..23] hours / [0..59] minutes. *)
val of_day_time : day:int -> hour:int -> minute:int -> int

(** [day_of slot] is the 0-indexed day containing [slot]. *)
val day_of : int -> int

(** [time_of slot] is the [(hour, minute)] of the slot's start. *)
val time_of : int -> int * int

(** [pp] prints as ["d<day> <hh>:<mm>"]. *)
val pp : Format.formatter -> int -> unit

(** [to_string slot] is [Format.asprintf "%a" pp slot]. *)
val to_string : int -> string

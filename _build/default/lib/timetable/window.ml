let pivots ~horizon ~m =
  if m <= 0 then invalid_arg "Window.pivots: m must be positive";
  let rec go t acc = if t >= horizon then List.rev acc else go (t + m) (t :: acc) in
  go (m - 1) []

let interval ~horizon ~m pivot = (max 0 (pivot - m + 1), min (horizon - 1) (pivot + m - 1))

(* The unique t in [start, start+m-1] with (t+1) mod m = 0. *)
let pivot_of ~m start = ((start + m) / m * m) - 1

let group_windows avails ~len =
  let common = Availability.common avails in
  Availability.windows common ~len

let best_window_through avails ~m ~pivot =
  let common = Availability.common avails in
  let horizon = Availability.horizon common in
  let lo, hi = interval ~horizon ~m pivot in
  let rec scan start =
    if start + m - 1 > hi then None
    else if Availability.window_free common ~start ~len:m then Some start
    else scan (start + 1)
  in
  scan lo

(** Pivot time slots (Lemma 4) and activity-window search.

    The paper indexes slots from 1 and declares slot [i·m] a pivot.  With
    our 0-indexed slots a pivot is any [t] with [(t + 1) mod m = 0].  Every
    window of [m] consecutive slots contains exactly one pivot, and every
    window containing pivot [t] lies inside the interval
    [[t - m + 1, t + m - 1]] — so scanning pivots covers all windows
    exactly once. *)

(** [pivots ~horizon ~m] lists the 0-indexed pivot slots for activity
    length [m] within [0 .. horizon-1], in increasing order.
    @raise Invalid_argument if [m <= 0]. *)
val pivots : horizon:int -> m:int -> int list

(** [interval ~horizon ~m pivot] is the inclusive slot interval
    [(max 0 (pivot-m+1), min (horizon-1) (pivot+m-1))] that any feasible
    window through [pivot] must occupy. *)
val interval : horizon:int -> m:int -> int -> int * int

(** [pivot_of ~m start] is the unique pivot inside the window
    [start .. start+m-1]. *)
val pivot_of : m:int -> int -> int

(** [group_windows avails ~len] lists every start slot at which all the
    given availabilities share a [len]-slot window. *)
val group_windows : Availability.t list -> len:int -> int list

(** [best_window_through avails ~m ~pivot] is [Some start] for the
    earliest common [m]-window containing [pivot], scanning only the pivot
    interval. *)
val best_window_through : Availability.t list -> m:int -> pivot:int -> int option

lib/workload/coauthor.ml: Array People194 Random Socgraph Timetable

lib/workload/coauthor.mli: Socgraph Timetable

lib/workload/people194.ml: Array Float Fun List Random Socgraph Timetable

lib/workload/people194.mli: Random Socgraph Timetable

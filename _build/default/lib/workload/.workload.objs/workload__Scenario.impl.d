lib/workload/scenario.ml: Coauthor Fun List People194 Socgraph Stgq_core

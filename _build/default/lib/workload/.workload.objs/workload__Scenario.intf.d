lib/workload/scenario.mli: Socgraph Stgq_core Timetable

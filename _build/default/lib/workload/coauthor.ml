type dataset = {
  graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;
}

(* Compose one schedule by sampling, for every day, that day's slots from
   a random member of the base pool — the paper's §5.1 recipe. *)
let sampled_schedule rng ~days ~(pool : Timetable.Availability.t array) =
  let horizon = Timetable.Slot.horizon ~days in
  let mine = Timetable.Availability.create ~horizon in
  for day = 0 to days - 1 do
    let donor = pool.(Random.State.int rng (Array.length pool)) in
    let lo = day * Timetable.Slot.slots_per_day in
    for slot = lo to lo + Timetable.Slot.slots_per_day - 1 do
      if Timetable.Availability.available donor slot then
        Timetable.Availability.set_free mine slot slot
    done
  done;
  mine

let generate ?(seed = 12800) ?(days = 7) ?(links = 5) ~n () =
  let rng = Random.State.make [| seed; n |] in
  let graph =
    Socgraph.Generators.barabasi_albert rng ~n ~links
      ~weight:(fun rng -> People194.interaction_distance rng ~close:(Random.State.bool rng))
      ()
  in
  let pool = Timetable.Sched_gen.population rng ~days ~n:People194.population in
  let schedules = Array.init n (fun _ -> sampled_schedule rng ~days ~pool) in
  { graph; schedules }

(** The synthetic stand-in for the paper's 12800-person network (§5.1).

    The paper grows its large workload from a coauthorship network [7]
    and assigns each person's daily schedule by sampling from the
    194-person real dataset.  Here the graph is a preferential-attachment
    (Barabási–Albert) network — the canonical generative model for
    coauthorship degree structure — with interaction-model distances, and
    each person's schedule is assembled day by day by sampling a random
    day from a 194-person base pool, exactly the paper's recipe. *)

type dataset = {
  graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;
}

(** [generate ?seed ?days ?links ~n ()] — [links] (default 5) attachment
    edges per new vertex; [n] is the network size (the paper uses 194,
    800, 3200, 12800). *)
val generate : ?seed:int -> ?days:int -> ?links:int -> n:int -> unit -> dataset

(** The synthetic stand-in for the paper's 194-person real dataset (§5.1).

    The paper invited 194 people from schools, government, business and
    industry, collected their Google-Calendar schedules, and derived edge
    distances from pairwise interaction (meeting / phone / mail
    frequency, per its references [10,12,13]).  This module synthesises a
    dataset with the same shape: a community-structured 194-vertex graph
    whose distances come from a simulated interaction model, plus
    archetype-based calendar schedules (see {!Timetable.Sched_gen}). *)

type dataset = {
  graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;  (** one per vertex *)
  communities : int array;  (** vertex -> community id *)
}

val population : int
(** 194, as in the paper. *)

(** [interaction_distance rng ~close] draws a social distance from the
    interaction model: meeting/call/mail counts are sampled (higher for
    intra-community pairs, [close = true]), combined into an interaction
    score, and mapped to a distance in [5, 35] that decays with the
    score. *)
val interaction_distance : Random.State.t -> close:bool -> float

(** [generate ?seed ?days ()] builds the dataset ([days] defaults to 7 —
    the longest schedule length in Fig. 1(f)). *)
val generate : ?seed:int -> ?days:int -> unit -> dataset

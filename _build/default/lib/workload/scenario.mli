(** Packaged query scenarios shared by the examples and the benchmark
    harness: a dataset, a deterministic initiator choice and instance
    builders. *)

(** [pick_initiator ?rank graph] is a well-connected vertex: the one with
    the [rank]-th highest degree (default 3 — busy but not the global
    hub, like the paper's example initiators). *)
val pick_initiator : ?rank:int -> Socgraph.Graph.t -> int

(** [social_instance graph ~initiator] wraps a graph as a query instance. *)
val social_instance : Socgraph.Graph.t -> initiator:int -> Stgq_core.Query.instance

(** [temporal_instance graph schedules ~initiator] builds the full STGQ
    instance. *)
val temporal_instance :
  Socgraph.Graph.t -> Timetable.Availability.t array -> initiator:int ->
  Stgq_core.Query.temporal_instance

(** [people194 ?seed ?days ()] — the standard small scenario: 194-person
    dataset with its default initiator. *)
val people194 : ?seed:int -> ?days:int -> unit -> Stgq_core.Query.temporal_instance

(** [coauthor ?seed ?days ~n ()] — the scalable scenario. *)
val coauthor : ?seed:int -> ?days:int -> n:int -> unit -> Stgq_core.Query.temporal_instance

test/gen.ml: Array List Printf QCheck QCheck_alcotest Socgraph Stgq_core String Timetable

test/suite_arrange.ml: Alcotest Array Float Gen List Pcarrange Query Socgraph Stgarrange Stgq_core Timetable Validate

test/suite_astar.ml: Alcotest Astar Float Gen Query Random Sgselect Socgraph Stgq_core Validate

test/suite_auto.ml: Alcotest Auto Float Gen List Query Sgselect Socgraph Stgq_core Stgselect Validate

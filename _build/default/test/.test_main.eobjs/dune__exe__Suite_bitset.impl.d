test/suite_bitset.ml: Alcotest Bitset Fun Gen List Printf QCheck String

test/suite_community.ml: Alcotest Fun Gen List Printf QCheck Socgraph

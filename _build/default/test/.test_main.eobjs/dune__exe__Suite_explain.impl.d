test/suite_explain.ml: Alcotest Astring_like Explain Float Format Gen List Query Sgselect Socgraph Stgq_core Stgselect

test/suite_graph.ml: Alcotest Array Float Fun Gen List Printf QCheck Random Socgraph

test/suite_heuristics.ml: Alcotest Float Gen Heuristics Option Query Sgselect Socgraph Stgq_core Stgselect Validate

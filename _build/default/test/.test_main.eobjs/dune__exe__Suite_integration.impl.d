test/suite_integration.ml: Alcotest Baseline Explain Filename Float Fun Ip_model List Option Parallel Planner Printf Query Socgraph Stgq_core Stgselect Sys Timetable Topk Validate Workload

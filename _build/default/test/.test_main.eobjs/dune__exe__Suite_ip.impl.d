test/suite_ip.ml: Alcotest Float Gen Ip_model Query Random Sgselect Socgraph Stgq_core Stgselect Validate

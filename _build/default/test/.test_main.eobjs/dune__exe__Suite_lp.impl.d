test/suite_lp.ml: Alcotest Array Float Gen Ilp List Lp Printf QCheck String

test/suite_paper_example.ml: Alcotest Array Float List Option Printf Query Sgselect Socgraph Stgq_core Stgselect Timetable

test/suite_parallel.ml: Alcotest Float Gen Parallel Query Random Socgraph Stgq_core Stgselect Timetable Validate

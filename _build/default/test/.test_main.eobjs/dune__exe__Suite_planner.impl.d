test/suite_planner.ml: Alcotest Array Float Gen Planner Query Random Socgraph Stgq_core Stgselect Timetable

test/suite_pqueue.ml: Alcotest Gen List Pqueue Printf QCheck String

test/suite_report.ml: Alcotest Array List Report String Sys

test/suite_search.ml: Alcotest Array Baseline Float Gen List Option Query Search_core Sgselect Socgraph Stgq_core Stgselect Timetable Validate

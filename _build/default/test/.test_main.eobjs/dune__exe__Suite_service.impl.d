test/suite_service.ml: Alcotest Array Float Gen Query Service Sgselect Socgraph Stgq_core Stgselect Timetable

test/suite_timetable.ml: Alcotest Array Bitset Fun Gen List Printf QCheck Random String Timetable

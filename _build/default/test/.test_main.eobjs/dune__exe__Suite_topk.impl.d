test/suite_topk.ml: Alcotest Array Feasible Float Gen List Query Sgselect Socgraph Stgq_core Stgselect Topk Validate

test/suite_validate.ml: Alcotest Array Gen List Query Sgselect Socgraph Stgq_core Stgselect Timetable Validate

test/suite_workload.ml: Alcotest Array Bitset Fun List Printf Query Random Sgselect Socgraph Stgq_core Stgselect Timetable Validate Workload

(* Shared random-case generation for the property suites.  All cases are
   small enough for the brute-force oracles to stay fast. *)

module G = QCheck.Gen

let graph_edges ~n ~density st =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if G.float_bound_inclusive 1.0 st < density then begin
        let w = float_of_int (1 + G.int_bound 19 st) in
        edges := (u, v, w) :: !edges
      end
    done
  done;
  !edges

type sg_case = {
  n : int;
  edges : (int * int * float) list;
  query : Stgq_core.Query.sgq;
}

let sg_case_gen ?(max_n = 11) ?(max_p = 6) st =
  let n = 4 + G.int_bound (max_n - 4) st in
  let density = 0.25 +. G.float_bound_inclusive 0.45 st in
  let edges = graph_edges ~n ~density st in
  let p = 2 + G.int_bound (min max_p n - 2) st in
  let s = 1 + G.int_bound 2 st in
  let k = G.int_bound 3 st in
  { n; edges; query = { Stgq_core.Query.p; s; k } }

let pp_edges edges =
  String.concat "; "
    (List.map (fun (u, v, w) -> Printf.sprintf "%d-%d:%g" u v w) edges)

let print_sg_case { n; edges; query = { p; s; k } } =
  Printf.sprintf "n=%d p=%d s=%d k=%d edges=[%s]" n p s k (pp_edges edges)

let sg_case ?max_n ?max_p () =
  QCheck.make ~print:print_sg_case (sg_case_gen ?max_n ?max_p)

let instance_of_sg_case { n; edges; _ } =
  { Stgq_core.Query.graph = Socgraph.Graph.of_edges n edges; initiator = 0 }

(* Availability over a small horizon: a few random free runs. *)
let availability_gen ~horizon st =
  let a = Timetable.Availability.create ~horizon in
  let runs = 1 + G.int_bound 3 st in
  for _ = 1 to runs do
    let lo = G.int_bound (horizon - 1) st in
    let len = 1 + G.int_bound (horizon / 2) st in
    Timetable.Availability.set_free a lo (min (horizon - 1) (lo + len - 1))
  done;
  a

type stg_case = {
  sg : sg_case;
  horizon : int;
  free_runs : (int * int) list array;  (* printable schedule description *)
  m : int;
}

let stg_case_gen ?(max_n = 8) ?(max_p = 5) st =
  let sg = sg_case_gen ~max_n ~max_p st in
  let horizon = 16 + G.int_bound 16 st in
  let m = 2 + G.int_bound 2 st in
  let free_runs =
    Array.init sg.n (fun _ ->
        let a = availability_gen ~horizon st in
        (* Record as runs for printing and faithful reconstruction. *)
        let runs = ref [] in
        let i = ref 0 in
        while !i < horizon do
          if Timetable.Availability.available a !i then begin
            match Timetable.Availability.run_around a !i with
            | Some (lo, hi) ->
                runs := (lo, hi) :: !runs;
                i := hi + 1
            | None -> incr i
          end
          else incr i
        done;
        List.rev !runs)
  in
  { sg; horizon; free_runs; m }

let print_stg_case { sg; horizon; free_runs; m } =
  let sched =
    Array.to_list free_runs
    |> List.mapi (fun v runs ->
           Printf.sprintf "v%d:%s" v
             (String.concat ","
                (List.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) runs)))
    |> String.concat " "
  in
  Printf.sprintf "%s horizon=%d m=%d sched=[%s]" (print_sg_case sg) horizon m sched

let stg_case ?max_n ?max_p () =
  QCheck.make ~print:print_stg_case (stg_case_gen ?max_n ?max_p)

let temporal_instance_of_stg_case { sg; horizon; free_runs; m = _ } =
  let schedules =
    Array.map
      (fun runs ->
        let a = Timetable.Availability.create ~horizon in
        List.iter (fun (lo, hi) -> Timetable.Availability.set_free a lo hi) runs;
        a)
      free_runs
  in
  { Stgq_core.Query.social = instance_of_sg_case sg; schedules }

let stgq_of_stg_case { sg; m; _ } =
  let ({ p; s; k } : Stgq_core.Query.sgq) = sg.query in
  { Stgq_core.Query.p; s; k; m }

(* Alcotest adapter. *)
let qtest ?(count = 200) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)

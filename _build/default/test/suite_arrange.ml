(* PCArrange / STGArrange — the solution-quality comparison machinery of
   §5.1 (Fig. 1(g)/(h)). *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let pc_of_case case ~p =
  let ti = Gen.temporal_instance_of_stg_case case in
  let { Query.s; m; _ } = Gen.stgq_of_stg_case case in
  (ti, Pcarrange.run ti ~p ~s ~m, s, m)

let prop_pcarrange_well_formed =
  Gen.qtest ~count:150 "PCArrange output satisfies size + availability"
    (Gen.stg_case ())
    (fun case ->
      let p = case.Gen.sg.Gen.query.Query.p in
      let ti, pc, _, m = pc_of_case case ~p in
      match pc with
      | None -> true
      | Some r ->
          List.length r.Pcarrange.attendees = p
          && List.mem ti.Query.social.Query.initiator r.Pcarrange.attendees
          && r.Pcarrange.observed_k <= p - 1
          && r.Pcarrange.observed_k >= 0
          && List.for_all
               (fun v ->
                 Timetable.Availability.window_free ti.Query.schedules.(v)
                   ~start:r.Pcarrange.start_slot ~len:m)
               r.Pcarrange.attendees)

let prop_observed_k_is_tight =
  Gen.qtest ~count:150 "observed k is exactly the max unacquaintance"
    (Gen.stg_case ())
    (fun case ->
      let p = case.Gen.sg.Gen.query.Query.p in
      let ti, pc, _, _ = pc_of_case case ~p in
      match pc with
      | None -> true
      | Some r ->
          let g = ti.Query.social.Query.graph in
          let max_nn =
            List.fold_left
              (fun acc v ->
                max acc (Socgraph.Kplex.non_neighbors_within g r.Pcarrange.attendees v))
              0 r.Pcarrange.attendees
          in
          r.Pcarrange.observed_k = max_nn)

let prop_stgarrange_beats_pcarrange =
  Gen.qtest ~count:100 "STGArrange: distance <= PCArrange at k <= observed k"
    (Gen.stg_case ())
    (fun case ->
      let p = case.Gen.sg.Gen.query.Query.p in
      let ti, pc, s, m = pc_of_case case ~p in
      match pc with
      | None -> true
      | Some pc -> (
          match
            Stgarrange.run ti ~p ~s ~m ~target_distance:pc.Pcarrange.total_distance
          with
          | None -> false (* PCArrange's own group is feasible at k_h *)
          | Some { Stgarrange.k_used; solution } ->
              k_used <= pc.Pcarrange.observed_k
              && solution.Query.st_total_distance
                 <= pc.Pcarrange.total_distance +. 1e-6
              && Validate.is_valid_stg ti { Query.p; s; k = k_used; m } solution))

let prop_versus_consistent =
  Gen.qtest ~count:60 "versus_pcarrange packages the same comparison"
    (Gen.stg_case ())
    (fun case ->
      let p = case.Gen.sg.Gen.query.Query.p in
      let ti = Gen.temporal_instance_of_stg_case case in
      let { Query.s; m; _ } = Gen.stgq_of_stg_case case in
      match Stgarrange.versus_pcarrange ti ~p ~s ~m with
      | None -> Pcarrange.run ti ~p ~s ~m = None
      | Some ({ Stgarrange.solution; _ }, pc) ->
          solution.Query.st_total_distance <= pc.Pcarrange.total_distance +. 1e-6)

let test_pcarrange_greedy_order () =
  (* Candidates at distance 1 and 2 share the initiator's window; the
     greedy must take the closer one. *)
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 1.); (0, 2, 2.) ] in
  let horizon = 8 in
  let free lo hi =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a lo hi;
    a
  in
  let ti =
    {
      Query.social = { Query.graph = g; initiator = 0 };
      schedules = [| free 0 7; free 0 7; free 0 7 |];
    }
  in
  match Pcarrange.run ti ~p:2 ~s:1 ~m:2 with
  | Some r ->
      Alcotest.check (Alcotest.list Alcotest.int) "closest first" [ 0; 1 ]
        r.Pcarrange.attendees;
      Alcotest.check Alcotest.bool "distance 1" true (close r.Pcarrange.total_distance 1.)
  | None -> Alcotest.fail "expected a PCArrange result"

let test_pcarrange_declines_conflicting () =
  (* The nearest friend has no overlap with the initiator: the phone call
     fails and the farther friend is taken instead. *)
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 1.); (0, 2, 2.) ] in
  let horizon = 8 in
  let free lo hi =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a lo hi;
    a
  in
  let ti =
    {
      Query.social = { Query.graph = g; initiator = 0 };
      schedules = [| free 0 3; free 4 7; free 0 3 |];
    }
  in
  match Pcarrange.run ti ~p:2 ~s:1 ~m:2 with
  | Some r ->
      Alcotest.check (Alcotest.list Alcotest.int) "conflicting friend skipped" [ 0; 2 ]
        r.Pcarrange.attendees
  | None -> Alcotest.fail "expected a PCArrange result"

let suite =
  [
    Alcotest.test_case "greedy picks closest" `Quick test_pcarrange_greedy_order;
    Alcotest.test_case "conflicting friend declines" `Quick test_pcarrange_declines_conflicting;
    prop_pcarrange_well_formed;
    prop_observed_k_is_tight;
    prop_stgarrange_beats_pcarrange;
    prop_versus_consistent;
  ]

(* Best-first exact SGQ: must equal SGSelect everywhere. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let prop_astar_matches_sgselect =
  Gen.qtest ~count:250 "best-first search = SGSelect" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let a = Astar.solve instance case.Gen.query in
      let b = Sgselect.solve instance case.Gen.query in
      match (a, b) with
      | None, None -> true
      | Some x, Some y ->
          close x.Query.total_distance y.Query.total_distance
          && Validate.is_valid_sg instance case.Gen.query x
      | _ -> false)

let test_astar_report_counters () =
  let g = Socgraph.Graph.of_edges 4 [ (0, 1, 1.); (0, 2, 2.); (0, 3, 3.); (1, 2, 1.) ] in
  let instance = { Query.graph = g; initiator = 0 } in
  let report = Astar.solve_report instance { Query.p = 3; s = 1; k = 0 } in
  Alcotest.check Alcotest.bool "solved" true (report.Astar.solution <> None);
  Alcotest.check Alcotest.bool "counters positive" true
    (report.Astar.nodes_expanded > 0 && report.Astar.max_frontier >= 1)

let test_astar_first_goal_is_optimal () =
  (* The admissible bound must steer past a tempting-but-infeasible cheap
     branch: the greedy-trap instance of the heuristics suite. *)
  let g =
    Socgraph.Graph.of_edges 4 [ (0, 1, 1.); (0, 2, 5.); (0, 3, 5.); (2, 3, 1.) ]
  in
  let instance = { Query.graph = g; initiator = 0 } in
  match Astar.solve instance { Query.p = 3; s = 1; k = 0 } with
  | Some { total_distance; _ } ->
      Alcotest.check Alcotest.bool "optimal 10" true (close total_distance 10.)
  | None -> Alcotest.fail "expected a solution"

let test_astar_node_limit () =
  let instance = Gen.instance_of_sg_case (Gen.sg_case_gen (Random.State.make [| 4 |])) in
  match Astar.solve ~node_limit:0 instance { Query.p = 3; s = 1; k = 1 } with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the node limit to trip"

let suite =
  [
    Alcotest.test_case "report counters" `Quick test_astar_report_counters;
    Alcotest.test_case "first goal is optimal" `Quick test_astar_first_goal_is_optimal;
    Alcotest.test_case "node limit" `Quick test_astar_node_limit;
    prop_astar_matches_sgselect;
  ]

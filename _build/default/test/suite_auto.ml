(* Adaptive solver selection and the shortest-path witness machinery it
   sits on. *)

open Stgq_core

let prop_auto_exact_on_small =
  Gen.qtest ~count:100 "auto picks exact and matches SGSelect on small cases"
    (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let solution, plan = Auto.sgq instance case.Gen.query in
      plan.Auto.choice = Auto.Exact
      &&
      match (solution, Sgselect.solve instance case.Gen.query) with
      | None, None -> true
      | Some a, Some b ->
          Float.abs (a.Query.total_distance -. b.Query.total_distance) < 1e-6
      | _ -> false)

let prop_auto_beam_on_tiny_budget =
  Gen.qtest ~count:80 "auto with a tiny budget degrades to a sound beam"
    (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let solution, plan = Auto.sgq ~budget:1. instance case.Gen.query in
      (plan.Auto.choice = Auto.Beam || plan.Auto.log10_groups <= 0.)
      &&
      match solution with
      | None -> true
      | Some h -> Validate.is_valid_sg instance case.Gen.query h)

let prop_auto_stgq_consistent =
  Gen.qtest ~count:60 "auto STGQ (exact path) = STGSelect" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let solution, plan = Auto.stgq ti query in
      plan.Auto.choice = Auto.Exact
      &&
      match (solution, Stgselect.solve ti query) with
      | None, None -> true
      | Some a, Some b ->
          Float.abs (a.Query.st_total_distance -. b.Query.st_total_distance) < 1e-6
      | _ -> false)

let test_log10_choose_sane () =
  (* C(10,3) = 120 -> log10 ~ 2.079. *)
  let g = Socgraph.Graph.of_edges 11 (List.init 10 (fun i -> (0, i + 1, 1.))) in
  let instance = { Query.graph = g; initiator = 0 } in
  let plan = Auto.plan_sgq instance { Query.p = 4; s = 1; k = 3 } in
  Alcotest.check Alcotest.int "feasible size" 11 plan.Auto.feasible_size;
  Alcotest.check Alcotest.bool "log10 C(10,3)" true
    (Float.abs (plan.Auto.log10_groups -. log10 120.) < 1e-9)

let test_budget_threshold () =
  let g = Socgraph.Graph.of_edges 11 (List.init 10 (fun i -> (0, i + 1, 1.))) in
  let instance = { Query.graph = g; initiator = 0 } in
  let query = { Query.p = 4; s = 1; k = 3 } in
  let exact = Auto.plan_sgq ~budget:121. instance query in
  let beam = Auto.plan_sgq ~budget:119. instance query in
  Alcotest.check Alcotest.bool "within budget -> exact" true
    (exact.Auto.choice = Auto.Exact);
  Alcotest.check Alcotest.bool "over budget -> beam" true (beam.Auto.choice = Auto.Beam)

let suite =
  [
    Alcotest.test_case "log10 group estimate" `Quick test_log10_choose_sane;
    Alcotest.test_case "budget threshold" `Quick test_budget_threshold;
    prop_auto_exact_on_small;
    prop_auto_beam_on_tiny_budget;
    prop_auto_stgq_consistent;
  ]

(* Bitset unit and property tests: the list model is the oracle. *)

let check = Alcotest.check
let il = Alcotest.list Alcotest.int

let test_basic () =
  let b = Bitset.create 100 in
  check Alcotest.int "empty count" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 64;
  Bitset.set b 99;
  check Alcotest.int "count 4" 4 (Bitset.count b);
  check Alcotest.bool "mem 63" true (Bitset.mem b 63);
  check Alcotest.bool "mem 62" false (Bitset.mem b 62);
  Bitset.clear b 63;
  check Alcotest.bool "cleared" false (Bitset.mem b 63);
  check il "to_list" [ 0; 64; 99 ] (Bitset.to_list b)

let test_bounds () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set out of range" (Invalid_argument "Bitset: index 10 out of [0,10)")
    (fun () -> Bitset.set b 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of [0,10)")
    (fun () -> Bitset.mem b (-1) |> ignore)

let test_ranges () =
  let b = Bitset.create 40 in
  Bitset.set_range b 5 20;
  check Alcotest.int "range count" 16 (Bitset.count b);
  Bitset.clear_range b 10 12;
  check Alcotest.int "after clear" 13 (Bitset.count b);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "run at 6"
    (Some (5, 9))
    (Bitset.run_containing b 6);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "run at 15"
    (Some (13, 20))
    (Bitset.run_containing b 15);
  check Alcotest.int "longest run in window" 8 (Bitset.longest_run_in b 0 39);
  check Alcotest.bool "has run of 8" true (Bitset.has_run_of b ~len:8 ~lo:0 ~hi:39);
  check Alcotest.bool "no run of 9" false (Bitset.has_run_of b ~len:9 ~lo:0 ~hi:39);
  check Alcotest.bool "clipped window shortens runs" false
    (Bitset.has_run_of b ~len:8 ~lo:14 ~hi:39)

let test_fill () =
  let b = Bitset.create 70 in
  Bitset.fill b true;
  check Alcotest.int "all set" 70 (Bitset.count b);
  check Alcotest.int "next_clear hits the end" 70 (Bitset.next_clear b 0);
  Bitset.fill b false;
  check Alcotest.bool "emptied" true (Bitset.is_empty b)

(* Property: set algebra agrees with sorted-list algebra. *)
let pair_lists_gen =
  QCheck.Gen.(
    let n = 1 -- 120 in
    n >>= fun cap ->
    let idx = list_size (0 -- 40) (int_bound (cap - 1)) in
    pair (return cap) (pair idx idx))

let pair_lists =
  QCheck.make
    ~print:(fun (cap, (a, b)) ->
      Printf.sprintf "cap=%d a=[%s] b=[%s]" cap
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))
    pair_lists_gen

let sorted l = List.sort_uniq compare l

let prop_algebra =
  Gen.qtest ~count:300 "inter/union/diff match list algebra" pair_lists
    (fun (cap, (la, lb)) ->
      let a = Bitset.of_list cap la and b = Bitset.of_list cap lb in
      let sa = sorted la and sb = sorted lb in
      Bitset.to_list (Bitset.inter a b) = List.filter (fun x -> List.mem x sb) sa
      && Bitset.to_list (Bitset.union a b) = sorted (la @ lb)
      && Bitset.to_list (Bitset.diff a b)
         = List.filter (fun x -> not (List.mem x sb)) sa
      && Bitset.inter_count a b = List.length (List.filter (fun x -> List.mem x sb) sa)
      && Bitset.subset (Bitset.inter a b) a
      && Bitset.count a = List.length sa)

let prop_roundtrip =
  Gen.qtest ~count:300 "of_list/to_list roundtrip" pair_lists
    (fun (cap, (la, _)) -> Bitset.to_list (Bitset.of_list cap la) = sorted la)

let prop_runs =
  Gen.qtest ~count:300 "run_containing matches a naive scan" pair_lists
    (fun (cap, (la, _)) ->
      let b = Bitset.of_list cap la in
      let naive i =
        if not (Bitset.mem b i) then None
        else begin
          let lo = ref i and hi = ref i in
          while !lo > 0 && Bitset.mem b (!lo - 1) do
            decr lo
          done;
          while !hi < cap - 1 && Bitset.mem b (!hi + 1) do
            incr hi
          done;
          Some (!lo, !hi)
        end
      in
      List.for_all (fun i -> Bitset.run_containing b i = naive i)
        (List.init cap Fun.id))

let prop_inter_into =
  Gen.qtest ~count:200 "inter_into equals inter" pair_lists
    (fun (cap, (la, lb)) ->
      let a = Bitset.of_list cap la and b = Bitset.of_list cap lb in
      let dst = Bitset.copy a in
      Bitset.inter_into ~dst b;
      Bitset.equal dst (Bitset.inter a b))

let suite =
  [
    Alcotest.test_case "basic set/clear/count" `Quick test_basic;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "ranges and runs" `Quick test_ranges;
    Alcotest.test_case "fill and next_clear" `Quick test_fill;
    prop_algebra;
    prop_roundtrip;
    prop_runs;
    prop_inter_into;
  ]

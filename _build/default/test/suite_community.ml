(* Community search (reference [20]): correctness against exhaustive
   enumeration, plus fixtures showing the SGQ critique. *)

module G = Socgraph.Graph
module CS = Socgraph.Community_search

let check = Alcotest.check

let test_clique_with_pendant () =
  (* Triangle 0-1-2 plus pendant 3 on 0: the best community around 0 is
     the triangle (min degree 2); the pendant would drag it to 1. *)
  let g = G.of_edges 4 [ (0, 1, 1.); (1, 2, 1.); (0, 2, 1.); (0, 3, 1.) ] in
  check (Alcotest.list Alcotest.int) "triangle" [ 0; 1; 2 ] (CS.search g ~anchor:0);
  check Alcotest.int "min degree" 2 (CS.min_internal_degree g [ 0; 1; 2 ])

let test_isolated_anchor () =
  let g = G.of_edges 3 [ (1, 2, 1.) ] in
  check (Alcotest.list Alcotest.int) "alone" [ 0 ] (CS.search g ~anchor:0)

let test_anchor_outside_dense_part () =
  (* A K4 on 1..4 linked to anchor 0 by one edge: the community must
     contain 0, limiting min degree to 1. *)
  let g =
    G.of_edges 5
      [ (1, 2, 1.); (1, 3, 1.); (1, 4, 1.); (2, 3, 1.); (2, 4, 1.); (3, 4, 1.); (0, 1, 1.) ]
  in
  let community = CS.search g ~anchor:0 in
  check Alcotest.bool "contains anchor" true (List.mem 0 community);
  check Alcotest.int "min degree 1" 1 (CS.min_internal_degree g community)

(* Oracle: max over all connected vertex subsets containing the anchor of
   the min internal degree. *)
let brute_best g ~anchor =
  let n = G.n_vertices g in
  let best = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl anchor) <> 0 then begin
      let vs = List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id) in
      (* connectivity within the induced subgraph *)
      let sub, to_sub, _ = G.induced g vs in
      let ids, comps = Socgraph.Traversal.components sub in
      let connected = comps <= 1 || List.length vs <= 1 in
      ignore ids;
      ignore to_sub;
      if connected && List.length vs >= 2 then
        best := max !best (CS.min_internal_degree g vs)
    end
  done;
  !best

let small_graph_arb =
  QCheck.make
    ~print:(fun (n, edges) -> Printf.sprintf "n=%d [%s]" n (Gen.pp_edges edges))
    QCheck.Gen.(
      3 -- 8 >>= fun n ->
      let edges st = Gen.graph_edges ~n ~density:0.45 st in
      pair (return n) edges)

let prop_peeling_is_optimal =
  Gen.qtest ~count:100 "global peeling = exhaustive optimum" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      ignore n;
      let community = CS.search g ~anchor:0 in
      List.mem 0 community
      && CS.min_internal_degree g community = brute_best g ~anchor:0)

let prop_community_is_connected =
  Gen.qtest ~count:100 "community is connected" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      ignore n;
      let community = CS.search g ~anchor:0 in
      let sub, _, _ = G.induced g community in
      Socgraph.Traversal.is_connected sub)

let test_no_size_control () =
  (* The paper's §2 critique: community search cannot ask for "exactly p
     people" — a K6 community stays size 6 no matter what. *)
  let edges = ref [] in
  for u = 0 to 5 do
    for v = u + 1 to 5 do
      edges := (u, v, 1.) :: !edges
    done
  done;
  let g = G.of_edges 6 !edges in
  check Alcotest.int "whole clique" 6 (List.length (CS.search g ~anchor:0))

let suite =
  [
    Alcotest.test_case "clique with pendant" `Quick test_clique_with_pendant;
    Alcotest.test_case "isolated anchor" `Quick test_isolated_anchor;
    Alcotest.test_case "anchor outside dense part" `Quick test_anchor_outside_dense_part;
    Alcotest.test_case "no size control (paper critique)" `Quick test_no_size_control;
    prop_peeling_is_optimal;
    prop_community_is_connected;
  ]

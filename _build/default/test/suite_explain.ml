(* Explanations: witness paths must realise the bounded distances and the
   unacquaintance lists must match the graph. *)

open Stgq_core

let prop_explanations_consistent =
  Gen.qtest ~count:150 "explanation paths realise distances" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      match Sgselect.solve instance case.Gen.query with
      | None -> true
      | Some solution ->
          let ex = Explain.sg instance case.Gen.query solution in
          let g = instance.Query.graph in
          let path_ok m =
            (* The witness path starts at q, ends at the member, uses at
               most s edges, and its edge weights sum to the distance. *)
            let rec walk total = function
              | [ _ ] | [] -> Some total
              | a :: (b :: _ as rest) -> (
                  match Socgraph.Graph.edge_weight g a b with
                  | Some w -> walk (total +. w) rest
                  | None -> None)
            in
            List.hd m.Explain.path = instance.Query.initiator
            && List.rev m.Explain.path |> List.hd = m.Explain.vertex
            && List.length m.Explain.path - 1 <= case.Gen.query.Query.s
            && (match walk 0. m.Explain.path with
               | Some total -> Float.abs (total -. m.Explain.distance) < 1e-9
               | None -> false)
          in
          let unacquainted_ok m =
            List.for_all
              (fun w -> not (Socgraph.Graph.adjacent g m.Explain.vertex w))
              m.Explain.unacquainted
          in
          List.for_all (fun m -> path_ok m && unacquainted_ok m) ex.Explain.members
          && ex.Explain.acquaintance_slack >= 0
          && Float.abs (ex.Explain.total_distance -. solution.Query.total_distance)
             < 1e-9)

let prop_stg_explanations =
  Gen.qtest ~count:80 "STGQ explanations carry the window" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      match Stgselect.solve ti query with
      | None -> true
      | Some solution -> (
          let ex = Explain.stg ti query solution in
          match ex.Explain.window with
          | Some (lo, hi) ->
              lo = solution.Query.start_slot && hi - lo + 1 = query.Query.m
          | None -> false))

let test_rejects_invalid_solution () =
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 1.) ] in
  let instance = { Query.graph = g; initiator = 0 } in
  let bogus = { Query.attendees = [ 0; 2 ]; total_distance = 1. } in
  match Explain.sg instance { Query.p = 2; s = 1; k = 0 } bogus with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of an out-of-radius attendee"

let test_pp_with_names () =
  let g = Socgraph.Graph.of_edges 2 [ (0, 1, 7.) ] in
  let instance = { Query.graph = g; initiator = 0 } in
  match Sgselect.solve instance { Query.p = 2; s = 1; k = 0 } with
  | None -> Alcotest.fail "solvable fixture"
  | Some solution ->
      let ex = Explain.sg instance { Query.p = 2; s = 1; k = 0 } solution in
      let name = function 0 -> "alice" | 1 -> "bob" | v -> string_of_int v in
      let text = Format.asprintf "%a" (Explain.pp ~name) ex in
      Alcotest.check Alcotest.bool "mentions both names" true
        (Astring_like.contains text "alice" && Astring_like.contains text "bob")

let suite =
  [
    Alcotest.test_case "rejects invalid solutions" `Quick test_rejects_invalid_solution;
    Alcotest.test_case "pretty printing with names" `Quick test_pp_with_names;
    prop_explanations_consistent;
    prop_stg_explanations;
  ]

(* Graph substrate: structure, traversals, hop-bounded distances, k-plex
   predicates, generators and persistence. *)

module G = Socgraph.Graph
module BD = Socgraph.Bounded_dist
module T = Socgraph.Traversal
module K = Socgraph.Kplex

let check = Alcotest.check

let diamond =
  (* 0-1, 0-2, 1-3, 2-3, 1-2 *)
  G.of_edges 4 [ (0, 1, 1.); (0, 2, 4.); (1, 3, 2.); (2, 3, 1.); (1, 2, 1.) ]

let test_structure () =
  check Alcotest.int "vertices" 4 (G.n_vertices diamond);
  check Alcotest.int "edges" 5 (G.n_edges diamond);
  check Alcotest.int "degree 1" 3 (G.degree diamond 1);
  check Alcotest.bool "adjacent" true (G.adjacent diamond 0 2);
  check Alcotest.bool "not adjacent" false (G.adjacent diamond 0 3);
  check Alcotest.bool "no self adjacency" false (G.adjacent diamond 2 2);
  check (Alcotest.option (Alcotest.float 0.)) "weight" (Some 4.) (G.edge_weight diamond 0 2);
  check (Alcotest.list Alcotest.int) "neighbors sorted" [ 0; 2; 3 ] (G.neighbor_ids diamond 1)

let test_dedup_keeps_min () =
  let g = G.of_edges 2 [ (0, 1, 5.); (1, 0, 3.); (0, 1, 7.) ] in
  check Alcotest.int "single edge" 1 (G.n_edges g);
  check (Alcotest.option (Alcotest.float 0.)) "min weight kept" (Some 3.)
    (G.edge_weight g 0 1)

let test_rejects_bad_edges () =
  let raises name f = Alcotest.check_raises name (Invalid_argument "") f in
  ignore raises;
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> G.of_edges 3 [ (0, 0, 1.) ]);
  expect_invalid (fun () -> G.of_edges 3 [ (0, 3, 1.) ]);
  expect_invalid (fun () -> G.of_edges 3 [ (0, 1, 0.) ]);
  expect_invalid (fun () -> G.of_edges 3 [ (0, 1, -2.) ]);
  expect_invalid (fun () -> G.of_edges 3 [ (0, 1, Float.nan) ])

let test_induced () =
  let sub, to_sub, of_sub = G.induced diamond [ 0; 1; 3 ] in
  check Alcotest.int "induced vertices" 3 (G.n_vertices sub);
  check Alcotest.int "induced edges" 2 (G.n_edges sub);
  check Alcotest.bool "0-1 kept" true (G.adjacent sub to_sub.(0) to_sub.(1));
  check Alcotest.bool "1-3 kept" true (G.adjacent sub to_sub.(1) to_sub.(3));
  check Alcotest.bool "0-3 absent" false (G.adjacent sub to_sub.(0) to_sub.(3));
  Array.iteri (fun s orig -> check Alcotest.int "roundtrip" s to_sub.(orig)) of_sub

let test_bounded_dist_fixture () =
  let d1 = BD.distances diamond ~src:0 ~max_edges:1 in
  check (Alcotest.float 0.) "1 hop to 1" 1. d1.(1);
  check (Alcotest.float 0.) "1 hop to 2" 4. d1.(2);
  check Alcotest.bool "3 unreachable in 1 hop" true (d1.(3) = infinity);
  let d2 = BD.distances diamond ~src:0 ~max_edges:2 in
  check (Alcotest.float 0.) "2-hop to 2 via 1" 2. d2.(2);
  check (Alcotest.float 0.) "2-hop to 3" 3. d2.(3);
  let d3 = BD.distances diamond ~src:0 ~max_edges:3 in
  check (Alcotest.float 0.) "3-hop to 3" 3. d3.(3)

(* Oracle: enumerate all simple paths up to [h] edges. *)
let brute_bounded g ~src ~max_edges =
  let n = G.n_vertices g in
  let best = Array.make n infinity in
  best.(src) <- 0.;
  let rec walk v used total =
    if total < best.(v) then best.(v) <- total;
    if used < max_edges then
      G.iter_neighbors g v (fun u w -> walk u (used + 1) (total +. w))
  in
  walk src 0 0.;
  best

let small_graph_arb =
  QCheck.make
    ~print:(fun (n, edges) -> Printf.sprintf "n=%d [%s]" n (Gen.pp_edges edges))
    QCheck.Gen.(
      4 -- 9 >>= fun n ->
      let edges st = Gen.graph_edges ~n ~density:0.4 st in
      pair (return n) edges)

let prop_bounded_dist =
  Gen.qtest ~count:150 "Definition-1 DP = path enumeration" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let s = 3 in
      let dp = BD.distances g ~src:0 ~max_edges:s in
      let oracle = brute_bounded g ~src:0 ~max_edges:s in
      Array.for_all2
        (fun a b -> (a = infinity && b = infinity) || Float.abs (a -. b) < 1e-9)
        dp oracle)

let prop_hop_consistency =
  Gen.qtest ~count:150 "finite bounded distance iff within hops" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let hops = T.bfs_hops g 0 in
      List.for_all
        (fun s ->
          let d = BD.distances g ~src:0 ~max_edges:s in
          List.for_all
            (fun v -> Float.is_finite d.(v) = (hops.(v) <= s))
            (List.init n Fun.id))
        [ 1; 2; 3 ])

let prop_degree_sum =
  Gen.qtest ~count:150 "degree sum = 2|E|" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let sum = List.fold_left (fun acc v -> acc + G.degree g v) 0 (List.init n Fun.id) in
      sum = 2 * G.n_edges g)

let prop_gio_roundtrip =
  Gen.qtest ~count:100 "edge-list save/parse roundtrip" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let g' = Socgraph.Gio.of_string (Socgraph.Gio.to_string g) in
      G.n_vertices g' = n && G.edges g' = G.edges g)

let test_components () =
  let g = G.of_edges 6 [ (0, 1, 1.); (1, 2, 1.); (3, 4, 1.) ] in
  let ids, count = T.components g in
  check Alcotest.int "three components" 3 count;
  check Alcotest.bool "0 and 2 together" true (ids.(0) = ids.(2));
  check Alcotest.bool "0 and 3 apart" true (ids.(0) <> ids.(3));
  check Alcotest.bool "5 isolated" true (ids.(5) <> ids.(3) && ids.(5) <> ids.(0));
  check Alcotest.bool "not connected" false (T.is_connected g)

let test_kplex () =
  (* Star q + 3 leaves: the full set is a 1-acquaintance... each leaf has 2
     non-neighbours, q has 0. *)
  let star = G.of_edges 4 [ (0, 1, 1.); (0, 2, 1.); (0, 3, 1.) ] in
  check Alcotest.bool "k=2 ok" true (K.satisfies star ~k:2 [ 0; 1; 2; 3 ]);
  check Alcotest.bool "k=1 fails" false (K.satisfies star ~k:1 [ 0; 1; 2; 3 ]);
  check Alcotest.int "violators at k=1" 3 (List.length (K.violators star ~k:1 [ 0; 1; 2; 3 ]));
  check Alcotest.int "non-neighbours of leaf" 2 (K.non_neighbors_within star [ 0; 1; 2; 3 ] 1);
  check Alcotest.int "max group at k=1 incl q" 3
    (K.max_group_size star ~k:1 ~must_include:[ 0 ] [ 1; 2; 3 ]);
  check Alcotest.int "max group at k=2 incl q" 4
    (K.max_group_size star ~k:2 ~must_include:[ 0 ] [ 1; 2; 3 ])

let prop_shortest_path_witness =
  Gen.qtest ~count:150 "shortest_path witnesses the DP distance" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let s = 3 in
      let d = BD.distances g ~src:0 ~max_edges:s in
      List.for_all
        (fun dst ->
          match BD.shortest_path g ~src:0 ~max_edges:s ~dst with
          | None -> not (Float.is_finite d.(dst))
          | Some (path, total) ->
              Float.is_finite d.(dst)
              && Float.abs (total -. d.(dst)) < 1e-9
              && List.hd path = 0
              && List.hd (List.rev path) = dst
              && List.length path - 1 <= s
              &&
              (* consecutive vertices are adjacent and weights sum up *)
              let rec walk acc = function
                | a :: (b :: _ as rest) -> (
                    match G.edge_weight g a b with
                    | Some w -> walk (acc +. w) rest
                    | None -> infinity)
                | _ -> acc
              in
              Float.abs (walk 0. path -. total) < 1e-9)
        (List.init n Fun.id))

let test_kplex_enumeration () =
  (* Path 0-1-2: with k=0 the maximal mutually-acquainted sets are the two
     edges; with k=1 the whole path qualifies. *)
  let path = G.of_edges 3 [ (0, 1, 1.); (1, 2, 1.) ] in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "k=0 maximal cliques"
    [ [ 0; 1 ]; [ 1; 2 ] ]
    (K.enumerate_maximal path ~k:0 ());
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "k=1 whole path"
    [ [ 0; 1; 2 ] ]
    (K.enumerate_maximal path ~k:1 ());
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "min_size filters"
    []
    (K.enumerate_maximal path ~k:0 ~min_size:3 ())

let prop_kplex_enumeration_sound =
  Gen.qtest ~count:60 "maximal k-plex enumeration is sound and complete"
    (QCheck.make
       ~print:(fun (n, edges) -> Printf.sprintf "n=%d [%s]" n (Gen.pp_edges edges))
       QCheck.Gen.(
         4 -- 7 >>= fun n ->
         let edges st = Gen.graph_edges ~n ~density:0.4 st in
         pair (return n) edges))
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let k = 1 in
      let listed = K.enumerate_maximal g ~k () in
      (* Soundness: every listed set satisfies the bound and is maximal. *)
      let sound =
        List.for_all
          (fun set ->
            K.satisfies g ~k set
            && List.for_all
                 (fun v -> List.mem v set || not (K.satisfies g ~k (v :: set)))
                 (List.init n Fun.id))
          listed
      in
      (* Completeness against subset enumeration. *)
      let all_sets =
        List.init (1 lsl n) (fun mask ->
            List.filter (fun v -> mask land (1 lsl v) <> 0) (List.init n Fun.id))
        |> List.filter (fun set -> set <> [] && K.satisfies g ~k set)
      in
      let maximal =
        List.filter
          (fun set ->
            List.for_all
              (fun v -> List.mem v set || not (K.satisfies g ~k (v :: set)))
              (List.init n Fun.id))
          all_sets
      in
      sound && List.sort compare maximal = listed)

let prop_kplex_monotone =
  Gen.qtest ~count:100 "max k-plex size grows with k" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let pool = List.init n Fun.id in
      let size k = K.max_group_size g ~k ~must_include:[] pool in
      size 0 <= size 1 && size 1 <= size 2 && size 2 <= n)

let rng () = Random.State.make [| 42 |]

let test_generators () =
  let er = Socgraph.Generators.erdos_renyi (rng ()) ~n:50 ~p:0.2 () in
  check Alcotest.int "ER vertices" 50 (G.n_vertices er);
  let ba = Socgraph.Generators.barabasi_albert (rng ()) ~n:100 ~links:3 () in
  check Alcotest.int "BA vertices" 100 (G.n_vertices ba);
  (* Seed clique C(4,2)=6 edges plus 3 per newcomer. *)
  check Alcotest.int "BA edges" (6 + (3 * 96)) (G.n_edges ba);
  check Alcotest.bool "BA connected" true (T.is_connected ba);
  let ws = Socgraph.Generators.watts_strogatz (rng ()) ~n:60 ~neighbors:4 ~beta:0.2 () in
  check Alcotest.int "WS vertices" 60 (G.n_vertices ws);
  check Alcotest.bool "WS edges preserved-ish" true (G.n_edges ws >= 100);
  let cm =
    Socgraph.Generators.community (rng ()) ~sizes:[ 20; 20; 10 ] ~p_in:0.5 ~p_out:0.02 ()
  in
  check Alcotest.int "community vertices" 50 (G.n_vertices cm)

let test_ba_degree_skew () =
  (* Preferential attachment concentrates degree: max degree should far
     exceed the mean. *)
  let ba = Socgraph.Generators.barabasi_albert (rng ()) ~n:400 ~links:3 () in
  let stats = Socgraph.Metrics.degree_stats ba in
  check Alcotest.bool "heavy tail" true
    (float_of_int stats.Socgraph.Metrics.max_degree
    > 3. *. stats.Socgraph.Metrics.mean_degree)

let test_builder () =
  let b = Socgraph.Builder.create 4 in
  Socgraph.Builder.add_edge b 0 1 5.;
  Socgraph.Builder.add_edge b 1 0 3.;  (* re-weight, either orientation *)
  Socgraph.Builder.add_edge b 1 2 2.;
  check Alcotest.int "two edges" 2 (Socgraph.Builder.n_edges b);
  check Alcotest.bool "mem" true (Socgraph.Builder.mem_edge b 2 1);
  check Alcotest.bool "remove" true (Socgraph.Builder.remove_edge b 0 1);
  check Alcotest.bool "remove absent" false (Socgraph.Builder.remove_edge b 0 1);
  let g = Socgraph.Builder.snapshot b in
  check Alcotest.int "snapshot edges" 1 (G.n_edges g);
  check (Alcotest.option (Alcotest.float 0.)) "weight" (Some 2.) (G.edge_weight g 1 2);
  (* The builder stays usable after a snapshot. *)
  Socgraph.Builder.add_edge b 2 3 7.;
  check Alcotest.int "snapshot unaffected" 1 (G.n_edges g);
  check Alcotest.int "builder advanced" 2 (Socgraph.Builder.n_edges b)

let prop_builder_roundtrip =
  Gen.qtest ~count:150 "of_graph/snapshot roundtrip" small_graph_arb
    (fun (n, edges) ->
      let g = G.of_edges n edges in
      let g' = Socgraph.Builder.snapshot (Socgraph.Builder.of_graph g) in
      G.edges g' = G.edges g)

let test_metrics () =
  let tri = G.of_edges 3 [ (0, 1, 1.); (1, 2, 2.); (0, 2, 3.) ] in
  check (Alcotest.float 1e-9) "clustering of triangle" 1. (Socgraph.Metrics.clustering tri 0);
  check (Alcotest.float 1e-9) "mean clustering" 1. (Socgraph.Metrics.mean_clustering tri);
  let ws = Socgraph.Metrics.weight_stats tri in
  check (Alcotest.float 1e-9) "mean weight" 2. ws.Socgraph.Metrics.mean_weight;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "degree histogram" [ (2, 3) ]
    (Socgraph.Metrics.degree_histogram tri)

let suite =
  [
    Alcotest.test_case "structure queries" `Quick test_structure;
    Alcotest.test_case "duplicate edges keep min weight" `Quick test_dedup_keeps_min;
    Alcotest.test_case "rejects malformed edges" `Quick test_rejects_bad_edges;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "bounded distances fixture" `Quick test_bounded_dist_fixture;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "k-plex predicates" `Quick test_kplex;
    Alcotest.test_case "k-plex enumeration fixture" `Quick test_kplex_enumeration;
    Alcotest.test_case "generators" `Quick test_generators;
    Alcotest.test_case "BA degree skew" `Quick test_ba_degree_skew;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "metrics" `Quick test_metrics;
    prop_bounded_dist;
    prop_hop_consistency;
    prop_degree_sum;
    prop_gio_roundtrip;
    prop_builder_roundtrip;
    prop_shortest_path_witness;
    prop_kplex_enumeration_sound;
    prop_kplex_monotone;
  ]

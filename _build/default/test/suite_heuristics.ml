(* Heuristic solvers: always valid, never better than the exact optimum,
   and beam approaches exact as the width grows. *)

open Stgq_core

let prop_greedy_sgq_sound =
  Gen.qtest ~count:200 "greedy SGQ valid and >= optimum" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let exact = Sgselect.solve instance case.Gen.query in
      match Heuristics.greedy_sgq instance case.Gen.query with
      | None -> true (* greedy may fail where exact succeeds *)
      | Some h -> (
          Validate.is_valid_sg instance case.Gen.query h
          &&
          match exact with
          | None -> false (* a valid heuristic answer proves feasibility *)
          | Some e -> h.Query.total_distance >= e.Query.total_distance -. 1e-6))

let prop_beam_sgq_sound =
  Gen.qtest ~count:150 "beam SGQ valid and >= optimum" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let exact = Sgselect.solve instance case.Gen.query in
      match Heuristics.beam_sgq ~width:8 instance case.Gen.query with
      | None -> true
      | Some h -> (
          Validate.is_valid_sg instance case.Gen.query h
          &&
          match exact with
          | None -> false
          | Some e -> h.Query.total_distance >= e.Query.total_distance -. 1e-6))

let prop_wide_beam_often_exact =
  (* With width >= the number of candidate groups the beam cannot lose
     the optimum: every feasible partial survives every level. *)
  Gen.qtest ~count:100 "very wide beam = exact" (Gen.sg_case ~max_n:8 ~max_p:4 ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let exact = Sgselect.solve instance case.Gen.query in
      let beam = Heuristics.beam_sgq ~width:100000 instance case.Gen.query in
      match (exact, beam) with
      | None, None -> true
      | Some e, Some b ->
          Float.abs (e.Query.total_distance -. b.Query.total_distance) <= 1e-6
      | Some _, None | None, Some _ -> false)

let prop_greedy_stgq_sound =
  Gen.qtest ~count:100 "greedy STGQ valid and >= optimum" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let exact = Stgselect.solve ti query in
      match Heuristics.greedy_stgq ti query with
      | None -> true
      | Some h -> (
          Validate.is_valid_stg ti query h
          &&
          match exact with
          | None -> false
          | Some e -> h.Query.st_total_distance >= e.Query.st_total_distance -. 1e-6))

let prop_beam_stgq_sound =
  Gen.qtest ~count:100 "beam STGQ valid and >= optimum" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let exact = Stgselect.solve ti query in
      match Heuristics.beam_stgq ~width:8 ti query with
      | None -> true
      | Some h -> (
          Validate.is_valid_stg ti query h
          &&
          match exact with
          | None -> false
          | Some e -> h.Query.st_total_distance >= e.Query.st_total_distance -. 1e-6))

let prop_exhaustive_beam_dominates =
  (* Beam width is NOT monotone in general (a flood of low-distance dead
     ends can evict the completing path), but an exhaustive-width beam
     never loses to any narrower one. *)
  Gen.qtest ~count:80 "exhaustive beam never loses to width 2"
    (Gen.sg_case ~max_n:8 ~max_p:4 ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let d w =
        Option.map
          (fun s -> s.Query.total_distance)
          (Heuristics.beam_sgq ~width:w instance case.Gen.query)
      in
      match (d 2, d 100000) with
      | Some narrow, Some wide -> wide <= narrow +. 1e-6
      | None, _ -> true
      | Some _, None -> false)

let test_greedy_trap () =
  (* A graph where greedy's closest-first choice blocks the only feasible
     completion: q's closest friend a knows nobody else, so taking a
     first makes k=0, p=3 infeasible; the optimum is {q, b, c}. *)
  let g =
    Socgraph.Graph.of_edges 4 [ (0, 1, 1.); (0, 2, 5.); (0, 3, 5.); (2, 3, 1.) ]
  in
  let instance = { Query.graph = g; initiator = 0 } in
  let query = { Query.p = 3; s = 1; k = 0 } in
  (match Sgselect.solve instance query with
  | Some { total_distance; _ } ->
      Alcotest.check Alcotest.bool "exact finds 10" true
        (Float.abs (total_distance -. 10.) < 1e-9)
  | None -> Alcotest.fail "exact must solve the trap");
  (match Heuristics.greedy_sgq instance query with
  | None -> () (* greedy walked into the trap, as expected *)
  | Some h ->
      Alcotest.check Alcotest.bool "greedy never beats exact" true
        (h.Query.total_distance >= 10. -. 1e-9));
  match Heuristics.beam_sgq ~width:8 instance query with
  | Some h ->
      Alcotest.check Alcotest.bool "beam escapes the trap" true
        (Float.abs (h.Query.total_distance -. 10.) < 1e-9)
  | None -> Alcotest.fail "beam should solve the trap"

let suite =
  [
    Alcotest.test_case "greedy trap fixture" `Quick test_greedy_trap;
    prop_greedy_sgq_sound;
    prop_beam_sgq_sound;
    prop_wide_beam_often_exact;
    prop_greedy_stgq_sound;
    prop_beam_stgq_sound;
    prop_exhaustive_beam_dominates;
  ]

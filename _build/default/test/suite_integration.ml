(* End-to-end flows: generate -> persist -> reload -> query -> validate ->
   explain, through temporary files — what the CLI does, minus argv. *)

open Stgq_core

let with_temp_files f =
  let graph_path = Filename.temp_file "stgq_graph" ".txt" in
  let sched_path = Filename.temp_file "stgq_sched" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove graph_path with Sys_error _ -> ());
      try Sys.remove sched_path with Sys_error _ -> ())
    (fun () -> f graph_path sched_path)

let test_full_roundtrip () =
  with_temp_files (fun graph_path sched_path ->
      let ds = Workload.Coauthor.generate ~seed:77 ~days:2 ~n:120 () in
      Socgraph.Gio.save ds.Workload.Coauthor.graph graph_path;
      Timetable.Sio.save ds.Workload.Coauthor.schedules sched_path;
      let graph = Socgraph.Gio.load graph_path in
      let schedules = Timetable.Sio.load sched_path in
      Alcotest.check Alcotest.bool "graph preserved" true
        (Socgraph.Graph.edges graph = Socgraph.Graph.edges ds.Workload.Coauthor.graph);
      let initiator = Workload.Scenario.pick_initiator graph in
      let ti = Workload.Scenario.temporal_instance graph schedules ~initiator in
      let query = { Query.p = 4; s = 1; k = 2; m = 3 } in
      match Stgselect.solve ti query with
      | None -> Alcotest.fail "expected a solution on the reloaded dataset"
      | Some solution ->
          Alcotest.check Alcotest.bool "valid" true (Validate.is_valid_stg ti query solution);
          let direct = Stgselect.solve (Workload.Scenario.temporal_instance
                                          ds.Workload.Coauthor.graph
                                          ds.Workload.Coauthor.schedules ~initiator)
                         query in
          (match direct with
          | Some d ->
              Alcotest.check Alcotest.bool "same optimum as unpersisted" true
                (Float.abs (d.Query.st_total_distance -. solution.Query.st_total_distance)
                < 1e-9)
          | None -> Alcotest.fail "direct run disagrees");
          (* The explanation pipeline accepts the reloaded solution. *)
          let ex = Explain.stg ti query solution in
          Alcotest.check Alcotest.bool "explained" true
            (List.length ex.Explain.members = query.Query.p))

let test_all_solvers_agree_on_scenario () =
  let ti = Workload.Scenario.people194 ~seed:3 ~days:2 () in
  let query = { Query.p = 4; s = 1; k = 2; m = 4 } in
  let distances =
    List.filter_map
      (fun f -> f ())
      [
        (fun () ->
          Option.map (fun (s : Query.stg_solution) -> s.st_total_distance)
            (Stgselect.solve ti query));
        (fun () ->
          Option.map (fun (s : Query.stg_solution) -> s.st_total_distance)
            (Parallel.solve ~domains:2 ti query));
        (fun () ->
          Option.map (fun (s : Query.stg_solution) -> s.st_total_distance)
            (Baseline.stgq_per_slot ti query).Baseline.st_solution);
        (fun () ->
          Option.map (fun (s : Query.stg_solution) -> s.st_total_distance)
            (Ip_model.solve_stgq ti query).Ip_model.result);
        (fun () ->
          match Topk.stgq ~n:1 ti query with
          | [ e ] -> Some e.Topk.total_distance
          | _ -> None);
        (fun () ->
          Option.map (fun (s : Query.stg_solution) -> s.st_total_distance)
            (Planner.solution (Planner.create ti query)));
      ]
  in
  Alcotest.check Alcotest.int "all six solvers answered" 6 (List.length distances);
  match distances with
  | first :: rest ->
      List.iteri
        (fun i d ->
          Alcotest.check Alcotest.bool
            (Printf.sprintf "solver %d agrees" (i + 1))
            true
            (Float.abs (d -. first) < 1e-6))
        rest
  | [] -> Alcotest.fail "unreachable"

let suite =
  [
    Alcotest.test_case "persist/reload/query/explain roundtrip" `Quick test_full_roundtrip;
    Alcotest.test_case "six solvers, one optimum" `Quick test_all_solvers_agree_on_scenario;
  ]

(* The Appendix-D Integer Programming formulations must agree with
   SGSelect / STGSelect — both are exact, so distances must match. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let agree_sgq ~form case =
  let instance = Gen.instance_of_sg_case case in
  let select = Sgselect.solve instance case.Gen.query in
  let ip = (Ip_model.solve_sgq ~form instance case.Gen.query).Ip_model.result in
  match (select, ip) with
  | None, None -> true
  | Some a, Some b ->
      close a.Query.total_distance b.Query.total_distance
      && Validate.is_valid_sg instance case.Gen.query b
  | Some _, None | None, Some _ -> false

let prop_group_form_sgq =
  Gen.qtest ~count:120 "group-form IP = SGSelect" (Gen.sg_case ~max_n:9 ~max_p:5 ())
    (agree_sgq ~form:Ip_model.Group_form)

let prop_full_form_sgq =
  Gen.qtest ~count:25 "full Appendix-D IP = SGSelect (tiny graphs)"
    (Gen.sg_case ~max_n:6 ~max_p:4 ())
    (agree_sgq ~form:Ip_model.Full_form)

let agree_stgq ~form case =
  let ti = Gen.temporal_instance_of_stg_case case in
  let query = Gen.stgq_of_stg_case case in
  let select = Stgselect.solve ti query in
  let ip = (Ip_model.solve_stgq ~form ti query).Ip_model.result in
  match (select, ip) with
  | None, None -> true
  | Some a, Some b ->
      close a.Query.st_total_distance b.Query.st_total_distance
      && Validate.is_valid_stg ti query b
  | Some _, None | None, Some _ -> false

let prop_group_form_stgq =
  Gen.qtest ~count:60 "group-form IP = STGSelect" (Gen.stg_case ~max_n:7 ~max_p:4 ())
    (agree_stgq ~form:Ip_model.Group_form)

let prop_full_form_stgq =
  Gen.qtest ~count:10 "full Appendix-D IP = STGSelect (tiny instances)"
    (Gen.stg_case ~max_n:5 ~max_p:3 ())
    (agree_stgq ~form:Ip_model.Full_form)

(* The full form must also reconstruct s-edge-bounded shortest paths: a
   triangle where the 2-hop detour beats the direct edge. *)
let test_full_form_detour () =
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 10.); (0, 2, 1.); (2, 1, 1.) ] in
  let instance = { Query.graph = g; initiator = 0 } in
  let dist form s =
    match (Ip_model.solve_sgq ~form instance { Query.p = 3; s; k = 0 }).Ip_model.result with
    | Some { total_distance; _ } -> total_distance
    | None -> Alcotest.fail "expected an IP solution"
  in
  Alcotest.check Alcotest.bool "s=1 pays 11" true (close (dist Ip_model.Full_form 1) 11.);
  Alcotest.check Alcotest.bool "s=2 detours to 3" true (close (dist Ip_model.Full_form 2) 3.);
  Alcotest.check Alcotest.bool "group form agrees at s=2" true
    (close (dist Ip_model.Group_form 2) 3.)

let test_node_limit_propagates () =
  let case = Gen.sg_case_gen ~max_n:9 ~max_p:5 (Random.State.make [| 3 |]) in
  let instance = Gen.instance_of_sg_case case in
  match Ip_model.solve_sgq ~node_limit:0 instance case.Gen.query with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected the node limit to trip"

let suite =
  [
    Alcotest.test_case "full form reconstructs bounded paths" `Quick test_full_form_detour;
    Alcotest.test_case "node limit propagates" `Quick test_node_limit_propagates;
    prop_group_form_sgq;
    prop_full_form_sgq;
    prop_group_form_stgq;
    prop_full_form_stgq;
  ]

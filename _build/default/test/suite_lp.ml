(* LP simplex and 0/1 branch-and-bound: fixtures plus an exhaustive
   enumeration oracle for small binary programs. *)

let check = Alcotest.check
let close a b = Float.abs (a -. b) <= 1e-6

let solve_expect name problem expected =
  match Lp.solve problem with
  | Lp.Optimal { objective; solution } ->
      check Alcotest.bool (name ^ " objective") true (close objective expected);
      check Alcotest.bool (name ^ " feasible") true
        (Lp.check_feasible problem solution = [])
  | other -> Alcotest.failf "%s: unexpected %a" name Lp.pp_outcome other

let test_lp_fixtures () =
  solve_expect "max 3x+2y"
    {
      Lp.n_vars = 2;
      sense = Lp.Maximize;
      objective = [ (0, 3.); (1, 2.) ];
      constraints =
        [ Lp.constr [ (0, 1.); (1, 1.) ] Lp.Le 4.; Lp.constr [ (0, 1.); (1, 3.) ] Lp.Le 6. ];
    }
    12.;
  solve_expect "min with >= and ="
    {
      Lp.n_vars = 2;
      sense = Lp.Minimize;
      objective = [ (0, 1.); (1, 1.) ];
      constraints =
        [ Lp.constr [ (0, 1.); (1, 1.) ] Lp.Ge 3.; Lp.constr [ (0, 1.); (1, -1.) ] Lp.Eq 1. ];
    }
    3.;
  solve_expect "degenerate ties"
    {
      Lp.n_vars = 3;
      sense = Lp.Maximize;
      objective = [ (0, 1.); (1, 1.); (2, 1.) ];
      constraints =
        [
          Lp.constr [ (0, 1.); (1, 1.) ] Lp.Le 1.;
          Lp.constr [ (1, 1.); (2, 1.) ] Lp.Le 1.;
          Lp.constr [ (0, 1.); (2, 1.) ] Lp.Le 1.;
        ];
    }
    1.5

let test_lp_infeasible_unbounded () =
  let infeasible =
    {
      Lp.n_vars = 1;
      sense = Lp.Minimize;
      objective = [ (0, 1.) ];
      constraints = [ Lp.constr [ (0, 1.) ] Lp.Le 1.; Lp.constr [ (0, 1.) ] Lp.Ge 2. ];
    }
  in
  (match Lp.solve infeasible with
  | Lp.Infeasible -> ()
  | other -> Alcotest.failf "expected infeasible, got %a" Lp.pp_outcome other);
  let unbounded =
    { Lp.n_vars = 1; sense = Lp.Maximize; objective = [ (0, 1.) ]; constraints = [] }
  in
  match Lp.solve unbounded with
  | Lp.Unbounded -> ()
  | other -> Alcotest.failf "expected unbounded, got %a" Lp.pp_outcome other

let test_lp_negative_rhs () =
  (* x >= -2 written as -x <= 2; min x with x >= 1. *)
  solve_expect "rhs normalisation"
    {
      Lp.n_vars = 1;
      sense = Lp.Minimize;
      objective = [ (0, 1.) ];
      constraints = [ Lp.constr [ (0, -1.) ] Lp.Le (-1.) ];
    }
    1.

(* Random small binary programs, solved both by branch & bound and by
   exhaustive enumeration. *)
let binary_program_gen st =
  let open QCheck.Gen in
  let n = (2 -- 8) st in
  let coeff st = float_of_int ((-5) + int_bound 10 st) in
  let objective = List.init n (fun i -> (i, coeff st)) in
  let n_rows = (1 -- 4) st in
  let row _ =
    let coeffs = List.init n (fun i -> (i, coeff st)) in
    let rel = match int_bound 2 st with 0 -> Lp.Le | 1 -> Lp.Ge | _ -> Lp.Eq in
    let rhs = float_of_int ((-4) + int_bound 12 st) in
    Lp.constr coeffs rel rhs
  in
  let constraints = List.init n_rows row in
  (n, objective, constraints)

let print_program (n, objective, constraints) =
  let terms l = String.concat "+" (List.map (fun (i, c) -> Printf.sprintf "%gx%d" c i) l) in
  Printf.sprintf "n=%d obj=%s rows=[%s]" n (terms objective)
    (String.concat "; "
       (List.map
          (fun { Lp.coeffs; rel; rhs } ->
            Printf.sprintf "%s %s %g" (terms coeffs)
              (match rel with Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "=")
              rhs)
          constraints))

let binary_program = QCheck.make ~print:print_program binary_program_gen

let enumerate_binary (n, objective, constraints) =
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1. else 0.) in
    let ok =
      List.for_all
        (fun { Lp.coeffs; rel; rhs } ->
          let v = List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) 0. coeffs in
          match rel with
          | Lp.Le -> v <= rhs +. 1e-9
          | Lp.Ge -> v >= rhs -. 1e-9
          | Lp.Eq -> Float.abs (v -. rhs) <= 1e-9)
        constraints
    in
    if ok then begin
      let obj = List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) 0. objective in
      match !best with Some b when b <= obj -> () | _ -> best := Some obj
    end
  done;
  !best

let prop_ilp_matches_enumeration =
  Gen.qtest ~count:200 "branch & bound = exhaustive enumeration" binary_program
    (fun ((n, objective, constraints) as program) ->
      let model = Ilp.binary_model ~n ~sense:Lp.Minimize ~objective ~constraints in
      match (Ilp.solve model, enumerate_binary program) with
      | Ilp.Optimal { objective = got; solution; _ }, Some want ->
          close got want
          && Array.for_all (fun x -> close x 0. || close x 1.) solution
      | Ilp.Infeasible _, None -> true
      | Ilp.Optimal { objective = got; _ }, None ->
          Alcotest.failf "B&B found %g where enumeration says infeasible" got
      | Ilp.Infeasible _, Some want ->
          Alcotest.failf "B&B infeasible where enumeration finds %g" want
      | Ilp.Unbounded, _ -> false)

let prop_lp_solution_feasible =
  Gen.qtest ~count:200 "LP optimum is feasible and consistent" binary_program
    (fun (n, objective, constraints) ->
      (* Relax to an LP with x in [0,1]. *)
      let bounds = List.init n (fun i -> Lp.constr [ (i, 1.) ] Lp.Le 1.) in
      let problem =
        { Lp.n_vars = n; sense = Lp.Minimize; objective; constraints = constraints @ bounds }
      in
      match Lp.solve problem with
      | Lp.Optimal { objective = obj; solution } ->
          Lp.check_feasible problem solution = []
          && close obj (Lp.eval_objective problem solution)
      | Lp.Infeasible -> true
      | Lp.Unbounded -> false)

let prop_lp_relaxation_bounds_ilp =
  Gen.qtest ~count:200 "LP relaxation lower-bounds the ILP" binary_program
    (fun ((n, objective, constraints) as program) ->
      let bounds = List.init n (fun i -> Lp.constr [ (i, 1.) ] Lp.Le 1.) in
      let problem =
        { Lp.n_vars = n; sense = Lp.Minimize; objective; constraints = constraints @ bounds }
      in
      match (Lp.solve problem, enumerate_binary program) with
      | Lp.Optimal { objective = relax; _ }, Some integral -> relax <= integral +. 1e-6
      | Lp.Infeasible, None -> true
      | Lp.Infeasible, Some _ -> false
      | _, None -> true
      | Lp.Unbounded, _ -> false)

let test_ilp_node_limit () =
  let n = 14 in
  let objective = List.init n (fun i -> (i, 1.)) in
  let constraints =
    [ Lp.constr (List.init n (fun i -> (i, 1.))) Lp.Ge (float_of_int (n / 2)) ]
  in
  let model = Ilp.binary_model ~n ~sense:Lp.Minimize ~objective ~constraints in
  match Ilp.solve ~node_limit:1 model with
  | exception Failure _ -> ()
  | Ilp.Optimal _ ->
      (* A single node can suffice when the relaxation is integral. *)
      ()
  | _ -> Alcotest.fail "unexpected outcome under node limit"

let suite =
  [
    Alcotest.test_case "LP fixtures" `Quick test_lp_fixtures;
    Alcotest.test_case "LP infeasible/unbounded" `Quick test_lp_infeasible_unbounded;
    Alcotest.test_case "LP negative rhs" `Quick test_lp_negative_rhs;
    Alcotest.test_case "ILP node limit" `Quick test_ilp_node_limit;
    prop_ilp_matches_enumeration;
    prop_lp_solution_feasible;
    prop_lp_relaxation_bounds_ilp;
  ]

(* The worked example of the paper's Appendix A (Examples 2 and 3),
   re-encoded as a regression fixture.

   The instance mirrors Figure 3's structure (the paper's own printed
   numbers are internally inconsistent — footnote 3 admits "small
   modifications"; we use a consistent assignment preserving every
   narrative beat):

     q  = v7, candidates v2, v3, v4, v6, v8 with distances
          17, 18, 27, 20, 25;
     candidate edges: v2-v4, v2-v6, v4-v6 (a triangle), v3-v4;
          v8 knows nobody but q.

   SGQ(p=4, s=1, k=1), as in Example 2:
   - the greedy-first path finds {v2,v4,v6,v7} (distance 64) — the
     "first feasible solution" of the narrative;
   - backtracking discovers the optimum {v2,v3,v4,v7} (distance 62):
     v3 is poorly connected (interior unfamiliarity defers it) but pairs
     with v4 under k=1;
   - v8 can never be extended (exterior expansibility removes it).

   STGQ(m=3) over the 7-slot schedules of Figure 3(c):
   - v3 has no 3-slot run anywhere, so the social optimum dies in the
     temporal dimension;
   - the answer is {v2,v4,v6,v7} in period [ts2,ts4] (0-indexed start 1),
     exactly the paper's Example 3 conclusion. *)

open Stgq_core

let q = 0
let v2 = 1
let v3 = 2
let v4 = 3
let v6 = 4
let v8 = 5

let graph =
  Socgraph.Graph.of_edges 6
    [
      (q, v2, 17.);
      (q, v3, 18.);
      (q, v4, 27.);
      (q, v6, 20.);
      (q, v8, 25.);
      (v2, v4, 14.);
      (v2, v6, 10.);
      (v4, v6, 19.);
      (v3, v4, 12.);
    ]

let instance = { Query.graph; initiator = q }

let horizon = 7

let avail bits =
  let a = Timetable.Availability.create ~horizon in
  List.iteri (fun slot b -> if b = 1 then Timetable.Availability.set_free a slot slot) bits;
  a

(* Figure 3(c), rows ts1..ts7 as 0-indexed slots. *)
let schedules =
  [|
    avail [ 1; 1; 1; 1; 1; 1; 0 ] (* q  = v7 *);
    avail [ 1; 1; 1; 1; 1; 1; 1 ] (* v2 *);
    avail [ 0; 1; 1; 0; 1; 1; 0 ] (* v3: runs of 2, never 3 *);
    avail [ 1; 1; 1; 1; 1; 0; 1 ] (* v4 *);
    avail [ 0; 1; 1; 1; 1; 1; 1 ] (* v6 *);
    avail [ 1; 0; 1; 0; 1; 1; 0 ] (* v8 *);
  |]

let ti = { Query.social = instance; schedules }
let sgq = { Query.p = 4; s = 1; k = 1 }
let stgq = { Query.p = 4; s = 1; k = 1; m = 3 }

let check = Alcotest.check
let close a b = Float.abs (a -. b) <= 1e-9

let test_example2_optimum () =
  match Sgselect.solve instance sgq with
  | Some { attendees; total_distance } ->
      check (Alcotest.list Alcotest.int) "the backtracked optimum {v2,v3,v4,v7}"
        [ q; v2; v3; v4 ] attendees;
      check Alcotest.bool "total distance 62" true (close total_distance 62.)
  | None -> Alcotest.fail "Example 2 must be solvable"

let test_example2_first_feasible_is_greedy_triangle () =
  (* The triangle group of the narrative is feasible (it is even a clique
     with q): the k=0 answer. *)
  match Sgselect.solve instance { sgq with Query.k = 0 } with
  | Some { attendees; total_distance } ->
      check (Alcotest.list Alcotest.int) "{v2,v4,v6,v7}" [ q; v2; v4; v6 ] attendees;
      check Alcotest.bool "distance 64" true (close total_distance 64.)
  | None -> Alcotest.fail "the triangle group must qualify at k=0"

let test_example2_v8_never_selected () =
  (* v8 has no candidate edges: any group with v8 and two others gives v8
     two non-neighbours > k=1.  Exterior expansibility (Lemma 1) removes
     it; no optimal group may contain it for any k <= 1. *)
  List.iter
    (fun k ->
      match Sgselect.solve instance { sgq with Query.k = k } with
      | Some { attendees; _ } ->
          check Alcotest.bool
            (Printf.sprintf "v8 absent at k=%d" k)
            false (List.mem v8 attendees)
      | None -> ())
    [ 0; 1 ]

let test_example3_temporal_answer () =
  match Stgselect.solve ti stgq with
  | Some { st_attendees; st_total_distance; start_slot } ->
      check (Alcotest.list Alcotest.int) "{v2,v4,v6,v7} as in Example 3"
        [ q; v2; v4; v6 ] st_attendees;
      check Alcotest.bool "distance 64" true (close st_total_distance 64.);
      check Alcotest.int "period [ts2,ts4]" 1 start_slot
  | None -> Alcotest.fail "Example 3 must be solvable"

let test_example3_v3_has_no_run () =
  (* Definition 4: v3 is never eligible — no 3 consecutive free slots. *)
  check Alcotest.bool "no 3-run for v3" false
    (Timetable.Availability.has_run_in schedules.(v3) ~len:3 ~lo:0 ~hi:(horizon - 1));
  (* Hence the temporal optimum is strictly worse than the social one. *)
  let social = Option.get (Sgselect.solve instance sgq) in
  let temporal = Option.get (Stgselect.solve ti stgq) in
  check Alcotest.bool "temporal optimum costs more" true
    (temporal.Query.st_total_distance > social.Query.total_distance +. 1.)

let test_example3_second_pivot_fruitless () =
  (* Restricting the horizon to the second pivot's interval [3..6] leaves
     too few common slots — mirroring the narrative's pruned pivot ts6. *)
  let clipped =
    Array.map
      (fun a ->
        let b = Timetable.Availability.copy a in
        Timetable.Availability.set_busy b 0 2;
        b)
      schedules
  in
  check Alcotest.bool "no solution around the late pivot" true
    (Stgselect.solve { ti with Query.schedules = clipped } stgq = None)

let suite =
  [
    Alcotest.test_case "Example 2: backtracked optimum" `Quick test_example2_optimum;
    Alcotest.test_case "Example 2: greedy triangle at k=0" `Quick
      test_example2_first_feasible_is_greedy_triangle;
    Alcotest.test_case "Example 2: v8 never selected" `Quick test_example2_v8_never_selected;
    Alcotest.test_case "Example 3: temporal answer" `Quick test_example3_temporal_answer;
    Alcotest.test_case "Example 3: v3 temporally excluded" `Quick
      test_example3_v3_has_no_run;
    Alcotest.test_case "Example 3: late pivot pruned" `Quick
      test_example3_second_pivot_fruitless;
  ]

(* Multicore pivot fan-out must match the sequential optimum. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let prop_parallel_matches_sequential =
  Gen.qtest ~count:60 "parallel STGSelect = sequential" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      let seq = Stgselect.solve ti q in
      let par = Parallel.solve ~domains:4 ti q in
      match (seq, par) with
      | None, None -> true
      | Some a, Some b ->
          close a.Query.st_total_distance b.Query.st_total_distance
          && Validate.is_valid_stg ti q b
      | _ -> false)

let test_single_domain_degenerates () =
  let case = Gen.stg_case_gen (Random.State.make [| 9 |]) in
  let ti = Gen.temporal_instance_of_stg_case case in
  let q = Gen.stgq_of_stg_case case in
  let report = Parallel.solve_report ~domains:1 ti q in
  Alcotest.check Alcotest.int "one domain" 1 report.Parallel.domains_used;
  let seq = Stgselect.solve ti q in
  Alcotest.check Alcotest.bool "same feasibility" true
    ((seq = None) = (report.Parallel.solution = None))

let test_domain_count_capped_by_pivots () =
  let g = Socgraph.Graph.of_edges 2 [ (0, 1, 1.) ] in
  let horizon = 8 in
  let a () =
    let x = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free x 0 (horizon - 1);
    x
  in
  let ti = { Query.social = { Query.graph = g; initiator = 0 }; schedules = [| a (); a () |] } in
  (* m=4 over 8 slots -> exactly 2 pivots; ask for 16 domains. *)
  let report = Parallel.solve_report ~domains:16 ti { Query.p = 2; s = 1; k = 0; m = 4 } in
  Alcotest.check Alcotest.bool "capped" true (report.Parallel.domains_used <= 2);
  Alcotest.check Alcotest.bool "solved" true (report.Parallel.solution <> None)

let suite =
  [
    Alcotest.test_case "single domain" `Quick test_single_domain_degenerates;
    Alcotest.test_case "domains capped by pivots" `Quick test_domain_count_capped_by_pivots;
    prop_parallel_matches_sequential;
  ]

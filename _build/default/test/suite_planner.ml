(* Incremental planner: after any schedule edit, the cached answer must
   equal a fresh STGSelect run. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let agree planner ti query =
  let fresh =
    Stgselect.solve { ti with Query.schedules = Planner.schedules planner } query
  in
  match (Planner.solution planner, fresh) with
  | None, None -> true
  | Some a, Some b -> close a.Query.st_total_distance b.Query.st_total_distance
  | _ -> false

let mutate_schedule rng horizon =
  let a = Timetable.Availability.create ~horizon in
  let runs = 1 + Random.State.int rng 3 in
  for _ = 1 to runs do
    let lo = Random.State.int rng horizon in
    let len = 1 + Random.State.int rng (horizon / 2) in
    Timetable.Availability.set_free a lo (min (horizon - 1) (lo + len - 1))
  done;
  a

let prop_planner_tracks_edits =
  Gen.qtest ~count:60 "planner = fresh solve after every edit" (Gen.stg_case ~max_n:7 ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let planner = Planner.create ti query in
      let rng = Random.State.make [| case.Gen.horizon; case.Gen.m |] in
      let ok = ref (agree planner ti query) in
      for _ = 1 to 4 do
        let vertex = Random.State.int rng case.Gen.sg.Gen.n in
        let schedule = mutate_schedule rng case.Gen.horizon in
        let stats = Planner.update_schedule planner ~vertex schedule in
        if stats.Planner.pivots_recomputed > stats.Planner.pivots_total then ok := false;
        if not (agree planner ti query) then ok := false
      done;
      !ok)

let test_localized_edit_recomputes_few_pivots () =
  (* 4 pivots (horizon 24, m=6); editing only slots 0..4 dirties just the
     first pivot's interval. *)
  let n = 4 in
  let g =
    Socgraph.Graph.of_edges n [ (0, 1, 1.); (0, 2, 2.); (1, 2, 1.); (0, 3, 4.) ]
  in
  let horizon = 24 in
  let free () =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a 0 (horizon - 1);
    a
  in
  let ti =
    {
      Query.social = { Query.graph = g; initiator = 0 };
      schedules = Array.init n (fun _ -> free ());
    }
  in
  let query = { Query.p = 3; s = 1; k = 1; m = 6 } in
  let planner = Planner.create ti query in
  let edited = free () in
  Timetable.Availability.set_busy edited 0 4;
  let stats = Planner.update_schedule planner ~vertex:1 edited in
  Alcotest.check Alcotest.int "four pivots" 4 stats.Planner.pivots_total;
  Alcotest.check Alcotest.int "one pivot dirtied" 1 stats.Planner.pivots_recomputed;
  match Planner.solution planner with
  | Some s ->
      Alcotest.check Alcotest.bool "still optimal" true (close s.Query.st_total_distance 3.)
  | None -> Alcotest.fail "expected a solution"

let test_edit_outside_feasible_graph_is_free () =
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 1.) ] in
  (* Vertex 2 is isolated: outside every feasible graph. *)
  let horizon = 12 in
  let free () =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a 0 (horizon - 1);
    a
  in
  let ti =
    {
      Query.social = { Query.graph = g; initiator = 0 };
      schedules = Array.init 3 (fun _ -> free ());
    }
  in
  let planner = Planner.create ti { Query.p = 2; s = 1; k = 0; m = 3 } in
  let busy = Timetable.Availability.create ~horizon in
  let stats = Planner.update_schedule planner ~vertex:2 busy in
  Alcotest.check Alcotest.int "no pivots recomputed" 0 stats.Planner.pivots_recomputed;
  Alcotest.check Alcotest.bool "solution unchanged" true
    (Planner.solution planner <> None)

let test_edit_can_destroy_solution () =
  let g = Socgraph.Graph.of_edges 2 [ (0, 1, 1.) ] in
  let horizon = 12 in
  let free () =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a 0 (horizon - 1);
    a
  in
  let ti =
    {
      Query.social = { Query.graph = g; initiator = 0 };
      schedules = [| free (); free () |];
    }
  in
  let planner = Planner.create ti { Query.p = 2; s = 1; k = 0; m = 3 } in
  Alcotest.check Alcotest.bool "initially solvable" true (Planner.solution planner <> None);
  let busy = Timetable.Availability.create ~horizon in
  let _ = Planner.update_schedule planner ~vertex:1 busy in
  Alcotest.check Alcotest.bool "now infeasible" true (Planner.solution planner = None)

let suite =
  [
    Alcotest.test_case "localized edit dirties one pivot" `Quick
      test_localized_edit_recomputes_few_pivots;
    Alcotest.test_case "edit outside feasible graph" `Quick
      test_edit_outside_feasible_graph_is_free;
    Alcotest.test_case "edit can destroy the solution" `Quick
      test_edit_can_destroy_solution;
    prop_planner_tracks_edits;
  ]

(* Heap and bounded-heap properties against list sorting. *)

let int_lists =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (0 -- 60) (int_bound 100))

let prop_heap_sorts =
  Gen.qtest ~count:300 "heap drains in sorted order" int_lists
    (fun l ->
      let h = Pqueue.Heap.create ~cmp:compare in
      List.iter (Pqueue.Heap.add h) l;
      Pqueue.Heap.to_sorted_list h = List.sort compare l)

let prop_heap_pop_min =
  Gen.qtest ~count:300 "pop always yields the minimum" int_lists
    (fun l ->
      let h = Pqueue.Heap.create ~cmp:compare in
      let ok = ref true in
      List.iteri
        (fun i x ->
          Pqueue.Heap.add h x;
          let expect = List.fold_left min x (List.filteri (fun j _ -> j < i) l) in
          if Pqueue.Heap.peek h <> expect then ok := false)
        l;
      !ok)

let prop_bounded_keeps_best =
  let arb =
    QCheck.make
      ~print:(fun (c, l) ->
        Printf.sprintf "cap=%d [%s]" c (String.concat ";" (List.map string_of_int l)))
      QCheck.Gen.(pair (0 -- 10) (list_size (0 -- 60) (int_bound 100)))
  in
  Gen.qtest ~count:300 "bounded heap = sorted prefix" arb
    (fun (capacity, l) ->
      let b = Pqueue.Bounded.create ~capacity ~cmp:compare in
      List.iter (fun x -> ignore (Pqueue.Bounded.add b x)) l;
      let expect =
        List.filteri (fun i _ -> i < capacity) (List.sort compare l)
      in
      (* Ties may be kept in either identity, but values must match. *)
      Pqueue.Bounded.to_sorted_list b = expect)

let test_bounded_admission () =
  let b = Pqueue.Bounded.create ~capacity:2 ~cmp:compare in
  Alcotest.check Alcotest.bool "admit 5" true (Pqueue.Bounded.add b 5);
  Alcotest.check Alcotest.bool "admit 3" true (Pqueue.Bounded.add b 3);
  Alcotest.check Alcotest.bool "full" true (Pqueue.Bounded.is_full b);
  Alcotest.check (Alcotest.option Alcotest.int) "worst" (Some 5) (Pqueue.Bounded.worst b);
  Alcotest.check Alcotest.bool "reject 7" false (Pqueue.Bounded.add b 7);
  Alcotest.check Alcotest.bool "reject tie with worst" false (Pqueue.Bounded.add b 5);
  Alcotest.check Alcotest.bool "admit 1, evicting 5" true (Pqueue.Bounded.add b 1);
  Alcotest.check (Alcotest.list Alcotest.int) "kept" [ 1; 3 ]
    (Pqueue.Bounded.to_sorted_list b)

let test_empty_heap () =
  let h = Pqueue.Heap.create ~cmp:compare in
  Alcotest.check Alcotest.bool "empty" true (Pqueue.Heap.is_empty h);
  Alcotest.check_raises "peek raises" Not_found (fun () ->
      ignore (Pqueue.Heap.peek h));
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Pqueue.Heap.pop h))

let suite =
  [
    Alcotest.test_case "bounded admission rules" `Quick test_bounded_admission;
    Alcotest.test_case "empty heap" `Quick test_empty_heap;
    prop_heap_sorts;
    prop_heap_pop_min;
    prop_bounded_keeps_best;
  ]

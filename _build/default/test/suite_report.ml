(* Report formatting helpers. *)

let check = Alcotest.check

let test_table_alignment () =
  let out =
    Report.table ~title:"t" ~header:[ "a"; "bb" ]
      [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check Alcotest.int "title + sep + header + sep + 2 rows" 6 (List.length lines);
  (* all data lines share the same width *)
  match lines with
  | _ :: sep :: rest ->
      List.iter
        (fun l ->
          check Alcotest.bool "no line exceeds the separator" true
            (String.length l <= String.length sep + 2))
        rest
  | _ -> Alcotest.fail "unexpected shape"

let test_csv_quoting () =
  let out = Report.csv ~header:[ "a"; "b" ] [ [ "x,y"; "he said \"hi\"" ] ] in
  check Alcotest.string "quoted" "a,b\n\"x,y\",\"he said \"\"hi\"\"\"" out

let test_ns_units () =
  check Alcotest.string "ns" "850ns" (Report.ns 850.);
  check Alcotest.string "us" "1.5us" (Report.ns 1500.);
  check Alcotest.string "ms" "2.5ms" (Report.ns 2_500_000.);
  check Alcotest.string "s" "1.25s" (Report.ns 1_250_000_000.)

let test_time_measures () =
  let (), dt = Report.time (fun () -> ignore (Sys.opaque_identity (Array.make 1000 0))) in
  check Alcotest.bool "positive duration" true (dt >= 0.);
  let x, dt2 = Report.time_median ~runs:3 (fun () -> 21 * 2) in
  check Alcotest.int "result" 42 x;
  check Alcotest.bool "median positive" true (dt2 >= 0.)

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "duration units" `Quick test_ns_units;
    Alcotest.test_case "timing" `Quick test_time_measures;
  ]

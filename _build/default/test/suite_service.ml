(* The service layer: cached answers must equal direct solver calls, and
   the cache must behave. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let prop_service_matches_direct =
  Gen.qtest ~count:80 "service answers = direct solver answers" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let service = Service.create ti in
      let ok = ref true in
      (* Several initiators, repeated to exercise cache hits. *)
      for initiator = 0 to min 3 (case.Gen.sg.Gen.n - 1) do
        for _round = 1 to 2 do
          let ti_q =
            { ti with Query.social = { ti.Query.social with Query.initiator } }
          in
          let direct = Stgselect.solve ti_q query in
          let via = Service.stgq service ~initiator query in
          (match (direct, via) with
          | None, None -> ()
          | Some a, Some b
            when close a.Query.st_total_distance b.Query.st_total_distance ->
              ()
          | _ -> ok := false);
          let sg_direct = Sgselect.solve ti_q.Query.social (Query.sgq_of_stgq query) in
          let sg_via = Service.sgq service ~initiator (Query.sgq_of_stgq query) in
          match (sg_direct, sg_via) with
          | None, None -> ()
          | Some a, Some b when close a.Query.total_distance b.Query.total_distance ->
              ()
          | _ -> ok := false
        done
      done;
      let stats = Service.cache_stats service in
      !ok && stats.Service.hits > 0 && stats.Service.misses > 0)

let fixture () =
  let g =
    Socgraph.Graph.of_edges 5
      [ (0, 1, 1.); (0, 2, 2.); (1, 2, 1.); (3, 4, 1.); (0, 3, 5.) ]
  in
  let horizon = 12 in
  let free () =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a 0 (horizon - 1);
    a
  in
  {
    Query.social = { Query.graph = g; initiator = 0 };
    schedules = Array.init 5 (fun _ -> free ());
  }

let test_cache_hits_and_eviction () =
  let service = Service.create ~cache_capacity:2 (fixture ()) in
  let q = { Query.p = 2; s = 1; k = 1 } in
  ignore (Service.sgq service ~initiator:0 q);
  ignore (Service.sgq service ~initiator:0 q);
  ignore (Service.sgq service ~initiator:1 q);
  ignore (Service.sgq service ~initiator:2 q);
  (* capacity 2: initiator 0's entry evicted *)
  ignore (Service.sgq service ~initiator:0 q);
  let stats = Service.cache_stats service in
  Alcotest.check Alcotest.int "hits" 1 stats.Service.hits;
  Alcotest.check Alcotest.int "misses" 4 stats.Service.misses;
  Alcotest.check Alcotest.int "evictions" 2 stats.Service.evictions;
  Alcotest.check Alcotest.int "entries" 2 stats.Service.entries

let test_graph_update_invalidates () =
  let ti = fixture () in
  let service = Service.create ti in
  let q = { Query.p = 2; s = 1; k = 1 } in
  (match Service.sgq service ~initiator:0 q with
  | Some { Query.total_distance; _ } ->
      Alcotest.check Alcotest.bool "initially 1" true (close total_distance 1.)
  | None -> Alcotest.fail "expected a solution");
  (* Re-weight 0-1 to be expensive: the cheapest companion becomes 2. *)
  let g' =
    Socgraph.Graph.of_edges 5
      [ (0, 1, 9.); (0, 2, 2.); (1, 2, 1.); (3, 4, 1.); (0, 3, 5.) ]
  in
  Service.update_graph service g';
  (match Service.sgq service ~initiator:0 q with
  | Some { Query.total_distance; _ } ->
      Alcotest.check Alcotest.bool "now 2" true (close total_distance 2.)
  | None -> Alcotest.fail "expected a solution after update");
  Alcotest.check Alcotest.int "cache dropped" 1 (Service.cache_stats service).Service.entries

let test_schedule_update_visible () =
  let ti = fixture () in
  let service = Service.create ti in
  let q = { Query.p = 2; s = 1; k = 0; m = 4 } in
  (match Service.stgq service ~initiator:0 q with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a window initially");
  (* Make everyone but the initiator fully busy. *)
  let busy = Timetable.Availability.create ~horizon:12 in
  for v = 1 to 4 do
    Service.update_schedule service ~vertex:v busy
  done;
  Alcotest.check Alcotest.bool "no window after busy-out" true
    (Service.stgq service ~initiator:0 q = None)

let suite =
  [
    Alcotest.test_case "cache hits and eviction" `Quick test_cache_hits_and_eviction;
    Alcotest.test_case "graph update invalidates" `Quick test_graph_update_invalidates;
    Alcotest.test_case "schedule update visible" `Quick test_schedule_update_visible;
    prop_service_matches_direct;
  ]

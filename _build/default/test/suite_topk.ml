(* Top-N group queries: the returned distance multiset must be the exact
   n smallest over all qualified groups. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

(* Oracle: all qualified SGQ groups, as sorted distances. *)
let all_sg_distances instance (query : Query.sgq) =
  let fg = Feasible.extract instance ~s:query.s in
  let size = Feasible.size fg in
  let q = fg.Feasible.q in
  let acc = ref [] in
  let rec go v group count td =
    if count = query.p then begin
      let ok =
        List.for_all
          (fun x ->
            List.fold_left
              (fun nn w ->
                if w <> x && not (Feasible.adjacent fg x w) then nn + 1 else nn)
              0 group
            <= query.k)
          group
      in
      if ok then acc := td :: !acc
    end
    else if v < size then begin
      if v <> q then go (v + 1) (v :: group) (count + 1) (td +. fg.Feasible.dist.(v));
      go (v + 1) group count td
    end
  in
  go 0 [ q ] 1 0.;
  List.sort compare !acc

let take n l = List.filteri (fun i _ -> i < n) l

let prop_topk_sgq_exact =
  Gen.qtest ~count:150 "top-k SGQ distances = n smallest qualified"
    (Gen.sg_case ~max_n:9 ~max_p:5 ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let n = 4 in
      let entries = Topk.sgq ~n instance case.Gen.query in
      let got = List.map (fun e -> e.Topk.total_distance) entries in
      let want = take n (all_sg_distances instance case.Gen.query) in
      List.length got = List.length want
      && List.for_all2 close got want
      && List.for_all
           (fun e ->
             Validate.is_valid_sg instance case.Gen.query
               {
                 Query.attendees = e.Topk.attendees;
                 total_distance = e.Topk.total_distance;
               })
           entries)

let prop_top1_equals_sgselect =
  Gen.qtest ~count:150 "top-1 = SGSelect" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      match (Topk.sgq ~n:1 instance case.Gen.query, Sgselect.solve instance case.Gen.query)
      with
      | [], None -> true
      | [ e ], Some s -> close e.Topk.total_distance s.Query.total_distance
      | _ -> false)

let prop_topk_sorted_and_distinct =
  Gen.qtest ~count:100 "top-k entries sorted, groups distinct" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let entries = Topk.stgq ~n:5 ti query in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            a.Topk.total_distance <= b.Topk.total_distance +. 1e-9 && sorted rest
        | _ -> true
      in
      let groups = List.map (fun e -> e.Topk.attendees) entries in
      sorted entries
      && List.length (List.sort_uniq compare groups) = List.length groups
      && List.for_all
           (fun e ->
             match e.Topk.start_slot with
             | None -> false
             | Some start ->
                 Validate.is_valid_stg ti query
                   {
                     Query.st_attendees = e.Topk.attendees;
                     st_total_distance = e.Topk.total_distance;
                     start_slot = start;
                   })
           entries)

let prop_top1_stgq_equals_stgselect =
  Gen.qtest ~count:100 "top-1 STGQ = STGSelect" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      match (Topk.stgq ~n:1 ti query, Stgselect.solve ti query) with
      | [], None -> true
      | [ e ], Some s -> close e.Topk.total_distance s.Query.st_total_distance
      | _ -> false)

let test_topk_zero () =
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 1.); (0, 2, 2.) ] in
  let instance = { Query.graph = g; initiator = 0 } in
  Alcotest.check Alcotest.int "n=0 yields nothing" 0
    (List.length (Topk.sgq ~n:0 instance { Query.p = 2; s = 1; k = 1 }))

let test_topk_more_than_exist () =
  let g = Socgraph.Graph.of_edges 3 [ (0, 1, 1.); (0, 2, 2.) ] in
  let instance = { Query.graph = g; initiator = 0 } in
  (* Only two groups of size 2 exist. *)
  let entries = Topk.sgq ~n:10 instance { Query.p = 2; s = 1; k = 1 } in
  Alcotest.check Alcotest.int "both groups" 2 (List.length entries);
  match entries with
  | [ a; b ] ->
      Alcotest.check Alcotest.bool "ordered" true
        (a.Topk.total_distance <= b.Topk.total_distance)
  | _ -> Alcotest.fail "expected two entries"

let suite =
  [
    Alcotest.test_case "n=0" `Quick test_topk_zero;
    Alcotest.test_case "n beyond available groups" `Quick test_topk_more_than_exist;
    prop_topk_sgq_exact;
    prop_top1_equals_sgselect;
    prop_topk_sorted_and_distinct;
    prop_top1_stgq_equals_stgselect;
  ]

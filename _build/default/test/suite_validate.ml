(* The validator must accept optimal solver output and flag every kind of
   mutation. *)

open Stgq_core

let star4 =
  Socgraph.Graph.of_edges 5 [ (0, 1, 1.); (0, 2, 2.); (0, 3, 3.); (1, 2, 1.) ]

let instance = { Query.graph = star4; initiator = 0 }
let query = { Query.p = 3; s = 1; k = 1 }

let solution () =
  match Sgselect.solve instance query with
  | Some s -> s
  | None -> Alcotest.fail "fixture should be solvable"

let has pred violations = List.exists pred violations

let test_accepts_solver_output () =
  Alcotest.check Alcotest.bool "valid" true (Validate.is_valid_sg instance query (solution ()))

let test_wrong_size () =
  let s = solution () in
  let mutated = { s with Query.attendees = [ 0; 1 ] } in
  Alcotest.check Alcotest.bool "wrong size flagged" true
    (has
       (function Validate.Wrong_size _ -> true | _ -> false)
       (Validate.check_sg instance query mutated))

let test_missing_initiator () =
  let mutated = { Query.attendees = [ 1; 2; 3 ]; total_distance = 6. } in
  Alcotest.check Alcotest.bool "missing initiator flagged" true
    (has
       (function Validate.Missing_initiator -> true | _ -> false)
       (Validate.check_sg instance query mutated))

let test_duplicate () =
  let mutated = { Query.attendees = [ 0; 1; 1 ]; total_distance = 2. } in
  Alcotest.check Alcotest.bool "duplicate flagged" true
    (has
       (function Validate.Duplicate_attendee _ -> true | _ -> false)
       (Validate.check_sg instance query mutated))

let test_distance_mismatch () =
  let s = solution () in
  let mutated = { s with Query.total_distance = s.Query.total_distance +. 5. } in
  Alcotest.check Alcotest.bool "distance mismatch flagged" true
    (has
       (function Validate.Distance_mismatch _ -> true | _ -> false)
       (Validate.check_sg instance query mutated))

let test_acquaintance_violation () =
  (* {0,1,3} at k=0: 1-3 and q... 1-3 not adjacent. *)
  let mutated = { Query.attendees = [ 0; 1; 3 ]; total_distance = 4. } in
  Alcotest.check Alcotest.bool "acquaintance flagged" true
    (has
       (function Validate.Acquaintance_violation _ -> true | _ -> false)
       (Validate.check_sg instance { query with Query.k = 0 } mutated))

let test_radius_violation () =
  let path = Socgraph.Graph.of_edges 3 [ (0, 1, 1.); (1, 2, 1.) ] in
  let inst = { Query.graph = path; initiator = 0 } in
  let sol = { Query.attendees = [ 0; 1; 2 ]; total_distance = 3. } in
  Alcotest.check Alcotest.bool "radius flagged at s=1" true
    (has
       (function Validate.Radius_violation 2 -> true | _ -> false)
       (Validate.check_sg inst { Query.p = 3; s = 1; k = 2 } sol))

let temporal_fixture () =
  let horizon = 12 in
  let free lo hi =
    let a = Timetable.Availability.create ~horizon in
    Timetable.Availability.set_free a lo hi;
    a
  in
  let ti =
    { Query.social = instance; schedules = Array.init 5 (fun _ -> free 2 9) }
  in
  let q = { Query.p = 3; s = 1; k = 1; m = 3 } in
  (ti, q)

let test_stg_accepts () =
  let ti, q = temporal_fixture () in
  match Stgselect.solve ti q with
  | Some s -> Alcotest.check Alcotest.bool "valid" true (Validate.is_valid_stg ti q s)
  | None -> Alcotest.fail "fixture should be solvable"

let test_stg_window_violations () =
  let ti, q = temporal_fixture () in
  let s =
    match Stgselect.solve ti q with Some s -> s | None -> Alcotest.fail "solvable"
  in
  let out_of_range = { s with Query.start_slot = 11 } in
  Alcotest.check Alcotest.bool "window out of range" true
    (has
       (function Validate.Window_out_of_range -> true | _ -> false)
       (Validate.check_stg ti q out_of_range));
  let busy_start = { s with Query.start_slot = 0 } in
  Alcotest.check Alcotest.bool "availability violation" true
    (has
       (function Validate.Availability_violation _ -> true | _ -> false)
       (Validate.check_stg ti q busy_start))

let prop_solver_output_always_valid =
  Gen.qtest ~count:150 "STGSelect output always validates" (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let q = Gen.stgq_of_stg_case case in
      match Stgselect.solve ti q with
      | None -> true
      | Some s -> Validate.check_stg ti q s = [])

let suite =
  [
    Alcotest.test_case "accepts solver output" `Quick test_accepts_solver_output;
    Alcotest.test_case "wrong size" `Quick test_wrong_size;
    Alcotest.test_case "missing initiator" `Quick test_missing_initiator;
    Alcotest.test_case "duplicate attendee" `Quick test_duplicate;
    Alcotest.test_case "distance mismatch" `Quick test_distance_mismatch;
    Alcotest.test_case "acquaintance violation" `Quick test_acquaintance_violation;
    Alcotest.test_case "radius violation" `Quick test_radius_violation;
    Alcotest.test_case "STG accepts solver output" `Quick test_stg_accepts;
    Alcotest.test_case "STG window violations" `Quick test_stg_window_violations;
    prop_solver_output_always_valid;
  ]

(* Workload generators: shapes, determinism, and end-to-end solvability of
   the packaged scenarios. *)

open Stgq_core

let check = Alcotest.check

let test_people194_shape () =
  let ds = Workload.People194.generate ~seed:1 ~days:2 () in
  check Alcotest.int "194 people" 194 (Socgraph.Graph.n_vertices ds.Workload.People194.graph);
  check Alcotest.int "194 schedules" 194 (Array.length ds.Workload.People194.schedules);
  check Alcotest.int "community labels" 194 (Array.length ds.Workload.People194.communities);
  let stats = Socgraph.Metrics.degree_stats ds.Workload.People194.graph in
  check Alcotest.bool "plausible mean degree" true
    (stats.Socgraph.Metrics.mean_degree > 5. && stats.Socgraph.Metrics.mean_degree < 40.);
  let ws = Socgraph.Metrics.weight_stats ds.Workload.People194.graph in
  check Alcotest.bool "distances within worked-example scale" true
    (ws.Socgraph.Metrics.min_weight >= 5. && ws.Socgraph.Metrics.max_weight <= 35.)

let test_people194_community_structure () =
  let ds = Workload.People194.generate ~seed:1 ~days:1 () in
  let g = ds.Workload.People194.graph in
  let c = ds.Workload.People194.communities in
  (* Intra-community edges must dominate. *)
  let intra, inter =
    List.fold_left
      (fun (i, o) (u, v, _) -> if c.(u) = c.(v) then (i + 1, o) else (i, o + 1))
      (0, 0) (Socgraph.Graph.edges g)
  in
  check Alcotest.bool "community-dominated" true (intra > inter)

let test_people194_determinism () =
  let a = Workload.People194.generate ~seed:7 ~days:1 () in
  let b = Workload.People194.generate ~seed:7 ~days:1 () in
  check Alcotest.bool "same graph" true
    (Socgraph.Graph.edges a.Workload.People194.graph
    = Socgraph.Graph.edges b.Workload.People194.graph)

let test_coauthor_shape () =
  let ds = Workload.Coauthor.generate ~seed:2 ~days:1 ~n:800 () in
  check Alcotest.int "800 people" 800 (Socgraph.Graph.n_vertices ds.Workload.Coauthor.graph);
  check Alcotest.int "800 schedules" 800 (Array.length ds.Workload.Coauthor.schedules);
  let stats = Socgraph.Metrics.degree_stats ds.Workload.Coauthor.graph in
  check Alcotest.bool "heavy tail" true
    (float_of_int stats.Socgraph.Metrics.max_degree
    > 3. *. stats.Socgraph.Metrics.mean_degree)

let test_interaction_distance_bounds () =
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 500 do
    let close_d = Workload.People194.interaction_distance rng ~close:true in
    let far_d = Workload.People194.interaction_distance rng ~close:false in
    check Alcotest.bool "in range" true
      (close_d >= 5. && close_d <= 35. && far_d >= 5. && far_d <= 35.)
  done;
  (* On average, intra-community pairs are closer. *)
  let mean close_flag =
    let acc = ref 0. in
    for _ = 1 to 2000 do
      acc := !acc +. Workload.People194.interaction_distance rng ~close:close_flag
    done;
    !acc /. 2000.
  in
  check Alcotest.bool "close < far on average" true (mean true < mean false)

let test_scenario_end_to_end () =
  let ti = Workload.Scenario.people194 ~seed:11 ~days:2 () in
  Query.check_temporal_instance ti;
  (* The packaged scenario must admit typical paper queries. *)
  (match Sgselect.solve ti.Query.social { Query.p = 4; s = 1; k = 2 } with
  | Some s ->
      check Alcotest.bool "SGQ valid" true
        (Validate.is_valid_sg ti.Query.social { Query.p = 4; s = 1; k = 2 } s)
  | None -> Alcotest.fail "expected SGQ solvable on 194-person scenario");
  match Stgselect.solve ti { Query.p = 3; s = 1; k = 2; m = 4 } with
  | Some s ->
      check Alcotest.bool "STGQ valid" true
        (Validate.is_valid_stg ti { Query.p = 3; s = 1; k = 2; m = 4 } s)
  | None -> Alcotest.fail "expected STGQ solvable on 194-person scenario"

let test_people194_units_are_cliques () =
  (* Tier-1 structure: every vertex belongs to a near-clique "unit" —
     verified by each vertex having at least 8 mutually-adjacent close
     neighbours (unit size is 9-14). *)
  let ds = Workload.People194.generate ~seed:5 ~days:1 () in
  let g = ds.Workload.People194.graph in
  let c = ds.Workload.People194.communities in
  let sample = [ 0; 25; 60; 100; 150; 193 ] in
  List.iter
    (fun v ->
      let close_intra =
        Socgraph.Graph.fold_neighbors g v
          (fun u w acc -> if c.(u) = c.(v) && w <= 15. then u :: acc else acc)
          []
      in
      check Alcotest.bool
        (Printf.sprintf "vertex %d has a unit" v)
        true
        (List.length close_intra >= 8))
    sample

let test_people194_strong_ties_cross_communities () =
  let ds = Workload.People194.generate ~seed:5 ~days:1 () in
  let g = ds.Workload.People194.graph in
  let c = ds.Workload.People194.communities in
  (* Edges cheaper than every unit edge (w < 5+0 .. below 8 is possible
     for both tiers; use < 10 and cross) must exist and be cross-community
     by construction of tier 3. *)
  let strong_cross =
    List.filter (fun (u, v, w) -> w < 8. && c.(u) <> c.(v)) (Socgraph.Graph.edges g)
  in
  check Alcotest.bool "strong cross ties exist" true (List.length strong_cross > 20)

let test_schedule_rhythms_differ_by_community () =
  (* A student (community 0) and an office worker (community 1) should
     have low weekday-availability overlap relative to two students. *)
  let ds = Workload.People194.generate ~seed:5 ~days:5 () in
  let sched = ds.Workload.People194.schedules in
  let c = ds.Workload.People194.communities in
  let members comm =
    List.filter (fun v -> c.(v) = comm) (List.init 194 Fun.id)
  in
  let overlap a b =
    Bitset.inter_count
      (Timetable.Availability.bits sched.(a))
      (Timetable.Availability.bits sched.(b))
  in
  let avg pairs =
    let total = List.fold_left (fun acc (a, b) -> acc + overlap a b) 0 pairs in
    float_of_int total /. float_of_int (List.length pairs)
  in
  let students = members 0 and office = members 1 in
  let intra_pairs =
    match students with
    | a :: b :: c' :: d :: _ -> [ (a, b); (c', d); (a, d) ]
    | _ -> Alcotest.fail "not enough students"
  in
  let cross_pairs =
    match (students, office) with
    | a :: b :: _, x :: y :: _ -> [ (a, x); (b, y); (a, y) ]
    | _ -> Alcotest.fail "not enough members"
  in
  check Alcotest.bool "same-rhythm pairs overlap more" true
    (avg intra_pairs > avg cross_pairs)

let test_pick_initiator () =
  let g = Socgraph.Graph.of_edges 4 [ (0, 1, 1.); (0, 2, 1.); (0, 3, 1.); (1, 2, 1.) ] in
  check Alcotest.int "rank 0 is the hub" 0 (Workload.Scenario.pick_initiator ~rank:0 g);
  check Alcotest.bool "rank beyond n clamps" true
    (Workload.Scenario.pick_initiator ~rank:99 g < 4)

let suite =
  [
    Alcotest.test_case "people194 shape" `Quick test_people194_shape;
    Alcotest.test_case "people194 communities" `Quick test_people194_community_structure;
    Alcotest.test_case "people194 determinism" `Quick test_people194_determinism;
    Alcotest.test_case "coauthor shape" `Quick test_coauthor_shape;
    Alcotest.test_case "interaction distances" `Quick test_interaction_distance_bounds;
    Alcotest.test_case "scenario end-to-end" `Quick test_scenario_end_to_end;
    Alcotest.test_case "units are near-cliques" `Quick test_people194_units_are_cliques;
    Alcotest.test_case "strong ties cross communities" `Quick
      test_people194_strong_ties_cross_communities;
    Alcotest.test_case "rhythms differ by community" `Quick
      test_schedule_rhythms_differ_by_community;
    Alcotest.test_case "pick_initiator" `Quick test_pick_initiator;
  ]

(* Experiment harness: regenerates every figure of the paper's §5
   (Fig. 1(a)-(h)) plus the ablation studies listed in DESIGN.md, and runs
   a Bechamel micro-suite with one Test.make per figure.

   Absolute numbers differ from the paper's IBM x3650 testbed; the *shape*
   of each series (who wins, growth trends) is the reproduction target —
   see EXPERIMENTS.md for recorded output and commentary.

   Usage: dune exec bench/main.exe -- [--fast] [--only=fig1a,fig1e,...]
                                      [--skip-bechamel] [--domains=N]
                                      [--smoke] [--json-out=FILE]
                                      [--obs-out=FILE] [--resilience-out=FILE]
                                      [--trace-out=FILE] [--server-out=FILE]
                                      [--scale-out=FILE]

   --smoke runs only the engine replay comparisons at tiny sizes and
   writes its results as JSON (default BENCH_engine.json, BENCH_obs.json,
   BENCH_resilience.json and BENCH_trace.json) — the CI baseline behind
   the root @bench-smoke alias.  The engine artefact gates the batched
   serving path at >= 2x throughput over one-query-at-a-time with zero
   answer mismatches, and records the worker pool's queue-depth
   high-water mark and respawn count; the resilience artefact gates the
   cooperative budget-check overhead at +3% p99 against the unbudgeted
   path; the trace artefact gates span recording at +5% when enabled
   and requires the pruning waterfall to balance exactly; the scale
   artefact (BENCH_scale.json) gates the durable store at n=100k users
   — snapshot bytes/user, WAL replay rate, checkpoint pause p99 and a
   recovery differential against the in-memory fold. *)

open Stgq_core

(* ------------------------------------------------------------------ *)
(* Tunables.                                                           *)

type settings = {
  fast : bool;
  group_cap : int;      (* brute-force enumeration cap *)
  ip_node_cap : int;    (* branch-and-bound node cap *)
  domains : int option; (* --domains / STGQ_DOMAINS override *)
}

let full_settings =
  { fast = false; group_cap = 4_000_000; ip_node_cap = 40_000; domains = None }

let fast_settings =
  { fast = true; group_cap = 200_000; ip_node_cap = 4_000; domains = None }

(* ------------------------------------------------------------------ *)
(* Timing helpers.  A capped run reports the elapsed time at the cap,
   flagged with '>' — the series keeps its shape without letting the
   exponential baselines run for hours.                                *)

type timed = Done of float * string | Capped of float

let ns_cell = function
  | Done (t, _) -> Report.ns t
  | Capped t -> ">" ^ Report.ns t

let detail_cell = function Done (_, d) -> d | Capped _ -> "capped"

(* Raised by the solver wrappers below when a total baseline reports a
   truncated outcome — [timed] turns it into a [Capped] row. *)
exception Capped_run

let timed f =
  let t0 = Unix.gettimeofday () in
  match f () with
  | detail -> Done ((Unix.gettimeofday () -. t0) *. 1e9, detail)
  | exception (Capped_run | Failure _) ->
      Capped ((Unix.gettimeofday () -. t0) *. 1e9)

let dist_of = function None -> "none" | Some d -> Printf.sprintf "%.1f" d

(* Solver wrappers returning a distance string as the detail column. *)
let run_sgselect instance query () =
  dist_of
    (Option.map
       (fun r -> r.Query.total_distance)
       (Sgselect.solve instance query))

let run_sg_baseline ~cap instance query () =
  let report = Baseline.sgq_brute ~max_groups:cap instance query in
  if not (Anytime.complete report.Baseline.outcome) then raise Capped_run;
  dist_of
    (Option.map (fun r -> r.Query.total_distance) report.Baseline.solution)

let run_sg_ip ~cap instance query () =
  dist_of
    (Option.map
       (fun r -> r.Query.total_distance)
       (Ip_model.solve_sgq ~node_limit:cap instance query).Ip_model.result)

let run_stgselect ti query () =
  dist_of
    (Option.map (fun r -> r.Query.st_total_distance) (Stgselect.solve ti query))

let run_stg_baseline ti query () =
  let report = Baseline.stgq_per_slot ti query in
  if not (Anytime.complete report.Baseline.st_outcome) then raise Capped_run;
  dist_of
    (Option.map (fun r -> r.Query.st_total_distance) report.Baseline.st_solution)

let print_table ~title ~header rows =
  print_newline ();
  print_endline (Report.table ~title ~header rows);
  flush stdout

(* Shared datasets. *)
let dataset_194 = lazy (Workload.Scenario.people194 ~seed:1105 ~days:7 ())

let social_194 () = (Lazy.force dataset_194).Query.social

(* ------------------------------------------------------------------ *)
(* Fig. 1(a): running time vs p (SGSelect, Baseline, IP); k=2, s=1.    *)

let fig1a st () =
  let instance = social_194 () in
  let ps = if st.fast then [ 3; 4; 5; 6; 7 ] else [ 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let rows =
    List.map
      (fun p ->
        let query = { Query.p; s = 1; k = 2 } in
        let sel = timed (run_sgselect instance query) in
        let base = timed (run_sg_baseline ~cap:st.group_cap instance query) in
        let ip = timed (run_sg_ip ~cap:st.ip_node_cap instance query) in
        [ string_of_int p; ns_cell sel; ns_cell base; ns_cell ip; detail_cell sel ])
      ps
  in
  print_table ~title:"Fig 1(a)  running time vs p   (k=2, s=1, 194-person network)"
    ~header:[ "p"; "SGSelect"; "Baseline"; "IP"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 1(b): running time vs s; p=4, k=2.                             *)

let fig1b st () =
  let instance = social_194 () in
  let ss = if st.fast then [ 1; 3 ] else [ 1; 3; 5 ] in
  let rows =
    List.map
      (fun s ->
        let query = { Query.p = 4; s; k = 2 } in
        let sel = timed (run_sgselect instance query) in
        let base = timed (run_sg_baseline ~cap:st.group_cap instance query) in
        [ string_of_int s; ns_cell sel; ns_cell base; detail_cell sel ])
      ss
  in
  print_table ~title:"Fig 1(b)  running time vs s   (p=4, k=2, 194-person network)"
    ~header:[ "s"; "SGSelect"; "Baseline"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 1(c): running time vs k; p=5, s=2.                             *)

let fig1c st () =
  let instance = social_194 () in
  let ks = if st.fast then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6 ] in
  let rows =
    List.map
      (fun k ->
        let query = { Query.p = 5; s = 2; k } in
        let sel = timed (run_sgselect instance query) in
        let base = timed (run_sg_baseline ~cap:st.group_cap instance query) in
        [ string_of_int k; ns_cell sel; ns_cell base; detail_cell sel ])
      ks
  in
  print_table ~title:"Fig 1(c)  running time vs k   (p=5, s=2, 194-person network)"
    ~header:[ "k"; "SGSelect"; "Baseline"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 1(d): running time vs network size; p=5, k=3, s=1.             *)

let fig1d st () =
  let sizes = if st.fast then [ 194; 800 ] else [ 194; 800; 3200; 12800 ] in
  let rows =
    List.map
      (fun n ->
        let ds = Workload.Coauthor.generate ~seed:7 ~days:1 ~n () in
        let graph = ds.Workload.Coauthor.graph in
        (* A busy-but-not-hub initiator keeps the feasible graph size
           comparable across n, as a per-user egocentric query would be. *)
        let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
        let instance = { Query.graph; initiator } in
        let query = { Query.p = 5; s = 1; k = 3 } in
        let sel = timed (run_sgselect instance query) in
        let base = timed (run_sg_baseline ~cap:st.group_cap instance query) in
        let ip = timed (run_sg_ip ~cap:st.ip_node_cap instance query) in
        [
          string_of_int n;
          string_of_int (Socgraph.Graph.degree graph initiator + 1);
          ns_cell sel;
          ns_cell base;
          ns_cell ip;
          detail_cell sel;
        ])
      sizes
  in
  print_table
    ~title:"Fig 1(d)  running time vs network size   (p=5, k=3, s=1, coauthor networks)"
    ~header:[ "network"; "|V_F|"; "SGSelect"; "Baseline"; "IP"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 1(e): running time vs m (STGSelect, per-slot Baseline).        *)

let fig1e st () =
  let ti = Lazy.force dataset_194 in
  let ms =
    if st.fast then [ 2; 4; 8; 12 ] else [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20; 22; 24 ]
  in
  let rows =
    List.map
      (fun m ->
        let query = { Query.p = 4; s = 1; k = 2; m } in
        let sel = timed (run_stgselect ti query) in
        let base = timed (run_stg_baseline ti query) in
        [ string_of_int m; ns_cell sel; ns_cell base; detail_cell sel ])
      ms
  in
  print_table
    ~title:"Fig 1(e)  running time vs m   (p=4, k=2, s=1, 7-day schedules, 0.5h slots)"
    ~header:[ "m"; "STGSelect"; "Baseline"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 1(f): running time vs schedule length in days; m=4.            *)

let fig1f st () =
  let days_list = if st.fast then [ 1; 3; 5 ] else [ 1; 2; 3; 4; 5; 6; 7 ] in
  let rows =
    List.map
      (fun days ->
        let ti = Workload.Scenario.people194 ~seed:1105 ~days () in
        let query = { Query.p = 4; s = 1; k = 2; m = 4 } in
        let sel = timed (run_stgselect ti query) in
        let base = timed (run_stg_baseline ti query) in
        [ string_of_int days; ns_cell sel; ns_cell base; detail_cell sel ])
      days_list
  in
  print_table
    ~title:"Fig 1(f)  running time vs schedule length   (p=4, k=2, s=1, m=4)"
    ~header:[ "days"; "STGSelect"; "Baseline"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 1(g)/(h): solution quality, STGArrange vs PCArrange.           *)

let fig1gh st () =
  let ti = Lazy.force dataset_194 in
  let ps = if st.fast then [ 3; 5; 7 ] else [ 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let rows =
    List.map
      (fun p ->
        match Stgarrange.versus_pcarrange ti ~p ~s:2 ~m:4 with
        | None -> [ string_of_int p; "-"; "-"; "-"; "-" ]
        | Some ({ Stgarrange.k_used; solution }, pc) ->
            [
              string_of_int p;
              string_of_int k_used;
              string_of_int pc.Pcarrange.observed_k;
              Printf.sprintf "%.1f" solution.Query.st_total_distance;
              Printf.sprintf "%.1f" pc.Pcarrange.total_distance;
            ])
      ps
  in
  print_table
    ~title:"Fig 1(g)+(h)  solution quality vs p   (s=2, m=4): k and total distance"
    ~header:[ "p"; "k STGArrange"; "k PCArrange"; "dist STGArrange"; "dist PCArrange" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations A1-A3: SGSelect strategy toggles.                         *)

let ablation_sg st () =
  let instance = social_194 () in
  let query = { Query.p = (if st.fast then 5 else 7); s = 2; k = 2 } in
  let configs =
    [
      ("full SGSelect", Search_core.default_config);
      ( "no access ordering",
        { Search_core.default_config with Search_core.use_access_ordering = false } );
      ( "no distance pruning",
        { Search_core.default_config with Search_core.use_distance_pruning = false } );
      ( "no acquaintance pruning",
        { Search_core.default_config with Search_core.use_acquaintance_pruning = false }
      );
      ( "no pruning at all",
        {
          Search_core.default_config with
          Search_core.use_access_ordering = false;
          use_distance_pruning = false;
          use_acquaintance_pruning = false;
        } );
    ]
  in
  let warm_row =
    let result = ref "" in
    let t =
      timed (fun () ->
          result :=
            dist_of
              (Option.map
                 (fun (s : Query.sg_solution) -> s.Query.total_distance)
                 (Sgselect.solve_warm instance query));
          !result)
    in
    [ "beam-seeded warm start"; ns_cell t; "-"; detail_cell t ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let report = ref None in
        let t =
          timed (fun () ->
              let r = Sgselect.solve_report ~config instance query in
              report := Some r;
              dist_of (Option.map (fun s -> s.Query.total_distance) r.Sgselect.solution))
        in
        let nodes =
          match !report with
          | Some r -> string_of_int r.Sgselect.stats.Search_core.nodes
          | None -> "-"
        in
        [ name; ns_cell t; nodes; detail_cell t ])
      configs
    @ [ warm_row ]
  in
  print_table
    ~title:
      (Printf.sprintf
         "Ablation A1-A3  SGSelect strategies   (p=%d, s=2, k=2, 194-person network)"
         query.Query.p)
    ~header:[ "variant"; "time"; "search nodes"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations A4-A6: temporal strategies and the parallel extension.    *)

let ablation_stg st () =
  let ti = Lazy.force dataset_194 in
  let query = { Query.p = 4; s = 1; k = 2; m = (if st.fast then 4 else 8) } in
  let no_avail =
    { Search_core.default_config with Search_core.use_availability_pruning = false }
  in
  let rows =
    [
      (let t = timed (run_stgselect ti query) in
       [ "STGSelect (pivot slots)"; ns_cell t; detail_cell t ]);
      (let t =
         timed (fun () ->
             dist_of
               (Option.map
                  (fun r -> r.Query.st_total_distance)
                  (Stgselect.solve ~config:no_avail ti query)))
       in
       [ "no availability pruning"; ns_cell t; detail_cell t ]);
      (let t = timed (run_stg_baseline ti query) in
       [ "per-slot scan (no pivots)"; ns_cell t; detail_cell t ]);
      (Engine.Pool.with_pool ?size:st.domains @@ fun pool ->
       let t =
         timed (fun () ->
             dist_of
               (Option.map
                  (fun r -> r.Query.st_total_distance)
                  (Parallel.solve ~pool ti query)))
       in
       [
         Printf.sprintf "parallel pivots (%d domains)" (Engine.Pool.size pool);
         ns_cell t;
         detail_cell t;
       ]);
    ]
  in
  print_table
    ~title:
      (Printf.sprintf "Ablation A4-A6  temporal strategies   (p=4, s=1, k=2, m=%d)"
         query.Query.m)
    ~header:[ "variant"; "time"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension E1: heuristic quality vs exact.                           *)

let ext_heuristics st () =
  let instance = social_194 () in
  let ps = if st.fast then [ 4; 6 ] else [ 4; 6; 8; 10 ] in
  let rows =
    List.concat_map
      (fun p ->
        let query = { Query.p; s = 2; k = 2 } in
        let run name f =
          let result = ref None in
          let t = timed (fun () ->
              let r = f () in
              result := r;
              dist_of (Option.map (fun s -> s.Query.total_distance) r))
          in
          (name, t, !result)
        in
        let exact = run "SGSelect (exact)" (fun () -> Sgselect.solve instance query) in
        let greedy = run "greedy" (fun () -> Heuristics.greedy_sgq instance query) in
        let beam8 = run "beam w=8" (fun () -> Heuristics.beam_sgq ~width:8 instance query) in
        let beam64 =
          run "beam w=64" (fun () -> Heuristics.beam_sgq ~width:64 instance query)
        in
        let opt =
          match exact with _, _, Some s -> s.Query.total_distance | _ -> nan
        in
        let ratio = function
          | _, _, Some s when Float.is_finite opt ->
              Printf.sprintf "%.3f" (s.Query.total_distance /. opt)
          | _, _, Some _ -> "-"
          | _, _, None -> "fail"
        in
        List.map
          (fun ((name, t, _) as entry) ->
            [ string_of_int p; name; ns_cell t; ratio entry ])
          [ exact; greedy; beam8; beam64 ])
      ps
  in
  print_table
    ~title:"Extension E1  heuristic quality   (s=2, k=2; ratio = distance / optimum)"
    ~header:[ "p"; "solver"; "time"; "ratio" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension E2: top-k overhead over single-best.                      *)

let ext_topk st () =
  let ti = Lazy.force dataset_194 in
  let query = { Query.p = 4; s = 1; k = 2; m = 4 } in
  let ns_list = if st.fast then [ 1; 5 ] else [ 1; 5; 10; 25 ] in
  let single = timed (run_stgselect ti query) in
  let rows =
    ([ "1 (STGSelect)"; ns_cell single; "1"; detail_cell single ]
     :: List.map
          (fun n ->
            let found = ref [] in
            let t = timed (fun () ->
                found := Topk.stgq ~n ti query;
                match !found with
                | e :: _ -> Printf.sprintf "%.1f" e.Topk.total_distance
                | [] -> "none")
            in
            [ string_of_int n; ns_cell t; string_of_int (List.length !found);
              detail_cell t ])
          ns_list)
  in
  print_table ~title:"Extension E2  top-k overhead   (p=4, s=1, k=2, m=4)"
    ~header:[ "k requested"; "time"; "groups returned"; "best distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension E3: incremental replanning vs full re-solve.              *)

let ext_planner st () =
  let ti = Workload.Scenario.people194 ~seed:1105 ~days:7 () in
  let query = { Query.p = 4; s = 1; k = 2; m = 4 } in
  let planner, create_ns = Report.time (fun () -> Planner.create ti query) in
  let rng = Random.State.make [| 5 |] in
  let horizon = Timetable.Availability.horizon ti.Query.schedules.(0) in
  let edits = if st.fast then 10 else 30 in
  let incr_ns = ref 0. and full = ref 0. and redone = ref 0 and mismatches = ref 0 in
  for _ = 1 to edits do
    let vertex =
      match Planner.solution planner with
      | Some s when Random.State.bool rng ->
          let members = Array.of_list s.Query.st_attendees in
          members.(Random.State.int rng (Array.length members))
      | _ -> Random.State.int rng (Array.length ti.Query.schedules)
    in
    let schedule = (Planner.schedules planner).(vertex) in
    let lo = Random.State.int rng (horizon - 4) in
    Timetable.Availability.set_busy schedule lo (lo + 3);
    let stats, dt = Report.time (fun () -> Planner.update_schedule planner ~vertex schedule) in
    incr_ns := !incr_ns +. dt;
    redone := !redone + stats.Planner.pivots_recomputed;
    let fresh_ti = { ti with Query.schedules = Planner.schedules planner } in
    let fresh, dt_full = Report.time (fun () -> Stgselect.solve fresh_ti query) in
    full := !full +. dt_full;
    (match (Planner.solution planner, fresh) with
    | None, None -> ()
    | Some a, Some b
      when Float.abs (a.Query.st_total_distance -. b.Query.st_total_distance) < 1e-9 ->
        ()
    | _ -> incr mismatches)
  done;
  print_table
    ~title:
      (Printf.sprintf
         "Extension E3  incremental replanning   (%d random edits, p=4, s=1, k=2, m=4)"
         edits)
    ~header:[ "metric"; "value" ]
    [
      [ "planner build"; Report.ns create_ns ];
      [ "incremental total"; Report.ns !incr_ns ];
      [ "full re-solve total"; Report.ns !full ];
      [ "pivots recomputed"; string_of_int !redone ];
      [ "answer mismatches"; string_of_int !mismatches ];
    ]

(* ------------------------------------------------------------------ *)
(* Extension E4: SGQ vs the community-search related work ([20]).      *)

let ext_community st () =
  ignore st;
  let instance = social_194 () in
  let g = instance.Query.graph in
  let q = instance.Query.initiator in
  let community = Socgraph.Community_search.search g ~anchor:q in
  let distances = Socgraph.Bounded_dist.distances g ~src:q ~max_edges:2 in
  let total vs =
    List.fold_left
      (fun acc v -> if v = q then acc else acc +. distances.(v))
      0. vs
  in
  let describe name vs =
    [
      name;
      string_of_int (List.length vs);
      string_of_int (Socgraph.Community_search.min_internal_degree g vs);
      (let d = total vs in
       if Float.is_finite d then Printf.sprintf "%.1f" d else "unbounded");
    ]
  in
  let sgq_row p =
    match Sgselect.solve instance { Query.p; s = 2; k = 2 } with
    | Some { attendees; _ } -> [ describe (Printf.sprintf "SGQ p=%d k=2" p) attendees ]
    | None -> []
  in
  print_table
    ~title:
      "Extension E4  SGQ vs community search [20]   (same initiator; distances at s=2)"
    ~header:[ "method"; "size"; "min internal degree"; "total distance" ]
    (describe "community search" community :: List.concat_map sgq_row [ 4; 6; 8 ])

(* ------------------------------------------------------------------ *)
(* Extension E5: end-to-end STGQ at coauthor scale.                    *)

let ext_scale st () =
  let sizes = if st.fast then [ 800 ] else [ 800; 3200; 12800 ] in
  let rows =
    List.map
      (fun n ->
        let build, gen_ns =
          Report.time (fun () -> Workload.Scenario.coauthor ~seed:9 ~days:7 ~n ())
        in
        let query = { Query.p = 5; s = 1; k = 2; m = 4 } in
        let exact = timed (run_stgselect build query) in
        let auto = ref "" in
        let auto_t =
          timed (fun () ->
              let solution, plan = Auto.stgq build query in
              auto :=
                (match plan.Auto.choice with Auto.Exact -> "exact" | Auto.Beam -> "beam");
              dist_of (Option.map (fun s -> s.Query.st_total_distance) solution))
        in
        [
          string_of_int n;
          Report.ns gen_ns;
          ns_cell exact;
          detail_cell exact;
          ns_cell auto_t;
          !auto;
        ])
      sizes
  in
  print_table
    ~title:"Extension E5  end-to-end scale   (STGQ p=5, s=1, k=2, m=4, 7-day schedules)"
    ~header:[ "network"; "generate"; "STGSelect"; "distance"; "Auto"; "auto chose" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension E6: depth-first branch and bound vs best-first search.    *)

let ext_astar st () =
  let instance = social_194 () in
  let ps = if st.fast then [ 4; 6 ] else [ 4; 5; 6; 7; 8 ] in
  let rows =
    List.map
      (fun p ->
        let query = { Query.p; s = 1; k = 2 } in
        let dfs_report = ref None in
        let dfs =
          timed (fun () ->
              let r = Sgselect.solve_report instance query in
              dfs_report := Some r;
              dist_of (Option.map (fun s -> s.Query.total_distance) r.Sgselect.solution))
        in
        let bf_report = ref None in
        let bf =
          timed (fun () ->
              let r = Astar.solve_report ~node_limit:2_000_000 instance query in
              bf_report := Some r;
              dist_of
                (Option.map (fun s -> s.Query.total_distance) r.Astar.solution))
        in
        let dfs_nodes =
          match !dfs_report with
          | Some r -> string_of_int r.Sgselect.stats.Search_core.nodes
          | None -> "-"
        in
        let bf_nodes, frontier =
          match !bf_report with
          | Some r ->
              (string_of_int r.Astar.nodes_expanded, string_of_int r.Astar.max_frontier)
          | None -> ("-", "-")
        in
        [
          string_of_int p;
          ns_cell dfs;
          dfs_nodes;
          ns_cell bf;
          bf_nodes;
          frontier;
          detail_cell dfs;
        ])
      ps
  in
  print_table
    ~title:
      "Extension E6  SGSelect (DFS B&B) vs best-first A*   (k=2, s=1, 194-person network)"
    ~header:
      [ "p"; "SGSelect"; "nodes"; "best-first"; "expanded"; "peak frontier"; "distance" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-suite: one Test.make per figure.                     *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let instance = social_194 () in
  let ti = Lazy.force dataset_194 in
  let sg p s k = { Query.p; s; k } in
  let stg p s k m = { Query.p; s; k; m } in
  let tests =
    Test.make_grouped ~name:"figures"
      [
        Test.make ~name:"fig1a(p=6)"
          (Staged.stage (fun () -> Sgselect.solve instance (sg 6 1 2)));
        Test.make ~name:"fig1b(s=3)"
          (Staged.stage (fun () -> Sgselect.solve instance (sg 4 3 2)));
        Test.make ~name:"fig1c(k=3)"
          (Staged.stage (fun () -> Sgselect.solve instance (sg 5 2 3)));
        Test.make ~name:"fig1d(n=194)"
          (Staged.stage (fun () -> Sgselect.solve instance (sg 5 1 3)));
        Test.make ~name:"fig1e(m=4)"
          (Staged.stage (fun () -> Stgselect.solve ti (stg 4 1 2 4)));
        Test.make ~name:"fig1f(7d)"
          (Staged.stage (fun () -> Stgselect.solve ti (stg 4 1 2 6)));
        Test.make ~name:"fig1g(p=5)"
          (Staged.stage (fun () -> Stgarrange.versus_pcarrange ti ~p:5 ~s:2 ~m:4));
        Test.make ~name:"fig1h(p=5)"
          (Staged.stage (fun () -> Pcarrange.run ti ~p:5 ~s:2 ~m:4));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Report.ns t
          | _ -> "?"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  print_table ~title:"Bechamel micro-suite (OLS time per run)"
    ~header:[ "benchmark"; "time/run"; "r2" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension E7: engine replay — the repeated-query serving workload.
   Four paths answer the same query stream: the seed per-query paths
   (fresh context per call; sequential, or a Domain.spawn/join per
   bucket) against the engine paths (one cached context per (q, s),
   sequential kernel or the persistent pool).                          *)

type replay_outcome = {
  workload : string;
  rp_rounds : int;
  queries_per_round : int;
  rp_domains : int;
  rebuild_seq_ns : float;
  rebuild_spawn_ns : float;
  cached_seq_ns : float;
  cached_pool_ns : float;
  mismatches : int;
}

let engine_replay ~n ~days ~rounds ~domains () =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days ~n () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
  let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
  let queries =
    [
      { Query.p = 3; s = 2; k = 1; m = 4 };
      { Query.p = 4; s = 2; k = 2; m = 4 };
      { Query.p = 3; s = 2; k = 1; m = 6 };
      { Query.p = 4; s = 2; k = 2; m = 6 };
    ]
  in
  let ( n_domains,
        (rebuild_spawn_ns, a_spawn),
        (rebuild_seq_ns, a_seq),
        (cached_seq_ns, a_cseq),
        (cached_pool_ns, a_cpool) ) =
    Engine.Pool.with_pool ?size:domains @@ fun pool ->
    let n_domains = Engine.Pool.size pool in
    let run_path path =
      let out = ref [] in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        List.iter (fun q -> out := path q :: !out) queries
      done;
      ((Unix.gettimeofday () -. t0) *. 1e9, List.rev !out)
    in
    (* Seed paths: a fresh context inside every call. *)
    let rebuild_seq q = Stgselect.solve ti q in
    let rebuild_spawn q =
      (Parallel.solve_report_unpooled ~domains:n_domains ti q).Parallel.solution
    in
    (* Engine paths: contexts come from the cache, keyed by (q, s). *)
    let cache = Engine.Cache.create ~schedules:ti.Query.schedules graph in
    let ctx_for q = Engine.Cache.context cache ~initiator ~s:q.Query.s in
    let cached_seq q = Stgselect.solve ~ctx:(ctx_for q) ti q in
    let cached_pool q = Parallel.solve ~pool ~ctx:(ctx_for q) ti q in
    (* Warm-up outside the clocks: code, allocator, pool domains. *)
    List.iter (fun q -> ignore (cached_pool q)) queries;
    let spawn = run_path rebuild_spawn in
    let seq = run_path rebuild_seq in
    let cseq = run_path cached_seq in
    let cpool = run_path cached_pool in
    (n_domains, spawn, seq, cseq, cpool)
  in
  let agree a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y ->
        Float.abs (x.Query.st_total_distance -. y.Query.st_total_distance) <= 1e-6
        && x.Query.start_slot = y.Query.start_slot
    | _ -> false
  in
  let mismatches =
    List.fold_left2
      (fun acc (a, b) (c, d) ->
        if agree a b && agree a c && agree a d then acc else acc + 1)
      0
      (List.combine a_seq a_spawn)
      (List.combine a_cseq a_cpool)
  in
  {
    workload = Printf.sprintf "coauthor n=%d days=%d q=%d" n days initiator;
    rp_rounds = rounds;
    queries_per_round = List.length queries;
    rp_domains = n_domains;
    rebuild_seq_ns;
    rebuild_spawn_ns;
    cached_seq_ns;
    cached_pool_ns;
    mismatches;
  }

let replay_speedup r = r.rebuild_spawn_ns /. r.cached_pool_ns

(* --- batched replay ------------------------------------------------- *)

(* Mixed in-flight traffic: several initiators, several query shapes
   each, replayed as whole batches.  The baseline answers the same
   request list one query at a time the way the seed serving path does —
   every query extracts its own feasible subgraph.  The batched path
   routes the list through [Service.stgq_batch]: one context per
   (initiator, s) group, pivot memos pre-warmed on the build domain, and
   the next group's build pipelined behind the current group's solves.
   A fresh service per round keeps the comparison honest: the batch
   layer only gets to amortise within the in-flight list itself, not
   across rounds. *)

type batch_outcome = {
  bo_workload : string;
  bo_rounds : int;
  bo_queries : int;  (* per round *)
  bo_groups : int;  (* per round *)
  bo_domains : int;
  one_at_a_time_ns : float;
  batched_ns : float;
  batch_mismatches : int;
}

let batch_speedup b = b.one_at_a_time_ns /. b.batched_ns

let batch_replay ~n ~days ~rounds ~initiators ~domains () =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days ~n () in
  let graph = ti.Query.social.Query.graph in
  (* Mid-tail initiators (degree rank scaled to the graph): egocentric
     queries with modest feasible neighborhoods over a large graph, the
     common case for per-user traffic.  Hub initiators would grow the
     per-query solve until it buries the shared build this layer
     amortises. *)
  let inits =
    List.init initiators (fun i ->
        Workload.Scenario.pick_initiator ~rank:((n / 10) + (n / 15 * i)) graph)
    |> List.sort_uniq compare
  in
  (* Light shapes keep the solve short relative to the context build —
     the regime concurrent-traffic batching exists for. *)
  let shapes =
    [
      { Query.p = 3; s = 1; k = 1; m = 3 };
      { Query.p = 3; s = 1; k = 1; m = 4 };
      { Query.p = 3; s = 1; k = 2; m = 5 };
      { Query.p = 3; s = 1; k = 1; m = 6 };
    ]
  in
  (* Shape-major order scatters each initiator's requests through the
     list, so the batch layer has to actually group them. *)
  let reqs =
    List.concat_map (fun q -> List.map (fun init -> (init, q)) inits) shapes
  in
  let ti_for init =
    { ti with Query.social = { ti.Query.social with Query.initiator = init } }
  in
  let identical a b =
    match (a, b) with
    | None, None -> true
    | Some (x : Query.stg_solution), Some (y : Query.stg_solution) ->
        x.Query.st_attendees = y.Query.st_attendees
        && x.Query.start_slot = y.Query.start_slot
        && Float.equal x.Query.st_total_distance y.Query.st_total_distance
    | _ -> false
  in
  Engine.Pool.with_pool ?size:domains @@ fun pool ->
  (* Warm-up outside the clocks: code paths, allocator, pool domains. *)
  let warm = Service.create ~pool ti in
  ignore (Service.stgq_batch warm reqs : Query.stg_solution option list);
  let t0 = Unix.gettimeofday () in
  let base = ref [] in
  for _ = 1 to rounds do
    base :=
      List.map (fun (init, q) -> Stgselect.solve (ti_for init) q) reqs :: !base
  done;
  let one_at_a_time_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let t0 = Unix.gettimeofday () in
  let batched = ref [] in
  for _ = 1 to rounds do
    let service = Service.create ~pool ti in
    batched := Service.stgq_batch service reqs :: !batched
  done;
  let batched_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let batch_mismatches =
    List.fold_left2
      (fun acc round_base round_batched ->
        List.fold_left2
          (fun acc a b -> if identical a b then acc else acc + 1)
          acc round_base round_batched)
      0 (List.rev !base) (List.rev !batched)
  in
  {
    bo_workload = Printf.sprintf "coauthor n=%d days=%d" n days;
    bo_rounds = rounds;
    bo_queries = List.length reqs;
    bo_groups = List.length inits;
    bo_domains = Engine.Pool.size pool;
    one_at_a_time_ns;
    batched_ns;
    batch_mismatches;
  }

let ext_batch st () =
  let n = if st.fast then 1500 else 4000 in
  let days = if st.fast then 1 else 2 in
  let rounds = if st.fast then 3 else 6 in
  let b = batch_replay ~n ~days ~rounds ~initiators:6 ~domains:st.domains () in
  let per path_ns = path_ns /. float_of_int (b.bo_rounds * b.bo_queries) in
  print_table
    ~title:
      (Printf.sprintf
         "Extension E8  batched replay   (%s, %d rounds x %d queries in %d \
          groups, %d domains, %d mismatches)"
         b.bo_workload b.bo_rounds b.bo_queries b.bo_groups b.bo_domains
         b.batch_mismatches)
    ~header:[ "serving path"; "total"; "per query" ]
    [
      [ "one query at a time (seed)"; Report.ns b.one_at_a_time_ns;
        Report.ns (per b.one_at_a_time_ns) ];
      [ Printf.sprintf "batched + pipelined (%.1fx)" (batch_speedup b);
        Report.ns b.batched_ns; Report.ns (per b.batched_ns) ];
    ]

let ext_engine st () =
  let n = if st.fast then 600 else 2000 in
  let days = if st.fast then 2 else 7 in
  let rounds = if st.fast then 3 else 8 in
  let r = engine_replay ~n ~days ~rounds ~domains:st.domains () in
  let per path_ns = path_ns /. float_of_int (r.rp_rounds * r.queries_per_round) in
  print_table
    ~title:
      (Printf.sprintf
         "Extension E7  engine replay   (%s, %d rounds x %d queries, %d domains, \
          %d mismatches)"
         r.workload r.rp_rounds r.queries_per_round r.rp_domains r.mismatches)
    ~header:[ "serving path"; "total"; "per query" ]
    [
      [ "rebuild + sequential (seed)"; Report.ns r.rebuild_seq_ns;
        Report.ns (per r.rebuild_seq_ns) ];
      [ "rebuild + spawn/join (seed)"; Report.ns r.rebuild_spawn_ns;
        Report.ns (per r.rebuild_spawn_ns) ];
      [ "cached ctx + sequential"; Report.ns r.cached_seq_ns;
        Report.ns (per r.cached_seq_ns) ];
      [ Printf.sprintf "cached ctx + pool (%.1fx)" (replay_speedup r);
        Report.ns r.cached_pool_ns; Report.ns (per r.cached_pool_ns) ];
    ]

let engine_json r b ~pool_queue_depth_hwm ~pool_respawns =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"workload\": %S," r.workload;
      Printf.sprintf "  \"rounds\": %d," r.rp_rounds;
      Printf.sprintf "  \"queries_per_round\": %d," r.queries_per_round;
      Printf.sprintf "  \"domains\": %d," r.rp_domains;
      Printf.sprintf "  \"rebuild_sequential_ns\": %.0f," r.rebuild_seq_ns;
      Printf.sprintf "  \"rebuild_spawn_ns\": %.0f," r.rebuild_spawn_ns;
      Printf.sprintf "  \"cached_sequential_ns\": %.0f," r.cached_seq_ns;
      Printf.sprintf "  \"cached_pool_ns\": %.0f," r.cached_pool_ns;
      Printf.sprintf "  \"speedup_sequential\": %.2f,"
        (r.rebuild_seq_ns /. r.cached_seq_ns);
      Printf.sprintf "  \"speedup\": %.2f," (replay_speedup r);
      Printf.sprintf "  \"mismatches\": %d," r.mismatches;
      Printf.sprintf "  \"batch_workload\": %S," b.bo_workload;
      Printf.sprintf "  \"batch_rounds\": %d," b.bo_rounds;
      Printf.sprintf "  \"batch_queries_per_round\": %d," b.bo_queries;
      Printf.sprintf "  \"batch_groups\": %d," b.bo_groups;
      Printf.sprintf "  \"batch_one_at_a_time_ns\": %.0f," b.one_at_a_time_ns;
      Printf.sprintf "  \"batch_pipelined_ns\": %.0f," b.batched_ns;
      Printf.sprintf "  \"batch_speedup\": %.2f," (batch_speedup b);
      Printf.sprintf "  \"batch_mismatches\": %d," b.batch_mismatches;
      Printf.sprintf "  \"pool_queue_depth_hwm\": %d," pool_queue_depth_hwm;
      Printf.sprintf "  \"pool_respawns\": %d" pool_respawns;
      "}";
      "";
    ]

(* Key names BENCH_engine.json must carry; @bench-smoke fails when any
   goes missing, so the replay and batch trajectories stay comparable
   across commits. *)
let engine_required_keys =
  [
    "\"speedup\"";
    "\"mismatches\"";
    "\"batch_one_at_a_time_ns\"";
    "\"batch_pipelined_ns\"";
    "\"batch_speedup\"";
    "\"batch_mismatches\"";
    "\"pool_queue_depth_hwm\"";
    "\"pool_respawns\"";
  ]

(* Metric names the obs snapshot must carry for the perf trajectory to
   stay interpretable; @bench-smoke fails when any goes missing. *)
let obs_required_keys =
  [
    "\"counters\"";
    "\"histograms\"";
    "engine.cache.lookups";
    "engine.cache.hits";
    "engine.cache.misses";
    "engine.pool.jobs_submitted";
    "engine.pool.jobs_completed";
    "engine.pool.queue_depth_hwm";
    "engine.cache.coalesced";
    "engine.batch.batches";
    "engine.batch.size";
    "engine.batch.context_reuse_pct";
    "engine.batch.pipeline_overlap_pct";
    "engine.context.builds";
    "search.nodes";
    "search.pruned.distance";
    "obs.trace.spans";
    "obs.flightrec.retained";
    "obs.flightrec.sampled";
    "obs.flightrec.evicted";
    "obs.events.emitted";
    "obs.events.fsync_ns";
    "obs.runtime.samples";
    "\"obs_overhead_flightrec\"";
    "\"flightrec_retention_hitrate\"";
    "\"events_fsync_p99_ns\"";
  ]

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

(* --- flight-recorder phase of the obs smoke ------------------------

   The flight recorder only engages behind [Service], where query
   outcomes are classified, so this phase replays the same query mix
   through a [Service] and measures three things:

   - [obs_overhead_flightrec]: cached-replay wall time with the
     {e entire} plane on (metrics + tracing + retention + event ring +
     runtime sampler) over the plane-off baseline, settled best-of-5
     against the 1.05x gate like the other gated ratios.  The JSONL
     sink's durability cost is priced separately (below), so the
     overhead run keeps the ring only.
   - [flightrec_retention_hitrate]: queries forced to degrade (node
     budget of 1) must each leave a pinned stitched trace that the
     exposition serves with a 200 on [/trace/:id] {e and} a matching
     JSONL "query" event in the tail.  Gated at exactly 1.0 —
     retention of bad outcomes is a contract, not a heuristic.
   - [events_fsync_p99_ns]: per-record fsync tail of the sink in
     [Every_record] mode, observed while the degraded queries run. *)
let flightrec_phase () =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days:2 ~n:600 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
  let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
  let queries =
    [
      { Query.p = 3; s = 2; k = 1; m = 4 };
      { Query.p = 4; s = 2; k = 2; m = 4 };
      { Query.p = 3; s = 2; k = 1; m = 6 };
      { Query.p = 4; s = 2; k = 2; m = 6 };
    ]
  in
  let service = Service.create ti in
  let plane_on () =
    Obs.set_enabled true;
    Obs.Trace.set_enabled true;
    Obs.Flightrec.set_enabled true;
    Obs.Events.set_enabled true;
    Obs.Runtime.start ~interval_ms:50 ()
  in
  let plane_off () =
    Obs.Runtime.stop ();
    Obs.Events.set_enabled false;
    Obs.Flightrec.set_enabled false;
    Obs.Trace.set_enabled false;
    Obs.set_enabled false
  in
  plane_off ();
  let run_once () =
    List.iter
      (fun q ->
        ignore (Service.stgq service ~initiator q : Query.stg_solution option))
      queries
  in
  run_once () (* warm-up: contexts built and cached *);
  let time_rounds () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 3 do
      run_once ()
    done;
    Unix.gettimeofday () -. t0
  in
  let measure () =
    let off = time_rounds () in
    plane_on ();
    let on = time_rounds () in
    plane_off ();
    if off <= 0. then 1. else on /. off
  in
  let gate = 1.05 in
  let rec settle attempts best =
    let best = Float.min best (measure ()) in
    if best <= gate || attempts <= 1 then best else settle (attempts - 1) best
  in
  let overhead = settle 5 infinity in
  (* Retention: plane on with the JSONL sink, every record fsynced. *)
  plane_on ();
  let events_dir = Filename.temp_dir "stgq_bench_events" "" in
  Obs.Events.configure ~dir:events_dir ();
  Obs.Flightrec.reset ();
  let degrade_policy =
    {
      Resilience.default_policy with
      node_limit = Some 1;
      max_retries = 0;
    }
  in
  let n_degraded = ref 0 in
  for _ = 1 to 2 do
    List.iter
      (fun q ->
        let r = Service.stgq_r ~policy:degrade_policy service ~initiator q in
        let c = Resilience.classify r in
        if c.Resilience.c_degraded || c.Resilience.c_unavailable then
          incr n_degraded)
      queries
  done;
  let baseline = Obs.snapshot () in
  let tail = String.concat "" (Obs.Events.tail 256) in
  let hits =
    List.fold_left
      (fun acc (e : Obs.Flightrec.summary) ->
        if not e.Obs.Flightrec.s_pinned then acc
        else
          let status, _, _ =
            Obs.Exposition.respond ~baseline
              ("/trace/" ^ string_of_int e.Obs.Flightrec.s_trace_id)
          in
          let logged =
            contains_substring tail
              (Printf.sprintf "\"trace_id\": %d" e.Obs.Flightrec.s_trace_id)
          in
          if status = 200 && logged then acc + 1 else acc)
      0 (Obs.Flightrec.entries ())
  in
  let hitrate =
    if !n_degraded = 0 then 0.
    else float_of_int hits /. float_of_int !n_degraded
  in
  let fsync_p99 =
    Obs.Histogram.quantile (Obs.histogram "obs.events.fsync_ns") 0.99
  in
  Obs.Events.stop ();
  plane_off ();
  (overhead, hitrate, !n_degraded, fsync_p99)

let obs_smoke_json ~baseline ~instrumented ~flightrec_overhead
    ~flightrec_hitrate ~flightrec_degraded ~events_fsync_p99 snapshot_json =
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"workload\": %S," instrumented.workload;
      Printf.sprintf "  \"obs_overhead_cached_seq\": %.3f,"
        (instrumented.cached_seq_ns /. baseline.cached_seq_ns);
      Printf.sprintf "  \"obs_overhead_cached_pool\": %.3f,"
        (instrumented.cached_pool_ns /. baseline.cached_pool_ns);
      Printf.sprintf "  \"obs_overhead_flightrec\": %.3f," flightrec_overhead;
      Printf.sprintf "  \"obs_overhead_flightrec_gate\": 1.05,";
      Printf.sprintf "  \"flightrec_retention_hitrate\": %.3f,"
        flightrec_hitrate;
      Printf.sprintf "  \"flightrec_degraded_queries\": %d," flightrec_degraded;
      Printf.sprintf "  \"events_fsync_p99_ns\": %.0f," events_fsync_p99;
      Printf.sprintf "  \"snapshot\": %s" snapshot_json;
      "}";
      "";
    ]

(* --- resilience smoke ---------------------------------------------- *)

let percentile samples q =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.
  else a.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

let resilience_required_keys =
  [
    "\"deadline_hit_rate_expired\"";
    "\"deadline_hit_rate_generous\"";
    "\"budget_overhead_p99\"";
    "\"budget_overhead_gate\"";
    "\"heuristic_quality_ratio\"";
    "\"heuristic_answers\"";
  ]

(* The resilience baseline: deadline-hit behaviour, the cooperative
   budget-check overhead (p99, gated at +3% against the unbudgeted
   path), and how far the heuristic fallback rung sits from the exact
   optimum on the replay workload. *)
let resilience_smoke ~out =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days:2 ~n:600 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
  let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
  let queries =
    [
      { Query.p = 3; s = 2; k = 1; m = 4 };
      { Query.p = 4; s = 2; k = 2; m = 4 };
      { Query.p = 3; s = 2; k = 1; m = 6 };
      { Query.p = 4; s = 2; k = 2; m = 6 };
    ]
  in
  let n_queries = List.length queries in
  (* Deadline-hit rate: every query against an already-expired deadline
     and against a generous one.  Queries that finish before the first
     256-node checkpoint legitimately complete even when expired. *)
  let hit_rate budget_of =
    let hits =
      List.fold_left
        (fun acc q ->
          let r = Stgselect.solve_report ~budget:(budget_of ()) ti q in
          if Anytime.complete r.outcome then acc else acc + 1)
        0 queries
    in
    float_of_int hits /. float_of_int n_queries
  in
  let rate_expired = hit_rate (fun () -> Budget.within_ms 0) in
  let rate_generous = hit_rate (fun () -> Budget.within_ms 600_000) in
  (* Budget-check overhead: p99 per-query latency of the generously
     budgeted path over the unbudgeted path.  A noisy machine can fake a
     regression, so on a miss both sides re-measure (up to five
     attempts) and the smallest observed ratio decides. *)
  let measure budget_of =
    let samples = ref [] in
    for _ = 1 to 15 do
      List.iter
        (fun q ->
          let t0 = Unix.gettimeofday () in
          ignore (Stgselect.solve_report ?budget:(budget_of ()) ti q : Stgselect.report);
          samples := (Unix.gettimeofday () -. t0) :: !samples)
        queries
    done;
    percentile !samples 0.99
  in
  let attempt () =
    let bare = measure (fun () -> None) in
    let budgeted =
      measure (fun () -> Some (Budget.create ~node_limit:max_int ()))
    in
    if bare <= 0. then 1. else budgeted /. bare
  in
  let overhead_gate = 1.03 in
  let rec settle attempts best =
    let best = Float.min best (attempt ()) in
    if best <= overhead_gate || attempts <= 1 then best
    else settle (attempts - 1) best
  in
  let overhead = settle 5 infinity in
  (* Heuristic-fallback quality: beam answer distance over the exact
     optimum, averaged over the queries both rungs answer. *)
  let ratios =
    List.filter_map
      (fun q ->
        match (Stgselect.solve ti q, Heuristics.beam_stgq ti q) with
        | Some exact, Some h ->
            Some (h.Query.st_total_distance /. exact.Query.st_total_distance)
        | _ -> None)
      queries
  in
  let quality =
    match ratios with
    | [] -> 1.
    | rs -> List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)
  in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"workload\": %S,"
          (Printf.sprintf "coauthor n=600 days=2 q=%d" initiator);
        Printf.sprintf "  \"queries\": %d," n_queries;
        Printf.sprintf "  \"deadline_hit_rate_expired\": %.3f," rate_expired;
        Printf.sprintf "  \"deadline_hit_rate_generous\": %.3f," rate_generous;
        Printf.sprintf "  \"budget_overhead_p99\": %.4f," overhead;
        Printf.sprintf "  \"budget_overhead_gate\": %.2f," overhead_gate;
        Printf.sprintf "  \"heuristic_quality_ratio\": %.4f," quality;
        Printf.sprintf "  \"heuristic_answers\": %d" (List.length ratios);
        "}";
        "";
      ]
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf
    "bench-smoke: resilience — deadline hits %.2f (expired) / %.2f (generous), \
     budget overhead p99 %.3fx, heuristic quality %.3fx -> %s\n"
    rate_expired rate_generous overhead quality out;
  let missing =
    List.filter (fun k -> not (contains_substring json k)) resilience_required_keys
  in
  if missing <> [] then begin
    Printf.printf "bench-smoke: FAILED — %s lacks required keys: %s\n" out
      (String.concat ", " missing);
    exit 1
  end;
  if rate_generous > rate_expired then begin
    print_endline
      "bench-smoke: FAILED — generous deadlines truncate more than expired ones";
    exit 1
  end;
  if overhead > overhead_gate then begin
    Printf.printf
      "bench-smoke: FAILED — budget checkpoints cost %.1f%% (gate %.0f%%)\n"
      ((overhead -. 1.) *. 100.)
      ((overhead_gate -. 1.) *. 100.);
    exit 1
  end

(* --- trace smoke --------------------------------------------------- *)

let trace_required_keys =
  [
    "\"trace_disabled_ratio\"";
    "\"trace_enabled_ratio\"";
    "\"trace_overhead_gate\"";
    "\"spans_recorded\"";
    "\"spans_dropped\"";
    "\"waterfall_balanced\"";
    "\"waterfall_examined\"";
  ]

(* The tracing baseline: span recording must cost <= +5% on the cached
   replay paths when enabled, and the disabled path (one atomic load
   per potential span) must be indistinguishable from run-to-run noise.
   Noise can fake a regression, so on a miss both sides re-measure (up
   to five attempts) and the smallest observed ratio decides.  The
   waterfall of a traced solve must balance exactly — every examined
   candidate accounted for by a kill, a deferral or an include. *)
let trace_smoke ~out ~domains =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days:2 ~n:600 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
  let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
  let queries =
    [
      { Query.p = 3; s = 2; k = 1; m = 4 };
      { Query.p = 4; s = 2; k = 2; m = 4 };
      { Query.p = 3; s = 2; k = 1; m = 6 };
      { Query.p = 4; s = 2; k = 2; m = 6 };
    ]
  in
  let spans_recorded = ref 0 and spans_dropped = ref 0 in
  let disabled, enabled =
    Engine.Pool.with_pool ?size:domains @@ fun pool ->
    let cache = Engine.Cache.create ~schedules:ti.Query.schedules graph in
    let ctx_for q = Engine.Cache.context cache ~initiator ~s:q.Query.s in
    let run_once () =
      List.iter
        (fun q ->
          ignore (Stgselect.solve ~ctx:(ctx_for q) ti q : Query.stg_solution option);
          ignore
            (Parallel.solve ~pool ~ctx:(ctx_for q) ti q
              : Query.stg_solution option))
        queries
    in
    run_once () (* warm-up: code, allocator, pool domains, contexts *);
    let time_rounds () =
      let t0 = Unix.gettimeofday () in
      for _ = 1 to 3 do
        run_once ()
      done;
      Unix.gettimeofday () -. t0
    in
    let ratio a b = if a <= 0. then 1. else b /. a in
    let measure_noise () =
      let a = time_rounds () in
      let b = time_rounds () in
      ratio a b
    in
    let measure_enabled () =
      let off = time_rounds () in
      Obs.Trace.set_enabled true;
      Obs.Trace.reset ();
      let on = time_rounds () in
      spans_recorded := Obs.Trace.total_recorded ();
      spans_dropped := Obs.Trace.dropped ();
      Obs.Trace.set_enabled false;
      ratio off on
    in
    let gate = 1.05 in
    let rec settle f attempts best =
      let best = Float.min best (f ()) in
      if best <= gate || attempts <= 1 then best else settle f (attempts - 1) best
    in
    (settle measure_noise 5 infinity, settle measure_enabled 5 infinity)
  in
  let overhead_gate = 1.05 in
  (* One traced solve for the accounting identity. *)
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  List.iter
    (fun q -> ignore (Stgselect.solve_report ti q : Stgselect.report))
    queries;
  let balanced, examined =
    match Obs.Trace.last () with
    | Some tree ->
        let w = Obs.Trace.waterfall tree in
        (Obs.Trace.waterfall_balanced w, w.Obs.Trace.w_examined)
    | None -> (false, 0)
  in
  Obs.Trace.set_enabled false;
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"workload\": %S,"
          (Printf.sprintf "coauthor n=600 days=2 q=%d" initiator);
        Printf.sprintf "  \"trace_disabled_ratio\": %.4f," disabled;
        Printf.sprintf "  \"trace_enabled_ratio\": %.4f," enabled;
        Printf.sprintf "  \"trace_overhead_gate\": %.2f," overhead_gate;
        Printf.sprintf "  \"spans_recorded\": %d," !spans_recorded;
        Printf.sprintf "  \"spans_dropped\": %d," !spans_dropped;
        Printf.sprintf "  \"waterfall_balanced\": %b," balanced;
        Printf.sprintf "  \"waterfall_examined\": %d" examined;
        "}";
        "";
      ]
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf
    "bench-smoke: trace — disabled noise %.3fx, enabled %.3fx (gate %.2fx), \
     %d spans (%d dropped), waterfall %s over %d examined -> %s\n"
    disabled enabled overhead_gate !spans_recorded !spans_dropped
    (if balanced then "balanced" else "UNBALANCED")
    examined out;
  let missing =
    List.filter (fun k -> not (contains_substring json k)) trace_required_keys
  in
  if missing <> [] then begin
    Printf.printf "bench-smoke: FAILED — %s lacks required keys: %s\n" out
      (String.concat ", " missing);
    exit 1
  end;
  if enabled > overhead_gate then begin
    Printf.printf "bench-smoke: FAILED — tracing costs %.1f%% enabled (gate %.0f%%)\n"
      ((enabled -. 1.) *. 100.)
      ((overhead_gate -. 1.) *. 100.);
    exit 1
  end;
  if disabled > overhead_gate then begin
    Printf.printf
      "bench-smoke: FAILED — disabled tracing path exceeds noise (%.1f%%)\n"
      ((disabled -. 1.) *. 100.);
    exit 1
  end;
  if (not balanced) || examined = 0 then begin
    Printf.printf
      "bench-smoke: FAILED — pruning waterfall does not account for every \
       candidate (balanced=%b, examined=%d)\n"
      balanced examined;
    exit 1
  end

(* --- server smoke --------------------------------------------------- *)

let server_required_keys =
  [
    "\"sustained_qps\"";
    "\"requests_total\"";
    "\"latency_p50_ns\"";
    "\"latency_p99_ns\"";
    "\"wire_overhead\"";
    "\"server_mismatches\"";
    "\"shed_rate_saturation\"";
  ]

(* Expected wire image of a direct resilient call — the bit-identical
   replay gate below compares wire answers against this. *)
let wire_image_of_stg = function
  | Ok (a : Query.stg_solution Resilience.answer) ->
      Proto.Stg_answer
        {
          value = a.value;
          rung = a.rung;
          gap = a.gap;
          retries = a.retries;
          reason = a.reason;
          certified = true;
          (* the comparison server runs with tracing off, so wire
             answers carry no trace id *)
          trace_id = 0;
        }
  | Error (Resilience.Degraded { reason; retries }) ->
      Proto.Failed (Proto.Degraded { reason; retries })
  | Error (Resilience.Unavailable { error; retries }) ->
      Proto.Failed
        (Proto.Unavailable { message = Printexc.to_string error; retries })

(* The wire-server baseline (docs/PROTOCOL.md): answers over a loopback
   socket must be bit-identical to direct [Service] calls; a sustained
   multi-client load records qps and client-observed p50/p99 latency;
   the wire_overhead ratio prices the framing + socket round-trip
   against the in-process call on the same cached contexts (an
   enabled-path overhead: both sides resolve and solve identically);
   and an admission limit of 1 under eight hammering clients must shed
   with typed Overloaded responses.  Shedding depends on real
   concurrency, so a zero shed rate re-runs the saturation round (up to
   five attempts) before failing. *)
let server_smoke ~out ~domains =
  let ti = Workload.Scenario.coauthor ~seed:11 ~days:2 ~n:600 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:10 graph in
  let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
  let queries =
    [
      { Query.p = 3; s = 2; k = 1; m = 4 };
      { Query.p = 4; s = 2; k = 2; m = 4 };
      { Query.p = 3; s = 2; k = 1; m = 6 };
      { Query.p = 4; s = 2; k = 2; m = 6 };
    ]
  in
  Engine.Pool.with_pool ?size:domains @@ fun pool ->
  let service = Service.create ~pool ti in
  let loopback = Server.Tcp ("127.0.0.1", 0) in
  let solve_direct q =
    ignore
      (Service.stgq_r service ~initiator q
        : (Query.stg_solution Resilience.answer, Resilience.error) result)
  in
  (* -- replay gate + wire overhead: one connection, sequential -------- *)
  let mismatches = ref 0 in
  let direct_ns, wire_ns =
    let server = Server.create service in
    let handle = Server.start server loopback in
    Fun.protect ~finally:(fun () -> Server.stop handle) @@ fun () ->
    let c = Server.Client.connect (Server.bound_addr handle) in
    Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
    let ask q =
      match
        Server.Client.request c (Proto.Stgq { initiator; q; policy = None })
      with
      | Ok resp -> resp
      | Error e -> failwith (Proto.string_of_decode_error e)
    in
    (* warm-up outside the clocks: contexts, allocator, both code paths *)
    List.iter (fun q -> ignore (ask q : Proto.response)) queries;
    List.iter solve_direct queries;
    List.iter
      (fun q ->
        let expected = wire_image_of_stg (Service.stgq_r service ~initiator q) in
        if not (Proto.equal_response expected (ask q)) then incr mismatches)
      queries;
    let rounds = 5 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to rounds do
      List.iter solve_direct queries
    done;
    let direct_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to rounds do
      List.iter (fun q -> ignore (ask q : Proto.response)) queries
    done;
    let wire_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    (direct_ns, wire_ns)
  in
  let wire_overhead = if direct_ns <= 0. then 1. else wire_ns /. direct_ns in
  (* -- sustained load: four client threads, one connection each ------- *)
  let client_threads = 4 and rounds_per_client = 8 in
  let sustained_qps, p50, p99, requests_total =
    let server = Server.create service in
    let handle = Server.start server loopback in
    Fun.protect ~finally:(fun () -> Server.stop handle) @@ fun () ->
    let addr = Server.bound_addr handle in
    let lat = Array.make client_threads [] in
    let t0 = Unix.gettimeofday () in
    let worker i () =
      let c = Server.Client.connect addr in
      Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
      for _ = 1 to rounds_per_client do
        List.iter
          (fun q ->
            let r0 = Unix.gettimeofday () in
            match
              Server.Client.request c
                (Proto.Stgq { initiator; q; policy = None })
            with
            | Ok _ -> lat.(i) <- ((Unix.gettimeofday () -. r0) *. 1e9) :: lat.(i)
            | Error e -> failwith (Proto.string_of_decode_error e))
          queries
      done
    in
    let threads =
      List.init client_threads (fun i -> Thread.create (worker i) ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    let samples = List.concat (Array.to_list lat) in
    let total = List.length samples in
    ( (if wall <= 0. then 0. else float_of_int total /. wall),
      percentile samples 0.5,
      percentile samples 0.99,
      total )
  in
  (* -- saturation: admission limit 1, eight hammering clients --------- *)
  let shed_rate_saturation =
    let config = { Server.default_config with Server.admission_limit = 1 } in
    let sat_q = { Query.p = 3; s = 2; k = 1; m = 4 } in
    let attempt () =
      let server = Server.create ~config service in
      let handle = Server.start server loopback in
      Fun.protect ~finally:(fun () -> Server.stop handle) @@ fun () ->
      let addr = Server.bound_addr handle in
      let n_clients = 8 and per_client = 12 in
      let sheds = Atomic.make 0 in
      let worker () =
        let c = Server.Client.connect addr in
        Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
        for _ = 1 to per_client do
          match
            Server.Client.request c
              (Proto.Stgq { initiator; q = sat_q; policy = None })
          with
          | Ok (Proto.Failed (Proto.Overloaded _)) -> Atomic.incr sheds
          | Ok _ -> ()
          | Error e -> failwith (Proto.string_of_decode_error e)
        done
      in
      let threads = List.init n_clients (fun _ -> Thread.create worker ()) in
      List.iter Thread.join threads;
      float_of_int (Atomic.get sheds)
      /. float_of_int (n_clients * per_client)
    in
    let rec settle attempts =
      let rate = attempt () in
      if rate > 0. || attempts <= 1 then rate else settle (attempts - 1)
    in
    settle 5
  in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"workload\": %S,"
          (Printf.sprintf "coauthor n=600 days=2 q=%d" initiator);
        Printf.sprintf "  \"client_threads\": %d," client_threads;
        Printf.sprintf "  \"requests_total\": %d," requests_total;
        Printf.sprintf "  \"sustained_qps\": %.1f," sustained_qps;
        Printf.sprintf "  \"latency_p50_ns\": %.0f," p50;
        Printf.sprintf "  \"latency_p99_ns\": %.0f," p99;
        Printf.sprintf "  \"wire_overhead\": %.3f," wire_overhead;
        Printf.sprintf "  \"server_mismatches\": %d," !mismatches;
        Printf.sprintf "  \"shed_rate_saturation\": %.3f" shed_rate_saturation;
        "}";
        "";
      ]
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf
    "bench-smoke: server — %.0f q/s over %d requests (%d clients), p50 %s \
     p99 %s, wire overhead %.2fx, %d mismatches, shed rate %.2f at \
     saturation -> %s\n"
    sustained_qps requests_total client_threads (Report.ns p50) (Report.ns p99)
    wire_overhead !mismatches shed_rate_saturation out;
  let missing =
    List.filter (fun k -> not (contains_substring json k)) server_required_keys
  in
  if missing <> [] then begin
    Printf.printf "bench-smoke: FAILED — %s lacks required keys: %s\n" out
      (String.concat ", " missing);
    exit 1
  end;
  if !mismatches > 0 then begin
    print_endline
      "bench-smoke: FAILED — wire answers diverge from direct Service calls";
    exit 1
  end;
  if shed_rate_saturation <= 0. then begin
    print_endline
      "bench-smoke: FAILED — admission limit 1 never shed under 8 clients";
    exit 1
  end

(* --- store scale smoke --------------------------------------------- *)

let scale_required_keys =
  [
    "\"users\"";
    "\"edges\"";
    "\"snapshot_bytes\"";
    "\"bytes_per_user\"";
    "\"snapshot_save_ms\"";
    "\"snapshot_load_ms\"";
    "\"wal_records\"";
    "\"wal_replay_per_s\"";
    "\"checkpoint_pause_p99_ms\"";
    "\"recovery_ok\"";
  ]

(* The durability baseline at serving scale (n = 100k users): snapshot
   density (bytes/user, gated), save/load wall time, WAL replay rate,
   checkpoint pause p99, and a full recovery differential — reopening
   the store after the mutation stream must land bit-identically on the
   in-memory fold of the same deltas. *)
let scale_smoke ~out =
  let n = 100_000 and days = 2 in
  let ti = Workload.Scenario.coauthor ~seed:11 ~days ~n () in
  let graph = ti.Query.social.Query.graph in
  let state0 = Store.state_of_instance graph ti.Query.schedules in
  let horizon = Timetable.Availability.horizon state0.Store.schedules.(0) in
  let ok_or_die = function
    | Ok v -> v
    | Error e ->
        Printf.printf "bench-smoke: FAILED — store: %s\n" (Store.string_of_error e);
        exit 1
  in
  let apply_or_die st d =
    match Store.apply_delta st d with
    | Ok st' -> st'
    | Error msg ->
        Printf.printf "bench-smoke: FAILED — bad scale delta: %s\n" msg;
        exit 1
  in
  let dir = "scale-store.tmp" in
  let rm_store () =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  rm_store ();
  Fun.protect ~finally:rm_store @@ fun () ->
  Unix.mkdir dir 0o755;
  (* snapshot density and save/load wall time *)
  let path0 = Store.snapshot_path ~dir ~gen:0 in
  let t0 = Unix.gettimeofday () in
  let snapshot_bytes = Store.save_snapshot path0 state0 in
  let save_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let t0 = Unix.gettimeofday () in
  let loaded = ok_or_die (Store.load_snapshot path0) in
  let load_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  if not (Store.state_equal state0 loaded) then begin
    print_endline "bench-smoke: FAILED — scale snapshot round-trip diverged";
    exit 1
  end;
  let bytes_per_user = float_of_int snapshot_bytes /. float_of_int n in
  (* a deterministic mutation stream: mostly calendar flips, an edge
     rewrite every 100th record (edge deltas rebuild the CSR, so their
     cost dominates — keep the mix serving-shaped) *)
  let records = 2_000 in
  let delta_of i =
    let v = i * 7919 mod n in
    if i mod 100 = 99 then
      Store.Edge_add
        { u = v; v = (v + 1 + (i mod 97)) mod n; w = 1.0 +. float_of_int (i mod 5) }
    else Store.Avail_flip { vertex = v; slot = i mod horizon }
  in
  let store, _ = ok_or_die (Store.open_dir ~init:(fun () -> state0) dir) in
  for i = 0 to records - 1 do
    Store.append ~sync:false store (delta_of i)
  done;
  let t0 = Unix.gettimeofday () in
  let replayed = ok_or_die (Store.replay_wal (Store.wal_path ~dir ~gen:0)) in
  let replay_s = Unix.gettimeofday () -. t0 in
  let replay_per_s =
    if replay_s <= 0. then float_of_int records
    else float_of_int replayed.Store.records /. replay_s
  in
  Store.close store;
  (* recovery differential: reopen and compare against the in-memory fold *)
  let expected = ref state0 in
  for i = 0 to records - 1 do
    expected := apply_or_die !expected (delta_of i)
  done;
  let store2, recovery =
    ok_or_die
      (Store.open_dir
         ~init:(fun () -> failwith "scale store lost its snapshot") dir)
  in
  let recovery_ok =
    recovery.Store.r_replayed = records
    && recovery.Store.r_torn = None
    && Store.state_equal !expected recovery.Store.r_state
  in
  (* checkpoint pauses: publish the full image repeatedly *)
  let pauses = ref [] in
  for i = 0 to 9 do
    Store.append ~sync:false store2 (delta_of i);
    let t0 = Unix.gettimeofday () in
    Store.checkpoint store2 recovery.Store.r_state;
    pauses := ((Unix.gettimeofday () -. t0) *. 1e9) :: !pauses
  done;
  Store.close store2;
  let checkpoint_p99_ms = percentile !pauses 0.99 /. 1e6 in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"workload\": %S,"
          (Printf.sprintf "coauthor n=%d days=%d" n days);
        Printf.sprintf "  \"users\": %d," n;
        Printf.sprintf "  \"edges\": %d," (Socgraph.Graph.n_edges graph);
        Printf.sprintf "  \"snapshot_bytes\": %d," snapshot_bytes;
        Printf.sprintf "  \"bytes_per_user\": %.1f," bytes_per_user;
        Printf.sprintf "  \"snapshot_save_ms\": %.1f," save_ms;
        Printf.sprintf "  \"snapshot_load_ms\": %.1f," load_ms;
        Printf.sprintf "  \"wal_records\": %d," records;
        Printf.sprintf "  \"wal_replay_per_s\": %.0f," replay_per_s;
        Printf.sprintf "  \"checkpoint_pause_p99_ms\": %.1f," checkpoint_p99_ms;
        Printf.sprintf "  \"recovery_ok\": %b" recovery_ok;
        "}";
        "";
      ]
  in
  let oc = open_out out in
  output_string oc json;
  close_out oc;
  Printf.printf
    "bench-smoke: store — %d users, %.0f B/user snapshot (save %.0f ms, load \
     %.0f ms), WAL replay %.0f rec/s over %d records, checkpoint p99 %.0f ms, \
     recovery %s -> %s\n"
    n bytes_per_user save_ms load_ms replay_per_s records checkpoint_p99_ms
    (if recovery_ok then "ok" else "DIVERGED")
    out;
  let missing =
    List.filter (fun k -> not (contains_substring json k)) scale_required_keys
  in
  if missing <> [] then begin
    Printf.printf "bench-smoke: FAILED — %s lacks required keys: %s\n" out
      (String.concat ", " missing);
    exit 1
  end;
  if not recovery_ok then begin
    print_endline
      "bench-smoke: FAILED — recovered scale store diverges from the \
       in-memory fold of the same deltas";
    exit 1
  end;
  if bytes_per_user > 1024. then begin
    Printf.printf
      "bench-smoke: FAILED — snapshot costs %.1f bytes/user (gate 1024)\n"
      bytes_per_user;
    exit 1
  end;
  if replay_per_s < 200. then begin
    Printf.printf
      "bench-smoke: FAILED — WAL replay at %.0f records/s (gate 200)\n"
      replay_per_s;
    exit 1
  end;
  if checkpoint_p99_ms > 30_000. then begin
    Printf.printf
      "bench-smoke: FAILED — checkpoint pause p99 %.0f ms (gate 30000)\n"
      checkpoint_p99_ms;
    exit 1
  end

(* The CI baseline: tiny sizes, two JSON artefacts — the engine replay
   and batched-replay comparisons (instrumentation off) and the same
   workloads rerun with instrumentation on, whose metrics snapshot
   lands in [obs_out].  The engine artefact is written after the
   instrumented rerun so it can also record the pool's queue-depth
   high-water mark and respawn count from the live registry. *)
let smoke ~json_out ~obs_out ~resilience_out ~trace_out ~server_out ~scale_out
    ~domains =
  let r = engine_replay ~n:600 ~days:2 ~rounds:3 ~domains () in
  (* The >= 2x batched-throughput gate settles like the other gated
     ratios: noise can fake a miss, so on one the batch replays again
     (up to five attempts) and the best observed ratio decides.  A
     mismatch is not noise and fails immediately. *)
  let batch_gate = 2.0 in
  let run_batch () = batch_replay ~n:1500 ~days:1 ~rounds:3 ~initiators:6 ~domains () in
  let rec settle_batch attempts best =
    if best.batch_mismatches > 0 || batch_speedup best >= batch_gate
       || attempts <= 1
    then best
    else
      let again = run_batch () in
      let best =
        if again.batch_mismatches > 0 then again
        else if batch_speedup again > batch_speedup best then again
        else best
      in
      settle_batch (attempts - 1) best
  in
  let b = settle_batch 5 (run_batch ()) in
  Obs.set_enabled true;
  Obs.reset ();
  let r_obs = engine_replay ~n:600 ~days:2 ~rounds:3 ~domains () in
  let b_obs = run_batch () in
  (* The flight-recorder phase runs before the snapshot so the
     retention, event and runtime-sampler totals (and the trace spans
     it records) appear in the embedded snapshot. *)
  let flightrec_overhead, flightrec_hitrate, flightrec_degraded, events_fsync_p99
      =
    flightrec_phase ()
  in
  Obs.set_enabled false;
  let snap = Obs.snapshot () in
  let pool_queue_depth_hwm =
    Obs.Gauge.high_water (Obs.gauge "engine.pool.queue_depth_hwm")
  in
  let pool_respawns = Obs.Counter.value (Obs.counter "engine.pool.respawns") in
  let engine_json = engine_json r b ~pool_queue_depth_hwm ~pool_respawns in
  let oc = open_out json_out in
  output_string oc engine_json;
  close_out oc;
  let obs_json =
    obs_smoke_json ~baseline:r ~instrumented:r_obs ~flightrec_overhead
      ~flightrec_hitrate ~flightrec_degraded ~events_fsync_p99 (Obs.json snap)
  in
  let oc = open_out obs_out in
  output_string oc obs_json;
  close_out oc;
  Printf.printf
    "bench-smoke: %s — %d x %d queries, %d domains, speedup %.2fx (seq %.2fx), \
     %d mismatches -> %s\n"
    r.workload r.rp_rounds r.queries_per_round r.rp_domains (replay_speedup r)
    (r.rebuild_seq_ns /. r.cached_seq_ns)
    r.mismatches json_out;
  Printf.printf
    "bench-smoke: batch — %d x %d queries in %d groups, %d domains, throughput \
     %.2fx (gate %.1fx), %d mismatches, pool hwm %d, respawns %d\n"
    b.bo_rounds b.bo_queries b.bo_groups b.bo_domains (batch_speedup b)
    batch_gate b.batch_mismatches pool_queue_depth_hwm pool_respawns;
  Printf.printf "bench-smoke: obs overhead %.3fx (seq) %.3fx (pool) -> %s\n"
    (r_obs.cached_seq_ns /. r.cached_seq_ns)
    (r_obs.cached_pool_ns /. r.cached_pool_ns)
    obs_out;
  Printf.printf
    "bench-smoke: flightrec — plane overhead %.3fx (gate 1.05x), retention \
     %.2f over %d degraded, events fsync p99 %.0f ns\n"
    flightrec_overhead flightrec_hitrate flightrec_degraded events_fsync_p99;
  let missing =
    List.filter (fun k -> not (contains_substring engine_json k)) engine_required_keys
  in
  if missing <> [] then begin
    Printf.printf "bench-smoke: FAILED — %s lacks required keys: %s\n" json_out
      (String.concat ", " missing);
    exit 1
  end;
  let missing =
    List.filter (fun k -> not (contains_substring obs_json k)) obs_required_keys
  in
  if missing <> [] then begin
    Printf.printf "bench-smoke: FAILED — %s lacks required keys: %s\n" obs_out
      (String.concat ", " missing);
    exit 1
  end;
  (match List.assoc_opt "obs.trace.spans" snap.Obs.counters with
  | Some n when n > 0 -> ()
  | _ ->
      print_endline
        "bench-smoke: FAILED — obs.trace.spans is zero in the embedded \
         snapshot; the instrumented replay did not record trace spans";
      exit 1);
  if flightrec_overhead > 1.05 then begin
    Printf.printf
      "bench-smoke: FAILED — flight-recorder plane costs %.1f%% enabled \
       (gate 5%%)\n"
      ((flightrec_overhead -. 1.) *. 100.);
    exit 1
  end;
  if flightrec_degraded = 0 || flightrec_hitrate <> 1.0 then begin
    Printf.printf
      "bench-smoke: FAILED — flight recorder retained %.2f of %d degraded \
       queries as fetchable traces with logged events (contract: 1.00)\n"
      flightrec_hitrate flightrec_degraded;
    exit 1
  end;
  if r.mismatches > 0 || r_obs.mismatches > 0 then begin
    print_endline "bench-smoke: FAILED — engine answers diverge from seed paths";
    exit 1
  end;
  if b.batch_mismatches > 0 || b_obs.batch_mismatches > 0 then begin
    print_endline
      "bench-smoke: FAILED — batched answers diverge from the one-at-a-time path";
    exit 1
  end;
  if batch_speedup b < batch_gate then begin
    Printf.printf
      "bench-smoke: FAILED — batched replay only %.2fx over one-at-a-time \
       (gate %.1fx)\n"
      (batch_speedup b) batch_gate;
    exit 1
  end;
  resilience_smoke ~out:resilience_out;
  trace_smoke ~out:trace_out ~domains;
  server_smoke ~out:server_out ~domains;
  scale_smoke ~out:scale_out

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let experiments =
  [
    ("fig1a", fig1a);
    ("fig1b", fig1b);
    ("fig1c", fig1c);
    ("fig1d", fig1d);
    ("fig1e", fig1e);
    ("fig1f", fig1f);
    ("fig1gh", fig1gh);
    ("ablation_sg", ablation_sg);
    ("ablation_stg", ablation_stg);
    ("ext_heuristics", ext_heuristics);
    ("ext_topk", ext_topk);
    ("ext_planner", ext_planner);
    ("ext_community", ext_community);
    ("ext_scale", ext_scale);
    ("ext_astar", ext_astar);
    ("ext_engine", ext_engine);
    ("ext_batch", ext_batch);
  ]

let keyed_arg key args =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  List.find_map
    (fun a ->
      if String.length a > plen && String.sub a 0 plen = prefix then
        Some (String.sub a plen (String.length a - plen))
      else None)
    args

let () =
  let args = Array.to_list Sys.argv in
  let fast = List.mem "--fast" args in
  let skip_bechamel = List.mem "--skip-bechamel" args in
  let only = Option.map (String.split_on_char ',') (keyed_arg "--only" args) in
  let domains =
    match keyed_arg "--domains" args with
    | Some raw -> (
        match int_of_string_opt raw with
        | Some d when d >= 1 -> Some d
        | Some _ | None ->
            Printf.eprintf "ignoring --domains=%s: expected a positive integer\n" raw;
            None)
    | None -> (
        match Sys.getenv_opt "STGQ_DOMAINS" with
        | Some raw -> int_of_string_opt (String.trim raw)
        | None -> None)
  in
  if List.mem "--smoke" args then begin
    let json_out =
      Option.value (keyed_arg "--json-out" args) ~default:"BENCH_engine.json"
    in
    let obs_out =
      Option.value (keyed_arg "--obs-out" args) ~default:"BENCH_obs.json"
    in
    let resilience_out =
      Option.value
        (keyed_arg "--resilience-out" args)
        ~default:"BENCH_resilience.json"
    in
    let trace_out =
      Option.value (keyed_arg "--trace-out" args) ~default:"BENCH_trace.json"
    in
    let server_out =
      Option.value (keyed_arg "--server-out" args) ~default:"BENCH_server.json"
    in
    let scale_out =
      Option.value (keyed_arg "--scale-out" args) ~default:"BENCH_scale.json"
    in
    smoke ~json_out ~obs_out ~resilience_out ~trace_out ~server_out ~scale_out
      ~domains;
    exit 0
  end;
  let st =
    if fast then { fast_settings with domains } else { full_settings with domains }
  in
  let wanted name = match only with None -> true | Some l -> List.mem name l in
  Printf.printf
    "STGQ experiment harness (%s mode; enumeration cap %d groups, IP cap %d nodes)\n"
    (if fast then "fast" else "full")
    st.group_cap st.ip_node_cap;
  flush stdout;
  List.iter (fun (name, f) -> if wanted name then f st ()) experiments;
  if
    (not skip_bechamel)
    && match only with None -> true | Some l -> List.mem "bechamel" l
  then bechamel_suite ();
  print_newline ();
  print_endline "done."

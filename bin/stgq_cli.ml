(* stgq — command-line front end.

   Subcommands:
     generate   synthesise a dataset and write graph/schedule files
     sgq        answer a Social Group Query
     stgq       answer a Social-Temporal Group Query
     arrange    compare STGArrange against the PCArrange imitation
     trace      answer one query under tracing; render tree + waterfall
     stats      instrumented workload; `stats serve` exposes /metrics
     snapshot   save/load/verify durable-store images (docs/PERSISTENCE.md)

   Datasets come either from files written by `generate`, from the
   built-in generators (--kind/--n/--seed/--days), or from a durable
   snapshot (--snapshot). *)

open Cmdliner
open Stgq_core

(* ------------------------------------------------------------------ *)
(* Dataset source.                                                     *)

type source = {
  kind : string;
  n : int;
  seed : int;
  days : int;
  graph_file : string option;
  sched_file : string option;
  snapshot : string option;
}

let source_term =
  let kind =
    Arg.(value & opt string "people194"
         & info [ "kind" ] ~docv:"KIND" ~doc:"Generator: people194 or coauthor.")
  in
  let n =
    Arg.(value & opt int 800
         & info [ "n" ] ~docv:"N" ~doc:"Network size for the coauthor generator.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let days =
    Arg.(value & opt int 7 & info [ "days" ] ~docv:"DAYS" ~doc:"Schedule length in days.")
  in
  let graph_file =
    Arg.(value & opt (some string) None
         & info [ "graph" ] ~docv:"FILE" ~doc:"Load the social graph from an edge list.")
  in
  let sched_file =
    Arg.(value & opt (some string) None
         & info [ "schedules" ] ~docv:"FILE" ~doc:"Load schedules from a schedule file.")
  in
  let snapshot =
    Arg.(value & opt (some string) None
         & info [ "snapshot" ] ~docv:"FILE"
             ~doc:"Load graph and schedules from a durable-store snapshot \
                   (docs/PERSISTENCE.md) — written by `stgq snapshot save` \
                   or by a serving checkpoint.  Overrides the generator \
                   and --graph/--schedules.")
  in
  let make kind n seed days graph_file sched_file snapshot =
    { kind; n; seed; days; graph_file; sched_file; snapshot }
  in
  Term.(const make $ kind $ n $ seed $ days $ graph_file $ sched_file $ snapshot)

let load_dataset src =
  match src.snapshot with
  | Some file -> (
      match Store.load_snapshot file with
      | Ok st -> (st.Store.graph, st.Store.schedules)
      | Error e -> Fmt.failwith "%s" (Store.string_of_error e))
  | None -> (
  match (src.graph_file, src.sched_file) with
  | Some gf, Some sf -> (Socgraph.Gio.load gf, Timetable.Sio.load sf)
  | Some gf, None ->
      let graph = Socgraph.Gio.load gf in
      let n = Socgraph.Graph.n_vertices graph in
      (graph, Array.init n (fun _ -> Timetable.Sched_gen.always_free ~days:src.days))
  | None, _ -> (
      match src.kind with
      | "people194" ->
          let ds = Workload.People194.generate ~seed:src.seed ~days:src.days () in
          (ds.Workload.People194.graph, ds.Workload.People194.schedules)
      | "coauthor" ->
          let ds =
            Workload.Coauthor.generate ~seed:src.seed ~days:src.days ~n:src.n ()
          in
          (ds.Workload.Coauthor.graph, ds.Workload.Coauthor.schedules)
      | other -> Fmt.failwith "unknown dataset kind %S (people194|coauthor)" other))

let initiator_term =
  Arg.(value & opt (some int) None
       & info [ "initiator"; "q" ] ~docv:"VERTEX"
           ~doc:"Initiator vertex (default: a well-connected one).")

let pick_initiator graph = function
  | Some q -> q
  | None -> Workload.Scenario.pick_initiator graph

let stats_term =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Enable instrumentation and print the metrics snapshot \
                 (see docs/OBSERVABILITY.md) after answering.")

(* [with_stats enabled run] brackets [run] with instrumentation and, when
   requested, prints the collected snapshot afterwards. *)
let with_stats stats run =
  if not stats then run ()
  else begin
    Obs.set_enabled true;
    Obs.reset ();
    run ();
    Fmt.pr "@.%s@." (Obs.table (Obs.snapshot ()))
  end

(* ------------------------------------------------------------------ *)
(* Tracing (sgq/stgq/trace): record spans and export them.             *)

let trace_out_term =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Record a query trace and write Chrome trace-event JSON \
                 to $(docv); load it at https://ui.perfetto.dev or \
                 chrome://tracing.")

let write_trace_file file =
  let spans = Obs.Trace.spans () in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Obs.Trace.chrome_json spans));
  Fmt.epr "wrote %d spans to %s@." (List.length spans) file

(* [with_trace out run] brackets [run] with span recording when an
   export file was requested. *)
let with_trace trace_out run =
  match trace_out with
  | None -> run ()
  | Some file ->
      Obs.Trace.set_enabled true;
      Obs.Trace.reset ();
      run ();
      write_trace_file file

(* ------------------------------------------------------------------ *)
(* Resilience flags (sgq/stgq): any of them routes the answer through
   the Resilience degradation ladder — see docs/ROBUSTNESS.md.          *)

let deadline_term =
  Arg.(value & opt (some float) None
       & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Answer through the resilience ladder with a wall-clock \
                 deadline of $(docv) milliseconds.")

let node_budget_term =
  Arg.(value & opt (some int) None
       & info [ "node-budget" ] ~docv:"N"
           ~doc:"Answer through the resilience ladder with a budget of \
                 $(docv) search-node expansions.")

let no_degrade_term =
  Arg.(value & flag
       & info [ "no-degrade" ]
           ~doc:"Disable the heuristic rung: when the budget expires with \
                 no incumbent, report Degraded instead of falling back to \
                 beam search.")

let policy_of deadline_ms node_limit no_degrade =
  if deadline_ms = None && node_limit = None && not no_degrade then None
  else
    Some
      {
        Resilience.default_policy with
        deadline_ms;
        node_limit;
        degrade = not no_degrade;
      }

(* Shared printer for ladder outcomes. *)
let print_resilient ~label ~pp_solution ~none_msg = function
  | Ok a -> (
      let qualifiers =
        String.concat ""
          [
            (match a.Resilience.gap with
            | Some g when g > 0. -> Printf.sprintf ", gap <= %g" g
            | _ -> "");
            (match a.Resilience.reason with
            | Some r -> ", budget " ^ Budget.reason_name r
            | None -> "");
            (if a.Resilience.retries > 0 then
               Printf.sprintf ", %d retries" a.Resilience.retries
             else "");
          ]
      in
      match a.Resilience.value with
      | Some sol ->
          Fmt.pr "%s: %a@.  [rung %s%s]@." label pp_solution sol
            (Resilience.rung_name a.Resilience.rung)
            qualifiers
      | None -> Fmt.pr "%s: %s.  [rung %s%s]@." label none_msg
            (Resilience.rung_name a.Resilience.rung) qualifiers)
  | Error e -> Fmt.pr "%s: %a@." label Resilience.pp_error e

(* ------------------------------------------------------------------ *)
(* generate.                                                           *)

let generate_cmd =
  let graph_out =
    Arg.(value & opt string "graph.txt"
         & info [ "graph-out" ] ~docv:"FILE" ~doc:"Edge-list output path.")
  in
  let sched_out =
    Arg.(value & opt string "schedules.txt"
         & info [ "sched-out" ] ~docv:"FILE" ~doc:"Schedule output path.")
  in
  let run src graph_out sched_out =
    let graph, schedules = load_dataset src in
    Socgraph.Gio.save graph graph_out;
    Timetable.Sio.save schedules sched_out;
    Fmt.pr "wrote %s (%d vertices, %d edges) and %s (%d schedules)@." graph_out
      (Socgraph.Graph.n_vertices graph) (Socgraph.Graph.n_edges graph) sched_out
      (Array.length schedules)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesise a dataset and write it to files.")
    Term.(const run $ source_term $ graph_out $ sched_out)

(* ------------------------------------------------------------------ *)
(* sgq.                                                                *)

let p_term = Arg.(value & opt int 4 & info [ "p" ] ~docv:"P" ~doc:"Group size.")
let s_term = Arg.(value & opt int 1 & info [ "s" ] ~docv:"S" ~doc:"Social radius.")
let k_term = Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Acquaintance bound.")
let m_term = Arg.(value & opt int 4 & info [ "m" ] ~docv:"M" ~doc:"Activity length in slots.")

let algo_term choices default =
  Arg.(value & opt (enum choices) default
       & info [ "algo" ] ~docv:"ALGO"
           ~doc:(Printf.sprintf "Algorithm: %s."
                   (String.concat ", " (List.map fst choices))))

type sg_algo = Sg_select | Sg_baseline | Sg_ip

let sgq_cmd =
  let run src initiator p s k algo deadline node_budget no_degrade stats
      trace_out =
    with_stats stats @@ fun () ->
    with_trace trace_out @@ fun () ->
    let graph, _ = load_dataset src in
    let instance = { Query.graph; initiator = pick_initiator graph initiator } in
    let query = { Query.p; s; k } in
    match policy_of deadline node_budget no_degrade with
    | Some policy ->
        let certify sol = Validate.certify_sg instance query sol in
        Resilience.run ~policy
          ~exact:(fun budget ->
            let r = Sgselect.solve_report ~budget instance query in
            Resilience.certify_outcome ~certify r.Sgselect.outcome)
          ~heuristic:(fun budget ->
            certify (Heuristics.beam_sgq ~budget instance query))
          ()
        |> print_resilient ~label:"SGSelect (resilient)"
             ~pp_solution:Query.pp_sg_solution ~none_msg:"no feasible group"
    | None ->
    let label, solution, detail =
      match algo with
      | Sg_select ->
          let r = Sgselect.solve_report instance query in
          ( "SGSelect",
            r.Sgselect.solution,
            Printf.sprintf "%d nodes, |V_F| = %d" r.Sgselect.stats.Search_core.nodes
              r.Sgselect.feasible_size )
      | Sg_baseline ->
          let r = Baseline.sgq_brute instance query in
          ( "Baseline",
            r.Baseline.solution,
            Printf.sprintf "%d candidate groups" r.Baseline.groups_examined )
      | Sg_ip ->
          let r = Ip_model.solve_sgq instance query in
          ( "IP (group form)",
            r.Ip_model.result,
            Printf.sprintf "%d B&B nodes" r.Ip_model.ilp_stats.Ilp.nodes_explored )
    in
    match solution with
    | Some sol ->
        Fmt.pr "%s: %a@.  [%s]@." label Query.pp_sg_solution sol detail;
        if not (Validate.is_valid_sg instance query sol) then
          Fmt.epr "WARNING: solution failed validation!@."
    | None -> Fmt.pr "%s: no feasible group.  [%s]@." label detail
  in
  let algo =
    algo_term [ ("sgselect", Sg_select); ("baseline", Sg_baseline); ("ip", Sg_ip) ]
      Sg_select
  in
  Cmd.v
    (Cmd.info "sgq" ~doc:"Answer a Social Group Query.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term $ algo
      $ deadline_term $ node_budget_term $ no_degrade_term $ stats_term
      $ trace_out_term)

(* ------------------------------------------------------------------ *)
(* stgq.                                                               *)

type stg_algo = St_select | St_baseline | St_parallel | St_ip

let domains_term =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"N"
           ~env:(Cmd.Env.info "STGQ_DOMAINS")
           ~doc:"Worker domains for --algo parallel (default: \
                 $(b,STGQ_DOMAINS) or the recommended domain count).")

let stgq_cmd =
  let run src initiator p s k m algo domains deadline node_budget no_degrade
      stats trace_out =
    with_stats stats @@ fun () ->
    with_trace trace_out @@ fun () ->
    let graph, schedules = load_dataset src in
    let ti =
      { Query.social = { Query.graph; initiator = pick_initiator graph initiator };
        schedules }
    in
    let query = { Query.p; s; k; m } in
    match policy_of deadline node_budget no_degrade with
    | Some policy ->
        let certify sol = Validate.certify_stg ti query sol in
        let exact budget =
          match algo with
          | St_parallel ->
              Engine.Pool.with_pool ?size:domains (fun pool ->
                  let r = Parallel.solve_report ~pool ~budget ti query in
                  Resilience.certify_outcome ~certify r.Parallel.outcome)
          | St_select | St_baseline | St_ip ->
              let r = Stgselect.solve_report ~budget ti query in
              Resilience.certify_outcome ~certify r.Stgselect.outcome
        in
        Resilience.run ~policy ~exact
          ~heuristic:(fun budget ->
            certify (Heuristics.beam_stgq ~budget ti query))
          ()
        |> print_resilient ~label:"STGSelect (resilient)"
             ~pp_solution:(Query.pp_stg_solution ~m) ~none_msg:"no feasible group/time"
    | None ->
    let label, solution, detail =
      match algo with
      | St_select ->
          let r = Stgselect.solve_report ti query in
          ( "STGSelect",
            r.Stgselect.solution,
            Printf.sprintf "%d nodes over %d pivots" r.Stgselect.stats.Search_core.nodes
              r.Stgselect.pivots_scanned )
      | St_baseline ->
          let r = Baseline.stgq_per_slot ti query in
          ( "Baseline (per slot)",
            r.Baseline.st_solution,
            Printf.sprintf "%d windows" r.Baseline.windows_scanned )
      | St_parallel ->
          let r =
            Engine.Pool.with_pool ?size:domains (fun pool ->
                Parallel.solve_report ~pool ti query)
          in
          ( "STGSelect (parallel)",
            r.Parallel.solution,
            Printf.sprintf "%d domains, %d nodes" r.Parallel.domains_used
              r.Parallel.total_nodes )
      | St_ip ->
          let r = Ip_model.solve_stgq ti query in
          ( "IP (group form)",
            r.Ip_model.result,
            Printf.sprintf "%d B&B nodes" r.Ip_model.ilp_stats.Ilp.nodes_explored )
    in
    match solution with
    | Some sol ->
        Fmt.pr "%s: %a@.  [%s]@." label (Query.pp_stg_solution ~m) sol detail;
        if not (Validate.is_valid_stg ti query sol) then
          Fmt.epr "WARNING: solution failed validation!@."
    | None -> Fmt.pr "%s: no feasible group/time.  [%s]@." label detail
  in
  let algo =
    algo_term
      [
        ("stgselect", St_select);
        ("baseline", St_baseline);
        ("parallel", St_parallel);
        ("ip", St_ip);
      ]
      St_select
  in
  Cmd.v
    (Cmd.info "stgq" ~doc:"Answer a Social-Temporal Group Query.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term $ m_term
      $ algo $ domains_term $ deadline_term $ node_budget_term $ no_degrade_term
      $ stats_term $ trace_out_term)

(* ------------------------------------------------------------------ *)
(* arrange.                                                            *)

let arrange_cmd =
  let run src initiator p s m =
    let graph, schedules = load_dataset src in
    let ti =
      { Query.social = { Query.graph; initiator = pick_initiator graph initiator };
        schedules }
    in
    match Stgarrange.versus_pcarrange ti ~p ~s ~m with
    | None -> Fmt.pr "PCArrange found no group; nothing to compare.@."
    | Some ({ Stgarrange.k_used; solution }, pc) ->
        Fmt.pr "PCArrange : distance %.2f, observed k = %d@." pc.Pcarrange.total_distance
          pc.Pcarrange.observed_k;
        Fmt.pr "STGArrange: distance %.2f at k = %d@." solution.Query.st_total_distance
          k_used
  in
  Cmd.v
    (Cmd.info "arrange" ~doc:"Compare STGArrange with the PCArrange imitation.")
    Term.(const run $ source_term $ initiator_term $ p_term $ s_term $ m_term)

(* ------------------------------------------------------------------ *)
(* explain.                                                            *)

let explain_cmd =
  let run src initiator p s k m =
    let graph, schedules = load_dataset src in
    let ti =
      { Query.social = { Query.graph; initiator = pick_initiator graph initiator };
        schedules }
    in
    let query = { Query.p; s; k; m } in
    match Stgselect.solve ti query with
    | None -> Fmt.pr "No feasible group/time to explain.@."
    | Some solution ->
        if not (Validate.is_valid_stg ti query solution) then
          Fmt.epr "WARNING: solution failed validation!@.";
        let ex = Explain.stg ti query solution in
        Fmt.pr "%a" (Explain.pp ?name:None) ex
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Solve an STGQ and explain the returned group.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term $ m_term)

(* ------------------------------------------------------------------ *)
(* topk.                                                               *)

let topk_cmd =
  let n_best =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"How many groups to list.")
  in
  let run src initiator p s k m n =
    let graph, schedules = load_dataset src in
    let ti =
      { Query.social = { Query.graph; initiator = pick_initiator graph initiator };
        schedules }
    in
    let entries = Topk.stgq ~n ti { Query.p; s; k; m } in
    if entries = [] then Fmt.pr "No feasible group/time.@."
    else
      List.iteri
        (fun i e ->
          Fmt.pr "#%d  distance %.2f  {%s}%s@." (i + 1) e.Topk.total_distance
            (String.concat ", " (List.map string_of_int e.Topk.attendees))
            (match e.Topk.start_slot with
            | Some start ->
                Printf.sprintf "  from %s" (Timetable.Slot.to_string start)
            | None -> ""))
        entries
  in
  Cmd.v
    (Cmd.info "topk" ~doc:"List the N best groups for an STGQ.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term $ m_term
      $ n_best)

(* ------------------------------------------------------------------ *)
(* auto.                                                               *)

let auto_cmd =
  let budget =
    Arg.(value & opt float 1e8
         & info [ "budget" ] ~docv:"GROUPS"
             ~doc:"Candidate-group budget above which the beam heuristic is used.")
  in
  let run src initiator p s k m budget =
    let graph, schedules = load_dataset src in
    let ti =
      { Query.social = { Query.graph; initiator = pick_initiator graph initiator };
        schedules }
    in
    let solution, plan = Auto.stgq ~budget ti { Query.p; s; k; m } in
    Fmt.pr "plan: %s (|V_F| = %d, log10 groups = %.1f)@."
      (match plan.Auto.choice with Auto.Exact -> "exact STGSelect" | Auto.Beam -> "beam heuristic")
      plan.Auto.feasible_size plan.Auto.log10_groups;
    match solution with
    | Some sol -> Fmt.pr "%a@." (Query.pp_stg_solution ~m) sol
    | None -> Fmt.pr "no feasible group/time.@."
  in
  Cmd.v
    (Cmd.info "auto" ~doc:"Answer an STGQ with adaptive exact/heuristic selection.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term $ m_term
      $ budget)

(* ------------------------------------------------------------------ *)
(* kplex: maximal cohesive subgroups around an initiator.              *)

let kplex_cmd =
  let min_size =
    Arg.(value & opt int 3
         & info [ "min-size" ] ~docv:"N" ~doc:"Smallest subgroup to report.")
  in
  let run src initiator s k min_size =
    let graph, _ = load_dataset src in
    let q = pick_initiator graph initiator in
    (* Restrict to the initiator's radius-s egocentric network; whole-graph
       enumeration is exponential and rarely what a user wants. *)
    let fg = Feasible.extract { Query.graph; initiator = q } ~s in
    let sub = fg.Feasible.sub in
    if Socgraph.Graph.n_vertices sub > 25 then
      Fmt.epr
        "note: egocentric network has %d vertices; enumeration may be slow.@."
        (Socgraph.Graph.n_vertices sub);
    let groups = Socgraph.Kplex.enumerate_maximal sub ~k ~min_size () in
    Fmt.pr "%d maximal subgroups (k=%d, min size %d) within %d edges of #%d:@."
      (List.length groups) k min_size s q;
    List.iter
      (fun group ->
        let originals = List.map (fun v -> fg.Feasible.of_sub.(v)) group in
        Fmt.pr "  {%s}@." (String.concat ", " (List.map string_of_int originals)))
      groups
  in
  Cmd.v
    (Cmd.info "kplex"
       ~doc:"Enumerate maximal acquaintance-bounded subgroups around an initiator.")
    Term.(const run $ source_term $ initiator_term $ s_term $ k_term $ min_size)

(* ------------------------------------------------------------------ *)
(* trace: answer one query under tracing and render the span tree.     *)

let trace_query ~trace_out run =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  run ();
  match Obs.Trace.last () with
  | None -> Fmt.epr "no trace recorded@."
  | Some tree ->
      Fmt.pr "%s@." (Obs.Trace.render tree);
      Fmt.pr "%s@." (Obs.Trace.render_waterfall (Obs.Trace.waterfall tree));
      Option.iter write_trace_file trace_out

let trace_sgq_cmd =
  let run src initiator p s k trace_out =
    let graph, schedules = load_dataset src in
    let initiator = pick_initiator graph initiator in
    let ti = { Query.social = { Query.graph; initiator }; schedules } in
    let service = Service.create ti in
    trace_query ~trace_out @@ fun () ->
    match Service.sgq service ~initiator { Query.p; s; k } with
    | Some sol -> Fmt.pr "SGSelect: %a@.@." Query.pp_sg_solution sol
    | None -> Fmt.pr "SGSelect: no feasible group.@.@."
  in
  Cmd.v
    (Cmd.info "sgq" ~doc:"Trace one Social Group Query.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term
      $ trace_out_term)

let trace_stgq_cmd =
  let run src initiator p s k m domains trace_out =
    let graph, schedules = load_dataset src in
    let initiator = pick_initiator graph initiator in
    let ti = { Query.social = { Query.graph; initiator }; schedules } in
    Engine.Pool.with_pool ?size:domains @@ fun pool ->
    let service = Service.create ~pool ti in
    trace_query ~trace_out @@ fun () ->
    match Service.stgq service ~initiator { Query.p; s; k; m } with
    | Some sol -> Fmt.pr "STGSelect: %a@.@." (Query.pp_stg_solution ~m) sol
    | None -> Fmt.pr "STGSelect: no feasible group/time.@.@."
  in
  Cmd.v
    (Cmd.info "stgq"
       ~doc:"Trace one Social-Temporal Group Query through the pooled \
             service: the rendered tree spans every worker domain.")
    Term.(
      const run $ source_term $ initiator_term $ p_term $ s_term $ k_term
      $ m_term $ domains_term $ trace_out_term)

(* Minimal HTTP/1.0 GET against the exposition endpoint — enough to
   pull one JSON body; the server closes after each response. *)
let http_get ~host ~port path =
  let inet = Unix.inet_addr_of_string host in
  let fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr (Unix.ADDR_INET (inet, port)))
      Unix.SOCK_STREAM 0
  in
  Fun.protect ~finally:(fun () ->
      match Unix.close fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (inet, port));
  let req =
    Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s:%d\r\n\r\n" path host port
  in
  let rec write_all off len =
    if len > 0 then begin
      let n = Unix.write_substring fd req off len in
      write_all (off + n) (len - n)
    end
  in
  write_all 0 (String.length req);
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
  in
  drain ();
  let raw = Buffer.contents buf in
  let header_end =
    let n = String.length raw in
    let rec find i =
      if i + 4 > n then None
      else if String.sub raw i 4 = "\r\n\r\n" then Some i
      else find (i + 1)
    in
    find 0
  in
  match header_end with
  | None -> Fmt.failwith "malformed HTTP response"
  | Some i ->
      let status =
        match String.index_opt raw '\r' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      (status, String.sub raw (i + 4) (String.length raw - i - 4))

let trace_fetch_cmd =
  let id =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"ID"
             ~doc:"Trace id, as printed by `stgq query ... --connect` or \
                   listed at /traces.")
  in
  let connect =
    Arg.(value & opt string "127.0.0.1:7412"
         & info [ "connect" ] ~docv:"HOST:PORT"
             ~doc:"The exposition endpoint — the server's --metrics-port, \
                   not its wire port.")
  in
  let run id connect =
    let host, port =
      match String.rindex_opt connect ':' with
      | None -> Fmt.failwith "--connect expects HOST:PORT, got %S" connect
      | Some i -> (
          let host = String.sub connect 0 i in
          let port =
            String.sub connect (i + 1) (String.length connect - i - 1)
          in
          match int_of_string_opt port with
          | Some port -> (host, port)
          | None -> Fmt.failwith "--connect: bad port %S" port)
    in
    let status, body = http_get ~host ~port (Printf.sprintf "/trace/%d" id) in
    Fmt.pr "%s@." body;
    if not (String.length status >= 12 && String.sub status 9 3 = "200") then
      exit 1
  in
  Cmd.v
    (Cmd.info "fetch"
       ~doc:"Fetch a retained trace tree from a running server's flight \
             recorder (GET /trace/ID on the --metrics-port endpoint); \
             exits non-zero when the trace was never retained or has been \
             evicted.")
    Term.(const run $ id $ connect)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:"Answer one query with span recording on and render the trace \
             tree and pruning waterfall, or fetch a retained trace from a \
             running server (see docs/OBSERVABILITY.md).")
    [ trace_sgq_cmd; trace_stgq_cmd; trace_fetch_cmd ]

(* ------------------------------------------------------------------ *)
(* serve: the binary wire-protocol query server (docs/PROTOCOL.md).    *)

let default_port = 7411

let serve_cmd =
  let bind_host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "bind" ] ~docv:"HOST" ~doc:"Numeric address to bind.")
  in
  let port =
    Arg.(value & opt int default_port
         & info [ "port" ] ~docv:"PORT" ~doc:"TCP port.")
  in
  let unix_socket =
    Arg.(value & opt (some string) None
         & info [ "unix-socket" ] ~docv:"PATH"
             ~doc:"Serve on a Unix-domain socket instead of TCP.")
  in
  let admission_limit =
    Arg.(value & opt int Server.default_config.Server.admission_limit
         & info [ "admission-limit" ] ~docv:"N"
             ~doc:"Shed work beyond $(docv) concurrently-executing \
                   requests with a typed Overloaded response.")
  in
  let max_connections =
    Arg.(value & opt (some int) None
         & info [ "max-connections" ] ~docv:"N"
             ~doc:"Exit after $(docv) connections (default: serve forever).")
  in
  let store_dir =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Open (or create) a durable store in $(docv): recover \
                   state from its newest snapshot generation + WAL, journal \
                   every mutation before acking, and checkpoint when the \
                   WAL outgrows --checkpoint-bytes (docs/PERSISTENCE.md). \
                   On a fresh directory the dataset flags seed generation \
                   0; afterwards the store is the source of truth.")
  in
  let checkpoint_bytes =
    Arg.(value & opt int (1 lsl 20)
         & info [ "checkpoint-bytes" ] ~docv:"BYTES"
             ~doc:"WAL size at which the server folds the log into a new \
                   snapshot generation (default 1 MiB).")
  in
  let metrics_port =
    Arg.(value & opt (some int) None
         & info [ "metrics-port" ] ~docv:"PORT"
             ~doc:"Also expose /metrics and /healthz (which reports the \
                   store-recovery status) over HTTP on $(docv).")
  in
  let flight_recorder =
    Arg.(value & flag
         & info [ "flight-recorder" ]
             ~doc:"Enable the flight recorder: metrics, tracing, \
                   tail-sampled trace retention (/traces, /trace/:id), the \
                   structured event log (/events/tail) and the runtime \
                   sampler (/metrics/history) — see docs/OBSERVABILITY.md.")
  in
  let events_dir =
    Arg.(value & opt (some string) None
         & info [ "events-dir" ] ~docv:"DIR"
             ~doc:"Persist the event log as JSONL under $(docv) with \
                   size-capped rotation (implies --flight-recorder).")
  in
  let run src domains deadline node_budget no_degrade admission_limit bind_host
      port unix_socket max_connections store_dir checkpoint_bytes metrics_port
      flight_recorder events_dir stats =
    with_stats stats @@ fun () ->
    let flight_recorder = flight_recorder || events_dir <> None in
    if flight_recorder then begin
      Obs.set_enabled true;
      Obs.Trace.set_enabled true;
      Obs.Flightrec.set_enabled true;
      Obs.Events.configure ?dir:events_dir ();
      Obs.Runtime.start ()
    end;
    Fun.protect ~finally:(fun () ->
        if flight_recorder then begin
          Obs.Runtime.stop ();
          Obs.Events.stop ()
        end)
    @@ fun () ->
    (* recover the durable state first: once a store exists, it — not
       the dataset flags — is the source of truth *)
    let graph, schedules, store, recovery =
      match store_dir with
      | None ->
          let graph, schedules = load_dataset src in
          (graph, schedules, None, None)
      | Some dir -> (
          let init () =
            let graph, schedules = load_dataset src in
            Store.state_of_instance graph schedules
          in
          match Store.open_dir ~checkpoint_bytes ~init dir with
          | Ok (t, r) ->
              Fmt.epr "store %s: %s@." dir (Store.recovery_status r);
              ( r.Store.r_state.Store.graph,
                r.Store.r_state.Store.schedules,
                Some t,
                Some r )
          | Error e -> Fmt.failwith "%s" (Store.string_of_error e))
    in
    Fun.protect ~finally:(fun () -> Option.iter Store.close store)
    @@ fun () ->
    let ti = { Query.social = { Query.graph; initiator = 0 }; schedules } in
    Engine.Pool.with_pool ?size:domains @@ fun pool ->
    let service = Service.create ~pool ti in
    let config =
      {
        Server.default_config with
        admission_limit;
        policy = policy_of deadline node_budget no_degrade;
        store;
      }
    in
    let server = Server.create ~config service in
    let addr, where =
      match unix_socket with
      | Some path -> (Server.Unix_path path, path)
      | None ->
          (Server.Tcp (bind_host, port), Printf.sprintf "%s:%d" bind_host port)
    in
    (match metrics_port with
    | None -> ()
    | Some mport ->
        let health =
          Option.map
            (fun r () -> "store: " ^ Store.recovery_status r)
            recovery
        in
        let baseline = Obs.snapshot () in
        ignore
          (Thread.create
             (fun () ->
               Obs.Exposition.serve ?health ~baseline
                 (Obs.Exposition.Tcp (bind_host, mport)))
             ()
            : Thread.t);
        Fmt.epr "exposing /metrics and /healthz on http://%s:%d@." bind_host
          mport);
    Fmt.epr "serving the STGQ wire protocol (v%d) on %s@." Proto.version where;
    Server.serve ?max_connections server addr
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve SGQ/STGQ over the binary wire protocol; every request \
             runs through the resilient service layer (docs/PROTOCOL.md), \
             and with --store every schedule edit is journalled to a \
             crash-safe WAL before it is acknowledged \
             (docs/PERSISTENCE.md).")
    Term.(
      const run $ source_term $ domains_term $ deadline_term $ node_budget_term
      $ no_degrade_term $ admission_limit $ bind_host $ port $ unix_socket
      $ max_connections $ store_dir $ checkpoint_bytes $ metrics_port
      $ flight_recorder $ events_dir $ stats_term)

(* ------------------------------------------------------------------ *)
(* query: remote queries against a running `stgq serve`.               *)

let connect_term =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:(Printf.sprintf
                   "Server endpoint, numeric host (default: 127.0.0.1:%d)."
                   default_port))

let client_socket_term =
  Arg.(value & opt (some string) None
       & info [ "unix-socket" ] ~docv:"PATH"
           ~doc:"Connect to a Unix-domain socket instead of TCP.")

let client_addr connect unix_socket =
  match (connect, unix_socket) with
  | Some _, Some _ ->
      Fmt.failwith "--connect and --unix-socket are mutually exclusive"
  | None, Some path -> Server.Unix_path path
  | None, None -> Server.Tcp ("127.0.0.1", default_port)
  | Some hp, None -> (
      match String.rindex_opt hp ':' with
      | None -> Fmt.failwith "--connect expects HOST:PORT, got %S" hp
      | Some i -> (
          let host = String.sub hp 0 i in
          let port = String.sub hp (i + 1) (String.length hp - i - 1) in
          match int_of_string_opt port with
          | Some port -> Server.Tcp (host, port)
          | None -> Fmt.failwith "--connect: bad port %S" port))

(* Connect, run the version handshake, hand the connection to [f]. *)
let with_connection addr f =
  let c = Server.Client.connect addr in
  Fun.protect ~finally:(fun () -> Server.Client.close c) @@ fun () ->
  match Server.Client.hello c ~client:"stgq-cli" with
  | Error msg -> Fmt.failwith "handshake failed: %s" msg
  | Ok _version -> f c

let wire_policy_of deadline_ms node_limit no_degrade =
  if deadline_ms = None && node_limit = None && not no_degrade then None
  else Some { Proto.deadline_ms; node_limit; degrade = not no_degrade }

let print_failed label = function
  | Proto.Overloaded { queue_depth; limit } ->
      Fmt.pr "%s: overloaded (%d in flight, limit %d); retry later@." label
        queue_depth limit
  | Proto.Degraded { reason; retries } ->
      Fmt.pr "%s: degraded (budget %s%s)@." label (Budget.reason_name reason)
        (if retries > 0 then Printf.sprintf ", %d retries" retries else "")
  | Proto.Unavailable { message; retries } ->
      Fmt.pr "%s: unavailable after %d retries: %s@." label retries message
  | Proto.Bad_request { message } ->
      Fmt.pr "%s: bad request: %s@." label message
  | Proto.Unsupported_version { server_version } ->
      Fmt.pr "%s: server speaks protocol v%d, this build speaks v%d@." label
        server_version Proto.version

(* Trace id 0 means the server predates tracing (wire v1) or answered
   with the flight recorder off. *)
let print_trace_id trace_id =
  if trace_id <> 0 then
    Fmt.pr "trace id: %d (fetch with `stgq trace fetch %d --connect ...`)@."
      trace_id trace_id

let query_request addr req ~on_answer ~label =
  with_connection addr @@ fun c ->
  match Server.Client.request c req with
  | Error e -> Fmt.failwith "wire error: %s" (Proto.string_of_decode_error e)
  | Ok (Proto.Failed err) -> print_failed label err
  | Ok resp -> on_answer resp

let query_sgq_cmd =
  let run connect unix_socket initiator p s k deadline node_budget no_degrade =
    let label = "SGSelect (wire)" in
    query_request (client_addr connect unix_socket)
      (Proto.Sgq
         {
           initiator = Option.value initiator ~default:0;
           q = { Query.p; s; k };
           policy = wire_policy_of deadline node_budget no_degrade;
         })
      ~label
      ~on_answer:(function
        | Proto.Sg_answer
            { value; rung; gap; retries; reason; certified = _; trace_id } ->
            print_resilient ~label ~pp_solution:Query.pp_sg_solution
              ~none_msg:"no feasible group"
              (Ok { Resilience.value; rung; gap; retries; reason });
            print_trace_id trace_id
        | resp -> Fmt.failwith "unexpected response: %a" Proto.pp_response resp)
  in
  Cmd.v
    (Cmd.info "sgq" ~doc:"Answer a Social Group Query over the wire.")
    Term.(
      const run $ connect_term $ client_socket_term $ initiator_term $ p_term
      $ s_term $ k_term $ deadline_term $ node_budget_term $ no_degrade_term)

let query_stgq_cmd =
  let run connect unix_socket initiator p s k m deadline node_budget no_degrade =
    let label = "STGSelect (wire)" in
    query_request (client_addr connect unix_socket)
      (Proto.Stgq
         {
           initiator = Option.value initiator ~default:0;
           q = { Query.p; s; k; m };
           policy = wire_policy_of deadline node_budget no_degrade;
         })
      ~label
      ~on_answer:(function
        | Proto.Stg_answer
            { value; rung; gap; retries; reason; certified = _; trace_id } ->
            print_resilient ~label ~pp_solution:(Query.pp_stg_solution ~m)
              ~none_msg:"no feasible group/time"
              (Ok { Resilience.value; rung; gap; retries; reason });
            print_trace_id trace_id
        | resp -> Fmt.failwith "unexpected response: %a" Proto.pp_response resp)
  in
  Cmd.v
    (Cmd.info "stgq" ~doc:"Answer a Social-Temporal Group Query over the wire.")
    Term.(
      const run $ connect_term $ client_socket_term $ initiator_term $ p_term
      $ s_term $ k_term $ m_term $ deadline_term $ node_budget_term
      $ no_degrade_term)

let query_ping_cmd =
  let msg =
    Arg.(value & opt string "ping"
         & info [ "message" ] ~docv:"TEXT" ~doc:"Payload to echo.")
  in
  let run connect unix_socket msg =
    query_request (client_addr connect unix_socket) (Proto.Ping msg)
      ~label:"ping"
      ~on_answer:(function
        | Proto.Pong echoed when String.equal echoed msg ->
            Fmt.pr "pong (%d bytes echoed)@." (String.length echoed)
        | resp -> Fmt.failwith "unexpected response: %a" Proto.pp_response resp)
  in
  Cmd.v
    (Cmd.info "ping" ~doc:"Round-trip a Ping through a running server.")
    Term.(const run $ connect_term $ client_socket_term $ msg)

let query_cmd =
  Cmd.group
    (Cmd.info "query"
       ~doc:"Query a running `stgq serve` over the binary wire protocol \
             (--connect HOST:PORT or --unix-socket PATH).")
    [ query_sgq_cmd; query_stgq_cmd; query_ping_cmd ]

(* ------------------------------------------------------------------ *)
(* stats: run an instrumented serving workload and dump the metrics;   *)
(* stats serve: expose them over HTTP.                                 *)

let rounds_term =
  Arg.(value & opt int 3
       & info [ "rounds" ] ~docv:"N"
           ~doc:"Rounds over the same initiators (later rounds hit the \
                 context cache).")

let initiators_term =
  Arg.(value & opt int 4
       & info [ "initiators" ] ~docv:"N" ~doc:"Distinct initiators to query.")

(* The example workload behind `stats` and `stats serve`: [rounds] x
   [initiators] x {sgq, stgq} through a pooled service. *)
let run_workload src p s k m rounds initiators domains =
  let graph, schedules = load_dataset src in
  let ti = { Query.social = { Query.graph; initiator = 0 }; schedules } in
  let queries = ref 0 in
  (Engine.Pool.with_pool ?size:domains @@ fun pool ->
   let service = Service.create ~pool ti in
   for _round = 1 to rounds do
     for rank = 0 to initiators - 1 do
       let initiator = Workload.Scenario.pick_initiator ~rank graph in
       (match Service.sgq service ~initiator { Query.p; s; k } with
       | Some _ | None -> incr queries);
       match Service.stgq service ~initiator { Query.p; s; k; m } with
       | Some _ | None -> incr queries
     done
   done);
  !queries

let stats_default_term =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the snapshot as JSON instead of tables.")
  in
  let run src p s k m rounds initiators domains json =
    Obs.set_enabled true;
    Obs.reset ();
    let queries = run_workload src p s k m rounds initiators domains in
    let snap = Obs.snapshot () in
    if json then Fmt.pr "%s@." (Obs.json snap)
    else begin
      Fmt.pr "%d queries (%d rounds x %d initiators x {sgq, stgq})@.@." queries
        rounds initiators;
      Fmt.pr "%s@." (Obs.table snap)
    end
  in
  Term.(
    const run $ source_term $ p_term $ s_term $ k_term $ m_term $ rounds_term
    $ initiators_term $ domains_term $ json)

let stats_serve_cmd =
  let bind_host =
    Arg.(value & opt string "127.0.0.1"
         & info [ "bind" ] ~docv:"HOST" ~doc:"Numeric address to bind.")
  in
  let port =
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port.")
  in
  let unix_socket =
    Arg.(value & opt (some string) None
         & info [ "unix-socket" ] ~docv:"PATH"
             ~doc:"Serve on a Unix-domain socket instead of TCP.")
  in
  let max_requests =
    Arg.(value & opt (some int) None
         & info [ "max-requests" ] ~docv:"N"
             ~doc:"Exit after $(docv) requests (default: serve forever).")
  in
  let run src p s k m rounds initiators domains bind_host port unix_socket
      max_requests =
    Obs.set_enabled true;
    Obs.reset ();
    Obs.Trace.set_enabled true;
    (* Baseline before the workload, so /metrics/delta shows what this
       process did since startup. *)
    let baseline = Obs.snapshot () in
    let queries = run_workload src p s k m rounds initiators domains in
    let addr, where =
      match unix_socket with
      | Some path -> (Obs.Exposition.Unix_path path, path)
      | None ->
          (Obs.Exposition.Tcp (bind_host, port),
           Printf.sprintf "http://%s:%d" bind_host port)
    in
    Fmt.epr "%d queries served; exposing /metrics, /metrics/delta and \
             /trace/last on %s@." queries where;
    Obs.Exposition.serve ~baseline ?max_requests addr
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the instrumented workload, then expose Prometheus metrics \
             and the last trace over HTTP.")
    Term.(
      const run $ source_term $ p_term $ s_term $ k_term $ m_term $ rounds_term
      $ initiators_term $ domains_term $ bind_host $ port $ unix_socket
      $ max_requests)

let stats_cmd =
  Cmd.group ~default:stats_default_term
    (Cmd.info "stats"
       ~doc:"Run an instrumented example workload through the service layer \
             and print the metrics snapshot (or serve it: stats serve).")
    [ stats_serve_cmd ]

(* ------------------------------------------------------------------ *)
(* snapshot: durable-store images (docs/PERSISTENCE.md).               *)

let snapshot_pos_file =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"FILE" ~doc:"Snapshot file.")

let snapshot_save_cmd =
  let out =
    Arg.(value & opt string "snapshot.stgq"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run src out =
    let graph, schedules = load_dataset src in
    let state = Store.state_of_instance graph schedules in
    let bytes = Store.save_snapshot out state in
    Fmt.pr "wrote %s: %d bytes — %d vertices, %d edges, horizon %d@." out bytes
      (Socgraph.Graph.n_vertices graph)
      (Socgraph.Graph.n_edges graph)
      (if Array.length schedules = 0 then 0
       else Timetable.Availability.horizon schedules.(0))
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Encode a dataset as one CRC-framed snapshot image, written \
             via temp file + fsync + atomic rename.")
    Term.(const run $ source_term $ out)

let snapshot_verify_cmd =
  let run file =
    match Store.verify_snapshot file with
    | Ok info ->
        Fmt.pr "%s: ok — %d bytes, %d vertices, %d edges, horizon %d@." file
          info.Store.si_bytes info.Store.si_n info.Store.si_m
          info.Store.si_horizon
    | Error e ->
        Fmt.epr "%s@." (Store.string_of_error e);
        exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Check a snapshot's framing, CRCs and structural invariants \
             without building the state; exit 1 on corruption.")
    Term.(const run $ snapshot_pos_file)

let snapshot_load_cmd =
  let run file =
    match Store.load_snapshot file with
    | Ok st ->
        let n = Socgraph.Graph.n_vertices st.Store.graph in
        let free =
          Array.fold_left
            (fun acc a ->
              let h = Timetable.Availability.horizon a in
              let f = ref 0 in
              for slot = 0 to h - 1 do
                if Timetable.Availability.available a slot then incr f
              done;
              acc + !f)
            0 st.Store.schedules
        in
        Fmt.pr "%s: %d vertices, %d edges, horizon %d, %d free slots@." file n
          (Socgraph.Graph.n_edges st.Store.graph)
          (if n = 0 then 0
           else Timetable.Availability.horizon st.Store.schedules.(0))
          free
    | Error e ->
        Fmt.epr "%s@." (Store.string_of_error e);
        exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Decode a snapshot into memory and print a summary; exit 1 on \
             corruption.")
    Term.(const run $ snapshot_pos_file)

let snapshot_cmd =
  Cmd.group
    (Cmd.info "snapshot"
       ~doc:"Save, load and verify durable-store snapshot images \
             (docs/PERSISTENCE.md).  Any query command accepts one as its \
             dataset via --snapshot.")
    [ snapshot_save_cmd; snapshot_load_cmd; snapshot_verify_cmd ]

let () =
  let info =
    Cmd.info "stgq" ~version:"1.0.0"
      ~doc:"Social-Temporal Group Queries with acquaintance constraints (VLDB'11)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            sgq_cmd;
            stgq_cmd;
            arrange_cmd;
            explain_cmd;
            topk_cmd;
            auto_cmd;
            kplex_cmd;
            trace_cmd;
            serve_cmd;
            query_cmd;
            stats_cmd;
            snapshot_cmd;
          ]))

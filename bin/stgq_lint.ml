(* stgq_lint — static-analysis gate for the STGQ codebase.

   Usage: stgq_lint [--typed] [--cmt-root DIR]
                    [--format=human|json|sarif] [--no-certify]
                    [--allow-state MODULE] [--allow-domain MODULE]
                    [--bench-out FILE] [--list-rules] [PATH ...]

   Default mode lints every .ml under the given paths (default:
   lib bin) with the untyped rules in Lint.Rules plus the Lint.Certify
   solution-certificate audit.  [--typed] instead runs the typed
   interprocedural analyses (domain-safety, checkpoint-coverage) over
   the .cmt artefacts beneath --cmt-root, restricted to findings in
   the given paths.  Exit status: 0 clean, 1 findings, 2 usage error. *)

let usage =
  "stgq_lint [--typed] [--cmt-root DIR] [--format=human|json|sarif] \
   [--no-certify] [--allow-state MODULE] [--allow-domain MODULE] \
   [--bench-out FILE] [PATH ...]"

let bench_budget_s = 10.0

let write_bench ~path ~mode ~elapsed ~findings =
  let oc = open_out path in
  Printf.fprintf oc
    {|{"bench": "lint", "mode": "%s", "wall_s": %.3f, "budget_s": %.1f, "findings": %d, "within_budget": %b}
|}
    mode elapsed bench_budget_s findings
    (elapsed <= bench_budget_s);
  close_out oc

let () =
  let format = ref "human" in
  let typed = ref false in
  let cmt_root = ref "" in
  let certify = ref true in
  let allowed_state = ref [] in
  let allow_domain = ref [] in
  let bench_out = ref "" in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "human"; "json"; "sarif" ], fun f -> format := f),
        " report format (default human)" );
      ( "--typed",
        Arg.Set typed,
        " run the typed interprocedural analyses over .cmt artefacts" );
      ( "--cmt-root",
        Arg.Set_string cmt_root,
        "DIR root to scan for .cmt files (default: _build/default if \
         present, else .)" );
      ("--no-certify", Arg.Clear certify, " skip the solution-certificate audit");
      ( "--allow-state",
        Arg.String (fun m -> allowed_state := m :: !allowed_state),
        "MODULE exempt MODULE from the toplevel-state rule" );
      ( "--allow-domain",
        Arg.String (fun m -> allow_domain := m :: !allow_domain),
        "MODULE exempt MODULE's module-level state from domain-safety" );
      ( "--bench-out",
        Arg.Set_string bench_out,
        "FILE write a wall-clock benchmark record to FILE" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
    ]
  in
  (match Arg.parse spec (fun p -> paths := p :: !paths) usage with
  | () -> ()
  | exception Arg.Bad msg ->
      prerr_string msg;
      exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.rule) ->
        Printf.printf "%-19s %-7s %s\n" r.id
          (Lint.Diag.severity_to_string r.severity)
          r.summary)
      (Lint.Rules.all ());
    Printf.printf "%-19s %-7s %s\n" "missing-mli" "warning"
      "lib/ module without a .mli interface";
    Printf.printf "%-19s %-7s %s\n" "uncertified-solver" "error"
      "solver answer with no Validate check reachable in the unit";
    Printf.printf "%-19s %-7s %s\n" "unknown-suppression" "warning"
      "suppression directive naming no known rule";
    Printf.printf "%-19s %-7s %s\n" "domain-safety" "error"
      "[typed] non-atomic mutable state crossing a domain boundary";
    Printf.printf "%-19s %-7s %s\n" "checkpoint-coverage" "error"
      "[typed] recursive solve loop that never polls Budget.check";
    Printf.printf "%-19s %-7s %s\n" "cmt-error" "warning"
      "[typed] unreadable .cmt artefact, unit skipped";
    exit 0
  end;
  let paths = if !paths = [] then [ "lib"; "bin" ] else List.rev !paths in
  let t0 = Unix.gettimeofday () in
  let findings =
    if !typed then begin
      let cmt_root =
        match !cmt_root with
        | "" -> if Sys.file_exists "_build/default" then "_build/default" else "."
        | r -> r
      in
      let options =
        {
          Lint_typed.Typed_check.default_options with
          paths;
          allow_domain = List.rev !allow_domain;
        }
      in
      Lint_typed.Typed_check.run ~options ~cmt_root ()
    end
    else begin
      List.iter
        (fun p ->
          if not (Sys.file_exists p) then begin
            Printf.eprintf "stgq_lint: no such path %S\n" p;
            exit 2
          end)
        paths;
      let options =
        {
          Lint.Engine.certify = !certify;
          allowed_state_modules = !allowed_state;
        }
      in
      Lint.Engine.lint_paths ~options paths
    end
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  if !bench_out <> "" then
    write_bench ~path:!bench_out
      ~mode:(if !typed then "typed" else "untyped")
      ~elapsed ~findings:(List.length findings);
  (match !format with
  | "json" -> print_endline (Lint.Diag.report_json findings)
  | "sarif" -> print_endline (Lint.Diag.report_sarif findings)
  | _ -> print_endline (Lint.Diag.report_human findings));
  if !bench_out <> "" && elapsed > bench_budget_s then begin
    Printf.eprintf "stgq_lint: wall %.1fs exceeds %.1fs budget\n" elapsed
      bench_budget_s;
    exit 1
  end;
  exit (if findings = [] then 0 else 1)

(* stgq_lint — static-analysis gate for the STGQ codebase.

   Usage: stgq_lint [--format=human|json] [--no-certify]
                    [--allow-state MODULE] [--list-rules] [PATH ...]

   Lints every .ml under the given paths (default: lib bin) with the
   rules in Lint.Rules plus the Lint.Certify solution-certificate
   audit.  Exit status: 0 clean, 1 findings, 2 usage error. *)

let usage = "stgq_lint [--format=human|json] [--no-certify] [--allow-state MODULE] [PATH ...]"

let () =
  let format = ref "human" in
  let certify = ref true in
  let allowed_state = ref [] in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ( "--format",
        Arg.Symbol ([ "human"; "json" ], fun f -> format := f),
        " report format (default human)" );
      ("--no-certify", Arg.Clear certify, " skip the solution-certificate audit");
      ( "--allow-state",
        Arg.String (fun m -> allowed_state := m :: !allowed_state),
        "MODULE exempt MODULE from the toplevel-state rule" );
      ("--list-rules", Arg.Set list_rules, " print the rule registry and exit");
    ]
  in
  (match Arg.parse spec (fun p -> paths := p :: !paths) usage with
  | () -> ()
  | exception Arg.Bad msg ->
      prerr_string msg;
      exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Lint.Rules.rule) ->
        Printf.printf "%-18s %-7s %s\n" r.id
          (Lint.Diag.severity_to_string r.severity)
          r.summary)
      (Lint.Rules.all ());
    Printf.printf "%-18s %-7s %s\n" "missing-mli" "warning"
      "lib/ module without a .mli interface";
    Printf.printf "%-18s %-7s %s\n" "uncertified-solver" "error"
      "solver answer with no Validate check reachable in the unit";
    exit 0
  end;
  let paths = if !paths = [] then [ "lib"; "bin" ] else List.rev !paths in
  List.iter
    (fun p ->
      if not (Sys.file_exists p) then begin
        Printf.eprintf "stgq_lint: no such path %S\n" p;
        exit 2
      end)
    paths;
  let options =
    {
      Lint.Engine.certify = !certify;
      allowed_state_modules = !allowed_state;
    }
  in
  let findings = Lint.Engine.lint_paths ~options paths in
  (match !format with
  | "json" -> print_endline (Lint.Diag.report_json findings)
  | _ -> print_endline (Lint.Diag.report_human findings));
  exit (if findings = [] then 0 else 1)

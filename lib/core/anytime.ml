type 'a outcome =
  | Optimal of 'a option
  | Feasible_best of { best : 'a; gap : float; reason : Budget.reason }
  | Exhausted of Budget.reason

let solution = function
  | Optimal s -> s
  | Feasible_best { best; _ } -> Some best
  | Exhausted _ -> None

let complete = function
  | Optimal _ -> true
  | Feasible_best _ | Exhausted _ -> false

let reason = function
  | Optimal _ -> None
  | Feasible_best { reason; _ } | Exhausted reason -> Some reason

let gap = function
  | Optimal _ -> Some 0.
  | Feasible_best { gap; _ } -> Some gap
  | Exhausted _ -> None

let map f = function
  | Optimal s -> Optimal (Option.map f s)
  | Feasible_best { best; gap; reason } -> Feasible_best { best = f best; gap; reason }
  | Exhausted reason -> Exhausted reason

(* [make ~completion ~gap_of found] assembles an outcome from a solver's
   completion status and incumbent; [gap_of] is only called on a
   truncated run that still holds a feasible answer. *)
let make ~completion ~gap_of found =
  match (completion, found) with
  | None, _ -> Optimal found
  | Some reason, None -> Exhausted reason
  | Some reason, Some best -> Feasible_best { best; gap = gap_of best; reason }

let pp pp_a ppf = function
  | Optimal None -> Format.pp_print_string ppf "optimal: infeasible"
  | Optimal (Some a) -> Format.fprintf ppf "optimal: %a" pp_a a
  | Feasible_best { best; gap; reason } ->
      Format.fprintf ppf "feasible (gap <= %g, stopped: %a): %a" gap
        Budget.pp_reason reason pp_a best
  | Exhausted reason ->
      Format.fprintf ppf "exhausted (%a): no answer" Budget.pp_reason reason

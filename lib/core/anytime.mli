(** Typed results for budgeted (anytime) solves.

    A budgeted solver never raises on exhaustion: it reports how far it
    got.  [Optimal] is the exact answer ([None] = proven infeasible).
    [Feasible_best] is the incumbent at the moment the budget tripped,
    with an optimality {e gap bound}: the answer's distance exceeds the
    true optimum by at most [gap] (derived from the best outstanding
    admissible lower bound over the abandoned search regions — coarse
    but sound; see docs/ROBUSTNESS.md).  [Exhausted] means the budget
    tripped before any feasible answer was found — which does {e not}
    imply infeasibility.

    {!Validate} certifies the {e feasibility} of a [Feasible_best]
    answer exactly as it does an optimal one; optimality is only claimed
    by [Optimal]. *)

type 'a outcome =
  | Optimal of 'a option  (** exact; [None] = proven infeasible *)
  | Feasible_best of { best : 'a; gap : float; reason : Budget.reason }
      (** best incumbent when the budget tripped; true optimum is within
          [gap] below [best]'s distance *)
  | Exhausted of Budget.reason
      (** budget tripped with no incumbent (feasibility unknown) *)

(** The carried answer, if any. *)
val solution : 'a outcome -> 'a option

(** [true] only for [Optimal] — the search ran to completion. *)
val complete : 'a outcome -> bool

(** The trip reason of a truncated outcome. *)
val reason : 'a outcome -> Budget.reason option

(** [Some 0.] for [Optimal], the gap bound for [Feasible_best], [None]
    for [Exhausted]. *)
val gap : 'a outcome -> float option

val map : ('a -> 'b) -> 'a outcome -> 'b outcome

(** [make ~completion ~gap_of found] — [completion] is the solver's trip
    reason (if any), [found] its incumbent; [gap_of] computes the gap
    bound and is only called for a truncated run with an incumbent. *)
val make :
  completion:Budget.reason option -> gap_of:('a -> float) -> 'a option -> 'a outcome

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a outcome -> unit

type choice = Exact | Beam

type plan = {
  choice : choice;
  feasible_size : int;
  log10_groups : float;
}

(* log10 C(n, r) without overflow. *)
let log10_choose n r =
  if r < 0 || r > n then neg_infinity
  else begin
    let r = min r (n - r) in
    let acc = ref 0. in
    for i = 1 to r do
      acc := !acc +. log10 (float_of_int (n - r + i)) -. log10 (float_of_int i)
    done;
    !acc
  end

let make_plan ~budget fg (p : int) =
  let f = Feasible.size fg in
  let lg = log10_choose (f - 1) (p - 1) in
  {
    choice = (if lg <= log10 budget then Exact else Beam);
    feasible_size = f;
    log10_groups = lg;
  }

let plan_sgq ?(budget = 1e8) instance (query : Query.sgq) =
  Query.check_sgq query;
  let ctx = Feasible.context_of_instance instance ~s:query.s in
  make_plan ~budget ctx.Engine.Context.fg query.p

let sgq ?(budget = 1e8) ?beam_width instance (query : Query.sgq) =
  Query.check_sgq query;
  (* One context serves the planning estimate and the chosen solver. *)
  let ctx = Feasible.context_of_instance instance ~s:query.s in
  let plan = make_plan ~budget ctx.Engine.Context.fg query.p in
  let solution =
    match plan.choice with
    | Exact -> Sgselect.solve ~ctx instance query
    | Beam -> Heuristics.beam_sgq ?width:beam_width ~ctx instance query
  in
  (* Exact or heuristic, the answer leaves with a validated certificate. *)
  (Validate.certify_sg instance query solution, plan)

let stgq ?(budget = 1e8) ?beam_width (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  let ctx = Feasible.context_of_temporal ti ~s:query.s in
  let plan = make_plan ~budget ctx.Engine.Context.fg query.p in
  let solution =
    match plan.choice with
    | Exact -> Stgselect.solve ~ctx ti query
    | Beam -> Heuristics.beam_stgq ?width:beam_width ~ctx ti query
  in
  (Validate.certify_stg ti query solution, plan)

type choice = Exact | Beam

type plan = {
  choice : choice;
  feasible_size : int;
  log10_groups : float;
}

(* log10 C(n, r) without overflow. *)
let log10_choose n r =
  if r < 0 || r > n then neg_infinity
  else begin
    let r = min r (n - r) in
    let acc = ref 0. in
    for i = 1 to r do
      acc := !acc +. log10 (float_of_int (n - r + i)) -. log10 (float_of_int i)
    done;
    !acc
  end

let make_plan ~budget fg (p : int) =
  let f = Feasible.size fg in
  let lg = log10_choose (f - 1) (p - 1) in
  {
    choice = (if lg <= log10 budget then Exact else Beam);
    feasible_size = f;
    log10_groups = lg;
  }

let plan_sgq ?(budget = 1e8) instance (query : Query.sgq) =
  Query.check_sgq query;
  let ctx = Feasible.context_of_instance instance ~s:query.s in
  make_plan ~budget ctx.Engine.Context.fg query.p

let sgq ?(budget = 1e8) ?beam_width instance (query : Query.sgq) =
  Query.check_sgq query;
  (* One context serves the planning estimate and the chosen solver. *)
  let ctx = Feasible.context_of_instance instance ~s:query.s in
  let plan = make_plan ~budget ctx.Engine.Context.fg query.p in
  let solution =
    match plan.choice with
    | Exact -> Sgselect.solve ~ctx instance query
    | Beam -> Heuristics.beam_sgq ?width:beam_width ~ctx instance query
  in
  (* Exact or heuristic, the answer leaves with a validated certificate. *)
  (Validate.certify_sg instance query solution, plan)

let stgq ?(budget = 1e8) ?beam_width (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  let ctx = Feasible.context_of_temporal ti ~s:query.s in
  let plan = make_plan ~budget ctx.Engine.Context.fg query.p in
  let solution =
    match plan.choice with
    | Exact -> Stgselect.solve ~ctx ti query
    | Beam -> Heuristics.beam_stgq ?width:beam_width ~ctx ti query
  in
  (Validate.certify_stg ti query solution, plan)

(* Batched variants: requests against one dataset, grouped by
   (initiator, s) through {!Engine.Batch} over a transient cache, so the
   planner probe and the chosen solver of every group member share one
   context — and with a pool, the next group's context build hides
   behind this group's solves.  Each request still gets its own plan
   (the p-dependent hardness estimate is per query even when the
   context is shared). *)

let sgq_batch ?(budget = 1e8) ?beam_width ?pool (instance : Query.instance)
    (reqs : (int * Query.sgq) list) =
  Query.check_instance instance;
  List.iter (fun (_, q) -> Query.check_sgq q) reqs;
  let cache = Engine.Cache.create instance.Query.graph in
  Engine.Batch.run ?pool ~cache
    ~key:(fun (initiator, (q : Query.sgq)) -> (initiator, q.s))
    ~solve:(fun ctx (initiator, (q : Query.sgq)) ->
      let instance = { instance with Query.initiator } in
      let plan = make_plan ~budget ctx.Engine.Context.fg q.p in
      let solution =
        match plan.choice with
        | Exact -> Sgselect.solve ~ctx instance q
        | Beam -> Heuristics.beam_sgq ?width:beam_width ~ctx instance q
      in
      (Validate.certify_sg instance q solution, plan))
    reqs

let stgq_batch ?(budget = 1e8) ?beam_width ?pool
    (ti : Query.temporal_instance) (reqs : (int * Query.stgq) list) =
  Query.check_temporal_instance ti;
  List.iter (fun (_, q) -> Query.check_stgq q) reqs;
  (* The transient cache aliases the caller's schedules on purpose:
     contexts and the certifier must read the same calendars. *)
  let cache =
    Engine.Cache.create ~schedules:ti.Query.schedules ti.social.Query.graph
  in
  Engine.Batch.run ?pool ~cache
    ~key:(fun (initiator, (q : Query.stgq)) -> (initiator, q.s))
    ~warm:(fun ctx (_, (q : Query.stgq)) ->
      ignore (Engine.Context.pivots ctx ~m:q.m : int list))
    ~solve:(fun ctx (initiator, (q : Query.stgq)) ->
      let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
      let plan = make_plan ~budget ctx.Engine.Context.fg q.p in
      let solution =
        match plan.choice with
        | Exact -> Stgselect.solve ~ctx ti q
        | Beam -> Heuristics.beam_stgq ?width:beam_width ~ctx ti q
      in
      (Validate.certify_stg ti q solution, plan))
    reqs

(* Resilient variants: planning happens under [Resilience.protect] (so a
   transient fault during context build retries instead of escaping
   raw), then the plan routes into the ladder — a [Beam] plan enters at
   the heuristic rung directly. *)

let sgq_r ?(budget = 1e8) ?beam_width ?policy ?cancel instance
    (query : Query.sgq) =
  Query.check_sgq query;
  match
    Resilience.protect ?policy (fun () ->
        let ctx = Feasible.context_of_instance instance ~s:query.s in
        (ctx, make_plan ~budget ctx.Engine.Context.fg query.p))
  with
  | Error e -> (Error e, None)
  | Ok (ctx, plan) ->
      let certify solution = Validate.certify_sg instance query solution in
      let heuristic b =
        certify (Heuristics.beam_sgq ?width:beam_width ~ctx ~budget:b instance query)
      in
      let result =
        match plan.choice with
        | Exact ->
            Resilience.run ?policy ?cancel
              ~exact:(fun b ->
                let report = Sgselect.solve_report ~ctx ~budget:b instance query in
                Resilience.certify_outcome ~certify report.Sgselect.outcome)
              ~heuristic ()
        | Beam -> Resilience.run_heuristic ?policy ?cancel ~heuristic ()
      in
      (result, Some plan)

let stgq_r ?(budget = 1e8) ?beam_width ?policy ?cancel
    (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  match
    Resilience.protect ?policy (fun () ->
        let ctx = Feasible.context_of_temporal ti ~s:query.s in
        (ctx, make_plan ~budget ctx.Engine.Context.fg query.p))
  with
  | Error e -> (Error e, None)
  | Ok (ctx, plan) ->
      let certify solution = Validate.certify_stg ti query solution in
      let heuristic b =
        certify (Heuristics.beam_stgq ?width:beam_width ~ctx ~budget:b ti query)
      in
      let result =
        match plan.choice with
        | Exact ->
            Resilience.run ?policy ?cancel
              ~exact:(fun b ->
                let report = Stgselect.solve_report ~ctx ~budget:b ti query in
                Resilience.certify_outcome ~certify report.Stgselect.outcome)
              ~heuristic ()
        | Beam -> Resilience.run_heuristic ?policy ?cancel ~heuristic ()
      in
      (result, Some plan)

(** Adaptive solver selection — the "value-added service" wrapper (§6).

    A deployment answering queries for arbitrary users cannot hand every
    request to an exponential exact search: a celebrity initiator with a
    radius-3 egocentric network makes SGSelect's worst case astronomical.
    This module estimates instance hardness from the feasible-graph size
    and picks:

    - [Exact]: SGSelect/STGSelect, when the candidate-group count
      [C(f-1, p-1)] is within [budget] — the answer is provably optimal;
    - [Beam]: the beam-search heuristic otherwise — polynomial, valid,
      possibly suboptimal.

    The returned plan records the decision so callers can report answer
    quality honestly. *)

type choice = Exact | Beam

type plan = {
  choice : choice;
  feasible_size : int;
  log10_groups : float;  (** log10 of C(f-1, p-1) *)
}

(** [plan_sgq ?budget instance query] decides without solving.  [budget]
    (default [1e8]) bounds the acceptable candidate-group count for the
    exact search. *)
val plan_sgq : ?budget:float -> Query.instance -> Query.sgq -> plan

(** [sgq ?budget ?beam_width instance query] plans, solves accordingly.
    Exact or heuristic, the answer is re-checked by {!Validate} before
    being returned ([@raise Validate.Certificate_failure] on a failed
    re-check — a solver bug surfacing). *)
val sgq :
  ?budget:float -> ?beam_width:int -> Query.instance -> Query.sgq ->
  Query.sg_solution option * plan

(** [stgq ?budget ?beam_width ti query] — the temporal analogue; the
    group-count estimate is per pivot. *)
val stgq :
  ?budget:float -> ?beam_width:int -> Query.temporal_instance -> Query.stgq ->
  Query.stg_solution option * plan

(** [sgq_batch ?budget ?beam_width ?pool instance reqs] plans and solves
    every [(initiator, query)] request (the [instance]'s own initiator
    is ignored — requests carry their own), results in input order.
    Requests are grouped by [(initiator, s)] via {!Engine.Batch}: the
    planner probe and the chosen solver of all group members share one
    context, and with [pool] the next group's context build is pipelined
    behind the current group's solves.  Every answer is certified. *)
val sgq_batch :
  ?budget:float -> ?beam_width:int -> ?pool:Engine.Pool.t ->
  Query.instance -> (int * Query.sgq) list ->
  (Query.sg_solution option * plan) list

(** [stgq_batch ?budget ?beam_width ?pool ti reqs] — the temporal
    analogue of {!sgq_batch}; the group's pivot lists are pre-warmed on
    the build domain. *)
val stgq_batch :
  ?budget:float -> ?beam_width:int -> ?pool:Engine.Pool.t ->
  Query.temporal_instance -> (int * Query.stgq) list ->
  (Query.stg_solution option * plan) list

(** [sgq_r ?budget ?beam_width ?policy ?cancel instance query] — the
    resilient variant: planning runs under {!Resilience.protect} (the
    plan is [None] when planning itself was unavailable), an [Exact]
    plan walks the full {!Resilience} ladder, a [Beam] plan enters at
    the heuristic rung.  Answers on every rung are certified. *)
val sgq_r :
  ?budget:float -> ?beam_width:int -> ?policy:Resilience.policy ->
  ?cancel:bool Atomic.t -> Query.instance -> Query.sgq ->
  (Query.sg_solution Resilience.answer, Resilience.error) result * plan option

(** [stgq_r ?budget ?beam_width ?policy ?cancel ti query] — the temporal
    analogue of {!sgq_r}. *)
val stgq_r :
  ?budget:float -> ?beam_width:int -> ?policy:Resilience.policy ->
  ?cancel:bool Atomic.t -> Query.temporal_instance -> Query.stgq ->
  (Query.stg_solution Resilience.answer, Resilience.error) result * plan option

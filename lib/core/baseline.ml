type sg_report = {
  solution : Query.sg_solution option;
  outcome : Query.sg_solution Anytime.outcome;
  groups_examined : int;
  feasible_size : int;
}

(* Internal, no-trace: unwinds the enumeration when a cap or budget
   trips; the trip reason is recorded before raising. *)
exception Stop

(* Acquaintance check over sub-ids: every member may have at most [k]
   non-neighbours among the other members. *)
let acquaintance_ok fg ~k group =
  let size = List.length group in
  List.for_all
    (fun v ->
      let nbrs =
        List.fold_left
          (fun acc w -> if w <> v && Feasible.adjacent fg v w then acc + 1 else acc)
          0 group
      in
      size - 1 - nbrs <= k)
    group

(* Enumerate all (p-1)-subsets of [candidates] joined with q, tracking the
   best qualified group.  [candidates] is an int array of sub-ids.
   Total: a [max_groups] cap or a budget trip ends the enumeration and is
   reported as the returned reason ([None] = ran to completion); the cap
   maps to [Budget.Node_limit] (one "node" = one examined group). *)
let enumerate fg ~p ~k ~candidates ~budget ~max_groups ~examined ~consider =
  let q = fg.Feasible.q in
  let n = Array.length candidates in
  let chosen = Array.make (max 0 (p - 1)) 0 in
  let stopped = ref None in
  let halt reason =
    stopped := Some reason;
    raise_notrace Stop
  in
  let rec go depth first td =
    if depth = p - 1 then begin
      incr examined;
      if !examined > max_groups then halt Budget.Node_limit;
      if !examined land (Budget.check_interval - 1) = 0 then begin
        match Budget.charge budget Budget.check_interval with
        | Some reason -> halt reason
        | None -> ()
      end;
      let group = q :: Array.to_list chosen in
      if acquaintance_ok fg ~k group then consider group td
    end
    else
      for i = first to n - (p - 1 - depth) do
        let v = candidates.(i) in
        chosen.(depth) <- v;
        go (depth + 1) (i + 1) (td +. fg.Feasible.dist.(v))
      done
  in
  (try if p - 1 <= n then go 0 0 0. with Stop -> ());
  !stopped

let sg_gap fg ~p (s : Query.sg_solution) =
  let lb = Search_core.completion_lower_bound fg ~p ~eligible:(fun _ -> true) in
  Float.max 0. (s.total_distance -. lb)

let sgq_brute ?(max_groups = max_int) ?(budget = Budget.unlimited) instance
    (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  let fg = Feasible.extract instance ~s:query.s in
  let size = Feasible.size fg in
  let candidates =
    Array.of_list (List.filter (fun v -> v <> fg.Feasible.q) (List.init size Fun.id))
  in
  let examined = ref 0 in
  let best = ref None in
  let consider group td =
    match !best with
    | Some (btd, _) when td >= btd -. 1e-12 -> ()
    | _ -> best := Some (td, group)
  in
  let completion =
    enumerate fg ~p:query.p ~k:query.k ~candidates ~budget ~max_groups ~examined
      ~consider
  in
  let solution =
    Option.map
      (fun (td, group) ->
        { Query.attendees = Feasible.originals fg group; total_distance = td })
      !best
  in
  let outcome = Anytime.make ~completion ~gap_of:(sg_gap fg ~p:query.p) solution in
  { solution; outcome; groups_examined = !examined; feasible_size = size }

type stg_report = {
  st_solution : Query.stg_solution option;
  st_outcome : Query.stg_solution Anytime.outcome;
  windows_scanned : int;
  groups_examined : int;
}

let stg_gap fg ~p (s : Query.stg_solution) =
  let lb = Search_core.completion_lower_bound fg ~p ~eligible:(fun _ -> true) in
  Float.max 0. (s.st_total_distance -. lb)

(* Shared scaffolding of the per-period baselines: scan every start slot,
   restrict candidates to members available throughout the window, solve
   the social subproblem with [solve_window] (which reports its own trip,
   if any).  The scan stops at the first trip but keeps the best answer
   found so far. *)
let per_window (ti : Query.temporal_instance) (query : Query.stgq) ~budget
    ~solve_window =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let fg = Feasible.extract ti.social ~s:query.s in
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let avail = Array.map (fun orig -> ti.schedules.(orig)) fg.Feasible.of_sub in
  let windows = ref 0 in
  let best = ref None in
  let stopped = ref None in
  let start = ref 0 in
  while !stopped = None && !start <= horizon - query.m do
    let s = !start in
    (match Budget.check budget with
    | Some _ as r -> stopped := r
    | None ->
        if Timetable.Availability.window_free avail.(fg.Feasible.q) ~start:s ~len:query.m
        then begin
          incr windows;
          let eligible v =
            Timetable.Availability.window_free avail.(v) ~start:s ~len:query.m
          in
          let result, stop = solve_window fg ~eligible in
          (match result with
          | None -> ()
          | Some (td, group) -> (
              match !best with
              | Some (btd, _, _) when td >= btd -. 1e-12 -> ()
              | _ -> best := Some (td, group, s)));
          stopped := stop
        end);
    incr start
  done;
  let st_solution =
    Option.map
      (fun (td, group, s) ->
        {
          Query.st_attendees = Feasible.originals fg group;
          st_total_distance = td;
          start_slot = s;
        })
      !best
  in
  let st_outcome =
    Anytime.make ~completion:!stopped ~gap_of:(stg_gap fg ~p:query.p) st_solution
  in
  (st_solution, st_outcome, !windows)

(* The paper's "intuitive approach" resolves a complete, independent SGQ
   per activity period: the radius graph is re-extracted for every window
   and availability is checked slot by slot — none of the work is shared
   across periods.  (The property-test oracle [stgq_brute] below shares
   the extraction; only this benchmarked baseline models the naive cost.) *)
let stgq_per_slot ?(config = Search_core.default_config)
    ?(budget = Budget.unlimited) ti (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let naive_window_free a start =
    let[@lint.bounded] rec go o = o >= query.m || (Timetable.Availability.available a (start + o) && go (o + 1)) in
    go 0
  in
  let q0 = ti.social.Query.initiator in
  let stats = Search_core.fresh_stats () in
  let windows = ref 0 in
  let best = ref None in
  let stopped = ref None in
  let start = ref 0 in
  let last_fg = ref None in
  while !stopped = None && !start <= horizon - query.m do
    let s = !start in
    incr windows;
    (* A full SGQ from scratch for this period: a throwaway context
       (radius extraction and all), then a slot-by-slot availability
       scan over every candidate. *)
    let ctx = Feasible.context_of_instance ti.social ~s:query.s in
    let fg = ctx.Engine.Context.fg in
    last_fg := Some fg;
    let available =
      Array.init (Feasible.size fg) (fun v ->
          naive_window_free ti.schedules.(fg.Feasible.of_sub.(v)) s)
    in
    if available.(fg.Feasible.to_sub.(q0)) then begin
      let consider distance group =
        match !best with
        | Some (btd, _, _) when distance >= btd -. 1e-12 -> ()
        | _ -> best := Some (distance, Feasible.originals fg group, s)
      in
      match
        Search_core.solve_social_out
          ~eligible:(fun v -> available.(v))
          ~budget ctx ~p:query.p ~k:query.k ~config ~stats
      with
      | Anytime.Optimal None -> ()
      | Anytime.Optimal (Some { Search_core.group; distance; _ }) ->
          consider distance group
      | Anytime.Feasible_best { best = { Search_core.group; distance; _ }; reason; _ }
        ->
          (* A truncated window still yields a feasible group for this
             window — usable as the running incumbent. *)
          consider distance group;
          stopped := Some reason
      | Anytime.Exhausted reason -> stopped := Some reason
    end;
    incr start
  done;
  let st_solution =
    Option.map
      (fun (td, attendees, s) ->
        { Query.st_attendees = attendees; st_total_distance = td; start_slot = s })
      !best
  in
  let st_outcome =
    let gap_of sol =
      match !last_fg with Some fg -> stg_gap fg ~p:query.p sol | None -> infinity
    in
    Anytime.make ~completion:!stopped ~gap_of st_solution
  in
  { st_solution; st_outcome; windows_scanned = !windows; groups_examined = 0 }

let stgq_brute ?(max_groups = max_int) ?(budget = Budget.unlimited) ti
    (query : Query.stgq) =
  let examined = ref 0 in
  let solve_window fg ~eligible =
    let size = Feasible.size fg in
    let candidates =
      Array.of_list
        (List.filter (fun v -> v <> fg.Feasible.q && eligible v) (List.init size Fun.id))
    in
    let best = ref None in
    let consider group td =
      match !best with
      | Some (btd, _) when td >= btd -. 1e-12 -> ()
      | _ -> best := Some (td, group)
    in
    let stop =
      enumerate fg ~p:query.p ~k:query.k ~candidates ~budget ~max_groups ~examined
        ~consider
    in
    (!best, stop)
  in
  let st_solution, st_outcome, windows = per_window ti query ~budget ~solve_window in
  { st_solution; st_outcome; windows_scanned = windows; groups_examined = !examined }

exception Limit_exceeded

type sg_report = {
  solution : Query.sg_solution option;
  groups_examined : int;
  feasible_size : int;
}

(* Acquaintance check over sub-ids: every member may have at most [k]
   non-neighbours among the other members. *)
let acquaintance_ok fg ~k group =
  let size = List.length group in
  List.for_all
    (fun v ->
      let nbrs =
        List.fold_left
          (fun acc w -> if w <> v && Feasible.adjacent fg v w then acc + 1 else acc)
          0 group
      in
      size - 1 - nbrs <= k)
    group

(* Enumerate all (p-1)-subsets of [candidates] joined with q, tracking the
   best qualified group.  [candidates] is an int array of sub-ids. *)
let enumerate fg ~p ~k ~candidates ~max_groups ~examined ~consider =
  let q = fg.Feasible.q in
  let n = Array.length candidates in
  let chosen = Array.make (p - 1) 0 in
  let rec go depth first td =
    if depth = p - 1 then begin
      incr examined;
      if !examined > max_groups then raise Limit_exceeded;
      let group = q :: Array.to_list chosen in
      if acquaintance_ok fg ~k group then consider group td
    end
    else
      for i = first to n - (p - 1 - depth) do
        let v = candidates.(i) in
        chosen.(depth) <- v;
        go (depth + 1) (i + 1) (td +. fg.Feasible.dist.(v))
      done
  in
  if p - 1 <= n then go 0 0 0.

let sgq_brute ?(max_groups = max_int) instance (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  let fg = Feasible.extract instance ~s:query.s in
  let size = Feasible.size fg in
  let candidates =
    Array.of_list (List.filter (fun v -> v <> fg.Feasible.q) (List.init size Fun.id))
  in
  let examined = ref 0 in
  let best = ref None in
  let consider group td =
    match !best with
    | Some (btd, _) when td >= btd -. 1e-12 -> ()
    | _ -> best := Some (td, group)
  in
  enumerate fg ~p:query.p ~k:query.k ~candidates ~max_groups ~examined ~consider;
  let solution =
    Option.map
      (fun (td, group) ->
        { Query.attendees = Feasible.originals fg group; total_distance = td })
      !best
  in
  { solution; groups_examined = !examined; feasible_size = size }

type stg_report = {
  st_solution : Query.stg_solution option;
  windows_scanned : int;
  groups_examined : int;
}

(* Shared scaffolding of the per-period baselines: scan every start slot,
   restrict candidates to members available throughout the window, solve
   the social subproblem with [solve_window]. *)
let per_window (ti : Query.temporal_instance) (query : Query.stgq) ~solve_window =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let fg = Feasible.extract ti.social ~s:query.s in
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let avail = Array.map (fun orig -> ti.schedules.(orig)) fg.Feasible.of_sub in
  let windows = ref 0 in
  let best = ref None in
  for start = 0 to horizon - query.m do
    if Timetable.Availability.window_free avail.(fg.Feasible.q) ~start ~len:query.m
    then begin
      incr windows;
      let eligible v =
        Timetable.Availability.window_free avail.(v) ~start ~len:query.m
      in
      match solve_window fg ~eligible with
      | None -> ()
      | Some (td, group) -> (
          match !best with
          | Some (btd, _, _) when td >= btd -. 1e-12 -> ()
          | _ -> best := Some (td, group, start))
    end
  done;
  let st_solution =
    Option.map
      (fun (td, group, start) ->
        {
          Query.st_attendees = Feasible.originals fg group;
          st_total_distance = td;
          start_slot = start;
        })
      !best
  in
  (st_solution, !windows)

(* The paper's "intuitive approach" resolves a complete, independent SGQ
   per activity period: the radius graph is re-extracted for every window
   and availability is checked slot by slot — none of the work is shared
   across periods.  (The property-test oracle [stgq_brute] below shares
   the extraction; only this benchmarked baseline models the naive cost.) *)
let stgq_per_slot ?(config = Search_core.default_config) ti (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let naive_window_free a start =
    let rec go o = o >= query.m || (Timetable.Availability.available a (start + o) && go (o + 1)) in
    go 0
  in
  let q0 = ti.social.Query.initiator in
  let stats = Search_core.fresh_stats () in
  let windows = ref 0 in
  let best = ref None in
  for start = 0 to horizon - query.m do
    incr windows;
    (* A full SGQ from scratch for this period: a throwaway context
       (radius extraction and all), then a slot-by-slot availability
       scan over every candidate. *)
    let ctx = Feasible.context_of_instance ti.social ~s:query.s in
    let fg = ctx.Engine.Context.fg in
    let available =
      Array.init (Feasible.size fg) (fun v ->
          naive_window_free ti.schedules.(fg.Feasible.of_sub.(v)) start)
    in
    if available.(fg.Feasible.to_sub.(q0)) then begin
      match
        Search_core.solve_social
          ~eligible:(fun v -> available.(v))
          ctx ~p:query.p ~k:query.k ~config ~stats
      with
      | None -> ()
      | Some { Search_core.group; distance; _ } -> (
          match !best with
          | Some (btd, _, _) when distance >= btd -. 1e-12 -> ()
          | _ -> best := Some (distance, Feasible.originals fg group, start))
    end
  done;
  let st_solution =
    Option.map
      (fun (td, attendees, start) ->
        { Query.st_attendees = attendees; st_total_distance = td; start_slot = start })
      !best
  in
  { st_solution; windows_scanned = !windows; groups_examined = 0 }

let stgq_brute ?(max_groups = max_int) ti (query : Query.stgq) =
  let examined = ref 0 in
  let solve_window fg ~eligible =
    let size = Feasible.size fg in
    let candidates =
      Array.of_list
        (List.filter (fun v -> v <> fg.Feasible.q && eligible v) (List.init size Fun.id))
    in
    let best = ref None in
    let consider group td =
      match !best with
      | Some (btd, _) when td >= btd -. 1e-12 -> ()
      | _ -> best := Some (td, group)
    in
    enumerate fg ~p:query.p ~k:query.k ~candidates ~max_groups ~examined ~consider;
    !best
    |> Option.map (fun (td, group) -> (td, group))
  in
  let st_solution, windows = per_window ti query ~solve_window in
  { st_solution; windows_scanned = windows; groups_examined = !examined }

(** The paper's comparison baselines (§5.2).

    - SGQ baseline: enumerate all [C(f-1, p-1)] candidate groups and keep
      the qualified one with minimum total social distance.
    - STGQ baseline: scan every activity period of [m] slots and solve the
      corresponding SGQ independently (the "intuitive approach" of §4).

    [stgq_per_slot] solves each period with SGSelect — isolating the value
    of the temporal strategies; [stgq_brute] uses the brute-force SGQ per
    period and is the fully naive test oracle.

    All baselines are {e total}: exceeding [max_groups] or a {!Budget}
    trip ends the run and is reported in the report's typed
    {!Anytime.outcome} — never an exception.  The group cap is reported
    as {!Budget.Node_limit} (one "node" = one examined group). *)

type sg_report = {
  solution : Query.sg_solution option;
      (** the carried answer ([= Anytime.solution outcome]) *)
  outcome : Query.sg_solution Anytime.outcome;
      (** [Optimal] iff the enumeration ran to completion *)
  groups_examined : int;
  feasible_size : int;
}

(** [sgq_brute ?max_groups ?budget instance query] enumerates candidate
    groups; the cap and the budget both truncate into [outcome]. *)
val sgq_brute :
  ?max_groups:int -> ?budget:Budget.t -> Query.instance -> Query.sgq -> sg_report

type stg_report = {
  st_solution : Query.stg_solution option;
  st_outcome : Query.stg_solution Anytime.outcome;
  windows_scanned : int;  (** windows examined before completion or trip *)
  groups_examined : int;  (** total across windows; [stgq_brute] only *)
}

(** [stgq_per_slot ?config ?budget ti query] — one SGSelect run per
    activity period, as the paper's STGQ baseline. *)
val stgq_per_slot :
  ?config:Search_core.config -> ?budget:Budget.t ->
  Query.temporal_instance -> Query.stgq -> stg_report

(** [stgq_brute ?max_groups ?budget ti query] — brute-force SGQ per
    period; the ground-truth oracle for STGSelect property tests.
    [max_groups] caps cumulatively across periods. *)
val stgq_brute :
  ?max_groups:int -> ?budget:Budget.t ->
  Query.temporal_instance -> Query.stgq -> stg_report

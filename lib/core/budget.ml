(* lint: allow-file toplevel-state *)
(* [unlimited] is a single shared value so that the default solver path
   allocates nothing; its atomics are never written (every mutator is
   gated on [limited]). *)

type reason = Deadline | Node_limit | Cancelled

let reason_name = function
  | Deadline -> "deadline"
  | Node_limit -> "node_limit"
  | Cancelled -> "cancelled"

let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)

type t = {
  deadline_ns : int64;  (* absolute monotonic; Int64.max_int = none *)
  node_limit : int;  (* max_int = none *)
  nodes : int Atomic.t;
  cancel_flag : bool Atomic.t;
  tripped_cell : reason option Atomic.t;
  limited : bool;
}

(* The monotonic clock: immune to wall-clock adjustments, safe to
   compare across a solve.  The stgq-lint [wall-clock] rule keeps solver
   code off Unix.gettimeofday and on this. *)
let now_ns = Monotonic_clock.now

let check_interval = 256

let unlimited =
  {
    deadline_ns = Int64.max_int;
    node_limit = max_int;
    nodes = Atomic.make 0;
    cancel_flag = Atomic.make false;
    tripped_cell = Atomic.make None;
    limited = false;
  }

let is_unlimited t = not t.limited

let create ?deadline_ns ?node_limit ?cancel () =
  (match node_limit with
  | Some n when n < 0 -> invalid_arg "Budget.create: node_limit must be >= 0"
  | Some _ | None -> ());
  {
    deadline_ns = Option.value deadline_ns ~default:Int64.max_int;
    node_limit = Option.value node_limit ~default:max_int;
    nodes = Atomic.make 0;
    cancel_flag = (match cancel with Some c -> c | None -> Atomic.make false);
    tripped_cell = Atomic.make None;
    limited = true;
  }

let within_ms ?node_limit ms =
  let deadline_ns =
    Int64.add (now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L)
  in
  create ~deadline_ns ?node_limit ()

let cancel t = if t.limited then Atomic.set t.cancel_flag true

let cancelled t = t.limited && Atomic.get t.cancel_flag

let nodes_charged t = Atomic.get t.nodes

let remaining_ns t =
  if t.deadline_ns = Int64.max_int then None
  else Some (Int64.max 0L (Int64.sub t.deadline_ns (now_ns ())))

(* First trip wins; later checks return the latched reason, so every
   domain sharing the budget reports the same cause. *)
let trip t reason =
  ignore (Atomic.compare_and_set t.tripped_cell None (Some reason) : bool);
  Atomic.get t.tripped_cell

let tripped t = if t.limited then Atomic.get t.tripped_cell else None

let check t =
  if not t.limited then None
  else
    match Atomic.get t.tripped_cell with
    | Some _ as latched -> latched
    | None ->
        if Atomic.get t.cancel_flag then trip t Cancelled
        else if t.node_limit <> max_int && Atomic.get t.nodes > t.node_limit
        then trip t Node_limit
        else if
          t.deadline_ns <> Int64.max_int
          && Int64.compare (now_ns ()) t.deadline_ns >= 0
        then trip t Deadline
        else None

let charge t n =
  if not t.limited then None
  else begin
    ignore (Atomic.fetch_and_add t.nodes n : int);
    check t
  end

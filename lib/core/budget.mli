(** Cooperative solve budgets: deadline, node cap, external cancellation.

    SGQ/STGQ are NP-hard, so a pathological query can run effectively
    forever.  A [Budget.t] bounds a solve by three independent limits —
    an absolute {e monotonic} deadline, a search-node budget, and a
    cancellation flag another domain may set at any time — and the
    search layers poll it cooperatively at a coarse checkpoint (every
    {!check_interval} node expansions), cheap enough to leave on in
    production (gated ≤3% in BENCH_resilience.json).

    One budget may be shared by several domains (the parallel solver
    gives every pivot bucket the same budget): node charges accumulate
    atomically across domains and the first trip latches, so all buckets
    stop for the same {!reason} within one checkpoint.

    The default {!unlimited} budget never trips and costs one branch per
    checkpoint; with it, solver results are bit-identical to the
    unbudgeted code. *)

(** Why a budget tripped. *)
type reason =
  | Deadline  (** the monotonic deadline passed *)
  | Node_limit  (** more than [node_limit] nodes charged *)
  | Cancelled  (** {!cancel} was called (possibly from another domain) *)

val reason_name : reason -> string

val pp_reason : Format.formatter -> reason -> unit

type t

(** Monotonic clock, in nanoseconds from an arbitrary origin.  Solver
    code must use this (never wall-clock time — enforced by the
    stgq-lint [wall-clock] rule): deadlines survive clock adjustments. *)
val now_ns : unit -> int64

(** Solvers poll the budget every this many node expansions. *)
val check_interval : int

(** The no-op budget: never trips, checked in O(1). *)
val unlimited : t

val is_unlimited : t -> bool

(** [create ?deadline_ns ?node_limit ?cancel ()] — [deadline_ns] is an
    {e absolute} {!now_ns} instant; [node_limit] caps total charged
    nodes; [cancel] shares an external cancellation flag (e.g. one flag
    fanned out to many queries).
    @raise Invalid_argument if [node_limit < 0]. *)
val create :
  ?deadline_ns:int64 -> ?node_limit:int -> ?cancel:bool Atomic.t -> unit -> t

(** [within_ms ?node_limit ms] — deadline [ms] milliseconds from now
    ([ms <= 0] yields an already-expired budget). *)
val within_ms : ?node_limit:int -> int -> t

(** [cancel t] trips the budget from any domain; observed by every
    solver sharing [t] at its next checkpoint.  No-op on {!unlimited}. *)
val cancel : t -> unit

val cancelled : t -> bool

(** Total nodes charged so far (all domains). *)
val nodes_charged : t -> int

(** Time left until the deadline, if one is set (0 when expired). *)
val remaining_ns : t -> int64 option

(** The latched trip reason.  Once set it never changes: every sharer
    observes the same first cause. *)
val tripped : t -> reason option

(** [check t] evaluates all three limits (latching on first trip)
    without charging nodes. *)
val check : t -> reason option

(** [charge t n] adds [n] nodes and then {!check}s.  Solvers call this
    once per {!check_interval} expansions, not per node. *)
val charge : t -> int -> reason option

(* lint: allow-file toplevel-state *)
(* Deterministic fault injection.  The plan is process-global on purpose:
   faults must be reachable from library layers (engine pool workers on
   other domains, the validation gate) without threading a handle through
   every API, exactly like the Obs registry.  The armed flag keeps the
   disabled path to a single atomic load. *)

type site =
  | Context_build
  | Pool_job_start
  | Kernel_expansion
  | Certify
  | Store_short_write
  | Store_bit_flip
  | Store_crash_rename
  | Store_crash_append
  | Store_crash_checkpoint

let all_sites =
  [
    Context_build; Pool_job_start; Kernel_expansion; Certify;
    Store_short_write; Store_bit_flip; Store_crash_rename; Store_crash_append;
    Store_crash_checkpoint;
  ]

let site_name = function
  | Context_build -> "context_build"
  | Pool_job_start -> "pool_job_start"
  | Kernel_expansion -> "kernel_expansion"
  | Certify -> "certify"
  | Store_short_write -> "store_short_write"
  | Store_bit_flip -> "store_bit_flip"
  | Store_crash_rename -> "store_crash_rename"
  | Store_crash_append -> "store_crash_append"
  | Store_crash_checkpoint -> "store_crash_checkpoint"

let site_of_name = function
  | "context_build" -> Some Context_build
  | "pool_job_start" -> Some Pool_job_start
  | "kernel_expansion" -> Some Kernel_expansion
  | "certify" -> Some Certify
  | "store_short_write" -> Some Store_short_write
  | "store_bit_flip" -> Some Store_bit_flip
  | "store_crash_rename" -> Some Store_crash_rename
  | "store_crash_append" -> Some Store_crash_append
  | "store_crash_checkpoint" -> Some Store_crash_checkpoint
  | _ -> None

exception Injected_fault of { site : site; transient : bool }

let () =
  Printexc.register_printer (function
    | Injected_fault { site; transient } ->
        Some
          (Printf.sprintf "Injected_fault(%s%s)" (site_name site)
             (if transient then ", transient" else ""))
    | _ -> None)

type spec = { site : site; at : int; transient : bool; persistent : bool }

let spec_to_string s =
  Printf.sprintf "%s@%d%s%s" (site_name s.site) s.at
    (if s.persistent then "+" else "")
    (if s.transient then ":transient" else "")

(* One token: site@N[+][:transient].  [site@N] fires once, on the Nth hit
   of the site; the trailing [+] makes it fire on every hit from the Nth
   onward; [:transient] marks the raised fault as retry-safe. *)
let parse_spec token =
  match String.index_opt token '@' with
  | None -> Error (Printf.sprintf "%S: expected site@N[+][:transient]" token)
  | Some i -> (
      let name = String.sub token 0 i in
      let rest = String.sub token (i + 1) (String.length token - i - 1) in
      match site_of_name name with
      | None -> Error (Printf.sprintf "%S: unknown site %S" token name)
      | Some site -> (
          let count, flags =
            match String.split_on_char ':' rest with
            | count :: flags -> (count, flags)
            | [] -> ("", [])
          in
          let persistent = String.length count > 0 && count.[String.length count - 1] = '+' in
          let count = if persistent then String.sub count 0 (String.length count - 1) else count in
          let transient = List.mem "transient" flags in
          match List.filter (fun f -> f <> "transient") flags with
          | _ :: _ -> Error (Printf.sprintf "%S: unknown flag" token)
          | [] -> (
              match int_of_string_opt count with
              | Some at when at >= 1 -> Ok { site; at; transient; persistent }
              | Some _ | None ->
                  Error (Printf.sprintf "%S: hit index must be a positive integer" token))))

let parse raw =
  let tokens =
    String.split_on_char ',' raw |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  List.fold_left
    (fun acc token ->
      match (acc, parse_spec token) with
      | Error _, _ -> acc
      | Ok _, Error e -> Error e
      | Ok specs, Ok s -> Ok (s :: specs))
    (Ok []) tokens
  |> Result.map List.rev

type entry = { spec : spec; mutable spent : bool }

type state = { mutable entries : entry list; hits : int array }

let lock = Mutex.create ()

let state = { entries = []; hits = Array.make (List.length all_sites) 0 }

let armed = Atomic.make false

let index = function
  | Context_build -> 0
  | Pool_job_start -> 1
  | Kernel_expansion -> 2
  | Certify -> 3
  | Store_short_write -> 4
  | Store_bit_flip -> 5
  | Store_crash_rename -> 6
  | Store_crash_append -> 7
  | Store_crash_checkpoint -> 8

let install specs =
  Mutex.lock lock;
  state.entries <- List.map (fun spec -> { spec; spent = false }) specs;
  Array.fill state.hits 0 (Array.length state.hits) 0;
  Atomic.set armed (specs <> []);
  Mutex.unlock lock

let clear () = install []

let active () = Atomic.get armed

let hits site =
  Mutex.lock lock;
  let h = state.hits.(index site) in
  Mutex.unlock lock;
  h

let fire site =
  if Atomic.get armed then begin
    Mutex.lock lock;
    let i = index site in
    state.hits.(i) <- state.hits.(i) + 1;
    let seen = state.hits.(i) in
    let due =
      List.find_opt
        (fun e ->
          e.spec.site = site && (not e.spent)
          && (if e.spec.persistent then seen >= e.spec.at else seen = e.spec.at))
        state.entries
    in
    (match due with
    | Some e when not e.spec.persistent -> e.spent <- true
    | Some _ | None -> ());
    Mutex.unlock lock;
    match due with
    | Some e -> raise (Injected_fault { site; transient = e.spec.transient })
    | None -> ()
  end

let with_plan plan f =
  let specs =
    match parse plan with
    | Ok specs -> specs
    | Error msg -> invalid_arg ("Faultinject.with_plan: " ^ msg)
  in
  Mutex.lock lock;
  let saved_entries = state.entries in
  let saved_hits = Array.copy state.hits in
  let saved_armed = Atomic.get armed in
  Mutex.unlock lock;
  install specs;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock lock;
      state.entries <- saved_entries;
      Array.blit saved_hits 0 state.hits 0 (Array.length saved_hits);
      Atomic.set armed saved_armed;
      Mutex.unlock lock)
    f

(* Env gate: a plan in STGQ_FAULTS arms injection for the whole process.
   Off (and a single atomic load per site) by default. *)
let () =
  match Sys.getenv_opt "STGQ_FAULTS" with
  | None | Some "" -> ()
  | Some raw -> (
      match parse raw with
      | Ok specs -> install specs
      | Error msg -> Printf.eprintf "STGQ_FAULTS ignored: %s\n%!" msg)

(** Deterministic, env-gated fault injection.

    Resilience claims are only as good as the failures they were tested
    against.  This module plants named fault sites at the seams the
    degradation ladder and the pool supervisor must survive; a {e plan}
    (installed programmatically or through the [STGQ_FAULTS] environment
    variable) decides which sites raise {!Injected_fault} on which hit.
    With no plan installed — the default — {!fire} is a single atomic
    load.

    Plans are deterministic by construction: a fault fires on the Nth
    {!fire} of its site, counted process-wide, so a failing run replays
    exactly.  The [@faults] dune alias runs the fault-matrix suite under
    one plan per site (see docs/ROBUSTNESS.md). *)

(** Where faults can fire.  The [Store_*] sites are I/O seams inside
    [lib/store]: rather than modelling a failing disk, they model a
    process crash (or silent corruption) at the exact moments the
    durability protocol must survive — see docs/PERSISTENCE.md. *)
type site =
  | Context_build  (** {!Engine.Context.build} entry *)
  | Pool_job_start  (** pool worker, after dequeue, before running a job *)
  | Kernel_expansion  (** search-kernel budget checkpoint (every 256 nodes) *)
  | Certify  (** {!Validate.certify_sg} / {!Validate.certify_stg} entry *)
  | Store_short_write
      (** snapshot temp-file write: only a prefix reaches the disk
          before the simulated crash *)
  | Store_bit_flip
      (** snapshot/WAL bytes: one bit is silently flipped before the
          write (the fault corrupts, it does not raise out of store) *)
  | Store_crash_rename
      (** snapshot publish: crash after the temp file is fsynced but
          before the atomic rename *)
  | Store_crash_append
      (** WAL append: crash mid-record, leaving a torn tail *)
  | Store_crash_checkpoint
      (** checkpoint: crash after the new snapshot generation's atomic
          rename but before the delta log rotates to that generation *)

val all_sites : site list

val site_name : site -> string

val site_of_name : string -> site option

(** The injected failure.  [transient] faults model recoverable
    conditions (the retry ladder may re-attempt); non-transient faults
    model hard failures.  A printer is registered. *)
exception Injected_fault of { site : site; transient : bool }

(** One plan entry: fire at the [at]-th hit of [site] — once, or on
    every hit from [at] onward when [persistent]. *)
type spec = { site : site; at : int; transient : bool; persistent : bool }

val spec_to_string : spec -> string

(** [parse raw] parses a comma-separated plan, each token
    [site\@N[+][:transient]]: [certify\@1:transient] fires a transient
    fault on the first certification, [context_build\@2+] fires on every
    context build from the second onward. *)
val parse : string -> (spec list, string) result

(** [install specs] replaces the active plan and resets hit counters. *)
val install : spec list -> unit

(** [clear ()] disarms injection. *)
val clear : unit -> unit

(** [active ()] — is any plan armed? *)
val active : unit -> bool

(** [hits site] — fires seen at [site] under the current plan. *)
val hits : site -> int

(** [fire site] raises {!Injected_fault} if the active plan says so;
    no-op (one atomic load) otherwise. *)
val fire : site -> unit

(** [with_plan plan f] installs the parsed [plan], runs [f], restores
    the previous plan (and counters) even on exception.
    @raise Invalid_argument on a malformed plan. *)
val with_plan : string -> (unit -> 'a) -> 'a

include Engine.Feasible

let extract (instance : Query.instance) ~s =
  Query.check_instance instance;
  Engine.Feasible.extract instance.graph ~initiator:instance.initiator ~s

let context_of_instance (instance : Query.instance) ~s =
  Query.check_instance instance;
  Engine.Context.build instance.graph ~initiator:instance.initiator ~s

let context_of_temporal (ti : Query.temporal_instance) ~s =
  Query.check_temporal_instance ti;
  Engine.Context.build ~schedules:ti.schedules ti.social.Query.graph
    ~initiator:ti.social.Query.initiator ~s

(** Radius-graph extraction (§3.2.1) — query-typed facade over
    {!Engine.Feasible}.

    The extraction itself lives in the engine layer; this module adapts
    it to the [Query] record types and adds the {!Engine.Context}
    constructors solvers route through.  The type equation below keeps
    the record fields usable from both sides. *)

type t = Engine.Feasible.t = {
  sub : Socgraph.Graph.t;   (** induced feasible graph over sub-ids *)
  of_sub : int array;       (** sub-id -> original vertex *)
  to_sub : int array;       (** original vertex -> sub-id or [-1] *)
  q : int;                  (** the initiator's sub-id *)
  dist : float array;       (** sub-id -> s-edge minimum distance to q *)
  nbr : Bitset.t array;     (** sub-id -> neighbour bitset in [sub] *)
}

(** [extract instance ~s] builds the feasible graph. *)
val extract : Query.instance -> s:int -> t

val size : t -> int

(** [adjacent fg u v] is adjacency between sub-ids, O(1) via bitsets. *)
val adjacent : t -> int -> int -> bool

(** [total_distance fg subs] sums [dist] over a sub-id list. *)
val total_distance : t -> int list -> float

(** [originals fg subs] maps sub-ids back to sorted original ids. *)
val originals : t -> int list -> int list

(** [context_of_instance instance ~s] builds a social-only engine
    context (validating the instance first). *)
val context_of_instance : Query.instance -> s:int -> Engine.Context.t

(** [context_of_temporal ti ~s] builds an STGQ-capable engine context
    whose availability slab aliases [ti.schedules]. *)
val context_of_temporal : Query.temporal_instance -> s:int -> Engine.Context.t

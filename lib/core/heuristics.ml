(* Both heuristics admit a candidate only when the partial group still
   satisfies the acquaintance bound outright — a sound filter because
   non-neighbour counts only grow as the group grows. *)

let partial_ok fg ~k group v =
  let nn_of x others =
    List.fold_left
      (fun acc w -> if w <> x && not (Feasible.adjacent fg x w) then acc + 1 else acc)
      0 others
  in
  let extended = v :: group in
  List.for_all (fun x -> nn_of x extended <= k) extended

let candidates_by_distance fg =
  List.init (Feasible.size fg) Fun.id
  |> List.filter (fun v -> v <> fg.Feasible.q)
  |> List.sort (fun a b -> compare (fg.Feasible.dist.(a), a) (fg.Feasible.dist.(b), b))

(* ------------------------------------------------------------------ *)
(* Greedy.                                                             *)

let greedy_social fg ~p ~k ~eligible ~shrink ~init ~budget =
  (* [shrink group v] is the temporal hook: [Some state'] when the common
     window survives adding [v].  For SGQ it always succeeds. *)
  let rec go group size state = function
    | _ when size = p -> Some (group, state)
    | [] -> None
    | v :: rest ->
        (* Per-candidate budget poll: the acquaintance filter makes a
           greedy pass quadratic in the group, so a tripped budget must
           be observed mid-pass, not just between passes. *)
        if Budget.check budget <> None then None
        else if eligible v && partial_ok fg ~k group v then
          match shrink state v with
          | Some state' -> go (v :: group) (size + 1) state' rest
          | None -> go group size state rest
        else go group size state rest
  in
  go [ fg.Feasible.q ] 1 init (candidates_by_distance fg)

let greedy_sgq ?(budget = Budget.unlimited) (instance : Query.instance)
    (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  if Budget.check budget <> None then None
  else
  let fg = Feasible.extract instance ~s:query.s in
  if query.p = 1 then Some { Query.attendees = [ instance.initiator ]; total_distance = 0. }
  else
    greedy_social fg ~p:query.p ~k:query.k ~eligible:(fun _ -> true)
      ~shrink:(fun () _ -> Some ())
      ~init:() ~budget
    |> Option.map (fun (group, ()) ->
           {
             Query.attendees = Feasible.originals fg group;
             total_distance = Feasible.total_distance fg group;
           })

(* Temporal runs around a pivot, shared by greedy and beam. *)
let pivot_runs fg ~m ~avail pivot =
  let h = Timetable.Availability.horizon avail.(fg.Feasible.q) in
  let ilo, ihi = Timetable.Window.interval ~horizon:h ~m pivot in
  let run v =
    match Timetable.Availability.run_around avail.(v) pivot with
    | Some (lo, hi) -> (max lo ilo, min hi ihi)
    | None -> (1, 0)
  in
  Array.init (Feasible.size fg) run

let greedy_stgq ?(budget = Budget.unlimited) (ti : Query.temporal_instance)
    (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let fg = Feasible.extract ti.social ~s:query.s in
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let avail = Array.map (fun orig -> ti.schedules.(orig)) fg.Feasible.of_sub in
  let best = ref None in
  let consider group start =
    let td = Feasible.total_distance fg group in
    match !best with
    | Some (btd, _, _) when btd <= td +. 1e-12 -> ()
    | _ -> best := Some (td, group, start)
  in
  List.iter
    (fun pivot ->
      let runs = pivot_runs fg ~m:query.m ~avail pivot in
      let len (lo, hi) = hi - lo + 1 in
      (* Per-pivot budget poll: tripped => remaining pivots are skipped
         and the best answer so far stands. *)
      if Budget.check budget = None && len runs.(fg.Feasible.q) >= query.m then begin
        let shrink (lo, hi) v =
          let rlo, rhi = runs.(v) in
          let lo' = max lo rlo and hi' = min hi rhi in
          if hi' - lo' + 1 >= query.m then Some (lo', hi') else None
        in
        let start_state = runs.(fg.Feasible.q) in
        let result =
          if query.p = 1 then Some ([ fg.Feasible.q ], start_state)
          else
            greedy_social fg ~p:query.p ~k:query.k
              ~eligible:(fun v -> len runs.(v) >= query.m)
              ~shrink ~init:start_state ~budget
        in
        match result with
        | Some (group, (lo, _)) -> consider group lo
        | None -> ()
      end)
    (Timetable.Window.pivots ~horizon ~m:query.m);
  Option.map
    (fun (td, group, start) ->
      {
        Query.st_attendees = Feasible.originals fg group;
        st_total_distance = td;
        start_slot = start;
      })
    !best

(* ------------------------------------------------------------------ *)
(* Beam search.                                                        *)

type 'state beam_node = {
  group : int list;
  size : int;
  td : float;
  next : int;      (* next candidate index: enumerate each set once *)
  state : 'state;  (* temporal interval, or unit *)
}

let beam_social fg ~p ~k ~width ~eligible ~shrink ~init_state ~budget =
  let cands = Array.of_list (candidates_by_distance fg) in
  let f = Array.length cands in
  let cmp a b = compare (a.td, a.group) (b.td, b.group) in
  let level =
    ref [ { group = [ fg.Feasible.q ]; size = 1; td = 0.; next = 0; state = init_state } ]
  in
  let result = ref None in
  (* Per-level budget poll: a beam level is polynomial work, so a trip is
     observed promptly without a per-candidate check. *)
  while !result = None && !level <> [] && Budget.check budget = None do
    let keep = Pqueue.Bounded.create ~capacity:width ~cmp in
    List.iter
      (fun node ->
        for i = node.next to f - 1 do
          let v = cands.(i) in
          if eligible v && partial_ok fg ~k node.group v then
            match shrink node.state v with
            | Some state' ->
                ignore
                  (Pqueue.Bounded.add keep
                     {
                       group = v :: node.group;
                       size = node.size + 1;
                       td = node.td +. fg.Feasible.dist.(v);
                       next = i + 1;
                       state = state';
                     }
                    : bool)
            | None -> ()
        done)
      !level;
    let next_level = Pqueue.Bounded.to_sorted_list keep in
    (match next_level with
    | best :: _ when best.size = p -> result := Some best
    | _ -> ());
    level := (if (match next_level with n :: _ -> n.size = p | [] -> true) then [] else next_level)
  done;
  !result

let beam_sgq ?(width = 32) ?ctx ?(budget = Budget.unlimited)
    (instance : Query.instance) (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  if width < 1 then invalid_arg "Heuristics.beam_sgq: width must be >= 1";
  let ctx =
    match ctx with
    | Some c ->
        Engine.Context.ensure_for c ~initiator:instance.Query.initiator ~s:query.s;
        c
    | None -> Feasible.context_of_instance instance ~s:query.s
  in
  let fg = ctx.Engine.Context.fg in
  if query.p = 1 then Some { Query.attendees = [ instance.initiator ]; total_distance = 0. }
  else
    beam_social fg ~p:query.p ~k:query.k ~width ~eligible:(fun _ -> true)
      ~shrink:(fun () _ -> Some ())
      ~init_state:() ~budget
    |> Option.map (fun node ->
           {
             Query.attendees = Feasible.originals fg node.group;
             total_distance = node.td;
           })

let beam_stgq ?(width = 32) ?ctx ?(budget = Budget.unlimited)
    (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  if width < 1 then invalid_arg "Heuristics.beam_stgq: width must be >= 1";
  let ctx =
    match ctx with
    | Some c ->
        Engine.Context.ensure_for c ~initiator:ti.social.Query.initiator ~s:query.s;
        c
    | None -> Feasible.context_of_temporal ti ~s:query.s
  in
  let fg = ctx.Engine.Context.fg in
  let avail = ctx.Engine.Context.avail in
  let best = ref None in
  List.iter
    (fun pivot ->
      let runs = pivot_runs fg ~m:query.m ~avail pivot in
      let len (lo, hi) = hi - lo + 1 in
      (* Per-pivot budget poll: tripped => remaining pivots are skipped
         and the best answer so far stands. *)
      if Budget.check budget = None && len runs.(fg.Feasible.q) >= query.m then begin
        let shrink (lo, hi) v =
          let rlo, rhi = runs.(v) in
          let lo' = max lo rlo and hi' = min hi rhi in
          if hi' - lo' + 1 >= query.m then Some (lo', hi') else None
        in
        let found =
          if query.p = 1 then
            Some
              {
                group = [ fg.Feasible.q ];
                size = 1;
                td = 0.;
                next = 0;
                state = runs.(fg.Feasible.q);
              }
          else
            beam_social fg ~p:query.p ~k:query.k ~width
              ~eligible:(fun v -> len runs.(v) >= query.m)
              ~shrink ~init_state:runs.(fg.Feasible.q) ~budget
        in
        match found with
        | Some node -> (
            let lo, _ = node.state in
            match !best with
            | Some (btd, _, _) when btd <= node.td +. 1e-12 -> ()
            | _ -> best := Some (node.td, node.group, lo))
        | None -> ()
      end)
    (Engine.Context.pivots ctx ~m:query.m);
  Option.map
    (fun (td, group, start) ->
      {
        Query.st_attendees = Feasible.originals fg group;
        st_total_distance = td;
        start_slot = start;
      })
    !best

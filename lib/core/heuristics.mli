(** Inexact solvers for instances beyond exact reach.

    SGQ/STGQ are NP-hard; SGSelect/STGSelect are exponential in the worst
    case.  For very large feasible graphs or tight latency budgets these
    heuristics trade optimality for a polynomial bound:

    - {b greedy}: scan candidates in ascending social distance, admit a
      candidate whenever the partial group still satisfies the
      acquaintance bound (and, temporally, still shares an [m]-window).
      O(f·p) adjacency work; may fail where a solution exists.
    - {b beam}: breadth-first over partial groups keeping the [width]
      best per level, scored by current distance plus an optimistic
      completion bound.  Approaches the optimum as [width] grows;
      [width = 1] ≈ greedy, a few dozen is usually near-exact.

    Both return constraint-valid solutions only (checked by the same
    monotone feasibility predicates the exact search uses); their
    distance is an upper bound on the optimum — benchmarked against exact
    in the harness's quality table. *)

(** All four heuristics accept an optional {!Budget}: polled per pivot
    slot / beam level, a trip ends the scan early and the best answer
    found so far (possibly [None]) is returned — heuristics are
    best-effort by definition, so truncation needs no separate marker. *)

(** [greedy_sgq instance query] — greedy SGQ. *)
val greedy_sgq :
  ?budget:Budget.t -> Query.instance -> Query.sgq -> Query.sg_solution option

(** [greedy_stgq ti query] — greedy STGQ: per pivot slot, greedy over the
    members available there; best pivot wins. *)
val greedy_stgq :
  ?budget:Budget.t -> Query.temporal_instance -> Query.stgq ->
  Query.stg_solution option

(** [beam_sgq ?width ?ctx instance query] — beam-search SGQ ([width]
    default 32).  [ctx] supplies a pre-built engine context matching
    [instance] and [query.s]. *)
val beam_sgq :
  ?width:int -> ?ctx:Engine.Context.t -> ?budget:Budget.t ->
  Query.instance -> Query.sgq -> Query.sg_solution option

(** [beam_stgq ?width ?ctx ti query] — beam-search STGQ over pivot
    slots; [ctx] as in {!beam_sgq}. *)
val beam_stgq :
  ?width:int -> ?ctx:Engine.Context.t -> ?budget:Budget.t ->
  Query.temporal_instance -> Query.stgq -> Query.stg_solution option

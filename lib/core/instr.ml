(* Metric handles for the search and serving layers.  Handles are
   interned once at module init; recording is gated by [Obs.enabled]
   inside Obs itself, so referencing these is free while disabled. *)

let search_solves = Obs.counter "search.solves"

let search_nodes = Obs.counter "search.nodes"

let search_examined = Obs.counter "search.examined"

let search_includes = Obs.counter "search.includes"

let search_deferred = Obs.counter "search.deferred"

let pruned_distance = Obs.counter "search.pruned.distance"

let pruned_acquaintance = Obs.counter "search.pruned.acquaintance"

let pruned_availability = Obs.counter "search.pruned.availability"

let removed_exterior = Obs.counter "search.removed.exterior"

let removed_interior = Obs.counter "search.removed.interior"

let removed_temporal = Obs.counter "search.removed.temporal"

let sgq_latency = Obs.histogram "service.sgq.latency_ns"

let stgq_latency = Obs.histogram "service.stgq.latency_ns"

let certify_latency = Obs.histogram "service.certify.latency_ns"

(* Bridge one solve's per-call [Search_core.stats] record into the
   registry.  The hot search loop keeps mutating its private record;
   only this one batched publish pays for atomics, keeping
   instrumentation overhead off the per-node path. *)
let record_search (st : Search_core.stats) =
  if Obs.enabled () then begin
    Obs.Counter.incr search_solves;
    Obs.Counter.add search_nodes st.Search_core.nodes;
    Obs.Counter.add search_examined st.Search_core.examined;
    Obs.Counter.add search_includes st.Search_core.includes;
    Obs.Counter.add search_deferred st.Search_core.deferred;
    Obs.Counter.add pruned_distance st.Search_core.pruned_distance;
    Obs.Counter.add pruned_acquaintance st.Search_core.pruned_acquaintance;
    Obs.Counter.add pruned_availability st.Search_core.pruned_availability;
    Obs.Counter.add removed_exterior st.Search_core.removed_exterior;
    Obs.Counter.add removed_interior st.Search_core.removed_interior;
    Obs.Counter.add removed_temporal st.Search_core.removed_temporal
  end;
  (* The same batch, attached to the enclosing solve span: the pruning
     waterfall (Obs.Trace.waterfall) folds these attrs back out of the
     stitched tree.  Gated separately so tracing works with the metric
     registry off and vice versa. *)
  if Obs.Trace.enabled () then
    Obs.Trace.add_attrs
      [
        ("search.solves", "1");
        ("search.nodes", string_of_int st.Search_core.nodes);
        ("search.examined", string_of_int st.Search_core.examined);
        ("search.includes", string_of_int st.Search_core.includes);
        ("search.deferred", string_of_int st.Search_core.deferred);
        ("search.pruned.distance", string_of_int st.Search_core.pruned_distance);
        ( "search.pruned.acquaintance",
          string_of_int st.Search_core.pruned_acquaintance );
        ( "search.pruned.availability",
          string_of_int st.Search_core.pruned_availability );
        ("search.removed.exterior", string_of_int st.Search_core.removed_exterior);
        ("search.removed.interior", string_of_int st.Search_core.removed_interior);
        ("search.removed.temporal", string_of_int st.Search_core.removed_temporal);
      ]

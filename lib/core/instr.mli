(** Registered metric handles for the search and serving layers.

    Naming scheme (see docs/OBSERVABILITY.md):
    - [search.*] — branch-and-bound work and pruning-rule savings,
      published once per solve by {!record_search};
    - [service.*.latency_ns] — per-query latency histograms, observed
      by [Service] via {!Obs.time_hist}. *)

val search_solves : Obs.Counter.t

val search_nodes : Obs.Counter.t

val search_examined : Obs.Counter.t

val search_includes : Obs.Counter.t

val search_deferred : Obs.Counter.t

val pruned_distance : Obs.Counter.t

val pruned_acquaintance : Obs.Counter.t

val pruned_availability : Obs.Counter.t

val removed_exterior : Obs.Counter.t

val removed_interior : Obs.Counter.t

val removed_temporal : Obs.Counter.t

val sgq_latency : Obs.Histogram.t

val stgq_latency : Obs.Histogram.t

val certify_latency : Obs.Histogram.t

(** [record_search st] adds one solve's [Search_core.stats] to the
    [search.*] counters (no-op while instrumentation is disabled), and
    — when tracing is on — attaches the same batch as [search.*] attrs
    to the enclosing solve span, where [Obs.Trace.waterfall] folds it
    back into the per-query pruning profile.  Call it once per
    completed solve, on whichever domain ran it. *)
val record_search : Search_core.stats -> unit

type form = Group_form | Full_form

type 'a outcome = {
  result : 'a option;
  ilp_stats : Ilp.stats;
}

(* ------------------------------------------------------------------ *)
(* Shared pieces.  All variable indices are built over the feasible
   graph's sub-ids; φ_u occupies slot [u] in every formulation, so the
   extraction code below is formulation-agnostic. *)

(* Constraints (1)-(3): cardinality, initiator membership, acquaintance. *)
let social_constraints fg ~p ~k =
  let size = Feasible.size fg in
  let all_phi = List.init size (fun u -> (u, 1.)) in
  let cardinality = Lp.constr all_phi Lp.Eq (float_of_int p) in
  let initiator = Lp.constr [ (fg.Feasible.q, 1.) ] Lp.Eq 1. in
  let acquaintance u =
    (* Σ_{v∈N(u)} φ_v >= (p-1) φ_u - k *)
    let nbrs = Bitset.fold (fun v acc -> (v, 1.) :: acc) fg.Feasible.nbr.(u) [] in
    Lp.constr ((u, -.float_of_int (p - 1)) :: nbrs) Lp.Ge (-.float_of_int k)
  in
  cardinality :: initiator :: List.init size acquaintance

(* Temporal constraints (9)-(10) over start-slot variables τ_t, given the
   variable index of τ_t as [tau t].  Constraint (10) rows are emitted
   only where a_{u,t̂} = 0 (they are vacuous otherwise).  [literal] keeps
   one row per (u, t, t̂) as printed; otherwise rows are merged per (u, t). *)
let temporal_constraints fg ~m ~avail ~starts ~tau ~literal =
  let size = Feasible.size fg in
  let one_per_activity =
    Lp.constr (List.map (fun t -> (tau t, 1.)) starts) Lp.Eq 1.
  in
  let rows = ref [ one_per_activity ] in
  List.iter
    (fun t ->
      for u = 0 to size - 1 do
        if literal then
          for t_hat = t to t + m - 1 do
            if not (Timetable.Availability.available avail.(u) t_hat) then
              (* φ_u <= 1 - τ_t + 0 *)
              rows := Lp.constr [ (u, 1.); (tau t, 1.) ] Lp.Le 1. :: !rows
          done
        else if not (Timetable.Availability.window_free avail.(u) ~start:t ~len:m)
        then rows := Lp.constr [ (u, 1.); (tau t, 1.) ] Lp.Le 1. :: !rows
      done)
    starts;
  !rows

(* Constraints (4)-(8) of the full form: shortest-path flows per target.
   Returns the extra constraints plus the number of flow/distance
   variables appended after the φ block. *)
let path_constraints fg ~s ~delta ~pi =
  let size = Feasible.size fg in
  let q = fg.Feasible.q in
  let edges = Socgraph.Graph.edges fg.Feasible.sub in
  let rows = ref [] in
  for u = 0 to size - 1 do
    if u <> q then begin
      (* (4): flow leaves q iff u is selected. *)
      let out_q =
        Socgraph.Graph.fold_neighbors fg.Feasible.sub q
          (fun i _ acc -> (pi ~u ~from:q ~into:i, 1.) :: acc)
          []
      in
      rows := Lp.constr ((u, -1.) :: out_q) Lp.Eq 0. :: !rows;
      (* (5): flow enters u iff u is selected. *)
      let in_u =
        Socgraph.Graph.fold_neighbors fg.Feasible.sub u
          (fun i _ acc -> (pi ~u ~from:i ~into:u, 1.) :: acc)
          []
      in
      rows := Lp.constr ((u, -1.) :: in_u) Lp.Eq 0. :: !rows;
      (* (6): conservation at every other vertex. *)
      for j = 0 to size - 1 do
        if j <> q && j <> u then begin
          let terms =
            Socgraph.Graph.fold_neighbors fg.Feasible.sub j
              (fun i _ acc ->
                (pi ~u ~from:i ~into:j, 1.) :: (pi ~u ~from:j ~into:i, -1.) :: acc)
              []
          in
          rows := Lp.constr terms Lp.Eq 0. :: !rows
        end
      done;
      (* (7): δ_u equals the selected path's length. *)
      let dist_terms =
        List.concat_map
          (fun (i, j, w) ->
            [ (pi ~u ~from:i ~into:j, w); (pi ~u ~from:j ~into:i, w) ])
          edges
      in
      rows := Lp.constr ((delta u, -1.) :: dist_terms) Lp.Eq 0. :: !rows;
      (* (8): at most s edges on the path. *)
      let hop_terms =
        List.concat_map
          (fun (i, j, _) ->
            [ (pi ~u ~from:i ~into:j, 1.); (pi ~u ~from:j ~into:i, 1.) ])
          edges
      in
      rows := Lp.constr hop_terms Lp.Le (float_of_int s) :: !rows
    end
  done;
  !rows

(* ------------------------------------------------------------------ *)
(* Model assembly.                                                     *)

type layout = {
  n_vars : int;
  kinds : Ilp.var_kind array;
  objective : (int * float) list;
  extra : Lp.constr list;  (** constraints beyond the social ones *)
}

(* Group form: φ only, objective Σ d_u φ_u with precomputed distances. *)
let group_layout fg ~tau_count =
  let size = Feasible.size fg in
  let n_vars = size + tau_count in
  {
    n_vars;
    kinds = Array.make n_vars Ilp.Binary;
    objective =
      List.init size (fun u -> (u, fg.Feasible.dist.(u)))
      |> List.filter (fun (_, d) -> d <> 0.);
    extra = [];
  }

(* Full form: φ (binary) + δ (continuous) + π (binary per target and
   directed edge) + τ at the tail. *)
let full_layout fg ~s ~tau_count =
  let size = Feasible.size fg in
  let edges = Socgraph.Graph.edges fg.Feasible.sub in
  let n_edges = List.length edges in
  (* Directed-edge index: 2e for (i->j) with i<j, 2e+1 for the reverse. *)
  let edge_index = Hashtbl.create (2 * n_edges) in
  List.iteri
    (fun e (i, j, _) ->
      Hashtbl.replace edge_index (i, j) (2 * e);
      Hashtbl.replace edge_index (j, i) ((2 * e) + 1))
    edges;
  let pi_block = size in
  let delta u = size + (2 * n_edges * size) + u in
  let pi ~u ~from ~into =
    match Hashtbl.find_opt edge_index (from, into) with
    | Some d -> pi_block + (u * 2 * n_edges) + d
    | None -> invalid_arg "Ip_model: pi over a non-edge"
  in
  let n_vars = size + (2 * n_edges * size) + size + tau_count in
  let kinds = Array.make n_vars Ilp.Binary in
  for u = 0 to size - 1 do
    kinds.(delta u) <- Ilp.Continuous
  done;
  {
    n_vars;
    kinds;
    objective = List.init size (fun u -> (delta u, 1.));
    extra = path_constraints fg ~s ~delta ~pi;
  }

let tau_offset layout tau_count = layout.n_vars - tau_count

let extract_group fg solution =
  let group = ref [] in
  for u = Feasible.size fg - 1 downto 0 do
    if solution.(u) > 0.5 then group := u :: !group
  done;
  !group

let run_ilp ?node_limit layout constraints =
  let model =
    {
      Ilp.kinds = layout.kinds;
      sense = Lp.Minimize;
      objective = layout.objective;
      constraints = constraints @ layout.extra;
    }
  in
  Ilp.solve ?node_limit model

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

let solve_sgq ?(form = Group_form) ?node_limit instance (query : Query.sgq) =
  Query.check_sgq query;
  Query.check_instance instance;
  let fg = Feasible.extract instance ~s:query.s in
  let layout =
    match form with
    | Group_form -> group_layout fg ~tau_count:0
    | Full_form -> full_layout fg ~s:query.s ~tau_count:0
  in
  let constraints = social_constraints fg ~p:query.p ~k:query.k in
  match run_ilp ?node_limit layout constraints with
  | Ilp.Unbounded -> assert false (* binary model with bounded objective *)
  | Ilp.Infeasible st -> { result = None; ilp_stats = st }
  | Ilp.Optimal { solution; stats; _ } ->
      let group = extract_group fg solution in
      {
        result =
          Some
            {
              Query.attendees = Feasible.originals fg group;
              total_distance = Feasible.total_distance fg group;
            };
        ilp_stats = stats;
      }

let solve_stgq ?(form = Group_form) ?node_limit (ti : Query.temporal_instance)
    (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let fg = Feasible.extract ti.social ~s:query.s in
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let avail = Array.map (fun orig -> ti.schedules.(orig)) fg.Feasible.of_sub in
  (* Only starts where the initiator is available can carry τ_t = 1
     (φ_q = 1 plus constraint (10) forbids the rest anyway). *)
  let starts =
    List.init (max 0 (horizon - query.m + 1)) Fun.id
    |> List.filter (fun t ->
           Timetable.Availability.window_free avail.(fg.Feasible.q) ~start:t
             ~len:query.m)
  in
  if starts = [] then
    { result = None; ilp_stats = { Ilp.nodes_explored = 0; lp_solves = 0 } }
  else begin
    let tau_count = List.length starts in
    let layout, literal =
      match form with
      | Group_form -> (group_layout fg ~tau_count, false)
      | Full_form -> (full_layout fg ~s:query.s ~tau_count, true)
    in
    let offset = tau_offset layout tau_count in
    let start_arr = Array.of_list starts in
    let index_of_start = Hashtbl.create tau_count in
    Array.iteri (fun i t -> Hashtbl.replace index_of_start t i) start_arr;
    let tau t =
      match Hashtbl.find_opt index_of_start t with
      | Some i -> offset + i
      | None -> invalid_arg (Printf.sprintf "Ip_model: unknown window start %d" t)
    in
    let constraints =
      social_constraints fg ~p:query.p ~k:query.k
      @ temporal_constraints fg ~m:query.m ~avail ~starts ~tau ~literal
    in
    match run_ilp ?node_limit layout constraints with
    | Ilp.Unbounded -> assert false
    | Ilp.Infeasible st -> { result = None; ilp_stats = st }
    | Ilp.Optimal { solution; stats; _ } ->
        let group = extract_group fg solution in
        let start =
          let found = ref (-1) in
          Array.iteri
            (fun i t -> if !found < 0 && solution.(offset + i) > 0.5 then found := t)
            start_arr;
          !found
        in
        {
          result =
            Some
              {
                Query.st_attendees = Feasible.originals fg group;
                st_total_distance = Feasible.total_distance fg group;
                start_slot = start;
              };
          ilp_stats = stats;
        }
  end

type report = {
  solution : Query.stg_solution option;
  domains_used : int;
  total_nodes : int;
}

let log = Logs.Src.create "stgq.parallel" ~doc:"Multicore STGSelect"

module Log = (val Logs.src_log log)

let round_robin chunks items =
  let buckets = Array.make chunks [] in
  List.iteri (fun i x -> buckets.(i mod chunks) <- x :: buckets.(i mod chunks)) items;
  Array.map List.rev buckets

let prepare ?ctx (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let ctx =
    match ctx with
    | Some c ->
        Engine.Context.ensure_for c ~initiator:ti.social.Query.initiator ~s:query.s;
        c
    | None -> Feasible.context_of_temporal ti ~s:query.s
  in
  (ctx, Engine.Context.pivots ctx ~m:query.m)

let bucket_job ~config ctx (query : Query.stgq) bucket () =
  let stats = Search_core.fresh_stats () in
  let found =
    Search_core.solve_temporal ctx ~p:query.p ~k:query.k ~m:query.m ~pivots:bucket
      ~config ~stats
  in
  (* Runs on a worker domain; counters are per-domain sharded, so this
     publish never contends with sibling buckets. *)
  Instr.record_search stats;
  (found, stats.Search_core.nodes)

let finish ctx ~n_domains results =
  let total_nodes = List.fold_left (fun acc (_, n) -> acc + n) 0 results in
  let key (f : Search_core.found) =
    (f.distance, f.window_start, List.sort compare f.group)
  in
  let best =
    List.fold_left
      (fun acc (found, _) ->
        match (acc, found) with
        | None, f -> f
        | Some a, Some b -> if key b < key a then Some b else Some a
        | Some a, None -> Some a)
      None results
  in
  let solution =
    match best with
    | None -> None
    | Some f -> (
        match Search_core.temporal_solution ctx.Engine.Context.fg f with
        | Ok s -> Some s
        | Error (Search_core.Missing_window _) ->
            Log.err (fun m_ ->
                m_ "temporal search delivered a group without a window start; \
                    dropping the (invalid) answer");
            None)
  in
  { solution; domains_used = n_domains; total_nodes }

let solve_report ?(config = Search_core.default_config) ?domains ?pool ?ctx
    (ti : Query.temporal_instance) (query : Query.stgq) =
  let ctx, pivots = prepare ?ctx ti query in
  let pool = match pool with Some p -> p | None -> Engine.Pool.default () in
  let wanted =
    match domains with Some d -> max 1 d | None -> Engine.Pool.size pool
  in
  let n_domains = max 1 (min wanted (List.length pivots)) in
  let buckets = round_robin n_domains pivots in
  let jobs =
    Array.to_list (Array.map (fun bucket -> bucket_job ~config ctx query bucket) buckets)
  in
  finish ctx ~n_domains (Engine.Pool.run pool jobs)

let solve ?config ?domains ?pool ?ctx ti query =
  (solve_report ?config ?domains ?pool ?ctx ti query).solution

(* The seed's serving path, kept as the benchmark baseline: extract the
   feasible graph afresh unless a context is supplied, and spawn/join a
   fresh domain per bucket on every call. *)
let solve_report_unpooled ?(config = Search_core.default_config) ?domains ?ctx
    (ti : Query.temporal_instance) (query : Query.stgq) =
  let ctx, pivots = prepare ?ctx ti query in
  let wanted =
    match domains with Some d -> max 1 d | None -> Domain.recommended_domain_count ()
  in
  let n_domains = max 1 (min wanted (List.length pivots)) in
  let buckets = round_robin n_domains pivots in
  let handles =
    Array.map (fun bucket -> Domain.spawn (bucket_job ~config ctx query bucket)) buckets
  in
  finish ctx ~n_domains (Array.to_list (Array.map Domain.join handles))

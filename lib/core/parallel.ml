type report = {
  solution : Query.stg_solution option;
  outcome : Query.stg_solution Anytime.outcome;
  domains_used : int;
  total_nodes : int;
}

let log = Logs.Src.create "stgq.parallel" ~doc:"Multicore STGSelect"

module Log = (val Logs.src_log log)

let round_robin chunks items =
  let buckets = Array.make chunks [] in
  List.iteri (fun i x -> buckets.(i mod chunks) <- x :: buckets.(i mod chunks)) items;
  Array.map List.rev buckets

let prepare ?ctx (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let ctx =
    match ctx with
    | Some c ->
        Engine.Context.ensure_for c ~initiator:ti.social.Query.initiator ~s:query.s;
        c
    | None -> Feasible.context_of_temporal ti ~s:query.s
  in
  (ctx, Engine.Context.pivots ctx ~m:query.m)

(* Every bucket shares one budget: node charges aggregate across domains
   and the first trip latches, so a deadline hit in one bucket is
   observed by its siblings at their next checkpoint — a cancelled batch
   cannot strand in-flight buckets. *)
let bucket_job ~config ~budget ctx (query : Query.stgq) bucket () =
  Obs.Trace.with_span "parallel.bucket"
    ~attrs:[ ("pivots", string_of_int (List.length bucket)) ]
  @@ fun () ->
  let stats = Search_core.fresh_stats () in
  let out =
    Search_core.solve_temporal_out ~budget ctx ~p:query.p ~k:query.k ~m:query.m
      ~pivots:bucket ~config ~stats
  in
  (* Runs on a worker domain; counters are per-domain sharded, so this
     publish never contends with sibling buckets.  The search-stat attrs
     land on this bucket's span. *)
  Instr.record_search stats;
  (out, stats.Search_core.nodes)

let finish ctx ~n_domains ~(query : Query.stgq) ~budget results =
  let total_nodes = List.fold_left (fun acc (_, n) -> acc + n) 0 results in
  let key (f : Search_core.found) =
    (f.distance, f.window_start, List.sort compare f.group)
  in
  let best =
    List.fold_left
      (fun acc (out, _) ->
        match (acc, Anytime.solution out) with
        | None, f -> f
        | Some a, Some b -> if key b < key a then Some b else Some a
        | Some a, None -> Some a)
      None results
  in
  let completion =
    if List.for_all (fun (out, _) -> Anytime.complete out) results then None
    else
      match Budget.tripped budget with
      | Some _ as r -> r
      | None -> List.find_map (fun (out, _) -> Anytime.reason out) results
  in
  let gap_of (f : Search_core.found) =
    let lb =
      Search_core.completion_lower_bound ctx.Engine.Context.fg ~p:query.p
        ~eligible:(fun _ -> true)
    in
    Float.max 0. (f.distance -. lb)
  in
  let found_outcome = Anytime.make ~completion ~gap_of best in
  let outcome = Stgselect.convert_outcome ctx.Engine.Context.fg found_outcome in
  (match Anytime.reason outcome with
  | Some reason ->
      Log.debug (fun m_ ->
          m_ "parallel solve truncated (%s) after %d nodes"
            (Budget.reason_name reason) total_nodes)
  | None -> ());
  { solution = Anytime.solution outcome; outcome; domains_used = n_domains; total_nodes }

let solve_report ?(config = Search_core.default_config) ?domains ?pool ?ctx
    ?(budget = Budget.unlimited) (ti : Query.temporal_instance)
    (query : Query.stgq) =
  Obs.Trace.with_span "parallel.solve"
    ~attrs:
      [
        ("p", string_of_int query.p);
        ("k", string_of_int query.k);
        ("m", string_of_int query.m);
      ]
  @@ fun () ->
  let ctx, pivots = prepare ?ctx ti query in
  let pool = match pool with Some p -> p | None -> Engine.Pool.default () in
  let wanted =
    match domains with Some d -> max 1 d | None -> Engine.Pool.size pool
  in
  let n_domains = max 1 (min wanted (List.length pivots)) in
  Obs.Trace.add_attrs [ ("domains", string_of_int n_domains) ];
  let buckets = round_robin n_domains pivots in
  let jobs =
    Array.to_list
      (Array.map (fun bucket -> bucket_job ~config ~budget ctx query bucket) buckets)
  in
  finish ctx ~n_domains ~query ~budget
    (Engine.Pool.await_all (List.map (Engine.Pool.submit pool) jobs))

let solve ?config ?domains ?pool ?ctx ?budget ti query =
  (solve_report ?config ?domains ?pool ?ctx ?budget ti query).solution

(* The seed's serving path, kept as the benchmark baseline: extract the
   feasible graph afresh unless a context is supplied, and spawn/join a
   fresh domain per bucket on every call. *)
let solve_report_unpooled ?(config = Search_core.default_config) ?domains ?ctx
    (ti : Query.temporal_instance) (query : Query.stgq) =
  Obs.Trace.with_span "parallel.solve"
    ~attrs:
      [
        ("p", string_of_int query.p);
        ("k", string_of_int query.k);
        ("m", string_of_int query.m);
        ("pooled", "false");
      ]
  @@ fun () ->
  let ctx, pivots = prepare ?ctx ti query in
  let budget = Budget.unlimited in
  let wanted =
    match domains with Some d -> max 1 d | None -> Domain.recommended_domain_count ()
  in
  let n_domains = max 1 (min wanted (List.length pivots)) in
  Obs.Trace.add_attrs [ ("domains", string_of_int n_domains) ];
  let buckets = round_robin n_domains pivots in
  (* Fresh domains have a fresh span stack, so propagation is by hand
     here (the pooled path gets it from Engine.Pool.submit). *)
  let tctx = Obs.Trace.current () in
  let handles =
    Array.map
      (fun bucket ->
        Domain.spawn (fun () ->
            Obs.Trace.with_ctx tctx (bucket_job ~config ~budget ctx query bucket)))
      buckets
  in
  finish ctx ~n_domains ~query ~budget
    (Array.to_list (Array.map Domain.join handles))

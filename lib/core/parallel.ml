type report = {
  solution : Query.stg_solution option;
  domains_used : int;
  total_nodes : int;
}

let log = Logs.Src.create "stgq.parallel" ~doc:"Multicore STGSelect"

module Log = (val Logs.src_log log)

let round_robin chunks items =
  let buckets = Array.make chunks [] in
  List.iteri (fun i x -> buckets.(i mod chunks) <- x :: buckets.(i mod chunks)) items;
  Array.map List.rev buckets

let solve_report ?(config = Search_core.default_config) ?domains
    (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let fg = Feasible.extract ti.social ~s:query.s in
  let horizon = Timetable.Availability.horizon ti.schedules.(0) in
  let avail = Array.map (fun orig -> ti.schedules.(orig)) fg.Feasible.of_sub in
  let pivots = Timetable.Window.pivots ~horizon ~m:query.m in
  let wanted =
    match domains with Some d -> max 1 d | None -> Domain.recommended_domain_count ()
  in
  let n_domains = max 1 (min wanted (List.length pivots)) in
  let buckets = round_robin n_domains pivots in
  let run bucket =
    let stats = Search_core.fresh_stats () in
    let found =
      Search_core.solve_temporal fg ~p:query.p ~k:query.k ~m:query.m ~horizon ~avail
        ~pivots:bucket ~config ~stats
    in
    (found, stats.Search_core.nodes)
  in
  let handles =
    Array.map (fun bucket -> Domain.spawn (fun () -> run bucket)) buckets
  in
  let results = Array.map Domain.join handles in
  let total_nodes = Array.fold_left (fun acc (_, n) -> acc + n) 0 results in
  let key (f : Search_core.found) =
    (f.distance, f.window_start, List.sort compare f.group)
  in
  let best =
    Array.fold_left
      (fun acc (found, _) ->
        match (acc, found) with
        | None, f -> f
        | Some a, Some b -> if key b < key a then Some b else Some a
        | Some a, None -> Some a)
      None results
  in
  let solution =
    match best with
    | None -> None
    | Some f -> (
        match Search_core.temporal_solution fg f with
        | Ok s -> Some s
        | Error (Search_core.Missing_window _) ->
            Log.err (fun m_ ->
                m_ "temporal search delivered a group without a window start; \
                    dropping the (invalid) answer");
            None)
  in
  { solution; domains_used = n_domains; total_nodes }

let solve ?config ?domains ti query = (solve_report ?config ?domains ti query).solution

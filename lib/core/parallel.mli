(** Multicore STGSelect: pivot time slots fanned out across domains.

    The paper observes (§5.2) that CPLEX exploits its 8 cores while
    SGSelect/STGSelect are single-threaded; pivot slots are embarrassingly
    parallel, so this extension closes that gap.  Each task owns a full
    search state over a disjoint pivot subset (round-robin, so busy
    regions spread out); the engine context is shared read-only.  The
    incumbent bound is not shared across tasks — each explores slightly
    more than the sequential run, the classic work-vs-parallelism trade
    measured by ablation A6.

    Buckets run on a persistent {!Engine.Pool} (the process-wide default
    pool unless one is passed), so repeated queries reuse warm domains
    instead of paying spawn/join per call. *)

type report = {
  solution : Query.stg_solution option;
      (** the carried answer ([= Anytime.solution outcome]) *)
  outcome : Query.stg_solution Anytime.outcome;
      (** merged across buckets: [Optimal] only when every bucket ran to
          completion; otherwise the best answer any bucket delivered,
          with reason and gap (see {!Anytime}) *)
  domains_used : int;
  total_nodes : int;  (** summed across domains *)
}

(** [solve ?config ?domains ?pool ?ctx ?budget ti query] — the bucket
    count defaults to the pool's size (itself defaulting to
    [Domain.recommended_domain_count ()]), capped by the pivot count;
    [domains] overrides it.  [ctx] supplies a pre-built engine context
    (see {!Stgselect.solve}).  Result ties are broken by (distance,
    start slot, attendees), making the outcome deterministic and equal
    in distance to {!Stgselect}.

    One [budget] is shared by every bucket: node charges aggregate
    across domains and the first trip (deadline, node limit, or
    {!Budget.cancel}) latches for all of them, so a cancelled batch
    cannot strand its in-flight sibling buckets. *)
val solve :
  ?config:Search_core.config -> ?domains:int -> ?pool:Engine.Pool.t ->
  ?ctx:Engine.Context.t -> ?budget:Budget.t ->
  Query.temporal_instance -> Query.stgq -> Query.stg_solution option

val solve_report :
  ?config:Search_core.config -> ?domains:int -> ?pool:Engine.Pool.t ->
  ?ctx:Engine.Context.t -> ?budget:Budget.t ->
  Query.temporal_instance -> Query.stgq -> report

(** [solve_report_unpooled ?config ?domains ?ctx ti query] is the seed
    serving path — a fresh [Domain.spawn]/[Domain.join] per bucket on
    every call — kept as the baseline the bench harness compares the
    pooled path against.  Same answers, same tie-breaking. *)
val solve_report_unpooled :
  ?config:Search_core.config -> ?domains:int -> ?ctx:Engine.Context.t ->
  Query.temporal_instance -> Query.stgq -> report

type update_stats = {
  pivots_total : int;
  pivots_recomputed : int;
}

let log = Logs.Src.create "stgq.planner" ~doc:"Incremental STGQ planner"

module Log = (val Logs.src_log log)

type t = {
  config : Search_core.config;
  query : Query.stgq;
  ctx : Engine.Context.t;
  schedules : Timetable.Availability.t array;
      (* by original vertex id; the context's avail slab aliases these *)
  pivots : int array;
  cache : Search_core.found option array;      (* per-pivot optimum *)
}

let solve_pivot t pivot =
  let stats = Search_core.fresh_stats () in
  Search_core.solve_temporal t.ctx ~p:t.query.Query.p ~k:t.query.Query.k
    ~m:t.query.Query.m ~pivots:[ pivot ] ~config:t.config ~stats

let create ?(config = Search_core.default_config) (ti : Query.temporal_instance)
    (query : Query.stgq) =
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let schedules = Array.map Timetable.Availability.copy ti.schedules in
  let ctx =
    Engine.Context.build ~schedules ti.social.Query.graph
      ~initiator:ti.social.Query.initiator ~s:query.s
  in
  let pivots = Array.of_list (Engine.Context.pivots ctx ~m:query.m) in
  let t =
    { config; query; ctx; schedules; pivots; cache = Array.map (fun _ -> None) pivots }
  in
  Array.iteri (fun i pivot -> t.cache.(i) <- solve_pivot t pivot) pivots;
  t

let solution t =
  let best =
    Array.fold_left
      (fun acc found ->
        match (acc, found) with
        | None, f -> f
        | Some a, Some b ->
            let key (f : Search_core.found) =
              (f.Search_core.distance, f.Search_core.window_start)
            in
            if key b < key a then Some b else Some a
        | Some a, None -> Some a)
      None t.cache
  in
  match best with
  | None -> None
  | Some f -> (
      match Search_core.temporal_solution t.ctx.Engine.Context.fg f with
      | Ok s -> Some s
      | Error (Search_core.Missing_window _) ->
          Log.err (fun m_ ->
              m_ "temporal search delivered a group without a window start; \
                  dropping the (invalid) answer");
          None)

let update_schedule t ~vertex schedule =
  if vertex < 0 || vertex >= Array.length t.schedules then
    invalid_arg "Planner.update_schedule: vertex out of range";
  let horizon = t.ctx.Engine.Context.horizon in
  if Timetable.Availability.horizon schedule <> horizon then
    invalid_arg "Planner.update_schedule: horizon mismatch";
  let old_schedule = t.schedules.(vertex) in
  let changed slot =
    Timetable.Availability.available old_schedule slot
    <> Timetable.Availability.available schedule slot
  in
  let dirty_pivot pivot =
    let lo, hi = Timetable.Window.interval ~horizon ~m:t.query.Query.m pivot in
    let rec scan slot = slot <= hi && (changed slot || scan (slot + 1)) in
    scan lo
  in
  let dirty =
    (* Only members of the feasible graph influence results, but the
       schedule copy is refreshed regardless. *)
    if t.ctx.Engine.Context.fg.Feasible.to_sub.(vertex) < 0 then [||]
    else Array.map dirty_pivot t.pivots
  in
  (* Install the new calendar in place so the sub-id aliases see it. *)
  let bits_new = Timetable.Availability.bits schedule in
  let bits_old = Timetable.Availability.bits old_schedule in
  Bitset.fill bits_old false;
  Bitset.iter (fun slot -> Bitset.set bits_old slot) bits_new;
  let recomputed = ref 0 in
  Array.iteri
    (fun i pivot ->
      if i < Array.length dirty && dirty.(i) then begin
        incr recomputed;
        t.cache.(i) <- solve_pivot t pivot
      end)
    t.pivots;
  { pivots_total = Array.length t.pivots; pivots_recomputed = !recomputed }

let schedules t = Array.map Timetable.Availability.copy t.schedules

let log = Logs.Src.create "stgq.resilience" ~doc:"Degradation ladder"

module Log = (val Logs.src_log log)

type rung = Exact | Anytime_best | Heuristic

let rung_name = function
  | Exact -> "exact"
  | Anytime_best -> "anytime"
  | Heuristic -> "heuristic"

let pp_rung ppf r = Format.pp_print_string ppf (rung_name r)

type policy = {
  deadline_ms : float option;
  node_limit : int option;
  degrade : bool;
  max_retries : int;
  backoff_ms : float;
  seed : int;
}

let default_policy =
  {
    deadline_ms = None;
    node_limit = None;
    degrade = true;
    max_retries = 2;
    backoff_ms = 5.;
    seed = 0x5747;
  }

type 'a answer = {
  value : 'a option;
  rung : rung;
  gap : float option;
  retries : int;
  reason : Budget.reason option;
}

type error =
  | Degraded of { reason : Budget.reason; retries : int }
  | Unavailable of { error : exn; retries : int }

let pp_error ppf = function
  | Degraded { reason; retries } ->
      Format.fprintf ppf "degraded (budget %s, %d retries)"
        (Budget.reason_name reason) retries
  | Unavailable { error; retries } ->
      Format.fprintf ppf "unavailable (%s, %d retries)"
        (Printexc.to_string error) retries

(* --- outcome classification ---------------------------------------- *)

(* The flight-recorder view of a finished ladder run: which rung
   answered, whether the caller got less than exact, and why — the one
   place the Ok/Error shape is flattened for retention and the event
   log, so Service and the server classify identically. *)
type classification = {
  c_rung : string;  (* answering rung, or "unavailable" *)
  c_ok : bool;
  c_degraded : bool;  (* any outcome below an exact answer *)
  c_unavailable : bool;
  c_retries : int;
  c_trip : string option;  (* budget reason that tripped, if any *)
  c_gap : float option;
}

let classify (result : ('a answer, error) result) =
  match result with
  | Ok a ->
      {
        c_rung = rung_name a.rung;
        c_ok = true;
        c_degraded = a.rung <> Exact;
        c_unavailable = false;
        c_retries = a.retries;
        c_trip = Option.map Budget.reason_name a.reason;
        c_gap = a.gap;
      }
  | Error (Degraded { reason; retries }) ->
      {
        c_rung = "degraded";
        c_ok = false;
        c_degraded = true;
        c_unavailable = false;
        c_retries = retries;
        c_trip = Some (Budget.reason_name reason);
        c_gap = None;
      }
  | Error (Unavailable { error = _; retries }) ->
      {
        c_rung = "unavailable";
        c_ok = false;
        c_degraded = false;
        c_unavailable = true;
        c_retries = retries;
        c_trip = None;
        c_gap = None;
      }

(* --- metrics ------------------------------------------------------- *)

let m_deadline_hits = Obs.counter "service.deadline_hits"

let m_degraded = Obs.counter "service.degraded"

let m_retries = Obs.counter "service.retries"

let m_unavailable = Obs.counter "service.unavailable"

let h_exact = Obs.histogram "service.rung.exact.latency_ns"

let h_anytime = Obs.histogram "service.rung.anytime.latency_ns"

let h_heuristic = Obs.histogram "service.rung.heuristic.latency_ns"

let hist_of_rung = function
  | Exact -> h_exact
  | Anytime_best -> h_anytime
  | Heuristic -> h_heuristic

(* --- retry --------------------------------------------------------- *)

(* Deterministic jitter: a seeded splitmix step per attempt, so retry
   schedules are reproducible (no wall-clock, no global RNG). *)
let jitter ~seed ~attempt =
  let z = Int64.of_int (seed + (attempt * 0x9E3779B9)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let u = Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992. in
  0.5 +. (u /. 2.)  (* in [0.5, 1.0): full backoff is the ceiling *)

let backoff_s policy ~attempt =
  let base = policy.backoff_ms *. (2. ** float_of_int attempt) /. 1000. in
  base *. jitter ~seed:policy.seed ~attempt

let is_transient = function
  | Faultinject.Injected_fault { transient; _ } -> transient
  | _ -> false

(* --- the ladder ---------------------------------------------------- *)

let budget_of policy ~cancel =
  match (policy.deadline_ms, policy.node_limit, cancel) with
  | None, None, None -> Budget.unlimited
  | deadline_ms, node_limit, cancel ->
      let deadline_ns =
        Option.map
          (fun ms ->
            Int64.add (Budget.now_ns ()) (Int64.of_float (ms *. 1e6)))
          deadline_ms
      in
      Budget.create ?deadline_ns ?node_limit ?cancel ()

let observe_rung rung ~t0 =
  let dt = Int64.to_float (Int64.sub (Budget.now_ns ()) t0) in
  Obs.Histogram.observe (hist_of_rung rung) dt

let count_reason = function
  | Some Budget.Deadline -> Obs.Counter.incr m_deadline_hits
  | Some Budget.Node_limit | Some Budget.Cancelled | None -> ()

(* One pass down the ladder with a fresh budget; returns the result or
   re-raises the (non-transient) failure for [with_retries] to classify. *)
let outcome_attr = function
  | Anytime.Optimal _ -> "optimal"
  | Anytime.Feasible_best _ -> "anytime"
  | Anytime.Exhausted _ -> "exhausted"

(* Run one rung inside its own span, tagging how it answered — so a
   trace shows which rung served the query and why the ladder moved. *)
let rung_span name outcome_of f =
  Obs.Trace.with_span ("resilience." ^ name) @@ fun () ->
  let result = f () in
  Obs.Trace.add_attrs [ ("outcome", outcome_of result) ];
  result

let descend policy ~cancel ~exact ~heuristic ~retries ~t0 =
  let budget = budget_of policy ~cancel in
  match rung_span "exact" outcome_attr (fun () -> exact budget) with
  | Anytime.Optimal value ->
      observe_rung Exact ~t0;
      Ok { value; rung = Exact; gap = Some 0.; retries; reason = None }
  | Anytime.Feasible_best { best; gap; reason } ->
      count_reason (Some reason);
      Obs.Counter.incr m_degraded;
      observe_rung Anytime_best ~t0;
      Ok
        {
          value = Some best;
          rung = Anytime_best;
          gap = Some gap;
          retries;
          reason = Some reason;
        }
  | Anytime.Exhausted reason -> (
      count_reason (Some reason);
      (* The budget expired before any incumbent: drop to the heuristic
         rung (its own small budget, so it cannot hang either). *)
      if not policy.degrade then begin
        Obs.Counter.incr m_degraded;
        Error (Degraded { reason; retries })
      end
      else
        let hb = budget_of policy ~cancel in
        match
          rung_span "heuristic"
            (function Some _ -> "answered" | None -> "empty")
            (fun () -> heuristic hb)
        with
        | Some v ->
            Obs.Counter.incr m_degraded;
            observe_rung Heuristic ~t0;
            Ok
              {
                value = Some v;
                rung = Heuristic;
                gap = None;
                retries;
                reason = Some reason;
              }
        | None ->
            Obs.Counter.incr m_degraded;
            Error (Degraded { reason; retries }))

let with_retries policy ~descend =
  let rec attempt n =
    let t0 = Budget.now_ns () in
    match descend ~retries:n ~t0 with
    | result -> result
    | exception e when is_transient e && n < policy.max_retries ->
        Obs.Counter.incr m_retries;
        let delay = backoff_s policy ~attempt:n in
        Log.info (fun m ->
            m "transient fault (%s); retry %d/%d after %.1f ms"
              (Printexc.to_string e) (n + 1) policy.max_retries (delay *. 1000.));
        Unix.sleepf delay;
        attempt (n + 1)
    | exception e ->
        Obs.Counter.incr m_unavailable;
        Error (Unavailable { error = e; retries = n })
  in
  attempt 0

let protect ?(policy = default_policy) f =
  with_retries policy ~descend:(fun ~retries:_ ~t0:_ -> Ok (f ()))

let certify_outcome ~certify (outcome : 'a Anytime.outcome) =
  match outcome with
  | Anytime.Optimal v -> Anytime.Optimal (certify v)
  | Anytime.Feasible_best fb -> (
      match certify (Some fb.best) with
      | Some best -> Anytime.Feasible_best { fb with best }
      | None -> Anytime.Exhausted fb.reason)
  | Anytime.Exhausted _ as e -> e

let run ?(policy = default_policy) ?cancel ~exact ~heuristic () =
  with_retries policy
    ~descend:(fun ~retries ~t0 -> descend policy ~cancel ~exact ~heuristic ~retries ~t0)

let run_heuristic ?(policy = default_policy) ?cancel ~heuristic () =
  with_retries policy ~descend:(fun ~retries ~t0 ->
      let budget = budget_of policy ~cancel in
      match heuristic budget with
      | value ->
          observe_rung Heuristic ~t0;
          (match Budget.tripped budget with
          | Some _ as r ->
              count_reason r;
              Obs.Counter.incr m_degraded
          | None -> ());
          Ok
            {
              value;
              rung = Heuristic;
              gap = None;
              retries;
              reason = Budget.tripped budget;
            })

(** The degradation ladder: resilient query answering under deadlines,
    cancellation and injected faults.

    A resilient solve walks down a ladder of rungs until one yields an
    answer it can stand behind:

    + {b Exact} — the optimal solver ran to completion within budget.
    + {b Anytime} — the budget tripped but the solver had an incumbent:
      the best feasible answer so far, with its optimality-gap bound
      (see {!Anytime}).
    + {b Heuristic} — no incumbent survived; a budgeted beam/greedy
      heuristic answers instead (no gap bound).
    + Typed failure — {!Degraded} (resource-bounded, nothing found) or
      {!Unavailable} (hard fault), never a hang or a raw exception.

    Transient faults ({!Faultinject.Injected_fault} with
    [transient = true]) are retried with bounded, deterministically
    jittered exponential backoff before the ladder gives up.

    Every outcome is counted ([service.deadline_hits],
    [service.degraded], [service.retries], [service.unavailable]) and
    timed per rung ([service.rung.{exact,anytime,heuristic}.latency_ns]);
    see docs/OBSERVABILITY.md. *)

type rung = Exact | Anytime_best | Heuristic

val rung_name : rung -> string

val pp_rung : Format.formatter -> rung -> unit

type policy = {
  deadline_ms : float option;  (** wall budget per attempt; [None] = none *)
  node_limit : int option;  (** node-expansion budget; [None] = none *)
  degrade : bool;  (** allow the heuristic rung (default [true]) *)
  max_retries : int;  (** transient-fault retries (not rung descents) *)
  backoff_ms : float;  (** base backoff, doubled per retry, jittered *)
  seed : int;  (** jitter seed — retry schedules are reproducible *)
}

(** No budget, degradation allowed, 2 retries from a 5 ms base. *)
val default_policy : policy

(** [backoff_s policy ~attempt] — the sleep (in seconds) before retry
    number [attempt] (0-based): [backoff_ms], doubled per attempt,
    scaled by a deterministic seeded jitter in [0.5, 1.0).  Exposed so
    other retry loops (e.g. {!Server.Client} connecting to a server
    still replaying its WAL) share one reproducible schedule. *)
val backoff_s : policy -> attempt:int -> float

type 'a answer = {
  value : 'a option;
      (** [None] only on the [Exact] rung: certified infeasible *)
  rung : rung;
  gap : float option;
      (** [Some 0.] when exact; an upper bound on suboptimality on the
          anytime rung; [None] on the heuristic rung (unknown) *)
  retries : int;  (** transient retries consumed *)
  reason : Budget.reason option;  (** why descent happened, if it did *)
}

type error =
  | Degraded of { reason : Budget.reason; retries : int }
      (** the budget expired and no rung produced an answer (or
          degradation was disabled by policy) *)
  | Unavailable of { error : exn; retries : int }
      (** a non-budget failure survived the retry allowance *)

val pp_error : Format.formatter -> error -> unit

(** The flight-recorder view of a finished ladder run, flattened from
    the [Ok]/[Error] shape in one place so the service layer and the
    server classify outcomes identically (see [Obs.Flightrec] retention
    and the [Obs.Events] query records). *)
type classification = {
  c_rung : string;
      (** {!rung_name} of the answering rung, or ["degraded"] /
          ["unavailable"] for the typed failures *)
  c_ok : bool;
  c_degraded : bool;  (** any outcome below an exact answer *)
  c_unavailable : bool;
  c_retries : int;
  c_trip : string option;  (** budget reason that tripped, if any *)
  c_gap : float option;
}

val classify : ('a answer, error) result -> classification

(** [protect ?policy f] applies only the retry/classification half of
    the ladder to a pre-solve step (context build, planning): transient
    injected faults retry with the policy's backoff, any surviving
    exception becomes {!Unavailable}.  No budget is imposed. *)
val protect : ?policy:policy -> (unit -> 'a) -> ('a, error) result

(** [certify_outcome ~certify outcome] re-checks the solution an outcome
    carries (feasibility, {e not} optimality — see {!Validate}): both
    [Optimal] and anytime [Feasible_best] answers pass through
    [certify], which raises on violation.  A certifier that answers
    [None] for a [Feasible_best] degrades it to [Exhausted]. *)
val certify_outcome :
  certify:('a option -> 'a option) -> 'a Anytime.outcome -> 'a Anytime.outcome

(** [run ?policy ?cancel ~exact ~heuristic ()] walks the ladder.  Each
    attempt builds a fresh {!Budget.t} from [policy] (sharing [cancel]
    when given, so an external flag aborts whichever rung is running)
    and calls [exact]; its {!Anytime.outcome} selects the rung as
    described above.  [heuristic] runs under its own fresh budget and
    only when [exact] was [Exhausted].  Exceptions from either closure
    are classified: transient injected faults retry with backoff, the
    rest return {!Unavailable}. *)
val run :
  ?policy:policy ->
  ?cancel:bool Atomic.t ->
  exact:(Budget.t -> 'a Anytime.outcome) ->
  heuristic:(Budget.t -> 'a option) ->
  unit ->
  ('a answer, error) result

(** [run_heuristic ?policy ?cancel ~heuristic ()] enters the ladder at
    the heuristic rung — for callers whose planner already chose a
    heuristic (see {!Auto}).  Same budget construction, retry and
    accounting; the answer's [rung] is always [Heuristic] and a [None]
    value is a legitimate "nothing found" (not an error). *)
val run_heuristic :
  ?policy:policy ->
  ?cancel:bool Atomic.t ->
  heuristic:(Budget.t -> 'a option) ->
  unit ->
  ('a answer, error) result

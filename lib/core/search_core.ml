type config = {
  theta0 : int;
  phi0 : int;
  phi_threshold : int;
  use_access_ordering : bool;
  use_distance_pruning : bool;
  use_acquaintance_pruning : bool;
  unsafe_lemma3 : bool;
  use_availability_pruning : bool;
}

let default_config =
  {
    theta0 = 2;
    phi0 = 2;
    phi_threshold = 6;
    use_access_ordering = true;
    use_distance_pruning = true;
    use_acquaintance_pruning = true;
    unsafe_lemma3 = false;
    use_availability_pruning = true;
  }

(* Accounting identity (kept exact, tested, and surfaced as the pruning
   waterfall): every [examined] candidate ends in exactly one of
   [includes], [removed_exterior], [removed_interior],
   [removed_temporal] or [deferred].  A deferral (a θ/φ relaxation
   round skipping the candidate) counts again when re-examined. *)
type stats = {
  mutable nodes : int;
  mutable examined : int;
  mutable includes : int;
  mutable deferred : int;
  mutable pruned_distance : int;
  mutable pruned_acquaintance : int;
  mutable pruned_availability : int;
  mutable removed_exterior : int;
  mutable removed_interior : int;
  mutable removed_temporal : int;
}

let fresh_stats () =
  {
    nodes = 0;
    examined = 0;
    includes = 0;
    deferred = 0;
    pruned_distance = 0;
    pruned_acquaintance = 0;
    pruned_availability = 0;
    removed_exterior = 0;
    removed_interior = 0;
    removed_temporal = 0;
  }

type found = {
  group : int list;
  distance : float;
  window_start : int option;
}

(* Where complete qualified groups are delivered.  [bound] feeds Lemma 2:
   a node is pruned when no completion can get strictly below it. *)
type sink = {
  offer : found -> unit;
  bound : unit -> float;
}

(* Temporal context of the pivot slot currently explored.  [run_lo/run_hi]
   is the member's maximal available run containing the pivot, clipped to
   the pivot interval ([lo > hi] encodes "not available at the pivot");
   [unavail.(t - ilo)] counts VA members unavailable at slot [t];
   [ts_lo..ts_hi] is TS, the common run of the vertices in VS. *)
type temporal = {
  m : int;
  pivot : int;
  ilo : int;
  ihi : int;
  run_lo : int array;
  run_hi : int array;
  unavail : int array;
  av : Timetable.Availability.t array;
  mutable ts_lo : int;
  mutable ts_hi : int;
}

type state = {
  fg : Feasible.t;
  p : int;
  k : int;
  cfg : config;
  stats : stats;
  order : int array;    (* candidate pick order *)
  by_dist : int array;  (* always distance-sorted, for min-distance scans *)
  in_vs : bool array;
  in_va : bool array;
  nbr_vs : int array;   (* per vertex: #neighbours currently in VS *)
  nbr_va : int array;   (* per vertex: #neighbours currently in VA *)
  visited : int array;  (* round id at which the vertex was last examined *)
  mutable round : int;
  mutable vs_size : int;
  mutable va_size : int;
  mutable vs_list : int list;
  mutable td : float;
  mutable sum_nbr_va : int;  (* Σ_{v∈VA} nbr_va(v), maintained incrementally *)
  sink : sink;
  temporal : temporal option;
  budget : Budget.t;
}

let eps = 1e-9

(* Raised (no-trace: purely for control flow) when the budget trips at a
   checkpoint.  It unwinds the whole search; the per-solve state is
   discarded, so no undo is needed on this path. *)
exception Stop

(* ------------------------------------------------------------------ *)
(* State transitions, all O(deg) with exact inverses.                  *)

let unavail_adjust tc v delta =
  for t = tc.ilo to tc.ihi do
    if not (Timetable.Availability.available tc.av.(v) t) then
      tc.unavail.(t - tc.ilo) <- tc.unavail.(t - tc.ilo) + delta
  done

let remove_from_va st v =
  st.in_va.(v) <- false;
  st.va_size <- st.va_size - 1;
  st.sum_nbr_va <- st.sum_nbr_va - st.nbr_va.(v);
  Bitset.iter
    (fun w ->
      st.nbr_va.(w) <- st.nbr_va.(w) - 1;
      if st.in_va.(w) then st.sum_nbr_va <- st.sum_nbr_va - 1)
    st.fg.nbr.(v);
  match st.temporal with Some tc -> unavail_adjust tc v (-1) | None -> ()

let restore_to_va st v =
  Bitset.iter
    (fun w ->
      st.nbr_va.(w) <- st.nbr_va.(w) + 1;
      if st.in_va.(w) then st.sum_nbr_va <- st.sum_nbr_va + 1)
    st.fg.nbr.(v);
  st.in_va.(v) <- true;
  st.va_size <- st.va_size + 1;
  st.sum_nbr_va <- st.sum_nbr_va + st.nbr_va.(v);
  match st.temporal with Some tc -> unavail_adjust tc v 1 | None -> ()

(* Returns the TS interval to restore on undo. *)
let add_to_vs st v =
  remove_from_va st v;
  st.in_vs.(v) <- true;
  st.vs_size <- st.vs_size + 1;
  st.vs_list <- v :: st.vs_list;
  st.td <- st.td +. st.fg.dist.(v);
  Bitset.iter (fun w -> st.nbr_vs.(w) <- st.nbr_vs.(w) + 1) st.fg.nbr.(v);
  match st.temporal with
  | Some tc ->
      let saved = (tc.ts_lo, tc.ts_hi) in
      tc.ts_lo <- max tc.ts_lo tc.run_lo.(v);
      tc.ts_hi <- min tc.ts_hi tc.run_hi.(v);
      saved
  | None -> (0, 0)

let remove_from_vs st v (saved_lo, saved_hi) =
  st.in_vs.(v) <- false;
  st.vs_size <- st.vs_size - 1;
  (* [v] was pushed last, so it is the head. *)
  st.vs_list <- (match st.vs_list with _ :: rest -> rest | [] -> assert false);
  st.td <- st.td -. st.fg.dist.(v);
  Bitset.iter (fun w -> st.nbr_vs.(w) <- st.nbr_vs.(w) - 1) st.fg.nbr.(v);
  (match st.temporal with
  | Some tc ->
      tc.ts_lo <- saved_lo;
      tc.ts_hi <- saved_hi
  | None -> ());
  restore_to_va st v

(* ------------------------------------------------------------------ *)
(* Access-ordering measures (Definitions 2, 3, 5).                     *)

(* Non-neighbours of [w] within VS, excluding [w] itself. *)
let nn_vs st w = st.vs_size - (if st.in_vs.(w) then 1 else 0) - st.nbr_vs.(w)

(* U(VS ∪ {u}) for a candidate u ∈ VA. *)
let interior_unfamiliarity st u =
  let adj = Feasible.adjacent st.fg in
  let worst =
    List.fold_left
      (fun acc w ->
        let nn = nn_vs st w + (if adj w u then 0 else 1) in
        max acc nn)
      0 st.vs_list
  in
  max worst (st.vs_size - st.nbr_vs.(u))

(* A(VS ∪ {u}) with VA' = VA - {u} (Definition 3). *)
let exterior_expansibility st u =
  let adj = Feasible.adjacent st.fg in
  let of_member w =
    let a = if adj w u then 1 else 0 in
    let in_va' = st.nbr_va.(w) - a in
    let quota = st.k - (nn_vs st w + (1 - a)) in
    in_va' + quota
  in
  let u_val = st.nbr_va.(u) + st.k - (st.vs_size - st.nbr_vs.(u)) in
  List.fold_left (fun acc w -> min acc (of_member w)) u_val st.vs_list

(* X(VS ∪ {u}) = |TS ∩ run_u| - m (Definition 5). *)
let temporal_extensibility tc u =
  let lo = max tc.ts_lo tc.run_lo.(u) in
  let hi = min tc.ts_hi tc.run_hi.(u) in
  hi - lo + 1 - tc.m

(* ------------------------------------------------------------------ *)
(* Pruning lemmas, evaluated at every node-loop iteration.             *)

let min_distance_in_va st =
  let n = Array.length st.by_dist in
  let[@lint.bounded] rec go i =
    if i >= n then infinity
    else
      let v = st.by_dist.(i) in
      if st.in_va.(v) then st.fg.dist.(v) else go (i + 1)
  in
  go 0

(* Lemma 2. *)
let distance_prunes st =
  st.cfg.use_distance_pruning
  &&
  let bound = st.sink.bound () in
  Float.is_finite bound
  &&
  let needed = float_of_int (st.p - st.vs_size) in
  st.td +. (needed *. min_distance_in_va st) >= bound -. eps

(* Lemma 3, safe form by default (see DESIGN.md).  The sum of inner
   degrees is maintained incrementally; the minimum is only scanned when
   the sum alone cannot decide, and that scan exits at the first vertex
   disproving the prune. *)
let acquaintance_prunes st =
  st.cfg.use_acquaintance_pruning
  &&
  let needed = st.p - st.vs_size in
  let per_vertex =
    if st.cfg.unsafe_lemma3 then needed - st.k else needed - 1 - st.k
  in
  per_vertex > 0
  &&
  let rhs = needed * per_vertex in
  st.sum_nbr_va < rhs
  ||
  (* prune <=> sum - (|VA|-needed)·min < rhs <=> min > (sum-rhs)/(|VA|-needed) *)
  st.va_size > needed
  &&
  let threshold = (st.sum_nbr_va - rhs) / (st.va_size - needed) in
  let n = Array.length st.by_dist in
  let[@lint.bounded] rec all_above i =
    if i >= n then true
    else
      let v = st.by_dist.(i) in
      if st.in_va.(v) && st.nbr_va.(v) <= threshold then false else all_above (i + 1)
  in
  all_above 0

(* Lemma 5. *)
let availability_prunes st =
  st.cfg.use_availability_pruning
  &&
  match st.temporal with
  | None -> false
  | Some tc ->
      let needed = st.p - st.vs_size in
      let n = st.va_size - needed + 1 in
      let blocked t = tc.unavail.(t - tc.ilo) >= n in
      let[@lint.bounded] rec up t = if t > tc.ihi then tc.ihi + 1 else if blocked t then t else up (t + 1) in
      let[@lint.bounded] rec down t = if t < tc.ilo then tc.ilo - 1 else if blocked t then t else down (t - 1) in
      let t_plus = up (tc.pivot + 1) in
      let t_minus = down (tc.pivot - 1) in
      t_plus - t_minus <= tc.m

(* ------------------------------------------------------------------ *)
(* The node loop (Algorithms 2 and 4).                                 *)

let record_best st =
  st.sink.offer
    {
      group = st.vs_list;
      distance = st.td;
      window_start = (match st.temporal with Some tc -> Some tc.ts_lo | None -> None);
    }

(* The budget checkpoint: one [land] per node, real work only every
   [Budget.check_interval] expansions (clock read, shared-counter
   publish, fault-site poll), so the unbudgeted path stays bit-identical
   and the budgeted path stays within the bench-gated 3% overhead. *)
let checkpoint st =
  if st.stats.nodes land (Budget.check_interval - 1) = 0 then begin
    Faultinject.fire Faultinject.Kernel_expansion;
    match Budget.charge st.budget Budget.check_interval with
    | Some reason ->
        (* Trip path, at most once per solve: attribute which checkpoint
           ended the search to the enclosing solve span. *)
        Obs.Trace.add_attrs
          [
            ("budget.trip", Budget.reason_name reason);
            ("budget.checkpoint_nodes", string_of_int st.stats.nodes);
          ];
        raise_notrace Stop
    | None -> ()
  end

let rec node st =
  st.stats.nodes <- st.stats.nodes + 1;
  checkpoint st;
  let removed = ref [] in
  let theta = ref st.cfg.theta0 in
  let phi = ref st.cfg.phi0 in
  st.round <- st.round + 1;
  let current_round = ref st.round in
  (* Within one round the pick scan can only move right: a vertex left of
     the cursor is either already examined this round or permanently out
     of this node's VA, so restarting from 0 would be O(f) wasted work in
     the innermost loop. *)
  let cursor = ref 0 in
  let new_round () =
    st.round <- st.round + 1;
    current_round := st.round;
    cursor := 0
  in
  let pick () =
    let n = Array.length st.order in
    let[@lint.bounded] rec go i =
      if i >= n then begin
        cursor := n;
        None
      end
      else
        let v = st.order.(i) in
        if st.in_va.(v) && st.visited.(v) <> !current_round then begin
          cursor := i;
          Some v
        end
        else go (i + 1)
    in
    go !cursor
  in
  let remove_here v =
    remove_from_va st v;
    removed := v :: !removed
  in
  let fp = float_of_int st.p in
  let rec loop () =
    if st.vs_size + st.va_size < st.p then ()
    else if distance_prunes st then
      st.stats.pruned_distance <- st.stats.pruned_distance + 1
    else if acquaintance_prunes st then
      st.stats.pruned_acquaintance <- st.stats.pruned_acquaintance + 1
    else if availability_prunes st then
      st.stats.pruned_availability <- st.stats.pruned_availability + 1
    else
      match pick () with
      | None ->
          if !theta > 0 then begin
            decr theta;
            new_round ();
            loop ()
          end
          else if st.temporal <> None && !phi < st.cfg.phi_threshold then begin
            incr phi;
            new_round ();
            loop ()
          end
          else ()
      | Some u ->
          st.visited.(u) <- !current_round;
          st.stats.examined <- st.stats.examined + 1;
          if exterior_expansibility st u < st.p - (st.vs_size + 1) then begin
            st.stats.removed_exterior <- st.stats.removed_exterior + 1;
            remove_here u;
            loop ()
          end
          else begin
            let unfamiliarity = float_of_int (interior_unfamiliarity st u) in
            let interior_rhs =
              float_of_int st.k
              *. Float.pow (float_of_int (st.vs_size + 1) /. fp) (float_of_int !theta)
            in
            if unfamiliarity > interior_rhs +. 1e-12 then begin
              if !theta = 0 then begin
                st.stats.removed_interior <- st.stats.removed_interior + 1;
                remove_here u
              end
              else
                (* at theta > 0: deferred — retried at a lower theta *)
                st.stats.deferred <- st.stats.deferred + 1;
              loop ()
            end
            else begin
              let temporal_ok =
                match st.temporal with
                | None -> `Ok
                | Some tc ->
                    let x = float_of_int (temporal_extensibility tc u) in
                    let rhs =
                      if !phi >= st.cfg.phi_threshold then 0.
                      else
                        float_of_int (tc.m - 1)
                        *. Float.pow
                             (float_of_int (st.p - (st.vs_size + 1)) /. fp)
                             (float_of_int !phi)
                    in
                    if x >= rhs -. 1e-12 then `Ok
                    else if !phi >= st.cfg.phi_threshold then `Remove
                    else `Skip
              in
              match temporal_ok with
              | `Remove ->
                  st.stats.removed_temporal <- st.stats.removed_temporal + 1;
                  remove_here u;
                  loop ()
              | `Skip ->
                  (* deferred: retried once phi relaxes *)
                  st.stats.deferred <- st.stats.deferred + 1;
                  loop ()
              | `Ok ->
                  st.stats.includes <- st.stats.includes + 1;
                  let saved_ts = add_to_vs st u in
                  if st.vs_size = st.p then record_best st else node st;
                  remove_from_vs st u saved_ts;
                  remove_here u;
                  loop ()
            end
          end
  in
  loop ();
  (* Give the removed candidates back to the parent. *)
  List.iter (restore_to_va st) !removed

(* ------------------------------------------------------------------ *)
(* State construction.                                                 *)

let sorted_candidates fg ~eligible ~by_distance =
  let size = Feasible.size fg in
  let cands = ref [] in
  for v = size - 1 downto 0 do
    if v <> fg.Feasible.q && eligible v then cands := v :: !cands
  done;
  let arr = Array.of_list !cands in
  if by_distance then
    Array.sort
      (fun a b -> compare (fg.Feasible.dist.(a), a) (fg.Feasible.dist.(b), b))
      arr;
  arr

let make_state fg ~p ~k ~cfg ~stats ~eligible ~temporal ~sink ~budget =
  let size = Feasible.size fg in
  let order = sorted_candidates fg ~eligible ~by_distance:cfg.use_access_ordering in
  let by_dist =
    if cfg.use_access_ordering then order
    else sorted_candidates fg ~eligible ~by_distance:true
  in
  let in_vs = Array.make size false in
  let in_va = Array.make size false in
  Array.iter (fun v -> in_va.(v) <- true) order;
  in_vs.(fg.Feasible.q) <- true;
  let nbr_vs = Array.make size 0 in
  let nbr_va = Array.make size 0 in
  Bitset.iter (fun w -> nbr_vs.(w) <- 1) fg.Feasible.nbr.(fg.Feasible.q);
  Array.iter
    (fun v -> Bitset.iter (fun w -> nbr_va.(w) <- nbr_va.(w) + 1) fg.Feasible.nbr.(v))
    order;
  (match temporal with
  | Some tc ->
      (* Unavailability counts of the initial VA over the pivot interval. *)
      Array.fill tc.unavail 0 (Array.length tc.unavail) 0;
      Array.iter (fun v -> unavail_adjust tc v 1) order
  | None -> ());
  {
    fg;
    p;
    k;
    cfg;
    stats;
    order;
    by_dist;
    in_vs;
    in_va;
    nbr_vs;
    nbr_va;
    visited = Array.make size (-1);
    round = 0;
    vs_size = 1;
    va_size = Array.length order;
    vs_list = [ fg.Feasible.q ];
    td = 0.;
    sum_nbr_va =
      Array.fold_left (fun acc v -> if in_va.(v) then acc + nbr_va.(v) else acc) 0
        (Array.init size Fun.id);
    sink;
    temporal;
    budget;
  }

(* ------------------------------------------------------------------ *)
(* Admissible completion bound, for anytime gap reporting.             *)

(* Any qualified group is q plus p-1 distinct eligible candidates, so
   its distance is at least the sum of the p-1 smallest candidate
   distances.  Coarse (it ignores acquaintance and availability) but
   sound for every region a truncated search abandoned; computed once
   per budgeted solve, never on the per-node path. *)
let completion_lower_bound fg ~p ~eligible =
  let dists = ref [] in
  for v = Feasible.size fg - 1 downto 0 do
    if v <> fg.Feasible.q && eligible v then dists := fg.Feasible.dist.(v) :: !dists
  done;
  let sorted = List.sort compare !dists in
  let[@lint.bounded] rec take acc n = function
    | _ when n = 0 -> Some acc
    | [] -> None
    | d :: rest -> take (acc +. d) (n - 1) rest
  in
  match take 0. (p - 1) sorted with Some lb -> lb | None -> infinity

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

(* The single-best sink used by SGSelect/STGSelect: keep the strictly
   better solution, bound the search by the incumbent.  [bound_init]
   (default none) seeds distance pruning before the first solution —
   STGArrange uses the PCArrange distance this way; solutions worse than
   the seed may still surface but never hide a qualifying one. *)
let best_sink ?(bound_init = infinity) cell =
  {
    offer =
      (fun f ->
        match !cell with
        | Some { distance; _ } when f.distance >= distance -. eps -> ()
        | _ -> cell := Some f);
    bound =
      (fun () ->
        match !cell with
        | Some { distance; _ } -> Float.min distance bound_init
        | None -> bound_init);
  }

let solve_social_sink ?(eligible = fun _ -> true) ?(budget = Budget.unlimited)
    (ctx : Engine.Context.t) ~p ~k ~config ~stats ~sink =
  let fg = ctx.Engine.Context.fg in
  if p = 1 then begin
    sink.offer { group = [ fg.Feasible.q ]; distance = 0.; window_start = None };
    None
  end
  else if Feasible.size fg < p then None
  else
    match Budget.check budget with
    | Some _ as stopped -> stopped
    | None -> (
        let st =
          make_state fg ~p ~k ~cfg:config ~stats ~eligible ~temporal:None ~sink
            ~budget
        in
        match (if st.vs_size + st.va_size >= p then node st) with
        | () -> None
        | exception Stop -> Budget.tripped budget)

let solve_social ?eligible ?bound_init ctx ~p ~k ~config ~stats =
  let cell = ref None in
  ignore
    (solve_social_sink ?eligible ctx ~p ~k ~config ~stats
       ~sink:(best_sink ?bound_init cell)
      : Budget.reason option);
  !cell

let solve_social_out ?eligible ?bound_init ?budget ctx ~p ~k ~config ~stats =
  let cell = ref None in
  let completion =
    solve_social_sink ?eligible ?budget ctx ~p ~k ~config ~stats
      ~sink:(best_sink ?bound_init cell)
  in
  let gap_of (f : found) =
    let elig = match eligible with Some e -> e | None -> fun _ -> true in
    let lb = completion_lower_bound ctx.Engine.Context.fg ~p ~eligible:elig in
    Float.max 0. (f.distance -. lb)
  in
  Anytime.make ~completion ~gap_of !cell

let solve_temporal_sink ?(budget = Budget.unlimited) (ctx : Engine.Context.t) ~p
    ~k ~m ~pivots ~config ~stats ~sink =
  if not (Engine.Context.has_schedules ctx) then
    invalid_arg "Search_core.solve_temporal: context was built without schedules";
  let fg = ctx.Engine.Context.fg in
  let avail = ctx.Engine.Context.avail in
  let size = Feasible.size fg in
  let explore_pivot pivot =
    let h = Timetable.Availability.horizon avail.(fg.Feasible.q) in
    let ilo, ihi = Timetable.Window.interval ~horizon:h ~m pivot in
    let run_lo = Array.make size 1 and run_hi = Array.make size 0 in
    for v = 0 to size - 1 do
      match Timetable.Availability.run_around avail.(v) pivot with
      | Some (lo, hi) ->
          run_lo.(v) <- max lo ilo;
          run_hi.(v) <- min hi ihi
      | None -> ()
    done;
    let run_len v = run_hi.(v) - run_lo.(v) + 1 in
    if run_len fg.Feasible.q >= m then begin
      let tc =
        {
          m;
          pivot;
          ilo;
          ihi;
          run_lo;
          run_hi;
          unavail = Array.make (ihi - ilo + 1) 0;
          av = avail;
          ts_lo = run_lo.(fg.Feasible.q);
          ts_hi = run_hi.(fg.Feasible.q);
        }
      in
      if p = 1 then
        sink.offer
          { group = [ fg.Feasible.q ]; distance = 0.; window_start = Some tc.ts_lo }
      else begin
        let st =
          make_state fg ~p ~k ~cfg:config ~stats
            ~eligible:(fun v -> run_len v >= m)
            ~temporal:(Some tc) ~sink ~budget
        in
        if st.vs_size + st.va_size >= p then node st
      end
    end
  in
  match Budget.check budget with
  | Some _ as stopped -> stopped
  | None -> (
      match List.iter explore_pivot pivots with
      | () -> None
      | exception Stop -> Budget.tripped budget)

let solve_temporal ?bound_init ctx ~p ~k ~m ~pivots ~config ~stats =
  let cell = ref None in
  ignore
    (solve_temporal_sink ctx ~p ~k ~m ~pivots ~config ~stats
       ~sink:(best_sink ?bound_init cell)
      : Budget.reason option);
  !cell

let solve_temporal_out ?bound_init ?budget ctx ~p ~k ~m ~pivots ~config ~stats =
  let cell = ref None in
  let completion =
    solve_temporal_sink ?budget ctx ~p ~k ~m ~pivots ~config ~stats
      ~sink:(best_sink ?bound_init cell)
  in
  let gap_of (f : found) =
    let lb =
      completion_lower_bound ctx.Engine.Context.fg ~p ~eligible:(fun _ -> true)
    in
    Float.max 0. (f.distance -. lb)
  in
  Anytime.make ~completion ~gap_of !cell

type temporal_error = Missing_window of { group : int list; distance : float }

let temporal_solution fg (f : found) =
  match f.window_start with
  | Some start ->
      Ok
        {
          Query.st_attendees = Feasible.originals fg f.group;
          st_total_distance = f.distance;
          start_slot = start;
        }
  | None -> Error (Missing_window { group = f.group; distance = f.distance })

(** The branch-and-bound engine behind SGSelect and STGSelect.

    One search node owns an intermediate solution [VS] and a candidate set
    [VA]; at each step the engine picks a candidate by access ordering
    (smallest social distance among those passing the interior
    unfamiliarity / exterior expansibility / temporal extensibility
    conditions at the current [θ]/[φ]), recurses on its inclusion, then
    excludes it — enumerating every group exactly once under the pruning
    lemmas.  {!Sgselect} and {!Stgselect} are thin wrappers. *)

(** Strategy switches.  Defaults reproduce the paper's full algorithm;
    the [use_*] flags and [unsafe_lemma3] exist for the ablation study
    (DESIGN.md A1-A6). *)
type config = {
  theta0 : int;
      (** initial θ of the interior-unfamiliarity condition (paper: 2) *)
  phi0 : int;  (** initial φ of the temporal-extensibility condition *)
  phi_threshold : int;
      (** the "predetermined threshold t" of Algorithm 4: at φ >= this the
          condition's RHS is treated as 0 *)
  use_access_ordering : bool;
      (** false: candidates in vertex-id order instead of distance order *)
  use_distance_pruning : bool;   (** Lemma 2 *)
  use_acquaintance_pruning : bool;  (** Lemma 3, safe form *)
  unsafe_lemma3 : bool;
      (** use the paper's printed (too strong) Lemma 3 bound — may lose
          optimality; for ablation only *)
  use_availability_pruning : bool;  (** Lemma 5 *)
}

val default_config : config

(** Search-effort counters, for the experiment harness and the pruning
    waterfall ([Obs.Trace.waterfall]).  The kernel keeps the accounting
    identity [examined = includes + removed_exterior + removed_interior
    + removed_temporal + deferred] exact: every examined candidate ends
    in exactly one bucket (a deferred candidate counts again when a θ/φ
    relaxation round re-examines it). *)
type stats = {
  mutable nodes : int;           (** search-tree nodes expanded *)
  mutable examined : int;        (** candidates considered by the node loop *)
  mutable includes : int;        (** include-branches taken *)
  mutable deferred : int;
      (** skipped at θ > 0 (or φ below threshold), re-examined later *)
  mutable pruned_distance : int;
  mutable pruned_acquaintance : int;
  mutable pruned_availability : int;
  mutable removed_exterior : int;
  mutable removed_interior : int;
  mutable removed_temporal : int;
}

val fresh_stats : unit -> stats

(** A found optimum, in feasible-graph sub-ids. *)
type found = {
  group : int list;       (** sub-ids, includes q *)
  distance : float;
  window_start : int option;  (** [Some start] for STGQ, [None] for SGQ *)
}

(** Where complete qualified groups are delivered.  [offer] receives every
    leaf the search reaches; [bound] feeds distance pruning (Lemma 2) — a
    node is cut when no completion can get strictly below it.  The
    single-best solvers use an incumbent cell; {!Topk} keeps the N best
    and bounds by the current worst kept. *)
type sink = {
  offer : found -> unit;
  bound : unit -> float;
}

(** [best_sink ?bound_init cell] — the classic incumbent: keeps the
    strictly better solution in [cell], bounds by it.  [bound_init] seeds
    distance pruning before any solution is found (used by STGArrange
    with the PCArrange target); a returned solution may exceed the seed
    and must be re-checked by the caller. *)
val best_sink : ?bound_init:float -> found option ref -> sink

(** [solve_social ctx ~p ~k ~config ~stats] runs SGSelect's search on an
    engine context: optimal group of [p] sub-ids containing the
    initiator minimising total distance under the acquaintance bound
    [k].  [eligible] (default: everyone) restricts the candidate set —
    the per-slot STGQ baseline uses it to keep only the attendees
    available during a window. *)
val solve_social :
  ?eligible:(int -> bool) -> ?bound_init:float ->
  Engine.Context.t -> p:int -> k:int -> config:config -> stats:stats -> found option

(** [solve_social_out ?budget ctx ...] is {!solve_social} under a
    cooperative {!Budget}: the search polls the budget every
    {!Budget.check_interval} node expansions and, instead of raising on
    a trip, reports how far it got as an {!Anytime.outcome}.  With the
    default {!Budget.unlimited} the exploration is bit-identical to
    {!solve_social} and the outcome is always [Optimal]. *)
val solve_social_out :
  ?eligible:(int -> bool) -> ?bound_init:float -> ?budget:Budget.t ->
  Engine.Context.t -> p:int -> k:int -> config:config -> stats:stats ->
  found Anytime.outcome

(** [solve_temporal ctx ~p ~k ~m ~pivots ~config ~stats] runs
    STGSelect's search over the context's availability slab; only the
    given pivot slots are explored (Lemma 4).  The best solution across
    all pivots is returned; the incumbent bound is shared between pivots
    for extra pruning (sound: it only tightens Lemma 2).
    @raise Invalid_argument on a social-only context. *)
val solve_temporal :
  ?bound_init:float ->
  Engine.Context.t ->
  p:int -> k:int -> m:int ->
  pivots:int list ->
  config:config -> stats:stats ->
  found option

(** Budgeted {!solve_temporal}; see {!solve_social_out}. *)
val solve_temporal_out :
  ?bound_init:float -> ?budget:Budget.t ->
  Engine.Context.t ->
  p:int -> k:int -> m:int ->
  pivots:int list ->
  config:config -> stats:stats ->
  found Anytime.outcome

(** Sink-driven variants of the two searches — same exploration and
    pruning, custom solution collection.  The result is the budget trip
    that truncated the search, or [None] for a complete run (always
    [None] under the default {!Budget.unlimited}). *)
val solve_social_sink :
  ?eligible:(int -> bool) -> ?budget:Budget.t ->
  Engine.Context.t -> p:int -> k:int -> config:config -> stats:stats -> sink:sink ->
  Budget.reason option

val solve_temporal_sink :
  ?budget:Budget.t ->
  Engine.Context.t ->
  p:int -> k:int -> m:int ->
  pivots:int list ->
  config:config -> stats:stats -> sink:sink ->
  Budget.reason option

(** [completion_lower_bound fg ~p ~eligible] — an admissible lower bound
    on the distance of {e any} qualified group over the eligible
    candidates (the sum of the [p-1] smallest candidate distances;
    [infinity] when fewer than [p-1] candidates are eligible).  Feeds
    the anytime gap bound. *)
val completion_lower_bound : Feasible.t -> p:int -> eligible:(int -> bool) -> float

(** Why a temporal {!found} could not become an STGQ solution: the
    search delivered a group with no window start.  [solve_temporal]
    always sets one, so this marks an internal invariant violation;
    callers handle it as a typed error instead of raising. *)
type temporal_error = Missing_window of { group : int list; distance : float }

(** [temporal_solution fg found] converts a temporal search result to a
    solution in original vertex ids. *)
val temporal_solution :
  Feasible.t -> found -> (Query.stg_solution, temporal_error) result

type cache_stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;
}

type t = {
  config : Search_core.config;
  engine : Engine.Cache.t;
  schedules : Timetable.Availability.t array;  (* the array the cache adopted *)
  pool : Engine.Pool.t option;
}

let create ?(config = Search_core.default_config) ?(cache_capacity = 64) ?pool
    (ti : Query.temporal_instance) =
  Query.check_temporal_instance ti;
  if cache_capacity < 1 then invalid_arg "Service.create: capacity must be >= 1";
  let schedules = Array.map Timetable.Availability.copy ti.schedules in
  let engine =
    Engine.Cache.create ~capacity:cache_capacity ~schedules ti.social.Query.graph
  in
  { config; engine; schedules; pool }

(* Every answer leaves the service with a validated certificate: the
   solution is re-checked against the raw instance by Validate (which
   shares no code with the search) before a caller can see it. *)

(* Root span of a served query: every solver, context-build and
   certify span below it (including pooled bucket spans on other
   domains) stitches into one tree. *)
let query_span name ~initiator (f : unit -> 'a) : 'a =
  Obs.Trace.with_span name ~attrs:[ ("initiator", string_of_int initiator) ] f

(* --- flight-recorder publication ------------------------------------

   Every completed query — resilient or exact, single or batched —
   reports its outcome once: to {!Obs.Flightrec} (which decides whether
   the stitched trace is worth retaining) and to {!Obs.Events} (one
   JSONL record).  Costs two atomic loads per query while both sinks
   are off. *)

let plane_on () = Obs.Flightrec.enabled () || Obs.Events.enabled ()

let current_trace_id () =
  match Obs.Trace.current () with
  | Some c -> c.Obs.Trace.trace_id
  | None -> 0

let sgq_params (q : Query.sgq) = [ ("p", q.p); ("s", q.s); ("k", q.k) ]

let stgq_params (q : Query.stgq) =
  [ ("p", q.p); ("s", q.s); ("k", q.k); ("m", q.m) ]

(* The classification of a plain (non-resilient) solve: it either
   returned a certified answer or raised out of the whole query. *)
let exact_classification _result =
  {
    Resilience.c_rung = "exact";
    c_ok = true;
    c_degraded = false;
    c_unavailable = false;
    c_retries = 0;
    c_trip = None;
    c_gap = Some 0.;
  }

let publish ~kind ~initiator ~params ~trace_id ~t0 ~cache_hit
    (c : Resilience.classification) =
  let latency_ns = Obs.now_ns () -. t0 in
  Obs.Flightrec.observe ~trace_id ~kind ~latency_ns
    ~degraded:c.Resilience.c_degraded ~unavailable:c.c_unavailable
    ~retries:c.c_retries ?trip:c.c_trip ();
  Obs.Events.query_completed ~trace_id ~kind ~initiator ~params
    ~rung:c.c_rung
    ~outcome:
      (if c.c_ok then "ok"
       else if c.c_unavailable then "unavailable"
       else "degraded")
    ?gap:c.c_gap ?trip:c.c_trip ~retries:c.c_retries ~latency_ns ~cache_hit
    ~journalled_bytes:0 ()

(* [recorded] opens the query root span, runs [body] inside it, then —
   with the span closed, so the stitched tree is complete — classifies
   and publishes.  Identical to [query_span span body] while the plane
   is off. *)
let recorded ~kind ~span ~initiator ~params t ~classify body =
  if not (plane_on ()) then query_span span ~initiator body
  else begin
    let t0 = Obs.now_ns () in
    let hits0 = (Engine.Cache.stats t.engine).Engine.Cache.hits in
    let trace_id = ref 0 in
    let result =
      query_span span ~initiator (fun () ->
          trace_id := current_trace_id ();
          body ())
    in
    let cache_hit = (Engine.Cache.stats t.engine).Engine.Cache.hits > hits0 in
    publish ~kind ~initiator ~params ~trace_id:!trace_id ~t0 ~cache_hit
      (classify result);
    result
  end

let sgq t ~initiator (query : Query.sgq) =
  recorded ~kind:"sgq" ~span:"service.sgq" ~initiator
    ~params:(sgq_params query) t ~classify:exact_classification
  @@ fun () ->
  Obs.time_hist Instr.sgq_latency @@ fun () ->
  Query.check_sgq query;
  let ctx = Engine.Cache.context t.engine ~initiator ~s:query.s in
  let instance = { Query.graph = Engine.Cache.graph t.engine; initiator } in
  let solution = Sgselect.solve ~config:t.config ~ctx instance query in
  Obs.Trace.with_span "service.certify" @@ fun () ->
  Obs.time_hist Instr.certify_latency @@ fun () ->
  Validate.certify_sg instance query solution

let stgq t ~initiator (query : Query.stgq) =
  recorded ~kind:"stgq" ~span:"service.stgq" ~initiator
    ~params:(stgq_params query) t ~classify:exact_classification
  @@ fun () ->
  Obs.time_hist Instr.stgq_latency @@ fun () ->
  Query.check_stgq query;
  let ctx = Engine.Cache.context t.engine ~initiator ~s:query.s in
  let ti =
    {
      Query.social = { Query.graph = Engine.Cache.graph t.engine; initiator };
      schedules = t.schedules;
    }
  in
  let solution =
    match t.pool with
    | Some pool -> Parallel.solve ~config:t.config ~pool ~ctx ti query
    | None -> Stgselect.solve ~config:t.config ~ctx ti query
  in
  Obs.Trace.with_span "service.certify" @@ fun () ->
  Obs.time_hist Instr.certify_latency @@ fun () ->
  Validate.certify_stg ti query solution

(* Resilient variants: the degradation ladder of {!Resilience} wrapped
   around the same solvers.  Context build and certification both run
   inside the retried closures, so an injected fault at either site is
   retryable; the certificate is feasibility-checked on every rung
   (anytime and heuristic answers included). *)

let sgq_r ?policy ?cancel t ~initiator (query : Query.sgq) =
  recorded ~kind:"sgq" ~span:"service.sgq" ~initiator
    ~params:(sgq_params query) t ~classify:Resilience.classify
  @@ fun () ->
  Obs.Trace.add_attrs [ ("resilient", "true") ];
  Obs.time_hist Instr.sgq_latency @@ fun () ->
  Query.check_sgq query;
  let instance = { Query.graph = Engine.Cache.graph t.engine; initiator } in
  let certify solution =
    Obs.Trace.with_span "service.certify" @@ fun () ->
    Obs.time_hist Instr.certify_latency @@ fun () ->
    Validate.certify_sg instance query solution
  in
  let exact budget =
    let ctx = Engine.Cache.context t.engine ~initiator ~s:query.s in
    let report = Sgselect.solve_report ~config:t.config ~ctx ~budget instance query in
    Resilience.certify_outcome ~certify report.Sgselect.outcome
  in
  let heuristic budget =
    let ctx = Engine.Cache.context t.engine ~initiator ~s:query.s in
    certify (Heuristics.beam_sgq ~ctx ~budget instance query)
  in
  Resilience.run ?policy ?cancel ~exact ~heuristic ()

let stgq_r ?policy ?cancel t ~initiator (query : Query.stgq) =
  recorded ~kind:"stgq" ~span:"service.stgq" ~initiator
    ~params:(stgq_params query) t ~classify:Resilience.classify
  @@ fun () ->
  Obs.Trace.add_attrs [ ("resilient", "true") ];
  Obs.time_hist Instr.stgq_latency @@ fun () ->
  Query.check_stgq query;
  let ti =
    {
      Query.social = { Query.graph = Engine.Cache.graph t.engine; initiator };
      schedules = t.schedules;
    }
  in
  let certify solution =
    Obs.Trace.with_span "service.certify" @@ fun () ->
    Obs.time_hist Instr.certify_latency @@ fun () ->
    Validate.certify_stg ti query solution
  in
  let exact budget =
    let ctx = Engine.Cache.context t.engine ~initiator ~s:query.s in
    let outcome =
      match t.pool with
      | Some pool ->
          (Parallel.solve_report ~config:t.config ~pool ~ctx ~budget ti query)
            .Parallel.outcome
      | None ->
          (Stgselect.solve_report ~config:t.config ~ctx ~budget ti query)
            .Stgselect.outcome
    in
    Resilience.certify_outcome ~certify outcome
  in
  let heuristic budget =
    let ctx = Engine.Cache.context t.engine ~initiator ~s:query.s in
    certify (Heuristics.beam_stgq ~ctx ~budget ti query)
  in
  Resilience.run ?policy ?cancel ~exact ~heuristic ()

(* Batched answering: group the in-flight requests by (initiator, s),
   fetch one context per group through the cache, and pipeline context
   builds behind solves when the service has a pool (see
   {!Engine.Batch}).  Solves run the sequential kernel on the calling
   domain — the pool accelerates the builds, not the solves — which is
   what keeps every batched answer bit-identical to the
   one-query-at-a-time path.  The whole batch runs inside one
   {!Engine.Cache.with_solves} region, so a concurrent calendar edit
   lands between batches, never between a solve and its certification. *)

let sgq_batch t (reqs : (int * Query.sgq) list) =
  List.iter (fun (_, q) -> Query.check_sgq q) reqs;
  Obs.Trace.with_span "service.sgq_batch"
    ~attrs:[ ("queries", string_of_int (List.length reqs)) ]
  @@ fun () ->
  Engine.Cache.with_solves t.engine @@ fun () ->
  Engine.Batch.run ?pool:t.pool ~cache:t.engine
    ~key:(fun (initiator, (q : Query.sgq)) -> (initiator, q.s))
    ~solve:(fun ctx (initiator, (q : Query.sgq)) ->
      recorded ~kind:"sgq" ~span:"service.sgq" ~initiator
        ~params:(sgq_params q) t ~classify:exact_classification
      @@ fun () ->
      Obs.time_hist Instr.sgq_latency @@ fun () ->
      let instance = { Query.graph = Engine.Cache.graph t.engine; initiator } in
      let solution = Sgselect.solve ~config:t.config ~ctx instance q in
      Obs.Trace.with_span "service.certify" @@ fun () ->
      Obs.time_hist Instr.certify_latency @@ fun () ->
      Validate.certify_sg instance q solution)
    reqs

let stgq_batch t (reqs : (int * Query.stgq) list) =
  List.iter (fun (_, q) -> Query.check_stgq q) reqs;
  Obs.Trace.with_span "service.stgq_batch"
    ~attrs:[ ("queries", string_of_int (List.length reqs)) ]
  @@ fun () ->
  Engine.Cache.with_solves t.engine @@ fun () ->
  Engine.Batch.run ?pool:t.pool ~cache:t.engine
    ~key:(fun (initiator, (q : Query.stgq)) -> (initiator, q.s))
    ~warm:(fun ctx (_, (q : Query.stgq)) ->
      (* Pre-fill the Lemma-4 pivot memo for every window length the
         group will ask for, on the build domain, off the solve path. *)
      ignore (Engine.Context.pivots ctx ~m:q.m : int list))
    ~solve:(fun ctx (initiator, (q : Query.stgq)) ->
      recorded ~kind:"stgq" ~span:"service.stgq" ~initiator
        ~params:(stgq_params q) t ~classify:exact_classification
      @@ fun () ->
      Obs.time_hist Instr.stgq_latency @@ fun () ->
      let ti =
        {
          Query.social = { Query.graph = Engine.Cache.graph t.engine; initiator };
          schedules = t.schedules;
        }
      in
      let solution = Stgselect.solve ~config:t.config ~ctx ti q in
      Obs.Trace.with_span "service.certify" @@ fun () ->
      Obs.time_hist Instr.certify_latency @@ fun () ->
      Validate.certify_stg ti q solution)
    reqs

(* Resilient batches: the grouping/pipelining is identical, but each
   query walks its own {!Resilience} ladder with budgets built fresh
   from the policy per attempt — one slow query exhausts its own
   deadline and degrades alone; its groupmates' budgets are untouched. *)

let sgq_batch_r ?policy ?cancel t (reqs : (int * Query.sgq) list) =
  List.iter (fun (_, q) -> Query.check_sgq q) reqs;
  Obs.Trace.with_span "service.sgq_batch"
    ~attrs:
      [
        ("queries", string_of_int (List.length reqs)); ("resilient", "true");
      ]
  @@ fun () ->
  Engine.Cache.with_solves t.engine @@ fun () ->
  Engine.Batch.run ?pool:t.pool ~cache:t.engine
    ~key:(fun (initiator, (q : Query.sgq)) -> (initiator, q.s))
    ~solve:(fun ctx (initiator, (q : Query.sgq)) ->
      recorded ~kind:"sgq" ~span:"service.sgq" ~initiator
        ~params:(sgq_params q) t ~classify:Resilience.classify
      @@ fun () ->
      Obs.Trace.add_attrs [ ("resilient", "true") ];
      Obs.time_hist Instr.sgq_latency @@ fun () ->
      let instance = { Query.graph = Engine.Cache.graph t.engine; initiator } in
      let certify solution =
        Obs.Trace.with_span "service.certify" @@ fun () ->
        Obs.time_hist Instr.certify_latency @@ fun () ->
        Validate.certify_sg instance q solution
      in
      let exact budget =
        let report =
          Sgselect.solve_report ~config:t.config ~ctx ~budget instance q
        in
        Resilience.certify_outcome ~certify report.Sgselect.outcome
      in
      let heuristic budget = certify (Heuristics.beam_sgq ~ctx ~budget instance q) in
      Resilience.run ?policy ?cancel ~exact ~heuristic ())
    reqs

let stgq_batch_r ?policy ?cancel t (reqs : (int * Query.stgq) list) =
  List.iter (fun (_, q) -> Query.check_stgq q) reqs;
  Obs.Trace.with_span "service.stgq_batch"
    ~attrs:
      [
        ("queries", string_of_int (List.length reqs)); ("resilient", "true");
      ]
  @@ fun () ->
  Engine.Cache.with_solves t.engine @@ fun () ->
  Engine.Batch.run ?pool:t.pool ~cache:t.engine
    ~key:(fun (initiator, (q : Query.stgq)) -> (initiator, q.s))
    ~warm:(fun ctx (_, (q : Query.stgq)) ->
      ignore (Engine.Context.pivots ctx ~m:q.m : int list))
    ~solve:(fun ctx (initiator, (q : Query.stgq)) ->
      recorded ~kind:"stgq" ~span:"service.stgq" ~initiator
        ~params:(stgq_params q) t ~classify:Resilience.classify
      @@ fun () ->
      Obs.Trace.add_attrs [ ("resilient", "true") ];
      Obs.time_hist Instr.stgq_latency @@ fun () ->
      let ti =
        {
          Query.social = { Query.graph = Engine.Cache.graph t.engine; initiator };
          schedules = t.schedules;
        }
      in
      let certify solution =
        Obs.Trace.with_span "service.certify" @@ fun () ->
        Obs.time_hist Instr.certify_latency @@ fun () ->
        Validate.certify_stg ti q solution
      in
      let exact budget =
        let report = Stgselect.solve_report ~config:t.config ~ctx ~budget ti q in
        Resilience.certify_outcome ~certify report.Stgselect.outcome
      in
      let heuristic budget = certify (Heuristics.beam_stgq ~ctx ~budget ti q) in
      Resilience.run ?policy ?cancel ~exact ~heuristic ())
    reqs

let cache_stats t =
  let s = Engine.Cache.stats t.engine in
  {
    hits = s.Engine.Cache.hits;
    misses = s.Engine.Cache.misses;
    coalesced = s.Engine.Cache.coalesced;
    evictions = s.Engine.Cache.evictions;
    entries = s.Engine.Cache.entries;
  }

let n_vertices t = Socgraph.Graph.n_vertices (Engine.Cache.graph t.engine)

let horizon t =
  if Array.length t.schedules = 0 then 0
  else Timetable.Availability.horizon t.schedules.(0)

let graph t = Engine.Cache.graph t.engine

let schedules t = Array.map Timetable.Availability.copy t.schedules

let epoch t = Engine.Cache.epoch t.engine

let update_graph ?touched t graph =
  if
    Socgraph.Graph.n_vertices graph
    <> Socgraph.Graph.n_vertices (Engine.Cache.graph t.engine)
  then invalid_arg "Service.update_graph: vertex count changed";
  Engine.Cache.set_graph ?touched t.engine graph

let update_schedule t ~vertex schedule =
  if vertex < 0 || vertex >= Array.length t.schedules then
    invalid_arg "Service.update_schedule: vertex out of range";
  if
    Timetable.Availability.horizon schedule
    <> Timetable.Availability.horizon t.schedules.(vertex)
  then invalid_arg "Service.update_schedule: horizon mismatch";
  Engine.Cache.set_schedule t.engine ~vertex schedule

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

let log = Logs.Src.create "stgq.service" ~doc:"STGQ query service"

module Log = (val Logs.src_log log)

type t = {
  config : Search_core.config;
  capacity : int;
  mutable graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;
  cache : (int * int, Feasible.t) Hashtbl.t;  (* (initiator, s) -> fg *)
  mutable order : (int * int) list;           (* most recent first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(config = Search_core.default_config) ?(cache_capacity = 64)
    (ti : Query.temporal_instance) =
  Query.check_temporal_instance ti;
  if cache_capacity < 1 then invalid_arg "Service.create: capacity must be >= 1";
  {
    config;
    capacity = cache_capacity;
    graph = ti.social.Query.graph;
    schedules = Array.map Timetable.Availability.copy ti.schedules;
    cache = Hashtbl.create 64;
    order = [];
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t key = t.order <- key :: List.filter (fun k -> k <> key) t.order

let feasible_for t ~initiator ~s =
  let key = (initiator, s) in
  match Hashtbl.find_opt t.cache key with
  | Some fg ->
      t.hits <- t.hits + 1;
      touch t key;
      Log.debug (fun m -> m "feasible-graph cache hit for (q=%d, s=%d)" initiator s);
      fg
  | None ->
      t.misses <- t.misses + 1;
      Log.debug (fun m -> m "feasible-graph cache miss for (q=%d, s=%d)" initiator s);
      let fg = Feasible.extract { Query.graph = t.graph; initiator } ~s in
      if Hashtbl.length t.cache >= t.capacity then begin
        match List.rev t.order with
        | oldest :: _ ->
            Hashtbl.remove t.cache oldest;
            t.order <- List.filter (fun k -> k <> oldest) t.order;
            t.evictions <- t.evictions + 1
        | [] -> ()
      end;
      Hashtbl.replace t.cache key fg;
      touch t key;
      fg

(* Every answer leaves the service with a validated certificate: the
   solution is re-checked against the raw instance by Validate (which
   shares no code with the search) before a caller can see it. *)

let sgq t ~initiator (query : Query.sgq) =
  let feasible = feasible_for t ~initiator ~s:query.s in
  let instance = { Query.graph = t.graph; initiator } in
  Validate.certify_sg instance query
    (Sgselect.solve ~config:t.config ~feasible instance query)

let stgq t ~initiator (query : Query.stgq) =
  let feasible = feasible_for t ~initiator ~s:query.s in
  let ti =
    { Query.social = { Query.graph = t.graph; initiator }; schedules = t.schedules }
  in
  Validate.certify_stg ti query (Stgselect.solve ~config:t.config ~feasible ti query)

let cache_stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.cache;
  }

let update_graph t graph =
  if Socgraph.Graph.n_vertices graph <> Socgraph.Graph.n_vertices t.graph then
    invalid_arg "Service.update_graph: vertex count changed";
  t.graph <- graph;
  Hashtbl.reset t.cache;
  t.order <- []

let update_schedule t ~vertex schedule =
  if vertex < 0 || vertex >= Array.length t.schedules then
    invalid_arg "Service.update_schedule: vertex out of range";
  if
    Timetable.Availability.horizon schedule
    <> Timetable.Availability.horizon t.schedules.(vertex)
  then invalid_arg "Service.update_schedule: horizon mismatch";
  t.schedules.(vertex) <- Timetable.Availability.copy schedule

(** A multi-initiator query service — the deployment the paper closes
    with ("we are now implementing the proposed algorithms in Facebook",
    §6).

    Any member of the dataset may pose queries.  Radius-graph extraction
    (§3.2.1) is the shared prefix of every query an initiator poses, so
    the service memoises feasible graphs per [(initiator, s)] in a
    bounded LRU cache; schedules are read at query time, so calendar
    changes need no invalidation — only social-graph changes do
    (see {!update_graph}). *)

type t

type cache_stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

(** [create ?config ?cache_capacity ti] — [cache_capacity] (default 64)
    bounds the number of cached feasible graphs. *)
val create :
  ?config:Search_core.config -> ?cache_capacity:int ->
  Query.temporal_instance -> t

(** [sgq t ~initiator query] answers an SGQ for any member.  The answer
    carries a validated certificate: it was re-checked against the raw
    instance by {!Validate} before being returned.
    @raise Validate.Certificate_failure if the re-check fails (a solver
    bug surfacing — never user error). *)
val sgq : t -> initiator:int -> Query.sgq -> Query.sg_solution option

(** [stgq t ~initiator query] answers an STGQ for any member; certified
    like {!sgq}. *)
val stgq : t -> initiator:int -> Query.stgq -> Query.stg_solution option

(** [cache_stats t] — cumulative cache behaviour. *)
val cache_stats : t -> cache_stats

(** [update_graph t graph] replaces the social graph (same vertex count
    required) and drops every cached feasible graph. *)
val update_graph : t -> Socgraph.Graph.t -> unit

(** [update_schedule t ~vertex schedule] replaces one calendar (same
    horizon required); feasible-graph caches are unaffected. *)
val update_schedule : t -> vertex:int -> Timetable.Availability.t -> unit

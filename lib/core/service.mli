(** A multi-initiator query service — the deployment the paper closes
    with ("we are now implementing the proposed algorithms in Facebook",
    §6).

    Any member of the dataset may pose queries.  Context construction
    (radius extraction, availability slab, pivot index) is the shared
    prefix of every query an initiator poses, so the service memoises
    full {!Engine.Context}s per [(initiator, s)] in {!Engine.Cache}'s
    O(1) LRU.  Calendar changes are applied in place and seen by every
    cached context immediately — only social-graph changes invalidate
    (see {!update_graph}).  With a {!Engine.Pool} attached, STGQ answers
    are computed by the pooled parallel solver. *)

type t

type cache_stats = {
  hits : int;
  misses : int;
  coalesced : int;  (** lookups that joined another caller's in-flight build *)
  evictions : int;
  entries : int;
}

(** [create ?config ?cache_capacity ?pool ti] — [cache_capacity]
    (default 64) bounds the number of cached contexts; [pool] (default:
    none, i.e. sequential STGQ solving) routes STGQ pivot buckets
    through a persistent domain pool. *)
val create :
  ?config:Search_core.config -> ?cache_capacity:int -> ?pool:Engine.Pool.t ->
  Query.temporal_instance -> t

(** [sgq t ~initiator query] answers an SGQ for any member.  The answer
    carries a validated certificate: it was re-checked against the raw
    instance by {!Validate} before being returned.
    @raise Validate.Certificate_failure if the re-check fails (a solver
    bug surfacing — never user error). *)
val sgq : t -> initiator:int -> Query.sgq -> Query.sg_solution option

(** [stgq t ~initiator query] answers an STGQ for any member; certified
    like {!sgq}. *)
val stgq : t -> initiator:int -> Query.stgq -> Query.stg_solution option

(** [sgq_r ?policy ?cancel t ~initiator query] answers through the
    {!Resilience} degradation ladder: exact within the policy's budget,
    else the best anytime incumbent with its gap bound, else a budgeted
    beam heuristic, else a typed error — never a hang or a raw
    exception.  Context construction and certification run inside the
    retried closures, so transient faults at either are retried; every
    returned value (any rung) carries a validated feasibility
    certificate. *)
val sgq_r :
  ?policy:Resilience.policy -> ?cancel:bool Atomic.t ->
  t -> initiator:int -> Query.sgq ->
  (Query.sg_solution Resilience.answer, Resilience.error) result

(** [stgq_r ?policy ?cancel t ~initiator query] — the temporal analogue
    of {!sgq_r}; uses the pooled parallel solver when the service has a
    pool (the policy budget is shared across its buckets). *)
val stgq_r :
  ?policy:Resilience.policy -> ?cancel:bool Atomic.t ->
  t -> initiator:int -> Query.stgq ->
  (Query.stg_solution Resilience.answer, Resilience.error) result

(** [sgq_batch t reqs] answers every [(initiator, query)] request,
    results in input order, each certified exactly as {!sgq} certifies.
    Requests are grouped by [(initiator, s)] and each group shares one
    cached context ({!Engine.Batch}); with a pool attached, the context
    build for the next group is pipelined behind the current group's
    solves.  Answers are bit-identical to calling {!sgq} per request. *)
val sgq_batch : t -> (int * Query.sgq) list -> Query.sg_solution option list

(** [stgq_batch t reqs] — the temporal analogue of {!sgq_batch}.  The
    group's Lemma-4 pivot lists are pre-warmed on the build domain, so
    solves start with every shared pruning artifact in place. *)
val stgq_batch : t -> (int * Query.stgq) list -> Query.stg_solution option list

(** [sgq_batch_r ?policy ?cancel t reqs] — batched {!sgq_r}: same
    grouping and context sharing, but each request walks its own
    {!Resilience} ladder with per-attempt budgets built fresh from
    [policy], so one slow query degrades alone without consuming its
    groupmates' budgets. *)
val sgq_batch_r :
  ?policy:Resilience.policy -> ?cancel:bool Atomic.t ->
  t -> (int * Query.sgq) list ->
  (Query.sg_solution Resilience.answer, Resilience.error) result list

(** [stgq_batch_r ?policy ?cancel t reqs] — batched {!stgq_r} with the
    same per-query budget isolation. *)
val stgq_batch_r :
  ?policy:Resilience.policy -> ?cancel:bool Atomic.t ->
  t -> (int * Query.stgq) list ->
  (Query.stg_solution Resilience.answer, Resilience.error) result list

(** [cache_stats t] — cumulative context-cache behaviour. *)
val cache_stats : t -> cache_stats

(** [n_vertices t] — members in the served social graph.  Valid
    initiator and calendar-edit vertex ids are [0 .. n_vertices t - 1];
    the wire server uses this to reject out-of-range requests before
    they reach a solver. *)
val n_vertices : t -> int

(** [horizon t] — slot horizon shared by every served calendar (the
    horizon a {!update_schedule} replacement must match). *)
val horizon : t -> int

(** [graph t] — the social graph currently served (immutable). *)
val graph : t -> Socgraph.Graph.t

(** [schedules t] — a deep copy of the served calendars, indexed by
    vertex.  This is what a durable checkpoint snapshots: the copy means
    a concurrent in-place calendar rewrite cannot tear the image. *)
val schedules : t -> Timetable.Availability.t array

(** [epoch t] — the engine cache's mutation epoch (see
    {!Engine.Cache.epoch}). *)
val epoch : t -> int

(** [update_graph ?touched t graph] replaces the social graph (same
    vertex count required).  Without [touched], every cached context is
    dropped; with the delta's incident vertices, only the contexts whose
    feasible set meets them ({!Engine.Cache.set_graph}). *)
val update_graph : ?touched:int list -> t -> Socgraph.Graph.t -> unit

(** [update_schedule t ~vertex schedule] replaces one calendar (same
    horizon required); cached contexts observe the change immediately. *)
val update_schedule : t -> vertex:int -> Timetable.Availability.t -> unit

type report = {
  solution : Query.sg_solution option;
  outcome : Query.sg_solution Anytime.outcome;
  stats : Search_core.stats;
  feasible_size : int;
}

let log = Logs.Src.create "stgq.sgselect" ~doc:"SGSelect query processing"

module Log = (val Logs.src_log log)

let solve_report ?(config = Search_core.default_config) ?ctx ?initial_bound
    ?budget (instance : Query.instance) (query : Query.sgq) =
  Obs.Trace.with_span "sgselect.solve"
    ~attrs:
      [
        ("p", string_of_int query.p);
        ("s", string_of_int query.s);
        ("k", string_of_int query.k);
      ]
  @@ fun () ->
  Query.check_sgq query;
  Query.check_instance instance;
  let ctx =
    match ctx with
    | Some c ->
        Engine.Context.ensure_for c ~initiator:instance.Query.initiator ~s:query.s;
        c
    | None -> Feasible.context_of_instance instance ~s:query.s
  in
  let fg = ctx.Engine.Context.fg in
  Obs.Trace.add_attrs [ ("feasible", string_of_int (Feasible.size fg)) ];
  let stats = Search_core.fresh_stats () in
  let found =
    Search_core.solve_social_out ?bound_init:initial_bound ?budget ctx
      ~p:query.p ~k:query.k ~config ~stats
  in
  Instr.record_search stats;
  Log.debug (fun m ->
      m "SGQ(p=%d,s=%d,k=%d): |V_F|=%d, %d nodes, %s" query.p query.s query.k
        (Feasible.size fg) stats.Search_core.nodes
        (match found with
        | Anytime.Optimal (Some f) -> Printf.sprintf "optimum %g" f.Search_core.distance
        | Anytime.Optimal None -> "infeasible"
        | Anytime.Feasible_best { best; gap; _ } ->
            Printf.sprintf "anytime %g (gap <= %g)" best.Search_core.distance gap
        | Anytime.Exhausted reason ->
            Printf.sprintf "exhausted (%s)" (Budget.reason_name reason)));
  let outcome =
    Anytime.map
      (fun { Search_core.group; distance; _ } ->
        { Query.attendees = Feasible.originals fg group; total_distance = distance })
      found
  in
  { solution = Anytime.solution outcome; outcome; stats; feasible_size = Feasible.size fg }

let solve ?config ?ctx ?initial_bound instance query =
  (solve_report ?config ?ctx ?initial_bound instance query).solution

(* A cheap beam pass seeds the incumbent bound: Lemma-2 pruning is active
   from the first node instead of waiting for the first feasible leaf.
   The +eps keeps solutions equal to the seed reachable, so the result is
   still the exact optimum (and never worse than the seed).  One context
   serves both passes. *)
let solve_warm ?config ?(beam_width = 16) instance (query : Query.sgq) =
  Query.check_sgq query;
  let ctx = Feasible.context_of_instance instance ~s:query.s in
  let seed = Heuristics.beam_sgq ~width:beam_width ~ctx instance query in
  let initial_bound =
    Option.map (fun (s : Query.sg_solution) -> s.total_distance +. 1e-6) seed
  in
  solve ?config ~ctx ?initial_bound instance query

(** Algorithm SGSelect (§3.2): optimal Social Group Query processing.

    Builds (or reuses) an engine context, then explores groups by access
    ordering with distance and acquaintance pruning; guaranteed to
    return a group of minimum total social distance satisfying all SGQ
    constraints (Theorem 2, with the Lemma-3 correction of DESIGN.md). *)

type report = {
  solution : Query.sg_solution option;
      (** the carried answer ([= Anytime.solution outcome]) *)
  outcome : Query.sg_solution Anytime.outcome;
      (** exact, anytime-truncated, or exhausted (see {!Anytime}); always
          [Optimal] without a budget *)
  stats : Search_core.stats;
  feasible_size : int;  (** |V_F| after radius extraction *)
}

(** [solve ?config ?ctx instance query] is the optimal group, or [None]
    when no group of [query.p] attendees satisfies the constraints.
    [ctx] supplies a pre-built engine context (e.g. from
    {!Engine.Cache}); it must have been built from [instance] with
    [query.s].
    @raise Invalid_argument if [ctx]'s initiator or [s] differs. *)
val solve :
  ?config:Search_core.config -> ?ctx:Engine.Context.t -> ?initial_bound:float ->
  Query.instance -> Query.sgq -> Query.sg_solution option

(** [solve_warm ?config ?beam_width instance query] runs a cheap beam
    pass first and seeds the exact search's distance pruning with its
    result — the answer is still the exact optimum, but tightly-
    constrained instances (small [k]) prune from the first node instead
    of waiting for a first feasible leaf.  [beam_width] defaults to 16.
    Both passes share one context. *)
val solve_warm :
  ?config:Search_core.config -> ?beam_width:int ->
  Query.instance -> Query.sgq -> Query.sg_solution option

(** [solve_report ?config ?ctx ?budget instance query] also exposes
    search-effort counters for the experiment harness.  [budget] bounds
    the solve cooperatively; on a trip the report's [outcome] carries
    the anytime answer instead of raising (see {!Anytime}). *)
val solve_report :
  ?config:Search_core.config -> ?ctx:Engine.Context.t -> ?initial_bound:float ->
  ?budget:Budget.t ->
  Query.instance -> Query.sgq -> report

type result = {
  k_used : int;
  solution : Query.stg_solution;
}

let run ?config ?k_max (ti : Query.temporal_instance) ~p ~s ~m ~target_distance =
  let k_max = Option.value k_max ~default:(p - 1) in
  (* One context is shared across the whole k-relaxation ladder: only
     the acquaintance bound changes between attempts, never (q, s). *)
  let ctx = Feasible.context_of_temporal ti ~s in
  let rec attempt k =
    if k > k_max then None
    else
      match
        Stgselect.solve ?config ~ctx ~initial_bound:(target_distance +. 1e-6) ti
          { Query.p; s; k; m }
      with
      | Some solution when solution.Query.st_total_distance <= target_distance +. 1e-9 -> (
          match Validate.check_stg ti { Query.p; s; k; m } solution with
          | [] -> Some { k_used = k; solution }
          | violations -> raise (Validate.Certificate_failure violations))
      | _ -> attempt (k + 1)
  in
  attempt 0

let versus_pcarrange ?config ti ~p ~s ~m =
  match Pcarrange.run ti ~p ~s ~m with
  | None -> None
  | Some pc -> (
      match run ?config ti ~p ~s ~m ~target_distance:pc.Pcarrange.total_distance with
      | None -> None
      | Some stg -> Some (stg, pc))

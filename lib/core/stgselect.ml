type report = {
  solution : Query.stg_solution option;
  outcome : Query.stg_solution Anytime.outcome;
  stats : Search_core.stats;
  feasible_size : int;
  pivots_scanned : int;
}

let log = Logs.Src.create "stgq.stgselect" ~doc:"STGSelect query processing"

module Log = (val Logs.src_log log)

(* Convert a [found]-level outcome into solution space.  A found group
   without a window start is an internal invariant violation; it is
   logged and dropped, degrading a [Feasible_best] to [Exhausted]. *)
let convert_outcome fg (found : Search_core.found Anytime.outcome) =
  let conv f =
    match Search_core.temporal_solution fg f with
    | Ok s -> Some s
    | Error (Search_core.Missing_window _) ->
        Log.err (fun m_ ->
            m_ "temporal search delivered a group without a window start; \
                dropping the (invalid) answer");
        None
  in
  match found with
  | Anytime.Optimal None -> Anytime.Optimal None
  | Anytime.Optimal (Some f) -> Anytime.Optimal (conv f)
  | Anytime.Feasible_best { best; gap; reason } -> (
      match conv best with
      | Some s -> Anytime.Feasible_best { best = s; gap; reason }
      | None -> Anytime.Exhausted reason)
  | Anytime.Exhausted reason -> Anytime.Exhausted reason

let solve_report ?(config = Search_core.default_config) ?ctx ?initial_bound
    ?budget (ti : Query.temporal_instance) (query : Query.stgq) =
  Obs.Trace.with_span "stgselect.solve"
    ~attrs:
      [
        ("p", string_of_int query.p);
        ("s", string_of_int query.s);
        ("k", string_of_int query.k);
        ("m", string_of_int query.m);
      ]
  @@ fun () ->
  Query.check_stgq query;
  Query.check_temporal_instance ti;
  let ctx =
    match ctx with
    | Some c ->
        Engine.Context.ensure_for c ~initiator:ti.social.Query.initiator ~s:query.s;
        if not (Engine.Context.has_schedules c) then
          invalid_arg "Stgselect: context was built without schedules";
        c
    | None -> Feasible.context_of_temporal ti ~s:query.s
  in
  let fg = ctx.Engine.Context.fg in
  let pivots = Engine.Context.pivots ctx ~m:query.m in
  Obs.Trace.add_attrs
    [
      ("feasible", string_of_int (Feasible.size fg));
      ("pivots", string_of_int (List.length pivots));
    ];
  let stats = Search_core.fresh_stats () in
  let found =
    Search_core.solve_temporal_out ?bound_init:initial_bound ?budget ctx
      ~p:query.p ~k:query.k ~m:query.m ~pivots ~config ~stats
  in
  Instr.record_search stats;
  Log.debug (fun m_ ->
      m_ "STGQ(p=%d,s=%d,k=%d,m=%d): |V_F|=%d, %d pivots, %d nodes, %s" query.p
        query.s query.k query.m (Feasible.size fg) (List.length pivots)
        stats.Search_core.nodes
        (match found with
        | Anytime.Optimal (Some f) -> Printf.sprintf "optimum %g" f.Search_core.distance
        | Anytime.Optimal None -> "infeasible"
        | Anytime.Feasible_best { best; gap; _ } ->
            Printf.sprintf "anytime %g (gap <= %g)" best.Search_core.distance gap
        | Anytime.Exhausted reason ->
            Printf.sprintf "exhausted (%s)" (Budget.reason_name reason)));
  let outcome = convert_outcome fg found in
  {
    solution = Anytime.solution outcome;
    outcome;
    stats;
    feasible_size = Feasible.size fg;
    pivots_scanned = List.length pivots;
  }

let solve ?config ?ctx ?initial_bound ti query =
  (solve_report ?config ?ctx ?initial_bound ti query).solution

(* Beam-seeded exact search; see Sgselect.solve_warm.  One context serves
   both passes. *)
let solve_warm ?config ?(beam_width = 16) ti (query : Query.stgq) =
  Query.check_stgq query;
  let ctx = Feasible.context_of_temporal ti ~s:query.s in
  let seed = Heuristics.beam_stgq ~width:beam_width ~ctx ti query in
  let initial_bound =
    Option.map (fun (s : Query.stg_solution) -> s.st_total_distance +. 1e-6) seed
  in
  solve ?config ~ctx ?initial_bound ti query

(** Algorithm STGSelect (§4.2): optimal Social-Temporal Group Query
    processing.

    Explores only pivot time slots (Lemma 4); per pivot it runs the
    SGSelect search extended with the temporal-extensibility condition and
    availability pruning (Lemma 5).  The incumbent is carried across
    pivots, which only strengthens distance pruning. *)

type report = {
  solution : Query.stg_solution option;
      (** the carried answer ([= Anytime.solution outcome]) *)
  outcome : Query.stg_solution Anytime.outcome;
      (** exact, anytime-truncated, or exhausted (see {!Anytime}); always
          [Optimal] without a budget *)
  stats : Search_core.stats;
  feasible_size : int;
  pivots_scanned : int;
}

(** [solve ?config ?ctx instance query] is the optimal group and
    earliest start slot of a shared [query.m]-slot window, or [None].
    [ctx] supplies a pre-built engine context (see {!Sgselect.solve});
    it must be STGQ-capable (built with schedules). *)
val solve :
  ?config:Search_core.config -> ?ctx:Engine.Context.t -> ?initial_bound:float ->
  Query.temporal_instance -> Query.stgq -> Query.stg_solution option

(** [initial_bound] seeds distance pruning before the first incumbent —
    callers that only care about solutions at most some target distance
    (STGArrange) pass that target, which sharply cuts searches at
    too-small [k].  The returned solution can still exceed the bound and
    must be re-checked.  [budget] bounds the solve cooperatively; on a
    trip the report's [outcome] carries the anytime answer instead of
    raising (see {!Anytime}). *)
val solve_report :
  ?config:Search_core.config -> ?ctx:Engine.Context.t -> ?initial_bound:float ->
  ?budget:Budget.t ->
  Query.temporal_instance -> Query.stgq -> report

(** [convert_outcome fg found] lifts a kernel-level outcome into solution
    space (shared with {!Parallel}, which merges per-bucket outcomes at
    the [found] level first).  A found group missing its window start is
    an internal invariant violation: it is logged and dropped, degrading
    a [Feasible_best] to [Exhausted]. *)
val convert_outcome :
  Feasible.t -> Search_core.found Anytime.outcome ->
  Query.stg_solution Anytime.outcome

(** [solve_warm ?config ?beam_width ti query] — beam-seeded exact search;
    see {!Sgselect.solve_warm}. *)
val solve_warm :
  ?config:Search_core.config -> ?beam_width:int ->
  Query.temporal_instance -> Query.stgq -> Query.stg_solution option

type entry = {
  attendees : int list;
  total_distance : float;
  start_slot : int option;
}

(* The heap holds (distance, sorted group, window).  [seen] deduplicates
   groups reached through several pivots; the first (hence
   earliest-pivot) window is kept.  The bound only tightens once [n]
   groups are held — before that the search must run unbounded, exactly
   like single-best search before its first incumbent. *)
let make_sink ~n =
  let cmp (da, ga, _) (db, gb, _) = compare (da, ga) (db, gb) in
  let kept = Pqueue.Bounded.create ~capacity:n ~cmp in
  let seen = Hashtbl.create 64 in
  let offer (f : Search_core.found) =
    let key = List.sort compare f.Search_core.group in
    if not (Hashtbl.mem seen key) then begin
      let element = (f.Search_core.distance, key, f.Search_core.window_start) in
      if Pqueue.Bounded.add kept element then begin
        (* Rebuild the membership index: an admission may have evicted a
           group, which must become re-offerable. *)
        Hashtbl.reset seen;
        List.iter
          (fun (_, g, _) -> Hashtbl.replace seen g ())
          (Pqueue.Bounded.to_sorted_list kept)
      end
    end
  in
  let bound () =
    if Pqueue.Bounded.is_full kept then
      match Pqueue.Bounded.worst kept with Some (d, _, _) -> d | None -> infinity
    else infinity
  in
  (kept, { Search_core.offer; bound })

let entries_of fg kept =
  List.map
    (fun (d, group, window) ->
      {
        attendees = Feasible.originals fg group;
        total_distance = d;
        start_slot = window;
      })
    (Pqueue.Bounded.to_sorted_list kept)

let sgq ?(config = Search_core.default_config) ?budget ~n instance
    (query : Query.sgq) =
  Query.check_sgq query;
  if n < 0 then invalid_arg "Topk.sgq: negative n";
  let ctx = Feasible.context_of_instance instance ~s:query.s in
  let kept, sink = make_sink ~n in
  let stats = Search_core.fresh_stats () in
  ignore
    (Search_core.solve_social_sink ?budget ctx ~p:query.p ~k:query.k ~config
       ~stats ~sink
      : Budget.reason option);
  entries_of ctx.Engine.Context.fg kept

let stgq ?(config = Search_core.default_config) ?budget ~n
    (ti : Query.temporal_instance) (query : Query.stgq) =
  Query.check_stgq query;
  if n < 0 then invalid_arg "Topk.stgq: negative n";
  let ctx = Feasible.context_of_temporal ti ~s:query.s in
  let pivots = Engine.Context.pivots ctx ~m:query.m in
  let kept, sink = make_sink ~n in
  let stats = Search_core.fresh_stats () in
  ignore
    (Search_core.solve_temporal_sink ?budget ctx ~p:query.p ~k:query.k
       ~m:query.m ~pivots ~config ~stats ~sink
      : Budget.reason option);
  entries_of ctx.Engine.Context.fg kept

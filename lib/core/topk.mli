(** Top-N group queries — a natural extension of SGQ/STGQ.

    Instead of the single optimum, return the [n] distinct qualified
    groups of smallest total social distance (an initiator can then pick
    by taste among near-optimal groups, e.g. preferring a morning slot).
    Runs the same pruned branch-and-bound as SGSelect/STGSelect with a
    bounded-heap sink: once [n] groups are held, the search is bounded by
    the worst kept distance, so the overhead over single-best is small.

    The returned list is sorted by ascending distance.  The multiset of
    returned distances is exact (the [n] smallest achievable); when
    several groups tie at the admission threshold, which of the tied
    groups are reported is unspecified. *)

type entry = {
  attendees : int list;     (** sorted original vertex ids, includes q *)
  total_distance : float;
  start_slot : int option;  (** [Some] for STGQ entries *)
}

(** [sgq ?config ?budget ~n instance query] — up to [n] best SGQ groups.
    Under a {!Budget} that trips, the list is best-effort: every entry
    is a valid group, but the n-smallest claim no longer holds. *)
val sgq :
  ?config:Search_core.config -> ?budget:Budget.t -> n:int ->
  Query.instance -> Query.sgq -> entry list

(** [stgq ?config ?budget ~n ti query] — up to [n] best STGQ groups,
    each with the earliest feasible start of the pivot where it was
    first found.  A group feasible in several periods appears once.
    [budget] as in {!sgq}. *)
val stgq :
  ?config:Search_core.config -> ?budget:Budget.t -> n:int ->
  Query.temporal_instance -> Query.stgq -> entry list

type violation =
  | Wrong_size of { expected : int; got : int }
  | Missing_initiator
  | Duplicate_attendee of int
  | Unknown_vertex of int
  | Radius_violation of int
  | Acquaintance_violation of { vertex : int; non_neighbors : int }
  | Distance_mismatch of { reported : float; actual : float }
  | Window_out_of_range
  | Availability_violation of { vertex : int; slot : int }

let pp_violation ppf = function
  | Wrong_size { expected; got } ->
      Format.fprintf ppf "group has %d attendees, expected %d" got expected
  | Missing_initiator -> Format.pp_print_string ppf "initiator not in group"
  | Duplicate_attendee v -> Format.fprintf ppf "attendee %d listed twice" v
  | Unknown_vertex v -> Format.fprintf ppf "attendee %d outside the graph" v
  | Radius_violation v -> Format.fprintf ppf "attendee %d beyond the social radius" v
  | Acquaintance_violation { vertex; non_neighbors } ->
      Format.fprintf ppf "attendee %d has %d unacquainted attendees" vertex non_neighbors
  | Distance_mismatch { reported; actual } ->
      Format.fprintf ppf "total distance reported %g, recomputed %g" reported actual
  | Window_out_of_range -> Format.pp_print_string ppf "activity window outside horizon"
  | Availability_violation { vertex; slot } ->
      Format.fprintf ppf "attendee %d unavailable at slot %d" vertex slot

let group_violations (instance : Query.instance) (query : Query.sgq) attendees
    reported_distance =
  let g = instance.graph and q = instance.initiator in
  let n = Socgraph.Graph.n_vertices g in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let got = List.length attendees in
  if got <> query.p then add (Wrong_size { expected = query.p; got });
  if not (List.mem q attendees) then add Missing_initiator;
  let rec dups = function
    | a :: (b :: _ as rest) ->
        if a = b then add (Duplicate_attendee a);
        dups rest
    | _ -> ()
  in
  dups (List.sort compare attendees);
  let in_range = List.filter (fun v -> v >= 0 && v < n) attendees in
  List.iter (fun v -> if not (List.mem v in_range) then add (Unknown_vertex v)) attendees;
  let dist = Socgraph.Bounded_dist.distances g ~src:q ~max_edges:query.s in
  let actual = ref 0. in
  List.iter
    (fun v ->
      if Float.is_finite dist.(v) then actual := !actual +. dist.(v)
      else add (Radius_violation v))
    in_range;
  if Float.abs (!actual -. reported_distance) > 1e-6 then
    add (Distance_mismatch { reported = reported_distance; actual = !actual });
  List.iter
    (fun v ->
      let nn =
        List.fold_left
          (fun acc w ->
            if w <> v && not (Socgraph.Graph.adjacent g v w) then acc + 1 else acc)
          0 in_range
      in
      if nn > query.k then add (Acquaintance_violation { vertex = v; non_neighbors = nn }))
    in_range;
  List.rev !violations

let check_sg instance query (solution : Query.sg_solution) =
  group_violations instance query solution.attendees solution.total_distance

let check_stg (ti : Query.temporal_instance) (query : Query.stgq)
    (solution : Query.stg_solution) =
  let social =
    group_violations ti.social (Query.sgq_of_stgq query) solution.st_attendees
      solution.st_total_distance
  in
  let horizon =
    if Array.length ti.schedules = 0 then 0
    else Timetable.Availability.horizon ti.schedules.(0)
  in
  let temporal = ref [] in
  let start = solution.start_slot in
  if start < 0 || start + query.m > horizon then temporal := [ Window_out_of_range ]
  else
    List.iter
      (fun v ->
        if v >= 0 && v < Array.length ti.schedules then
          for slot = start to start + query.m - 1 do
            if not (Timetable.Availability.available ti.schedules.(v) slot) then
              temporal := Availability_violation { vertex = v; slot } :: !temporal
          done)
      solution.st_attendees;
  social @ List.rev !temporal

let is_valid_sg instance query solution = check_sg instance query solution = []
let is_valid_stg ti query solution = check_stg ti query solution = []

exception Certificate_failure of violation list

let () =
  Printexc.register_printer (function
    | Certificate_failure violations ->
        Some
          (Format.asprintf "Certificate_failure: %a"
             (Format.pp_print_list
                ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
                pp_violation)
             violations)
    | _ -> None)

let certify_sg instance query = function
  | None -> None
  | Some solution -> (
      Faultinject.fire Faultinject.Certify;
      match check_sg instance query solution with
      | [] -> Some solution
      | violations -> raise (Certificate_failure violations))

let certify_stg ti query = function
  | None -> None
  | Some solution -> (
      Faultinject.fire Faultinject.Certify;
      match check_stg ti query solution with
      | [] -> Some solution
      | violations -> raise (Certificate_failure violations))

(** Independent solution checking.

    Validators recompute every constraint from the raw instance — they
    share no code with the solvers, so a solver bug cannot hide behind a
    checker bug.  Tests run every solver output through these. *)

type violation =
  | Wrong_size of { expected : int; got : int }
  | Missing_initiator
  | Duplicate_attendee of int
  | Unknown_vertex of int
  | Radius_violation of int       (** attendee beyond s edges of q *)
  | Acquaintance_violation of { vertex : int; non_neighbors : int }
  | Distance_mismatch of { reported : float; actual : float }
  | Window_out_of_range
  | Availability_violation of { vertex : int; slot : int }

val pp_violation : Format.formatter -> violation -> unit

(** [check_sg instance query solution] is the (possibly empty) list of
    violated SGQ constraints. *)
val check_sg : Query.instance -> Query.sgq -> Query.sg_solution -> violation list

(** [check_stg ti query solution] additionally checks the availability
    constraint over the reported window. *)
val check_stg :
  Query.temporal_instance -> Query.stgq -> Query.stg_solution -> violation list

(** [is_valid_sg] / [is_valid_stg] — empty-violation shorthands. *)
val is_valid_sg : Query.instance -> Query.sgq -> Query.sg_solution -> bool

val is_valid_stg :
  Query.temporal_instance -> Query.stgq -> Query.stg_solution -> bool

(** Raised by the [certify_*] gates when a solver answer fails
    re-checking — a solver bug surfacing, never user error.  A printer
    is registered, so an escaped exception still names the violations. *)
exception Certificate_failure of violation list

(** [certify_sg instance query solution] passes a valid (or absent)
    solution through unchanged and raises {!Certificate_failure}
    otherwise.  Answer-serving layers ({!Service}, {!Auto},
    {!Stgarrange}) route every solver result through these, so no
    uncertified answer can reach a caller; the [stgq-lint]
    [uncertified-solver] rule checks the routing statically. *)
val certify_sg :
  Query.instance -> Query.sgq -> Query.sg_solution option ->
  Query.sg_solution option

val certify_stg :
  Query.temporal_instance -> Query.stgq -> Query.stg_solution option ->
  Query.stg_solution option

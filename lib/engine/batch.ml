let log = Logs.Src.create "stgq.engine.batch" ~doc:"Batched multi-query planning"

module Log = (val Logs.src_log log)

let m_batches = Obs.counter "engine.batch.batches"

let m_queries = Obs.counter "engine.batch.queries"

let m_groups = Obs.counter "engine.batch.groups"

let m_size = Obs.histogram ~unit_:Obs.Count "engine.batch.size"

let m_reuse = Obs.gauge "engine.batch.context_reuse_pct"

let m_overlap = Obs.gauge "engine.batch.pipeline_overlap_pct"

type 'req group = {
  g_initiator : int;
  g_s : int;
  g_members : (int * 'req) list;  (* original input index, request *)
}

(* Stable grouping: groups come out in first-appearance order of their
   key, members in input order — so the whole schedule is deterministic
   for a given request list. *)
let group_by key reqs =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i req ->
      let k = key req in
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := (i, req) :: !cell
      | None ->
          Hashtbl.add tbl k (ref [ (i, req) ]);
          order := k :: !order)
    reqs;
  List.rev_map
    (fun ((initiator, s) as k) ->
      let members =
        match Hashtbl.find_opt tbl k with
        | Some cell -> List.rev !cell
        | None -> []
      in
      { g_initiator = initiator; g_s = s; g_members = members })
    !order

let run ?pool ~cache ~key ?(warm = fun _ _ -> ()) ~solve reqs =
  match reqs with
  | [] -> []
  | _ ->
      let groups = group_by key reqs in
      let n_queries = List.length reqs in
      let n_groups = List.length groups in
      Obs.Counter.incr m_batches;
      Obs.Counter.add m_queries n_queries;
      Obs.Counter.add m_groups n_groups;
      List.iter
        (fun g ->
          Obs.Histogram.observe m_size (float_of_int (List.length g.g_members)))
        groups;
      Obs.Gauge.set m_reuse (100 * (n_queries - n_groups) / n_queries);
      Log.debug (fun m ->
          m "batch of %d queries in %d groups" n_queries n_groups);
      Obs.Trace.with_span "batch.run"
        ~attrs:
          [
            ("queries", string_of_int n_queries);
            ("groups", string_of_int n_groups);
          ]
      @@ fun () ->
      let results = Array.make n_queries None in
      (* Build-time accounting for the pipeline-overlap gauge: [hidden]
         is the part of context-build time that ran while the caller was
         still solving the previous group. *)
      let total_build = ref 0. in
      let hidden = ref 0. in
      (* Fetch the group's shared context and pre-warm its memoized
         artifacts.  Runs on a pool worker when pipelined; everything it
         captures is immutable or internally locked (the cache). *)
      let fetch g () =
        let t0 = Obs.now_ns () in
        let ctx = Cache.context cache ~initiator:g.g_initiator ~s:g.g_s in
        List.iter (fun (_, req) -> warm ctx req) g.g_members;
        (ctx, Obs.now_ns () -. t0)
      in
      let solve_group g ctx ~overlap_ns =
        Obs.Trace.with_span "batch.group"
          ~attrs:
            [
              ("initiator", string_of_int g.g_initiator);
              ("s", string_of_int g.g_s);
              ("size", string_of_int (List.length g.g_members));
              ("pipeline.overlap_ns", string_of_int (int_of_float overlap_ns));
            ]
        @@ fun () ->
        List.iter (fun (i, req) -> results.(i) <- Some (solve ctx req)) g.g_members
      in
      (match pool with
      | None ->
          (* No pipeline: builds are inline, sharing still applies. *)
          List.iter
            (fun g ->
              let ctx, build_ns = fetch g () in
              total_build := !total_build +. build_ns;
              solve_group g ctx ~overlap_ns:0.)
            groups
      | Some pool ->
          (* Pipeline: the build for group k+1 is in flight on a worker
             while the caller solves group k; the await below only pays
             whatever the solves did not already hide. *)
          let rec loop g fut rest =
            let t0 = Obs.now_ns () in
            let ctx, build_ns = Pool.await fut in
            let wait_ns = Obs.now_ns () -. t0 in
            let overlap_ns = Float.max 0. (build_ns -. wait_ns) in
            total_build := !total_build +. build_ns;
            hidden := !hidden +. overlap_ns;
            let next =
              match rest with
              | [] -> None
              | g' :: rest' -> Some (g', Pool.submit pool (fetch g'), rest')
            in
            solve_group g ctx ~overlap_ns;
            match next with
            | None -> ()
            | Some (g', fut', rest') -> loop g' fut' rest'
          in
          (match groups with
          | [] -> ()
          | g :: rest -> loop g (Pool.submit pool (fetch g)) rest));
      if !total_build > 0. then
        Obs.Gauge.set m_overlap
          (int_of_float (100. *. !hidden /. !total_build));
      Obs.Trace.add_attrs
        [ ("pipeline.hidden_ns", string_of_int (int_of_float !hidden)) ];
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)

(** Batched multi-query planning: group, share, pipeline.

    A server for millions of users sees many in-flight queries against
    the same region of the social graph.  Per query, the expensive
    shared prefix is the {!Context} build — radius extraction
    (Definition 1), the availability slab, the Lemma-4 pivot index.
    [Batch.run] amortises it: requests are grouped by their
    [(initiator, s)] key — the equivalence under which feasible regions
    coincide exactly, so one context serves the whole group — and each
    group fetches {e one} context through {!Cache} (single-flight, so
    concurrent batches coalesce too).  Pruning artifacts are shared
    through that context: the distance slabs live in [ctx.fg], and the
    [warm] hook runs on the build domain to pre-fill the memoized
    Lemma-4 pivot lists each request will ask for.

    With a {!Pool}, groups are {e pipelined}: the context build for
    group [k+1] is submitted as a pool job before the caller starts
    solving group [k], so builds hide behind solves (the hidden
    nanoseconds surface as the [pipeline.overlap_ns] span attribute and
    the [engine.batch.pipeline_overlap_pct] gauge).  Solves themselves
    run on the calling domain, in input order, with the sequential
    kernel — which is what keeps batched answers bit-identical to the
    one-query-at-a-time path. *)

(** [run ?pool ~cache ~key ?warm ~solve reqs] answers every request and
    returns the results in input order.

    - [key req] is the request's [(initiator, s)] — requests with equal
      keys form one group and share one context (grouping is stable:
      groups are solved in first-appearance order, members in input
      order);
    - [warm ctx req] (default: nothing) runs on the domain that fetched
      the group's context, before any solve — use it to pre-compute
      memoized artifacts (e.g. [Context.pivots ~m]) off the solve path;
    - [solve ctx req] runs on the calling domain.

    Without a pool the same grouping and sharing apply; builds simply
    happen inline.  The caller must not be a worker of [pool] (awaiting
    a build from inside the pool can deadlock it). *)
val run :
  ?pool:Pool.t ->
  cache:Cache.t ->
  key:('req -> int * int) ->
  ?warm:(Context.t -> 'req -> unit) ->
  solve:(Context.t -> 'req -> 'res) ->
  'req list ->
  'res list

let log = Logs.Src.create "stgq.engine.cache" ~doc:"Keyed context cache"

module Log = (val Logs.src_log log)

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  entries : int;
}

(* Registered metrics mirror the per-cache [stats] record so fleet-wide
   totals are readable without a handle on any particular cache. *)
let m_lookups = Obs.counter "engine.cache.lookups"

let m_hits = Obs.counter "engine.cache.hits"

let m_misses = Obs.counter "engine.cache.misses"

let m_coalesced = Obs.counter "engine.cache.coalesced"

let m_evictions = Obs.counter "engine.cache.evictions"

let m_entries = Obs.gauge "engine.cache.entries"

let m_epoch = Obs.gauge "engine.cache.epoch"

let m_selective_drops = Obs.counter "engine.cache.selective_drops"

(* Intrusive doubly-linked recency list: most recent at [head], eviction
   victim at [tail].  Every operation is O(1), unlike the seed service's
   [List.filter]-per-access ordering. *)
type node = {
  key : int * int;
  ctx : Context.t;
  mutable prev : node option;
  mutable next : node option;
}

(* All mutable fields are guarded by [lock]; [Context.build] itself runs
   outside the lock (it is the expensive part), with in-flight keys
   tracked in [building] so concurrent misses coalesce onto one build.
   [solvers]/[solver_done] implement the readers side of the
   readers-writer discipline: {!with_solves} regions run concurrently
   with each other, while {!set_schedule}/{!set_graph} wait for the
   region count to drain so an edit never lands mid-solve. *)
type t = {
  capacity : int;
  schedules : Timetable.Availability.t array option;
  mutable graph : Socgraph.Graph.t;
  mutable graph_gen : int;  (* bumped by [set_graph]; guards stale inserts *)
  mutable epoch : int;  (* bumped by every mutation; exposed for recovery *)
  table : (int * int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
  lock : Mutex.t;
  build_done : Condition.t;
  building : (int * int, unit) Hashtbl.t;
  mutable solvers : int;
  solver_done : Condition.t;
}

let create ?(capacity = 64) ?schedules graph =
  if capacity < 1 then invalid_arg "Engine.Cache.create: capacity must be >= 1";
  (match schedules with
  | Some a when Array.length a <> Socgraph.Graph.n_vertices graph ->
      invalid_arg "Engine.Cache.create: need one schedule per vertex"
  | Some _ | None -> ());
  {
    capacity;
    schedules;
    graph;
    graph_gen = 0;
    epoch = 0;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    coalesced = 0;
    evictions = 0;
    lock = Mutex.create ();
    build_done = Condition.create ();
    building = Hashtbl.create 8;
    solvers = 0;
    solver_done = Condition.create ();
  }

let graph t = Mutex.protect t.lock (fun () -> t.graph)

let epoch t = Mutex.protect t.lock (fun () -> t.epoch)

(* Called with [t.lock] held. *)
let bump_epoch_locked t =
  t.epoch <- t.epoch + 1;
  Obs.Gauge.set m_epoch t.epoch

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some q -> q.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.key;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr m_evictions;
      Log.debug (fun m ->
          let q, s = victim.key in
          m "evicted context (q=%d, s=%d)" q s)

(* Called with [t.lock] held; returns with it held. *)
let insert t key ctx =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let n = { key; ctx; prev = None; next = None } in
  Hashtbl.replace t.table key n;
  push_front t n;
  Obs.Gauge.set m_entries (Hashtbl.length t.table)

let context t ~initiator ~s =
  let key = (initiator, s) in
  Obs.Counter.incr m_lookups;
  Mutex.lock t.lock;
  (* [coalesced] flags a lookup that slept on somebody else's in-flight
     build; counted once per waiter, and the waiter's eventual find
     still counts as a hit, so hits + misses = lookups holds. *)
  let rec obtain ~waited =
    match Hashtbl.find_opt t.table key with
    | Some n ->
        t.hits <- t.hits + 1;
        Obs.Counter.incr m_hits;
        unlink t n;
        push_front t n;
        Mutex.unlock t.lock;
        Obs.Trace.add_attrs
          [ ("context.cache", if waited then "coalesced" else "hit") ];
        Log.debug (fun m -> m "context cache hit for (q=%d, s=%d)" initiator s);
        n.ctx
    | None ->
        if Hashtbl.mem t.building key then begin
          if not waited then begin
            t.coalesced <- t.coalesced + 1;
            Obs.Counter.incr m_coalesced;
            Log.debug (fun m ->
                m "coalescing onto in-flight build for (q=%d, s=%d)" initiator s)
          end;
          Condition.wait t.build_done t.lock;
          obtain ~waited:true
        end
        else begin
          Hashtbl.replace t.building key ();
          t.misses <- t.misses + 1;
          Obs.Counter.incr m_misses;
          (* Snapshot the graph and its generation: if [set_graph] lands
             while we build outside the lock, the stale context must not
             be cached. *)
          let graph = t.graph in
          let gen = t.graph_gen in
          Mutex.unlock t.lock;
          Obs.Trace.add_attrs [ ("context.cache", "miss") ];
          Log.debug (fun m -> m "context cache miss for (q=%d, s=%d)" initiator s);
          let finish_build () =
            Hashtbl.remove t.building key;
            Condition.broadcast t.build_done
          in
          match Context.build ?schedules:t.schedules graph ~initiator ~s with
          | exception e ->
              (* A failed build releases the key so a waiter retries as
                 the next builder instead of sleeping forever. *)
              Mutex.lock t.lock;
              finish_build ();
              Mutex.unlock t.lock;
              raise e
          | ctx ->
              Mutex.lock t.lock;
              finish_build ();
              if t.graph_gen = gen then insert t key ctx;
              Mutex.unlock t.lock;
              ctx
        end
  in
  obtain ~waited:false

let with_solves t f =
  Mutex.protect t.lock (fun () -> t.solvers <- t.solvers + 1);
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.lock (fun () ->
          t.solvers <- t.solvers - 1;
          if t.solvers = 0 then Condition.broadcast t.solver_done))
    f

(* Called with [t.lock] held; returns with it held and [t.solvers = 0].
   Writers drain the readers, so an edit lands only between
   {!with_solves} regions, never inside one. *)
let wait_no_solves t =
  while t.solvers > 0 do
    Condition.wait t.solver_done t.lock
  done

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        coalesced = t.coalesced;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
      })

(* Called with [t.lock] held. *)
let clear_locked t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let clear t = Mutex.protect t.lock (fun () -> clear_locked t)

(* Called with [t.lock] held.  A graph delta on edge {u,v} can change a
   cached context only if [u] or [v] lies in its feasible set: any new
   or removed path of social length <= s from the initiator must pass
   through an endpoint that is itself within s hops, i.e. feasible.  So
   dropping exactly the contexts whose feasible set meets [touched] is
   a sound — and precise — invalidation. *)
let drop_touched_locked t touched =
  let doomed =
    Hashtbl.fold
      (fun key n acc ->
        let to_sub = n.ctx.Context.fg.Feasible.to_sub in
        let affected =
          List.exists
            (fun v -> v >= 0 && v < Array.length to_sub && to_sub.(v) >= 0)
            touched
        in
        if affected then (key, n) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (key, n) ->
      unlink t n;
      Hashtbl.remove t.table key;
      Obs.Counter.incr m_selective_drops)
    doomed;
  Obs.Gauge.set m_entries (Hashtbl.length t.table);
  List.length doomed

let set_graph ?touched t graph =
  if Socgraph.Graph.n_vertices graph <> Socgraph.Graph.n_vertices t.graph then
    invalid_arg "Engine.Cache.set_graph: vertex count changed";
  Mutex.protect t.lock (fun () ->
      wait_no_solves t;
      t.graph <- graph;
      t.graph_gen <- t.graph_gen + 1;
      bump_epoch_locked t;
      match touched with
      | None -> clear_locked t
      | Some vs ->
          let dropped = drop_touched_locked t vs in
          Log.debug (fun m ->
              m "graph delta touching %d vertice(s): dropped %d context(s)"
                (List.length vs) dropped))

let set_schedule t ~vertex schedule =
  match t.schedules with
  | None -> invalid_arg "Engine.Cache.set_schedule: cache has no schedules"
  | Some schedules ->
      if vertex < 0 || vertex >= Array.length schedules then
        invalid_arg "Engine.Cache.set_schedule: vertex out of range";
      let installed = schedules.(vertex) in
      if
        Timetable.Availability.horizon schedule
        <> Timetable.Availability.horizon installed
      then invalid_arg "Engine.Cache.set_schedule: horizon mismatch";
      (* Rewrite the installed calendar's bits in place: cached contexts
         alias the Availability objects, so they observe the update
         without any invalidation.  Snapshot first in case the caller
         passed the installed object itself.  The rewrite waits out any
         {!with_solves} region, so a solve never reads a half-edited
         calendar. *)
      let snapshot = Bitset.copy (Timetable.Availability.bits schedule) in
      Mutex.protect t.lock (fun () ->
          wait_no_solves t;
          bump_epoch_locked t;
          let bits_old = Timetable.Availability.bits installed in
          Bitset.fill bits_old false;
          Bitset.iter (fun slot -> Bitset.set bits_old slot) snapshot)

let log = Logs.Src.create "stgq.engine.cache" ~doc:"Keyed context cache"

module Log = (val Logs.src_log log)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

(* Registered metrics mirror the per-cache [stats] record so fleet-wide
   totals are readable without a handle on any particular cache. *)
let m_lookups = Obs.counter "engine.cache.lookups"

let m_hits = Obs.counter "engine.cache.hits"

let m_misses = Obs.counter "engine.cache.misses"

let m_evictions = Obs.counter "engine.cache.evictions"

let m_entries = Obs.gauge "engine.cache.entries"

(* Intrusive doubly-linked recency list: most recent at [head], eviction
   victim at [tail].  Every operation is O(1), unlike the seed service's
   [List.filter]-per-access ordering. *)
type node = {
  key : int * int;
  ctx : Context.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  schedules : Timetable.Availability.t array option;
  mutable graph : Socgraph.Graph.t;
  table : (int * int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 64) ?schedules graph =
  if capacity < 1 then invalid_arg "Engine.Cache.create: capacity must be >= 1";
  (match schedules with
  | Some a when Array.length a <> Socgraph.Graph.n_vertices graph ->
      invalid_arg "Engine.Cache.create: need one schedule per vertex"
  | Some _ | None -> ());
  {
    capacity;
    schedules;
    graph;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let graph t = t.graph

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some q -> q.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.key;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr m_evictions;
      Log.debug (fun m ->
          let q, s = victim.key in
          m "evicted context (q=%d, s=%d)" q s)

let context t ~initiator ~s =
  let key = (initiator, s) in
  Obs.Counter.incr m_lookups;
  match Hashtbl.find_opt t.table key with
  | Some n ->
      t.hits <- t.hits + 1;
      Obs.Counter.incr m_hits;
      Obs.Trace.add_attrs [ ("context.cache", "hit") ];
      unlink t n;
      push_front t n;
      Log.debug (fun m -> m "context cache hit for (q=%d, s=%d)" initiator s);
      n.ctx
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr m_misses;
      Obs.Trace.add_attrs [ ("context.cache", "miss") ];
      Log.debug (fun m -> m "context cache miss for (q=%d, s=%d)" initiator s);
      let ctx = Context.build ?schedules:t.schedules t.graph ~initiator ~s in
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let n = { key; ctx; prev = None; next = None } in
      Hashtbl.replace t.table key n;
      push_front t n;
      Obs.Gauge.set m_entries (Hashtbl.length t.table);
      ctx

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let set_graph t graph =
  if Socgraph.Graph.n_vertices graph <> Socgraph.Graph.n_vertices t.graph then
    invalid_arg "Engine.Cache.set_graph: vertex count changed";
  t.graph <- graph;
  clear t

let set_schedule t ~vertex schedule =
  match t.schedules with
  | None -> invalid_arg "Engine.Cache.set_schedule: cache has no schedules"
  | Some schedules ->
      if vertex < 0 || vertex >= Array.length schedules then
        invalid_arg "Engine.Cache.set_schedule: vertex out of range";
      let installed = schedules.(vertex) in
      if
        Timetable.Availability.horizon schedule
        <> Timetable.Availability.horizon installed
      then invalid_arg "Engine.Cache.set_schedule: horizon mismatch";
      (* Rewrite the installed calendar's bits in place: cached contexts
         alias the Availability objects, so they observe the update
         without any invalidation.  Snapshot first in case the caller
         passed the installed object itself. *)
      let bits_old = Timetable.Availability.bits installed in
      let snapshot = Bitset.copy (Timetable.Availability.bits schedule) in
      Bitset.fill bits_old false;
      Bitset.iter (fun slot -> Bitset.set bits_old slot) snapshot

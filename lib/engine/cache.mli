(** Keyed {!Context} cache with an O(1) LRU — thread-safe, with
    single-flight builds.

    Radius-graph extraction is the shared prefix of every query an
    initiator poses, so the cache memoises full contexts per
    [(initiator, s)].  Recency is an intrusive doubly-linked list —
    lookup, touch and eviction are all O(1) (the seed service re-filtered
    an order list on every access).

    Concurrency: every operation is safe to call from any domain (the
    batch scheduler fetches contexts from pool workers).  Builds are
    {e single-flight}: two concurrent misses on the same key run one
    {!Context.build}; the second caller sleeps until the first publishes
    and then takes the shared context (counted by
    [engine.cache.coalesced] and the [coalesced] stat — the waiter's
    find still counts as a hit, so [hits + misses = lookups]).  The
    build itself runs outside the cache lock, so a slow extraction never
    blocks hits on other keys.

    Mutation model: social-graph swaps ({!set_graph}) drop cached
    contexts — every one by default, or, given the delta's [?touched]
    vertices, exactly the contexts whose feasible set meets them (a
    graph edit on edge [{u,v}] can only change a context in which [u]
    or [v] is itself within [s] hops of the initiator).  Calendar edits
    ({!set_schedule}) rewrite the installed schedule's bitset in place,
    which every cached context aliases, so they need no invalidation at
    all.  Both edits wait for in-flight {!with_solves} regions to drain,
    so an edit lands only {e between} solves — a solver that brackets
    its work in {!with_solves} never observes a half-applied calendar.
    Every mutation bumps the cache {!epoch}, so recovery replay can
    assert exactly how many edits landed. *)

type t

type stats = {
  hits : int;
  misses : int;
  coalesced : int;  (** lookups that slept on another caller's build *)
  evictions : int;
  entries : int;
}

(** [create ?capacity ?schedules graph] — [capacity] (default 64) bounds
    the number of live contexts.  The [schedules] array is adopted, not
    copied: pass copies if the caller retains mutable access.  Omit it
    for a social-only (SGQ) cache.
    @raise Invalid_argument if [capacity < 1] or [schedules] has a
    length other than the vertex count. *)
val create :
  ?capacity:int ->
  ?schedules:Timetable.Availability.t array ->
  Socgraph.Graph.t ->
  t

(** The graph contexts are currently built from. *)
val graph : t -> Socgraph.Graph.t

(** Mutation epoch: starts at [0], incremented by every {!set_graph} and
    {!set_schedule}.  WAL replay bumps it once per replayed delta, which
    the recovery differential gate asserts. *)
val epoch : t -> int

(** [context t ~initiator ~s] returns the cached context for the key,
    building (and possibly evicting the least-recently-used entry)
    on a miss.  Concurrent misses on the same key coalesce onto one
    build. *)
val context : t -> initiator:int -> s:int -> Context.t

(** [with_solves t f] runs [f] inside a {e solve region}: {!set_graph}
    and {!set_schedule} block until every open region finishes, so
    answers computed (and certified) inside the region observe one
    consistent schedule snapshot.  Regions are shared — any number may
    be open at once — and must not nest a mutation call (a region
    waiting on its own edit would deadlock). *)
val with_solves : t -> (unit -> 'a) -> 'a

(** Cumulative cache behaviour. *)
val stats : t -> stats

(** Drop every cached context (counters are kept). *)
val clear : t -> unit

(** [set_graph ?touched t g] swaps the social graph (same vertex count
    required) and invalidates: without [touched], every cached context
    is dropped; with [touched] — the vertices the delta's edges are
    incident to — only contexts whose feasible set contains a touched
    vertex are dropped, which is precise (see the module preamble).
    Waits for open {!with_solves} regions to drain. *)
val set_graph : ?touched:int list -> t -> Socgraph.Graph.t -> unit

(** [set_schedule t ~vertex schedule] rewrites one calendar in place
    (same horizon required); cached contexts see the change immediately.
    Waits for open {!with_solves} regions to drain, so the rewrite never
    interleaves with a solve.
    @raise Invalid_argument on a social-only cache, an out-of-range
    vertex, or a horizon mismatch. *)
val set_schedule : t -> vertex:int -> Timetable.Availability.t -> unit

(** Keyed {!Context} cache with an O(1) LRU.

    Radius-graph extraction is the shared prefix of every query an
    initiator poses, so the cache memoises full contexts per
    [(initiator, s)].  Recency is an intrusive doubly-linked list —
    lookup, touch and eviction are all O(1) (the seed service re-filtered
    an order list on every access).

    Mutation model: social-graph swaps ({!set_graph}) drop every cached
    context; calendar edits ({!set_schedule}) rewrite the installed
    schedule's bitset in place, which every cached context aliases, so
    they need no invalidation at all. *)

type t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
}

(** [create ?capacity ?schedules graph] — [capacity] (default 64) bounds
    the number of live contexts.  The [schedules] array is adopted, not
    copied: pass copies if the caller retains mutable access.  Omit it
    for a social-only (SGQ) cache.
    @raise Invalid_argument if [capacity < 1] or [schedules] has a
    length other than the vertex count. *)
val create :
  ?capacity:int ->
  ?schedules:Timetable.Availability.t array ->
  Socgraph.Graph.t ->
  t

(** The graph contexts are currently built from. *)
val graph : t -> Socgraph.Graph.t

(** [context t ~initiator ~s] returns the cached context for the key,
    building (and possibly evicting the least-recently-used entry)
    on a miss. *)
val context : t -> initiator:int -> s:int -> Context.t

(** Cumulative cache behaviour. *)
val stats : t -> stats

(** Drop every cached context (counters are kept). *)
val clear : t -> unit

(** [set_graph t g] swaps the social graph (same vertex count required)
    and drops every cached context. *)
val set_graph : t -> Socgraph.Graph.t -> unit

(** [set_schedule t ~vertex schedule] rewrites one calendar in place
    (same horizon required); cached contexts see the change immediately.
    @raise Invalid_argument on a social-only cache, an out-of-range
    vertex, or a horizon mismatch. *)
val set_schedule : t -> vertex:int -> Timetable.Availability.t -> unit

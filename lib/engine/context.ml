type t = {
  graph : Socgraph.Graph.t;
  initiator : int;
  s : int;
  fg : Feasible.t;
  horizon : int;
  avail : Timetable.Availability.t array;
  pivot_memo : (int * int list) list Atomic.t;
}

let m_builds = Obs.counter "engine.context.builds"

let build ?schedules graph ~initiator ~s =
  Faultinject.fire Faultinject.Context_build;
  Obs.Counter.incr m_builds;
  Obs.Span.with_ "context.build" @@ fun () ->
  Obs.Trace.with_span "context.build"
    ~attrs:[ ("initiator", string_of_int initiator); ("s", string_of_int s) ]
  @@ fun () ->
  let fg = Feasible.extract graph ~initiator ~s in
  let horizon, avail =
    match schedules with
    | None -> (0, [||])
    | Some schedules ->
        if Array.length schedules <> Socgraph.Graph.n_vertices graph then
          invalid_arg "Engine.Context.build: need one schedule per vertex";
        let horizon = Timetable.Availability.horizon schedules.(0) in
        Array.iter
          (fun a ->
            if Timetable.Availability.horizon a <> horizon then
              invalid_arg "Engine.Context.build: schedules disagree on horizon")
          schedules;
        (horizon, Array.map (fun orig -> schedules.(orig)) fg.Feasible.of_sub)
  in
  { graph; initiator; s; fg; horizon; avail; pivot_memo = Atomic.make [] }

let has_schedules t = Array.length t.avail > 0

let pivots t ~m =
  if not (has_schedules t) then
    invalid_arg "Engine.Context.pivots: social-only context has no time axis";
  if m < 1 then invalid_arg "Engine.Context.pivots: m must be >= 1";
  match List.assoc_opt m (Atomic.get t.pivot_memo) with
  | Some ps -> ps
  | None ->
      let ps = Timetable.Window.pivots ~horizon:t.horizon ~m in
      (* CAS retry loop: a concurrent solver may have extended the memo
         since we read it; losing the race just means recomputing a
         deterministic list, so one retry pass suffices. *)
      let rec publish () =
        let cur = Atomic.get t.pivot_memo in
        match List.assoc_opt m cur with
        | Some ps -> ps
        | None ->
            if Atomic.compare_and_set t.pivot_memo cur ((m, ps) :: cur) then ps
            else publish ()
      in
      publish ()

let ensure_for t ~initiator ~s =
  if t.initiator <> initiator then
    invalid_arg "Engine.Context: cached context belongs to another initiator";
  if t.s <> s then
    invalid_arg "Engine.Context: cached context was built for another s"

(** Immutable per-instance query context.

    A context bundles everything the branch-and-bound kernel reads that
    depends only on [(graph, initiator, s)] — not on the per-query
    [p]/[k]/[m] knobs: the feasible subgraph with adjacency bitsets and
    hop-bounded distance table ({!Feasible}), the availability slab
    re-indexed by sub-id, and a memoized pivot index per window length.
    Build once, answer many queries.

    Sharing discipline: the structure is immutable except for the pivot
    memo (an [Atomic] grow-only association list, published with a CAS
    retry loop so domains never lose entries) and the {e bits inside}
    the availability slab.  [avail] aliases the caller's schedule
    objects on purpose — mutating a schedule's bitset in place (as
    {!Cache.set_schedule} and [Planner.update_schedule] do) updates
    every cached context at once, so calendar edits never require
    context invalidation.  Contexts may be read from several domains
    concurrently as long as nobody mutates schedules mid-solve. *)

type t = {
  graph : Socgraph.Graph.t;   (** the full social graph *)
  initiator : int;            (** original vertex id of the activity initiator *)
  s : int;                    (** acquaintance radius the context was built for *)
  fg : Feasible.t;            (** feasible subgraph, distances, adjacency bitsets *)
  horizon : int;              (** number of time slots; [0] for social-only contexts *)
  avail : Timetable.Availability.t array;
      (** availability by sub-id; aliases the source schedules *)
  pivot_memo : (int * int list) list Atomic.t;
      (** window length [m] -> pivot slots, filled on demand *)
}

(** [build ?schedules g ~initiator ~s] extracts the feasible graph and
    assembles the context.  Omit [schedules] for a social-only (SGQ)
    context; temporal accessors then raise.
    @raise Invalid_argument if [initiator] is out of range, [s < 1],
    [schedules] has a length other than the vertex count, or the
    schedules disagree on horizon. *)
val build :
  ?schedules:Timetable.Availability.t array ->
  Socgraph.Graph.t ->
  initiator:int ->
  s:int ->
  t

(** Whether the context was built with schedules (STGQ-capable). *)
val has_schedules : t -> bool

(** [pivots t ~m] returns the Lemma-4 pivot slots for window length [m],
    memoized on the context.
    @raise Invalid_argument on a social-only context or [m < 1]. *)
val pivots : t -> m:int -> int list

(** [ensure_for t ~initiator ~s] checks that a caller-supplied context
    matches the query it is about to answer.
    @raise Invalid_argument on mismatch. *)
val ensure_for : t -> initiator:int -> s:int -> unit

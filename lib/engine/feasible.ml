type t = {
  sub : Socgraph.Graph.t;
  of_sub : int array;
  to_sub : int array;
  q : int;
  dist : float array;
  nbr : Bitset.t array;
}

let extract g ~initiator ~s =
  if initiator < 0 || initiator >= Socgraph.Graph.n_vertices g then
    invalid_arg "Engine.Feasible.extract: initiator out of range";
  if s < 1 then invalid_arg "Engine.Feasible.extract: s must be >= 1";
  let d = Socgraph.Bounded_dist.distances g ~src:initiator ~max_edges:s in
  let kept = ref [] in
  for v = Socgraph.Graph.n_vertices g - 1 downto 0 do
    if Float.is_finite d.(v) then kept := v :: !kept
  done;
  let sub, to_sub, of_sub = Socgraph.Graph.induced g !kept in
  let size = Array.length of_sub in
  let dist = Array.init size (fun i -> d.(of_sub.(i))) in
  let nbr = Array.init size (fun i -> Socgraph.Graph.neighbor_bitset sub i) in
  { sub; of_sub; to_sub; q = to_sub.(initiator); dist; nbr }

let size t = Array.length t.of_sub
let adjacent t u v = u <> v && Bitset.mem t.nbr.(u) v

let total_distance t subs = List.fold_left (fun acc v -> acc +. t.dist.(v)) 0. subs

let originals t subs = List.sort compare (List.map (fun v -> t.of_sub.(v)) subs)

(** Radius-graph extraction (§3.2.1 of the paper).

    Runs the Definition-1 dynamic program from the initiator and keeps the
    vertices with finite [s]-edge minimum distance, yielding the feasible
    graph [G_F] every query algorithm works on.  Vertices are re-indexed
    to the compact range [0 .. size-1]; all search code operates on
    sub-ids and translates back at the boundary.

    This is the engine-level (graph, initiator) API; [Stgq_core.Feasible]
    re-exports it behind the [Query.instance] interface. *)

type t = {
  sub : Socgraph.Graph.t;   (** induced feasible graph over sub-ids *)
  of_sub : int array;       (** sub-id -> original vertex *)
  to_sub : int array;       (** original vertex -> sub-id or [-1] *)
  q : int;                  (** the initiator's sub-id *)
  dist : float array;       (** sub-id -> s-edge minimum distance to q *)
  nbr : Bitset.t array;     (** sub-id -> neighbour bitset in [sub] *)
}

(** [extract g ~initiator ~s] builds the feasible graph.
    @raise Invalid_argument if [initiator] is out of range or [s < 1]. *)
val extract : Socgraph.Graph.t -> initiator:int -> s:int -> t

val size : t -> int

(** [adjacent fg u v] is adjacency between sub-ids, O(1) via bitsets. *)
val adjacent : t -> int -> int -> bool

(** [total_distance fg subs] sums [dist] over a sub-id list. *)
val total_distance : t -> int list -> float

(** [originals fg subs] maps sub-ids back to sorted original ids. *)
val originals : t -> int list -> int list

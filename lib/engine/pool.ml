let log = Logs.Src.create "stgq.engine.pool" ~doc:"Persistent domain pool"

module Log = (val Logs.src_log log)

type job = unit -> unit

let m_submitted = Obs.counter "engine.pool.jobs_submitted"

let m_completed = Obs.counter "engine.pool.jobs_completed"

let m_busy_ns = Obs.counter "engine.pool.worker_busy_ns"

let m_queue_depth = Obs.gauge "engine.pool.queue_depth_hwm"

type t = {
  size : int;
  jobs : job Queue.t;
  lock : Mutex.t;
  wake : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let env_size () =
  match Sys.getenv_opt "STGQ_DOMAINS" with
  | None -> None
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          Log.warn (fun m ->
              m "ignoring STGQ_DOMAINS=%S: expected a positive integer" raw);
          None)

let resolve_size requested =
  match requested with
  | Some n when n >= 1 -> n
  | Some n -> invalid_arg (Printf.sprintf "Engine.Pool: size %d < 1" n)
  | None -> (
      match env_size () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let worker t () =
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.jobs with
      | Some job -> Some job
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.wake t.lock;
            next ()
          end
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job ->
        if Obs.enabled () then begin
          let t0 = Obs.now_ns () in
          (* Crashing jobs are [run]'s concern (thunks are wrapped
             there); an escaping exception would kill the worker domain
             regardless of metrics, so only the return path records. *)
          job ();
          Obs.Counter.add m_busy_ns (int_of_float (Obs.now_ns () -. t0));
          Obs.Counter.incr m_completed
        end
        else job ();
        loop ()
  in
  loop ()

let create ?size () =
  let size = resolve_size size in
  let t =
    {
      size;
      jobs = Queue.create ();
      lock = Mutex.create ();
      wake = Condition.create ();
      closed = false;
      workers = [||];
    }
  in
  t.workers <- Array.init size (fun _ -> Domain.spawn (worker t));
  Log.debug (fun m -> m "spawned %d worker domains" size);
  t

let size t = t.size

let submit t job =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Engine.Pool.run: pool is shut down"
  end;
  Queue.add job t.jobs;
  Obs.Counter.incr m_submitted;
  (* Depth is sampled under the pool lock, so the high-water mark is an
     exact maximum over post-enqueue depths. *)
  Obs.Gauge.set m_queue_depth (Queue.length t.jobs);
  Condition.signal t.wake;
  Mutex.unlock t.lock

let run t thunks =
  let n = List.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let pending = ref n in
    let finished = Condition.create () in
    let record i outcome =
      Mutex.lock t.lock;
      results.(i) <- Some outcome;
      decr pending;
      if !pending = 0 then Condition.broadcast finished;
      Mutex.unlock t.lock
    in
    List.iteri
      (fun i thunk ->
        submit t (fun () ->
            (* [match ... with exception] keeps worker domains alive on task
               failure; the error is re-raised on the caller below. *)
            match thunk () with
            | v -> record i (Ok v)
            | exception e -> record i (Error e)))
      thunks;
    Mutex.lock t.lock;
    while !pending > 0 do
      Condition.wait finished t.lock
    done;
    Mutex.unlock t.lock;
    Array.iter (function Some (Error e) -> raise e | Some (Ok _) | None -> ()) results;
    List.init n (fun i ->
        match results.(i) with
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
  end

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  if not was_closed then Array.iter Domain.join t.workers

let default_cell = lazy (create ())

let default () = Lazy.force default_cell

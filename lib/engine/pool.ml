let log = Logs.Src.create "stgq.engine.pool" ~doc:"Persistent domain pool"

module Log = (val Logs.src_log log)

type job = unit -> unit

exception Pool_closed

exception Task_errors of exn list

let () =
  Printexc.register_printer (function
    | Pool_closed -> Some "Engine.Pool.Pool_closed"
    | Task_errors errs ->
        Some
          (Printf.sprintf "Engine.Pool.Task_errors [%s]"
             (String.concat "; " (List.map Printexc.to_string errs)))
    | _ -> None)

let m_submitted = Obs.counter "engine.pool.jobs_submitted"

let m_completed = Obs.counter "engine.pool.jobs_completed"

let m_busy_ns = Obs.counter "engine.pool.worker_busy_ns"

let m_queue_depth = Obs.gauge "engine.pool.queue_depth_hwm"

let m_respawns = Obs.counter "engine.pool.respawns"

(* A future resolves exactly once, under its own lock — never the pool
   lock, so awaiting never contends with the job queue. *)
type 'a state = Pending | Resolved of 'a | Failed of exn

type 'a future = {
  flock : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

type t = {
  size : int;
  jobs : job Queue.t;
  lock : Mutex.t;
  wake : Condition.t;
  mutable closed : bool;
  mutable handles : unit Domain.t list;
      (** every domain ever spawned for this pool (live and retired);
          drained by {!shutdown} *)
}

let env_size () =
  match Sys.getenv_opt "STGQ_DOMAINS" with
  | None -> None
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          Log.warn (fun m ->
              m "ignoring STGQ_DOMAINS=%S: expected a positive integer" raw);
          None)

let resolve_size requested =
  match requested with
  | Some n when n >= 1 -> n
  | Some n -> invalid_arg (Printf.sprintf "Engine.Pool: size %d < 1" n)
  | None -> (
      match env_size () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let rec worker t () =
  let exec job =
    if Obs.enabled () then begin
      let t0 = Obs.now_ns () in
      job ();
      Obs.Counter.add m_busy_ns (int_of_float (Obs.now_ns () -. t0));
      Obs.Counter.incr m_completed
    end
    else job ()
  in
  let rec loop () =
    Mutex.lock t.lock;
    let rec next () =
      match Queue.take_opt t.jobs with
      | Some job -> Some job
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.wake t.lock;
            next ()
          end
    in
    let job = next () in
    Mutex.unlock t.lock;
    match job with
    | None -> ()
    | Some job -> (
        (* The injection site fires before the job runs: a pre-job fault
           kills this worker while the job is still safe to requeue (the
           queued closure owns its future, so the requeued job resolves
           it on the replacement worker). *)
        match Faultinject.fire Faultinject.Pool_job_start with
        | exception e -> die t ~requeue:(Some job) e
        | () -> (
            match exec job with
            | () -> loop ()
            | exception e ->
                (* [submit] wraps its thunks (a raising thunk fails its
                   future), so only a corrupted queue entry can land
                   here; it already started, so it is not requeued. *)
                die t ~requeue:None e))
  in
  loop ()

(* A worker that caught a crash stops processing — as a genuinely dead
   domain would — but first requeues the untouched job (if any) and
   spawns a replacement so the pool keeps its size.  It then returns
   normally, so {!shutdown}'s join never re-raises. *)
and die t ~requeue e =
  Mutex.lock t.lock;
  (match requeue with
  | Some job ->
      Queue.add job t.jobs;
      Condition.signal t.wake
  | None -> ());
  let replaced = not t.closed in
  if replaced then t.handles <- Domain.spawn (worker t) :: t.handles;
  Mutex.unlock t.lock;
  if replaced then begin
    Obs.Counter.incr m_respawns;
    Obs.Events.emit ~kind:"pool.respawn"
      [ ("error", "\"" ^ Obs.json_escape (Printexc.to_string e) ^ "\"") ]
  end;
  Log.warn (fun m ->
      m "worker domain died (%s)%s" (Printexc.to_string e)
        (if replaced then "; respawned a replacement" else "; pool is closed"))

let create ?size () =
  let size = resolve_size size in
  let t =
    {
      size;
      jobs = Queue.create ();
      lock = Mutex.create ();
      wake = Condition.create ();
      closed = false;
      handles = [];
    }
  in
  t.handles <- List.init size (fun _ -> Domain.spawn (worker t));
  Log.debug (fun m -> m "spawned %d worker domains" size);
  t

let size t = t.size

let enqueue t job =
  (* Cross-domain trace propagation: capture the submitter's span
     context here and install it around the job on whichever worker
     domain runs it, so pooled work joins the submitting query's trace
     instead of starting orphan roots.  One atomic load when tracing is
     off. *)
  let job =
    match Obs.Trace.current () with
    | None -> job
    | Some _ as tctx -> fun () -> Obs.Trace.with_ctx tctx job
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    raise Pool_closed
  end;
  Queue.add job t.jobs;
  Obs.Counter.incr m_submitted;
  (* Depth is sampled under the pool lock, so the high-water mark is an
     exact maximum over post-enqueue depths. *)
  Obs.Gauge.set m_queue_depth (Queue.length t.jobs);
  Condition.signal t.wake;
  Mutex.unlock t.lock

let resolve fut outcome =
  Mutex.lock fut.flock;
  fut.state <- outcome;
  Condition.broadcast fut.fdone;
  Mutex.unlock fut.flock

let submit t thunk =
  let fut = { flock = Mutex.create (); fdone = Condition.create (); state = Pending } in
  enqueue t (fun () ->
      (* [match ... with exception] keeps worker domains alive on task
         failure; the error travels through the future to the awaiter. *)
      match thunk () with
      | v -> resolve fut (Resolved v)
      | exception e -> resolve fut (Failed e));
  fut

let await fut =
  Mutex.lock fut.flock;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fdone fut.flock;
        wait ()
    | (Resolved _ | Failed _) as outcome -> outcome
  in
  let outcome = wait () in
  Mutex.unlock fut.flock;
  match outcome with
  | Resolved v -> v
  | Failed e -> raise e
  | Pending -> assert false

let await_all futs =
  (* Await everything before deciding the verdict, so every job ran to
     its own completion or failure before [await_all] returns — the
     contract the old blocking barrier gave callers. *)
  let outcomes =
    List.map (fun f -> match await f with v -> Ok v | exception e -> Error e) futs
  in
  let errors =
    List.filter_map (function Error e -> Some e | Ok _ -> None) outcomes
  in
  if errors <> [] then raise (Task_errors errors);
  List.map (function Ok v -> v | Error _ -> assert false) outcomes

let shutdown t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock;
  if not was_closed then begin
    (* A worker dying mid-drain may append a replacement handle while we
       join, so grab-and-join until the handle list settles empty (no
       respawns happen once [closed] is observed, so this terminates). *)
    let rec drain () =
      Mutex.lock t.lock;
      let hs = t.handles in
      t.handles <- [];
      Mutex.unlock t.lock;
      match hs with
      | [] -> ()
      | hs ->
          List.iter Domain.join hs;
          drain ()
    in
    drain ()
  end

let with_pool ?size f =
  let t = create ?size () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_cell = lazy (create ())

let default () = Lazy.force default_cell

(** Persistent, supervised domain worker pool with typed futures.

    The seed code spawned (and joined) fresh domains on every
    [Parallel.solve_report] call, paying domain start-up per query.  A
    pool spawns its workers once and feeds them thunks through a queue,
    so repeated queries reuse warm domains.

    The submission API is future-based: {!submit} enqueues a typed thunk
    and returns immediately with an ['a future]; {!await} blocks for one
    result, {!await_all} for a whole batch.  Decoupling submission from
    completion is what lets the batch scheduler ({!Batch}) overlap the
    context build for group [k+1] with the solves for group [k]
    (pipeline parallelism) — the old [run] barrier forced every caller
    to block at submission time.

    Workers are supervised: a worker that dies (in practice, via the
    {!Faultinject.Pool_job_start} injection site — submitted thunks are
    wrapped, so ordinary task failures resolve the future instead of
    killing a domain) spawns a replacement before retiring, keeping the
    pool at full strength; a job the dead worker had not yet started is
    requeued, never lost — its future still resolves.  Respawns are
    counted by the [engine.pool.respawns] metric.

    Tasks must not {!await} a future of the pool that executes them:
    workers draining the queue are the only consumers, so a nested await
    from a worker can deadlock once all workers block on it. *)

type t

(** A handle on one submitted job.  Resolves exactly once — to the
    thunk's value or its exception — and may be awaited from any domain,
    any number of times. *)
type 'a future

(** Raised by {!submit} when the pool has been {!shutdown} — typed, so
    callers can distinguish a lifecycle bug from an arbitrary
    [Invalid_argument]. *)
exception Pool_closed

(** Raised by {!await_all} when at least one task failed: {e all} task
    errors, in input (submission-index) order — not just the first.
    Registered with [Printexc] so the payload prints. *)
exception Task_errors of exn list

(** [create ?size ()] spawns the worker domains.  The size is resolved
    as: explicit [size] argument, else the [STGQ_DOMAINS] environment
    variable (positive integer; malformed values are logged and
    ignored), else [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [size < 1]. *)
val create : ?size:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** [submit t thunk] enqueues [thunk] and returns its future without
    blocking.  The submitter's trace context is captured and installed
    around the thunk on whichever worker runs it, so pooled work joins
    the submitting query's trace.  A raising thunk fails its future; it
    never kills a worker.
    @raise Pool_closed if the pool has been {!shutdown}. *)
val submit : t -> (unit -> 'a) -> 'a future

(** [await fut] blocks until the job completes and returns its value.
    Re-raises the thunk's exception if the job failed. *)
val await : 'a future -> 'a

(** [await_all futs] awaits every future and returns the values in input
    order.  Every job runs to its own completion or failure before
    [await_all] returns.
    @raise Task_errors if any thunk raised (all errors, input order). *)
val await_all : 'a future list -> 'a list

(** [shutdown t] drains outstanding work (queued futures still resolve),
    stops the workers and joins them (including any respawned
    replacements).  Idempotent; subsequent {!submit} calls raise
    {!Pool_closed}. *)
val shutdown : t -> unit

(** [with_pool ?size f] brackets [f] with {!create} and a guaranteed
    {!shutdown} (also on exception), so callers cannot leak worker
    domains. *)
val with_pool : ?size:int -> (t -> 'a) -> 'a

(** A process-wide shared pool, spawned lazily on first use and never
    shut down (blocked worker domains do not prevent process exit). *)
val default : unit -> t

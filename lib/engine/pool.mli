(** Persistent domain worker pool.

    The seed code spawned (and joined) fresh domains on every
    [Parallel.solve_report] call, paying domain start-up per query.  A
    pool spawns its workers once and feeds them thunks through a queue,
    so repeated queries reuse warm domains.

    Tasks must not call {!run} on the pool that executes them: workers
    draining the queue are the only consumers, so a nested [run] from a
    worker can deadlock once all workers block on it. *)

type t

(** [create ?size ()] spawns the worker domains.  The size is resolved
    as: explicit [size] argument, else the [STGQ_DOMAINS] environment
    variable (positive integer; malformed values are logged and
    ignored), else [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [size < 1]. *)
val create : ?size:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** [run t thunks] executes the thunks on the pool and waits for all of
    them, returning results in input order.  If any thunk raises, the
    first (lowest-index) exception is re-raised on the caller after all
    thunks finish; worker domains survive task failures.
    @raise Invalid_argument if the pool has been {!shutdown}. *)
val run : t -> (unit -> 'a) list -> 'a list

(** [shutdown t] drains outstanding work, stops the workers and joins
    them.  Idempotent; subsequent {!run} calls raise. *)
val shutdown : t -> unit

(** A process-wide shared pool, spawned lazily on first use and never
    shut down (blocked worker domains do not prevent process exit). *)
val default : unit -> t

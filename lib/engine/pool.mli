(** Persistent, supervised domain worker pool.

    The seed code spawned (and joined) fresh domains on every
    [Parallel.solve_report] call, paying domain start-up per query.  A
    pool spawns its workers once and feeds them thunks through a queue,
    so repeated queries reuse warm domains.

    Workers are supervised: a worker that dies (in practice, via the
    {!Faultinject.Pool_job_start} injection site — [run]'s thunks are
    wrapped, so ordinary task failures never kill a domain) spawns a
    replacement before retiring, keeping the pool at full strength; a
    job the dead worker had not yet started is requeued, never lost.
    Respawns are counted by the [engine.pool.respawns] metric.

    Tasks must not call {!run} on the pool that executes them: workers
    draining the queue are the only consumers, so a nested [run] from a
    worker can deadlock once all workers block on it. *)

type t

(** Raised by {!run} (and the underlying submit) when the pool has been
    {!shutdown} — typed, so callers can distinguish a lifecycle bug from
    an arbitrary [Invalid_argument]. *)
exception Pool_closed

(** Raised by {!run} when at least one task failed: {e all} task errors,
    in input (submission-index) order — not just the first.  Registered
    with [Printexc] so the payload prints. *)
exception Task_errors of exn list

(** [create ?size ()] spawns the worker domains.  The size is resolved
    as: explicit [size] argument, else the [STGQ_DOMAINS] environment
    variable (positive integer; malformed values are logged and
    ignored), else [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [size < 1]. *)
val create : ?size:int -> unit -> t

(** Number of worker domains. *)
val size : t -> int

(** [run t thunks] executes the thunks on the pool and waits for all of
    them, returning results in input order.  Every thunk runs to its own
    completion or failure before [run] returns.
    @raise Task_errors if any thunk raised (all errors, input order).
    @raise Pool_closed if the pool has been {!shutdown}. *)
val run : t -> (unit -> 'a) list -> 'a list

(** [shutdown t] drains outstanding work, stops the workers and joins
    them (including any respawned replacements).  Idempotent; subsequent
    {!run} calls raise {!Pool_closed}. *)
val shutdown : t -> unit

(** [with_pool ?size f] brackets [f] with {!create} and a guaranteed
    {!shutdown} (also on exception), so callers cannot leak worker
    domains. *)
val with_pool : ?size:int -> (t -> 'a) -> 'a

(** A process-wide shared pool, spawned lazily on first use and never
    shut down (blocked worker domains do not prevent process exit). *)
val default : unit -> t

open Parsetree

let solver_entry_points =
  [
    "Sgselect.solve"; "Sgselect.solve_report"; "Sgselect.solve_warm";
    "Stgselect.solve"; "Stgselect.solve_report"; "Stgselect.solve_warm";
    "Baseline.sgq_brute"; "Baseline.stgq_per_slot";
    "Ip_model.solve_sgq"; "Ip_model.solve_stgq";
  ]

let validate_prefixes =
  [ "Validate.check_"; "Validate.is_valid_"; "Validate.certify_" ]

(* The units that define the audited entry points (and the checker
   itself) are producers, not consumers. *)
let exempt_units =
  [ "sgselect.ml"; "stgselect.ml"; "baseline.ml"; "ip_model.ml"; "validate.ml" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix)
       (String.length suffix)
     = suffix

(* Entry points may be reached through a library alias such as
   Stgq_core.Sgselect.solve; match on the trailing path segments. *)
let is_solver_entry name =
  List.exists
    (fun ep -> name = ep || ends_with ~suffix:("." ^ ep) name)
    solver_entry_points

let is_validate_ref name =
  List.exists
    (fun p ->
      starts_with ~prefix:p name
      ||
      (* qualified through an alias: Stgq_core.Validate.check_stg *)
      let dotted = "." ^ p in
      let rec contains i =
        i + String.length dotted <= String.length name
        && (String.sub name i (String.length dotted) = dotted
           || contains (i + 1))
      in
      contains 0)
    validate_prefixes

type binding = {
  names : string list;           (* bound value names, for intra-unit edges *)
  refs : string list;            (* every identifier referenced in the RHS *)
  solver_calls : (string * Location.t) list;
}

let rec pattern_names p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (inner, { txt; _ }) -> txt :: pattern_names inner
  | Ppat_tuple ps -> List.concat_map pattern_names ps
  | Ppat_constraint (inner, _) -> pattern_names inner
  | _ -> []

let binding_of_expr names e =
  let refs = ref [] in
  let solver_calls = ref [] in
  Rules.iter_idents
    (fun name loc ->
      refs := name :: !refs;
      if is_solver_entry name then solver_calls := (name, loc) :: !solver_calls)
    e;
  { names; refs = !refs; solver_calls = !solver_calls }

(* Top-level bindings of the unit, including those of nested modules —
   an intentionally flat approximation of the unit's call graph. *)
let collect_bindings structure =
  let bindings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun self item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  bindings :=
                    binding_of_expr (pattern_names vb.pvb_pat) vb.pvb_expr
                    :: !bindings)
                vbs
          | Pstr_eval (e, _) -> bindings := binding_of_expr [] e :: !bindings
          | _ -> Ast_iterator.default_iterator.structure_item self item);
    }
  in
  it.structure it structure;
  List.rev !bindings

(* Does [b]'s transitive reference closure (following calls to other
   top-level bindings of the same unit) reach a Validate.check_* /
   is_valid_* / certify_* call? *)
let reaches_validate bindings b =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun b -> List.iter (fun n -> Hashtbl.replace by_name n b) b.names)
    bindings;
  let seen = Hashtbl.create 16 in
  let rec visit b =
    List.exists
      (fun r ->
        if is_validate_ref r then true
        else
          match Hashtbl.find_opt by_name r with
          | Some callee when not (Hashtbl.mem seen r) ->
              Hashtbl.replace seen r ();
              visit callee
          | _ -> false)
      b.refs
  in
  visit b

let check (ctx : Rules.ctx) structure =
  if List.mem (Filename.basename ctx.file) exempt_units then []
  else begin
    let bindings = collect_bindings structure in
    List.concat_map
      (fun b ->
        if b.solver_calls = [] || reaches_validate bindings b then []
        else
          List.map
            (fun (name, loc) ->
              Diag.make ~rule:"uncertified-solver" ~severity:Diag.Error loc
                (Printf.sprintf
                   "%s's answer escapes this compilation unit with no \
                    Validate.check_*/is_valid_*/certify_* call reachable \
                    from the calling binding; audit the solution or \
                    suppress with (* lint: allow uncertified-solver *)"
                   name))
            b.solver_calls)
      bindings
  end

(** The solution-certificate audit (rule [uncertified-solver]).

    The search code is pruning-heavy branch-and-bound: a wrong answer
    looks exactly like a right one unless it is re-checked against the
    raw instance.  The runtime side of that contract is {!Validate};
    this pass is the static side: in every scanned compilation unit,
    each top-level binding that calls a solver entry point
    ([Sgselect]/[Stgselect]/[Baseline]/[Ip_model] solve functions) must
    be able to reach a [Validate.check_*] / [is_valid_*] / [certify_*]
    call through the unit's own call graph (a flat approximation over
    the Parsetree: binding → referenced binding).  Producer units —
    the solver modules themselves and [validate.ml] — are exempt. *)

(** Entry-point paths audited, e.g. ["Stgselect.solve"]. *)
val solver_entry_points : string list

val check : Rules.ctx -> Parsetree.structure -> Diag.finding list

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
  chain : string list;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity (loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    severity;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
    chain = [];
  }

let at ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message; chain = [] }

let with_chain chain f = { f with chain }

let order a b =
  compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let to_human f =
  let head =
    Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
      (severity_to_string f.severity)
      f.rule f.message
  in
  match f.chain with
  | [] -> head
  | steps ->
      String.concat "\n" (head :: List.map (fun s -> "    | " ^ s) steps)

let report_human findings =
  let body = List.map to_human findings in
  let errors =
    List.length (List.filter (fun f -> f.severity = Error) findings)
  in
  let summary =
    Printf.sprintf "%d finding(s), %d error(s)" (List.length findings) errors
  in
  String.concat "\n" (body @ [ summary ])

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The [chain] key is emitted only when the chain is non-empty, so the
   output for chainless findings is byte-identical to what it always
   was. *)
let finding_to_json f =
  let chain =
    match f.chain with
    | [] -> ""
    | steps ->
        Printf.sprintf {|,"chain":[%s]|}
          (String.concat ","
             (List.map (fun s -> "\"" ^ json_escape s ^ "\"") steps))
  in
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"%s}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message) chain

let report_json findings =
  "[" ^ String.concat ",\n " (List.map finding_to_json findings) ^ "]"

(* Minimal SARIF 2.1.0: one run, rules collected from the findings,
   each result carrying its location and (when present) the witness
   chain as [relatedLocations] messages. *)
let report_sarif findings =
  let buf = Buffer.create 4096 in
  let rules =
    List.sort_uniq compare (List.map (fun f -> f.rule) findings)
  in
  Buffer.add_string buf
    {|{"version":"2.1.0","$schema":"https://json.schemastore.org/sarif-2.1.0.json","runs":[{"tool":{"driver":{"name":"stgq_lint","rules":[|};
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf {|{"id":"%s"}|} (json_escape r)))
    rules;
  Buffer.add_string buf {|]}},"results":[|};
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",\n ";
      let level = match f.severity with Error -> "error" | Warning -> "warning" in
      let text =
        match f.chain with
        | [] -> f.message
        | steps -> f.message ^ "\n" ^ String.concat "\n" steps
      in
      Buffer.add_string buf
        (Printf.sprintf
           {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
           (json_escape f.rule) level (json_escape text) (json_escape f.file)
           (max 1 f.line) (f.col + 1)))
    findings;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let make ~rule ~severity (loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    severity;
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let at ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message }

let order a b =
  compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let to_human f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message

let report_human findings =
  let body = List.map to_human findings in
  let errors =
    List.length (List.filter (fun f -> f.severity = Error) findings)
  in
  let summary =
    Printf.sprintf "%d finding(s), %d error(s)" (List.length findings) errors
  in
  String.concat "\n" (body @ [ summary ])

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf
    {|{"rule":"%s","severity":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (json_escape f.rule)
    (severity_to_string f.severity)
    (json_escape f.file) f.line f.col (json_escape f.message)

let report_json findings =
  "[" ^ String.concat ",\n " (List.map finding_to_json findings) ^ "]"

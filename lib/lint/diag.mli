(** Lint diagnostics: findings and the reporters.

    A finding pins a rule violation to a [file:line:col] so editors and
    CI logs can jump straight to it.  Severity is informational — the
    gate fails on {e any} finding; [Warning] marks rules whose static
    approximation can have false positives (suppress with a
    [(* lint: allow <rule> *)] comment when a use is deliberate).

    The typed interprocedural analyses additionally attach a {e witness
    chain}: the call path from the evidence (a spawn site, a solver
    entry point) to the flagged operation, one human-readable step per
    element. *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based, as compilers print them *)
  message : string;
  chain : string list;
      (** witness steps, outermost first; [\[\]] for untyped rules *)
}

val severity_to_string : severity -> string

(** [make ~rule ~severity loc msg] — finding at the start of [loc]
    (the parser recorded the file name when the lexbuf was created). *)
val make : rule:string -> severity:severity -> Location.t -> string -> finding

(** [at] — finding at an explicit position, for checks that have no
    [Location.t] (e.g. the missing-[.mli] file check). *)
val at :
  rule:string -> severity:severity -> file:string -> line:int -> col:int ->
  string -> finding

(** Attach a witness chain. *)
val with_chain : string list -> finding -> finding

(** Total order: file, then line, col, rule — stable report output.
    The chain is deliberately ignored, so [sort_uniq] collapses
    findings that differ only in their witness path. *)
val order : finding -> finding -> int

val to_human : finding -> string

(** All findings, one per line (chain steps indented beneath), then a
    ["N finding(s), M error(s)"] summary line. *)
val report_human : finding list -> string

(** A JSON array of [{rule, severity, file, line, col, message}]; a
    [chain] key is appended only for findings that carry one, keeping
    the output for the untyped rules byte-identical across versions. *)
val report_json : finding list -> string

(** SARIF 2.1.0, one run; witness chains ride in the message text. *)
val report_sarif : finding list -> string

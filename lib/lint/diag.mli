(** Lint diagnostics: findings and the two reporters.

    A finding pins a rule violation to a [file:line:col] so editors and
    CI logs can jump straight to it.  Severity is informational — the
    gate fails on {e any} finding; [Warning] marks rules whose static
    approximation can have false positives (suppress with a
    [(* lint: allow <rule> *)] comment when a use is deliberate). *)

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;  (** 1-based *)
  col : int;   (** 0-based, as compilers print them *)
  message : string;
}

val severity_to_string : severity -> string

(** [make ~rule ~severity loc msg] — finding at the start of [loc]
    (the parser recorded the file name when the lexbuf was created). *)
val make : rule:string -> severity:severity -> Location.t -> string -> finding

(** [at] — finding at an explicit position, for checks that have no
    [Location.t] (e.g. the missing-[.mli] file check). *)
val at :
  rule:string -> severity:severity -> file:string -> line:int -> col:int ->
  string -> finding

(** Total order: file, then line, col, rule — stable report output. *)
val order : finding -> finding -> int

val to_human : finding -> string

(** All findings, one per line, then a ["N finding(s), M error(s)"]
    summary line. *)
val report_human : finding list -> string

(** A JSON array of [{rule, severity, file, line, col, message}]. *)
val report_json : finding list -> string

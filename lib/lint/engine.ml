type options = {
  certify : bool;
  allowed_state_modules : string list;
}

let default_options = { certify = true; allowed_state_modules = [] }

let path_components file =
  String.split_on_char '/' file
  |> List.concat_map (String.split_on_char '\\')

let is_lib_path file = List.mem "lib" (path_components file)

let is_io_file file =
  let base = Filename.remove_extension (Filename.basename file) in
  base = "io" || base = "sio" || base = "gio"
  || (String.length base > 3
     && String.sub base (String.length base - 3) 3 = "_io")

let is_solver_path file =
  let components = path_components file in
  let rec after_lib = function
    | "lib" :: next :: _ -> next = "core" || next = "engine"
    | _ :: rest -> after_lib rest
    | [] -> false
  in
  after_lib components && Filename.basename file <> "budget.ml"

let ctx_of_file file =
  {
    Rules.file;
    is_lib = is_lib_path file;
    is_io = is_io_file file;
    is_solver = is_solver_path file;
  }

let parse ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      Error
        (Diag.make ~rule:"parse-error" ~severity:Diag.Error
           (Syntaxerr.location_of_error err)
           "syntax error: the file does not parse, nothing else was checked")
  | exception Lexer.Error (_, loc) ->
      Error
        (Diag.make ~rule:"parse-error" ~severity:Diag.Error loc
           "lexical error: the file does not lex, nothing else was checked")

(* Every rule id a suppression directive may legitimately name — the
   untyped rules, the file-level checks, the typed interprocedural
   analyses, and the [all] wildcard.  Directives naming anything else
   are dead weight (usually a typo that silently un-suppresses), so
   they draw a warning. *)
let known_rules () =
  [ "all"; "parse-error"; "missing-mli"; "uncertified-solver";
    "domain-safety"; "checkpoint-coverage"; "cmt-error";
    "unknown-suppression" ]
  @ List.map (fun (r : Rules.rule) -> r.id) (Rules.all ())

let unknown_suppression_findings ~file suppressions =
  let known = known_rules () in
  Suppress.decls suppressions
  |> List.filter_map (fun (line, rule) ->
         if List.mem rule known then None
         else
           Some
             (Diag.at ~rule:"unknown-suppression" ~severity:Diag.Warning ~file
                ~line ~col:0
                (Printf.sprintf
                   "suppression names unknown rule %S (see --list-rules); the \
                    directive has no effect"
                   rule)))

let lint_source ?(options = default_options) ~file source =
  let suppressions = Suppress.of_source source in
  let findings =
    match parse ~file source with
    | Error finding -> [ finding ]
    | Ok structure ->
        let ctx = ctx_of_file file in
        let rule_findings =
          List.concat_map
            (fun (r : Rules.rule) -> r.check ctx structure)
            (Rules.all ~allowed_state_modules:options.allowed_state_modules ())
        in
        let certify_findings =
          if options.certify then Certify.check ctx structure else []
        in
        rule_findings @ certify_findings
  in
  List.sort Diag.order
    (Suppress.filter suppressions
       (findings @ unknown_suppression_findings ~file suppressions))

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let lint_file ?options path = lint_source ?options ~file:path (read_file path)

(* Directory walk: every .ml, skipping dot- and underscore-prefixed
   entries (.git, _build, .eobjs, ...); sorted for stable reports. *)
let rec collect_ml acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
           else collect_ml acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

(* R7 — every lib/ module needs an interface: without one, the whole
   implementation is the contract and partial helpers leak out. *)
let missing_mli_finding path source =
  let wants_mli =
    is_lib_path path && not (Sys.file_exists (Filename.remove_extension path ^ ".mli"))
  in
  if not wants_mli then []
  else
    Suppress.filter (Suppress.of_source source)
      [
        Diag.at ~rule:"missing-mli" ~severity:Diag.Warning ~file:path ~line:1
          ~col:0
          "lib/ module has no .mli; without an interface every partial \
           helper is exported";
      ]

let lint_paths ?options paths =
  let files =
    List.fold_left collect_ml [] paths |> List.sort_uniq String.compare
  in
  let findings =
    List.concat_map
      (fun path ->
        let source = read_file path in
        lint_source ?options ~file:path source
        @ missing_mli_finding path source)
      files
  in
  List.sort Diag.order findings

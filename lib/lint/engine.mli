(** The lint driver: parse, run the registry, apply suppressions.

    Files are parsed with [Parse.implementation] (compiler-libs), so
    the analysis sees exactly what the compiler sees.  A file that does
    not parse yields a single [parse-error] finding.  All entry points
    return findings sorted by file/line/col. *)

type options = {
  certify : bool;  (** run the {!Certify} solution-certificate audit *)
  allowed_state_modules : string list;
      (** module names exempt from [toplevel-state] *)
}

val default_options : options
(** [{ certify = true; allowed_state_modules = [] }] *)

(** [lint_source ~file src] lints one unit held in memory; [file] is
    used for diagnostics and for the path-sensitive rules (lib-only
    rules key on a [lib] path component, the I/O-failwith check on an
    [io]-module basename). *)
val lint_source :
  ?options:options -> file:string -> string -> Diag.finding list

val lint_file : ?options:options -> string -> Diag.finding list

(** [lint_paths paths] walks directories (and accepts plain files),
    linting every [*.ml] — dot- and underscore-prefixed entries
    ([.git], [_build], [.eobjs]) are skipped — and additionally checks
    that every [lib/] module has a [.mli] (rule [missing-mli]). *)
val lint_paths : ?options:options -> string list -> Diag.finding list

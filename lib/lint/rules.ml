open Parsetree

type ctx = {
  file : string;
  is_lib : bool;
  is_io : bool;
  is_solver : bool;
      (** solver code (lib/core, lib/engine) minus the clock owner
          (budget.ml) — the scope of the wall-clock rule *)
}

type rule = {
  id : string;
  severity : Diag.severity;
  summary : string;
  check : ctx -> structure -> Diag.finding list;
}

(* ------------------------------------------------------------------ *)
(* Longident helpers.                                                  *)

let rec lid_to_string = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> lid_to_string l ^ "." ^ s
  | Longident.Lapply (a, b) ->
      lid_to_string a ^ "(" ^ lid_to_string b ^ ")"

(* "Stdlib.List.hd" and "List.hd" are the same call. *)
let normalize name =
  let prefix = "Stdlib." in
  if String.length name > String.length prefix
     && String.sub name 0 (String.length prefix) = prefix
  then String.sub name (String.length prefix)
         (String.length name - String.length prefix)
  else name

let ident_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (normalize (lid_to_string txt))
  | _ -> None

(* Collect every (normalized) value identifier referenced under [e]. *)
let iter_idents f e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self ex ->
          (match ex.pexp_desc with
          | Pexp_ident { txt; loc } -> f (normalize (lid_to_string txt)) loc
          | _ -> ());
          Ast_iterator.default_iterator.expr self ex);
    }
  in
  it.expr it e

let mentions_raise e =
  let found = ref false in
  iter_idents
    (fun name _ ->
      match name with
      | "raise" | "raise_notrace" | "Printexc.raise_with_backtrace" ->
          found := true
      | _ -> ())
    e;
  !found

(* ------------------------------------------------------------------ *)
(* R1 — partial stdlib calls.                                          *)

let always_partial =
  [ "List.hd"; "List.tl"; "List.nth"; "Option.get" ]

let not_found_partial = [ "Hashtbl.find"; "List.find"; "List.assoc" ]

let rec pattern_matches_not_found p =
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, _) ->
      normalize (lid_to_string txt) = "Not_found"
  | Ppat_or (a, b) ->
      pattern_matches_not_found a || pattern_matches_not_found b
  | Ppat_alias (inner, _) -> pattern_matches_not_found inner
  | _ -> false

let handles_not_found cases =
  List.exists
    (fun c -> c.pc_guard = None && pattern_matches_not_found c.pc_lhs)
    cases

let check_partial ctx structure =
  ignore (ctx : ctx);
  let findings = ref [] in
  let nf_depth = ref 0 in
  let add loc name =
    findings :=
      Diag.make ~rule:"partial-call" ~severity:Diag.Error loc
        (Printf.sprintf
           "%s is partial; use the _opt variant (or an explicit match) so a \
            missed case is a typed error, not a runtime exception"
           name)
      :: !findings
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          match e.pexp_desc with
          | Pexp_try (body, cases) when handles_not_found cases ->
              incr nf_depth;
              self.expr self body;
              decr nf_depth;
              List.iter (self.case self) cases
          | Pexp_ident { txt; loc } ->
              let name = normalize (lid_to_string txt) in
              if List.mem name always_partial then add loc name
              else if List.mem name not_found_partial && !nf_depth = 0 then
                add loc (name ^ " (outside a Not_found handler)");
              Ast_iterator.default_iterator.expr self e
          | _ -> Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R2 — catch-all exception handling, exit, bare failwith in I/O code. *)

let is_catch_all_case c =
  c.pc_guard = None
  && (match c.pc_lhs.ppat_desc with
     | Ppat_any | Ppat_var _ -> true
     | _ -> false)
  && not (mentions_raise c.pc_rhs)

let check_catchall ctx structure =
  if not ctx.is_lib then []
  else begin
    let findings = ref [] in
    let add loc rule_msg =
      findings :=
        Diag.make ~rule:"catch-all" ~severity:Diag.Error loc rule_msg
        :: !findings
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_try (_, cases) ->
                List.iter
                  (fun c ->
                    if is_catch_all_case c then
                      add c.pc_lhs.ppat_loc
                        "catch-all exception handler swallows asserts and \
                         unrelated failures; match the specific exception \
                         (or re-raise)")
                  cases
            | Pexp_ident { txt; loc } ->
                if normalize (lid_to_string txt) = "exit" then
                  add loc
                    "exit in library code preempts the caller; return a \
                     value or raise instead"
            | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) -> (
                match (ident_name fn, arg.pexp_desc) with
                | Some "failwith", Pexp_constant (Pconst_string _)
                  when ctx.is_io ->
                    add e.pexp_loc
                      "bare failwith in I/O code loses the file/line \
                       context; raise an error that carries the input \
                       position"
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.structure it structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R3 — physical equality.                                             *)

let check_physeq ctx structure =
  ignore (ctx : ctx);
  let findings = ref [] in
  (* Locations of ==/!= heads exempted because an operand is an int
     literal (physical equality on immediates is value equality). *)
  let exempt = Hashtbl.create 8 in
  let is_int_literal e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
    | _ -> false
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply
              (({ pexp_desc = Pexp_ident { txt; loc }; _ } as _head), args)
            when (let n = normalize (lid_to_string txt) in
                  n = "==" || n = "!=")
                 && List.exists
                      (fun (_, a) -> is_int_literal a)
                      args ->
              Hashtbl.replace exempt loc ()
          | Pexp_ident { txt; loc } ->
              let n = normalize (lid_to_string txt) in
              if (n = "==" || n = "!=") && not (Hashtbl.mem exempt loc) then
                findings :=
                  Diag.make ~rule:"phys-eq" ~severity:Diag.Warning loc
                    (Printf.sprintf
                       "physical equality (%s) on structured values compares \
                        identity, not contents; use %s"
                       n
                       (if n = "==" then "=" else "<>"))
                  :: !findings
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R4 — Obj.magic.                                                     *)

let check_obj_magic ctx structure =
  ignore (ctx : ctx);
  let findings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc }
            when normalize (lid_to_string txt) = "Obj.magic" ->
              findings :=
                Diag.make ~rule:"obj-magic" ~severity:Diag.Error loc
                  "Obj.magic defeats the type system; there is no sound use \
                   in this codebase"
                :: !findings
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R5 — ignore of a call result.                                       *)

let check_ignored_result ctx structure =
  ignore (ctx : ctx);
  let findings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ])
            when ident_name fn = Some "ignore" -> (
              match arg.pexp_desc with
              | Pexp_apply _ ->
                  findings :=
                    Diag.make ~rule:"ignored-result" ~severity:Diag.Warning
                      e.pexp_loc
                      "discarding a call result hides errors the callee \
                       reports through its return value; annotate the type \
                       (ignore (e : t)) or bind it (let _x = e)"
                    :: !findings
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R6 — mutable top-level state.                                       *)

let mutable_constructors =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create";
    "Buffer.create"; "Bytes.create"; "Bytes.make"; "Atomic.make";
  ]

(* Scan eagerly-evaluated positions of a top-level binding's RHS; stop
   at function/lazy boundaries (state created per call is fine). *)
let rec eager_mutable_creations acc e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> acc
  | Pexp_apply (fn, args) ->
      let acc =
        match ident_name fn with
        | Some name when List.mem name mutable_constructors ->
            (name, e.pexp_loc) :: acc
        | _ -> acc
      in
      List.fold_left (fun acc (_, a) -> eager_mutable_creations acc a) acc args
  | Pexp_let (_, vbs, body) ->
      let acc =
        List.fold_left
          (fun acc vb -> eager_mutable_creations acc vb.pvb_expr)
          acc vbs
      in
      eager_mutable_creations acc body
  | Pexp_sequence (a, b) | Pexp_ifthenelse (a, b, None) ->
      eager_mutable_creations (eager_mutable_creations acc a) b
  | Pexp_ifthenelse (a, b, Some c) ->
      eager_mutable_creations
        (eager_mutable_creations (eager_mutable_creations acc a) b)
        c
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left eager_mutable_creations acc es
  | Pexp_record (fields, base) ->
      let acc =
        List.fold_left (fun acc (_, v) -> eager_mutable_creations acc v)
          acc fields
      in
      (match base with Some b -> eager_mutable_creations acc b | None -> acc)
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a)
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) | Pexp_open (_, a) ->
      eager_mutable_creations acc a
  | _ -> acc

let module_name_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

let check_toplevel_state ~allowed_modules ctx structure =
  if (not ctx.is_lib) || List.mem (module_name_of_file ctx.file) allowed_modules
  then []
  else begin
    let findings = ref [] in
    let check_bindings vbs =
      List.iter
        (fun vb ->
          List.iter
            (fun (name, loc) ->
              findings :=
                Diag.make ~rule:"toplevel-state" ~severity:Diag.Warning loc
                  (Printf.sprintf
                     "top-level %s creates process-global mutable state; \
                      thread it through a handle, or designate this module \
                      with --allow-state"
                     name)
                :: !findings)
            (eager_mutable_creations [] vb.pvb_expr))
        vbs
    in
    let it =
      {
        Ast_iterator.default_iterator with
        structure_item =
          (fun self item ->
            (match item.pstr_desc with
            | Pstr_value (_, vbs) -> check_bindings vbs
            | _ -> ());
            (* Recurse only into nested modules: expressions inside a
               Pstr_value were already scanned shallowly above, and
               function bodies are exempt by design. *)
            match item.pstr_desc with
            | Pstr_module _ | Pstr_recmodule _ | Pstr_include _ ->
                Ast_iterator.default_iterator.structure_item self item
            | _ -> ());
      }
    in
    it.structure it structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R7 — unbalanced trace spans.                                        *)

(* [has_dotted_suffix ~suffix name] holds when [name] is [suffix] or
   ends with ".suffix" — so "Obs.Trace.start" matches "Trace.start"
   while "restart" does not. *)
let has_dotted_suffix ~suffix name =
  name = suffix
  ||
  let ls = String.length suffix and ln = String.length name in
  ln > ls + 1
  && String.sub name (ln - ls) ls = suffix
  && name.[ln - ls - 1] = '.'

(* A [Trace.start] whose [Trace.finish] lives in a *different* function
   leaks the open frame on any exception between the two.  The check is
   per top-level binding (the granularity [check_toplevel_state] uses):
   a nested [let h = Trace.start ... in ... Trace.finish h] inside one
   binding balances, while a start-only binding is flagged even if some
   other binding finishes the handle. *)
let check_span_balance ctx structure =
  ignore (ctx : ctx);
  let findings = ref [] in
  let check_binding vb =
    let starts = ref [] in
    let finished = ref false in
    iter_idents
      (fun name loc ->
        if has_dotted_suffix ~suffix:"Trace.start" name then
          starts := loc :: !starts
        else if
          has_dotted_suffix ~suffix:"Trace.finish" name
          || has_dotted_suffix ~suffix:"Trace.with_span" name
        then finished := true)
      vb.pvb_expr;
    if not !finished then
      List.iter
        (fun loc ->
          findings :=
            Diag.make ~rule:"span-balance" ~severity:Diag.Error loc
              "Trace.start without a Trace.finish in the same top-level \
               binding leaks the open span frame on any early exit; prefer \
               Trace.with_span, which closes on every path"
            :: !findings)
        !starts
  in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun self item ->
          (match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter check_binding vbs
          | _ -> ());
          (* Recurse only into nested modules: a Pstr_value's expression
             was already scanned whole by [check_binding]. *)
          match item.pstr_desc with
          | Pstr_module _ | Pstr_recmodule _ | Pstr_include _ ->
              Ast_iterator.default_iterator.structure_item self item
          | _ -> ());
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------------ *)
(* R8 — wall-clock reads in solver code.                               *)

(* Deadlines in the search kernel must come from the monotonic clock
   that [Budget] owns: wall clocks jump (NTP steps, suspend/resume), so
   a solver reading one can time out instantly or never.  [Obs] (its own
   library, outside the solver scope) keeps wall time deliberately —
   spans are correlated with external logs. *)
let wall_clocks = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let check_wallclock ctx structure =
  if not ctx.is_solver then []
  else begin
    let findings = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc }
              when List.mem (normalize (lid_to_string txt)) wall_clocks ->
                findings :=
                  Diag.make ~rule:"wall-clock" ~severity:Diag.Error loc
                    (Printf.sprintf
                       "%s is a wall clock; solver deadlines must use the \
                        monotonic Budget.now_ns (wall time jumps under NTP \
                        steps and suspend/resume)"
                       (normalize (lid_to_string txt)))
                  :: !findings
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.structure it structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R9 — raw file writes in solver code.                                *)

(* Solver-state durability belongs to lib/store: a snapshot is written
   temp-file + fsync + atomic rename, and every mutation is CRC-framed
   in the WAL before the in-memory edit lands.  A raw [open_out] or
   [Unix.write] on a solver path bypasses all of that — no checksum, no
   atomicity, no crash story — so state persisted that way can come
   back torn or silently corrupt.  [lib/store] itself is outside the
   solver scope (lib/core, lib/engine), as are the CLI and bench
   drivers writing reports. *)
let raw_writes =
  [
    "open_out";
    "open_out_bin";
    "open_out_gen";
    "output_string";
    "output_bytes";
    "Out_channel.open_text";
    "Out_channel.open_bin";
    "Out_channel.output_string";
    "Unix.write";
    "Unix.write_substring";
    "Unix.single_write";
  ]

let check_durability_bypass ctx structure =
  if not ctx.is_solver then []
  else begin
    let findings = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc }
              when List.mem (normalize (lid_to_string txt)) raw_writes ->
                findings :=
                  Diag.make ~rule:"durability-bypass" ~severity:Diag.Error loc
                    (Printf.sprintf
                       "%s writes solver state without the durability \
                        protocol; persist through Store (CRC-framed WAL \
                        append, or snapshot via temp file + fsync + atomic \
                        rename) so a crash cannot leave torn or unverifiable \
                        bytes"
                       (normalize (lid_to_string txt)))
                  :: !findings
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.structure it structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* R10 — stdout/stderr prints in serving code.                         *)

(* The serving plane (lib/server, plus the service/resilience layers it
   fronts) reports through structured channels: metrics, spans and the
   [Obs.Events] JSONL log — all queryable from the exposition routes.
   A stray [print_endline] or [Printf.eprintf] there is operational
   state that bypasses every one of them: it interleaves with other
   domains' output, never reaches /events/tail, and vanishes when
   stdout is not a terminal.  [Log] (the levelled logger) and
   formatter-parameterised pretty-printers stay legal. *)
let raw_prints =
  [
    "print_endline";
    "print_string";
    "print_newline";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.print_string";
  ]

(* lib/server/*, lib/core/service.ml and lib/core/resilience.ml — the
   layers whose outcomes the event log records. *)
let is_event_log_scope file =
  let components =
    String.split_on_char '/' file
    |> List.concat_map (String.split_on_char '\\')
  in
  let rec after_lib = function
    | "lib" :: next :: _ -> Some next
    | _ :: rest -> after_lib rest
    | [] -> None
  in
  match after_lib components with
  | Some "server" -> true
  | Some "core" ->
      let base = Filename.basename file in
      base = "service.ml" || base = "resilience.ml"
  | _ -> false

let check_event_log_bypass ctx structure =
  if not (is_event_log_scope ctx.file) then []
  else begin
    let findings = ref [] in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun self e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc }
              when List.mem (normalize (lid_to_string txt)) raw_prints ->
                findings :=
                  Diag.make ~rule:"event-log-bypass" ~severity:Diag.Error loc
                    (Printf.sprintf
                       "%s prints operational state to a raw stream in \
                        serving code; record it through Obs.Events (or the \
                        levelled Log) so it reaches the event ring, the \
                        JSONL sink and /events/tail"
                       (normalize (lid_to_string txt)))
                  :: !findings
            | _ -> ());
            Ast_iterator.default_iterator.expr self e);
      }
    in
    it.structure it structure;
    !findings
  end

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let all ?(allowed_state_modules = []) () =
  [
    {
      id = "partial-call";
      severity = Diag.Error;
      summary =
        "List.hd/tl/nth, Option.get, and Not_found-raising lookups outside \
         a Not_found handler";
      check = check_partial;
    };
    {
      id = "catch-all";
      severity = Diag.Error;
      summary =
        "try ... with _ , exit, and bare failwith in I/O code (lib/ only)";
      check = check_catchall;
    };
    {
      id = "phys-eq";
      severity = Diag.Warning;
      summary = "physical equality ==/!= on non-immediate values";
      check = check_physeq;
    };
    {
      id = "obj-magic";
      severity = Diag.Error;
      summary = "any use of Obj.magic";
      check = check_obj_magic;
    };
    {
      id = "ignored-result";
      severity = Diag.Warning;
      summary = "ignore applied to an un-annotated call result";
      check = check_ignored_result;
    };
    {
      id = "toplevel-state";
      severity = Diag.Warning;
      summary = "eagerly-created mutable state at module top level (lib/ only)";
      check = check_toplevel_state ~allowed_modules:allowed_state_modules;
    };
    {
      id = "span-balance";
      severity = Diag.Error;
      summary =
        "Trace.start without a matching Trace.finish/with_span in the same \
         top-level binding (the open frame leaks on early exits)";
      check = check_span_balance;
    };
    {
      id = "wall-clock";
      severity = Diag.Error;
      summary =
        "Unix.gettimeofday/Unix.time/Sys.time in solver code (lib/core, \
         lib/engine) — deadlines must use the monotonic Budget clock";
      check = check_wallclock;
    };
    {
      id = "durability-bypass";
      severity = Diag.Error;
      summary =
        "raw open_out/output_string/Unix.write in solver code (lib/core, \
         lib/engine) — durable state must go through Store's snapshot + WAL \
         protocol";
      check = check_durability_bypass;
    };
    {
      id = "event-log-bypass";
      severity = Diag.Error;
      summary =
        "print_endline/Printf.eprintf in serving code (lib/server, \
         lib/core/{service,resilience}.ml) — operational state must go \
         through Obs.Events or the levelled Log";
      check = check_event_log_bypass;
    };
  ]

(** The pluggable rule registry.

    A rule is a pure function from one parsed compilation unit to
    findings.  Rules R1–R6 live here; R7 (missing [.mli]) is a
    file-system check in {!Engine}, and the solution-certificate audit
    is the separate {!Certify} pass — both report through the same
    {!Diag.finding} type.  To add a rule, write a [check] function over
    [Parsetree.structure] and append it to {!all}; see docs/LINT.md. *)

(** What the rule may know about the unit under analysis. *)
type ctx = {
  file : string;  (** path as given to the engine; used in findings *)
  is_lib : bool;  (** has a [lib] path component — library-only rules *)
  is_io : bool;   (** an I/O module ([io.ml], [*_io.ml], [sio.ml], [gio.ml]) *)
  is_solver : bool;
      (** solver code (under [lib/core] or [lib/engine]) other than
          [budget.ml], which owns the monotonic clock — the scope of the
          [wall-clock] rule *)
}

type rule = {
  id : string;        (** the name used in reports and suppressions *)
  severity : Diag.severity;
  summary : string;   (** one line for [--list-rules] and the docs *)
  check : ctx -> Parsetree.structure -> Diag.finding list;
}

(** [all ?allowed_state_modules ()] — the registry.
    [allowed_state_modules] (capitalized module names) are exempt from
    the [toplevel-state] rule. *)
val all : ?allowed_state_modules:string list -> unit -> rule list

(** Exposed for {!Certify}: render a [Longident.t] as a dotted path. *)
val lid_to_string : Longident.t -> string

(** Strip a leading ["Stdlib."] so both spellings of a call match. *)
val normalize : string -> string

(** [iter_idents f e] calls [f name loc] for every value identifier
    referenced anywhere under [e] (normalized). *)
val iter_idents : (string -> Location.t -> unit) -> Parsetree.expression -> unit

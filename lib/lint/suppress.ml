type t = {
  file_rules : string list;
  line_rules : (int * string) list;  (* suppressed line, rule *)
  decls : (int * string) list;  (* directive line, rule — for auditing *)
}

let empty = { file_rules = []; line_rules = []; decls = [] }

(* Two spellings of the same directive; [stgq-lint:] is the namespaced
   form that other tools' linters will not mistake for their own.  The
   literals are assembled so this file's own source never contains a
   directive by accident. *)
let markers = [ "(* lint" ^ ": allow"; "(* stgq-lint" ^ ": allow" ]

(* Index of [sub] in [s] at or after [from], if any. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec scan i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else scan (i + 1)
  in
  if m = 0 then None else scan from

(* The rule names between the marker and the closing "*)". *)
let directive_rules line start =
  let stop =
    match find_sub line "*)" start with
    | Some i -> i
    | None -> String.length line
  in
  String.sub line start (stop - start)
  |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun s -> s <> "")

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t') s

let of_source source =
  let lines = String.split_on_char '\n' source in
  let add acc lineno line =
    let scan_marker acc marker =
      let rec scan acc from =
        match find_sub line marker from with
        | None -> acc
        | Some i ->
            let after = i + String.length marker in
            let is_file =
              after + 5 <= String.length line
              && String.sub line after 5 = "-file"
            in
            let names_at = if is_file then after + 5 else after in
            let rules = directive_rules line names_at in
            (* A directive trailing code covers its own line; one
               standing alone on a comment line covers the next line,
               where the flagged expression sits. *)
            let target =
              if is_blank (String.sub line 0 i) then lineno + 1 else lineno
            in
            let acc =
              {
                acc with
                decls = List.map (fun r -> (lineno, r)) rules @ acc.decls;
              }
            in
            let acc =
              if is_file then
                { acc with file_rules = rules @ acc.file_rules }
              else
                {
                  acc with
                  line_rules =
                    List.map (fun r -> (target, r)) rules @ acc.line_rules;
                }
            in
            scan acc (after + 1)
      in
      scan acc 0
    in
    List.fold_left scan_marker acc markers
  in
  List.fold_left
    (fun (acc, lineno) line -> (add acc lineno line, lineno + 1))
    (empty, 1) lines
  |> fst

let load file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_source (really_input_string ic (in_channel_length ic)))

let matches directive rule = directive = rule || directive = "all"

let active t ~rule ~line =
  List.exists (fun d -> matches d rule) t.file_rules
  || List.exists (fun (l, d) -> l = line && matches d rule) t.line_rules

let decls t = List.rev t.decls

let filter t findings =
  List.filter
    (fun (f : Diag.finding) -> not (active t ~rule:f.rule ~line:f.line))
    findings

(** Suppression comments.

    [(* lint: allow <rule> ... *)] on a line silences the named rules on
    that line {e and the next one} (so the comment can sit on its own
    line above the flagged expression).  [(* lint: allow-file <rule> *)]
    anywhere in a file silences the rules for the whole file.  The rule
    name [all] matches every rule.  Several names may be given,
    separated by spaces or commas. *)

type t

val empty : t

(** [of_source src] scans raw source text for directives; the parser
    drops comments, so this works on the text, not the AST. *)
val of_source : string -> t

(** [active t ~rule ~line] — is [rule] suppressed at [line]? *)
val active : t -> rule:string -> line:int -> bool

(** [filter t findings] drops the suppressed findings. *)
val filter : t -> Diag.finding list -> Diag.finding list

(** Suppression comments.

    Two equivalent spellings: [(* lint: allow <rule> ... *)] and the
    namespaced [(* stgq-lint: allow <rule> ... *)].

    Scope follows placement: a directive {e trailing code} silences the
    named rules on its own line only, while a directive standing alone
    on a comment line silences them on the next line (so the comment
    can sit above the flagged expression).  [allow-file <rule>]
    anywhere in a file silences the rules for the whole file.  The rule
    name [all] matches every rule.  Several names may be given,
    separated by spaces or commas. *)

type t

val empty : t

(** [of_source src] scans raw source text for directives; the parser
    drops comments, so this works on the text, not the AST. *)
val of_source : string -> t

(** [load file] — [of_source] over the file's contents.  Raises
    [Sys_error] if unreadable. *)
val load : string -> t

(** [active t ~rule ~line] — is [rule] suppressed at [line]? *)
val active : t -> rule:string -> line:int -> bool

(** Every directive in source order as [(directive line, rule name)] —
    lets callers warn about names that match no known rule. *)
val decls : t -> (int * string) list

(** [filter t findings] drops the suppressed findings. *)
val filter : t -> Diag.finding list -> Diag.finding list

(* Module-qualified call graph over Typedtree.

   Pass 1 tables every function — top-level bindings (through nested
   plain modules), [let]-bound local functions and anonymous closures —
   plus every module-level mutable global and every record type with
   mutable fields.  Pass 2 walks each function body once in evaluation
   order, tracking a must-hold mutex depth, and records the facts the
   analyses consume: call edges, closure-definition edges, mutable-state
   operations, spawn sites and budget checkpoints. *)

type root =
  | Rvar of string * string  (* Ident.unique_name key, display name *)
  | Rglobal of string  (* key into [globals] *)
  | Runknown

type op = {
  op_desc : string;
  op_root : root;
  op_write : bool;
  op_locked : bool;  (* a Mutex is provably held at the site *)
  op_loc : Location.t;
}

type spawn = {
  sp_via : string;  (* resolved callee, e.g. [Pool.run] *)
  sp_arg : Typedtree.expression;
  sp_loc : Location.t;
}

type call = { c_dst : int; c_locked : bool; c_loc : Location.t }

type func = {
  fid : int;
  f_unit : string;  (* modname of the defining unit *)
  f_unitc : string;  (* canonical unit name *)
  f_name : string;  (* qualified display name, [Pool.run.record] *)
  f_file : string;
  f_line : int;
  f_toplevel : bool;
  f_parent : int option;
  f_attrs : string list;
  f_bodies : Typedtree.expression list;
  mutable f_calls : call list;
  mutable f_defines : (int * bool) list;  (* dst, runs-under-lock *)
  mutable f_ops : op list;
  mutable f_spawns : spawn list;
  mutable f_checkpoints : bool;  (* applies Budget.check/charge itself *)
}

type record_info = {
  r_key : string;  (* canonical [Unit.t] *)
  r_unit : string;
  r_loc : Location.t;
  r_mutable_fields : string list;
  r_has_mutex : bool;
  r_safe : bool;
}

type global_info = {
  g_key : string;
  g_unit : string;
  g_desc : string;
  g_loc : Location.t;
  g_safe : bool;
  g_rec_ty : Types.type_expr option;  (* for record globals: their type *)
}

type t = {
  funcs : func array;
  by_name : (string, int) Hashtbl.t;  (* top-level qualified name -> fid *)
  by_loc : (string, int) Hashtbl.t;  (* pre-peel function expr loc -> fid *)
  fn_stamps : (string * string, int) Hashtbl.t;  (* (modname, uname) -> fid *)
  globals : (string, global_info) Hashtbl.t;
  global_stamps : (string * string, string) Hashtbl.t;
  local_vbs : (string * string, Typedtree.expression) Hashtbl.t;
      (* every non-function let binding: (modname, uname) -> RHS *)
  records : (string, record_info) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Names and paths.                                                    *)

let loc_key (loc : Location.t) =
  Printf.sprintf "%s:%d:%d" loc.loc_start.pos_fname loc.loc_start.pos_cnum
    loc.loc_end.pos_cnum

let loc_file (loc : Location.t) = loc.loc_start.pos_fname

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

let canon_parts p =
  let rec parts = function
    | Path.Pident id -> [ Ident.name id ]
    | Path.Pdot (q, s) -> parts q @ [ s ]
    | Path.Papply (q, _) -> parts q
    | Path.Pextra_ty (q, _) -> parts q
  in
  parts p
  |> List.filter (fun s -> s <> "Stdlib")
  |> List.map Cmt_load.canonical_of_modname

let canon_str p = String.concat "." (canon_parts p)

(* Split a wrapped-unit name into its library-qualified components:
   [Engine__Feasible -> ["Engine"; "Feasible"]]. *)
let split_wrapped s =
  let n = String.length s in
  let rec go acc start i =
    if i + 1 >= n then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '_' && s.[i + 1] = '_' && i > start then
      go (String.sub s start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  go [] 0 0 |> List.filter (fun c -> c <> "")

(* Library-qualified components of a path — [Engine__Feasible.extract]
   and its alias spelling [Engine.Feasible.extract] normalise to the
   same ["Engine"; "Feasible"; "extract"], which disambiguates units
   whose canonical names collide across libraries. *)
let lib_parts p =
  let rec parts = function
    | Path.Pident id -> [ Ident.name id ]
    | Path.Pdot (q, s) -> parts q @ [ s ]
    | Path.Papply (q, _) -> parts q
    | Path.Pextra_ty (q, _) -> parts q
  in
  parts p
  |> List.filter (fun s -> s <> "Stdlib")
  |> List.concat_map split_wrapped

(* [suffix_matches ["Pool"; "submit"] "Engine.Pool.submit"] — component
   suffix, so [Budget.check] never matches [Budget.check_interval]. *)
let suffix_matches suffix qualified =
  let comps = String.split_on_char '.' qualified in
  let rec ends_with l =
    if l = suffix then true
    else match l with [] -> false | _ :: rest -> ends_with rest
  in
  ends_with comps

let attr_names attrs = List.map Cmt_load.attr_name attrs

let has_attr names attr_strs =
  List.exists (fun a -> List.mem a names) attr_strs

let bounded_attr = [ "lint.bounded"; "bounded" ]

let safe_attr = [ "lint.domain_safe"; "domain_safe" ]

(* ------------------------------------------------------------------ *)
(* Generic Typedtree helpers.                                          *)

let pattern_idents : type k. k Typedtree.general_pattern -> Ident.t list =
 fun pat ->
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k2) sub (q : k2 Typedtree.general_pattern) ->
          (match q.pat_desc with
          | Typedtree.Tpat_var (id, _) -> acc := id :: !acc
          | Typedtree.Tpat_alias (_, id, _) -> acc := id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.pat sub q);
    }
  in
  it.pat it pat;
  !acc

(* Free value identifiers of [e], exact by stamp uniqueness: an ident
   occurrence whose binder lies inside [e] is bound there and nowhere
   else, so [free = occurrences \ bound] needs no scope tracking. *)
let free_idents (e : Typedtree.expression) =
  let occurs = ref [] in
  let bound = Hashtbl.create 16 in
  let bind id = Hashtbl.replace bound (Ident.unique_name id) () in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              occurs := (id, x.exp_type, x.exp_loc) :: !occurs
          | Texp_for (id, _, _, _, _, _) -> bind id
          | Texp_letop { param; _ } -> bind param
          | Texp_function { param; _ } -> bind param
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
      pat =
        (fun (type k2) sub (q : k2 Typedtree.general_pattern) ->
          (match q.pat_desc with
          | Typedtree.Tpat_var (id, _) -> bind id
          | Typedtree.Tpat_alias (_, id, _) -> bind id
          | _ -> ());
          Tast_iterator.default_iterator.pat sub q);
    }
  in
  it.expr it e;
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (id, _, _) ->
      let k = Ident.unique_name id in
      if Hashtbl.mem bound k || Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev !occurs)

(* All closure-literal locations inside [e] (for slice -> region roots). *)
let closure_locs (e : Typedtree.expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub x ->
          (match x.exp_desc with
          | Texp_function _ -> acc := loc_key x.exp_loc :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr sub x);
    }
  in
  it.expr it e;
  !acc

(* Head type constructor, canonical components.  Record fields come
   wrapped in [Tpoly] in [.cmt] artefacts. *)
let rec type_head ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (canon_parts p)
  | Types.Tpoly (ty, _) -> type_head ty
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Lookup.                                                             *)

let lookup_suffix tbl parts =
  let rec go = function
    | [] -> None
    | _ :: rest as l -> (
        match Hashtbl.find_opt tbl (String.concat "." l) with
        | Some v -> Some v
        | None -> go rest)
  in
  go parts

let resolve_value t ~modname ~unitc p =
  match p with
  | Path.Pident id -> (
      let k = (modname, Ident.unique_name id) in
      match Hashtbl.find_opt t.fn_stamps k with
      | Some fid -> `Func fid
      | None -> (
          match Hashtbl.find_opt t.global_stamps k with
          | Some g -> `Global g
          | None -> `None))
  | _ -> (
      let parts = canon_parts p in
      (* Most-specific first: this unit's own binding, then the exact
         library-qualified name ([Engine.Feasible.extract] never
         resolves to another library's [Feasible.extract]), then the
         canonical-name suffix fallback for externals. *)
      let try_tbl tbl =
        match Hashtbl.find_opt tbl (String.concat "." (unitc :: parts)) with
        | Some v -> Some v
        | None -> (
            match
              Hashtbl.find_opt tbl (String.concat "." (lib_parts p))
            with
            | Some v -> Some v
            | None -> lookup_suffix tbl parts)
      in
      match try_tbl t.by_name with
      | Some fid -> `Func fid
      | None -> (
          match try_tbl t.globals with
          | Some g -> `Global g.g_key
          | None -> `None))

(* Record keys are unit-qualified ([Context.t]), but a within-unit
   reference is a bare [Pident] whose canonical parts carry no unit —
   so try the caller's unit prepended before the suffix fallback. *)
let lookup_record t ?unitc ty =
  match type_head ty with
  | None -> None
  | Some parts -> (
      match
        Option.bind unitc (fun u ->
            Hashtbl.find_opt t.records (String.concat "." (u :: parts)))
      with
      | Some ri -> Some ri
      | None -> lookup_suffix t.records parts)

(* ------------------------------------------------------------------ *)
(* Pass 1: collect functions, globals, record types.                   *)

let containers = [ "Hashtbl"; "Buffer"; "Queue"; "Stack"; "Bytes" ]

let container_pure = [ "hash"; "seeded_hash"; "hash_param"; "to_string" ]

let creation_fns =
  [ "create"; "make"; "init"; "of_seq"; "of_list"; "copy"; "create_float" ]

let last2 qualified =
  match List.rev (String.split_on_char '.' qualified) with
  | fn :: m :: _ -> Some (m, fn)
  | _ -> None

(* Syntactic mutability of a module-level binding's RHS. *)
let rec global_mutability (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_let (_, _, body) -> global_mutability body
  | Texp_array _ -> Some ("array literal", None)
  | Texp_record { fields; _ }
    when Array.exists
           (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
           fields ->
      Some ("record with mutable fields", Some e.exp_type)
  | Texp_apply (f, _) -> (
      match f.exp_desc with
      | Texp_ident (p, _, _) -> (
          let q = canon_str p in
          if q = "ref" then Some ("ref cell", None)
          else
            match last2 q with
            | Some (m, fn)
              when (List.mem m containers || m = "Array")
                   && List.mem fn creation_fns ->
                Some (m ^ "." ^ fn ^ " value", None)
            | _ -> None)
      | _ -> None)
  | _ -> None

let is_function (e : Typedtree.expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* Peel the parameter lambdas of a binding: the bodies are where the
   interesting statements live.  Multi-case [function] keeps the guard
   expressions as extra bodies. *)
let rec peel_bodies (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when c.c_guard = None ->
      if is_function c.c_rhs then peel_bodies c.c_rhs else [ c.c_rhs ]
  | Texp_function { cases; _ } ->
      List.concat_map
        (fun (c : Typedtree.value Typedtree.case) ->
          Option.to_list c.c_guard @ [ c.c_rhs ])
        cases
  | _ -> [ e ]

type builder = {
  mutable b_funcs : func list;  (* reverse order *)
  mutable b_count : int;
  b_by_name : (string, int) Hashtbl.t;
  b_by_loc : (string, int) Hashtbl.t;
  b_fn_stamps : (string * string, int) Hashtbl.t;
  b_globals : (string, global_info) Hashtbl.t;
  b_global_stamps : (string * string, string) Hashtbl.t;
  b_local_vbs : (string * string, Typedtree.expression) Hashtbl.t;
  b_records : (string, record_info) Hashtbl.t;
}

let register_func b ~unit_ ~unitc ~name ?lib_name ~toplevel ~parent ~attrs ~loc
    bodies =
  let fid = b.b_count in
  b.b_count <- fid + 1;
  let f =
    {
      fid;
      f_unit = unit_;
      f_unitc = unitc;
      f_name = name;
      f_file = loc_file loc;
      f_line = loc_line loc;
      f_toplevel = toplevel;
      f_parent = parent;
      f_attrs = attrs;
      f_bodies = bodies;
      f_calls = [];
      f_defines = [];
      f_ops = [];
      f_spawns = [];
      f_checkpoints = false;
    }
  in
  b.b_funcs <- f :: b.b_funcs;
  if toplevel then begin
    if not (Hashtbl.mem b.b_by_name name) then Hashtbl.add b.b_by_name name fid;
    match lib_name with
    | Some a when not (Hashtbl.mem b.b_by_name a) ->
        Hashtbl.add b.b_by_name a fid
    | _ -> ()
  end;
  if not (Hashtbl.mem b.b_by_loc (loc_key loc)) then
    Hashtbl.add b.b_by_loc (loc_key loc) fid;
  (fid, f)

let collect_unit b (u : Cmt_load.unit_info) =
  let modname = u.modname and unitc = u.canonical in
  let add_define (parent : func) fid =
    parent.f_defines <- (fid, false) :: parent.f_defines
  in
  (* Scan a function body for nested named functions and anonymous
     closures; both become graph nodes with a defines edge from the
     parent.  Everything else is recursed into generically. *)
  let rec scan_body (parent : func) (e : Typedtree.expression) =
    let it =
      {
        Tast_iterator.default_iterator with
        expr =
          (fun sub x ->
            match x.exp_desc with
            | Texp_let (_, vbs, cont) ->
                List.iter (fun vb -> scan_vb parent vb) vbs;
                sub.expr sub cont
            | Texp_function _ ->
                let name =
                  Printf.sprintf "%s.<fun:%d>" parent.f_name
                    (loc_line x.exp_loc)
                in
                ignore (nested parent ~name ~attrs:[] ~loc:x.exp_loc x : int)
            | _ -> Tast_iterator.default_iterator.expr sub x);
      }
    in
    it.expr it e
  and scan_vb (parent : func) (vb : Typedtree.value_binding) =
    match (vb.vb_pat.pat_desc, is_function vb.vb_expr) with
    | Typedtree.Tpat_var (id, _), true ->
        let name = parent.f_name ^ "." ^ Ident.name id in
        let fid =
          nested parent ~name
            ~attrs:(attr_names vb.vb_attributes)
            ~loc:vb.vb_expr.exp_loc vb.vb_expr
        in
        Hashtbl.replace b.b_fn_stamps (modname, Ident.unique_name id) fid
    | _ ->
        List.iter
          (fun id ->
            Hashtbl.replace b.b_local_vbs
              (modname, Ident.unique_name id)
              vb.vb_expr)
          (pattern_idents vb.vb_pat);
        scan_body parent vb.vb_expr
  and nested parent ~name ~attrs ~loc e =
    let bodies = peel_bodies e in
    let fid, f =
      register_func b ~unit_:modname ~unitc ~name ~toplevel:false
        ~parent:(Some parent.fid) ~attrs ~loc bodies
    in
    add_define parent fid;
    List.iter (scan_body f) bodies;
    fid
  in
  let init_parent = ref None in
  let init_func () =
    match !init_parent with
    | Some f -> f
    | None ->
        let loc =
          Location.in_file
            (match u.source with "" -> unitc ^ ".ml" | s -> s)
        in
        let _, f =
          register_func b ~unit_:modname ~unitc ~name:(unitc ^ ".(init)")
            ~toplevel:false ~parent:None ~attrs:[] ~loc []
        in
        init_parent := Some f;
        f
  in
  let rec items mpath (its : Typedtree.structure_item list) =
    List.iter (item mpath) its
  and item mpath (it : Typedtree.structure_item) =
    match it.str_desc with
    | Tstr_value (_, vbs) -> List.iter (toplevel_vb mpath) vbs
    | Tstr_type (_, decls) -> List.iter (type_decl mpath) decls
    | Tstr_module mb -> module_binding mpath mb
    | Tstr_recmodule mbs -> List.iter (module_binding mpath) mbs
    | Tstr_eval (e, _) -> scan_body (init_func ()) e
    | _ -> ()
  and module_binding mpath (mb : Typedtree.module_binding) =
    match mb.mb_name.txt with
    | None -> ()
    | Some name -> (
        let rec unwrap (me : Typedtree.module_expr) =
          match me.mod_desc with
          | Tmod_structure str -> Some str
          | Tmod_constraint (me, _, _, _) -> unwrap me
          | _ -> None
        in
        match unwrap mb.mb_expr with
        | Some str -> items (mpath @ [ name ]) str.str_items
        | None -> ())
  and toplevel_vb mpath (vb : Typedtree.value_binding) =
    match (vb.vb_pat.pat_desc, is_function vb.vb_expr) with
    | Typedtree.Tpat_var (id, _), true ->
        let name =
          String.concat "." ((unitc :: mpath) @ [ Ident.name id ])
        in
        let lib_name =
          String.concat "."
            (split_wrapped modname @ mpath @ [ Ident.name id ])
        in
        let bodies = peel_bodies vb.vb_expr in
        let fid, f =
          register_func b ~unit_:modname ~unitc ~name ~lib_name ~toplevel:true
            ~parent:None
            ~attrs:(attr_names vb.vb_attributes)
            ~loc:vb.vb_expr.exp_loc bodies
        in
        Hashtbl.replace b.b_fn_stamps (modname, Ident.unique_name id) fid;
        List.iter (scan_body f) bodies
    | pat, _ ->
        let ids = pattern_idents vb.vb_pat in
        let key_of id = String.concat "." ((unitc :: mpath) @ [ Ident.name id ]) in
        (match (pat, ids, global_mutability vb.vb_expr) with
        | _, [ id ], Some (desc, rec_ty) ->
            let key = key_of id in
            let safe =
              u.domain_safe || has_attr safe_attr (attr_names vb.vb_attributes)
            in
            let info =
              {
                g_key = key;
                g_unit = unitc;
                g_desc = desc;
                g_loc = vb.vb_expr.exp_loc;
                g_safe = safe;
                g_rec_ty = rec_ty;
              }
            in
            if not (Hashtbl.mem b.b_globals key) then
              Hashtbl.add b.b_globals key info;
            let lib_key =
              String.concat "."
                (split_wrapped modname @ mpath @ [ Ident.name id ])
            in
            if not (Hashtbl.mem b.b_globals lib_key) then
              Hashtbl.add b.b_globals lib_key info;
            Hashtbl.replace b.b_global_stamps
              (modname, Ident.unique_name id)
              key
        | _ ->
            List.iter
              (fun id ->
                Hashtbl.replace b.b_local_vbs
                  (modname, Ident.unique_name id)
                  vb.vb_expr)
              ids);
        scan_body (init_func ()) vb.vb_expr
  and type_decl mpath (td : Typedtree.type_declaration) =
    match td.typ_kind with
    | Ttype_record lds ->
        let muts =
          List.filter_map
            (fun (ld : Typedtree.label_declaration) ->
              if ld.ld_mutable = Asttypes.Mutable then Some (Ident.name ld.ld_id)
              else None)
            lds
        in
        if muts <> [] then begin
          let has_mutex =
            List.exists
              (fun (ld : Typedtree.label_declaration) ->
                match type_head ld.ld_type.ctyp_type with
                | Some parts -> suffix_matches [ "Mutex"; "t" ] (String.concat "." parts)
                | None -> false)
              lds
          in
          let key =
            String.concat "." ((unitc :: mpath) @ [ Ident.name td.typ_id ])
          in
          let safe =
            u.domain_safe || has_attr safe_attr (attr_names td.typ_attributes)
          in
          let info =
            {
              r_key = key;
              r_unit = unitc;
              r_loc = td.typ_loc;
              r_mutable_fields = muts;
              r_has_mutex = has_mutex;
              r_safe = safe;
            }
          in
          if not (Hashtbl.mem b.b_records key) then
            Hashtbl.add b.b_records key info
        end
    | _ -> ()
  in
  items [] u.str.str_items

(* ------------------------------------------------------------------ *)
(* Pass 2: evaluation-order walk of each function body.                *)

type wstate = { mutable lock : int }

let spawn_targets =
  [
    ([ "Pool"; "submit" ], `Last);
    ([ "Pool"; "run" ], `Last);
    ([ "Batch"; "run" ], `Labelled "warm");
    ([ "Domain"; "spawn" ], `First);
    ([ "Thread"; "create" ], `First);
  ]

let writing_fns =
  [
    "replace"; "add"; "remove"; "reset"; "clear"; "set"; "unsafe_set"; "fill";
    "blit"; "take"; "take_opt"; "pop"; "pop_opt"; "push"; "transfer"; "drop";
    "truncate"; "add_char"; "add_string"; "add_bytes"; "add_buffer";
    "add_subbytes"; "add_substring"; "filter_map_inplace"; "unsafe_fill";
    "blit_string"; "unsafe_blit";
  ]

let walk_func t ~modname ~unitc (f : func) =
  let resolve p = resolve_value t ~modname ~unitc p in
  let rec peel_proj (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_field (r, _, _) -> peel_proj r
    | Texp_apply (fn, [ (Asttypes.Nolabel, Some r) ])
      when (match fn.exp_desc with
           | Texp_ident (p, _, _) -> canon_str p = "!"
           | _ -> false) ->
        peel_proj r
    | _ -> e
  in
  let classify_root (e : Typedtree.expression) =
    match (peel_proj e).exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        let k = (modname, Ident.unique_name id) in
        match Hashtbl.find_opt t.global_stamps k with
        | Some g -> Rglobal g
        | None -> Rvar (Ident.unique_name id, Ident.name id))
    | Texp_ident (p, _, _) -> (
        match resolve p with `Global g -> Rglobal g | _ -> Runknown)
    | _ -> Runknown
  in
  let add_op st ~desc ~write root loc =
    f.f_ops <-
      {
        op_desc = desc;
        op_root = root;
        op_write = write;
        op_locked = st.lock > 0;
        op_loc = loc;
      }
      :: f.f_ops
  in
  let clone st = { lock = st.lock } in
  let first_nolabel args =
    List.find_map
      (function Asttypes.Nolabel, (Some _ as e) -> e | _ -> None)
      args
  in
  let last_nolabel args = first_nolabel (List.rev args) in
  let rec go st (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident _ | Texp_constant _ | Texp_instvar _ | Texp_unreachable
    | Texp_extension_constructor _ | Texp_new _ ->
        ()
    | Texp_let (_, vbs, body) ->
        List.iter (fun (vb : Typedtree.value_binding) -> go st vb.vb_expr) vbs;
        go st body
    | Texp_function _ -> ()  (* a separate node; defines edge from pass 1 *)
    | Texp_apply (fn, args) -> apply st fn args e.exp_loc
    | Texp_match (scrut, cases, _) ->
        go st scrut;
        branches st
          (List.map
             (fun (c : Typedtree.computation Typedtree.case) st' ->
               Option.iter (go st') c.c_guard;
               go st' c.c_rhs)
             cases)
    | Texp_try (body, cases) ->
        branches st
          ((fun st' -> go st' body)
          :: List.map
               (fun (c : Typedtree.value Typedtree.case) st' ->
                 Option.iter (go st') c.c_guard;
                 go st' c.c_rhs)
               cases)
    | Texp_tuple es | Texp_array es -> List.iter (go st) es
    | Texp_construct (_, _, es) -> List.iter (go st) es
    | Texp_variant (_, eo) -> Option.iter (go st) eo
    | Texp_record { fields; extended_expression; _ } ->
        Option.iter (go st) extended_expression;
        Array.iter
          (fun ((_, d) : Types.label_description * Typedtree.record_label_definition) ->
            match d with
            | Typedtree.Overridden (_, x) -> go st x
            | Typedtree.Kept _ -> ())
          fields
    | Texp_field (r, _, ld) ->
        go st r;
        field_op st ~write:false r ld e.exp_loc
    | Texp_setfield (r, _, ld, v) ->
        go st r;
        go st v;
        field_op st ~write:true r ld e.exp_loc
    | Texp_ifthenelse (c, th, eo) -> (
        go st c;
        match eo with
        | Some el -> branches st [ (fun st' -> go st' th); (fun st' -> go st' el) ]
        | None -> discard st th)
    | Texp_sequence (a, bx) ->
        go st a;
        go st bx
    | Texp_while (c, body) ->
        go st c;
        discard st body
    | Texp_for (_, _, lo, hi, _, body) ->
        go st lo;
        go st hi;
        discard st body
    | Texp_send (o, _) -> go st o
    | Texp_setinstvar (_, _, _, v) -> go st v
    | Texp_override (_, fs) -> List.iter (fun (_, _, x) -> go st x) fs
    | Texp_letmodule (_, _, _, _, body) -> go st body
    | Texp_letexception (_, body) -> go st body
    | Texp_assert (x, _) -> go st x
    | Texp_lazy x -> discard st x
    | Texp_object _ -> ()
    | Texp_pack _ -> ()
    | Texp_letop { let_; ands; body; _ } ->
        go st let_.bop_exp;
        List.iter (fun (a : Typedtree.binding_op) -> go st a.bop_exp) ands;
        discard st body.c_rhs
    | Texp_open (_, body) -> go st body
  (* Branch merge: walk each arm from the current state, keep the
     weakest lock depth — protection must hold on every path. *)
  and branches st arms =
    let locks =
      List.map
        (fun arm ->
          let st' = clone st in
          arm st';
          st'.lock)
        arms
    in
    st.lock <- List.fold_left min st.lock locks
  (* Deferred or possibly-skipped code: effects on lock state stay
     local (a while body may run zero times). *)
  and discard st e =
    let st' = clone st in
    go st' e
  and field_op st ~write r (ld : Types.label_description) loc =
    if write || ld.lbl_mut = Asttypes.Mutable then begin
      let exempt =
        match lookup_record t ~unitc ld.lbl_res with
        | Some ri -> ri.r_safe || ri.r_has_mutex
        | None -> false
      in
      if not exempt then
        add_op st
          ~desc:
            (Printf.sprintf "mutable field %s `.%s`"
               (if write then "write" else "read")
               ld.lbl_name)
          ~write (classify_root r) loc
    end
  and apply st fn args loc =
    let fn_canon () =
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> canon_str p
      | _ -> ""
    in
    match (fn_canon (), args) with
    | "@@", [ (Asttypes.Nolabel, Some g); (Asttypes.Nolabel, Some x) ] ->
        redirect st g x loc
    | "|>", [ (Asttypes.Nolabel, Some x); (Asttypes.Nolabel, Some g) ] ->
        redirect st g x loc
    | _ ->
        go st fn;
        List.iter (fun (_, eo) -> Option.iter (go st) eo) args;
        let target =
          match fn.exp_desc with
          | Texp_ident (p, _, _) -> resolve p
          | _ -> `None
        in
        let qual =
          match (target, fn.exp_desc) with
          | `Func fid, _ -> Some t.funcs.(fid).f_name
          | _, Texp_ident (p, _, _) -> Some (canon_str p)
          | _ -> None
        in
        (match qual with
        | Some q when suffix_matches [ "Mutex"; "lock" ] q ->
            st.lock <- st.lock + 1
        | Some q when suffix_matches [ "Mutex"; "unlock" ] q ->
            st.lock <- max 0 (st.lock - 1)
        | Some q
          when suffix_matches [ "Budget"; "check" ] q
               || suffix_matches [ "Budget"; "charge" ] q ->
            f.f_checkpoints <- true
        | Some q when suffix_matches [ "Mutex"; "protect" ] q -> (
            (* The body closure runs with the mutex held. *)
            let body_fid =
              match last_nolabel args with
              | Some barg -> (
                  match barg.exp_desc with
                  | Texp_function _ ->
                      Hashtbl.find_opt t.by_loc (loc_key barg.exp_loc)
                  | Texp_ident (p, _, _) -> (
                      match resolve p with `Func fid -> Some fid | _ -> None)
                  | _ -> None)
              | None -> None
            in
            match body_fid with
            | Some bfid ->
                f.f_calls <-
                  { c_dst = bfid; c_locked = true; c_loc = loc } :: f.f_calls;
                f.f_defines <-
                  List.map
                    (fun (d, l) -> if d = bfid then (d, true) else (d, l))
                    f.f_defines
            | None -> ())
        | _ -> ());
        (match qual with
        | Some q -> (
            match
              List.find_opt (fun (sfx, _) -> suffix_matches sfx q) spawn_targets
            with
            | Some (_, pos) -> (
                let arg =
                  match pos with
                  | `First -> first_nolabel args
                  | `Last -> last_nolabel args
                  | `Labelled name ->
                      (* Optional labels match too: [?warm] arrives as
                         [Optional "warm"] with the closure wrapped in
                         [Some], which the slice traverses through. *)
                      List.find_map
                        (function
                          | Asttypes.Labelled l, (Some _ as e) when l = name ->
                              e
                          | Asttypes.Optional l, (Some _ as e) when l = name ->
                              e
                          | _ -> None)
                        args
                in
                match arg with
                | Some a ->
                    f.f_spawns <-
                      { sp_via = q; sp_arg = a; sp_loc = loc } :: f.f_spawns
                | None -> ())
            | None -> ())
        | None -> ());
        (match target with
        | `Func fid ->
            f.f_calls <-
              { c_dst = fid; c_locked = st.lock > 0; c_loc = loc } :: f.f_calls
        | _ -> ());
        (match qual with
        | Some q -> apply_op st q args loc
        | None -> ())
  and redirect st g x loc =
    match g.exp_desc with
    | Texp_apply (g0, args0) ->
        apply st g0 (args0 @ [ (Asttypes.Nolabel, Some x) ]) loc
    | _ -> apply st g [ (Asttypes.Nolabel, Some x) ] loc
  and apply_op st q args loc =
    let root0 () =
      match first_nolabel args with
      | Some a -> classify_root a
      | None -> Runknown
    in
    match q with
    | ":=" -> add_op st ~desc:"ref write (:=)" ~write:true (root0 ()) loc
    | "!" -> add_op st ~desc:"ref read (!)" ~write:false (root0 ()) loc
    | "incr" | "decr" ->
        add_op st ~desc:("ref write (" ^ q ^ ")") ~write:true (root0 ()) loc
    | _ -> (
        match last2 q with
        | Some (m, fn)
          when List.mem m containers
               && (not (List.mem fn container_pure))
               && not (List.mem fn creation_fns) ->
            add_op st ~desc:q ~write:(List.mem fn writing_fns) (root0 ()) loc
        | Some ("Array", fn) when List.mem fn [ "set"; "unsafe_set"; "fill" ]
          ->
            add_op st ~desc:("Array." ^ fn) ~write:true (root0 ()) loc
        | _ -> ())
  in
  let st = { lock = 0 } in
  List.iter (go st) f.f_bodies

(* ------------------------------------------------------------------ *)

let build (units : Cmt_load.unit_info list) =
  let b =
    {
      b_funcs = [];
      b_count = 0;
      b_by_name = Hashtbl.create 256;
      b_by_loc = Hashtbl.create 256;
      b_fn_stamps = Hashtbl.create 256;
      b_globals = Hashtbl.create 64;
      b_global_stamps = Hashtbl.create 64;
      b_local_vbs = Hashtbl.create 256;
      b_records = Hashtbl.create 64;
    }
  in
  List.iter (collect_unit b) units;
  let funcs = Array.of_list (List.rev b.b_funcs) in
  let t =
    {
      funcs;
      by_name = b.b_by_name;
      by_loc = b.b_by_loc;
      fn_stamps = b.b_fn_stamps;
      globals = b.b_globals;
      global_stamps = b.b_global_stamps;
      local_vbs = b.b_local_vbs;
      records = b.b_records;
    }
  in
  Array.iter (fun f -> walk_func t ~modname:f.f_unit ~unitc:f.f_unitc f) funcs;
  t

(** Module-qualified call graph over Typedtree.

    [build] runs two passes.  Pass 1 tables every function — top-level
    bindings (through nested plain modules), [let]-bound local
    functions and anonymous closures — plus module-level mutable
    globals and record types with mutable fields.  Pass 2 walks each
    function body once in evaluation order, tracking a must-hold mutex
    depth, and records the facts the analyses consume: call edges,
    closure-definition edges, mutable-state operations, spawn sites and
    budget checkpoints. *)

(** The base value an operation touches. *)
type root =
  | Rvar of string * string  (** [Ident.unique_name] key, display name *)
  | Rglobal of string  (** key into [globals] *)
  | Runknown

type op = {
  op_desc : string;
  op_root : root;
  op_write : bool;
  op_locked : bool;  (** a Mutex is provably held at the site *)
  op_loc : Location.t;
}

type spawn = {
  sp_via : string;  (** resolved callee, e.g. [Pool.run] *)
  sp_arg : Typedtree.expression;
  sp_loc : Location.t;
}

type call = { c_dst : int; c_locked : bool; c_loc : Location.t }

type func = {
  fid : int;
  f_unit : string;  (** modname of the defining unit *)
  f_unitc : string;  (** canonical unit name *)
  f_name : string;  (** qualified display name, [Pool.run.record] *)
  f_file : string;
  f_line : int;
  f_toplevel : bool;
  f_parent : int option;
  f_attrs : string list;
  f_bodies : Typedtree.expression list;
  mutable f_calls : call list;
  mutable f_defines : (int * bool) list;  (** dst, runs-under-lock *)
  mutable f_ops : op list;
  mutable f_spawns : spawn list;
  mutable f_checkpoints : bool;  (** applies Budget.check/charge itself *)
}

type record_info = {
  r_key : string;  (** canonical [Unit.t] *)
  r_unit : string;
  r_loc : Location.t;
  r_mutable_fields : string list;
  r_has_mutex : bool;
  r_safe : bool;
}

type global_info = {
  g_key : string;
  g_unit : string;
  g_desc : string;
  g_loc : Location.t;
  g_safe : bool;
  g_rec_ty : Types.type_expr option;  (** for record globals: their type *)
}

type t = {
  funcs : func array;
  by_name : (string, int) Hashtbl.t;  (** top-level qualified name -> fid *)
  by_loc : (string, int) Hashtbl.t;  (** function expr loc -> fid *)
  fn_stamps : (string * string, int) Hashtbl.t;
      (** (modname, unique_name) -> fid *)
  globals : (string, global_info) Hashtbl.t;
  global_stamps : (string * string, string) Hashtbl.t;
  local_vbs : (string * string, Typedtree.expression) Hashtbl.t;
      (** every non-function let binding: (modname, unique_name) -> RHS *)
  records : (string, record_info) Hashtbl.t;
}

val loc_key : Location.t -> string
val loc_file : Location.t -> string
val loc_line : Location.t -> int

(** Attribute spellings accepted with or without the [lint.] prefix. *)
val bounded_attr : string list

val safe_attr : string list

val has_attr : string list -> string list -> bool

(** Free value identifiers of an expression with their types, exact by
    stamp uniqueness (an occurrence bound inside the expression is
    bound nowhere else, so free = occurrences minus binders). *)
val free_idents :
  Typedtree.expression -> (Ident.t * Types.type_expr * Location.t) list

(** Locations ([loc_key]) of every closure literal inside. *)
val closure_locs : Typedtree.expression -> string list

(** Record info for a type expression whose head constructor is a known
    mutable-record type.  [unitc] (the referencing unit, canonical) is
    tried as a qualifier first — a within-unit reference is a bare
    [Pident] with no unit in its path — then canonical-name suffix. *)
val lookup_record : t -> ?unitc:string -> Types.type_expr -> record_info option

val build : Cmt_load.unit_info list -> t

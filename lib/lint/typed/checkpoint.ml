(* checkpoint-coverage: every recursive cycle reachable from the solver
   entry units must poll the budget.

   Reachability from the entry units' top-level functions follows call
   edges and closure-definition edges (closures run).  Cycles are the
   SCCs of the call-edge graph restricted to that reachable set.  A
   cycle passes when some member transitively reaches a
   [Budget.check]/[Budget.charge] application, or when a member is
   annotated [@lint.bounded] (a structurally bounded helper recursion —
   an array scan, a fixed-depth split — that cannot run long enough to
   need a poll). *)

open Lint
open Callgraph

let fmt_func (f : func) = Printf.sprintf "%s (%s:%d)" f.f_name f.f_file f.f_line

(* Transitive "reaches a budget poll" over calls and defined closures. *)
let checkpointing t =
  let n = Array.length t.funcs in
  let cp = Array.make n false in
  Array.iter (fun f -> cp.(f.fid) <- f.f_checkpoints) t.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun f ->
        if not cp.(f.fid) then begin
          let reaches =
            List.exists (fun c -> cp.(c.c_dst)) f.f_calls
            || List.exists (fun (d, _) -> cp.(d)) f.f_defines
          in
          if reaches then begin
            cp.(f.fid) <- true;
            changed := true
          end
        end)
      t.funcs
  done;
  cp

let reachable_from t root_fids =
  let n = Array.length t.funcs in
  let seen = Array.make n false in
  let parent = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun fid ->
      if not seen.(fid) then begin
        seen.(fid) <- true;
        Queue.add fid queue
      end)
    root_fids;
  while not (Queue.is_empty queue) do
    let fid = Queue.pop queue in
    let f = t.funcs.(fid) in
    let visit d =
      if not seen.(d) then begin
        seen.(d) <- true;
        parent.(d) <- fid;
        Queue.add d queue
      end
    in
    List.iter (fun c -> visit c.c_dst) f.f_calls;
    List.iter (fun (d, _) -> visit d) f.f_defines
  done;
  (seen, parent)

(* Tarjan over call edges restricted to [keep]. *)
let sccs t keep =
  let n = Array.length t.funcs in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun c ->
        let w = c.c_dst in
        if keep.(w) then
          if index.(w) < 0 then begin
            strong w;
            low.(v) <- min low.(v) low.(w)
          end
          else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      t.funcs.(v).f_calls;
    if low.(v) = index.(v) then begin
      let rec popped acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else popped (w :: acc)
        | [] -> acc
      in
      out := popped [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if keep.(v) && index.(v) < 0 then strong v
  done;
  !out

let check (t : Callgraph.t) ~roots ~scope =
  let root_fids =
    Array.to_list t.funcs
    |> List.filter_map (fun f ->
           if f.f_toplevel && (roots = [] || List.mem f.f_unitc roots) then
             Some f.fid
           else None)
  in
  let seen, parent = reachable_from t root_fids in
  let cp = checkpointing t in
  let in_scope file =
    match scope with
    | None -> true
    | Some s ->
        let rec has i =
          i + String.length s <= String.length file
          && (String.sub file i (String.length s) = s || has (i + 1))
        in
        has 0
  in
  let entry_chain fid =
    let rec up v acc =
      if v < 0 then acc
      else up parent.(v) (fmt_func t.funcs.(v) :: acc)
    in
    List.rev (up fid []) |> List.rev
  in
  sccs t seen
  |> List.filter_map (fun members ->
         let has_cycle =
           match members with
           | [ v ] ->
               List.exists (fun c -> c.c_dst = v) t.funcs.(v).f_calls
           | _ -> members <> []
         in
         match (has_cycle, List.map (fun v -> t.funcs.(v)) members) with
         | false, _ | _, [] -> None
         | true, (f0 :: frest as fs) ->
           let bounded =
             List.exists (fun f -> has_attr bounded_attr f.f_attrs) fs
           in
           let polls = List.exists (fun f -> cp.(f.fid)) fs in
           let scoped = List.exists (fun f -> in_scope f.f_file) fs in
           if bounded || polls || not scoped then None
           else begin
             let rep =
               List.fold_left
                 (fun a b ->
                   if
                     (b.f_file, b.f_line, b.f_name) < (a.f_file, a.f_line, a.f_name)
                   then b
                   else a)
                 f0 frest
             in
             let names = List.map (fun f -> f.f_name) fs in
             let msg =
               Printf.sprintf
                 "recursive cycle {%s} never calls Budget.check or \
                  Budget.charge on any path, so a tripped budget cannot \
                  interrupt it; poll the budget inside the loop, or \
                  annotate the binding [@lint.bounded] if the recursion is \
                  structurally bounded"
                 (String.concat " -> " names)
             in
             let chain =
               (match entry_chain rep.fid with
               | [] -> []
               | steps -> "entry path:" :: steps)
               @ [ "cycle: " ^ String.concat " -> " (names @ [ f0.f_name ]) ]
             in
             Some
               (Diag.with_chain chain
                  (Diag.at ~rule:"checkpoint-coverage" ~severity:Diag.Error
                     ~file:rep.f_file ~line:rep.f_line ~col:0 msg))
           end)

(** checkpoint-coverage: recursive solve loops must poll the budget.

    Finds the strongly-connected components of the call graph reachable
    from the top-level functions of the [roots] units ([[]] = every
    unit) and flags each cycle in which no member transitively reaches
    a [Budget.check]/[Budget.charge] application and no member carries
    [@lint.bounded].  [scope] (a path substring, e.g. ["lib/core"])
    restricts which files may be flagged; [None] means no restriction.

    Findings carry the entry path from a root to the cycle plus the
    cycle itself as a witness chain. *)

val check :
  Callgraph.t ->
  roots:string list ->
  scope:string option ->
  Lint.Diag.finding list

open Lint

type unit_info = {
  modname : string;
  canonical : string;
  source : string;
  str : Typedtree.structure;
  domain_safe : bool;
}

(* Wrapped libraries name their units [Lib__Module]; the canonical name
   is the part a human (and a [Path.t] through an alias) uses. *)
let canonical_of_modname m =
  let n = String.length m in
  let rec last_sep i =
    if i < 0 then None
    else if m.[i] = '_' && m.[i + 1] = '_' then Some i
    else last_sep (i - 1)
  in
  match last_sep (n - 2) with
  | Some i when i > 0 && i + 2 < n -> String.sub m (i + 2) (n - i - 2)
  | _ -> m

let attr_name (a : Parsetree.attribute) = a.attr_name.txt

let is_domain_safe_attr name =
  name = "lint.domain_safe" || name = "domain_safe"

let unit_domain_safe (str : Typedtree.structure) =
  List.exists
    (fun (it : Typedtree.structure_item) ->
      match it.str_desc with
      | Tstr_attribute a -> is_domain_safe_attr (attr_name a)
      | _ -> false)
    str.str_items

let of_structure ~modname ~source str =
  {
    modname;
    canonical = canonical_of_modname modname;
    source;
    str;
    domain_safe = unit_domain_safe str;
  }

(* Directory walk for [*.cmt].  Unlike the untyped walk this must enter
   dot-directories: dune keeps compiled artefacts under [.<lib>.objs]. *)
let rec collect_cmt acc path =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      if Filename.basename path = ".git" then acc
      else
        Sys.readdir path |> Array.to_list |> List.sort String.compare
        |> List.fold_left
             (fun acc entry -> collect_cmt acc (Filename.concat path entry))
             acc
  | false ->
      if Filename.check_suffix path ".cmt" then path :: acc else acc

let normalize_source s =
  if String.length s >= 2 && String.sub s 0 2 = "./" then
    String.sub s 2 (String.length s - 2)
  else s

let load ~cmt_root =
  let cmts = collect_cmt [] cmt_root |> List.sort String.compare in
  let seen = Hashtbl.create 64 in
  let warnings = ref [] in
  let units =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ ->
            warnings :=
              Diag.at ~rule:"cmt-error" ~severity:Diag.Warning ~file:path
                ~line:1 ~col:0
                "unreadable .cmt (version mismatch or truncation); unit \
                 skipped by the typed analyses"
              :: !warnings;
            None
        | cmt -> (
            match (cmt.cmt_annots, cmt.cmt_sourcefile) with
            | Cmt_format.Implementation str, Some source
              when not (Hashtbl.mem seen cmt.cmt_modname) ->
                Hashtbl.add seen cmt.cmt_modname ();
                Some
                  (of_structure ~modname:cmt.cmt_modname
                     ~source:(normalize_source source) str)
            | _ -> None))
      cmts
  in
  (units, List.rev !warnings)

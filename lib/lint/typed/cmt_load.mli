(** Loading Typedtree implementations out of [.cmt] artefacts.

    The typed analyses run over whole-program Typedtree, which dune
    already produces as a by-product of compilation: one [.cmt] per
    unit under [_build/default/<dir>/.<lib>.objs/byte/].  This module
    walks a build root for them (entering dot-directories, unlike the
    untyped source walk) and keeps one [unit_info] per module name. *)

open Lint

type unit_info = {
  modname : string;  (** as compiled, e.g. [Stgq_core__Baseline] *)
  canonical : string;  (** the human name, e.g. [Baseline] *)
  source : string;  (** source path recorded by the compiler *)
  str : Typedtree.structure;
  domain_safe : bool;
      (** the unit carries a floating [\[@@@lint.domain_safe\]]: its
          module-level mutable state is declared domain-sharded *)
}

(** [Stgq_core__Baseline -> Baseline]; names without [__] unchanged. *)
val canonical_of_modname : string -> string

val attr_name : Parsetree.attribute -> string

(** Wrap an already-typechecked structure (the test fixtures typecheck
    in memory instead of reading artefacts off disk). *)
val of_structure :
  modname:string -> source:string -> Typedtree.structure -> unit_info

(** [load ~cmt_root] — all readable implementation [.cmt]s under the
    root, first occurrence of each module name wins (sorted walk, so
    deterministic), plus a [cmt-error] warning per unreadable file. *)
val load : cmt_root:string -> unit_info list * Diag.finding list

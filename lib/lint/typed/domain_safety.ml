(* domain-safety: flag non-atomic mutable state crossing a domain
   boundary.

   For every spawn site (a closure handed to [Pool.submit]/
   [Domain.spawn]/[Thread.create], or the [~warm] hook handed to
   [Batch.run], which runs on a pool worker when the batch is
   pipelined) the argument expression is sliced:
   local [let]s it references are inlined, locally-defined functions it
   names become region roots alongside the closure literals themselves,
   and the remaining free identifiers are the values captured across
   the domain boundary.

   Two rules fire on the result:

   - capture rule: a captured value whose type is a record with mutable
     fields, no [Mutex.t] field and no [@lint.domain_safe] annotation
     has no way to be used safely from two domains — flagged at the
     spawn site.  (Plain refs/containers are judged by use instead:
     read-only sharing of a ref is fine, and lock-protected use is
     fine, so flagging the capture itself would be noise.)

   - operation rule: walk every function transitively reachable from
     the region roots (through calls and closure definitions) and flag
     reads/writes of captured refs/containers/mutable fields and of
     module-level mutable globals when no mutex is provably held —
     neither at the operation site nor anywhere up the call chain from
     the region root.  Witness chains name the path. *)

open Lint
open Callgraph

type region = {
  captures : (string, string * Types.type_expr) Hashtbl.t;  (* uname -> name, ty *)
  roots : int list;
  sp_unit : string;  (* modname of the spawning unit *)
  sp_unitc : string;  (* its canonical name, for record lookups *)
}

let fmt_loc loc = Printf.sprintf "%s:%d" (loc_file loc) (loc_line loc)

(* Slice the spawn argument (see header).  [t.local_vbs] spans every
   non-function binding of the unit, so references resolve across the
   whole enclosing function without scope bookkeeping (stamps are
   unique). *)
let slice t ~modname ~unitc (arg : Typedtree.expression) =
  let captures = Hashtbl.create 16 in
  let roots = ref [] in
  let seen_exprs = Hashtbl.create 16 in
  let seen_fids = Hashtbl.create 16 in
  let add_root fid =
    if not (Hashtbl.mem seen_fids fid) then begin
      Hashtbl.add seen_fids fid ();
      roots := fid :: !roots
    end
  in
  let rec add_expr (e : Typedtree.expression) =
    let k = loc_key e.exp_loc in
    if not (Hashtbl.mem seen_exprs k) then begin
      Hashtbl.add seen_exprs k ();
      List.iter
        (fun lk ->
          match Hashtbl.find_opt t.by_loc lk with
          | Some fid -> add_root fid
          | None -> ())
        (closure_locs e);
      List.iter
        (fun (id, ty, _) ->
          let uk = Ident.unique_name id in
          match Hashtbl.find_opt t.fn_stamps (modname, uk) with
          | Some fid ->
              add_root fid;
              (* local closures: their free variables cross too *)
              if not t.funcs.(fid).f_toplevel then
                List.iter add_expr t.funcs.(fid).f_bodies
          | None ->
              if not (Hashtbl.mem t.global_stamps (modname, uk)) then begin
                if not (Hashtbl.mem captures uk) then
                  Hashtbl.add captures uk (Ident.name id, ty);
                match Hashtbl.find_opt t.local_vbs (modname, uk) with
                | Some rhs -> add_expr rhs
                | None -> ()
              end)
        (free_idents e)
    end
  in
  add_expr arg;
  { captures; roots = List.rev !roots; sp_unit = modname; sp_unitc = unitc }

let capture_findings t ~allow_units region (sp : spawn) =
  Hashtbl.fold
    (fun _ (name, ty) acc ->
      match lookup_record t ~unitc:region.sp_unitc ty with
      | Some ri
        when ri.r_mutable_fields <> []
             && (not ri.r_safe)
             && (not ri.r_has_mutex)
             && not (List.mem ri.r_unit allow_units) ->
          let msg =
            Printf.sprintf
              "closure passed to %s captures `%s` of type %s, which has \
               mutable field(s) %s but no Mutex.t field: the state crosses \
               the domain boundary with no way to synchronize it (make the \
               field(s) Atomic, embed a Mutex.t, or mark the type \
               [@lint.domain_safe] if it is domain-sharded by construction)"
              sp.sp_via name ri.r_key
              (String.concat ", " ri.r_mutable_fields)
          in
          let chain =
            [
              Printf.sprintf "%s: closure passed to %s" (fmt_loc sp.sp_loc)
                sp.sp_via;
              Printf.sprintf "captures `%s` : %s" name ri.r_key;
              Printf.sprintf "type %s declared at %s (mutable: %s)" ri.r_key
                (fmt_loc ri.r_loc)
                (String.concat ", " ri.r_mutable_fields);
            ]
          in
          Diag.with_chain chain
            (Diag.make ~rule:"domain-safety" ~severity:Diag.Error sp.sp_loc msg)
          :: acc
      | _ -> acc)
    region.captures []

let global_exempt t ~allow_units key =
  match Hashtbl.find_opt t.globals key with
  | None -> true
  | Some g ->
      g.g_safe
      || List.mem g.g_unit allow_units
      || (match g.g_rec_ty with
         | Some ty -> (
             match lookup_record t ~unitc:g.g_unit ty with
             | Some ri -> ri.r_safe || ri.r_has_mutex
             | None -> false)
         | None -> false)

(* BFS over the region.  A node is (fid, entry_locked): call edges
   propagate the caller's lock, closure-definition edges do not (the
   closure runs later, except a [Mutex.protect] body, whose defines
   edge pass 2 marked locked). *)
let op_findings t ~allow_units region (sp : spawn) seen_ops =
  let parents = Hashtbl.create 64 in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push ~parent node =
    if not (Hashtbl.mem visited node) then begin
      Hashtbl.add visited node ();
      if not (Hashtbl.mem parents node) then Hashtbl.add parents node parent;
      Queue.add node queue
    end
  in
  List.iter (fun fid -> push ~parent:None (fid, false)) region.roots;
  let findings = ref [] in
  let rec chain_of node =
    let fid, _ = node in
    let f = t.funcs.(fid) in
    let step = Printf.sprintf "%s (%s:%d)" f.f_name f.f_file f.f_line in
    match Hashtbl.find_opt parents node with
    | Some (Some p) -> chain_of p @ [ step ]
    | _ -> [ step ]
  in
  while not (Queue.is_empty queue) do
    let ((fid, entry_locked) as node) = Queue.pop queue in
    let f = t.funcs.(fid) in
    List.iter
      (fun op ->
        let protected = op.op_locked || entry_locked in
        let flag root_name why =
          (* Per line, not per location: [x := !x + 1] is one racy
             statement, not a write finding plus a read finding. *)
          let key = (loc_file op.op_loc, loc_line op.op_loc, root_name) in
          if not (Hashtbl.mem seen_ops key) then begin
            Hashtbl.add seen_ops key ();
            let msg =
              Printf.sprintf
                "%s on `%s` runs on a domain spawned at %s (via %s) with no \
                 mutex held on any path from the spawn; %s"
                op.op_desc root_name (fmt_loc sp.sp_loc) sp.sp_via why
            in
            let chain =
              Printf.sprintf "%s: closure passed to %s" (fmt_loc sp.sp_loc)
                sp.sp_via
              :: chain_of node
              @ [
                  Printf.sprintf "%s `%s` at %s" op.op_desc root_name
                    (fmt_loc op.op_loc);
                ]
            in
            findings :=
              Diag.with_chain chain
                (Diag.make ~rule:"domain-safety" ~severity:Diag.Error op.op_loc
                   msg)
              :: !findings
          end
        in
        if not protected then
          match op.op_root with
          | Rvar (uk, name)
            when f.f_unit = region.sp_unit && Hashtbl.mem region.captures uk ->
              flag name
                "the value is captured from the submitting domain, so \
                 sibling jobs and the submitter race on it (guard it with \
                 the same Mutex everywhere, or use Atomic)"
          | Rglobal key when not (global_exempt t ~allow_units key) ->
              flag key
                "the target is module-level mutable state shared by every \
                 domain (guard it with a Mutex, use Atomic, or annotate it \
                 [@lint.domain_safe] if domain-sharded)"
          | _ -> ())
      f.f_ops;
    List.iter
      (fun c -> push ~parent:(Some node) (c.c_dst, entry_locked || c.c_locked))
      f.f_calls;
    List.iter
      (fun (dst, locked) -> push ~parent:(Some node) (dst, locked))
      f.f_defines
  done;
  !findings

let check (t : Callgraph.t) ~allow_units =
  let seen_ops = Hashtbl.create 64 in
  let seen_caps = Hashtbl.create 64 in
  Array.to_list t.funcs
  |> List.concat_map (fun f ->
         List.rev f.f_spawns
         |> List.concat_map (fun sp ->
                let region =
                  slice t ~modname:f.f_unit ~unitc:f.f_unitc sp.sp_arg
                in
                let caps =
                  capture_findings t ~allow_units region sp
                  |> List.filter (fun (d : Diag.finding) ->
                         let key = (d.file, d.line, d.message) in
                         if Hashtbl.mem seen_caps key then false
                         else begin
                           Hashtbl.add seen_caps key ();
                           true
                         end)
                in
                caps @ op_findings t ~allow_units region sp seen_ops))

(** domain-safety: non-atomic mutable state crossing a domain boundary.

    For every closure handed to [Pool.submit]/[Domain.spawn]/
    [Thread.create] — or as [Batch.run]'s [~warm] hook, which crosses
    onto a pool worker when the batch is pipelined — slice out what the
    closure region captures, then:

    - flag captured values whose type is a mutable record with no
      [Mutex.t] field and no [@lint.domain_safe] annotation (no way to
      use such a value safely from two domains), and
    - walk every function reachable from the region and flag
      reads/writes of captured refs/containers/mutable fields and of
      module-level mutable globals when no mutex is provably held on
      the path from the spawn.

    Findings carry witness chains: spawn site, call path, operation.

    [allow_units] — modnames whose module-level state is exempt (the
    unit carries a floating [\[@@@lint.domain_safe\]] or was allowed on
    the command line). *)

val check : Callgraph.t -> allow_units:string list -> Lint.Diag.finding list

(* Entry point for the typed analyses: build the callgraph once, run
   both checks over it, keep findings inside the requested source
   paths, and honour per-file suppression directives. *)

open Lint

type options = {
  paths : string list;
  allow_domain : string list;
  checkpoint_roots : string list;
  checkpoint_scope : string option;
}

let default_options =
  {
    paths = [ "lib" ];
    allow_domain = [];
    checkpoint_roots = [ "Sgselect"; "Stgselect"; "Baseline"; "Heuristics" ];
    checkpoint_scope = Some "lib/core";
  }

let under_paths paths file =
  paths = []
  || List.exists
       (fun p ->
         let p =
           if String.length p >= 2 && String.sub p 0 2 = "./" then
             String.sub p 2 (String.length p - 2)
           else p
         in
         file = p
         || String.length file > String.length p
            && String.sub file 0 (String.length p) = p
            && file.[String.length p] = '/')
       paths

let analyze ?(options = default_options) (units : Cmt_load.unit_info list) =
  let graph = Callgraph.build units in
  let allow_units =
    List.filter_map
      (fun (u : Cmt_load.unit_info) ->
        if u.domain_safe || List.mem u.canonical options.allow_domain then
          Some u.modname
        else None)
      units
  in
  let findings =
    Domain_safety.check graph ~allow_units
    @ Checkpoint.check graph ~roots:options.checkpoint_roots
        ~scope:options.checkpoint_scope
  in
  findings
  |> List.filter (fun (d : Diag.finding) -> under_paths options.paths d.file)
  |> List.filter (fun (d : Diag.finding) ->
         match Suppress.load d.file with
         | exception Sys_error _ -> true
         | sup -> not (Suppress.active sup ~rule:d.rule ~line:d.line))
  |> List.sort_uniq Diag.order

let run ?(options = default_options) ~cmt_root () =
  let units, warnings = Cmt_load.load ~cmt_root in
  let findings = analyze ~options units in
  List.sort Diag.order (warnings @ findings)

(** Driver for the typed interprocedural analyses. *)

type options = {
  paths : string list;
      (** keep findings whose file lies under one of these (source-tree
          prefixes); [[]] keeps everything *)
  allow_domain : string list;
      (** canonical unit names whose module-level state is exempt from
          domain-safety (in addition to [\[@@@lint.domain_safe\]]) *)
  checkpoint_roots : string list;
      (** canonical unit names whose top-level functions seed the
          checkpoint-coverage reachability; [[]] = all units *)
  checkpoint_scope : string option;
      (** path substring a checkpoint finding's file must contain *)
}

(** [{paths = ["lib"]; allow_domain = []; checkpoint_roots =
    ["Sgselect"; "Stgselect"; "Baseline"; "Heuristics"];
    checkpoint_scope = Some "lib/core"}] *)
val default_options : options

(** Analyse already-loaded units (the unit tests typecheck fixtures in
    memory).  Applies path filtering and per-file suppression
    directives; sorted, chains deduplicated. *)
val analyze :
  ?options:options -> Cmt_load.unit_info list -> Lint.Diag.finding list

(** [run ~cmt_root ()] — load every [.cmt] under [cmt_root], analyse,
    and prepend the loader's warnings. *)
val run :
  ?options:options -> cmt_root:string -> unit -> Lint.Diag.finding list

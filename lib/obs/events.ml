(* lint: allow-file toplevel-state *)
(* Structured JSONL event log: one record per completed query plus
   server-lifecycle, shedding, pool-respawn and store-checkpoint
   records.  Records always land in a fixed-size in-memory ring (the
   [/events/tail] source); when a directory is configured they are also
   appended to [events.jsonl] with size-capped rotation.

   Rotation follows the lib/store durability discipline at the file
   level: the active file is fsynced, renamed to its generation slot
   ([events-NNNNNN.jsonl]) and the directory is fsynced, so a crash
   leaves either the old active file or a fully-published generation,
   never a half-renamed log.  Per-record fsync is the default
   ([`Every_record]); [`On_rotate] trades the per-record sync away for
   hot serving paths. *)

(* Domain-safety contract for the typed analysis: all mutable state
   below is guarded by [lock]; cross-domain access is by design. *)
[@@@lint.domain_safe]

type fsync_policy = Every_record | On_rotate

type sink = {
  dir : string;
  max_bytes : int;
  generations : int;
  fsync : fsync_policy;
  mutable fd : Unix.file_descr option;
  mutable bytes : int;  (* written to the active file *)
  mutable gen : int;  (* next generation number to publish *)
}

type t = {
  lock : Mutex.t;
  ring : string option array;
  mutable next : int;
  mutable sink : sink option;
}

let ring_capacity = 1024

let state =
  {
    lock = Mutex.create ();
    ring = Array.make ring_capacity None;
    next = 0;
    sink = None;
  }

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* Totals are own atomics (not registry counters) so the event log
   counts even when the metric registry is off; a counter source merges
   them into every snapshot, like Trace does. *)
let emitted_total = Atomic.make 0

let dropped_total = Atomic.make 0

let rotations_total = Atomic.make 0

let h_fsync = Registry.histogram "obs.events.fsync_ns"

let active_path dir = Filename.concat dir "events.jsonl"

let generation_path dir gen = Filename.concat dir (Printf.sprintf "events-%06d.jsonl" gen)

let fsync_timed fd =
  let t0 = Registry.now_ns () in
  Unix.fsync fd;
  Registry.Histogram.observe h_fsync (Registry.now_ns () -. t0)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dirfd ->
      let sync () = try Unix.fsync dirfd with Unix.Unix_error _ -> () in
      sync ();
      Unix.close dirfd
  | exception Unix.Unix_error _ -> ()

let open_active dir =
  Unix.openfile (active_path dir)
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let close_sink sink =
  match sink.fd with
  | None -> ()
  | Some fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      sink.fd <- None

(* Publish the active file as the next generation and start a fresh
   one.  fsync -> rename -> fsync(dir): a crash at any point leaves
   either the old active file or the published generation. *)
let rotate sink =
  (match sink.fd with
  | Some fd ->
      fsync_timed fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  sink.fd <- None;
  (try Unix.rename (active_path sink.dir) (generation_path sink.dir sink.gen)
   with Unix.Unix_error _ -> ());
  fsync_dir sink.dir;
  (* Drop generations beyond the retention cap, oldest first. *)
  let doomed = sink.gen - sink.generations in
  if doomed >= 0 then
    (try Unix.unlink (generation_path sink.dir doomed)
     with Unix.Unix_error _ -> ());
  sink.gen <- sink.gen + 1;
  sink.bytes <- 0;
  Atomic.incr rotations_total

let write_line sink line =
  let fd = match sink.fd with Some fd -> fd | None -> let fd = open_active sink.dir in sink.fd <- Some fd; fd in
  let bytes = Bytes.of_string line in
  let rec write_all off len =
    if len > 0 then begin
      let w = Unix.write fd bytes off len in
      write_all (off + w) (len - w)
    end
  in
  write_all 0 (Bytes.length bytes);
  sink.bytes <- sink.bytes + Bytes.length bytes;
  (match sink.fsync with
  | Every_record -> fsync_timed fd
  | On_rotate -> ());
  if sink.bytes >= sink.max_bytes then rotate sink

let configure ?dir ?(max_bytes = 1 lsl 20) ?(generations = 4)
    ?(fsync = Every_record) () =
  Mutex.lock state.lock;
  (match state.sink with Some s -> close_sink s | None -> ());
  state.sink <-
    Option.map
      (fun dir ->
        { dir; max_bytes; generations; fsync; fd = None; bytes = 0; gen = 0 })
      dir;
  Mutex.unlock state.lock;
  set_enabled true

let stop () =
  Mutex.lock state.lock;
  (match state.sink with Some s -> close_sink s | None -> ());
  state.sink <- None;
  Mutex.unlock state.lock;
  set_enabled false

(* One JSONL record.  [fields] values are pre-rendered JSON (the
   Registry.json_object convention); the timestamp and kind are
   prepended so every record is self-describing. *)
let emit ~kind fields =
  if Atomic.get enabled_flag then begin
    let line =
      Registry.json_object
        (("ts_ns", Printf.sprintf "%.0f" (Registry.now_ns ()))
         :: ("event", "\"" ^ Registry.json_escape kind ^ "\"")
         :: fields)
      ^ "\n"
    in
    Mutex.lock state.lock;
    (match state.ring.(state.next) with
    | Some _ -> Atomic.incr dropped_total
    | None -> ());
    state.ring.(state.next) <- Some line;
    state.next <- (state.next + 1) mod ring_capacity;
    Atomic.incr emitted_total;
    (match state.sink with
    | Some sink -> (
        match write_line sink line with
        | () -> ()
        | exception Unix.Unix_error _ ->
            (* A failing disk must never fail the query path; the ring
               still holds the record. *)
            close_sink sink)
    | None -> ());
    Mutex.unlock state.lock
  end

let str v = "\"" ^ Registry.json_escape v ^ "\""

let query_completed ~trace_id ~kind ~initiator ~params ~rung ~outcome ?gap
    ?trip ~retries ~latency_ns ~cache_hit ~journalled_bytes () =
  emit ~kind:"query"
    ([
       ("trace_id", string_of_int trace_id);
       ("kind", str kind);
       ("initiator", string_of_int initiator);
     ]
    @ List.map (fun (k, v) -> (k, string_of_int v)) params
    @ [
        ("rung", str rung);
        ("outcome", str outcome);
      ]
    @ (match gap with Some g -> [ ("gap", Printf.sprintf "%g" g) ] | None -> [])
    @ (match trip with Some t -> [ ("trip", str t) ] | None -> [])
    @ [
        ("retries", string_of_int retries);
        ("latency_ns", Printf.sprintf "%.0f" latency_ns);
        ("cache_hit", string_of_bool cache_hit);
        ("journalled_bytes", string_of_int journalled_bytes);
      ])

(* Newest-last, at most [n] records. *)
let tail n =
  Mutex.lock state.lock;
  let out = ref [] in
  (* Walk newest-to-oldest from just behind the cursor, collecting at
     most [n]; the accumulator restores oldest-first order. *)
  let i = ref ((state.next + ring_capacity - 1) mod ring_capacity) in
  let remaining = ref (Stdlib.min n ring_capacity) in
  let scanned = ref 0 in
  while !remaining > 0 && !scanned < ring_capacity do
    (match state.ring.(!i) with
    | Some line ->
        out := line :: !out;
        Stdlib.decr remaining
    | None -> ());
    i := (!i + ring_capacity - 1) mod ring_capacity;
    Stdlib.incr scanned
  done;
  Mutex.unlock state.lock;
  !out

let emitted () = Atomic.get emitted_total

let dropped () = Atomic.get dropped_total

let rotations () = Atomic.get rotations_total

let reset () =
  Mutex.lock state.lock;
  Array.fill state.ring 0 ring_capacity None;
  state.next <- 0;
  Mutex.unlock state.lock;
  Atomic.set emitted_total 0;
  Atomic.set dropped_total 0;
  Atomic.set rotations_total 0

let () =
  Registry.register_counter_source (fun () ->
      [
        ("obs.events.emitted", emitted ());
        ("obs.events.dropped", dropped ());
        ("obs.events.rotations", rotations ());
      ]);
  Registry.register_reset_hook reset

(** Structured JSONL event log.

    One record per completed query (trace id, kind, initiator, params,
    rung, outcome, gap, trip reason, retries, latency, cache hit,
    journalled bytes) plus server-lifecycle, shedding, pool-respawn and
    store-checkpoint records.  Records always land in a fixed-size
    in-memory ring (served by [/events/tail?n=]); with {!configure}d
    directory they are also appended to [events.jsonl] with size-capped
    rotation (fsync → rename to [events-NNNNNN.jsonl] → dir fsync, the
    lib/store durability discipline).  Totals surface as
    [obs.events.{emitted,dropped,rotations}]; per-record fsync latency
    as the [obs.events.fsync_ns] histogram. *)

(** {1 Switch and sink} *)

val set_enabled : bool -> unit

val enabled : unit -> bool

type fsync_policy =
  | Every_record  (** fsync after each record (default) *)
  | On_rotate  (** fsync only when rotating — for hot serving paths *)

(** [configure ?dir ?max_bytes ?generations ?fsync ()] enables the log.
    Without [dir] records stay in-memory only.  [max_bytes] (default
    1 MiB) caps the active file before rotation; [generations]
    (default 4) caps how many rotated files are kept. *)
val configure :
  ?dir:string ->
  ?max_bytes:int ->
  ?generations:int ->
  ?fsync:fsync_policy ->
  unit ->
  unit

(** Flush and close the sink, disable the log. *)
val stop : unit -> unit

(** {1 Emitting} *)

(** [emit ~kind fields] appends one record; [fields] values are
    pre-rendered JSON ([Registry.json_object] convention).  [ts_ns] and
    [event] (= [kind]) fields are prepended.  No-op while disabled;
    sink write failures never raise (the ring still holds the
    record). *)
val emit : kind:string -> (string * string) list -> unit

(** The per-query record ([event = "query"]).  [params] are
    name/value pairs such as [("s", 2); ("k", 5)]. *)
val query_completed :
  trace_id:int ->
  kind:string ->
  initiator:int ->
  params:(string * int) list ->
  rung:string ->
  outcome:string ->
  ?gap:float ->
  ?trip:string ->
  retries:int ->
  latency_ns:float ->
  cache_hit:bool ->
  journalled_bytes:int ->
  unit ->
  unit

(** {1 Reading} *)

(** [tail n] — the most recent [n] records, oldest first, each a full
    JSONL line (trailing newline included). *)
val tail : int -> string list

val emitted : unit -> int

val dropped : unit -> int

(** Completed sink rotations. *)
val rotations : unit -> int

(** Empty the ring and zero the totals (also runs on
    [Registry.reset]).  The sink and enabled flag are untouched. *)
val reset : unit -> unit

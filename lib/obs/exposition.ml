(* Stats exposition: Prometheus text-format metrics, the flight
   recorder (retained traces, event tail, telemetry history) and
   /trace/last JSON over a minimal stdlib-Unix HTTP server, for
   long-running Service processes.  One short-lived connection per
   request; no keep-alive, no threads — the accept loop runs on the
   caller's domain. *)

type addr =
  | Tcp of string * int
  | Unix_path of string

(* ------------------------------------------------------------------ *)
(* Route table — the single source of the "/" index body and the
   docs/OBSERVABILITY.md route table (route_table_markdown), so the
   two cannot drift from the dispatch below.                           *)

let routes =
  [
    ("/", "this index");
    ("/healthz", "liveness probe (200 ok, plus the host's health line)");
    ("/metrics", "Prometheus text format (cumulative totals)");
    ("/metrics/delta", "same, since the server's baseline snapshot");
    ("/metrics/history", "runtime telemetry samples as a JSON series");
    ("/trace/last", "newest stitched trace as JSON");
    ("/trace/:id", "retained flight-recorder trace by id (JSON)");
    ("/traces", "flight-recorder retention summary (JSON)");
    ("/events/tail?n=N", "last N structured event records (JSONL)");
  ]

let index_body =
  let width =
    List.fold_left (fun w (r, _) -> Stdlib.max w (String.length r)) 0 routes
  in
  String.concat "\n"
    ("stgq stats exposition"
    :: List.map
         (fun (r, d) -> Printf.sprintf "  %-*s  %s" width r d)
         routes)
  ^ "\n"

let route_table_markdown () =
  String.concat "\n"
    ("| Route | Serves |"
     :: "| --- | --- |"
     :: List.map (fun (r, d) -> Printf.sprintf "| `%s` | %s |" r d) routes)
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Prometheus text format (version 0.0.4).                             *)

let mangle name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
    name

let metric_name name = "stgq_" ^ mangle name

let prometheus (s : Registry.snapshot) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    s.Registry.counters;
  List.iter
    (fun (name, (g : Registry.gauge_reading)) ->
      let m = metric_name name in
      line "# TYPE %s gauge" m;
      line "%s %d" m g.Registry.g_value;
      line "# TYPE %s_high_water gauge" m;
      line "%s_high_water %d" m g.Registry.g_high_water)
    s.Registry.gauges;
  List.iter
    (fun (name, (h : Registry.histogram_summary)) ->
      let m = metric_name name in
      (* The HELP line carries the declared unit so a unitless size
         histogram (engine.batch.size) cannot scrape as nanoseconds. *)
      line "# HELP %s samples in %s" m
        (Registry.hist_unit_to_string h.Registry.h_unit);
      line "# TYPE %s summary" m;
      line "%s{quantile=\"0.5\"} %.0f" m h.Registry.h_p50;
      line "%s{quantile=\"0.9\"} %.0f" m h.Registry.h_p90;
      line "%s{quantile=\"0.99\"} %.0f" m h.Registry.h_p99;
      line "%s_sum %.0f" m h.Registry.h_sum_ns;
      line "%s_count %d" m h.Registry.h_count)
    s.Registry.histograms;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Routing.                                                            *)

let text = "text/plain; charset=utf-8"

let prom = "text/plain; version=0.0.4"

let json = "application/json"

let jsonl = "application/jsonl"

(* "a=1&b=2" -> value of [key], if present. *)
let query_param query key =
  List.find_map
    (fun pair ->
      match String.index_opt pair '=' with
      | Some i when String.sub pair 0 i = key ->
          Some (String.sub pair (i + 1) (String.length pair - i - 1))
      | _ -> None)
    (String.split_on_char '&' query)

let not_found body = (404, text, body ^ "\n\n" ^ index_body)

let trace_by_id id_s =
  match id_s with
  | "last" -> (
      match Trace.last () with
      | Some t -> (200, json, Trace.tree_json t ^ "\n")
      | None -> (404, json, "{\"error\": \"no trace recorded\"}\n"))
  | _ -> (
      match int_of_string_opt id_s with
      | None -> (404, json, "{\"error\": \"bad trace id\"}\n")
      | Some id -> (
          match Flightrec.trace_json id with
          | Some body -> (200, json, body ^ "\n")
          | None ->
              ( 404,
                json,
                Registry.json_object
                  [
                    ("error", "\"trace not retained\"");
                    ("trace_id", string_of_int id);
                  ]
                ^ "\n" )))

(* [respond ?health ~baseline target] routes one request target
   (path plus optional ?query). *)
let respond ?health ~baseline target =
  let path, query =
    match String.index_opt target '?' with
    | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
    | None -> (target, "")
  in
  match path with
  | "/" -> (200, text, index_body)
  | "/healthz" ->
      (* Liveness plus whatever the host process wants probes to see —
         the query server reports its store-recovery status here. *)
      let extra = match health with Some f -> f () ^ "\n" | None -> "" in
      (200, text, "ok\n" ^ extra)
  | "/metrics" -> (200, prom, prometheus (Registry.snapshot ()))
  | "/metrics/delta" ->
      (200, prom, prometheus (Registry.delta baseline (Registry.snapshot ())))
  | "/metrics/history" -> (200, json, Runtime.history_json () ^ "\n")
  | "/traces" -> (200, json, Flightrec.summary_json () ^ "\n")
  | "/events/tail" ->
      let n =
        match Option.bind (query_param query "n") int_of_string_opt with
        | Some n when n > 0 -> n
        | _ -> 100
      in
      (200, jsonl, String.concat "" (Events.tail n))
  | _ when String.length path > 7 && String.sub path 0 7 = "/trace/" ->
      trace_by_id (String.sub path 7 (String.length path - 7))
  | _ -> not_found "not found"

let status_text = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | code -> string_of_int code ^ " Error"

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    (status_text status) content_type (String.length body) body

(* First request line: "GET /path?query HTTP/1.1".  The query string is
   kept — /events/tail reads its [n] parameter from it. *)
let request_path req =
  let first_line =
    match String.index_opt req '\r' with
    | Some i -> String.sub req 0 i
    | None -> (
        match String.index_opt req '\n' with
        | Some i -> String.sub req 0 i
        | None -> req)
  in
  match String.split_on_char ' ' first_line with
  | _meth :: target :: _ -> target
  | _ -> "/"

(* ------------------------------------------------------------------ *)
(* Server.                                                             *)

let serve_client ?health ~baseline client =
  let buf = Bytes.create 8192 in
  let n = Unix.read client buf 0 (Bytes.length buf) in
  let path = request_path (Bytes.sub_string buf 0 (Stdlib.max 0 n)) in
  let status, content_type, body = respond ?health ~baseline path in
  let resp = http_response ~status ~content_type body in
  let rec write_all off len =
    if len > 0 then begin
      let w = Unix.write_substring client resp off len in
      write_all (off + w) (len - w)
    end
  in
  write_all 0 (String.length resp)

let unlink_quiet path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let bind_listen addr =
  match addr with
  | Tcp (host, port) ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen sock 16;
      (sock, fun () -> Unix.close sock)
  | Unix_path path ->
      unlink_quiet path;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      ( sock,
        fun () ->
          Unix.close sock;
          unlink_quiet path )

(* [serve addr] accepts and answers requests forever (or until
   [?max_requests] connections have been served — the test hook).
   Deltas are against [?baseline] (default: the snapshot at startup). *)
let serve ?baseline ?health ?max_requests addr =
  let baseline =
    match baseline with Some b -> b | None -> Registry.snapshot ()
  in
  let sock, cleanup = bind_listen addr in
  let served = ref 0 in
  let keep_going () =
    match max_requests with None -> true | Some n -> !served < n
  in
  Fun.protect ~finally:cleanup (fun () ->
      while keep_going () do
        let client, _peer = Unix.accept sock in
        Stdlib.incr served;
        (match serve_client ?health ~baseline client with
        | () -> ()
        | exception Unix.Unix_error _ -> ());
        (match Unix.close client with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      done)

(** Stats exposition for long-running [Service] processes: Prometheus
    text-format metrics and [/trace/last] JSON over a minimal
    stdlib-[Unix] HTTP server.

    Routes:
    - [/] — plain-text index
    - [/metrics] — Prometheus text format (version 0.0.4) of the
      current registry snapshot; metric names are prefixed [stgq_] with
      dots mangled to underscores (counters → [counter], gauges →
      [gauge] plus a [_high_water] companion, histograms → [summary]
      with 0.5/0.9/0.99 quantiles in ns)
    - [/metrics/delta] — the same, of [Registry.delta baseline now]
    - [/trace/last] — the newest stitched trace ([Trace.tree_json]);
      404 when none is buffered
    - [/healthz] — liveness probe, always [200 ok]; when the host
      passes [?health], its one-line report (e.g. the store-recovery
      status of the query server) follows the [ok] line

    The server is single-threaded and connection-per-request (no
    keep-alive): run it on a spare domain next to the serving pool. *)

type addr =
  | Tcp of string * int  (** host (numeric, e.g. ["127.0.0.1"]) and port *)
  | Unix_path of string  (** Unix-domain socket path (unlinked on bind and close) *)

(** Prometheus text rendering of a snapshot (the [/metrics] body). *)
val prometheus : Registry.snapshot -> string

(** [respond ?health ~baseline path] routes one request:
    [(status, content-type, body)].  Exposed for tests. *)
val respond :
  ?health:(unit -> string) ->
  baseline:Registry.snapshot ->
  string ->
  int * string * string

(** [serve addr] binds, listens and answers requests until
    [?max_requests] connections have been served (forever when
    omitted).  [?baseline] anchors [/metrics/delta] (default: snapshot
    at startup); [?health] appends its line to [/healthz] bodies.
    @raise Unix.Unix_error if the bind fails (address in use, ...). *)
val serve :
  ?baseline:Registry.snapshot ->
  ?health:(unit -> string) ->
  ?max_requests:int ->
  addr ->
  unit

(** Stats exposition for long-running [Service] processes: Prometheus
    text-format metrics and the flight-recorder views (retained traces,
    structured event tail, runtime telemetry history) over a minimal
    stdlib-[Unix] HTTP server.

    Routes are declared once in {!routes} — the ["/"] index body and
    the docs/OBSERVABILITY.md route table ({!route_table_markdown}) are
    both generated from it, so they cannot drift from the dispatcher:
    - [/] — plain-text index (also the body of every 404)
    - [/healthz] — liveness probe, always [200 ok]; when the host
      passes [?health], its one-line report follows the [ok] line
    - [/metrics] — Prometheus text format (version 0.0.4) of the
      current registry snapshot; metric names are prefixed [stgq_] with
      dots mangled to underscores (counters → [counter], gauges →
      [gauge] plus a [_high_water] companion, histograms → [summary]
      with 0.5/0.9/0.99 quantiles and a HELP line naming the declared
      unit, [ns] or [count])
    - [/metrics/delta] — the same, of [Registry.delta baseline now]
    - [/metrics/history] — [Runtime.history_json]
    - [/trace/last] — the newest stitched trace ([Trace.tree_json]);
      404 when none is buffered
    - [/trace/:id] — the retained flight-recorder trace
      ([Flightrec.trace_json]); typed JSON 404 when the id was evicted
      or never retained
    - [/traces] — [Flightrec.summary_json]
    - [/events/tail?n=N] — the last [N] (default 100) event records as
      JSONL

    The server is single-threaded and connection-per-request (no
    keep-alive): run it on a spare domain next to the serving pool. *)

type addr =
  | Tcp of string * int  (** host (numeric, e.g. ["127.0.0.1"]) and port *)
  | Unix_path of string  (** Unix-domain socket path (unlinked on bind and close) *)

(** The route table: [(route, description)] pairs, the single source of
    the index body and the docs route table. *)
val routes : (string * string) list

(** The ["/"] body (generated from {!routes}). *)
val index_body : string

(** Markdown rendering of {!routes} — docs/OBSERVABILITY.md embeds
    this verbatim, and a test asserts it. *)
val route_table_markdown : unit -> string

(** Prometheus text rendering of a snapshot (the [/metrics] body). *)
val prometheus : Registry.snapshot -> string

(** [respond ?health ~baseline target] routes one request target (path
    plus optional [?query]): [(status, content-type, body)].  Exposed
    for tests. *)
val respond :
  ?health:(unit -> string) ->
  baseline:Registry.snapshot ->
  string ->
  int * string * string

(** [serve addr] binds, listens and answers requests until
    [?max_requests] connections have been served (forever when
    omitted).  [?baseline] anchors [/metrics/delta] (default: snapshot
    at startup); [?health] appends its line to [/healthz] bodies.
    @raise Unix.Unix_error if the bind fails (address in use, ...). *)
val serve :
  ?baseline:Registry.snapshot ->
  ?health:(unit -> string) ->
  ?max_requests:int ->
  addr ->
  unit

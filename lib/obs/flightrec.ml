(* lint: allow-file toplevel-state *)
(* Flight recorder: a bounded store of fully-stitched trace trees keyed
   by trace id.  The per-domain span rings (Trace) are a moving window —
   a degraded query's spans are overwritten milliseconds later under
   load.  This module pins the traces worth keeping at the moment the
   query completes, when the outcome is known:

   - {b pinned}: degraded, unavailable, retried or budget-tripped
     queries, and queries slower than the latency threshold (default:
     the rolling p99 of [service.*.latency_ns]);
   - {b sampled}: every [sample_every]-th normal query, so the store
     always holds healthy baselines to diff a bad trace against.

   Eviction is oldest-unpinned-first; pinned entries only age out when
   the whole store is pinned.  Admissions and evictions are counted
   ([obs.flightrec.{retained,sampled,evicted}]). *)

(* Domain-safety contract for the typed analysis: all mutable state is
   guarded by [lock] or atomic; cross-domain access is by design. *)
[@@@lint.domain_safe]

type entry = {
  e_trace_id : int;
  e_kind : string;
  mutable e_reason : string;
      (* why it was kept: "degraded", "slow", "sampled", ... *)
  mutable e_pinned : bool;
  e_latency_ns : float;
  e_ts_ns : float;  (* admission wall-clock *)
  mutable e_roots : Trace.tree list;  (* stitched forest for this trace id *)
  mutable e_spans : int;
}

type t = {
  lock : Mutex.t;
  by_id : (int, entry) Hashtbl.t;
  order : int Queue.t;  (* admission order; may hold already-evicted ids *)
  mutable capacity : int;
  mutable sample_every : int;
  mutable normal_seen : int;  (* normal-outcome queries since reset *)
}

let state =
  {
    lock = Mutex.create ();
    by_id = Hashtbl.create 64;
    order = Queue.create ();
    capacity = 256;
    sample_every = 16;
    normal_seen = 0;
  }

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let retained_total = Atomic.make 0

let sampled_total = Atomic.make 0

let evicted_total = Atomic.make 0

let configure ?capacity ?sample_every () =
  Mutex.lock state.lock;
  (match capacity with Some c when c > 0 -> state.capacity <- c | _ -> ());
  (match sample_every with
  | Some n when n > 0 -> state.sample_every <- n
  | _ -> ());
  Mutex.unlock state.lock

(* Rolling slow-query threshold: the worse p99 of the two service
   latency histograms.  0 (no samples yet) disables the slow criterion
   rather than pinning everything during warm-up. *)
let latency_threshold_ns () =
  let p99 name = Registry.Histogram.quantile (Registry.histogram name) 0.99 in
  Float.max (p99 "service.sgq.latency_ns") (p99 "service.stgq.latency_ns")

let stitch trace_id =
  let spans =
    List.filter (fun s -> s.Trace.sp_trace = trace_id) (Trace.spans ())
  in
  (Trace.trees spans, List.length spans)

(* Caller holds the lock. *)
let evict_one () =
  (* First pass: oldest unpinned entry still present.  The queue may
     lead with ids of entries already evicted or re-admitted; skip those
     by membership check. *)
  let victim = ref None in
  Queue.iter
    (fun id ->
      if !victim = None then
        match Hashtbl.find_opt state.by_id id with
        | Some e when not e.e_pinned -> victim := Some id
        | _ -> ())
    state.order;
  (if !victim = None then
     (* Everything live is pinned: fall back to the oldest live entry so
        the store stays bounded. *)
     Queue.iter
       (fun id ->
         if !victim = None && Hashtbl.mem state.by_id id then
           victim := Some id)
       state.order);
  match !victim with
  | Some id ->
      Hashtbl.remove state.by_id id;
      Atomic.incr evicted_total
  | None -> ()

(* Drop queue prefix entries that no longer name a live trace, so the
   queue length stays proportional to the live store. *)
let compact_order () =
  let continue_ = ref true in
  while (not (Queue.is_empty state.order)) && !continue_ do
    let id = Queue.peek state.order in
    if Hashtbl.mem state.by_id id then continue_ := false
    else ignore (Queue.pop state.order : int)
  done

let admit ~trace_id ~kind ~reason ~pinned ~latency_ns =
  let roots, nspans = stitch trace_id in
  Mutex.lock state.lock;
  (match Hashtbl.find_opt state.by_id trace_id with
  | Some e ->
      (* Same trace observed twice (e.g. batch members): keep one entry,
         upgrade to pinned if any observation pinned it. *)
      if pinned && not e.e_pinned then begin
        e.e_pinned <- true;
        e.e_reason <- reason;
        Atomic.incr retained_total
      end;
      e.e_roots <- roots;
      e.e_spans <- nspans
  | None ->
      while Hashtbl.length state.by_id >= state.capacity do
        evict_one ()
      done;
      Hashtbl.replace state.by_id trace_id
        {
          e_trace_id = trace_id;
          e_kind = kind;
          e_reason = reason;
          e_pinned = pinned;
          e_latency_ns = latency_ns;
          e_ts_ns = Registry.now_ns ();
          e_roots = roots;
          e_spans = nspans;
        };
      Queue.push trace_id state.order;
      compact_order ();
      Atomic.incr (if pinned then retained_total else sampled_total));
  Mutex.unlock state.lock

let observe ~trace_id ~kind ~latency_ns ~degraded ~unavailable ~retries ?trip
    () =
  if Atomic.get enabled_flag && trace_id <> 0 then begin
    let reason =
      if unavailable then Some "unavailable"
      else if degraded then Some "degraded"
      else if trip <> None then Some "budget-trip"
      else if retries > 0 then Some "retried"
      else
        let threshold = latency_threshold_ns () in
        if threshold > 0. && latency_ns > threshold then Some "slow" else None
    in
    match reason with
    | Some reason -> admit ~trace_id ~kind ~reason ~pinned:true ~latency_ns
    | None ->
        Mutex.lock state.lock;
        state.normal_seen <- state.normal_seen + 1;
        (* first of every stride — so stride 1 samples every query *)
        let take = (state.normal_seen - 1) mod state.sample_every = 0 in
        Mutex.unlock state.lock;
        if take then
          admit ~trace_id ~kind ~reason:"sampled" ~pinned:false ~latency_ns
  end

(* Re-stitch an entry after more of its spans landed — the server calls
   this once the request root span closes, so retained trees include
   the full server-side envelope. *)
let refresh trace_id =
  if Atomic.get enabled_flag && trace_id <> 0 then begin
    Mutex.lock state.lock;
    let present = Hashtbl.mem state.by_id trace_id in
    Mutex.unlock state.lock;
    if present then begin
      (* Stitch outside the lock: spans() walks every ring slot. *)
      let roots, nspans = stitch trace_id in
      Mutex.lock state.lock;
      (match Hashtbl.find_opt state.by_id trace_id with
      | Some e ->
          e.e_roots <- roots;
          e.e_spans <- nspans
      | None -> ());
      Mutex.unlock state.lock
    end
  end

type summary = {
  s_trace_id : int;
  s_kind : string;
  s_reason : string;
  s_pinned : bool;
  s_latency_ns : float;
  s_spans : int;
}

let entries () =
  Mutex.lock state.lock;
  let out =
    Hashtbl.fold
      (fun _ e acc ->
        ( e.e_ts_ns,
          {
            s_trace_id = e.e_trace_id;
            s_kind = e.e_kind;
            s_reason = e.e_reason;
            s_pinned = e.e_pinned;
            s_latency_ns = e.e_latency_ns;
            s_spans = e.e_spans;
          } )
        :: acc)
      state.by_id []
  in
  Mutex.unlock state.lock;
  (* Newest first. *)
  List.map snd (List.sort (fun (a, _) (b, _) -> Float.compare b a) out)

let find trace_id =
  Mutex.lock state.lock;
  let r =
    Option.map (fun e -> e.e_roots) (Hashtbl.find_opt state.by_id trace_id)
  in
  Mutex.unlock state.lock;
  r

let summary_json () =
  let row s =
    Registry.json_object
      [
        ("trace_id", string_of_int s.s_trace_id);
        ("kind", "\"" ^ Registry.json_escape s.s_kind ^ "\"");
        ("reason", "\"" ^ Registry.json_escape s.s_reason ^ "\"");
        ("pinned", string_of_bool s.s_pinned);
        ("latency_ns", Printf.sprintf "%.0f" s.s_latency_ns);
        ("spans", string_of_int s.s_spans);
      ]
  in
  "[" ^ String.concat ",\n " (List.map row (entries ())) ^ "]"

let trace_json trace_id =
  Option.map
    (fun roots ->
      Registry.json_object
        [
          ("trace_id", string_of_int trace_id);
          ( "roots",
            "[" ^ String.concat ", " (List.map Trace.tree_json roots) ^ "]" );
        ])
    (find trace_id)

let retained () = Atomic.get retained_total

let sampled () = Atomic.get sampled_total

let evicted () = Atomic.get evicted_total

let size () =
  Mutex.lock state.lock;
  let n = Hashtbl.length state.by_id in
  Mutex.unlock state.lock;
  n

let reset () =
  Mutex.lock state.lock;
  Hashtbl.reset state.by_id;
  Queue.clear state.order;
  state.normal_seen <- 0;
  Mutex.unlock state.lock;
  Atomic.set retained_total 0;
  Atomic.set sampled_total 0;
  Atomic.set evicted_total 0

let () =
  Registry.register_counter_source (fun () ->
      [
        ("obs.flightrec.retained", retained ());
        ("obs.flightrec.sampled", sampled ());
        ("obs.flightrec.evicted", evicted ());
      ]);
  Registry.register_reset_hook reset

(** Flight recorder: bounded retention of fully-stitched trace trees.

    The per-domain span rings ({!Trace}) are a moving window; under
    load a degraded query's spans are overwritten within milliseconds.
    The flight recorder pins traces worth keeping at the moment the
    query completes, when the outcome is known:

    - {b pinned}: degraded, unavailable, retried or budget-tripped
      queries, and queries slower than the rolling p99 of
      [service.*.latency_ns];
    - {b sampled}: every [sample_every]-th normal query (healthy
      baselines to diff a bad trace against).

    Eviction is oldest-unpinned-first (pinned entries age out only when
    the whole store is pinned), counted as
    [obs.flightrec.{retained,sampled,evicted}] in every snapshot. *)

(** {1 Switch} *)

val set_enabled : bool -> unit

val enabled : unit -> bool

(** [configure ?capacity ?sample_every ()] sets the store bound
    (default 256 traces) and the normal-query sampling stride (default
    16).  Non-positive values are ignored. *)
val configure : ?capacity:int -> ?sample_every:int -> unit -> unit

(** {1 Feeding} *)

(** [observe ~trace_id ~kind ~latency_ns ~degraded ~unavailable
    ~retries ?trip ()] classifies one completed query and admits its
    stitched trace if the retention policy keeps it.  [trace_id = 0]
    (no trace recorded) is a no-op.  Call after the query's root span
    has closed so the stitched tree is complete. *)
val observe :
  trace_id:int ->
  kind:string ->
  latency_ns:float ->
  degraded:bool ->
  unavailable:bool ->
  retries:int ->
  ?trip:string ->
  unit ->
  unit

(** [refresh trace_id] re-stitches a retained trace after more of its
    spans landed — the server calls this when the request envelope span
    closes.  No-op for unretained ids. *)
val refresh : int -> unit

(** The slow-query pin threshold currently in force: the worse p99 of
    the two service latency histograms, 0 before any samples (the slow
    criterion is then disabled). *)
val latency_threshold_ns : unit -> float

(** {1 Reading} *)

type summary = {
  s_trace_id : int;
  s_kind : string;
  s_reason : string;
      (** "degraded" | "unavailable" | "budget-trip" | "retried" |
          "slow" | "sampled" *)
  s_pinned : bool;
  s_latency_ns : float;
  s_spans : int;
}

(** Retained traces, newest first. *)
val entries : unit -> summary list

(** The stitched forest for a retained trace id. *)
val find : int -> Trace.tree list option

(** JSON array of {!entries} (the [/traces] wire format). *)
val summary_json : unit -> string

(** JSON object with the stitched roots (the [/trace/:id] wire
    format); [None] if the id is not retained. *)
val trace_json : int -> string option

val retained : unit -> int

val sampled : unit -> int

val evicted : unit -> int

(** Live entries currently in the store. *)
val size : unit -> int

(** Empty the store and zero the totals (also runs on
    [Registry.reset]).  The enabled flag and configuration are
    untouched. *)
val reset : unit -> unit

(* The public face of the observability library: the metric registry
   (Registry) re-exported flat — Obs.counter, Obs.snapshot, ... — plus
   the query-level tracer and the exposition server as submodules. *)

include Registry
module Trace = Trace
module Flightrec = Flightrec
module Events = Events
module Runtime = Runtime
module Exposition = Exposition

(** Process-wide observability.

    Three layers, one entry module:
    - the {b metric registry} ({!Registry}, re-exported flat here):
      interned counters/gauges/histograms, the span ring, snapshots,
      {!delta} diffing and the table/JSON reporters;
    - {b query-level tracing} ({!Trace}): hierarchical spans across
      domains, stitched trees, Chrome-trace/Perfetto export and the
      pruning-waterfall solver profile;
    - the {b exposition server} ({!Exposition}): Prometheus text-format
      metrics and [/trace/last] JSON over stdlib-[Unix] sockets.

    Metrics and tracing have independent switches ({!set_enabled} vs
    {!Trace.set_enabled}); both are off by default and cost one atomic
    load per record operation while off.  See docs/OBSERVABILITY.md. *)

include module type of struct
  include Registry
end

module Trace = Trace
module Exposition = Exposition

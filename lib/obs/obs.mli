(** Process-wide observability.

    Three layers, one entry module:
    - the {b metric registry} ({!Registry}, re-exported flat here):
      interned counters/gauges/histograms, the span ring, snapshots,
      {!delta} diffing and the table/JSON reporters;
    - {b query-level tracing} ({!Trace}): hierarchical spans across
      domains, stitched trees, Chrome-trace/Perfetto export and the
      pruning-waterfall solver profile;
    - the {b flight recorder plane}: tail-sampled trace retention
      ({!Flightrec}), the structured JSONL event log ({!Events}) and
      the runtime telemetry sampler ({!Runtime});
    - the {b exposition server} ({!Exposition}): Prometheus text-format
      metrics, retained traces, the event tail and the telemetry
      history over stdlib-[Unix] sockets.

    Metrics, tracing and the flight-recorder modules have independent
    switches ({!set_enabled}, {!Trace.set_enabled},
    {!Flightrec.set_enabled}, {!Events.set_enabled}); all are off by
    default and cost one atomic load per record operation while off.
    See docs/OBSERVABILITY.md. *)

include module type of struct
  include Registry
end

module Trace = Trace
module Flightrec = Flightrec
module Events = Events
module Runtime = Runtime
module Exposition = Exposition

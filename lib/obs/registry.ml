(* lint: allow-file toplevel-state *)
(* Process-wide metric registry.  The registry, the enabled flag and the
   span ring are deliberately process-global: metrics exist so that any
   layer can publish without threading handles through every API. *)

(* Domain-safety contract for the typed analysis: every global here is
   either Atomic, a per-domain shard indexed by [Domain.self ()], or
   guarded by [registry_lock] — cross-domain access is by design. *)
[@@@lint.domain_safe]

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

let now_ns () = Unix.gettimeofday () *. 1e9

(* Record-path sharding: writers index by domain id so that domains
   rarely contend on one cache line.  Two domains may map to the same
   shard (ids are not bounded) — each shard is atomic, so that is a
   throughput concern, never a correctness one. *)
let n_shards = 16 (* power of two *)

let shard_index () = (Domain.self () :> int) land (n_shards - 1)

(* Monotone CAS max. *)
let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

module Counter = struct
  type t = {
    name : string;
    shards : int Atomic.t array;
  }

  let make name = { name; shards = Array.init n_shards (fun _ -> Atomic.make 0) }

  let name t = t.name

  let add t n =
    if Atomic.get enabled_flag then begin
      if n < 0 then invalid_arg "Obs.Counter.add: negative increment";
      ignore (Atomic.fetch_and_add t.shards.(shard_index ()) n : int)
    end

  let incr t = add t 1

  let value t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t.shards

  let shard_values t = Array.map Atomic.get t.shards

  let reset t = Array.iter (fun a -> Atomic.set a 0) t.shards
end

module Gauge = struct
  type t = {
    name : string;
    level : int Atomic.t;
    high : int Atomic.t;
  }

  let make name = { name; level = Atomic.make 0; high = Atomic.make 0 }

  let name t = t.name

  let set t v =
    if Atomic.get enabled_flag then begin
      Atomic.set t.level v;
      atomic_max t.high v
    end

  let value t = Atomic.get t.level

  let high_water t = Atomic.get t.high

  let reset t =
    Atomic.set t.level 0;
    Atomic.set t.high 0
end

(* What a histogram's samples measure.  [Ns] histograms carry wall-clock
   nanoseconds and report with [_ns]-suffixed keys; [Count] histograms
   carry unitless quantities (batch sizes, record counts) and report
   bare keys — exporting a size as nanoseconds is exactly the scrape bug
   this distinction exists to prevent. *)
type hist_unit = Ns | Count

let hist_unit_to_string = function Ns -> "ns" | Count -> "count"

module Histogram = struct
  (* Bucket [i] counts samples whose whole-ns value lies in
     [2^i, 2^(i+1)) (bucket 0 additionally holds 0 ns).  62 buckets
     cover every non-negative OCaml int. *)
  let n_buckets = 62

  type t = {
    name : string;
    unit_ : hist_unit;
    buckets : int Atomic.t array;
    count : int Atomic.t;
    sum_ns : int Atomic.t;
    max_ns : int Atomic.t;
  }

  let make ?(unit_ = Ns) name =
    {
      name;
      unit_;
      buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
      count = Atomic.make 0;
      sum_ns = Atomic.make 0;
      max_ns = Atomic.make 0;
    }

  let name t = t.name

  let unit_kind t = t.unit_

  let bucket_of_ns v =
    if v <= 1 then 0
    else begin
      let i = ref 0 and rest = ref v in
      while !rest > 1 do
        incr i;
        rest := !rest lsr 1
      done;
      min (n_buckets - 1) !i
    end

  let observe t v =
    if Atomic.get enabled_flag then begin
      let ns = int_of_float (Float.max v 0.) in
      ignore (Atomic.fetch_and_add t.buckets.(bucket_of_ns ns) 1 : int);
      ignore (Atomic.fetch_and_add t.count 1 : int);
      ignore (Atomic.fetch_and_add t.sum_ns ns : int);
      atomic_max t.max_ns ns
    end

  let count t = Atomic.get t.count

  let sum t = float_of_int (Atomic.get t.sum_ns)

  let max_value t = float_of_int (Atomic.get t.max_ns)

  (* Upper bound of bucket [i]: one past the largest whole-ns value the
     bucket can hold. *)
  let bucket_upper i = Float.pow 2. (float_of_int (i + 1))

  let quantile t q =
    if not (Float.is_finite q) || q < 0. || q > 1. then
      invalid_arg "Obs.Histogram.quantile: q outside [0, 1]";
    let n = count t in
    if n = 0 then 0.
    else if q >= 1. then max_value t
    else begin
      let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let rec walk i cum =
        if i >= n_buckets then max_value t
        else
          let cum = cum + Atomic.get t.buckets.(i) in
          if cum >= rank then Float.min (bucket_upper i) (max_value t)
          else walk (i + 1) cum
      in
      walk 0 0
    end

  let reset t =
    Array.iter (fun a -> Atomic.set a 0) t.buckets;
    Atomic.set t.count 0;
    Atomic.set t.sum_ns 0;
    Atomic.set t.max_ns 0
end

module Span = struct
  type span = {
    sp_name : string;
    sp_start_ns : float;
    sp_dur_ns : float;
  }

  let capacity = 256

  (* The ring is mutex-protected: spans are coarse (whole queries,
     context builds), so the lock is far off any hot path. *)
  let ring : span option array = Array.make capacity None

  let ring_lock = Mutex.create ()

  let next = ref 0

  let total = ref 0

  (* Spans silently overwritten before anyone read them.  Surfaced as
     the `obs.spans.dropped` counter in snapshots so a truncated trace
     is visible instead of just short. *)
  let dropped_count = ref 0

  let record sp =
    Mutex.lock ring_lock;
    (match ring.(!next) with Some _ -> Stdlib.incr dropped_count | None -> ());
    ring.(!next) <- Some sp;
    next := (!next + 1) mod capacity;
    Stdlib.incr total;
    Mutex.unlock ring_lock

  let dropped () =
    Mutex.lock ring_lock;
    let d = !dropped_count in
    Mutex.unlock ring_lock;
    d

  let with_ name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let t0 = now_ns () in
      let finish () =
        record { sp_name = name; sp_start_ns = t0; sp_dur_ns = now_ns () -. t0 }
      in
      match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e
    end

  let recent () =
    Mutex.lock ring_lock;
    let out = ref [] in
    (* Oldest-to-newest is [next, next+1, ...); consing yields newest
       first. *)
    for i = 0 to capacity - 1 do
      match ring.((!next + i) mod capacity) with
      | Some sp -> out := sp :: !out
      | None -> ()
    done;
    Mutex.unlock ring_lock;
    !out

  let total_recorded () = !total

  let reset () =
    Mutex.lock ring_lock;
    Array.fill ring 0 capacity None;
    next := 0;
    total := 0;
    dropped_count := 0;
    Mutex.unlock ring_lock
end

(* ------------------------------------------------------------------ *)
(* External sources.  Sibling modules (Trace) keep their own state but
   want their counters in every snapshot and their buffers emptied by
   [reset]; they register suppliers here at module-init time to avoid a
   dependency cycle inside the wrapped library. *)

let external_counter_sources : (unit -> (string * int) list) list ref = ref []

let external_reset_hooks : (unit -> unit) list ref = ref []

let register_counter_source f =
  external_counter_sources := f :: !external_counter_sources

let register_reset_hook f = external_reset_hooks := f :: !external_reset_hooks

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let intern name describe_kind project create =
  Mutex.lock registry_lock;
  let result =
    match Hashtbl.find_opt registry name with
    | Some m -> (
        match project m with
        | Some v -> Ok v
        | None ->
            Error
              (Printf.sprintf "Obs.%s: %S is registered as another metric kind"
                 describe_kind name))
    | None ->
        let v, m = create name in
        Hashtbl.replace registry name m;
        Ok v
  in
  Mutex.unlock registry_lock;
  match result with Ok v -> v | Error msg -> invalid_arg msg

let counter name =
  intern name "counter"
    (function M_counter c -> Some c | M_gauge _ | M_histogram _ -> None)
    (fun name ->
      let c = Counter.make name in
      (c, M_counter c))

let gauge name =
  intern name "gauge"
    (function M_gauge g -> Some g | M_counter _ | M_histogram _ -> None)
    (fun name ->
      let g = Gauge.make name in
      (g, M_gauge g))

let histogram ?(unit_ = Ns) name =
  intern name "histogram"
    (function
      | M_histogram h ->
          if Histogram.unit_kind h <> unit_ then
            invalid_arg
              (Printf.sprintf
                 "Obs.histogram: %S is registered with unit %s, requested %s"
                 name
                 (hist_unit_to_string (Histogram.unit_kind h))
                 (hist_unit_to_string unit_))
          else Some h
      | M_counter _ | M_gauge _ -> None)
    (fun name ->
      let h = Histogram.make ~unit_ name in
      (h, M_histogram h))

let registered () =
  Mutex.lock registry_lock;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_lock;
  ms

let reset () =
  List.iter
    (function
      | M_counter c -> Counter.reset c
      | M_gauge g -> Gauge.reset g
      | M_histogram h -> Histogram.reset h)
    (registered ());
  Span.reset ();
  List.iter (fun f -> f ()) !external_reset_hooks

(* ------------------------------------------------------------------ *)
(* Timing helper.                                                      *)

let time_hist h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now_ns () in
    match f () with
    | v ->
        Histogram.observe h (now_ns () -. t0);
        v
    | exception e ->
        Histogram.observe h (now_ns () -. t0);
        raise e
  end

(* ------------------------------------------------------------------ *)
(* Snapshots.                                                          *)

type histogram_summary = {
  h_unit : hist_unit;
  h_count : int;
  h_sum_ns : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_max : float;
}

type gauge_reading = {
  g_value : int;
  g_high_water : int;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * gauge_reading) list;
  histograms : (string * histogram_summary) list;
  spans : Span.span list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (function
      | M_counter c -> counters := (Counter.name c, Counter.value c) :: !counters
      | M_gauge g ->
          gauges :=
            (Gauge.name g, { g_value = Gauge.value g; g_high_water = Gauge.high_water g })
            :: !gauges
      | M_histogram h ->
          histograms :=
            ( Histogram.name h,
              {
                h_unit = Histogram.unit_kind h;
                h_count = Histogram.count h;
                h_sum_ns = Histogram.sum h;
                h_p50 = Histogram.quantile h 0.5;
                h_p90 = Histogram.quantile h 0.9;
                h_p99 = Histogram.quantile h 0.99;
                h_max = Histogram.max_value h;
              } )
            :: !histograms)
    (registered ());
  counters := ("obs.spans.dropped", Span.dropped ()) :: !counters;
  List.iter
    (fun source -> List.iter (fun kv -> counters := kv :: !counters) (source ()))
    !external_counter_sources;
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
    spans = Span.recent ();
  }

(* ------------------------------------------------------------------ *)
(* Snapshot diffing.                                                   *)

let delta older newer =
  let counters =
    List.map
      (fun (name, v) ->
        let prev = Option.value ~default:0 (List.assoc_opt name older.counters) in
        (name, Stdlib.max 0 (v - prev)))
      newer.counters
  in
  let histograms =
    List.map
      (fun (name, h) ->
        match List.assoc_opt name older.histograms with
        | None -> (name, h)
        | Some p ->
            ( name,
              {
                h with
                h_count = Stdlib.max 0 (h.h_count - p.h_count);
                h_sum_ns = Float.max 0. (h.h_sum_ns -. p.h_sum_ns);
              } ))
      newer.histograms
  in
  { counters; gauges = newer.gauges; histograms; spans = newer.spans }

(* ------------------------------------------------------------------ *)
(* Reporters.                                                          *)

let table s =
  let sections = ref [] in
  let add title header rows = if rows <> [] then sections := Report.table ~title ~header rows :: !sections in
  add "spans (newest first)"
    [ "span"; "duration" ]
    (List.map (fun (sp : Span.span) -> [ sp.Span.sp_name; Report.ns sp.Span.sp_dur_ns ]) s.spans);
  add "histograms" [ "histogram"; "count"; "p50"; "p90"; "p99"; "max"; "total" ]
    (List.map
       (fun (name, h) ->
         let cell v =
           match h.h_unit with
           | Ns -> Report.ns v
           | Count -> Printf.sprintf "%.0f" v
         in
         [
           name;
           string_of_int h.h_count;
           cell h.h_p50;
           cell h.h_p90;
           cell h.h_p99;
           cell h.h_max;
           cell h.h_sum_ns;
         ])
       s.histograms);
  add "gauges" [ "gauge"; "value"; "high water" ]
    (List.map
       (fun (name, g) ->
         [ name; string_of_int g.g_value; string_of_int g.g_high_water ])
       s.gauges);
  add "counters" [ "counter"; "value" ]
    (List.map (fun (name, v) -> [ name; string_of_int v ]) s.counters);
  if !sections = [] then "(no metrics registered)"
  else String.concat "\n\n" !sections

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_object fields =
  "{" ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) v) fields) ^ "}"

let json s =
  let counters =
    json_object (List.map (fun (name, v) -> (name, string_of_int v)) s.counters)
  in
  let gauges =
    json_object
      (List.map
         (fun (name, g) ->
           ( name,
             json_object
               [
                 ("value", string_of_int g.g_value);
                 ("high_water", string_of_int g.g_high_water);
               ] ))
         s.gauges)
  in
  let histograms =
    json_object
      (List.map
         (fun (name, h) ->
           (* Key suffixes follow the histogram's unit: a batch size
              serialized as [p50_ns] would scrape as nanoseconds. *)
           let key base = match h.h_unit with Ns -> base ^ "_ns" | Count -> base in
           ( name,
             json_object
               [
                 ("count", string_of_int h.h_count);
                 (key "sum", Printf.sprintf "%.0f" h.h_sum_ns);
                 (key "p50", Printf.sprintf "%.0f" h.h_p50);
                 (key "p90", Printf.sprintf "%.0f" h.h_p90);
                 (key "p99", Printf.sprintf "%.0f" h.h_p99);
                 (key "max", Printf.sprintf "%.0f" h.h_max);
               ] ))
         s.histograms)
  in
  let spans =
    "["
    ^ String.concat ", "
        (List.map
           (fun (sp : Span.span) ->
             json_object
               [
                 ("name", "\"" ^ json_escape sp.Span.sp_name ^ "\"");
                 ("dur_ns", Printf.sprintf "%.0f" sp.Span.sp_dur_ns);
               ])
           s.spans)
    ^ "]"
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"counters\": %s," counters;
      Printf.sprintf "  \"gauges\": %s," gauges;
      Printf.sprintf "  \"histograms\": %s," histograms;
      Printf.sprintf "  \"spans\": %s" spans;
      "}";
    ]

(** Process-wide observability: registry-based counters, gauges,
    log-bucketed latency histograms and a fixed-size span ring.

    The paper's evaluation is entirely about *where time goes* — nodes
    expanded, pruning effectiveness, serving-path latency — so the
    engine and search layers publish their internals here instead of
    through ad-hoc per-call records.

    Design rules:
    - {b Registry-based}: metrics are interned by name ({!counter},
      {!gauge}, {!histogram} return the same object for the same name),
      so any module can reference a metric without threading handles.
    - {b Near-zero cost when disabled}: every record operation first
      reads one atomic flag ({!enabled}) and returns immediately when
      instrumentation is off (the default).  Reads ({!Counter.value},
      {!snapshot}, ...) always work.
    - {b Domain-safe}: counters and gauges are sharded per domain and
      merged at read time; histograms use one atomic per bucket.  No
      locks on the record path.

    Metric values observed concurrently with writers are eventually
    consistent: a {!snapshot} taken while worker domains are recording
    may be mid-update, but every completed record is eventually counted
    exactly once. *)

(** {1 Global switch} *)

(** [set_enabled b] turns instrumentation on or off process-wide.
    Disabled is the default; recording while disabled is a no-op. *)
val set_enabled : bool -> unit

(** Current state of the switch. *)
val enabled : unit -> bool

(** Wall-clock time in nanoseconds (the time base of every histogram
    and span in this module). *)
val now_ns : unit -> float

(** {1 Metric kinds} *)

module Counter : sig
  (** A monotone event counter, sharded per domain. *)

  type t

  (** [make name] builds a counter that is {e not} in the registry —
      for local measurement and tests.  Use {!Obs.counter} for the
      interned variant. *)
  val make : string -> t

  val name : t -> string

  (** [add t n] adds [n] (no-op while disabled).  [n] must be >= 0. *)
  val add : t -> int -> unit

  val incr : t -> unit

  (** Sum over every per-domain shard at call time. *)
  val value : t -> int

  (** The raw shard values whose sum is {!value} — exposed so merge
      associativity is testable (any fold order gives the same total). *)
  val shard_values : t -> int array

  val reset : t -> unit
end

module Gauge : sig
  (** A last-write-wins level with a monotone high-water mark. *)

  type t

  (** Unregistered variant; see {!Obs.gauge}. *)
  val make : string -> t

  val name : t -> string

  (** [set t v] records the current level and raises the high-water
      mark to [v] if it exceeds it (no-op while disabled). *)
  val set : t -> int -> unit

  val value : t -> int

  (** Largest value ever {!set} since the last {!reset}. *)
  val high_water : t -> int

  val reset : t -> unit
end

(** What a histogram's samples measure: [Ns] wall-clock nanoseconds
    (the default), [Count] unitless quantities such as batch sizes.
    The unit drives reporter key suffixes ([sum_ns] vs [sum]) and the
    Prometheus HELP line, so a size can never scrape as a duration. *)
type hist_unit = Ns | Count

(** ["ns"] or ["count"]. *)
val hist_unit_to_string : hist_unit -> string

module Histogram : sig
  (** A log-bucketed (powers of two) histogram of non-negative samples,
      typically latencies in nanoseconds.  Quantile estimates return
      the upper bound of the bucket holding the requested rank, clamped
      to the exact observed maximum — so for all [q <= q'],
      [quantile t q <= quantile t q'], [quantile t 1. = max_value t],
      and every recorded sample is [<= quantile t 1.]. *)

  type t

  (** Unregistered variant; see {!Obs.histogram}.  [unit_] defaults to
      {!Ns}. *)
  val make : ?unit_:hist_unit -> string -> t

  val name : t -> string

  (** The unit declared at creation. *)
  val unit_kind : t -> hist_unit

  (** [observe t v] records [max v 0.] (no-op while disabled). *)
  val observe : t -> float -> unit

  val count : t -> int

  (** Sum of recorded samples (each truncated to whole ns). *)
  val sum : t -> float

  (** Exact maximum recorded sample, 0 if empty. *)
  val max_value : t -> float

  (** [quantile t q] for [q] in [[0, 1]]; 0 if empty.
      @raise Invalid_argument outside [[0, 1]]. *)
  val quantile : t -> float -> float

  val reset : t -> unit
end

module Span : sig
  (** Lightweight tracing: completed spans land in a fixed-size ring
      buffer (oldest overwritten first). *)

  type span = {
    sp_name : string;
    sp_start_ns : float;  (** wall clock at entry *)
    sp_dur_ns : float;
  }

  (** Ring capacity (spans retained). *)
  val capacity : int

  (** [with_ name f] runs [f ()]; when instrumentation is enabled the
      elapsed time is recorded as a span named [name], whether [f]
      returns or raises. *)
  val with_ : string -> (unit -> 'a) -> 'a

  (** Completed spans, newest first, at most {!capacity}. *)
  val recent : unit -> span list

  (** Spans recorded since the last reset (including overwritten ones). *)
  val total_recorded : unit -> int

  (** Spans lost to ring overwrite since the last reset — surfaced as
      the [obs.spans.dropped] counter in every snapshot. *)
  val dropped : unit -> int
end

(** {1 External sources}

    Sibling modules of the registry (the tracer) register read hooks at
    module-init time so their totals appear in {!snapshot} and their
    buffers are emptied by {!reset}, without a module cycle. *)

(** [register_counter_source f] merges [f ()]'s name/value pairs into
    the [counters] section of every subsequent snapshot. *)
val register_counter_source : (unit -> (string * int) list) -> unit

(** [register_reset_hook f] runs [f ()] at the end of every {!reset}. *)
val register_reset_hook : (unit -> unit) -> unit

(** {1 Registry} *)

(** [counter name] returns the registered counter for [name], creating
    it on first use.
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : string -> Counter.t

(** [gauge name] — registered {!Gauge.t} for [name].
    @raise Invalid_argument if [name] is registered as another kind. *)
val gauge : string -> Gauge.t

(** [histogram ?unit_ name] — registered {!Histogram.t} for [name]
    ([unit_] defaults to {!Ns}).
    @raise Invalid_argument if [name] is registered as another kind or
    under a different unit. *)
val histogram : ?unit_:hist_unit -> string -> Histogram.t

(** Zero every registered metric and empty the span ring.  Metrics stay
    registered; the enabled flag is untouched. *)
val reset : unit -> unit

(** {1 Timing helper} *)

(** [time_hist h f] runs [f ()] and observes the elapsed nanoseconds in
    [h] (whether [f] returns or raises).  When disabled it is exactly
    [f ()] — no clock reads. *)
val time_hist : Histogram.t -> (unit -> 'a) -> 'a

(** {1 Snapshots and reporters} *)

type histogram_summary = {
  h_unit : hist_unit;  (** drives reporter key suffixes *)
  h_count : int;
  h_sum_ns : float;  (** in the histogram's own unit despite the name *)
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
  h_max : float;
}

type gauge_reading = {
  g_value : int;
  g_high_water : int;
}

(** A point-in-time read of every registered metric, each section
    sorted by metric name. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * gauge_reading) list;
  histograms : (string * histogram_summary) list;
  spans : Span.span list;  (** newest first *)
}

val snapshot : unit -> snapshot

(** [delta older newer] — what happened between two snapshots.
    Counters and histogram [h_count]/[h_sum_ns] are subtracted (clamped
    at 0, so metrics that were reset in between read as 0 rather than
    negative); gauges, histogram quantile estimates and spans are taken
    from [newer] as-is (log buckets cannot be re-quantiled after the
    fact).  Used by [stats serve] and the bench replay to report rates
    instead of monotonically-growing totals. *)
val delta : snapshot -> snapshot -> snapshot

(** Human-readable tables (one per non-empty section). *)
val table : snapshot -> string

(** Stable JSON rendering: objects keyed by metric name, keys sorted,
    integers for counts and whole-ns values. *)
val json : snapshot -> string

(** {1 JSON building blocks} — shared with the trace exporters and the
    bench harness so every emitter escapes identically. *)

(** Backslash-escape for double-quoted JSON string contents (adds no
    surrounding quotes). *)
val json_escape : string -> string

(** [json_object kvs] renders [{"k": v, ...}]; keys are escaped, values
    are spliced verbatim (pre-rendered JSON). *)
val json_object : (string * string) list -> string

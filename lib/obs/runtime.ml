(* lint: allow-file toplevel-state *)
(* Runtime telemetry history: a fixed-interval sampler on its own
   thread, writing GC/pool/cache/server readings into a bounded ring
   served as the [/metrics/history] JSON series.

   Each sample holds the deltas since the previous one (minor words
   allocated, major collections, busy-ns per pool worker) plus the
   instantaneous levels (heap words, queue depth, cache entries, server
   inflight), so a dashboard can plot rates without differentiating
   client-side.  The sampler thread sleeps in short slices and checks a
   stop flag, so [stop] returns promptly rather than after a full
   interval. *)

(* Domain-safety contract for the typed analysis: the ring is guarded
   by [lock]; the stop flag is atomic; cross-thread access is by
   design. *)
[@@@lint.domain_safe]

type sample = {
  m_ts_ns : float;
  m_minor_words : float;  (* allocated since previous sample *)
  m_major_collections : int;  (* since previous sample *)
  m_heap_words : int;
  m_pool_queue_depth : int;
  m_pool_busy_pct : int;
      (* share of the interval the pool spent solving, summed over
         workers; >100 means more than one worker was busy on average *)
  m_cache_entries : int;
  m_server_inflight : int;
}

type t = {
  lock : Mutex.t;
  ring : sample option array;
  mutable next : int;
  mutable thread : Thread.t option;
  mutable last_stat : Gc.stat option;
  mutable last_minor_words : float;
  mutable last_busy_ns : int;
  mutable last_ts_ns : float;
}

let ring_capacity = 512

let state =
  {
    lock = Mutex.create ();
    ring = Array.make ring_capacity None;
    next = 0;
    thread = None;
    last_stat = None;
    last_minor_words = 0.;
    last_busy_ns = 0;
    last_ts_ns = 0.;
  }

let stop_flag = Atomic.make false

let samples_total = Atomic.make 0

let running () =
  Mutex.lock state.lock;
  let r = state.thread <> None in
  Mutex.unlock state.lock;
  r

(* Gauges/counters published by the engine and server layers; interning
   here creates them as zeros when those layers are not loaded, which
   reads correctly (idle pool, empty cache). *)
let g_queue = Registry.gauge "engine.pool.queue_depth_hwm"

let c_busy = Registry.counter "engine.pool.worker_busy_ns"

let g_cache = Registry.gauge "engine.cache.entries"

let g_inflight = Registry.gauge "server.inflight"

(* Take one reading and append it to the ring.  Exposed for tests so
   they need not wait out an interval. *)
let sample_once () =
  let ts = Registry.now_ns () in
  let stat = Gc.quick_stat () in
  (* [quick_stat]'s minor_words only advances at minor collections; the
     dedicated accessor includes the current allocation pointer. *)
  let minor_now = Gc.minor_words () in
  let busy = Registry.Counter.value c_busy in
  Mutex.lock state.lock;
  let minor_words, majors =
    match state.last_stat with
    | Some prev ->
        ( minor_now -. state.last_minor_words,
          stat.Gc.major_collections - prev.Gc.major_collections )
    | None -> (0., 0)
  in
  let busy_pct =
    let dt = ts -. state.last_ts_ns in
    if state.last_ts_ns > 0. && dt > 0. then
      int_of_float (100. *. float_of_int (busy - state.last_busy_ns) /. dt)
    else 0
  in
  state.last_stat <- Some stat;
  state.last_minor_words <- minor_now;
  state.last_busy_ns <- busy;
  state.last_ts_ns <- ts;
  state.ring.(state.next) <-
    Some
      {
        m_ts_ns = ts;
        m_minor_words = Float.max 0. minor_words;
        m_major_collections = Stdlib.max 0 majors;
        m_heap_words = stat.Gc.heap_words;
        m_pool_queue_depth = Registry.Gauge.value g_queue;
        m_pool_busy_pct = Stdlib.max 0 busy_pct;
        m_cache_entries = Registry.Gauge.value g_cache;
        m_server_inflight = Registry.Gauge.value g_inflight;
      };
  state.next <- (state.next + 1) mod ring_capacity;
  Mutex.unlock state.lock;
  Atomic.incr samples_total

let start ?(interval_ms = 250) () =
  Mutex.lock state.lock;
  let already = state.thread <> None in
  Mutex.unlock state.lock;
  if not already then begin
    Atomic.set stop_flag false;
    let interval = float_of_int (Stdlib.max 1 interval_ms) /. 1000. in
    let body () =
      while not (Atomic.get stop_flag) do
        sample_once ();
        (* Sleep in ~10ms slices so stop is prompt. *)
        let slept = ref 0. in
        while (not (Atomic.get stop_flag)) && !slept < interval do
          let slice = Float.min 0.01 (interval -. !slept) in
          Thread.delay slice;
          slept := !slept +. slice
        done
      done
    in
    let t = Thread.create body () in
    Mutex.lock state.lock;
    state.thread <- Some t;
    Mutex.unlock state.lock
  end

let stop () =
  Mutex.lock state.lock;
  let t = state.thread in
  state.thread <- None;
  Mutex.unlock state.lock;
  match t with
  | Some t ->
      Atomic.set stop_flag true;
      Thread.join t
  | None -> ()

(* Oldest first, at most [ring_capacity]. *)
let history () =
  Mutex.lock state.lock;
  let out = ref [] in
  for k = 0 to ring_capacity - 1 do
    (* Walk backwards from just behind the cursor so the accumulator
       comes out oldest-first. *)
    let i = (state.next + ring_capacity - 1 - k) mod ring_capacity in
    match state.ring.(i) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  Mutex.unlock state.lock;
  !out

let history_json () =
  let row s =
    Registry.json_object
      [
        ("ts_ns", Printf.sprintf "%.0f" s.m_ts_ns);
        ("minor_words", Printf.sprintf "%.0f" s.m_minor_words);
        ("major_collections", string_of_int s.m_major_collections);
        ("heap_words", string_of_int s.m_heap_words);
        ("pool_queue_depth", string_of_int s.m_pool_queue_depth);
        ("pool_busy_pct", string_of_int s.m_pool_busy_pct);
        ("cache_entries", string_of_int s.m_cache_entries);
        ("server_inflight", string_of_int s.m_server_inflight);
      ]
  in
  "[" ^ String.concat ",\n " (List.map row (history ())) ^ "]"

let samples () = Atomic.get samples_total

let reset () =
  Mutex.lock state.lock;
  Array.fill state.ring 0 ring_capacity None;
  state.next <- 0;
  state.last_stat <- None;
  state.last_minor_words <- 0.;
  state.last_busy_ns <- 0;
  state.last_ts_ns <- 0.;
  Mutex.unlock state.lock;
  Atomic.set samples_total 0

let () =
  Registry.register_counter_source (fun () ->
      [ ("obs.runtime.samples", samples ()) ]);
  Registry.register_reset_hook reset

(** Runtime telemetry history: a fixed-interval sampler on its own
    thread feeding a bounded ring, served as [/metrics/history].

    Each sample mixes deltas since the previous sample (minor words
    allocated, major collections, pool busy share) with instantaneous
    levels (heap words, queue-depth high-water, cache entries, server
    inflight), so dashboards plot rates without client-side
    differentiation.  {!stop} is prompt: the thread sleeps in short
    slices and checks a stop flag. *)

type sample = {
  m_ts_ns : float;
  m_minor_words : float;  (** allocated since the previous sample *)
  m_major_collections : int;  (** since the previous sample *)
  m_heap_words : int;
  m_pool_queue_depth : int;
  m_pool_busy_pct : int;
      (** share of the interval pool workers spent solving, summed over
          workers — >100 means more than one worker busy on average *)
  m_cache_entries : int;
  m_server_inflight : int;
}

(** Start the sampler thread (no-op if already running).
    [interval_ms] defaults to 250. *)
val start : ?interval_ms:int -> unit -> unit

(** Stop and join the sampler thread (no-op if not running). *)
val stop : unit -> unit

val running : unit -> bool

(** Take one reading synchronously — the test hook; also what the
    thread calls each interval. *)
val sample_once : unit -> unit

(** Buffered samples, oldest first (ring capacity 512). *)
val history : unit -> sample list

(** JSON array of {!history} (the [/metrics/history] wire format). *)
val history_json : unit -> string

(** Samples taken since the last reset — surfaced as
    [obs.runtime.samples]. *)
val samples : unit -> int

(** Empty the ring and zero the total (also runs on [Registry.reset]).
    A running sampler keeps running. *)
val reset : unit -> unit

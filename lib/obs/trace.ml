(* lint: allow-file toplevel-state *)
(* Query-level tracing: hierarchical spans recorded into per-domain
   lock-free ring buffers and stitched into trees at read time.  Like
   the metric registry the buffers are process-global — any layer can
   open a span without threading a tracer handle through every API.

   Record-path discipline: when tracing is disabled every entry point
   ([with_span], [start], [add_attrs], [current]) reads exactly one
   atomic flag and returns; no clock reads, no allocation. *)

(* Domain-safety contract for the typed analysis: the rings are
   per-domain shards indexed by [Domain.self ()] and every shared
   scalar is Atomic — cross-domain access is by design. *)
[@@@lint.domain_safe]

type ctx = {
  trace_id : int;
  span_id : int;
}

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;  (* 0 = no parent (root) *)
  sp_name : string;
  sp_domain : int;
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_attrs : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Switch — separate from the metric registry's so metric overhead
   experiments (BENCH_obs.json) keep their baseline semantics.          *)

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b

let enabled () = Atomic.get enabled_flag

(* ------------------------------------------------------------------ *)
(* Span/trace ids: one global atomic sequence, never 0.                *)

let next_id = Atomic.make 1

let fresh_id () = Atomic.fetch_and_add next_id 1

(* ------------------------------------------------------------------ *)
(* Per-domain buffers.  Writers claim a slot with one fetch-and-add on
   their shard's cursor, then publish the span with one atomic exchange
   on the slot — no locks, no cross-domain contention on the record
   path.  Slots are atomic so a reader on another domain always sees a
   fully-published span or nothing.                                    *)

let n_shards = 16 (* power of two *)

let slots_per_shard = 512 (* power of two *)

type shard = {
  slots : span option Atomic.t array;
  cursor : int Atomic.t;
}

let shards =
  Array.init n_shards (fun _ ->
      {
        slots = Array.init slots_per_shard (fun _ -> Atomic.make None);
        cursor = Atomic.make 0;
      })

let recorded_total = Atomic.make 0

let dropped_total = Atomic.make 0

let capacity = n_shards * slots_per_shard

let record sp =
  let sh = shards.((Domain.self () :> int) land (n_shards - 1)) in
  let i = Atomic.fetch_and_add sh.cursor 1 in
  (match Atomic.exchange sh.slots.(i land (slots_per_shard - 1)) (Some sp) with
  | Some _ -> Atomic.incr dropped_total
  | None -> ());
  Atomic.incr recorded_total

let total_recorded () = Atomic.get recorded_total

let dropped () = Atomic.get dropped_total

let by_start a b = compare (a.sp_start_ns, a.sp_id) (b.sp_start_ns, b.sp_id)

(* Every buffered span, oldest first. *)
let spans () =
  let all =
    Array.fold_left
      (fun acc sh ->
        Array.fold_left
          (fun acc slot ->
            match Atomic.get slot with Some sp -> sp :: acc | None -> acc)
          acc sh.slots)
      [] shards
  in
  List.sort by_start all

let reset () =
  Array.iter
    (fun sh ->
      Array.iter (fun slot -> Atomic.set slot None) sh.slots;
      Atomic.set sh.cursor 0)
    shards;
  Atomic.set recorded_total 0;
  Atomic.set dropped_total 0

(* Publish the totals into every registry snapshot and hook [reset]
   into Registry.reset, without a module cycle. *)
let () =
  Registry.register_counter_source (fun () ->
      [
        ("obs.trace.spans", total_recorded ());
        ("obs.trace.dropped", dropped ());
      ]);
  Registry.register_reset_hook reset

(* ------------------------------------------------------------------ *)
(* Current-span context: a per-domain stack of open frames.            *)

type frame = {
  f_ctx : ctx;
  (* newest attr first; reversed at record time *)
  mutable f_attrs : (string * string) list;
}

let tls : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let current () =
  if not (Atomic.get enabled_flag) then None
  else
    match !(Domain.DLS.get tls) with [] -> None | f :: _ -> Some f.f_ctx

let add_attrs kvs =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get tls) with
    | [] -> ()
    | f :: _ -> List.iter (fun kv -> f.f_attrs <- kv :: f.f_attrs) kvs

(* [with_ctx ctx f] runs [f] with [ctx] installed as the parent for
   spans opened inside — the cross-domain half of propagation: capture
   [current ()] where work is submitted, install it where it runs. *)
let with_ctx octx f =
  match octx with
  | None -> f ()
  | Some c ->
      if not (Atomic.get enabled_flag) then f ()
      else begin
        let stack = Domain.DLS.get tls in
        let saved = !stack in
        stack := { f_ctx = c; f_attrs = [] } :: saved;
        Fun.protect ~finally:(fun () -> stack := saved) f
      end

let push_frame ?(attrs = []) () =
  let stack = Domain.DLS.get tls in
  let saved = !stack in
  let id = fresh_id () in
  let trace_id, parent =
    match saved with
    | f0 :: _ -> (f0.f_ctx.trace_id, f0.f_ctx.span_id)
    | [] -> (id, 0)
  in
  let frame = { f_ctx = { trace_id; span_id = id }; f_attrs = List.rev attrs } in
  stack := frame :: saved;
  (frame, parent, saved)

let record_frame frame ~parent ~name ~start_ns ~dur_ns =
  record
    {
      sp_trace = frame.f_ctx.trace_id;
      sp_id = frame.f_ctx.span_id;
      sp_parent = parent;
      sp_name = name;
      sp_domain = (Domain.self () :> int);
      sp_start_ns = start_ns;
      sp_dur_ns = dur_ns;
      sp_attrs = List.rev frame.f_attrs;
    }

let with_span ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let frame, parent, saved = push_frame ?attrs () in
    let stack = Domain.DLS.get tls in
    let t0 = Registry.now_ns () in
    let close () =
      let dur = Registry.now_ns () -. t0 in
      stack := saved;
      record_frame frame ~parent ~name ~start_ns:t0 ~dur_ns:dur
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

(* Explicit handles, for spans that cannot wrap a single closure.
   Prefer [with_span]; the span-balance lint rule flags a [start] whose
   function has no [finish]. *)
type handle =
  | No_span
  | Open of {
      frame : frame;
      name : string;
      parent : int;
      start_ns : float;
      mutable closed : bool;
    }

let start ?attrs name =
  if not (Atomic.get enabled_flag) then No_span
  else begin
    let frame, parent, _saved = push_frame ?attrs () in
    Open { frame; name; parent; start_ns = Registry.now_ns (); closed = false }
  end

let finish ?(attrs = []) h =
  match h with
  | No_span -> ()
  | Open o ->
      if not o.closed then begin
        o.closed <- true;
        let dur = Registry.now_ns () -. o.start_ns in
        List.iter (fun kv -> o.frame.f_attrs <- kv :: o.frame.f_attrs) attrs;
        let stack = Domain.DLS.get tls in
        (* Drop the frame wherever it sits (ids are unique), so a
           finish out of nesting order cannot corrupt the stack. *)
        stack :=
          List.filter
            (fun f -> f.f_ctx.span_id <> o.frame.f_ctx.span_id)
            !stack;
        record_frame o.frame ~parent:o.parent ~name:o.name ~start_ns:o.start_ns
          ~dur_ns:dur
      end

(* ------------------------------------------------------------------ *)
(* Read-time stitching.                                                *)

type tree = {
  t_span : span;
  t_children : tree list;
}

let trees spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace by_id sp.sp_id sp) spans;
  let children : (int, span list) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun sp ->
      if sp.sp_parent <> 0 && Hashtbl.mem by_id sp.sp_parent then
        Hashtbl.replace children sp.sp_parent
          (sp :: Option.value ~default:[] (Hashtbl.find_opt children sp.sp_parent))
      else roots := sp :: !roots)
    spans;
  let rec build sp =
    let kids =
      List.sort by_start
        (Option.value ~default:[] (Hashtbl.find_opt children sp.sp_id))
    in
    { t_span = sp; t_children = List.map build kids }
  in
  List.map build (List.sort by_start !roots)

let last () =
  match List.rev (trees (spans ())) with [] -> None | t :: _ -> Some t

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

let quote s = "\"" ^ Registry.json_escape s ^ "\""

let span_args sp =
  ("trace_id", string_of_int sp.sp_trace)
  :: ("span_id", string_of_int sp.sp_id)
  :: ("parent_id", string_of_int sp.sp_parent)
  :: sp.sp_attrs

(* Chrome trace-event JSON (the format Perfetto and chrome://tracing
   load): one complete ("ph":"X") event per span, timestamps in
   microseconds, one process per trace id, one thread per domain. *)
let chrome_json spans =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf
        (Registry.json_object
           [
             ("name", quote sp.sp_name);
             ("cat", quote "stgq");
             ("ph", quote "X");
             ("ts", Printf.sprintf "%.3f" (sp.sp_start_ns /. 1e3));
             ("dur", Printf.sprintf "%.3f" (sp.sp_dur_ns /. 1e3));
             ("pid", string_of_int sp.sp_trace);
             ("tid", string_of_int sp.sp_domain);
             ( "args",
               Registry.json_object
                 (List.map (fun (k, v) -> (k, quote v)) (span_args sp)) );
           ]))
    spans;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let rec tree_json t =
  let sp = t.t_span in
  Registry.json_object
    [
      ("name", quote sp.sp_name);
      ("trace_id", string_of_int sp.sp_trace);
      ("span_id", string_of_int sp.sp_id);
      ("parent_id", string_of_int sp.sp_parent);
      ("domain", string_of_int sp.sp_domain);
      ("start_ns", Printf.sprintf "%.0f" sp.sp_start_ns);
      ("dur_ns", Printf.sprintf "%.0f" sp.sp_dur_ns);
      ( "attrs",
        Registry.json_object (List.map (fun (k, v) -> (k, quote v)) sp.sp_attrs)
      );
      ( "children",
        "[" ^ String.concat ", " (List.map tree_json t.t_children) ^ "]" );
    ]

let render t =
  let buf = Buffer.create 512 in
  let attr_text attrs =
    match attrs with
    | [] -> ""
    | kvs ->
        "  ("
        ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
        ^ ")"
  in
  let rec walk prefix child_prefix t =
    let sp = t.t_span in
    Buffer.add_string buf
      (Printf.sprintf "%s%s  %s  [d%d]%s\n" prefix sp.sp_name
         (Report.ns sp.sp_dur_ns) sp.sp_domain (attr_text sp.sp_attrs));
    let rec each = function
      | [] -> ()
      | [ c ] -> walk (child_prefix ^ "`- ") (child_prefix ^ "   ") c
      | c :: rest ->
          walk (child_prefix ^ "|- ") (child_prefix ^ "|  ") c;
          each rest
    in
    each t.t_children
  in
  walk "" "" t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pruning waterfall: the per-query solver profile, folded out of the
   search-stat attrs Instr.record_search attaches to solve spans.      *)

type waterfall = {
  w_solves : int;
  w_nodes : int;
  w_examined : int;
  w_included : int;
  w_deferred : int;
  w_removed_exterior : int;
  w_removed_interior : int;
  w_removed_temporal : int;
  w_pruned_distance : int;
  w_pruned_acquaintance : int;
  w_pruned_availability : int;
  w_self_ns : (string * float) list;
  w_budget_trip : (string * string) option;
}

let waterfall t =
  let sum key =
    let total = ref 0 in
    let rec walk t =
      List.iter
        (fun (k, v) ->
          if k = key then
            total := !total + Option.value ~default:0 (int_of_string_opt v))
        t.t_span.sp_attrs;
      List.iter walk t.t_children
    in
    walk t;
    !total
  in
  let self_ns = Hashtbl.create 16 in
  let rec walk_self t =
    let kids_ns =
      List.fold_left (fun acc c -> acc +. c.t_span.sp_dur_ns) 0. t.t_children
    in
    let self = Float.max 0. (t.t_span.sp_dur_ns -. kids_ns) in
    let name = t.t_span.sp_name in
    Hashtbl.replace self_ns name
      (self +. Option.value ~default:0. (Hashtbl.find_opt self_ns name));
    List.iter walk_self t.t_children
  in
  walk_self t;
  let trip = ref None in
  let rec find_trip t =
    (match List.assoc_opt "budget.trip" t.t_span.sp_attrs with
    | Some reason when !trip = None ->
        let at =
          Option.value ~default:"?"
            (List.assoc_opt "budget.checkpoint_nodes" t.t_span.sp_attrs)
        in
        trip := Some (reason, at)
    | _ -> ());
    List.iter find_trip t.t_children
  in
  find_trip t;
  {
    w_solves = sum "search.solves";
    w_nodes = sum "search.nodes";
    w_examined = sum "search.examined";
    w_included = sum "search.includes";
    w_deferred = sum "search.deferred";
    w_removed_exterior = sum "search.removed.exterior";
    w_removed_interior = sum "search.removed.interior";
    w_removed_temporal = sum "search.removed.temporal";
    w_pruned_distance = sum "search.pruned.distance";
    w_pruned_acquaintance = sum "search.pruned.acquaintance";
    w_pruned_availability = sum "search.pruned.availability";
    w_self_ns =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) self_ns []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
    w_budget_trip = !trip;
  }

(* The accounting identity the kernel maintains: every candidate the
   expansion loop examines is included, removed by one of the three
   filtering rules, or deferred to a later relaxation round. *)
let waterfall_balanced w =
  w.w_examined
  = w.w_included + w.w_removed_exterior + w.w_removed_interior
    + w.w_removed_temporal + w.w_deferred

let render_waterfall w =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "pruning waterfall (%d solve%s, %d nodes expanded)" w.w_solves
    (if w.w_solves = 1 then "" else "s")
    w.w_nodes;
  line "  candidates examined          %8d" w.w_examined;
  line "  |- removed: exterior-unfamiliar %5d" w.w_removed_exterior;
  line "  |- removed: interior-unfamiliar %5d" w.w_removed_interior;
  line "  |- removed: temporal            %5d" w.w_removed_temporal;
  line "  |- deferred (later relaxation)  %5d" w.w_deferred;
  line "  `- included in a group          %5d" w.w_included;
  line "  balance: %s"
    (if waterfall_balanced w then "exact (kills + deferrals + includes = examined)"
     else "INEXACT — kernel accounting bug");
  line "  bound cuts: distance %d, acquaintance %d, availability %d"
    w.w_pruned_distance w.w_pruned_acquaintance w.w_pruned_availability;
  (match w.w_budget_trip with
  | Some (reason, at) -> line "  budget trip: %s at checkpoint nodes=%s" reason at
  | None -> ());
  if w.w_self_ns <> [] then begin
    line "  phase self-time:";
    List.iter (fun (name, ns) -> line "    %-28s %s" name (Report.ns ns)) w.w_self_ns
  end;
  Buffer.contents buf

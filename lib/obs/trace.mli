(** Query-level tracing: hierarchical spans across domains.

    Aggregate metrics ({!Registry}) say {e how much}; spans say {e which
    query} and {e which phase inside one solve}.  Every span carries a
    trace id, its own span id, its parent's span id, a phase name,
    start/duration in wall-clock ns and a key/value attr list.  Spans
    are recorded into per-domain lock-free ring buffers and stitched
    into trees at read time, so the record path never takes a lock.

    Cross-domain propagation is explicit: capture {!current} where work
    is submitted, install it with {!with_ctx} where the work runs
    ([Engine.Pool.submit] does this automatically), and a pooled
    parallel solve yields one tree spanning all worker domains.

    Tracing has its own switch, independent of the metric registry's:
    when disabled, every record operation reads one atomic flag and
    returns — no clock reads, no allocation. *)

(** {1 Switch} *)

val set_enabled : bool -> unit

val enabled : unit -> bool

(** {1 Spans} *)

(** Propagation context: the identity of an open span, safe to send to
    another domain. *)
type ctx = {
  trace_id : int;  (** id of the root span of this trace *)
  span_id : int;
}

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;  (** 0 = root *)
  sp_name : string;
  sp_domain : int;  (** domain id that recorded the span *)
  sp_start_ns : float;
  sp_dur_ns : float;
  sp_attrs : (string * string) list;
}

(** [with_span name f] runs [f ()] inside a new span: a child of the
    innermost open span on this domain, or the root of a fresh trace.
    The span is recorded (return or raise) with the elapsed time and
    any attrs ([?attrs] plus {!add_attrs} calls made inside). *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** The innermost open span on the calling domain, if tracing is on. *)
val current : unit -> ctx option

(** [with_ctx c f] runs [f ()] with [c] installed as the parent for
    spans opened inside — the receiving half of cross-domain
    propagation.  [with_ctx None f] is exactly [f ()]. *)
val with_ctx : ctx option -> (unit -> 'a) -> 'a

(** [add_attrs kvs] appends attrs to the innermost open span (no-op if
    none, or while disabled). *)
val add_attrs : (string * string) list -> unit

(** {2 Explicit handles}

    For spans that cannot wrap one closure.  Prefer {!with_span}; the
    [span-balance] lint rule flags a [start] whose enclosing function
    has no [finish]. *)

type handle

(** Opens a span (child of the innermost open one) and returns its
    handle; a no-op handle while disabled. *)
val start : ?attrs:(string * string) list -> string -> handle

(** Closes and records the span.  Idempotent; tolerates finishes out of
    nesting order. *)
val finish : ?attrs:(string * string) list -> handle -> unit

(** {1 Reading} *)

(** Buffered span capacity across all per-domain rings; the oldest
    spans of a busy domain are overwritten first (counted in
    [obs.trace.dropped]). *)
val capacity : int

(** Every buffered span, oldest first. *)
val spans : unit -> span list

(** Spans recorded since the last reset, including overwritten ones. *)
val total_recorded : unit -> int

(** Spans lost to ring overwrite since the last reset. *)
val dropped : unit -> int

(** Empty every buffer and zero the totals (also runs on
    [Registry.reset]).  The enabled flag is untouched. *)
val reset : unit -> unit

(** {1 Stitching} *)

type tree = {
  t_span : span;
  t_children : tree list;  (** by start time *)
}

(** [trees spans] stitches a span list into a forest, roots oldest
    first.  A span whose parent is absent (dropped, or still open)
    becomes a root. *)
val trees : span list -> tree list

(** The newest-rooted buffered trace, if any. *)
val last : unit -> tree option

(** {1 Exporters} *)

(** Chrome trace-event JSON, loadable by Perfetto
    ({:https://ui.perfetto.dev}) and chrome://tracing: one complete
    event per span, one process per trace id, one thread per domain;
    span/parent ids and attrs ride in [args]. *)
val chrome_json : span list -> string

(** One stitched trace as nested JSON (the [/trace/last] wire format). *)
val tree_json : tree -> string

(** Human tree rendering, one span per line with duration, domain and
    attrs. *)
val render : tree -> string

(** {1 Pruning waterfall}

    The per-query solver profile, folded out of the search-stat attrs
    [Instr.record_search] attaches to solve spans.  The kernel
    maintains an exact accounting identity over {e examined}
    candidates — see {!waterfall_balanced}. *)

type waterfall = {
  w_solves : int;
  w_nodes : int;
  w_examined : int;  (** candidates considered by the expansion loop *)
  w_included : int;
  w_deferred : int;  (** skipped this relaxation round, re-examined later *)
  w_removed_exterior : int;
  w_removed_interior : int;
  w_removed_temporal : int;
  w_pruned_distance : int;
  w_pruned_acquaintance : int;
  w_pruned_availability : int;
  w_self_ns : (string * float) list;
      (** per-phase self time (span duration minus child durations),
          aggregated by span name, largest first *)
  w_budget_trip : (string * string) option;
      (** (trip reason, checkpoint node count) when a budget tripped *)
}

val waterfall : tree -> waterfall

(** [w_examined = w_included + w_removed_* + w_deferred] — every
    examined candidate is accounted for exactly once. *)
val waterfall_balanced : waterfall -> bool

val render_waterfall : waterfall -> string

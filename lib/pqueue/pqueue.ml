module Heap = struct
  type 'a t = {
    cmp : 'a -> 'a -> int;
    mutable data : 'a array;
    mutable size : int;
  }

  let create ~cmp = { cmp; data = [||]; size = 0 }
  let size t = t.size
  let is_empty t = t.size = 0

  let grow t x =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let bigger = Array.make (max 8 (2 * cap)) x in
      Array.blit t.data 0 bigger 0 t.size;
      t.data <- bigger
    end

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if t.cmp t.data.(i) t.data.(parent) < 0 then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let best = ref i in
    if l < t.size && t.cmp t.data.(l) t.data.(!best) < 0 then best := l;
    if r < t.size && t.cmp t.data.(r) t.data.(!best) < 0 then best := r;
    if !best <> i then begin
      swap t i !best;
      sift_down t !best
    end

  let add t x =
    grow t x;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let peek t =
    if t.size = 0 then raise Not_found;
    t.data.(0)

  let pop t =
    if t.size = 0 then raise Not_found;
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    top

  let to_sorted_list t =
    let copy = { t with data = Array.sub t.data 0 t.size } in
    let rec drain acc = if is_empty copy then List.rev acc else drain (pop copy :: acc) in
    drain []
end

module Bounded = struct
  (* Internally a max-heap on [cmp] (worst at the root) so eviction is
     O(log n). *)
  type 'a t = {
    capacity : int;
    cmp : 'a -> 'a -> int;
    heap : 'a Heap.t;
  }

  let create ~capacity ~cmp =
    if capacity < 0 then invalid_arg "Pqueue.Bounded.create: negative capacity";
    { capacity; cmp; heap = Heap.create ~cmp:(fun a b -> cmp b a) }

  let size t = Heap.size t.heap
  let is_full t = size t >= t.capacity
  let worst t = if Heap.is_empty t.heap then None else Some (Heap.peek t.heap)

  let add t x =
    if t.capacity = 0 then false
    else if size t < t.capacity then begin
      Heap.add t.heap x;
      true
    end
    else if t.cmp x (Heap.peek t.heap) < 0 then begin
      let _evicted = Heap.pop t.heap in
      Heap.add t.heap x;
      true
    end
    else false

  let to_sorted_list t = List.rev (Heap.to_sorted_list t.heap)
end

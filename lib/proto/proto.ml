(* Wire encoding for the query server (docs/PROTOCOL.md).

   Layout discipline: fixed-width big-endian integers, one-byte
   presence flags for options, u16-counted lists, and a bitmask for
   availability slabs.  The decoder reads through a bounds-checked
   cursor and converts every failure into a typed [decode_error]; the
   only allocation sized from wire data is the availability slab, and
   its byte count is checked against the remaining buffer *before* the
   slab is created, so a hostile length field can never out-allocate
   the frame that carried it.

   Versioning: every frame payload leads with its wire version; this
   build speaks [min_version .. version] and fields added after v1 are
   written/read only at the versions that know them ([Hello.speaks]
   and answer [trace_id] from v2).  The negotiated version of a
   connection is [min server_version client_speaks], carried in
   [Hello]/[Hello_ok], so an old client never sees bytes it cannot
   decode. *)

open Stgq_core

let version = 2
let min_version = 1
let max_frame = 1 lsl 20
let header_bytes = 4

type policy = {
  deadline_ms : float option;
  node_limit : int option;
  degrade : bool;
}

type request =
  | Hello of { client : string; speaks : int }
      (* [speaks]: highest wire version the client understands; assumed
         1 when the Hello itself arrived at v1 *)
  | Ping of string
  | Sgq of { initiator : int; q : Query.sgq; policy : policy option }
  | Stgq of { initiator : int; q : Query.stgq; policy : policy option }
  | Update_schedule of {
      vertex : int;
      avail : Timetable.Availability.t;
    }

type server_error =
  | Overloaded of { queue_depth : int; limit : int }
  | Degraded of { reason : Budget.reason; retries : int }
  | Unavailable of { message : string; retries : int }
  | Bad_request of { message : string }
  | Unsupported_version of { server_version : int }

type response =
  | Hello_ok of { version : int }
  | Pong of string
  | Sg_answer of {
      value : Query.sg_solution option;
      rung : Resilience.rung;
      gap : float option;
      retries : int;
      reason : Budget.reason option;
      certified : bool;
      trace_id : int;  (* server-assigned; 0 = none (and on v1 wires) *)
    }
  | Stg_answer of {
      value : Query.stg_solution option;
      rung : Resilience.rung;
      gap : float option;
      retries : int;
      reason : Budget.reason option;
      certified : bool;
      trace_id : int;  (* server-assigned; 0 = none (and on v1 wires) *)
    }
  | Updated of { vertex : int }
  | Failed of server_error

type decode_error =
  | Frame_too_large of { declared : int; limit : int }
  | Truncated of { needed : int; got : int }
  | Bad_version of { got : int }
  | Bad_tag of { context : string; tag : int }
  | Bad_value of { context : string; detail : string }
  | Trailing_bytes of { extra : int }

let string_of_decode_error = function
  | Frame_too_large { declared; limit } ->
      Printf.sprintf "frame too large: declared %d bytes, limit %d" declared
        limit
  | Truncated { needed; got } ->
      Printf.sprintf "truncated: needed %d more byte(s), %d available" needed
        got
  | Bad_version { got } ->
      Printf.sprintf
        "unsupported protocol version %d (this build speaks %d..%d)" got
        min_version version
  | Bad_tag { context; tag } ->
      Printf.sprintf "unknown tag %d for %s" tag context
  | Bad_value { context; detail } ->
      Printf.sprintf "bad value in %s: %s" context detail
  | Trailing_bytes { extra } ->
      Printf.sprintf "%d trailing byte(s) after message" extra

(* ------------------------------------------------------------------ *)
(* Writers.  Range violations are programming errors on the sending
   side, so they raise [Invalid_argument] rather than being typed. *)

let w_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Proto: u8 out of range";
  Buffer.add_char b (Char.chr v)

let w_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Proto: u16 out of range";
  Buffer.add_char b (Char.chr (v lsr 8));
  Buffer.add_char b (Char.chr (v land 0xFF))

let w_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Proto: u32 out of range";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let w_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xFF))
  done

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w b v

let w_str8 b s =
  if String.length s > 0xFF then
    invalid_arg "Proto: identifier longer than 255 bytes";
  w_u8 b (String.length s);
  Buffer.add_string b s

let w_str16 b s =
  if String.length s > 0xFFFF then invalid_arg "Proto: string too long";
  w_u16 b (String.length s);
  Buffer.add_string b s

let w_list16 w b l =
  let n = List.length l in
  if n > 0xFFFF then invalid_arg "Proto: list too long";
  w_u16 b n;
  List.iter (w b) l

(* Availability: u32 horizon, then ceil(horizon/8) bytes, slot [i]
   mapped to bit [i land 7] (LSB first) of byte [i / 8]; set = free. *)
let w_avail b a =
  let h = Timetable.Availability.horizon a in
  w_u32 b h;
  let nbytes = (h + 7) / 8 in
  for byte = 0 to nbytes - 1 do
    let v = ref 0 in
    for bit = 0 to 7 do
      let slot = (byte * 8) + bit in
      if slot < h && Timetable.Availability.available a slot then
        v := !v lor (1 lsl bit)
    done;
    Buffer.add_char b (Char.chr !v)
  done

let w_policy b (p : policy) =
  w_opt w_f64 b p.deadline_ms;
  w_opt w_u32 b p.node_limit;
  w_bool b p.degrade

let reason_tag = function
  | Budget.Deadline -> 1
  | Budget.Node_limit -> 2
  | Budget.Cancelled -> 3

let rung_tag = function
  | Resilience.Exact -> 1
  | Resilience.Anytime_best -> 2
  | Resilience.Heuristic -> 3

let w_sg_solution b (s : Query.sg_solution) =
  w_list16 w_u32 b s.attendees;
  w_f64 b s.total_distance

let w_stg_solution b (s : Query.stg_solution) =
  w_list16 w_u32 b s.st_attendees;
  w_f64 b s.st_total_distance;
  w_u32 b s.start_slot

let w_answer ~v w_value b value rung gap retries reason certified trace_id =
  w_opt w_value b value;
  w_u8 b (rung_tag rung);
  w_opt w_f64 b gap;
  w_u32 b retries;
  w_opt (fun b r -> w_u8 b (reason_tag r)) b reason;
  w_bool b certified;
  (* v2 field: a v1 peer stops reading at [certified], so the byte must
     not be on the wire at all. *)
  if v >= 2 then w_u32 b (trace_id land 0xFFFFFFFF)

let w_server_error b = function
  | Overloaded { queue_depth; limit } ->
      w_u8 b 1;
      w_u32 b queue_depth;
      w_u32 b limit
  | Degraded { reason; retries } ->
      w_u8 b 2;
      w_u8 b (reason_tag reason);
      w_u32 b retries
  | Unavailable { message; retries } ->
      w_u8 b 3;
      w_str16 b message;
      w_u32 b retries
  | Bad_request { message } ->
      w_u8 b 4;
      w_str16 b message
  | Unsupported_version { server_version } ->
      w_u8 b 5;
      w_u8 b server_version

let w_request ~v b = function
  | Hello { client; speaks } ->
      w_u8 b 1;
      w_str8 b client;
      if v >= 2 then w_u8 b speaks
  | Ping s ->
      w_u8 b 2;
      w_str16 b s
  | Sgq { initiator; q; policy } ->
      w_u8 b 3;
      w_u32 b initiator;
      w_u32 b q.Query.p;
      w_u32 b q.s;
      w_u32 b q.k;
      w_opt w_policy b policy
  | Stgq { initiator; q; policy } ->
      w_u8 b 4;
      w_u32 b initiator;
      w_u32 b q.Query.p;
      w_u32 b q.s;
      w_u32 b q.k;
      w_u32 b q.m;
      w_opt w_policy b policy
  | Update_schedule { vertex; avail } ->
      w_u8 b 5;
      w_u32 b vertex;
      w_avail b avail

let w_response ~v b = function
  | Hello_ok { version = hv } ->
      w_u8 b 1;
      w_u8 b hv
  | Pong s ->
      w_u8 b 2;
      w_str16 b s
  | Sg_answer { value; rung; gap; retries; reason; certified; trace_id } ->
      w_u8 b 3;
      w_answer ~v w_sg_solution b value rung gap retries reason certified
        trace_id
  | Stg_answer { value; rung; gap; retries; reason; certified; trace_id } ->
      w_u8 b 4;
      w_answer ~v w_stg_solution b value rung gap retries reason certified
        trace_id
  | Updated { vertex } ->
      w_u8 b 5;
      w_u32 b vertex
  | Failed err ->
      w_u8 b 6;
      w_server_error b err

let check_version v =
  if v < min_version || v > version then
    invalid_arg (Printf.sprintf "Proto: cannot encode at version %d" v)

let frame ~v payload_writer msg =
  check_version v;
  let b = Buffer.create 64 in
  w_u8 b v;
  payload_writer ~v b msg;
  let len = Buffer.length b in
  if len > max_frame then invalid_arg "Proto: frame exceeds max_frame";
  let out = Buffer.create (header_bytes + len) in
  w_u32 out len;
  Buffer.add_buffer out b;
  Buffer.contents out

let encode_request ?(version = version) m = frame ~v:version w_request m
let encode_response ?(version = version) m = frame ~v:version w_response m

(* ------------------------------------------------------------------ *)
(* Readers: a cursor over an immutable string; every primitive checks
   bounds and raises the internal [Fail], converted to a [result] at
   the entry points.  Nothing here allocates proportionally to a wire
   length before the corresponding bytes are known to be present. *)

exception Fail of decode_error

type reader = { buf : string; mutable pos : int }

let need r n =
  let remaining = String.length r.buf - r.pos in
  if n > remaining then raise (Fail (Truncated { needed = n; got = remaining }))

let r_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u16 r =
  need r 2;
  let v = (Char.code r.buf.[r.pos] lsl 8) lor Char.code r.buf.[r.pos + 1] in
  r.pos <- r.pos + 2;
  v

let r_u32 r =
  need r 4;
  let v =
    (Char.code r.buf.[r.pos] lsl 24)
    lor (Char.code r.buf.[r.pos + 1] lsl 16)
    lor (Char.code r.buf.[r.pos + 2] lsl 8)
    lor Char.code r.buf.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let r_f64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code r.buf.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let r_bool ~context r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v ->
      raise
        (Fail (Bad_value { context; detail = Printf.sprintf "bool byte %d" v }))

let r_opt ~context read r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (read r)
  | v ->
      raise
        (Fail
           (Bad_value { context; detail = Printf.sprintf "presence byte %d" v }))

let r_str8 r =
  let n = r_u8 r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_str16 r =
  let n = r_u16 r in
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_list16 read r =
  let n = r_u16 r in
  List.init n (fun _ -> read r)

let r_avail r =
  let h = r_u32 r in
  let nbytes = (h + 7) / 8 in
  (* The slab allocation below is sized from the wire; insist the
     frame actually carries the bytes first (OOM cap). *)
  need r nbytes;
  let a = Timetable.Availability.create ~horizon:h in
  for slot = 0 to h - 1 do
    let byte = Char.code r.buf.[r.pos + (slot / 8)] in
    if byte land (1 lsl (slot land 7)) <> 0 then
      Timetable.Availability.set_free a slot slot
  done;
  r.pos <- r.pos + nbytes;
  a

let r_policy r =
  let deadline_ms = r_opt ~context:"policy.deadline_ms" r_f64 r in
  let node_limit = r_opt ~context:"policy.node_limit" r_u32 r in
  let degrade = r_bool ~context:"policy.degrade" r in
  { deadline_ms; node_limit; degrade }

let r_reason r =
  match r_u8 r with
  | 1 -> Budget.Deadline
  | 2 -> Budget.Node_limit
  | 3 -> Budget.Cancelled
  | tag -> raise (Fail (Bad_tag { context = "budget reason"; tag }))

let r_rung r =
  match r_u8 r with
  | 1 -> Resilience.Exact
  | 2 -> Resilience.Anytime_best
  | 3 -> Resilience.Heuristic
  | tag -> raise (Fail (Bad_tag { context = "rung"; tag }))

let r_sg_solution r =
  let attendees = r_list16 r_u32 r in
  let total_distance = r_f64 r in
  { Query.attendees; total_distance }

let r_stg_solution r =
  let st_attendees = r_list16 r_u32 r in
  let st_total_distance = r_f64 r in
  let start_slot = r_u32 r in
  { Query.st_attendees; st_total_distance; start_slot }

let r_answer ~v ~context r_value r =
  let value = r_opt ~context r_value r in
  let rung = r_rung r in
  let gap = r_opt ~context:"answer.gap" r_f64 r in
  let retries = r_u32 r in
  let reason = r_opt ~context:"answer.reason" r_reason r in
  let certified = r_bool ~context:"answer.certified" r in
  let trace_id = if v >= 2 then r_u32 r else 0 in
  (value, rung, gap, retries, reason, certified, trace_id)

let r_server_error r =
  match r_u8 r with
  | 1 ->
      let queue_depth = r_u32 r in
      let limit = r_u32 r in
      Overloaded { queue_depth; limit }
  | 2 ->
      let reason = r_reason r in
      let retries = r_u32 r in
      Degraded { reason; retries }
  | 3 ->
      let message = r_str16 r in
      let retries = r_u32 r in
      Unavailable { message; retries }
  | 4 ->
      let message = r_str16 r in
      Bad_request { message }
  | 5 ->
      let server_version = r_u8 r in
      Unsupported_version { server_version }
  | tag -> raise (Fail (Bad_tag { context = "server error"; tag }))

let r_request ~v r =
  match r_u8 r with
  | 1 ->
      let client = r_str8 r in
      let speaks = if v >= 2 then r_u8 r else 1 in
      Hello { client; speaks }
  | 2 -> Ping (r_str16 r)
  | 3 ->
      let initiator = r_u32 r in
      let p = r_u32 r in
      let s = r_u32 r in
      let k = r_u32 r in
      let policy = r_opt ~context:"sgq.policy" r_policy r in
      Sgq { initiator; q = { Query.p; s; k }; policy }
  | 4 ->
      let initiator = r_u32 r in
      let p = r_u32 r in
      let s = r_u32 r in
      let k = r_u32 r in
      let m = r_u32 r in
      let policy = r_opt ~context:"stgq.policy" r_policy r in
      Stgq { initiator; q = { Query.p; s; k; m }; policy }
  | 5 ->
      let vertex = r_u32 r in
      let avail = r_avail r in
      Update_schedule { vertex; avail }
  | tag -> raise (Fail (Bad_tag { context = "request"; tag }))

let r_response ~v r =
  match r_u8 r with
  | 1 -> Hello_ok { version = r_u8 r }
  | 2 -> Pong (r_str16 r)
  | 3 ->
      let value, rung, gap, retries, reason, certified, trace_id =
        r_answer ~v ~context:"sg_answer.value" r_sg_solution r
      in
      Sg_answer { value; rung; gap; retries; reason; certified; trace_id }
  | 4 ->
      let value, rung, gap, retries, reason, certified, trace_id =
        r_answer ~v ~context:"stg_answer.value" r_stg_solution r
      in
      Stg_answer { value; rung; gap; retries; reason; certified; trace_id }
  | 5 -> Updated { vertex = r_u32 r }
  | 6 -> Failed (r_server_error r)
  | tag -> raise (Fail (Bad_tag { context = "response"; tag }))

let decode_payload read payload =
  let r = { buf = payload; pos = 0 } in
  match
    let v = r_u8 r in
    if v < min_version || v > version then
      raise (Fail (Bad_version { got = v }));
    let msg = read ~v r in
    let extra = String.length r.buf - r.pos in
    if extra > 0 then raise (Fail (Trailing_bytes { extra }));
    msg
  with
  | msg -> Ok msg
  | exception Fail e -> Error e
  | exception e ->
      (* A decoder bug, not wire data; still never leaks an exception
         to the transport loop. *)
      Error (Bad_value { context = "decode"; detail = Printexc.to_string e })

let decode_request_payload p = decode_payload r_request p
let decode_response_payload p = decode_payload r_response p

let decode_frame_length header =
  let r = { buf = header; pos = 0 } in
  match r_u32 r with
  | len ->
      if len > max_frame then
        Error (Frame_too_large { declared = len; limit = max_frame })
      else Ok len
  | exception Fail e -> Error e

let decode_frame decode_p f =
  match decode_frame_length f with
  | Error e -> Error e
  | Ok len ->
      let body = String.length f - header_bytes in
      if body < len then
        Error (Truncated { needed = len - body; got = body })
      else if body > len then Error (Trailing_bytes { extra = body - len })
      else decode_p (String.sub f header_bytes len)

let decode_request f = decode_frame decode_request_payload f
let decode_response f = decode_frame decode_response_payload f

(* ------------------------------------------------------------------ *)
(* Equality and printing. *)

let equal_avail a b =
  let h = Timetable.Availability.horizon a in
  h = Timetable.Availability.horizon b
  &&
  let rec go i =
    i >= h
    || Timetable.Availability.available a i
       = Timetable.Availability.available b i
       && go (i + 1)
  in
  go 0

let equal_policy (a : policy) (b : policy) =
  Option.equal Float.equal a.deadline_ms b.deadline_ms
  && Option.equal Int.equal a.node_limit b.node_limit
  && Bool.equal a.degrade b.degrade

let equal_sg (a : Query.sg_solution) (b : Query.sg_solution) =
  List.equal Int.equal a.attendees b.attendees
  && Float.equal a.total_distance b.total_distance

let equal_stg (a : Query.stg_solution) (b : Query.stg_solution) =
  List.equal Int.equal a.st_attendees b.st_attendees
  && Float.equal a.st_total_distance b.st_total_distance
  && Int.equal a.start_slot b.start_slot

let equal_request (a : request) (b : request) =
  match (a, b) with
  | Hello x, Hello y ->
      String.equal x.client y.client && Int.equal x.speaks y.speaks
  | Ping x, Ping y -> String.equal x y
  | Sgq x, Sgq y ->
      Int.equal x.initiator y.initiator
      && x.q = y.q
      && Option.equal equal_policy x.policy y.policy
  | Stgq x, Stgq y ->
      Int.equal x.initiator y.initiator
      && x.q = y.q
      && Option.equal equal_policy x.policy y.policy
  | Update_schedule x, Update_schedule y ->
      Int.equal x.vertex y.vertex && equal_avail x.avail y.avail
  | (Hello _ | Ping _ | Sgq _ | Stgq _ | Update_schedule _), _ -> false

let equal_server_error (a : server_error) (b : server_error) =
  match (a, b) with
  | Overloaded x, Overloaded y ->
      Int.equal x.queue_depth y.queue_depth && Int.equal x.limit y.limit
  | Degraded x, Degraded y ->
      x.reason = y.reason && Int.equal x.retries y.retries
  | Unavailable x, Unavailable y ->
      String.equal x.message y.message && Int.equal x.retries y.retries
  | Bad_request x, Bad_request y -> String.equal x.message y.message
  | Unsupported_version x, Unsupported_version y ->
      Int.equal x.server_version y.server_version
  | ( ( Overloaded _ | Degraded _ | Unavailable _ | Bad_request _
      | Unsupported_version _ ),
      _ ) ->
      false

let equal_response (a : response) (b : response) =
  match (a, b) with
  | Hello_ok x, Hello_ok y -> Int.equal x.version y.version
  | Pong x, Pong y -> String.equal x y
  | Sg_answer x, Sg_answer y ->
      Option.equal equal_sg x.value y.value
      && x.rung = y.rung
      && Option.equal Float.equal x.gap y.gap
      && Int.equal x.retries y.retries
      && Option.equal (fun a b -> a = b) x.reason y.reason
      && Bool.equal x.certified y.certified
      && Int.equal x.trace_id y.trace_id
  | Stg_answer x, Stg_answer y ->
      Option.equal equal_stg x.value y.value
      && x.rung = y.rung
      && Option.equal Float.equal x.gap y.gap
      && Int.equal x.retries y.retries
      && Option.equal (fun a b -> a = b) x.reason y.reason
      && Bool.equal x.certified y.certified
      && Int.equal x.trace_id y.trace_id
  | Updated x, Updated y -> Int.equal x.vertex y.vertex
  | Failed x, Failed y -> equal_server_error x y
  | ( ( Hello_ok _ | Pong _ | Sg_answer _ | Stg_answer _ | Updated _
      | Failed _ ),
      _ ) ->
      false

let pp_policy ppf (p : policy) =
  Format.fprintf ppf "{deadline_ms=%a; node_limit=%a; degrade=%b}"
    (Format.pp_print_option Format.pp_print_float)
    p.deadline_ms
    (Format.pp_print_option Format.pp_print_int)
    p.node_limit p.degrade

let pp_avail ppf a =
  let h = Timetable.Availability.horizon a in
  Format.fprintf ppf "%d:" h;
  for i = 0 to h - 1 do
    Format.pp_print_char ppf
      (if Timetable.Availability.available a i then '1' else '0')
  done

let pp_request ppf = function
  | Hello { client; speaks } ->
      Format.fprintf ppf "Hello{client=%S; speaks=%d}" client speaks
  | Ping s -> Format.fprintf ppf "Ping %S" s
  | Sgq { initiator; q; policy } ->
      Format.fprintf ppf "Sgq{init=%d; p=%d; s=%d; k=%d; policy=%a}" initiator
        q.Query.p q.s q.k
        (Format.pp_print_option pp_policy)
        policy
  | Stgq { initiator; q; policy } ->
      Format.fprintf ppf "Stgq{init=%d; p=%d; s=%d; k=%d; m=%d; policy=%a}"
        initiator q.Query.p q.s q.k q.m
        (Format.pp_print_option pp_policy)
        policy
  | Update_schedule { vertex; avail } ->
      Format.fprintf ppf "Update_schedule{vertex=%d; avail=%a}" vertex pp_avail
        avail

let pp_reason ppf r =
  Format.pp_print_string ppf
    (match r with
    | Budget.Deadline -> "Deadline"
    | Budget.Node_limit -> "Node_limit"
    | Budget.Cancelled -> "Cancelled")

let pp_server_error ppf = function
  | Overloaded { queue_depth; limit } ->
      Format.fprintf ppf "Overloaded{depth=%d; limit=%d}" queue_depth limit
  | Degraded { reason; retries } ->
      Format.fprintf ppf "Degraded{reason=%a; retries=%d}" pp_reason reason
        retries
  | Unavailable { message; retries } ->
      Format.fprintf ppf "Unavailable{message=%S; retries=%d}" message retries
  | Bad_request { message } -> Format.fprintf ppf "Bad_request{%S}" message
  | Unsupported_version { server_version } ->
      Format.fprintf ppf "Unsupported_version{%d}" server_version

let pp_answer pp_value ppf
    (value, rung, gap, retries, reason, certified, trace_id) =
  Format.fprintf ppf
    "{value=%a; rung=%a; gap=%a; retries=%d; reason=%a; certified=%b; \
     trace_id=%d}"
    (Format.pp_print_option pp_value)
    value Resilience.pp_rung rung
    (Format.pp_print_option Format.pp_print_float)
    gap retries
    (Format.pp_print_option pp_reason)
    reason certified trace_id

let pp_response ppf = function
  | Hello_ok { version = v } -> Format.fprintf ppf "Hello_ok{version=%d}" v
  | Pong s -> Format.fprintf ppf "Pong %S" s
  | Sg_answer { value; rung; gap; retries; reason; certified; trace_id } ->
      Format.fprintf ppf "Sg_answer%a"
        (pp_answer Query.pp_sg_solution)
        (value, rung, gap, retries, reason, certified, trace_id)
  | Stg_answer { value; rung; gap; retries; reason; certified; trace_id } ->
      Format.fprintf ppf "Stg_answer%a"
        (pp_answer (fun ppf (s : Query.stg_solution) ->
             Format.fprintf ppf "{attendees=%a; dist=%g; start=%d}"
               (Format.pp_print_list
                  ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
                  Format.pp_print_int)
               s.st_attendees s.st_total_distance s.start_slot))
        (value, rung, gap, retries, reason, certified, trace_id)
  | Updated { vertex } -> Format.fprintf ppf "Updated{vertex=%d}" vertex
  | Failed e -> Format.fprintf ppf "Failed(%a)" pp_server_error e

(** Versioned, length-prefixed binary wire protocol for SGQ/STGQ
    serving (see docs/PROTOCOL.md for the byte-level layout).

    A frame is a 4-byte big-endian payload length followed by the
    payload; every payload starts with a one-byte protocol version and
    a one-byte message tag.  Requests and responses reuse the solver
    types ({!Query.sg_solution}, {!Resilience.rung}, {!Budget.reason})
    directly, so an answer that crossed the wire can be compared
    bit-for-bit against a direct {!Service} call.

    Decoding never raises and never allocates from attacker-controlled
    lengths: the declared frame length is capped at {!max_frame}
    before any buffer is sized, and every read is bounds-checked into
    a typed {!decode_error}. *)

open Stgq_core

(** Newest protocol version spoken by this build (currently 2: v2
    added [Hello.speaks] and the answer [trace_id]). *)
val version : int

(** Oldest version this build still decodes and encodes (currently 1).
    A connection's negotiated version is
    [min server_version client_speaks]. *)
val min_version : int

(** Hard cap on a frame's declared payload length, in bytes (1 MiB).
    Larger declarations are rejected before allocation. *)
val max_frame : int

(** Number of bytes in the frame header (the length prefix). *)
val header_bytes : int

(** Per-request solve policy carried on the wire.  [None] fields fall
    back to the server's defaults; the remaining {!Resilience.policy}
    fields (retries, backoff, seed) are server-side concerns and never
    cross the wire. *)
type policy = {
  deadline_ms : float option;
  node_limit : int option;
  degrade : bool;
}

type request =
  | Hello of { client : string; speaks : int }
      (** [client]: identifier, at most 255 bytes.  [speaks]: highest
          wire version the client understands — written from wire v2
          on, assumed 1 when the Hello arrived at v1. *)
  | Ping of string
  | Sgq of { initiator : int; q : Query.sgq; policy : policy option }
  | Stgq of { initiator : int; q : Query.stgq; policy : policy option }
  | Update_schedule of {
      vertex : int;
      avail : Timetable.Availability.t;
    }

(** Typed failure responses.  [Overloaded] is admission-control
    shedding (the request was never queued); [Degraded]/[Unavailable]
    mirror {!Resilience.error} with the carried exception flattened to
    a message. *)
type server_error =
  | Overloaded of { queue_depth : int; limit : int }
  | Degraded of { reason : Budget.reason; retries : int }
  | Unavailable of { message : string; retries : int }
  | Bad_request of { message : string }
  | Unsupported_version of { server_version : int }

type response =
  | Hello_ok of { version : int }
  | Pong of string
  | Sg_answer of {
      value : Query.sg_solution option;
      rung : Resilience.rung;
      gap : float option;
      retries : int;
      reason : Budget.reason option;
      certified : bool;
      trace_id : int;
          (** server-assigned flight-recorder trace id; 0 = none.  On
              the wire from v2 only — a v1 answer decodes with 0. *)
    }
  | Stg_answer of {
      value : Query.stg_solution option;
      rung : Resilience.rung;
      gap : float option;
      retries : int;
      reason : Budget.reason option;
      certified : bool;
      trace_id : int;  (** as for [Sg_answer] *)
    }
  | Updated of { vertex : int }
  | Failed of server_error

type decode_error =
  | Frame_too_large of { declared : int; limit : int }
  | Truncated of { needed : int; got : int }
      (** more bytes were required than the buffer holds *)
  | Bad_version of { got : int }
  | Bad_tag of { context : string; tag : int }
  | Bad_value of { context : string; detail : string }
  | Trailing_bytes of { extra : int }

val string_of_decode_error : decode_error -> string

(** {1 Encoding} — both encoders emit a complete frame (length prefix
    included).  [?version] (default {!version}) selects the wire
    version, e.g. the connection's negotiated one; fields newer than it
    are simply not written.  They raise [Invalid_argument] on
    out-of-range values (negative ids, identifiers over 255 bytes,
    lists over 65535 elements) or a [?version] outside
    [{!min_version}..{!version}]; well-typed application values always
    encode. *)

val encode_request : ?version:int -> request -> string
val encode_response : ?version:int -> response -> string

(** {1 Decoding} *)

(** [decode_frame_length header] reads the length prefix from the
    first {!header_bytes} bytes and validates it against
    {!max_frame} — call this before allocating the payload buffer. *)
val decode_frame_length : string -> (int, decode_error) result

(** [decode_request_payload p] / [decode_response_payload p] decode a
    payload (version byte onward, no length prefix). *)
val decode_request_payload : string -> (request, decode_error) result

val decode_response_payload : string -> (response, decode_error) result

(** [decode_request f] / [decode_response f] decode a complete frame
    (length prefix included), for tests and single-buffer callers. *)
val decode_request : string -> (request, decode_error) result

val decode_response : string -> (response, decode_error) result

(** {1 Equality and printing} — structural, with availabilities
    compared slot-by-slot; used by the round-trip suites and the
    bit-identical server replay checks. *)

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool
val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit

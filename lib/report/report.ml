(* Rows may be ragged; a missing cell renders as empty.  Total by
   construction — no exception handling that could swallow asserts. *)
let cell_at row c = Option.value (List.nth_opt row c) ~default:""

let table ~title ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (cell_at row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    List.mapi
      (fun c w ->
        let cell = cell_at row c in
        cell ^ String.make (w - String.length cell) ' ')
      widths
    |> String.concat "  "
    |> fun s -> String.trim (" " ^ s) |> fun s -> "  " ^ s
  in
  let sep = String.make (List.fold_left ( + ) (2 * (cols - 1)) widths + 2) '-' in
  String.concat "\n"
    (title :: sep :: render_row header :: sep :: List.map render_row rows)

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let csv ~header rows =
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map csv_field row)) (header :: rows))

let ns f =
  if f < 1e3 then Printf.sprintf "%.0fns" f
  else if f < 1e6 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if f < 1e9 then Printf.sprintf "%.1fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e9)

let time_median ?(runs = 3) f =
  let result, first = time f in
  let times = ref [ first ] in
  for _ = 2 to runs do
    let _, t = time f in
    times := t :: !times
  done;
  let sorted = List.sort compare !times in
  let median =
    match List.nth_opt sorted (List.length sorted / 2) with
    | Some t -> t
    | None -> first
  in
  (result, median)

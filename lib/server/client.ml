type t = {
  mutable fd : Unix.file_descr;
  addr : Listener.addr;
  mutable negotiated : int;
      (* wire version for every encode; starts optimistic at this
         build's newest, lowered by [hello] if the server is older *)
}

let connect (addr : Listener.addr) =
  match addr with
  | Listener.Tcp (host, port) ->
      let inet = Unix.inet_addr_of_string host in
      let sockaddr = Unix.ADDR_INET (inet, port) in
      let fd =
        Unix.socket ~cloexec:true
          (Unix.domain_of_sockaddr sockaddr)
          Unix.SOCK_STREAM 0
      in
      Unix.connect fd sockaddr;
      { fd; addr; negotiated = Proto.version }
  | Listener.Unix_path path ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      { fd; addr; negotiated = Proto.version }

let negotiated_version t = t.negotiated

let close t =
  match Unix.close t.fd with () -> () | exception Unix.Unix_error _ -> ()

(* Connect-time failures worth retrying: the server is booting (socket
   not bound yet), still replaying its WAL behind a listen backlog, or
   shedding (accepted then reset).  Anything else — bad address, refused
   permissions — fails fast. *)
let retryable_errno = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ENOENT | Unix.ETIMEDOUT
  | Unix.EAGAIN | Unix.EINTR ->
      true
  | _ -> false

let connect_retry ?(policy = Stgq_core.Resilience.default_policy) addr =
  let rec go attempt =
    match connect addr with
    | t -> Ok t
    | exception (Unix.Unix_error (errno, _, _) as e) ->
        if retryable_errno errno && attempt < policy.Stgq_core.Resilience.max_retries
        then begin
          Unix.sleepf (Stgq_core.Resilience.backoff_s policy ~attempt);
          go (attempt + 1)
        end
        else
          Error
            (Printf.sprintf "connect failed after %d attempt(s): %s" (attempt + 1)
               (Printexc.to_string e))
  in
  go 0

let rec really_write fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    really_write fd buf (off + n) (len - n)
  end

(* EOF before [n] bytes is a truncated response — the server hung up
   mid-frame (or refused to speak at all); typed, like any other
   decode failure. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error (Proto.Truncated { needed = n - off; got = off })
      | got -> go (off + got)
  in
  go 0

let request t req =
  let frame = Proto.encode_request ~version:t.negotiated req in
  really_write t.fd (Bytes.unsafe_of_string frame) 0 (String.length frame);
  match read_exact t.fd Proto.header_bytes with
  | Error e -> Error e
  | Ok header -> (
      match Proto.decode_frame_length header with
      | Error e -> Error e
      | Ok len -> (
          match read_exact t.fd len with
          | Error e -> Error e
          | Ok payload -> Proto.decode_response_payload payload))

let check_hello_ok t = function
  | Proto.Hello_ok { version }
    when version >= Proto.min_version && version <= Proto.version ->
      t.negotiated <- version;
      Ok version
  | Proto.Hello_ok { version } ->
      Error
        (Printf.sprintf "server negotiated version %d, this build speaks %d..%d"
           version Proto.min_version Proto.version)
  | Proto.Failed (Proto.Unsupported_version { server_version }) ->
      Error (Printf.sprintf "server rejected version %d (speaks %d)"
               Proto.version server_version)
  | resp ->
      Error
        (Format.asprintf "unexpected handshake response: %a" Proto.pp_response
           resp)

let hello t ~client =
  match request t (Proto.Hello { client; speaks = Proto.version }) with
  | Ok (Proto.Failed (Proto.Unsupported_version { server_version }))
    when server_version >= Proto.min_version && server_version < Proto.version
    -> (
      (* An older server rejected our newest framing and closed the
         stream; reconnect and redo the handshake at its version. *)
      close t;
      match connect t.addr with
      | fresh -> (
          t.fd <- fresh.fd;
          t.negotiated <- server_version;
          match
            request t (Proto.Hello { client; speaks = server_version })
          with
          | Ok resp -> check_hello_ok t resp
          | Error e -> Error (Proto.string_of_decode_error e))
      | exception Unix.Unix_error (errno, _, _) ->
          Error
            (Printf.sprintf "reconnect for version fallback failed: %s"
               (Unix.error_message errno)))
  | Ok resp -> check_hello_ok t resp
  | Error e -> Error (Proto.string_of_decode_error e)

(** Blocking client for the {!Proto} wire protocol — used by
    [stgq-cli query --connect], the sustained-load bench driver and
    the integration tests.

    One request in flight per connection (the protocol is strict
    request/response).  A [t] is not thread-safe; give each client
    thread its own connection, as the load harness does. *)

type t

(** [connect addr] opens a blocking connection.
    @raise Unix.Unix_error when the endpoint is unreachable. *)
val connect : Listener.addr -> t

(** [connect_retry ?policy addr] is {!connect} with the
    {!Stgq_core.Resilience} retry schedule: transient connect failures
    (refused, reset, socket path not bound yet, timeout) are retried up
    to [policy.max_retries] times with seeded-jitter exponential backoff
    ({!Stgq_core.Resilience.backoff_s}), so a client launched alongside
    a server still replaying its WAL wins the race without a hand-rolled
    sleep loop.  Non-transient errors and exhausted retries return
    [Error] with the last failure. *)
val connect_retry :
  ?policy:Stgq_core.Resilience.policy -> Listener.addr -> (t, string) result

(** [request t req] writes one frame (at the connection's negotiated
    wire version) and reads one response frame.  Decode failures and
    mid-frame EOF (the server hung up) surface as typed errors;
    [Unix.Unix_error] propagates for transport faults. *)
val request : t -> Proto.request -> (Proto.response, Proto.decode_error) result

(** [hello t ~client] performs the version handshake: sends
    {!Proto.Hello} with [speaks = Proto.version] and adopts the
    server's negotiated version for all subsequent frames on this
    connection.  When an older server rejects the newest framing
    outright (it also closes the stream), the client reconnects once
    and redoes the handshake at the server's version. *)
val hello : t -> client:string -> (int, string) result

(** The wire version used for encodes on this connection:
    [Proto.version] until {!hello} negotiates something lower. *)
val negotiated_version : t -> int

val close : t -> unit

(** Blocking client for the {!Proto} wire protocol — used by
    [stgq-cli query --connect], the sustained-load bench driver and
    the integration tests.

    One request in flight per connection (the protocol is strict
    request/response).  A [t] is not thread-safe; give each client
    thread its own connection, as the load harness does. *)

type t

(** [connect addr] opens a blocking connection.
    @raise Unix.Unix_error when the endpoint is unreachable. *)
val connect : Listener.addr -> t

(** [request t req] writes one frame and reads one response frame.
    Decode failures and mid-frame EOF (the server hung up) surface as
    typed errors; [Unix.Unix_error] propagates for transport faults. *)
val request : t -> Proto.request -> (Proto.response, Proto.decode_error) result

(** [hello t ~client] performs the version handshake: sends
    {!Proto.Hello} and checks the server answers {!Proto.Hello_ok}
    with a version this build speaks. *)
val hello : t -> client:string -> (int, string) result

val close : t -> unit

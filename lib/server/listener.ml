(* Wire-protocol query server.  See server.mli for the concurrency
   and admission-control model; frame layout lives in Proto and
   docs/PROTOCOL.md.

   The transport discipline mirrors the simplexmq agent server loop:
   read one length-prefixed frame, dispatch, write one frame back.
   Framing errors (oversized declaration, truncation, version or tag
   mismatch) get a final typed response and then the connection is
   closed — after a framing error the stream position is unknown, so
   continuing would misparse every subsequent byte. *)

open Stgq_core

type addr = Tcp of string * int | Unix_path of string

type config = {
  admission_limit : int;
  policy : Resilience.policy option;
  on_admitted : (Proto.request -> unit) option;
  store : Store.t option;
}

let default_config =
  { admission_limit = 64; policy = None; on_admitted = None; store = None }

let m_journalled = Obs.counter "server.mutations.journalled"

(* Domain-sharded, interned: safe to touch from every handler thread. *)
let m_connections = Obs.counter "server.connections"
let m_frames_in = Obs.counter "server.frames.in"
let m_frames_out = Obs.counter "server.frames.out"
let m_requests = Obs.counter "server.requests"
let m_sheds = Obs.counter "server.sheds"
let m_decode_errors = Obs.counter "server.decode_errors"
let g_inflight = Obs.gauge "server.inflight"
let h_latency = Obs.histogram "server.request.latency_ns"

type t = {
  service : Service.t;
  config : config;
  inflight : int Atomic.t;
  lock : Mutex.t;  (* guards [conns] and [threads] *)
  durable : Mutex.t;  (* serialises journal + apply, so WAL order = apply order *)
  mutable conns : Unix.file_descr list;
  mutable threads : Thread.t list;
}

let create ?(config = default_config) service =
  if config.admission_limit < 1 then
    invalid_arg "Server.create: admission_limit must be >= 1";
  {
    service;
    config;
    inflight = Atomic.make 0;
    lock = Mutex.create ();
    durable = Mutex.create ();
    conns = [];
    threads = [];
  }

(* ------------------------------------------------------------------ *)
(* Durability: journal before apply, ack only after both. *)

(* Calendar edits are validated (so an invalid request never pollutes
   the log), journalled to the WAL, and only then applied in memory —
   all under one mutex, so the log's record order is exactly the order
   the edits landed.  A crash between journal and apply is safe: the
   edit was never acked, and replay applies it, which is at worst a
   spurious (idempotent) calendar write.  When the WAL outgrows its
   threshold the same critical section checkpoints, snapshotting the
   service state it just finished mutating. *)
let durable_update_schedule t ~vertex avail =
  match t.config.store with
  | None -> Service.update_schedule t.service ~vertex avail
  | Some store ->
      let n = Service.n_vertices t.service in
      if vertex < 0 || vertex >= n then
        invalid_arg
          (Printf.sprintf "vertex %d out of range (dataset has %d members)"
             vertex n);
      if Timetable.Availability.horizon avail <> Service.horizon t.service then
        invalid_arg
          (Printf.sprintf "schedule horizon %d does not match served horizon %d"
             (Timetable.Availability.horizon avail)
             (Service.horizon t.service));
      Mutex.protect t.durable (fun () ->
          let wal0 = Obs.Gauge.value (Obs.gauge "store.wal.bytes") in
          Store.append store (Store.Schedule_set { vertex; avail });
          Obs.Counter.incr m_journalled;
          Obs.Events.emit ~kind:"schedule.update"
            [
              ("vertex", string_of_int vertex);
              ( "journalled_bytes",
                string_of_int
                  (Stdlib.max 0
                     (Obs.Gauge.value (Obs.gauge "store.wal.bytes") - wal0)) );
            ];
          Service.update_schedule t.service ~vertex avail;
          if Store.should_checkpoint store then
            Store.checkpoint store
              (Store.state_of_instance (Service.graph t.service)
                 (Service.schedules t.service)))

(* ------------------------------------------------------------------ *)
(* Transport. *)

let rec really_write fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    really_write fd buf (off + n) (len - n)
  end

let send_string fd s =
  really_write fd (Bytes.unsafe_of_string s) 0 (String.length s)

(* [None] on EOF at a frame boundary (orderly close); raises
   [End_of_file] on EOF mid-frame. *)
let read_exact fd n ~eof_ok =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 && eof_ok then None else raise End_of_file
      | got -> go (off + got)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Dispatch. *)

let solve_policy t (wire : Proto.policy option) =
  match wire with
  | None -> t.config.policy
  | Some p ->
      let base =
        Option.value t.config.policy ~default:Resilience.default_policy
      in
      Some
        {
          base with
          Resilience.deadline_ms = p.Proto.deadline_ms;
          node_limit = p.node_limit;
          degrade = p.degrade;
        }

let of_error : Resilience.error -> Proto.server_error = function
  | Resilience.Degraded { reason; retries } -> Proto.Degraded { reason; retries }
  | Resilience.Unavailable { error; retries } ->
      Proto.Unavailable { message = Printexc.to_string error; retries }

let check_initiator t initiator =
  let n = Service.n_vertices t.service in
  if initiator < 0 || initiator >= n then
    invalid_arg
      (Printf.sprintf "initiator %d out of range (dataset has %d members)"
         initiator n)

(* The work half of the protocol: queries and calendar edits.  Runs
   with an admission slot held.  [Invalid_argument] is user error
   (range/parameter validation in Query/Service) and maps to
   [Bad_request]; anything else a solver path leaks maps to
   [Unavailable] rather than tearing the connection down. *)
let solve t ~trace_id (req : Proto.request) : Proto.response =
  match
    match req with
    | Proto.Sgq { initiator; q; policy } ->
        check_initiator t initiator;
        let policy = solve_policy t policy in
        (match Service.sgq_r ?policy t.service ~initiator q with
        | Ok a ->
            Proto.Sg_answer
              {
                value = a.Resilience.value;
                rung = a.rung;
                gap = a.gap;
                retries = a.retries;
                reason = a.reason;
                certified = true;
                trace_id;
              }
        | Error e -> Proto.Failed (of_error e))
    | Proto.Stgq { initiator; q; policy } ->
        check_initiator t initiator;
        let policy = solve_policy t policy in
        (match Service.stgq_r ?policy t.service ~initiator q with
        | Ok a ->
            Proto.Stg_answer
              {
                value = a.Resilience.value;
                rung = a.rung;
                gap = a.gap;
                retries = a.retries;
                reason = a.reason;
                certified = true;
                trace_id;
              }
        | Error e -> Proto.Failed (of_error e))
    | Proto.Update_schedule { vertex; avail } ->
        durable_update_schedule t ~vertex avail;
        Proto.Updated { vertex }
    | Proto.Hello _ | Proto.Ping _ ->
        (* handled before admission; unreachable *)
        invalid_arg "Server.solve: control request"
  with
  | resp -> resp
  | exception Invalid_argument msg ->
      Proto.Failed (Proto.Bad_request { message = msg })
  | exception e ->
      Proto.Failed
        (Proto.Unavailable { message = Printexc.to_string e; retries = 0 })

let request_kind = function
  | Proto.Sgq _ -> "sgq"
  | Proto.Stgq _ -> "stgq"
  | Proto.Update_schedule _ -> "update_schedule"
  | Proto.Hello _ -> "hello"
  | Proto.Ping _ -> "ping"

(* The server-side envelope: one "server.request" span rooting the
   whole solve (so retained traces show queueing and response assembly,
   not just solver time), with the trace id captured for the wire
   answer and the flight recorder re-stitched once the span closes. *)
let solve_traced t (req : Proto.request) : Proto.response =
  let tid = ref 0 in
  let resp =
    Obs.Trace.with_span "server.request"
      ~attrs:[ ("request", request_kind req) ]
      (fun () ->
        (match Obs.Trace.current () with
        | Some c -> tid := c.Obs.Trace.trace_id
        | None -> ());
        solve t ~trace_id:!tid req)
  in
  Obs.Flightrec.refresh !tid;
  resp

let admit t (req : Proto.request) : Proto.response =
  let depth = Atomic.fetch_and_add t.inflight 1 in
  if depth >= t.config.admission_limit then begin
    ignore (Atomic.fetch_and_add t.inflight (-1) : int);
    Obs.Counter.incr m_sheds;
    Obs.Events.emit ~kind:"server.shed"
      [
        ("request", "\"" ^ request_kind req ^ "\"");
        ("queue_depth", string_of_int depth);
        ("limit", string_of_int t.config.admission_limit);
      ];
    Proto.Failed
      (Proto.Overloaded
         { queue_depth = depth; limit = t.config.admission_limit })
  end
  else
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add t.inflight (-1) : int))
      (fun () ->
        Obs.Gauge.set g_inflight (depth + 1);
        (match t.config.on_admitted with Some hook -> hook req | None -> ());
        Obs.Counter.incr m_requests;
        let t0 = Obs.now_ns () in
        let resp = solve_traced t req in
        Obs.Histogram.observe h_latency (Obs.now_ns () -. t0);
        resp)

let dispatch t (req : Proto.request) : Proto.response =
  match req with
  | Proto.Hello { client = _; speaks } ->
      (* Negotiate down to what both sides decode; a v1 Hello arrives
         with [speaks = 1]. *)
      let speaks = Stdlib.max Proto.min_version speaks in
      Proto.Hello_ok { version = Stdlib.min Proto.version speaks }
  | Proto.Ping s -> Proto.Pong s
  | Proto.Sgq _ | Proto.Stgq _ | Proto.Update_schedule _ -> admit t req

(* ------------------------------------------------------------------ *)
(* Connection handling. *)

let send_response ?version fd resp =
  send_string fd (Proto.encode_response ?version resp);
  Obs.Counter.incr m_frames_out

(* One iteration: [`Continue] after a clean request/response exchange,
   [`Close] after EOF or a framing error (final response already
   sent). *)
let serve_one t fd =
  match read_exact fd Proto.header_bytes ~eof_ok:true with
  | None -> `Close
  | Some header -> (
      match Proto.decode_frame_length header with
      | Error e ->
          Obs.Counter.incr m_decode_errors;
          send_response ~version:Proto.min_version fd
            (Proto.Failed
               (Proto.Bad_request { message = Proto.string_of_decode_error e }));
          `Close
      | Ok len -> (
          match read_exact fd len ~eof_ok:false with
          | None -> `Close
          | Some payload -> (
              Obs.Counter.incr m_frames_in;
              match Proto.decode_request_payload payload with
              | Ok req ->
                  (* Answer at the version the request arrived at: a v1
                     peer gets v1 bytes back (no trace-id field), a v2
                     peer the full answer.  The payload is non-empty —
                     its version byte just decoded. *)
                  let arrived = Char.code payload.[0] in
                  send_response ~version:arrived fd (dispatch t req);
                  `Continue
              | Error (Proto.Bad_version _) ->
                  Obs.Counter.incr m_decode_errors;
                  send_response ~version:Proto.min_version fd
                    (Proto.Failed
                       (Proto.Unsupported_version
                          { server_version = Proto.version }));
                  `Close
              | Error e ->
                  Obs.Counter.incr m_decode_errors;
                  send_response ~version:Proto.min_version fd
                    (Proto.Failed
                       (Proto.Bad_request
                          { message = Proto.string_of_decode_error e }));
                  `Close)))

let handle_conn t fd =
  Obs.Counter.incr m_connections;
  let rec loop () = match serve_one t fd with `Continue -> loop () | `Close -> () in
  (* Peer resets and a listener-initiated shutdown both surface as
     Unix errors or EOF mid-frame; either way the connection is done. *)
  match loop () with
  | () -> ()
  | exception (End_of_file | Unix.Unix_error _) -> ()

let close_quiet fd =
  match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ()

let shutdown_quiet fd =
  match Unix.shutdown fd Unix.SHUTDOWN_ALL with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let spawn_handler t fd =
  Mutex.protect t.lock (fun () -> t.conns <- fd :: t.conns);
  let thread =
    Thread.create
      (fun () ->
        Fun.protect
          ~finally:(fun () ->
            close_quiet fd;
            Mutex.protect t.lock (fun () ->
                t.conns <- List.filter (fun c -> not (c = fd)) t.conns))
          (fun () -> handle_conn t fd))
      ()
  in
  Mutex.protect t.lock (fun () -> t.threads <- thread :: t.threads)

(* ------------------------------------------------------------------ *)
(* Listening. *)

let unlink_quiet path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let bind_listen addr =
  match addr with
  | Tcp (host, port) ->
      let inet = Unix.inet_addr_of_string host in
      let sock = Unix.socket (Unix.domain_of_sockaddr (Unix.ADDR_INET (inet, port))) Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (inet, port));
      Unix.listen sock 64;
      (sock, fun () -> close_quiet sock)
  | Unix_path path ->
      unlink_quiet path;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      ( sock,
        fun () ->
          close_quiet sock;
          unlink_quiet path )

let addr_string = function
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port
  | Unix_path path -> "unix:" ^ path

let resolved_addr addr sock =
  match (addr, Unix.getsockname sock) with
  | Tcp (host, 0), Unix.ADDR_INET (_, port) -> Tcp (host, port)
  | _ -> addr

let join_handlers t =
  let threads = Mutex.protect t.lock (fun () -> t.threads) in
  List.iter Thread.join threads;
  Mutex.protect t.lock (fun () -> t.threads <- [])

(* Accept until the listener dies ([stop] closes it under us — accept
   then fails with EBADF/EINVAL, which is the shutdown signal) or the
   connection budget is spent. *)
let accept_loop ?max_connections t sock =
  let rec go accepted =
    let budget_left =
      match max_connections with None -> true | Some m -> accepted < m
    in
    if budget_left then
      match Unix.accept ~cloexec:true sock with
      | fd, _peer ->
          spawn_handler t fd;
          go (accepted + 1)
      | exception Unix.Unix_error _ -> ()
  in
  go 0

let serve ?max_connections t addr =
  let sock, cleanup = bind_listen addr in
  Fun.protect ~finally:cleanup (fun () ->
      accept_loop ?max_connections t sock;
      join_handlers t)

type handle = {
  server : t;
  bound : addr;
  listener : Unix.file_descr;
  cleanup : unit -> unit;
  accept_domain : unit Domain.t;
  stopped : bool Atomic.t;
}

let start t addr =
  let sock, cleanup = bind_listen addr in
  let bound = resolved_addr addr sock in
  Obs.Events.emit ~kind:"server.start"
    [
      ("addr", "\"" ^ Obs.json_escape (addr_string bound) ^ "\"");
      ("admission_limit", string_of_int t.config.admission_limit);
    ];
  let accept_domain = Domain.spawn (fun () -> accept_loop t sock) in
  {
    server = t;
    bound;
    listener = sock;
    cleanup;
    accept_domain;
    stopped = Atomic.make false;
  }

let bound_addr h = h.bound

let stop h =
  if not (Atomic.exchange h.stopped true) then begin
    (* [close] alone does not wake a thread blocked in [accept] on
       Linux; [shutdown] does (accept returns EINVAL). *)
    shutdown_quiet h.listener;
    h.cleanup ();
    (* Accept fails once the listener is closed; joining the domain
       first guarantees no handler spawns after the sweep below. *)
    Domain.join h.accept_domain;
    (* Unblock handler threads parked in [Unix.read]. *)
    let conns = Mutex.protect h.server.lock (fun () -> h.server.conns) in
    List.iter shutdown_quiet conns;
    join_handlers h.server;
    Obs.Events.emit ~kind:"server.stop"
      [ ("addr", "\"" ^ Obs.json_escape (addr_string h.bound) ^ "\"") ]
  end

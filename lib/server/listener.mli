(** The binary wire-protocol query server (docs/PROTOCOL.md).

    A stdlib-Unix accept loop that speaks {!Proto} frames and routes
    every request through an existing {!Service}, so per-request
    deadlines, the {!Resilience} degradation ladder, certification and
    {!Obs.Trace} spans all apply to wire queries exactly as they do to
    in-process calls — answers are bit-identical by construction.

    Concurrency model: one background accept domain ({!start}), one
    systhread per connection.  Handler threads block in [Unix.read]
    and in pool futures with the runtime lock released, so solves for
    different connections proceed in parallel through the service's
    domain pool.

    Admission control: a single in-flight counter over all work
    requests (queries and calendar edits).  When [admission_limit]
    requests are already executing, new work is shed immediately with
    a typed {!Proto.Overloaded} response carrying the observed depth —
    the connection stays open, the request is never queued.  Sheds are
    counted in [server.sheds]; peak concurrency is the high-water mark
    of the [server.inflight] gauge. *)

open Stgq_core

type addr = Tcp of string * int | Unix_path of string

type config = {
  admission_limit : int;  (** max concurrently-executing work requests *)
  policy : Resilience.policy option;
      (** default solve policy when a request carries none; wire
          policies override its deadline/node-limit/degrade fields *)
  on_admitted : (Proto.request -> unit) option;
      (** test hook, run while the admission slot is held and before
          the solve starts — lets a test pin a request in flight
          deterministically *)
  store : Store.t option;
      (** durable state: when set, every calendar edit is validated,
          journalled to the store's WAL, and only then applied in
          memory — the [Updated] ack means the edit survives a crash.
          Journal + apply run under one mutex so log order equals apply
          order, and the same critical section checkpoints (snapshot +
          WAL truncate) whenever the log outgrows the store's
          threshold. *)
}

(** [admission_limit = 64], no default policy, no hook, no store. *)
val default_config : config

type t

val create : ?config:config -> Service.t -> t

(** [serve ?max_connections t addr] binds, listens and accepts on the
    calling thread until [max_connections] connections have been
    handled (forever when omitted).  Handler threads are joined and
    the listener closed before returning. *)
val serve : ?max_connections:int -> t -> addr -> unit

(** {1 Background serving} — used by tests, the bench harness and
    anything else that needs the server and clients in one process. *)

type handle

(** [start t addr] binds and spawns the accept loop on a fresh domain.
    [Tcp (host, 0)] binds an ephemeral port; read it back with
    {!bound_addr}. *)
val start : t -> addr -> handle

(** The address actually bound (ephemeral port resolved). *)
val bound_addr : handle -> addr

(** [stop h] closes the listener, shuts down live connections, joins
    every handler thread and the accept domain.  Idempotent. *)
val stop : handle -> unit

(* The public face of the serving library: the wire-protocol listener
   re-exported flat — Server.create, Server.start, Server.serve, ... —
   plus the client as a submodule. *)

include Listener
module Client = Client

(** The wire-protocol query server: {!Listener} re-exported as the
    library's main module, plus the blocking {!Client}.  See
    docs/PROTOCOL.md for the frame format and listener.mli for the
    concurrency and admission-control model. *)

include module type of struct
  include Listener
end

module Client = Client

let distances g ~src ~max_edges =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n then invalid_arg "Bounded_dist.distances: src out of range";
  if max_edges < 0 then invalid_arg "Bounded_dist.distances: negative max_edges";
  let prev = Array.make n infinity in
  prev.(src) <- 0.;
  let next = Array.copy prev in
  let round = ref 0 in
  let changed = ref true in
  (* Once a round improves nothing the DP has reached its fixpoint, so
     the remaining rounds would only copy buffers back and forth. *)
  while !changed && !round < max_edges do
    incr round;
    changed := false;
    Array.blit prev 0 next 0 n;
    for v = 0 to n - 1 do
      Graph.iter_neighbors g v (fun u w ->
          let through = prev.(u) +. w in
          if through < next.(v) then begin
            next.(v) <- through;
            changed := true
          end)
    done;
    Array.blit next 0 prev 0 n
  done;
  prev

(* Keep every round's distance array so paths can be reconstructed by
   walking hop counts backwards. *)
let distance_rounds g ~src ~max_edges =
  let n = Graph.n_vertices g in
  let rounds = Array.make (max_edges + 1) [||] in
  rounds.(0) <- Array.make n infinity;
  rounds.(0).(src) <- 0.;
  for h = 1 to max_edges do
    let prev = rounds.(h - 1) in
    let next = Array.copy prev in
    for v = 0 to n - 1 do
      Graph.iter_neighbors g v (fun u w ->
          let through = prev.(u) +. w in
          if through < next.(v) then next.(v) <- through)
    done;
    rounds.(h) <- next
  done;
  rounds

let shortest_path g ~src ~max_edges ~dst =
  let n = Graph.n_vertices g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Bounded_dist.shortest_path: vertex out of range";
  if max_edges < 0 then invalid_arg "Bounded_dist.shortest_path: negative max_edges";
  let rounds = distance_rounds g ~src ~max_edges in
  let total = rounds.(max_edges).(dst) in
  if not (Float.is_finite total) then None
  else begin
    (* Walk back from (dst, max_edges); at each step either the same
       distance was already achievable with fewer hops, or some neighbour
       provides the last edge. *)
    let rec back v h acc =
      if v = src && rounds.(h).(v) = 0. then v :: acc
      else if h > 0 && rounds.(h - 1).(v) = rounds.(h).(v) then back v (h - 1) acc
      else begin
        let found = ref None in
        Graph.iter_neighbors g v (fun u w ->
            if !found = None && h > 0
               && Float.abs (rounds.(h - 1).(u) +. w -. rounds.(h).(v)) < 1e-12
            then found := Some u);
        match !found with
        | Some u -> back u (h - 1) (v :: acc)
        | None -> assert false (* a finite DP value always has a witness *)
      end
    in
    Some (back dst max_edges [], total)
  end

let reachable g ~src ~max_edges =
  let d = distances g ~src ~max_edges in
  let acc = ref [] in
  for v = Graph.n_vertices g - 1 downto 0 do
    if Float.is_finite d.(v) then acc := v :: !acc
  done;
  !acc

(** Hop-bounded shortest distances (Definition 1 of the paper).

    The {e i-edge minimum distance} between [v] and the source [q] is the
    total weight of the cheapest path from [q] to [v] using at most [i]
    edges.  SGQ's social radius constraint requires [d^s_{v,q}] — note this
    differs both from the unbounded shortest path (which may need more than
    [s] edges) and from the minimum-hop path (which may be heavier). *)

(** [distances g ~src ~max_edges] is the array [d] with [d.(v)] the
    [max_edges]-edge minimum distance from [src] to [v]; [infinity] when no
    path of at most [max_edges] edges exists.  [d.(src) = 0].
    Runs the dynamic program of Definition 1: up to [max_edges]
    synchronous relaxation rounds over two buffers (in-place relaxation
    would let paths exceed the hop bound), stopping early once a round
    improves no distance — [max_edges] beyond the graph's hop diameter
    costs nothing extra.
    @raise Invalid_argument if [src] is out of range or [max_edges < 0]. *)
val distances : Graph.t -> src:int -> max_edges:int -> float array

(** [reachable g ~src ~max_edges] lists vertices at finite [max_edges]-edge
    distance from [src] (including [src]), in increasing id order. *)
val reachable : Graph.t -> src:int -> max_edges:int -> int list

(** [shortest_path g ~src ~max_edges ~dst] is [Some (path, distance)]
    where [path] is a minimum-distance path from [src] to [dst] using at
    most [max_edges] edges ([src] first, [dst] last), or [None] when
    [dst] is out of reach.  [distance] equals
    [(distances g ~src ~max_edges).(dst)]. *)
val shortest_path :
  Graph.t -> src:int -> max_edges:int -> dst:int -> (int list * float) option

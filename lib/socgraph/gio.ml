exception Parse_error of { file : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; msg } ->
        Some (Printf.sprintf "Gio.Parse_error: %s:%d: %s" file line msg)
    | _ -> None)

let fail ~file ~line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { file; line; msg })) fmt

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# vertices %d\n" (Graph.n_vertices g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" u v w))
    (Graph.edges g);
  Buffer.contents buf

let of_string ?(file = "<string>") s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let edges = ref [] in
  (* Semantic checks run per line, so a violation (self-loop, vertex out
     of range, non-positive weight) is reported with its source line
     rather than surfacing from graph construction without one. *)
  let check_edge ~line (u, v, w) =
    if !n < 0 then fail ~file ~line "edge before '# vertices <n>' header";
    if u = v then fail ~file ~line "self-loop at %d" u;
    if u < 0 || u >= !n || v < 0 || v >= !n then
      fail ~file ~line "edge (%d,%d) out of [0,%d)" u v !n;
    if not (Float.is_finite w) || w <= 0. then
      fail ~file ~line "weight %g of (%d,%d) not positive" w u v
  in
  let parse_line idx line =
    let line = String.trim line in
    if line = "" then ()
    else if String.length line > 0 && line.[0] = '#' then begin
      match String.split_on_char ' ' line with
      | [ "#"; "vertices"; count ] -> (
          match int_of_string_opt count with
          | Some c when c >= 0 -> n := c
          | _ -> fail ~file ~line:idx "bad vertex count %S" count)
      | _ -> ()
    end
    else
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ u; v; w ] -> (
          match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w) with
          | Some u, Some v, Some w ->
              check_edge ~line:idx (u, v, w);
              edges := (u, v, w) :: !edges
          | _ -> fail ~file ~line:idx "malformed edge")
      | _ -> fail ~file ~line:idx "malformed line"
  in
  List.iteri (fun i line -> parse_line (i + 1) line) lines;
  if !n < 0 then
    fail ~file ~line:(List.length lines) "missing '# vertices <n>' header";
  (* Belt and braces: the checks above make construction total, but any
     residual [Invalid_argument] must still leave as a typed error. *)
  match Graph.of_edges !n !edges with
  | g -> g
  | exception Invalid_argument msg -> fail ~file ~line:0 "%s" msg

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~file:path (In_channel.input_all ic))

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# vertices %d\n" (Graph.n_vertices g));
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "%d %d %.17g\n" u v w))
    (Graph.edges g);
  Buffer.contents buf

let of_string ?(file = "<string>") s =
  let lines = String.split_on_char '\n' s in
  let n = ref (-1) in
  let edges = ref [] in
  let parse_line idx line =
    let line = String.trim line in
    if line = "" then ()
    else if String.length line > 0 && line.[0] = '#' then begin
      match String.split_on_char ' ' line with
      | [ "#"; "vertices"; count ] -> (
          match int_of_string_opt count with
          | Some c when c >= 0 -> n := c
          | _ ->
              failwith (Printf.sprintf "Gio: %s:%d: bad vertex count" file idx))
      | _ -> ()
    end
    else
      match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
      | [ u; v; w ] -> (
          match (int_of_string_opt u, int_of_string_opt v, float_of_string_opt w) with
          | Some u, Some v, Some w -> edges := (u, v, w) :: !edges
          | _ -> failwith (Printf.sprintf "Gio: %s:%d: malformed edge" file idx))
      | _ -> failwith (Printf.sprintf "Gio: %s:%d: malformed line" file idx)
  in
  List.iteri (fun i line -> parse_line (i + 1) line) lines;
  if !n < 0 then
    failwith
      (Printf.sprintf "Gio: %s: missing '# vertices <n>' header" file);
  Graph.of_edges !n !edges

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~file:path (In_channel.input_all ic))

(** Plain-text edge-list persistence.

    Format: a header line ["# vertices <n>"] followed by one
    ["<u> <v> <w>"] line per undirected edge; blank lines and lines
    beginning with ['#'] are ignored on input (except the required
    header). *)

(** [to_string g] serialises [g]. *)
val to_string : Graph.t -> string

(** [of_string ?file s] parses a graph; [file] (default ["<string>"])
    names the source in error messages.
    @raise Failure on malformed input, as ["Gio: <file>:<line>: <msg>"]. *)
val of_string : ?file:string -> string -> Graph.t

(** [save g path] writes [to_string g] to [path]. *)
val save : Graph.t -> string -> unit

(** [load path] reads and parses [path]. *)
val load : string -> Graph.t

(** Plain-text edge-list persistence.

    Format: a header line ["# vertices <n>"] followed by one
    ["<u> <v> <w>"] line per undirected edge; blank lines and lines
    beginning with ['#'] are ignored on input (except the required
    header). *)

(** Raised on malformed input — syntactic (unparsable tokens) and
    semantic (self-loops, vertices outside [[0, n)], non-positive
    weights, missing header) alike, so corrupt files never surface as
    [Failure] or [Invalid_argument].  [file] is the path given to
    {!load} (or ["<string>"], or the [?file] passed to {!of_string});
    [line] is 1-based.  A [Printexc] printer is registered, so an
    uncaught error still prints as [file:line: message]. *)
exception Parse_error of { file : string; line : int; msg : string }

(** [to_string g] serialises [g]. *)
val to_string : Graph.t -> string

(** [of_string ?file s] parses a graph.
    @raise Parse_error on malformed input. *)
val of_string : ?file:string -> string -> Graph.t

(** [save g path] writes [to_string g] to [path]. *)
val save : Graph.t -> string -> unit

(** [load path] reads and parses [path].
    @raise Parse_error with [file = path] on malformed input. *)
val load : string -> Graph.t

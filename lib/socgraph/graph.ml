type edge = int * int * float

(* Compressed sparse row: neighbours of [v] live at indices
   [row.(v) .. row.(v+1) - 1] of [adj]/[wgt], sorted by neighbour id. *)
type t = {
  n : int;
  m : int;
  row : int array;
  adj : int array;
  wgt : float array;
}

let n_vertices g = g.n
let n_edges g = g.m
let degree g v = g.row.(v + 1) - g.row.(v)

let validate_edge n (u, v, w) =
  if u = v then invalid_arg (Printf.sprintf "Graph: self-loop at %d" u);
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg (Printf.sprintf "Graph: edge (%d,%d) out of [0,%d)" u v n);
  if not (Float.is_finite w) || w <= 0. then
    invalid_arg (Printf.sprintf "Graph: weight %g of (%d,%d) not positive" w u v)

let of_edges n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative vertex count";
  List.iter (validate_edge n) edges;
  (* Deduplicate, keeping the smallest weight per unordered pair. *)
  let tbl = Hashtbl.create (List.length edges * 2) in
  let add (u, v, w) =
    let key = if u < v then (u, v) else (v, u) in
    match Hashtbl.find_opt tbl key with
    | Some w' when w' <= w -> ()
    | _ -> Hashtbl.replace tbl key w
  in
  List.iter add edges;
  let m = Hashtbl.length tbl in
  let deg = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) _ ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    tbl;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let adj = Array.make (max 1 (2 * m)) 0 in
  let wgt = Array.make (max 1 (2 * m)) 0. in
  let cursor = Array.copy row in
  Hashtbl.iter
    (fun (u, v) w ->
      adj.(cursor.(u)) <- v;
      wgt.(cursor.(u)) <- w;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      wgt.(cursor.(v)) <- w;
      cursor.(v) <- cursor.(v) + 1)
    tbl;
  (* Sort each row by neighbour id (weights follow). *)
  for v = 0 to n - 1 do
    let lo = row.(v) and hi = row.(v + 1) in
    let pairs = Array.init (hi - lo) (fun i -> (adj.(lo + i), wgt.(lo + i))) in
    Array.sort compare pairs;
    Array.iteri
      (fun i (u, w) ->
        adj.(lo + i) <- u;
        wgt.(lo + i) <- w)
      pairs
  done;
  { n; m; row; adj; wgt }

(* Build directly from columnar edge arrays already in canonical order:
   u < v per edge, (u, v) strictly ascending.  Two counting passes over
   the arrays, no hashtable — because the input order is the order
   [edges] emits, every CSR row comes out sorted without a per-row sort.
   This is the snapshot loader's single-pass path: the codec validates
   byte-level shape, this validates graph-level shape, and the arrays
   flow straight into CSR. *)
let of_sorted_arrays ~n ~us ~vs ~ws =
  if n < 0 then invalid_arg "Graph.of_sorted_arrays: negative vertex count";
  let m = Array.length us in
  if Array.length vs <> m || Array.length ws <> m then
    invalid_arg "Graph.of_sorted_arrays: column lengths differ";
  for i = 0 to m - 1 do
    validate_edge n (us.(i), vs.(i), ws.(i));
    if us.(i) >= vs.(i) then
      invalid_arg
        (Printf.sprintf "Graph.of_sorted_arrays: edge (%d,%d) not u < v" us.(i)
           vs.(i));
    if i > 0 && (us.(i - 1) > us.(i) || (us.(i - 1) = us.(i) && vs.(i - 1) >= vs.(i)))
    then
      invalid_arg
        (Printf.sprintf
           "Graph.of_sorted_arrays: edges not strictly ascending at index %d" i)
  done;
  let deg = Array.make (max 1 n) 0 in
  for i = 0 to m - 1 do
    deg.(us.(i)) <- deg.(us.(i)) + 1;
    deg.(vs.(i)) <- deg.(vs.(i)) + 1
  done;
  let row = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row.(v + 1) <- row.(v) + deg.(v)
  done;
  let adj = Array.make (max 1 (2 * m)) 0 in
  let wgt = Array.make (max 1 (2 * m)) 0. in
  let cursor = Array.copy row in
  (* In ascending (u, v) order, vertex [x] receives first its smaller
     neighbours (from edges (y, x), y ascending) and then its larger
     ones (from edges (x, v'), v' ascending) — rows are born sorted. *)
  for i = 0 to m - 1 do
    let u = us.(i) and v = vs.(i) and w = ws.(i) in
    adj.(cursor.(u)) <- v;
    wgt.(cursor.(u)) <- w;
    cursor.(u) <- cursor.(u) + 1;
    adj.(cursor.(v)) <- u;
    wgt.(cursor.(v)) <- w;
    cursor.(v) <- cursor.(v) + 1
  done;
  { n; m; row; adj; wgt }

(* Binary search for [u] within the sorted row of [v]; returns slot or -1. *)
let find_slot g v u =
  let lo = ref g.row.(v) and hi = ref (g.row.(v + 1) - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = g.adj.(mid) in
    if x = u then begin
      res := mid;
      lo := !hi + 1
    end
    else if x < u then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let adjacent g u v = u <> v && find_slot g u v >= 0

let edge_weight g u v =
  if u = v then None
  else
    let s = find_slot g u v in
    if s < 0 then None else Some g.wgt.(s)

let iter_neighbors g v f =
  for i = g.row.(v) to g.row.(v + 1) - 1 do
    f g.adj.(i) g.wgt.(i)
  done

let fold_neighbors g v f init =
  let acc = ref init in
  iter_neighbors g v (fun u w -> acc := f u w !acc);
  !acc

let neighbors g v = List.rev (fold_neighbors g v (fun u w acc -> (u, w) :: acc) [])
let neighbor_ids g v = List.map fst (neighbors g v)

let edges g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    iter_neighbors g v (fun u w -> if v < u then acc := (v, u, w) :: !acc)
  done;
  !acc

let neighbor_bitset g v =
  let b = Bitset.create g.n in
  iter_neighbors g v (fun u _ -> Bitset.set b u);
  b

let induced g vs =
  let to_sub = Array.make g.n (-1) in
  let count = ref 0 in
  List.iter
    (fun v ->
      if v < 0 || v >= g.n then invalid_arg "Graph.induced: vertex out of range";
      if to_sub.(v) < 0 then begin
        to_sub.(v) <- !count;
        incr count
      end)
    vs;
  let of_sub = Array.make !count 0 in
  Array.iteri (fun v s -> if s >= 0 then of_sub.(s) <- v) to_sub;
  let sub_edges = ref [] in
  Array.iter
    (fun v ->
      iter_neighbors g v (fun u w ->
          if v < u && to_sub.(u) >= 0 then
            sub_edges := (to_sub.(v), to_sub.(u), w) :: !sub_edges))
    of_sub;
  (of_edges !count !sub_edges, to_sub, of_sub)

let pp ppf g = Format.fprintf ppf "graph(%d vertices, %d edges)" g.n g.m

let pp_full ppf g =
  pp ppf g;
  List.iter (fun (u, v, w) -> Format.fprintf ppf "@\n%d -- %d  (%g)" u v w) (edges g)

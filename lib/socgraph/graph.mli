(** Immutable weighted undirected graphs over vertices [0 .. n-1].

    Edge weights model social distance: strictly positive floats, smaller =
    socially closer.  The representation is a compressed sparse row
    adjacency with neighbour lists sorted by vertex id, giving
    [O(log deg)] adjacency tests and cache-friendly neighbour scans — the
    two operations SGSelect/STGSelect perform innermost. *)

type t

(** A weighted undirected edge [(u, v, w)]; [u < v] in normalised output. *)
type edge = int * int * float

(** [of_edges n edges] builds a graph with [n] vertices.  Duplicate edges
    keep the smallest weight; orientation of input pairs is irrelevant.
    @raise Invalid_argument on self-loops, out-of-range endpoints,
    non-positive or non-finite weights. *)
val of_edges : int -> edge list -> t

(** [of_sorted_arrays ~n ~us ~vs ~ws] builds a graph from columnar edge
    arrays already in canonical order: [us.(i) < vs.(i)] and [(u, v)]
    pairs strictly ascending — the order {!edges} emits.  Two counting
    passes, no hashtable and no per-row sort; this is the snapshot
    loader's single-pass path into CSR.
    @raise Invalid_argument if a column length differs, an edge violates
    {!of_edges}'s invariants, or the order is not strictly ascending. *)
val of_sorted_arrays :
  n:int -> us:int array -> vs:int array -> ws:float array -> t

(** [n_vertices g] is the number of vertices (isolated ones included). *)
val n_vertices : t -> int

(** [n_edges g] is the number of undirected edges. *)
val n_edges : t -> int

(** [degree g v] is the number of neighbours of [v]. *)
val degree : t -> int -> int

(** [adjacent g u v] tests whether edge [{u,v}] exists ([false] if [u = v]). *)
val adjacent : t -> int -> int -> bool

(** [edge_weight g u v] is [Some w] when [{u,v}] exists. *)
val edge_weight : t -> int -> int -> float option

(** [iter_neighbors g v f] applies [f u w] for each neighbour [u] of [v] in
    increasing [u] order. *)
val iter_neighbors : t -> int -> (int -> float -> unit) -> unit

(** [fold_neighbors g v f init] folds [f u w acc] over neighbours of [v]. *)
val fold_neighbors : t -> int -> (int -> float -> 'a -> 'a) -> 'a -> 'a

(** [neighbors g v] is the sorted list of [(neighbour, weight)] pairs. *)
val neighbors : t -> int -> (int * float) list

(** [neighbor_ids g v] is the sorted list of neighbour ids. *)
val neighbor_ids : t -> int -> int list

(** [edges g] lists every undirected edge once, with [u < v], sorted. *)
val edges : t -> edge list

(** [neighbor_bitset g v] is a fresh bitset of capacity [n_vertices g] with
    the neighbours of [v] set. *)
val neighbor_bitset : t -> int -> Bitset.t

(** [induced g vs] is the subgraph induced by the vertex list [vs]
    (duplicates ignored), together with [to_sub] and [of_sub] index maps:
    [to_sub.(original) = sub id or -1], [of_sub.(sub id) = original]. *)
val induced : t -> int list -> t * int array * int array

(** [pp] prints a terse [n/m] summary. *)
val pp : Format.formatter -> t -> unit

(** [pp_full] prints every edge, one per line. *)
val pp_full : Format.formatter -> t -> unit

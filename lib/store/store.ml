(* Crash-safe durable state: versioned snapshots + write-ahead delta
   log.  Byte layouts live in docs/PERSISTENCE.md; the decoder follows
   the Proto discipline — a bounds-checked cursor, every length from
   disk validated against the bytes actually present before anything is
   allocated from it, and every failure converted into a typed
   [Corrupt] carrying the file and byte offset.

   Durability protocol:
   - snapshots: encode whole image -> write temp file -> fsync ->
     atomic rename -> fsync directory.  A crash at any point leaves
     either the old generation or the new one, never a torn image.
   - WAL: one CRC-framed record per mutation, appended (and fsynced)
     before the in-memory edit lands.  A crash mid-append leaves a torn
     tail; recovery stops at the first bad CRC and truncates the tail
     so later appends extend the durable prefix.
   - each log is bound to a snapshot generation: [wal-NNNNNN.stgq]
     holds exactly the deltas appended on top of [snapshot-NNNNNN.stgq].
     A checkpoint publishes generation g+1 and then rotates the log, so
     a crash between those two steps leaves generation g+1 with no log
     of its own — recovery replays zero deltas, never the superseded
     log of generation g on top of the image that already contains it.

   The [Store_*] fault sites fire at exactly these seams so the
   [@faults] matrix can replay each crash deterministically. *)

type state = {
  graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;
}

type corrupt = { file : string; offset : int; detail : string }

type error = Corrupt of corrupt

let string_of_error (Corrupt { file; offset; detail }) =
  Printf.sprintf "%s: corrupt at byte %d: %s" file offset detail

let pp_error ppf e = Format.pp_print_string ppf (string_of_error e)

(* ------------------------------------------------------------------ *)
(* Metrics. *)

let m_appends = Obs.counter "store.wal.appends"

let m_replayed = Obs.counter "store.replay.records"

let m_checkpoints = Obs.counter "store.checkpoints"

let g_wal_bytes = Obs.gauge "store.wal.bytes"

let g_snapshot_bytes = Obs.gauge "store.snapshot.bytes"

let g_bytes_per_user = Obs.gauge "store.snapshot.bytes_per_user"

(* 0 fresh, 1 clean snapshot, 2 WAL replayed, 3 torn tail dropped,
   4 newest snapshot generation(s) rejected — see docs/PERSISTENCE.md. *)
let g_recovery_outcome = Obs.gauge "store.recovery.outcome"

let h_checkpoint = Obs.histogram "store.checkpoint.latency_ns"

let h_snapshot_load = Obs.histogram "store.snapshot.load_ns"

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected 0xEDB88320). *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub s 0 (String.length s)

(* ------------------------------------------------------------------ *)
(* State algebra. *)

let horizon_of schedules =
  if Array.length schedules = 0 then 0
  else Timetable.Availability.horizon schedules.(0)

let state_of_instance graph schedules =
  let n = Socgraph.Graph.n_vertices graph in
  if Array.length schedules <> n then
    invalid_arg "Store.state_of_instance: need one schedule per vertex";
  let h = horizon_of schedules in
  Array.iter
    (fun a ->
      if Timetable.Availability.horizon a <> h then
        invalid_arg "Store.state_of_instance: schedules disagree on horizon")
    schedules;
  { graph; schedules }

let copy_state st =
  { st with schedules = Array.map Timetable.Availability.copy st.schedules }

let state_equal a b =
  Socgraph.Graph.n_vertices a.graph = Socgraph.Graph.n_vertices b.graph
  && Socgraph.Graph.edges a.graph = Socgraph.Graph.edges b.graph
  && Array.length a.schedules = Array.length b.schedules
  && begin
       let eq = ref true in
       Array.iteri
         (fun i sa ->
           if
             not
               (Bitset.equal
                  (Timetable.Availability.bits sa)
                  (Timetable.Availability.bits b.schedules.(i)))
           then eq := false)
         a.schedules;
       !eq
     end

type delta =
  | Edge_add of { u : int; v : int; w : float }
  | Edge_remove of { u : int; v : int }
  | Avail_flip of { vertex : int; slot : int }
  | Schedule_set of { vertex : int; avail : Timetable.Availability.t }

let pp_delta ppf = function
  | Edge_add { u; v; w } -> Format.fprintf ppf "edge_add(%d,%d,%g)" u v w
  | Edge_remove { u; v } -> Format.fprintf ppf "edge_remove(%d,%d)" u v
  | Avail_flip { vertex; slot } ->
      Format.fprintf ppf "avail_flip(%d,%d)" vertex slot
  | Schedule_set { vertex; avail } ->
      Format.fprintf ppf "schedule_set(%d,h=%d)" vertex
        (Timetable.Availability.horizon avail)

let delta_vertices = function
  | Edge_add { u; v; _ } | Edge_remove { u; v } -> [ u; v ]
  | Avail_flip { vertex; _ } | Schedule_set { vertex; _ } -> [ vertex ]

let apply_delta st d =
  let n = Socgraph.Graph.n_vertices st.graph in
  let check_vertex ctx v =
    if v < 0 || v >= n then
      Error (Printf.sprintf "%s: vertex %d out of range [0,%d)" ctx v n)
    else Ok ()
  in
  match d with
  | Edge_add { u; v; w } -> (
      match (check_vertex "edge_add" u, check_vertex "edge_add" v) with
      | Error e, _ | _, Error e -> Error e
      | Ok (), Ok () ->
          if u = v then Error (Printf.sprintf "edge_add: self-loop at %d" u)
          else if (not (Float.is_finite w)) || w <= 0. then
            Error (Printf.sprintf "edge_add: weight %g not positive" w)
          else
            let lo = min u v and hi = max u v in
            let rest =
              List.filter
                (fun (a, b, _) -> not (a = lo && b = hi))
                (Socgraph.Graph.edges st.graph)
            in
            Ok
              {
                st with
                graph = Socgraph.Graph.of_edges n ((lo, hi, w) :: rest);
              })
  | Edge_remove { u; v } -> (
      match (check_vertex "edge_remove" u, check_vertex "edge_remove" v) with
      | Error e, _ | _, Error e -> Error e
      | Ok (), Ok () ->
          let lo = min u v and hi = max u v in
          let rest =
            List.filter
              (fun (a, b, _) -> not (a = lo && b = hi))
              (Socgraph.Graph.edges st.graph)
          in
          Ok { st with graph = Socgraph.Graph.of_edges n rest })
  | Avail_flip { vertex; slot } -> (
      match check_vertex "avail_flip" vertex with
      | Error e -> Error e
      | Ok () ->
          let a = st.schedules.(vertex) in
          let h = Timetable.Availability.horizon a in
          if slot < 0 || slot >= h then
            Error
              (Printf.sprintf "avail_flip: slot %d outside horizon %d" slot h)
          else begin
            let fresh = Timetable.Availability.copy a in
            (if Timetable.Availability.available fresh slot then
               Timetable.Availability.set_busy fresh slot slot
             else Timetable.Availability.set_free fresh slot slot);
            let schedules = Array.copy st.schedules in
            schedules.(vertex) <- fresh;
            Ok { st with schedules }
          end)
  | Schedule_set { vertex; avail } -> (
      match check_vertex "schedule_set" vertex with
      | Error e -> Error e
      | Ok () ->
          let h = Timetable.Availability.horizon st.schedules.(vertex) in
          if Timetable.Availability.horizon avail <> h then
            Error
              (Printf.sprintf "schedule_set: horizon %d, expected %d"
                 (Timetable.Availability.horizon avail)
                 h)
          else begin
            let schedules = Array.copy st.schedules in
            schedules.(vertex) <- Timetable.Availability.copy avail;
            Ok { st with schedules }
          end)

(* ------------------------------------------------------------------ *)
(* Writers (big-endian, Proto discipline: range violations on the
   encoding side are programming errors and raise). *)

let w_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Store: u8 out of range";
  Buffer.add_char b (Char.chr v)

let w_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Store: u32 out of range";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let w_f64 b v =
  let bits = Int64.bits_of_float v in
  for i = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (i * 8)) land 0xFF))
  done

(* One calendar as ceil(horizon/8) bytes, slot [i] at bit [i land 7]
   (LSB first) of byte [i / 8]; set = free.  Same mapping as Proto. *)
let w_mask b a ~horizon =
  let nbytes = (horizon + 7) / 8 in
  for byte = 0 to nbytes - 1 do
    let v = ref 0 in
    for bit = 0 to 7 do
      let slot = (byte * 8) + bit in
      if slot < horizon && Timetable.Availability.available a slot then
        v := !v lor (1 lsl bit)
    done;
    Buffer.add_char b (Char.chr !v)
  done

(* ------------------------------------------------------------------ *)
(* Bounds-checked reader.  [base] is the absolute file offset of
   [buf.[0]], so section payloads report real offsets. *)

type reader = { rfile : string; buf : string; base : int; mutable pos : int }

exception Fail of corrupt

let fail r detail = raise (Fail { file = r.rfile; offset = r.base + r.pos; detail })

let need r n =
  let remaining = String.length r.buf - r.pos in
  if n < 0 || n > remaining then
    fail r (Printf.sprintf "truncated: needed %d byte(s), %d available" n remaining)

let r_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4;
  let b i = Char.code r.buf.[r.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  v

let r_f64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code r.buf.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

(* ------------------------------------------------------------------ *)
(* Snapshot codec (docs/PERSISTENCE.md, "Snapshot layout"). *)

let magic = "STGQSNAP"

let format_version = 1

let tag_graph = 1

let tag_timetable = 2

let encode_graph_section g =
  let b = Buffer.create 4096 in
  let n = Socgraph.Graph.n_vertices g in
  w_u32 b n;
  w_u32 b (Socgraph.Graph.n_edges g);
  (* Row scan emits (v, u, w) with v < u in ascending lexicographic
     order — the canonical order [of_sorted_arrays] reloads without a
     sort — while never materialising the edge list. *)
  for v = 0 to n - 1 do
    Socgraph.Graph.iter_neighbors g v (fun u w ->
        if v < u then begin
          w_u32 b v;
          w_u32 b u;
          w_f64 b w
        end)
  done;
  Buffer.contents b

let encode_timetable_section schedules =
  let count = Array.length schedules in
  let horizon = horizon_of schedules in
  let b = Buffer.create (8 + (count * ((horizon + 7) / 8))) in
  w_u32 b count;
  w_u32 b horizon;
  Array.iter (fun a -> w_mask b a ~horizon) schedules;
  Buffer.contents b

let encode_snapshot st =
  let b = Buffer.create 65536 in
  Buffer.add_string b magic;
  w_u8 b format_version;
  let section tag payload =
    w_u8 b tag;
    w_u32 b (String.length payload);
    w_u32 b (crc32 payload);
    Buffer.add_string b payload
  in
  section tag_graph (encode_graph_section st.graph);
  section tag_timetable (encode_timetable_section st.schedules);
  Buffer.contents b

(* Decode one section header and return a payload sub-reader.  The
   declared length is checked against the bytes present before any
   slice or allocation happens. *)
let r_section r ~expect_tag =
  let tag = r_u8 r in
  if tag <> expect_tag then
    fail r (Printf.sprintf "expected section tag %d, found %d" expect_tag tag);
  let len = r_u32 r in
  need r 4;
  let declared_crc = r_u32 r in
  need r len;
  let got_crc = crc32_sub r.buf r.pos len in
  if got_crc <> declared_crc then
    fail r
      (Printf.sprintf "section %d CRC mismatch: stored %08x, computed %08x" tag
         declared_crc got_crc);
  let payload =
    { rfile = r.rfile; buf = String.sub r.buf r.pos len; base = r.base + r.pos;
      pos = 0 }
  in
  r.pos <- r.pos + len;
  payload

(* [Graph.of_sorted_arrays] sizes O(n) degree/row columns from [n]
   before a single edge is read, so the vertex count must be bounded
   here: a ~30-byte image declaring n ~ 4e9 under a valid CRC would
   otherwise force multi-GiB allocations.  The cap is two orders of
   magnitude above the scale gates (1e5 users in BENCH_scale.json). *)
let max_vertices = 1 lsl 24

let decode_graph_section p =
  let n = r_u32 p in
  if n > max_vertices then
    fail p
      (Printf.sprintf "vertex count %d exceeds the %d cap" n max_vertices);
  let m = r_u32 p in
  (* 16 bytes per edge; checked before the three columns exist. *)
  need p (16 * m);
  let us = Array.make (max 1 m) 0 in
  let vs = Array.make (max 1 m) 0 in
  let ws = Array.make (max 1 m) 0. in
  for i = 0 to m - 1 do
    let at = p.pos in
    let u = r_u32 p in
    let v = r_u32 p in
    let w = r_f64 p in
    let bad detail = raise (Fail { file = p.rfile; offset = p.base + at; detail }) in
    if u >= n || v >= n then
      bad (Printf.sprintf "edge (%d,%d) out of range [0,%d)" u v n);
    if u >= v then bad (Printf.sprintf "edge (%d,%d) not u < v" u v);
    if (not (Float.is_finite w)) || w <= 0. then
      bad (Printf.sprintf "edge (%d,%d) weight %g not positive" u v w);
    if i > 0 && (us.(i - 1) > u || (us.(i - 1) = u && vs.(i - 1) >= v)) then
      bad (Printf.sprintf "edge (%d,%d) breaks canonical order" u v);
    us.(i) <- u;
    vs.(i) <- v;
    ws.(i) <- w
  done;
  if p.pos <> String.length p.buf then
    fail p
      (Printf.sprintf "%d trailing byte(s) in graph section"
         (String.length p.buf - p.pos));
  let us = if m = 0 then [||] else us in
  let vs = if m = 0 then [||] else vs in
  let ws = if m = 0 then [||] else ws in
  match Socgraph.Graph.of_sorted_arrays ~n ~us ~vs ~ws with
  | g -> g
  | exception Invalid_argument msg -> fail p msg

let decode_timetable_section p ~n =
  let count = r_u32 p in
  if count <> n then
    fail p (Printf.sprintf "timetable has %d calendars for %d vertices" count n);
  let horizon = r_u32 p in
  let nbytes = (horizon + 7) / 8 in
  (* Hostile [horizon]/[count] are rejected here, before any bitset is
     sized from them: the masks must all be physically present.  The
     first check bounds [count] by the bytes on disk so the product
     below cannot overflow. *)
  if nbytes > 0 then need p count;
  need p (count * nbytes);
  let schedules =
    Array.init count (fun _ ->
        let bits = Bitset.create horizon in
        for byte = 0 to nbytes - 1 do
          let v = Char.code p.buf.[p.pos + byte] in
          for bit = 0 to 7 do
            let slot = (byte * 8) + bit in
            if slot < horizon && v land (1 lsl bit) <> 0 then Bitset.set bits slot
          done
        done;
        p.pos <- p.pos + nbytes;
        Timetable.Availability.of_bitset bits)
  in
  if p.pos <> String.length p.buf then
    fail p
      (Printf.sprintf "%d trailing byte(s) in timetable section"
         (String.length p.buf - p.pos));
  schedules

let decode_snapshot_reader r =
  need r (String.length magic + 1);
  if String.sub r.buf r.pos (String.length magic) <> magic then
    fail r "bad magic: not a stgq snapshot";
  r.pos <- r.pos + String.length magic;
  let v = r_u8 r in
  if v <> format_version then
    fail r (Printf.sprintf "snapshot format version %d, this build reads %d" v
              format_version);
  let gp = r_section r ~expect_tag:tag_graph in
  let graph = decode_graph_section gp in
  let tp = r_section r ~expect_tag:tag_timetable in
  let schedules =
    decode_timetable_section tp ~n:(Socgraph.Graph.n_vertices graph)
  in
  if r.pos <> String.length r.buf then
    fail r
      (Printf.sprintf "%d trailing byte(s) after last section"
         (String.length r.buf - r.pos));
  { graph; schedules }

let decode_snapshot ~file bytes =
  match decode_snapshot_reader { rfile = file; buf = bytes; base = 0; pos = 0 } with
  | state -> Ok state
  | exception Fail c -> Error (Corrupt c)
  | exception Out_of_memory ->
      (* Belt over the cap's braces: a hostile size that still provokes
         an allocation failure is corruption, not a crash. *)
      Error
        (Corrupt
           { file; offset = 0; detail = "allocation failure decoding image" })

type snapshot_info = { si_bytes : int; si_n : int; si_m : int; si_horizon : int }

(* ------------------------------------------------------------------ *)
(* File plumbing. *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = Unix.write fd buf off len in
    write_all fd buf (off + n) (len - n)
  end

(* How a whole-file read ended.  [`Missing] is exactly ENOENT; every
   other failure — permissions, fd exhaustion, I/O error, a directory
   in the file's place — is [`Unreadable] and must never be conflated
   with an absent file: treating an unreadable log as empty would
   position later appends at offset 0 and silently overwrite the
   durable records underneath. *)
let read_file_raw path =
  match Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Missing
  | exception Unix.Unix_error (e, _, _) ->
      `Unreadable
        (Corrupt
           { file = path; offset = 0;
             detail = "cannot open: " ^ Unix.error_message e })
  | fd ->
      Fun.protect
        ~finally:(fun () ->
          match Unix.close fd with
          | () -> ()
          | exception Unix.Unix_error _ -> ())
        (fun () ->
          match
            let size = (Unix.fstat fd).Unix.st_size in
            let buf = Bytes.create size in
            let rec go off =
              if off >= size then ()
              else
                match Unix.read fd buf off (size - off) with
                | 0 -> raise End_of_file
                | n -> go (off + n)
            in
            go 0;
            Bytes.unsafe_to_string buf
          with
          | s -> `Contents s
          | exception End_of_file ->
              `Unreadable
                (Corrupt
                   { file = path; offset = 0;
                     detail = "file shrank while reading" })
          | exception Unix.Unix_error (e, _, _) ->
              `Unreadable
                (Corrupt
                   { file = path; offset = 0;
                     detail = "cannot read: " ^ Unix.error_message e }))

let read_file path =
  match read_file_raw path with
  | `Contents s -> Ok s
  | `Missing ->
      Error
        (Corrupt
           { file = path; offset = 0; detail = "cannot open: no such file" })
  | `Unreadable e -> Error e

(* fsync of the containing directory makes the rename itself durable.
   Some filesystems refuse fsync on a directory fd; that only weakens
   the durability of the very latest rename, so refusal is tolerated. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (match Unix.fsync fd with () -> () | exception Unix.Unix_error _ -> ());
      (match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ())

(* The bit-flip site does not raise out of the store: when armed, it
   silently corrupts the bytes about to hit the disk, modelling media
   rot the CRC layer must catch on the way back in. *)
let maybe_flip data =
  match Faultinject.fire Faultinject.Store_bit_flip with
  | () -> data
  | exception Faultinject.Injected_fault _ ->
      let b = Bytes.of_string data in
      let i = Bytes.length b / 2 in
      if Bytes.length b > 0 then
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
      Bytes.unsafe_to_string b

let save_snapshot path st =
  let data = maybe_flip (encode_snapshot st) in
  let len = String.length data in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  Fun.protect
    ~finally:(fun () ->
      match Unix.close fd with () -> () | exception Unix.Unix_error _ -> ())
    (fun () ->
      (match Faultinject.fire Faultinject.Store_short_write with
      | () -> write_all fd (Bytes.unsafe_of_string data) 0 len
      | exception (Faultinject.Injected_fault _ as e) ->
          (* Simulated crash mid-write: only a prefix reaches the disk. *)
          write_all fd (Bytes.unsafe_of_string data) 0 (len / 2);
          Unix.fsync fd;
          raise e);
      Unix.fsync fd);
  (* Crash here (before the rename) leaves only the temp file: the
     previous generation stays the durable truth. *)
  Faultinject.fire Faultinject.Store_crash_rename;
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path);
  Obs.Gauge.set g_snapshot_bytes len;
  let n = Socgraph.Graph.n_vertices st.graph in
  if n > 0 then Obs.Gauge.set g_bytes_per_user (len / n);
  len

let load_snapshot path =
  Obs.time_hist h_snapshot_load @@ fun () ->
  match read_file path with
  | Error e -> Error e
  | Ok bytes -> decode_snapshot ~file:path bytes

let verify_snapshot path =
  match load_snapshot path with
  | Error e -> Error e
  | Ok st ->
      Ok
        {
          si_bytes = String.length (encode_snapshot st);
          si_n = Socgraph.Graph.n_vertices st.graph;
          si_m = Socgraph.Graph.n_edges st.graph;
          si_horizon = horizon_of st.schedules;
        }

(* ------------------------------------------------------------------ *)
(* WAL codec (docs/PERSISTENCE.md, "Delta log layout"). *)

let max_record = 1 lsl 20

let rec_edge_add = 1

let rec_edge_remove = 2

let rec_avail_flip = 3

let rec_schedule_set = 4

let encode_record d =
  let p = Buffer.create 32 in
  w_u8 p format_version;
  (match d with
  | Edge_add { u; v; w } ->
      w_u8 p rec_edge_add;
      w_u32 p u;
      w_u32 p v;
      w_f64 p w
  | Edge_remove { u; v } ->
      w_u8 p rec_edge_remove;
      w_u32 p u;
      w_u32 p v
  | Avail_flip { vertex; slot } ->
      w_u8 p rec_avail_flip;
      w_u32 p vertex;
      w_u32 p slot
  | Schedule_set { vertex; avail } ->
      w_u8 p rec_schedule_set;
      w_u32 p vertex;
      let horizon = Timetable.Availability.horizon avail in
      w_u32 p horizon;
      w_mask p avail ~horizon);
  let payload = Buffer.contents p in
  if String.length payload > max_record then
    invalid_arg "Store.encode_record: record exceeds 1 MiB cap";
  let b = Buffer.create (8 + String.length payload) in
  w_u32 b (String.length payload);
  w_u32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let decode_record_payload p =
  let v = r_u8 p in
  if v <> format_version then
    fail p (Printf.sprintf "record version %d, this build reads %d" v
              format_version);
  let tag = r_u8 p in
  let d =
    if tag = rec_edge_add then begin
      let u = r_u32 p in
      let v = r_u32 p in
      let w = r_f64 p in
      Edge_add { u; v; w }
    end
    else if tag = rec_edge_remove then begin
      let u = r_u32 p in
      let v = r_u32 p in
      Edge_remove { u; v }
    end
    else if tag = rec_avail_flip then begin
      let vertex = r_u32 p in
      let slot = r_u32 p in
      Avail_flip { vertex; slot }
    end
    else if tag = rec_schedule_set then begin
      let vertex = r_u32 p in
      let horizon = r_u32 p in
      let nbytes = (horizon + 7) / 8 in
      need p nbytes;
      let bits = Bitset.create horizon in
      for byte = 0 to nbytes - 1 do
        let v = Char.code p.buf.[p.pos + byte] in
        for bit = 0 to 7 do
          let slot = (byte * 8) + bit in
          if slot < horizon && v land (1 lsl bit) <> 0 then Bitset.set bits slot
        done
      done;
      p.pos <- p.pos + nbytes;
      Schedule_set { vertex; avail = Timetable.Availability.of_bitset bits }
    end
    else fail p (Printf.sprintf "unknown record tag %d" tag)
  in
  if p.pos <> String.length p.buf then
    fail p
      (Printf.sprintf "%d trailing byte(s) in record"
         (String.length p.buf - p.pos));
  d

type replay = {
  deltas : delta list;
  records : int;
  valid_bytes : int;
  torn : corrupt option;
}

(* One frame at [r.pos].  [`Torn c] covers everything a crashed append
   or tail rot produces (truncation, hostile length, bad CRC): the
   bytes before this frame remain trustworthy.  A payload that fails to
   decode *under a valid CRC* is not a torn tail — the writer never
   produced it — so it raises [Fail] and the whole log is refused. *)
let decode_frame r =
  let start = r.pos in
  let remaining = String.length r.buf - r.pos in
  if remaining < 8 then
    `Torn
      { file = r.rfile; offset = start;
        detail = Printf.sprintf "truncated record header (%d byte(s))" remaining }
  else begin
    let len = r_u32 r in
    let declared_crc = r_u32 r in
    if len > max_record then begin
      r.pos <- start;
      `Torn
        { file = r.rfile; offset = start;
          detail = Printf.sprintf "record length %d exceeds %d cap" len max_record }
    end
    else if len > String.length r.buf - r.pos then begin
      let got = String.length r.buf - r.pos in
      r.pos <- start;
      `Torn
        { file = r.rfile; offset = start;
          detail = Printf.sprintf "truncated record: %d of %d payload byte(s)" got len }
    end
    else begin
      let got_crc = crc32_sub r.buf r.pos len in
      if got_crc <> declared_crc then begin
        r.pos <- start;
        `Torn
          { file = r.rfile; offset = start;
            detail =
              Printf.sprintf "record CRC mismatch: stored %08x, computed %08x"
                declared_crc got_crc }
      end
      else begin
        let p =
          { rfile = r.rfile; buf = String.sub r.buf r.pos len;
            base = r.base + r.pos; pos = 0 }
        in
        r.pos <- r.pos + len;
        `Record (decode_record_payload p, start)
      end
    end
  end

(* Internal: decoded records with their starting offsets (recovery
   reports the offset when a record's semantics are invalid). *)
let replay_wal_records path =
  match read_file_raw path with
  | `Missing ->
      (* A store that has never appended has no log: empty, not corrupt.
         Only ENOENT qualifies — any other read failure propagates. *)
      Ok ([], { deltas = []; records = 0; valid_bytes = 0; torn = None })
  | `Unreadable e -> Error e
  | `Contents bytes -> (
      let r = { rfile = path; buf = bytes; base = 0; pos = 0 } in
      let rec go acc =
        if r.pos >= String.length bytes then (List.rev acc, None)
        else
          match decode_frame r with
          | `Record (d, off) -> go ((d, off) :: acc)
          | `Torn c -> (List.rev acc, Some c)
      in
      match go [] with
      | recs, torn ->
          let deltas = List.map fst recs in
          Ok
            ( recs,
              {
                deltas;
                records = List.length recs;
                valid_bytes = r.pos;
                torn;
              } )
      | exception Fail c -> Error (Corrupt c))

let replay_wal path =
  match replay_wal_records path with
  | Error e -> Error e
  | Ok (_, replay) -> Ok replay

let verify_wal path =
  match replay_wal_records path with
  | Error e -> Error e
  | Ok (_, { torn = Some c; _ }) -> Error (Corrupt c)
  | Ok (_, { records; _ }) -> Ok records

(* ------------------------------------------------------------------ *)
(* The store handle. *)

type t = {
  dir : string;
  mutable wal_fd : Unix.file_descr;
  mutable gen : int;
  mutable wbytes : int;
  checkpoint_bytes : int;
  lock : Mutex.t;
}

type recovery = {
  r_dir : string;
  r_snapshot_gen : int;
  r_snapshots_skipped : int;
  r_replayed : int;
  r_torn : corrupt option;
  r_state : state;
}

let recovery_status r =
  if r.r_snapshot_gen < 0 then "fresh store (generation 0 written)"
  else
    Printf.sprintf "recovered generation %d%s, replayed %d record(s)%s"
      r.r_snapshot_gen
      (if r.r_snapshots_skipped > 0 then
         Printf.sprintf " (%d newer generation(s) corrupt)" r.r_snapshots_skipped
       else "")
      r.r_replayed
      (match r.r_torn with
      | Some c -> Printf.sprintf ", torn tail dropped at byte %d" c.offset
      | None -> "")

let snapshot_path ~dir ~gen = Filename.concat dir (Printf.sprintf "snapshot-%06d.stgq" gen)

(* The log is bound to the snapshot generation it extends: [wal-g]
   holds exactly the deltas appended on top of [snapshot-g], so
   state(g) + wal-g = state(g+1) by construction and recovery can never
   replay a log over an image that already contains it. *)
let wal_path ~dir ~gen = Filename.concat dir (Printf.sprintf "wal-%06d.stgq" gen)

let gen_of ~prefix ~suffix name =
  let lp = String.length prefix and ls = String.length suffix in
  let ln = String.length name in
  if ln > lp + ls
     && String.sub name 0 lp = prefix
     && String.sub name (ln - ls) ls = suffix
  then int_of_string_opt (String.sub name lp (ln - lp - ls))
  else None

let gen_of_name = gen_of ~prefix:"snapshot-" ~suffix:".stgq"

let wal_gen_of_name = gen_of ~prefix:"wal-" ~suffix:".stgq"

let generations_by dir classify =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map classify
  |> List.sort (fun a b -> compare b a)

let generations dir = generations_by dir gen_of_name

let wal_generations dir = generations_by dir wal_gen_of_name

let mkdir_quiet dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let outcome_fresh = 0

let outcome_clean = 1

let outcome_replayed = 2

let outcome_torn = 3

let outcome_fallback = 4

let open_dir ?(checkpoint_bytes = 1 lsl 20) ~init dir =
  if checkpoint_bytes < 1 then
    invalid_arg "Store.open_dir: checkpoint_bytes must be >= 1";
  mkdir_quiet dir;
  (* Newest generation that verifies wins; rotten newer images are
     skipped (and counted) rather than taking the store down. *)
  let rec pick = function
    | [] -> None
    | gen :: rest -> (
        match load_snapshot (snapshot_path ~dir ~gen) with
        | Ok state -> Some (gen, state, 0)
        | Error _ -> (
            match pick rest with
            | Some (g, s, skipped) -> Some (g, s, skipped + 1)
            | None -> None))
  in
  let gens = generations dir in
  let base =
    match gens with
    | [] -> (
        (* No snapshot at all.  A leftover non-empty delta log means
           this was once a live store whose images were lost: replaying
           a stale log over [init ()] would fabricate state, so refuse
           before anything is written into the directory. *)
        let stale =
          List.filter
            (fun g ->
              match read_file_raw (wal_path ~dir ~gen:g) with
              | `Contents "" | `Missing -> false
              | `Contents _ | `Unreadable _ -> true)
            (wal_generations dir)
        in
        match stale with
        | g :: _ ->
            Error
              (Corrupt
                 {
                   file = wal_path ~dir ~gen:g;
                   offset = 0;
                   detail =
                     "delta log present but no snapshot generation: refusing \
                      to initialise over it";
                 })
        | [] ->
            let state = init () in
            let bytes = save_snapshot (snapshot_path ~dir ~gen:0) state in
            ignore (bytes : int);
            Ok (-1, 0, state, 0))
    | newest :: _ -> (
        match pick gens with
        | Some (gen, state, skipped) -> Ok (gen, gen, state, skipped)
        | None ->
            (* Snapshots exist but none verifies: refuse to clobber. *)
            Error
              (Corrupt
                 {
                   file = snapshot_path ~dir ~gen:newest;
                   offset = 0;
                   detail =
                     Printf.sprintf "no valid snapshot among %d generation(s)"
                       (List.length gens);
                 }))
  in
  match base with
  | Error e -> Error e
  | Ok (reported_gen, gen0, snap_state, skipped) -> (
      (* Replay the per-generation log chain upward from the loaded
         generation: wal-g is the log of snapshot g, and when recovery
         fell back past a rotten image the surviving logs reconstruct
         the durable prefix (state(g) + wal-g = state(g+1)).  Only the
         last log of the chain may carry a torn tail — a torn or
         missing log *followed by* a newer generation's log means the
         chain cannot be trusted, so the store refuses to open. *)
      let rec chain st g total =
        let wal = wal_path ~dir ~gen:g in
        match replay_wal_records wal with
        | Error e -> Error e
        | Ok (recs, replay) -> (
            let rec fold st = function
              | [] -> Ok st
              | (d, off) :: rest -> (
                  match apply_delta st d with
                  | Ok st' -> fold st' rest
                  | Error detail ->
                      Error (Corrupt { file = wal; offset = off; detail }))
            in
            match fold st recs with
            | Error e -> Error e
            | Ok st' ->
                let total = total + replay.records in
                if not (Sys.file_exists (wal_path ~dir ~gen:(g + 1))) then
                  Ok (st', g, total, replay)
                else if replay.torn <> None then
                  Error
                    (Corrupt
                       {
                         file = wal;
                         offset =
                           (match replay.torn with
                           | Some c -> c.offset
                           | None -> 0);
                         detail =
                           "torn log followed by a newer generation's log: \
                            chain broken";
                       })
                else if not (Sys.file_exists wal) then
                  Error
                    (Corrupt
                       {
                         file = wal;
                         offset = 0;
                         detail =
                           "log missing but a newer generation's log exists: \
                            chain broken";
                       })
                else chain st' (g + 1) total)
      in
      match chain snap_state gen0 0 with
      | Error e -> Error e
      | Ok (state, active_gen, replayed, active) ->
          let fd =
            Unix.openfile
              (wal_path ~dir ~gen:active_gen)
              [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
              0o644
          in
          (* Drop the torn tail so the next append extends the durable
             prefix instead of burying garbage. *)
          if active.torn <> None then Unix.ftruncate fd active.valid_bytes;
          ignore (Unix.lseek fd active.valid_bytes Unix.SEEK_SET : int);
          let t =
            {
              dir;
              wal_fd = fd;
              gen = active_gen;
              wbytes = active.valid_bytes;
              checkpoint_bytes;
              lock = Mutex.create ();
            }
          in
          Obs.Counter.add m_replayed replayed;
          Obs.Gauge.set g_wal_bytes t.wbytes;
          let outcome =
            if skipped > 0 then outcome_fallback
            else if active.torn <> None then outcome_torn
            else if replayed > 0 then outcome_replayed
            else if reported_gen < 0 then outcome_fresh
            else outcome_clean
          in
          Obs.Gauge.set g_recovery_outcome outcome;
          Obs.Events.emit ~kind:"store.recovery"
            [
              ("outcome", string_of_int outcome);
              ("snapshot_gen", string_of_int reported_gen);
              ("replayed", string_of_int replayed);
              ("snapshots_skipped", string_of_int skipped);
              ("torn_tail", string_of_bool (active.torn <> None));
            ];
          Ok
            ( t,
              {
                r_dir = dir;
                r_snapshot_gen = reported_gen;
                r_snapshots_skipped = skipped;
                r_replayed = replayed;
                r_torn = active.torn;
                r_state = state;
              } ))

let append ?(sync = true) t d =
  let record = maybe_flip (encode_record d) in
  let len = String.length record in
  Mutex.protect t.lock (fun () ->
      (match Faultinject.fire Faultinject.Store_crash_append with
      | () -> write_all t.wal_fd (Bytes.unsafe_of_string record) 0 len
      | exception (Faultinject.Injected_fault _ as e) ->
          (* Simulated crash mid-append: half a header hits the disk. *)
          write_all t.wal_fd (Bytes.unsafe_of_string record) 0 (min 5 len);
          Unix.fsync t.wal_fd;
          raise e);
      if sync then Unix.fsync t.wal_fd;
      t.wbytes <- t.wbytes + len;
      Obs.Counter.incr m_appends;
      Obs.Gauge.set g_wal_bytes t.wbytes)

let wal_bytes t = Mutex.protect t.lock (fun () -> t.wbytes)

let should_checkpoint t =
  Mutex.protect t.lock (fun () -> t.wbytes >= t.checkpoint_bytes)

let unlink_quiet path =
  match Unix.unlink path with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

let checkpoint t state =
  Obs.time_hist h_checkpoint @@ fun () ->
  Mutex.protect t.lock (fun () ->
      let next = t.gen + 1 in
      let bytes = save_snapshot (snapshot_path ~dir:t.dir ~gen:next) state in
      ignore (bytes : int);
      (* Generation [next] is durable but the log bound to [t.gen] is
         still intact: a crash before the rotation below recovers from
         [next] with an absent [wal-next] — zero deltas, exactly the
         acked image, never the superseded log applied twice.  The
         site lets the [@faults] matrix replay this exact window. *)
      Faultinject.fire Faultinject.Store_crash_checkpoint;
      let fd =
        Unix.openfile
          (wal_path ~dir:t.dir ~gen:next)
          [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
          0o644
      in
      (match Unix.close t.wal_fd with
      | () -> ()
      | exception Unix.Unix_error _ -> ());
      t.wal_fd <- fd;
      t.wbytes <- 0;
      t.gen <- next;
      (* Keep the previous generation — image and its log — as the
         bit-rot fallback chain; prune everything older. *)
      List.iter
        (fun gen ->
          if gen < next - 1 then unlink_quiet (snapshot_path ~dir:t.dir ~gen))
        (generations t.dir);
      List.iter
        (fun gen ->
          if gen < next - 1 then unlink_quiet (wal_path ~dir:t.dir ~gen))
        (wal_generations t.dir);
      Obs.Counter.incr m_checkpoints;
      Obs.Gauge.set g_wal_bytes 0;
      Obs.Events.emit ~kind:"store.checkpoint"
        [
          ("generation", string_of_int next);
          ("snapshot_bytes", string_of_int bytes);
        ])

let close t =
  match Unix.close t.wal_fd with
  | () -> ()
  | exception Unix.Unix_error _ -> ()

(** Crash-safe durable state: versioned snapshots + a write-ahead delta
    log with verified recovery (docs/PERSISTENCE.md).

    A store is a directory holding numbered snapshot generations
    ([snapshot-NNNNNN.stgq]), each paired with the delta log of the
    mutations appended on top of it ([wal-NNNNNN.stgq]).  Snapshots
    are a versioned, length-prefixed, CRC32-checked binary image of the
    social graph + timetable, written via temp file + [fsync] + atomic
    rename so a crash never leaves a half-written generation visible.
    Every mutation is journalled to the WAL as one CRC-framed record
    {e before} the in-memory edit lands; recovery loads the newest valid
    snapshot, replays {e that generation's} log (walking surviving newer
    logs when it fell back past a rotten image), and tolerates a
    torn/truncated tail by stopping at the first bad CRC (the tail is
    then truncated so later appends extend the durable prefix, not
    garbage).  Binding each log to its generation closes the checkpoint
    crash window: a crash between publishing generation g+1 and rotating
    the log recovers from g+1 with zero deltas, never a double apply.

    Decoder discipline mirrors {!Proto}: every length from disk is
    checked against the bytes actually present {e before} any
    allocation, and every failure — truncation, hostile length, flipped
    bit, unknown tag, semantic violation — surfaces as a typed
    {!error} carrying the file and byte offset, never an exception.

    Fault sites: the [Store_*] cases of {!Faultinject.site} fire at the
    protocol's crash seams (short write, bit flip, crash-before-rename,
    crash-mid-append, crash-mid-checkpoint between publish and log
    rotation); the [@faults] matrix replays them and checks recovery
    lands exactly on the pre-crash durable prefix. *)

(* ------------------------------------------------------------------ *)
(** {1 State and deltas} *)

(** The durable world: the social graph plus one calendar per vertex. *)
type state = {
  graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;
}

(** [state_of_instance graph schedules] validates shape (one schedule
    per vertex, uniform horizon) and packs a state.
    @raise Invalid_argument on shape violations. *)
val state_of_instance :
  Socgraph.Graph.t -> Timetable.Availability.t array -> state

(** Deep copy (the graph is immutable and shared; calendars are copied). *)
val copy_state : state -> state

(** Structural equality: same vertices, same edges and weights, same
    availability bits.  This is the relation the crash-recovery
    differential gate checks. *)
val state_equal : state -> state -> bool

(** One journalled mutation. *)
type delta =
  | Edge_add of { u : int; v : int; w : float }
      (** insert one edge, or re-weight it if already present *)
  | Edge_remove of { u : int; v : int }  (** drop one edge if present *)
  | Avail_flip of { vertex : int; slot : int }
      (** toggle one calendar slot *)
  | Schedule_set of { vertex : int; avail : Timetable.Availability.t }
      (** replace one calendar (same horizon required) *)

val pp_delta : Format.formatter -> delta -> unit

(** [delta_vertices d] — the vertices a delta touches, for precise
    context invalidation ({!Engine.Cache.set_graph}'s [?touched]). *)
val delta_vertices : delta -> int list

(** [apply_delta state d] returns the successor state, or [Error detail]
    when the delta is semantically invalid against [state] (vertex or
    slot out of range, horizon mismatch, non-positive weight).  The
    input state is not mutated. *)
val apply_delta : state -> delta -> (state, string) result

(* ------------------------------------------------------------------ *)
(** {1 Typed corruption} *)

type corrupt = {
  file : string;  (** path (or caller-supplied label) of the bad input *)
  offset : int;  (** byte offset of the first unusable byte *)
  detail : string;
}

type error = Corrupt of corrupt

val string_of_error : error -> string

val pp_error : Format.formatter -> error -> unit

(* ------------------------------------------------------------------ *)
(** {1 Snapshot codec} *)

(** [encode_snapshot state] is the byte image (docs/PERSISTENCE.md). *)
val encode_snapshot : state -> string

(** Hard cap on the vertex count a snapshot may declare (the decoder
    sizes O(n) structures from it before any edge is read). *)
val max_vertices : int

(** [decode_snapshot ~file bytes] — [file] only labels errors.  Never
    raises; hostile section lengths and vertex counts are checked
    against the bytes present (and {!max_vertices}) before any
    allocation, and a residual allocation failure is reported as
    corruption rather than escaping. *)
val decode_snapshot : file:string -> string -> (state, error) result

(** What {!verify_snapshot} reports without building the state. *)
type snapshot_info = {
  si_bytes : int;
  si_n : int;  (** vertices *)
  si_m : int;  (** edges *)
  si_horizon : int;
}

(** [save_snapshot path state] writes atomically (temp + [fsync] +
    rename, then directory [fsync]) and returns the byte size.
    @raise Unix.Unix_error on I/O failure,
    {!Faultinject.Injected_fault} under an armed [store_*] plan. *)
val save_snapshot : string -> state -> int

(** [load_snapshot path] reads and decodes; a missing file is
    [Error (Corrupt _)] like any other unusable input. *)
val load_snapshot : string -> (state, error) result

(** [verify_snapshot path] checks framing, CRCs and graph/timetable
    shape without retaining the state. *)
val verify_snapshot : string -> (snapshot_info, error) result

(* ------------------------------------------------------------------ *)
(** {1 WAL codec} *)

(** [encode_record d] is one CRC-framed log record. *)
val encode_record : delta -> string

(** Result of a tolerant log read: the decodable prefix, plus where and
    why decoding stopped when the tail was torn. *)
type replay = {
  deltas : delta list;  (** in append order *)
  records : int;
  valid_bytes : int;  (** length of the durable prefix *)
  torn : corrupt option;  (** [Some] when a tail was dropped *)
}

(** [replay_wal path] reads the log, stopping at the first bad CRC or
    truncated record (recovery semantics — a torn tail is data loss
    bounded by one append, not corruption).  A missing file (ENOENT,
    and only ENOENT — an unreadable file is a typed error, never an
    empty log) is an empty log.  Never raises on bad bytes. *)
val replay_wal : string -> (replay, error) result

(** [verify_wal path] is the strict read: any undecodable byte,
    including a torn tail, is [Error (Corrupt _)]. *)
val verify_wal : string -> (int, error) result

(* ------------------------------------------------------------------ *)
(** {1 The store: open/recover, journal, checkpoint} *)

type t

(** What recovery found and did. *)
type recovery = {
  r_dir : string;
  r_snapshot_gen : int;  (** generation loaded; [-1] = fresh store *)
  r_snapshots_skipped : int;  (** newer generations rejected as corrupt *)
  r_replayed : int;  (** WAL records folded into the state *)
  r_torn : corrupt option;  (** torn tail dropped (and truncated away) *)
  r_state : state;
}

(** One-line recovery summary, the [/healthz] field. *)
val recovery_status : recovery -> string

(** [open_dir ?checkpoint_bytes ~init dir] opens (creating the
    directory if needed) and recovers: load the newest snapshot
    generation that verifies, replay that generation's log over it
    (and, when a rotten newer image was skipped, the surviving newer
    logs in generation order), truncate any torn tail on the active
    log.  A fresh directory gets [init ()] as generation 0.  Errors are
    typed: an unusable WAL body (bad semantics under a valid CRC), a
    directory with snapshots of which none verify, a directory holding
    a delta log but no snapshot generation, or a broken log chain (a
    torn or missing log followed by a newer generation's log) refuse to
    open rather than silently clobbering or fabricating data.
    [checkpoint_bytes] (default 1 MiB) is the WAL size at which
    {!should_checkpoint} starts answering [true]. *)
val open_dir :
  ?checkpoint_bytes:int -> init:(unit -> state) -> string ->
  (t * recovery, error) result

(** [append ?sync t d] journals one mutation — call it {e before}
    applying the edit in memory, ack only after it returns.  [sync]
    (default [true]) forces the record to disk; pass [false] only where
    losing the tail is acceptable (bulk load, benchmarks).
    @raise Unix.Unix_error on I/O failure,
    {!Faultinject.Injected_fault} under an armed plan (the record is
    {e not} durable in that case). *)
val append : ?sync:bool -> t -> delta -> unit

(** Bytes currently in the WAL. *)
val wal_bytes : t -> int

(** Whether the WAL has outgrown the checkpoint threshold. *)
val should_checkpoint : t -> bool

(** [checkpoint t state] publishes [state] as the next snapshot
    generation, rotates the delta log to that generation, and prunes
    generations — image and log — older than the previous one (kept as
    the fallback chain {!open_dir} falls back to when the newest image
    rots).
    @raise Unix.Unix_error / {!Faultinject.Injected_fault} as
    {!save_snapshot}, plus the [store_crash_checkpoint] site between
    the publish and the log rotation.  A crash before the publish
    recovers from the previous generation + its intact log; a crash
    after it recovers from the new generation with zero deltas (the
    superseded log is never replayed on top of the image that contains
    it).  When an injected crash escapes this call, treat the handle as
    crashed: {!close} it and {!open_dir} again. *)
val checkpoint : t -> state -> unit

(** Close the WAL handle.  The store must not be used afterwards. *)
val close : t -> unit

(** {1 Internals exposed for tests} *)

(** [crc32 s] — IEEE 802.3 CRC32 of a whole string (the checksum every
    frame in this module carries). *)
val crc32 : string -> int

(** Snapshot path of generation [gen] under [dir]. *)
val snapshot_path : dir:string -> gen:int -> string

(** Path of the delta log bound to snapshot generation [gen]. *)
val wal_path : dir:string -> gen:int -> string

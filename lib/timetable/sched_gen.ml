(* Shared-calendar semantics (as in the paper's Google-Calendar study):
   a slot is available unless an event covers it.  Nights are blocked for
   everyone (sleep), so free time is the daily structure an archetype's
   routine leaves over — evenings on weekdays, long stretches on
   weekends.  The resulting calendars both admit occasional long common
   windows (weekends; Fig. 1(e)'s larger m) and genuinely conflict across
   archetypes, which is what makes manual greedy coordination
   (PCArrange) lose to STGSelect in Fig. 1(g)/(h). *)

type archetype = Office_worker | Student | Shift_worker | Freelancer

let all_archetypes = [ Office_worker; Student; Shift_worker; Freelancer ]

let archetype_to_string = function
  | Office_worker -> "office-worker"
  | Student -> "student"
  | Shift_worker -> "shift-worker"
  | Freelancer -> "freelancer"

(* Hour range [from_h, to_h); [to_h] may be 24. *)
let set t ~value ~day ~from_h ~to_h =
  if to_h > from_h then begin
    let lo = Slot.of_day_time ~day ~hour:from_h ~minute:0 in
    let hi = (day * Slot.slots_per_day) + (to_h * Slot.slots_per_hour) - 1 in
    if value then Availability.set_free t lo hi else Availability.set_busy t lo hi
  end

let busy t ~day ~from_h ~to_h = set t ~value:false ~day ~from_h ~to_h
let free t ~day ~from_h ~to_h = set t ~value:true ~day ~from_h ~to_h

let is_weekend day = day mod 7 >= 5

(* [count] random 1-2 hour events during waking hours. *)
let random_events rng t ~day ~count =
  for _ = 1 to count do
    let from_h = 9 + Random.State.int rng 12 in
    let len = 1 + Random.State.int rng 2 in
    busy t ~day ~from_h ~to_h:(min 23 (from_h + len))
  done

let office_day rng t ~day =
  if is_weekend day then begin
    free t ~day ~from_h:15 ~to_h:23;
    random_events rng t ~day ~count:(Random.State.int rng 3)
  end
  else begin
    free t ~day ~from_h:18 ~to_h:23;
    if Random.State.float rng 1.0 < 0.08 then free t ~day ~from_h:9 ~to_h:17;
    (* An evening event eats part of the free evening. *)
    if Random.State.float rng 1.0 < 0.35 then begin
      let from_h = 18 + Random.State.int rng 3 in
      busy t ~day ~from_h ~to_h:(from_h + 2)
    end
  end

let student_day rng t ~day =
  if is_weekend day then begin
    free t ~day ~from_h:11 ~to_h:18;
    if Random.State.float rng 1.0 < 0.4 then random_events rng t ~day ~count:1
  end
  else begin
    free t ~day ~from_h:13 ~to_h:17;
    (* Half the students are night owls, free in the evening too. *)
    if Random.State.float rng 1.0 < 0.5 then free t ~day ~from_h:19 ~to_h:23;
    if Random.State.float rng 1.0 < 0.3 then begin
      let from_h = 13 + Random.State.int rng 3 in
      busy t ~day ~from_h ~to_h:(from_h + 1)
    end
  end

let shift_day rng t ~day ~night_shift =
  ignore rng;
  ignore day;
  (* Day shift frees the evening; night shift frees the morning; shifts
     run through weekends. *)
  if night_shift then free t ~day ~from_h:8 ~to_h:12
  else free t ~day ~from_h:18 ~to_h:22

let freelancer_day rng t ~day =
  (* Freelancers work weekends too: one random 3-hour block between 9
     and 22, whatever the day. *)
  let from_h = 9 + Random.State.int rng 11 in
  free t ~day ~from_h ~to_h:(min 22 (from_h + 3))

let person rng ~days ~archetype =
  let t = Availability.create ~horizon:(Slot.horizon ~days) in
  let night_first = Random.State.bool rng in
  for day = 0 to days - 1 do
    match archetype with
    | Office_worker -> office_day rng t ~day
    | Student -> student_day rng t ~day
    | Shift_worker ->
        let week = day / 7 in
        shift_day rng t ~day ~night_shift:(night_first = (week mod 2 = 0))
    | Freelancer -> freelancer_day rng t ~day
  done;
  t

let pick_archetype rng =
  let r = Random.State.float rng 1.0 in
  if r < 0.5 then Office_worker
  else if r < 0.7 then Student
  else if r < 0.85 then Shift_worker
  else Freelancer

let population rng ~days ~n =
  Array.init n (fun _ -> person rng ~days ~archetype:(pick_archetype rng))

let always_free ~days =
  let t = Availability.create ~horizon:(Slot.horizon ~days) in
  Availability.set_free t 0 (Slot.horizon ~days - 1);
  t

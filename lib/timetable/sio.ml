exception Parse_error of { file : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; msg } ->
        Some (Printf.sprintf "Sio.Parse_error: %s:%d: %s" file line msg)
    | _ -> None)

let fail ~file ~line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { file; line; msg })) fmt

let to_string schedules =
  let buf = Buffer.create 4096 in
  let horizon =
    if Array.length schedules = 0 then 0 else Availability.horizon schedules.(0)
  in
  Buffer.add_string buf (Printf.sprintf "# horizon %d\n" horizon);
  Array.iteri
    (fun i a ->
      if Availability.horizon a <> horizon then
        invalid_arg "Sio.to_string: mismatched horizons";
      Buffer.add_string buf (string_of_int i);
      Buffer.add_string buf ": ";
      for slot = 0 to horizon - 1 do
        Buffer.add_char buf (if Availability.available a slot then '1' else '0')
      done;
      Buffer.add_char buf '\n')
    schedules;
  Buffer.contents buf

let of_string ?(file = "<string>") s =
  let lines = String.split_on_char '\n' s in
  let horizon = ref (-1) in
  let rows = ref [] in
  let parse idx line =
    let line = String.trim line in
    if line = "" then ()
    else if line.[0] = '#' then begin
      match String.split_on_char ' ' line with
      | [ "#"; "horizon"; h ] -> (
          match int_of_string_opt h with
          | Some h when h >= 0 -> horizon := h
          | _ -> fail ~file ~line:idx "bad horizon value %S" h)
      | _ -> ()
    end
    else
      match String.index_opt line ':' with
      | None -> fail ~file ~line:idx "missing ':' between id and bits"
      | Some colon -> (
          let id = String.trim (String.sub line 0 colon) in
          let bits =
            String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
          in
          match int_of_string_opt id with
          | None -> fail ~file ~line:idx "bad schedule id %S" id
          | Some id ->
              if !horizon < 0 then
                fail ~file ~line:idx
                  "missing '# horizon <n>' header before the first row";
              if String.length bits <> !horizon then
                fail ~file ~line:idx "row %d has %d bits, expected %d" id
                  (String.length bits) !horizon;
              let a = Availability.create ~horizon:!horizon in
              String.iteri
                (fun slot c ->
                  match c with
                  | '1' -> Availability.set_free a slot slot
                  | '0' -> ()
                  | _ -> fail ~file ~line:idx "bad bit %C at slot %d" c slot)
                bits;
              rows := (id, idx, a) :: !rows)
  in
  List.iteri (fun i line -> parse (i + 1) line) lines;
  if !horizon < 0 then
    fail ~file ~line:(List.length lines) "missing '# horizon <n>' header";
  let rows = List.sort compare !rows in
  List.iteri
    (fun expect (id, line, _) ->
      if id <> expect then
        fail ~file ~line "schedule ids not contiguous: expected %d, got %d"
          expect id)
    rows;
  Array.of_list (List.map (fun (_, _, a) -> a) rows)

let save schedules path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string schedules))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ~file:path (In_channel.input_all ic))

(** Plain-text persistence for schedule sets.

    Format: a header ["# horizon <slots>"], then one ["<id>: <bits>"] line
    per person where [<bits>] is a 0/1 string, slot 0 leftmost.  Blank
    lines and other ['#'] comments are ignored. *)

(** Raised on malformed input.  [file] is the path given to {!load}
    (or ["<string>"], or the [?file] passed to {!of_string}); [line] is
    1-based.  A [Printexc] printer is registered, so an uncaught error
    still prints as [file:line: message]. *)
exception Parse_error of { file : string; line : int; msg : string }

(** [to_string schedules] serialises the array. *)
val to_string : Availability.t array -> string

(** [of_string ?file s] parses a schedule set.
    @raise Parse_error on malformed input or mismatched horizons. *)
val of_string : ?file:string -> string -> Availability.t array

val save : Availability.t array -> string -> unit

(** [load path] reads and parses [path].
    @raise Parse_error with [file = path] on malformed input. *)
val load : string -> Availability.t array

type dataset = {
  graph : Socgraph.Graph.t;
  schedules : Timetable.Availability.t array;
  communities : int array;
}

let population = 194

(* Communities roughly matching "schools, government, business, and
   industry" plus a residual mixed group. *)
let community_sizes = [ 58; 46; 40; 30; 20 ]

(* Geometric-ish count with the given mean. *)
let sample_count rng mean =
  let u = Random.State.float rng 1.0 in
  int_of_float (-.mean *. log (1. -. u))

let interaction_distance rng ~close =
  let meetings = sample_count rng (if close then 6. else 1.) in
  let calls = sample_count rng (if close then 4. else 0.7) in
  let mails = sample_count rng (if close then 10. else 2.) in
  let score = float_of_int ((3 * meetings) + (2 * calls) + mails) in
  (* Distance decays with interaction; clamp to the worked-example scale. *)
  Float.min 35. (5. +. (30. *. exp (-.score /. 15.)))

(* The real network behind §5 has the texture of organisations: tight
   units (a school class, an office team) that are near-cliques of close
   people, a sparser web inside each community, and a few strong ties
   reaching into other communities (old classmates, family).  Those three
   tiers are what make the paper's observations reproducible: the
   near-cliques admit large small-k groups (Fig. 1(a) up to p=11), and
   the strong cross ties are the cheap-but-unacquainted friends that
   inflate PCArrange's observed k (Fig. 1(g)). *)
let unit_distance rng = 5. +. Random.State.float rng 10.
let intra_distance rng = 10. +. Random.State.float rng 15.
let strong_cross_distance rng = 5. +. Random.State.float rng 3.
let weak_cross_distance rng = 20. +. Random.State.float rng 15.

let generate ?(seed = 194) ?(days = 7) () =
  let rng = Random.State.make [| seed |] in
  let communities = Array.make population 0 in
  let bounds =
    (* (first, last) member index per community *)
    let acc = ref [] and start = ref 0 in
    List.iteri
      (fun c size ->
        for v = !start to !start + size - 1 do
          communities.(v) <- c
        done;
        acc := (!start, !start + size - 1) :: !acc;
        start := !start + size)
      community_sizes;
    List.rev !acc
  in
  let edges = ref [] in
  let add u v w = edges := (u, v, w) :: !edges in
  (* Tier 1: units of 9-14 people, fully acquainted. *)
  let unit_of = Array.make population 0 in
  let next_unit = ref 0 in
  List.iter
    (fun (first, last) ->
      let v = ref first in
      while !v <= last do
        let size = min (last - !v + 1) (9 + Random.State.int rng 6) in
        let id = !next_unit in
        incr next_unit;
        for x = !v to !v + size - 1 do
          unit_of.(x) <- id;
          for y = x + 1 to !v + size - 1 do
            add x y (unit_distance rng)
          done
        done;
        v := !v + size
      done)
    bounds;
  (* Tier 2: sparse acquaintance web inside each community. *)
  List.iter
    (fun (first, last) ->
      for x = first to last do
        for y = x + 1 to last do
          if unit_of.(x) <> unit_of.(y) && Random.State.float rng 1.0 < 0.12 then
            add x y (intra_distance rng)
        done
      done)
    bounds;
  (* Tier 3: cross-community ties — a few strong, a thin weak web.
     Strong ties preferentially reach the community with the opposite
     daily rhythm (an old friend who now works office hours), which is
     what makes them schedule-conflicting despite being socially
     closest. *)
  let conflict_partner = function 0 -> 1 | 1 -> 0 | 2 -> 3 | 3 -> 2 | _ -> 0 in
  let community_members c =
    List.filteri (fun _ v -> communities.(v) = c) (List.init population Fun.id)
  in
  let members_of = Array.init (List.length community_sizes) community_members in
  for x = 0 to population - 1 do
    if Random.State.float rng 1.0 < 0.5 then begin
      let ties = 1 + Random.State.int rng 2 in
      for _ = 1 to ties do
        let target_community =
          if Random.State.float rng 1.0 < 0.75 then conflict_partner communities.(x)
          else (communities.(x) + 1 + Random.State.int rng 4) mod 5
        in
        if target_community <> communities.(x) then begin
          let pool = members_of.(target_community) in
          (* Same RNG draw as before; an (impossible) empty pool now
             skips the tie instead of raising. *)
          match List.nth_opt pool (Random.State.int rng (max 1 (List.length pool))) with
          | Some y -> add x y (strong_cross_distance rng)
          | None -> ()
        end
      done
    end
  done;
  for x = 0 to population - 1 do
    for y = x + 1 to population - 1 do
      if communities.(x) <> communities.(y) && Random.State.float rng 1.0 < 0.012 then
        add x y (weak_cross_distance rng)
    done
  done;
  let graph = Socgraph.Graph.of_edges population !edges in
  (* Each community keeps its own daily rhythm (a school runs on lectures,
     industry on shifts, ...): friends inside a community align easily,
     while the strong cross-community ties — exactly the people a manual
     coordinator calls first — conflict.  This correlation is what real
     calendars exhibit and what the schedule-blind graph alone cannot. *)
  let archetype_of_community = function
    | 0 -> Timetable.Sched_gen.Student
    | 1 -> Timetable.Sched_gen.Office_worker
    | 2 ->
        if Random.State.bool rng then Timetable.Sched_gen.Office_worker
        else Timetable.Sched_gen.Freelancer
    | 3 -> Timetable.Sched_gen.Shift_worker
    | _ -> Timetable.Sched_gen.Freelancer
  in
  let schedules =
    Array.init population (fun v ->
        Timetable.Sched_gen.person rng ~days
          ~archetype:(archetype_of_community communities.(v)))
  in
  { graph; schedules; communities }

let pick_initiator ?(rank = 3) graph =
  let n = Socgraph.Graph.n_vertices graph in
  if n = 0 then invalid_arg "Scenario.pick_initiator: empty graph";
  if rank < 0 then invalid_arg "Scenario.pick_initiator: negative rank";
  let by_degree =
    List.init n Fun.id
    |> List.sort (fun a b ->
           compare
             (-Socgraph.Graph.degree graph a, a)
             (-Socgraph.Graph.degree graph b, b))
  in
  match List.nth_opt by_degree (min rank (n - 1)) with
  | Some v -> v
  | None -> 0 (* unreachable: the index is clamped to [0, n-1] *)

let social_instance graph ~initiator = { Stgq_core.Query.graph; initiator }

let temporal_instance graph schedules ~initiator =
  { Stgq_core.Query.social = social_instance graph ~initiator; schedules }

let people194 ?seed ?days () =
  let ds = People194.generate ?seed ?days () in
  temporal_instance ds.People194.graph ds.People194.schedules
    ~initiator:(pick_initiator ds.People194.graph)

let coauthor ?seed ?days ~n () =
  let ds = Coauthor.generate ?seed ?days ~n () in
  temporal_instance ds.Coauthor.graph ds.Coauthor.schedules
    ~initiator:(pick_initiator ds.Coauthor.graph)

(* Shared random-case generation for the property suites.  All cases are
   small enough for the brute-force oracles to stay fast.

   Determinism and scale knobs (documented in docs/OBSERVABILITY.md):
   - STGQ_TEST_SEED   seeds every QCheck run (default 1105), so tier-1
     failures reproduce exactly;
   - STGQ_PROP_ITERS  multiplies each property's iteration count — the
     root @props alias sets it to 8 for the long soak. *)

module G = QCheck.Gen

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some raw -> (
      match int_of_string_opt (String.trim raw) with
      | Some v when v >= 1 -> v
      | Some _ | None -> default)

let test_seed = env_int "STGQ_TEST_SEED" 1105

let iters = env_int "STGQ_PROP_ITERS" 1

let graph_edges ~n ~density st =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if G.float_bound_inclusive 1.0 st < density then begin
        let w = float_of_int (1 + G.int_bound 19 st) in
        edges := (u, v, w) :: !edges
      end
    done
  done;
  !edges

type sg_case = {
  n : int;
  edges : (int * int * float) list;
  query : Stgq_core.Query.sgq;
}

let sg_case_gen ?(max_n = 11) ?(max_p = 6) st =
  let n = 4 + G.int_bound (max_n - 4) st in
  let density = 0.25 +. G.float_bound_inclusive 0.45 st in
  let edges = graph_edges ~n ~density st in
  let p = 2 + G.int_bound (min max_p n - 2) st in
  let s = 1 + G.int_bound 2 st in
  let k = G.int_bound 3 st in
  { n; edges; query = { Stgq_core.Query.p; s; k } }

let pp_edges edges =
  String.concat "; "
    (List.map (fun (u, v, w) -> Printf.sprintf "%d-%d:%g" u v w) edges)

let print_sg_case { n; edges; query = { p; s; k } } =
  Printf.sprintf "n=%d p=%d s=%d k=%d edges=[%s]" n p s k (pp_edges edges)

let sg_case ?max_n ?max_p () =
  QCheck.make ~print:print_sg_case (sg_case_gen ?max_n ?max_p)

let instance_of_sg_case { n; edges; _ } =
  { Stgq_core.Query.graph = Socgraph.Graph.of_edges n edges; initiator = 0 }

(* Availability over a small horizon: a few random free runs. *)
let availability_gen ~horizon st =
  let a = Timetable.Availability.create ~horizon in
  let runs = 1 + G.int_bound 3 st in
  for _ = 1 to runs do
    let lo = G.int_bound (horizon - 1) st in
    let len = 1 + G.int_bound (horizon / 2) st in
    Timetable.Availability.set_free a lo (min (horizon - 1) (lo + len - 1))
  done;
  a

type stg_case = {
  sg : sg_case;
  horizon : int;
  free_runs : (int * int) list array;  (* printable schedule description *)
  m : int;
}

let stg_case_gen ?(max_n = 8) ?(max_p = 5) ?(max_m = 4) st =
  let sg = sg_case_gen ~max_n ~max_p st in
  let horizon = 16 + G.int_bound 16 st in
  let m = 2 + G.int_bound (Stdlib.max 0 (max_m - 2)) st in
  let free_runs =
    Array.init sg.n (fun _ ->
        let a = availability_gen ~horizon st in
        (* Record as runs for printing and faithful reconstruction. *)
        let runs = ref [] in
        let i = ref 0 in
        while !i < horizon do
          if Timetable.Availability.available a !i then begin
            match Timetable.Availability.run_around a !i with
            | Some (lo, hi) ->
                runs := (lo, hi) :: !runs;
                i := hi + 1
            | None -> incr i
          end
          else incr i
        done;
        List.rev !runs)
  in
  { sg; horizon; free_runs; m }

let print_stg_case { sg; horizon; free_runs; m } =
  let sched =
    Array.to_list free_runs
    |> List.mapi (fun v runs ->
           Printf.sprintf "v%d:%s" v
             (String.concat ","
                (List.map (fun (lo, hi) -> Printf.sprintf "%d-%d" lo hi) runs)))
    |> String.concat " "
  in
  Printf.sprintf "%s horizon=%d m=%d sched=[%s]" (print_sg_case sg) horizon m sched

let stg_case ?max_n ?max_p ?max_m () =
  QCheck.make ~print:print_stg_case (stg_case_gen ?max_n ?max_p ?max_m)

let temporal_instance_of_stg_case { sg; horizon; free_runs; m = _ } =
  let schedules =
    Array.map
      (fun runs ->
        let a = Timetable.Availability.create ~horizon in
        List.iter (fun (lo, hi) -> Timetable.Availability.set_free a lo hi) runs;
        a)
      free_runs
  in
  { Stgq_core.Query.social = instance_of_sg_case sg; schedules }

let stgq_of_stg_case { sg; m; _ } =
  let ({ p; s; k } : Stgq_core.Query.sgq) = sg.query in
  { Stgq_core.Query.p; s; k; m }

(* ------------------------------------------------------------------ *)
(* Regression corpus: shrunk counterexamples serialised one per file in
   test/cases/*.case, replayed by suite_regression.  Line-based format:

     kind stg                 (or sg)
     n 6
     p 3
     s 1
     k 2
     m 2                      (stg only)
     horizon 20               (stg only)
     edge 0 1 3               (one per edge: u v weight)
     sched 0 2-5 11-14        (stg only, one per vertex: free runs)

   [case_to_string] and [case_of_string] round-trip exactly. *)

type corpus_case = Sg of sg_case | Stg of stg_case

let case_to_string case =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let sg, tail =
    match case with Sg sg -> (sg, None) | Stg stg -> (stg.sg, Some stg)
  in
  let ({ p; s; k } : Stgq_core.Query.sgq) = sg.query in
  line "kind %s" (match case with Sg _ -> "sg" | Stg _ -> "stg");
  line "n %d" sg.n;
  line "p %d" p;
  line "s %d" s;
  line "k %d" k;
  (match tail with
  | None -> ()
  | Some stg ->
      line "m %d" stg.m;
      line "horizon %d" stg.horizon);
  List.iter (fun (u, v, w) -> line "edge %d %d %g" u v w) sg.edges;
  (match tail with
  | None -> ()
  | Some stg ->
      Array.iteri
        (fun v runs ->
          line "sched %d%s" v
            (String.concat ""
               (List.map (fun (lo, hi) -> Printf.sprintf " %d-%d" lo hi) runs)))
        stg.free_runs);
  Buffer.contents b

let case_of_string text =
  let fail fmt = Printf.ksprintf failwith fmt in
  let fields = Hashtbl.create 8 in
  let edges = ref [] in
  let scheds = ref [] in
  let words l = List.filter (fun w -> w <> "") (String.split_on_char ' ' l) in
  let int_of w = match int_of_string_opt w with
    | Some v -> v
    | None -> fail "corpus case: bad integer %S" w
  in
  let run_of w =
    match String.split_on_char '-' w with
    | [ lo; hi ] -> (int_of lo, int_of hi)
    | _ -> fail "corpus case: bad free run %S" w
  in
  List.iter
    (fun l ->
      match words l with
      | [] -> ()
      | [ "edge"; u; v; w ] -> (
          match float_of_string_opt w with
          | Some w -> edges := (int_of u, int_of v, w) :: !edges
          | None -> fail "corpus case: bad edge weight %S" w)
      | "sched" :: v :: runs -> scheds := (int_of v, List.map run_of runs) :: !scheds
      | [ key; value ] -> Hashtbl.replace fields key value
      | _ -> fail "corpus case: unparsable line %S" l)
    (String.split_on_char '\n' text);
  let field key =
    match Hashtbl.find_opt fields key with
    | Some v -> v
    | None -> fail "corpus case: missing field %S" key
  in
  let int_field key = int_of (field key) in
  let n = int_field "n" in
  let query =
    { Stgq_core.Query.p = int_field "p"; s = int_field "s"; k = int_field "k" }
  in
  let sg = { n; edges = List.rev !edges; query } in
  match field "kind" with
  | "sg" -> Sg sg
  | "stg" ->
      let free_runs = Array.make n [] in
      List.iter
        (fun (v, runs) ->
          if v < 0 || v >= n then fail "corpus case: sched vertex %d out of range" v;
          free_runs.(v) <- runs)
        !scheds;
      Stg { sg; horizon = int_field "horizon"; free_runs; m = int_field "m" }
  | other -> fail "corpus case: unknown kind %S" other

let print_corpus_case = function
  | Sg sg -> print_sg_case sg
  | Stg stg -> print_stg_case stg

(* Alcotest adapter: deterministic seed, env-scaled iteration count. *)
let qtest ?(count = 200) name arbitrary prop =
  let rand = Random.State.make [| test_seed |] in
  QCheck_alcotest.to_alcotest ~rand
    (QCheck.Test.make ~count:(count * iters) ~name arbitrary prop)

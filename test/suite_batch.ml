(* The batch layer: grouped answers must be bit-identical to one-at-a-
   time service answers, grouping must actually share contexts, builds
   must single-flight under concurrency, and calendar edits racing a
   batched solve must land only between batches. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

let stg_eq a b =
  match (a, b) with
  | None, None -> true
  | Some (x : Query.stg_solution), Some (y : Query.stg_solution) ->
      x.Query.st_attendees = y.Query.st_attendees
      && x.Query.start_slot = y.Query.start_slot
      && Float.equal x.Query.st_total_distance y.Query.st_total_distance
  | _ -> false

let prop_batch_matches_unbatched =
  Gen.qtest ~count:40 "batched answers = unbatched service answers"
    (Gen.stg_case ()) (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let sg_query = Query.sgq_of_stgq query in
      let inits = List.init (min 4 case.Gen.sg.Gen.n) Fun.id in
      (* Two interleaved passes over the initiators: the batch must
         group them and still answer in input order. *)
      let reqs = List.concat_map (fun i -> [ (i, query) ]) (inits @ inits) in
      let service = Service.create ti in
      let batched = Service.stgq_batch service reqs in
      let unbatched =
        List.map (fun (i, q) -> Service.stgq service ~initiator:i q) reqs
      in
      let sg_reqs = List.map (fun (i, _) -> (i, sg_query)) reqs in
      let sg_batched = Service.sgq_batch service sg_reqs in
      let sg_unbatched =
        List.map (fun (i, q) -> Service.sgq service ~initiator:i q) sg_reqs
      in
      List.for_all2 stg_eq batched unbatched
      && List.for_all2
           (fun a b ->
             match (a, b) with
             | None, None -> true
             | Some (x : Query.sg_solution), Some (y : Query.sg_solution) ->
                 x.Query.attendees = y.Query.attendees
                 && close x.Query.total_distance y.Query.total_distance
             | _ -> false)
           sg_batched sg_unbatched)

(* Pipelined (pool present) batches keep the sequential solve kernel, so
   answers stay bit-identical to direct sequential solves even while
   context builds run on worker domains. *)
let test_pipelined_matches_direct () =
  let ti = Workload.Scenario.coauthor ~seed:5 ~days:1 ~n:200 () in
  let shapes =
    [
      { Query.p = 3; s = 2; k = 1; m = 3 };
      { Query.p = 3; s = 1; k = 2; m = 4 };
    ]
  in
  let inits =
    List.init 4 (fun i ->
        Workload.Scenario.pick_initiator ~rank:(10 + (15 * i))
          ti.Query.social.Query.graph)
    |> List.sort_uniq compare
  in
  let reqs = List.concat_map (fun q -> List.map (fun i -> (i, q)) inits) shapes in
  let direct =
    List.map
      (fun (i, q) ->
        let ti_q =
          { ti with Query.social = { ti.Query.social with Query.initiator = i } }
        in
        Stgselect.solve ti_q q)
      reqs
  in
  Engine.Pool.with_pool ~size:2 @@ fun pool ->
  let service = Service.create ~pool ti in
  let batched = Service.stgq_batch service reqs in
  Alcotest.check Alcotest.bool "pipelined batch = direct sequential" true
    (List.for_all2 stg_eq batched direct)

(* Grouping shares one context per (initiator, s) key and preserves
   input order across interleaved groups. *)
let test_grouping_shares_and_orders () =
  let ti = Workload.Scenario.coauthor ~seed:5 ~days:1 ~n:120 () in
  let cache =
    Engine.Cache.create ~schedules:ti.Query.schedules ti.Query.social.Query.graph
  in
  let reqs = [ (0, 'a'); (1, 'b'); (0, 'c'); (1, 'd'); (0, 'e') ] in
  let out =
    Engine.Batch.run ~cache
      ~key:(fun (i, _) -> (i, 1))
      ~solve:(fun _ctx (i, tag) -> (i, tag))
      reqs
  in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.char))
    "results in input order" reqs out;
  (* One cache lookup per group, not per member: members reuse the
     group's context directly. *)
  let stats = Engine.Cache.stats cache in
  Alcotest.check Alcotest.int "one build per group" 2 stats.Engine.Cache.misses;
  Alcotest.check Alcotest.int "members do not re-look-up" 0
    stats.Engine.Cache.hits;
  ignore
    (Engine.Batch.run ~cache
       ~key:(fun (i, _) -> (i, 1))
       ~solve:(fun _ctx (i, tag) -> (i, tag))
       reqs);
  let stats = Engine.Cache.stats cache in
  Alcotest.check Alcotest.int "second batch builds nothing" 2
    stats.Engine.Cache.misses;
  Alcotest.check Alcotest.int "second batch hits per group" 2
    stats.Engine.Cache.hits

(* Concurrent misses on one key must coalesce onto a single build: in
   every interleaving exactly one domain builds (misses = 1) and the
   rest land on the finished entry (hits + misses = lookups).  Whether
   a waiter slept on the in-flight build (coalesced) is timing-
   dependent, so that part of the assertion retries on fresh caches. *)
let test_single_flight_coalesces () =
  let ti = Workload.Scenario.coauthor ~seed:9 ~days:1 ~n:1200 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:5 graph in
  let n_domains = 4 in
  let attempt () =
    let cache = Engine.Cache.create graph in
    let barrier = Atomic.make 0 in
    let worker () =
      Atomic.incr barrier;
      while Atomic.get barrier < n_domains do
        Domain.cpu_relax ()
      done;
      ignore (Engine.Cache.context cache ~initiator ~s:2)
    in
    let ds = List.init (n_domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join ds;
    let stats = Engine.Cache.stats cache in
    Alcotest.check Alcotest.int "single-flight: one build" 1
      stats.Engine.Cache.misses;
    Alcotest.check Alcotest.int "everyone else hits" (n_domains - 1)
      stats.Engine.Cache.hits;
    stats.Engine.Cache.coalesced
  in
  let rec settle tries =
    let coalesced = attempt () in
    if coalesced >= 1 || tries <= 1 then coalesced else settle (tries - 1)
  in
  let coalesced = settle 5 in
  Alcotest.check Alcotest.bool "some lookup coalesced onto the build" true
    (coalesced >= 1 && coalesced <= n_domains - 1)

(* Calendar edits racing a pipelined batch: [Engine.Cache.with_solves]
   makes every batch see one consistent schedule state, so each batch's
   answers must equal the pre-edit reference or the post-edit reference
   wholesale — never a stale or torn mixture, and always certified. *)
let test_schedule_edit_race_consistent () =
  let ti = Workload.Scenario.coauthor ~seed:13 ~days:1 ~n:120 () in
  let graph = ti.Query.social.Query.graph in
  let initiator = Workload.Scenario.pick_initiator ~rank:4 graph in
  let ti = { ti with Query.social = { ti.Query.social with Query.initiator } } in
  let shapes =
    [ { Query.p = 3; s = 2; k = 1; m = 2 }; { Query.p = 3; s = 2; k = 2; m = 3 } ]
  in
  let reqs = List.map (fun q -> (initiator, q)) shapes in
  let solve_all ti = List.map (fun (_, q) -> Stgselect.solve ti q) reqs in
  let pre_refs = solve_all ti in
  (* The edit busies out an attendee of a pre-edit answer, so the post-
     edit answers genuinely differ. *)
  let victim =
    match pre_refs with
    | Some sol :: _ -> (
        match
          List.find_opt (fun v -> v <> initiator) sol.Query.st_attendees
        with
        | Some v -> v
        | None -> Alcotest.fail "expected a non-initiator attendee")
    | _ -> Alcotest.fail "expected a pre-edit solution to exist"
  in
  let horizon = Timetable.Availability.horizon ti.Query.schedules.(0) in
  let busy = Timetable.Availability.create ~horizon in
  let original = Timetable.Availability.copy ti.Query.schedules.(victim) in
  let post_refs =
    let schedules = Array.map Timetable.Availability.copy ti.Query.schedules in
    schedules.(victim) <- Timetable.Availability.copy busy;
    solve_all { ti with Query.schedules }
  in
  Alcotest.check Alcotest.bool "edit changes some answer" false
    (List.for_all2 stg_eq pre_refs post_refs);
  Engine.Pool.with_pool ~size:2 @@ fun pool ->
  let service = Service.create ~pool ti in
  let editor =
    Domain.spawn (fun () ->
        for _ = 1 to 20 do
          Service.update_schedule service ~vertex:victim busy;
          Service.update_schedule service ~vertex:victim original
        done)
  in
  for _ = 1 to 20 do
    let answers = Service.stgq_batch service reqs in
    let consistent =
      List.for_all2 stg_eq answers pre_refs
      || List.for_all2 stg_eq answers post_refs
    in
    Alcotest.check Alcotest.bool
      "batch answers match one consistent schedule state" true consistent
  done;
  Domain.join editor;
  (* The editor's last write restored the original calendar. *)
  let final = Service.stgq_batch service reqs in
  Alcotest.check Alcotest.bool "final answers are the pre-edit ones" true
    (List.for_all2 stg_eq final pre_refs)

(* Auto batch routing: per-request plans and answers equal the
   one-at-a-time Auto path. *)
let test_auto_batch_matches () =
  let ti = Workload.Scenario.coauthor ~seed:21 ~days:1 ~n:150 () in
  let shapes =
    [ { Query.p = 3; s = 2; k = 1; m = 3 }; { Query.p = 3; s = 2; k = 2; m = 4 } ]
  in
  let inits =
    List.init 3 (fun i ->
        Workload.Scenario.pick_initiator ~rank:(8 + (12 * i))
          ti.Query.social.Query.graph)
    |> List.sort_uniq compare
  in
  let reqs = List.concat_map (fun q -> List.map (fun i -> (i, q)) inits) shapes in
  let batched = Auto.stgq_batch ti reqs in
  List.iter2
    (fun (i, q) (sol_b, plan_b) ->
      let ti_q =
        { ti with Query.social = { ti.Query.social with Query.initiator = i } }
      in
      let sol_u, plan_u = Auto.stgq ti_q q in
      Alcotest.check Alcotest.bool "solution matches" true (stg_eq sol_b sol_u);
      Alcotest.check Alcotest.bool "plan matches" true
        (plan_b.Auto.choice = plan_u.Auto.choice
        && plan_b.Auto.feasible_size = plan_u.Auto.feasible_size))
    reqs batched

let suite =
  [
    prop_batch_matches_unbatched;
    Alcotest.test_case "pipelined batch = direct sequential" `Quick
      test_pipelined_matches_direct;
    Alcotest.test_case "grouping shares contexts, keeps order" `Quick
      test_grouping_shares_and_orders;
    Alcotest.test_case "concurrent misses single-flight" `Quick
      test_single_flight_coalesces;
    Alcotest.test_case "schedule edits race batches consistently" `Quick
      test_schedule_edit_race_consistent;
    Alcotest.test_case "auto batch routing matches unbatched" `Quick
      test_auto_batch_matches;
  ]

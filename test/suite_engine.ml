(* The engine layer must be answer-invisible: cached contexts and the
   persistent pool are allowed to change *when* work happens, never
   *what* is answered.  The differential properties here pit every
   engine-routed path against the plain sequential solvers on the same
   randomized instances, including repeated queries against one cached
   context so the hit path is exercised, not just the build path. *)

open Stgq_core

let close a b = Float.abs (a -. b) <= 1e-6

(* One pool for the whole suite: exactly the reuse pattern the pool is
   for, and a standing check that answers stay right on warm domains. *)
let shared_pool = lazy (Engine.Pool.create ~size:3 ())

let agree_stg seq other =
  match (seq, other) with
  | None, None -> true
  | Some a, Some b ->
      close a.Query.st_total_distance b.Query.st_total_distance
      && a.Query.start_slot = b.Query.start_slot
  | _ -> false

let prop_engine_matches_sequential =
  Gen.qtest ~count:80 "cached context + pool = sequential STGSelect"
    (Gen.stg_case ())
    (fun case ->
      let ti = Gen.temporal_instance_of_stg_case case in
      let query = Gen.stgq_of_stg_case case in
      let cache =
        Engine.Cache.create ~capacity:4 ~schedules:ti.Query.schedules
          ti.Query.social.Query.graph
      in
      let seq = Stgselect.solve ti query in
      let ok = ref true in
      (* Two rounds against the same cache: round 1 builds the context,
         round 2 must be served from the LRU and still agree. *)
      for _round = 1 to 2 do
        let ctx = Engine.Cache.context cache ~initiator:0 ~s:query.Query.s in
        let cached = Stgselect.solve ~ctx ti query in
        let pooled =
          Parallel.solve ~pool:(Lazy.force shared_pool) ~domains:3 ~ctx ti query
        in
        if not (agree_stg seq cached && agree_stg seq pooled) then ok := false;
        ignore (Validate.certify_stg ti query cached : Query.stg_solution option);
        ignore (Validate.certify_stg ti query pooled : Query.stg_solution option)
      done;
      !ok && (Engine.Cache.stats cache).Engine.Cache.hits >= 1)

let prop_sgq_context_matches_direct =
  Gen.qtest ~count:120 "SGSelect via cached context = direct" (Gen.sg_case ())
    (fun case ->
      let instance = Gen.instance_of_sg_case case in
      let query = case.Gen.query in
      let cache = Engine.Cache.create ~capacity:2 instance.Query.graph in
      let direct = Sgselect.solve instance query in
      let ok = ref true in
      for _round = 1 to 2 do
        let ctx = Engine.Cache.context cache ~initiator:0 ~s:query.Query.s in
        (match (direct, Sgselect.solve ~ctx instance query) with
        | None, None -> ()
        | Some a, Some b ->
            if not (close a.Query.total_distance b.Query.total_distance) then
              ok := false
        | _ -> ok := false)
      done;
      !ok && (Engine.Cache.stats cache).Engine.Cache.hits >= 1)

let prop_bounded_dist_early_exit_reaches_fixpoint =
  Gen.qtest ~count:120 "early-exited distances = exhaustive rounds"
    (Gen.sg_case ())
    (fun case ->
      let g = (Gen.instance_of_sg_case case).Query.graph in
      let n = Socgraph.Graph.n_vertices g in
      (* n-1 rounds always reach the DP fixpoint; doubling the budget
         must change nothing if the early exit stopped correctly. *)
      Socgraph.Bounded_dist.distances g ~src:0 ~max_edges:n
      = Socgraph.Bounded_dist.distances g ~src:0 ~max_edges:(2 * n + 3))

let pool_map pool thunks =
  Engine.Pool.await_all (List.map (Engine.Pool.submit pool) thunks)

let test_pool_order_and_reuse () =
  let escaped =
    Engine.Pool.with_pool ~size:3 (fun pool ->
        let expected = List.init 20 (fun i -> i * i) in
        let got = pool_map pool (List.map (fun v -> fun () -> v) expected) in
        Alcotest.(check (list int)) "results in submission order" expected got;
        let again = pool_map pool [ (fun () -> 41); (fun () -> 42) ] in
        Alcotest.(check (list int)) "pool reusable across runs" [ 41; 42 ] again;
        (* A future may be awaited more than once and from after the
           fact: it is a value, not a one-shot channel. *)
        let fut = Engine.Pool.submit pool (fun () -> 9) in
        Alcotest.(check int) "await" 9 (Engine.Pool.await fut);
        Alcotest.(check int) "await again" 9 (Engine.Pool.await fut);
        pool)
  in
  Engine.Pool.shutdown escaped (* idempotent: with_pool already shut it down *);
  Alcotest.check_raises "submit after shutdown rejected" Engine.Pool.Pool_closed
    (fun () -> ignore (Engine.Pool.submit escaped (fun () -> 0)))

let test_pool_exception_propagates () =
  Engine.Pool.with_pool ~size:2 @@ fun pool ->
  (try
     ignore
       (pool_map pool
          [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
         : int list);
     Alcotest.fail "expected the job's exception to re-raise"
   with Engine.Pool.Task_errors [ Failure msg ] ->
     Alcotest.(check string) "job exception" "boom" msg);
  (* A single await re-raises the job's own exception, un-aggregated. *)
  let failed = Engine.Pool.submit pool (fun () -> failwith "solo") in
  Alcotest.check_raises "await re-raises" (Failure "solo") (fun () ->
      ignore (Engine.Pool.await failed : int));
  (* A failed batch must not poison the workers. *)
  Alcotest.(check (list int))
    "pool alive after failure" [ 7 ]
    (pool_map pool [ (fun () -> 7) ])

let test_cache_lru_recency () =
  let g = Socgraph.Graph.of_edges 4 [ (0, 1, 1.); (1, 2, 1.); (2, 3, 1.) ] in
  let cache = Engine.Cache.create ~capacity:2 g in
  let touch initiator s =
    ignore (Engine.Cache.context cache ~initiator ~s : Engine.Context.t)
  in
  touch 0 1 (* miss *);
  touch 1 1 (* miss *);
  touch 0 1 (* hit; (1,1) becomes least recent *);
  touch 2 1 (* miss; must evict (1,1), not (0,1) *);
  touch 0 1 (* hit iff the touch above refreshed recency (FIFO would miss) *);
  touch 1 1 (* miss; (1,1) was evicted *);
  let s = Engine.Cache.stats cache in
  Alcotest.(check int) "hits" 2 s.Engine.Cache.hits;
  Alcotest.(check int) "misses" 4 s.Engine.Cache.misses;
  Alcotest.(check int) "evictions" 2 s.Engine.Cache.evictions;
  Alcotest.(check int) "entries" 2 s.Engine.Cache.entries

let test_context_pivots_memoized_and_guarded () =
  let case = Gen.stg_case_gen (Random.State.make [| 23 |]) in
  let ti = Gen.temporal_instance_of_stg_case case in
  let query = Gen.stgq_of_stg_case case in
  let ctx = Feasible.context_of_temporal ti ~s:query.Query.s in
  Alcotest.(check bool) "has schedules" true (Engine.Context.has_schedules ctx);
  let p1 = Engine.Context.pivots ctx ~m:query.Query.m in
  let p2 = Engine.Context.pivots ctx ~m:query.Query.m in
  Alcotest.(check (list int)) "pivot memo stable" p1 p2;
  Alcotest.check_raises "wrong initiator rejected"
    (Invalid_argument "Engine.Context: cached context belongs to another initiator")
    (fun () ->
      Engine.Context.ensure_for ctx ~initiator:(ti.Query.social.Query.initiator + 1)
        ~s:query.Query.s);
  let social = Feasible.context_of_instance ti.Query.social ~s:query.Query.s in
  Alcotest.(check bool) "social-only" false (Engine.Context.has_schedules social);
  Alcotest.check_raises "social-only context has no pivots"
    (Invalid_argument "Engine.Context.pivots: social-only context has no time axis")
    (fun () -> ignore (Engine.Context.pivots social ~m:2 : int list))

let suite =
  [
    Alcotest.test_case "pool order + reuse" `Quick test_pool_order_and_reuse;
    Alcotest.test_case "pool exception propagation" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "cache true-LRU recency" `Quick test_cache_lru_recency;
    Alcotest.test_case "context pivot memo + guards" `Quick
      test_context_pivots_memoized_and_guarded;
    prop_bounded_dist_early_exit_reaches_fixpoint;
    prop_sgq_context_matches_direct;
    prop_engine_matches_sequential;
  ]

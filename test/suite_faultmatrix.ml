(* The fault matrix: each test drives the resilient serving path through
   one {!Faultinject} site and asserts the supervisor / degradation
   ladder absorbs whatever the active plan injects there — a typed
   answer or typed error, never a raw [Injected_fault] escaping.

   The plan comes from STGQ_FAULTS (parsed once by [Faultinject] at
   start-up).  With no plan armed — the plain `dune runtest` run — every
   test passes trivially; the root [@faults] alias re-runs this suite
   once per plan in docs/ROBUSTNESS.md's matrix. *)

open Stgq_core

let check = Alcotest.check

let specs =
  match Sys.getenv_opt "STGQ_FAULTS" with
  | None | Some "" -> []
  | Some raw -> (
      match Faultinject.parse raw with
      | Ok specs -> specs
      | Error msg -> failwith ("unparsable STGQ_FAULTS plan: " ^ msg))

let spec_for site =
  List.find_opt (fun (s : Faultinject.spec) -> s.site = site) specs

(* one-shot transient faults must be survivable; persistent or hard
   faults must surface as a typed [Unavailable] *)
let expect_result ~name ~(spec : Faultinject.spec) ~fired result =
  if not fired then ()
  else if spec.transient && not spec.persistent then
    match result with
    | Ok (a : _ Resilience.answer) ->
        check Alcotest.bool (name ^ ": retried") true (a.retries >= 1)
    | Error e ->
        Alcotest.failf "%s: one transient fault must be absorbed, got %a" name
          Resilience.pp_error e
  else
    match result with
    | Ok _ -> Alcotest.failf "%s: persistent fault must not yield an answer" name
    | Error (Resilience.Unavailable _) -> ()
    | Error (Resilience.Degraded _ as e) ->
        Alcotest.failf "%s: hard faults are Unavailable, got %a" name
          Resilience.pp_error e

let fast = { Resilience.default_policy with backoff_ms = 0.01 }

(* --- fixtures ------------------------------------------------------ *)

(* small and fully-connected: every query below has a solution *)
let small_ti =
  let n = 6 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, 1. +. float_of_int ((u + v) mod 3)) :: !edges
    done
  done;
  let horizon = 10 in
  let schedules =
    Array.init n (fun _ ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a 0 (horizon - 1);
        a)
  in
  {
    Query.social =
      { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
    schedules;
  }

let small_q = { Query.p = 3; s = 2; k = 2; m = 2 }

(* dense enough that the kernel crosses several 256-node checkpoints *)
let big_ti, big_q =
  let n = 22 in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v, float_of_int (1 + ((u + (3 * v)) mod 19))) :: !edges
    done
  done;
  let horizon = 40 in
  let schedules =
    Array.init n (fun v ->
        let a = Timetable.Availability.create ~horizon in
        Timetable.Availability.set_free a (v mod 3) (horizon - 1 - (v mod 2));
        a)
  in
  ( {
      Query.social =
        { Query.graph = Socgraph.Graph.of_edges n !edges; initiator = 0 };
      schedules;
    },
    { Query.p = 10; s = 2; k = 5; m = 3 } )

(* --- sites ---------------------------------------------------------- *)

let test_pool_job_start () =
  match spec_for Faultinject.Pool_job_start with
  | None -> ()
  | Some _ ->
      Obs.set_enabled true;
      Fun.protect ~finally:(fun () -> Obs.set_enabled false) @@ fun () ->
      let respawns = Obs.counter "engine.pool.respawns" in
      let before = Obs.Counter.value respawns in
      let results =
        Engine.Pool.with_pool ~size:2 @@ fun pool ->
        Engine.Pool.await_all
          (List.map (Engine.Pool.submit pool) (List.init 12 (fun i () -> i + 1)))
      in
      check
        (Alcotest.list Alcotest.int)
        "batch completes despite injected worker death"
        (List.init 12 (fun i -> i + 1))
        results;
      check Alcotest.bool "respawn counted" true
        (Obs.Counter.value respawns > before)

let test_context_build () =
  match spec_for Faultinject.Context_build with
  | None -> ()
  | Some spec ->
      let t = Service.create small_ti in
      let result =
        Service.sgq_r ~policy:fast t ~initiator:0
          { Query.p = small_q.p; s = small_q.s; k = small_q.k }
      in
      let fired = Faultinject.hits Faultinject.Context_build > 0 in
      check Alcotest.bool "context-build site reached" true fired;
      expect_result ~name:"context_build" ~spec ~fired result;
      (* a transient plan must leave the service fully serviceable *)
      if spec.transient && not spec.persistent then
        match result with
        | Ok { value = Some s; _ } ->
            check Alcotest.bool "served answer is feasible" true
              (Validate.is_valid_sg small_ti.Query.social
                 { Query.p = small_q.p; s = small_q.s; k = small_q.k }
                 s)
        | _ -> Alcotest.fail "context_build: expected a served answer"

let test_kernel_expansion () =
  match spec_for Faultinject.Kernel_expansion with
  | None -> ()
  | Some spec ->
      let result =
        Resilience.run ~policy:fast
          ~exact:(fun b -> (Stgselect.solve_report ~budget:b big_ti big_q).outcome)
          ~heuristic:(fun b -> Heuristics.beam_stgq ~budget:b big_ti big_q)
          ()
      in
      let fired = Faultinject.hits Faultinject.Kernel_expansion > 0 in
      check Alcotest.bool "kernel checkpoint reached" true fired;
      expect_result ~name:"kernel_expansion" ~spec ~fired result

let small_q_sg = { Query.p = small_q.p; s = small_q.s; k = small_q.k }

let test_certify () =
  match spec_for Faultinject.Certify with
  | None -> ()
  | Some spec ->
      let result =
        Resilience.run ~policy:fast
          ~exact:(fun b ->
            let report = Sgselect.solve_report ~budget:b small_ti.Query.social small_q_sg in
            Resilience.certify_outcome
              ~certify:(Validate.certify_sg small_ti.Query.social small_q_sg)
              report.outcome)
          ~heuristic:(fun b ->
            Validate.certify_sg small_ti.Query.social small_q_sg
              (Heuristics.beam_sgq ~budget:b small_ti.Query.social small_q_sg))
          ()
      in
      let fired = Faultinject.hits Faultinject.Certify > 0 in
      check Alcotest.bool "certification reached" true fired;
      expect_result ~name:"certify" ~spec ~fired result

let suite =
  [
    Alcotest.test_case "pool job start" `Quick test_pool_job_start;
    Alcotest.test_case "context build" `Quick test_context_build;
    Alcotest.test_case "kernel expansion" `Quick test_kernel_expansion;
    Alcotest.test_case "certify" `Quick test_certify;
  ]
